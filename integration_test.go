package agingfp_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/core"
	"agingfp/internal/frontend"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/route"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
	"agingfp/internal/viz"
)

// TestFullPipeline drives the complete tool chain the way a user would:
// behavioral source -> DFG -> schedule -> baseline placement -> aging-
// aware re-mapping -> routing -> reliability -> serialization -> SVG.
func TestFullPipeline(t *testing.T) {
	src := `
		// 8-tap dot product
		p0 = x0 * c0; p1 = x1 * c1; p2 = x2 * c2; p3 = x3 * c3;
		p4 = x4 * c4; p5 = x5 * c5; p6 = x6 * c6; p7 = x7 * c7;
		s0 = p0 + p1; s1 = p2 + p3; s2 = p4 + p5; s3 = p6 + p7;
		t0 = s0 + s1; t1 = s2 + s3;
		out = t0 + t1;
	`
	compiled, err := frontend.CompileSource(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	if len(compiled.Inputs) != 16 || len(compiled.Outputs) != 1 {
		t.Fatalf("interface: %d inputs, %d outputs", len(compiled.Inputs), len(compiled.Outputs))
	}

	design, err := hls.BuildDesign("dot8", compiled.Graph, arch.Fabric{W: 5, H: 5}, hls.DefaultConfig())
	if err != nil {
		t.Fatalf("hls: %v", err)
	}

	baseline, err := place.Place(design, place.DefaultConfig())
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	sta0 := timing.Analyze(design, baseline)
	if sta0.CPD > design.ClockPeriodNs {
		t.Fatalf("baseline misses timing: %.3f ns", sta0.CPD)
	}

	result, err := core.Remap(context.Background(), design, baseline, core.DefaultOptions())
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	if result.NewCPD > sta0.CPD+1e-9 {
		t.Fatalf("CPD regressed: %.3f -> %.3f", sta0.CPD, result.NewCPD)
	}

	// Routing must realize both floorplans at Manhattan length.
	for name, m := range map[string]arch.Mapping{"baseline": baseline, "aging-aware": result.Mapping} {
		routes, err := route.RouteAll(design, m)
		if err != nil {
			t.Fatalf("route %s: %v", name, err)
		}
		if err := route.Validate(design, m, routes); err != nil {
			t.Fatalf("route %s: %v", name, err)
		}
	}

	// Reliability under NBTI and under combined wear.
	model, tcfg := nbti.DefaultModel(), thermal.DefaultConfig()
	before, err := core.Evaluate(design, baseline, model, tcfg)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	after, err := core.Evaluate(design, result.Mapping, model, tcfg)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if after.Hours < before.Hours-1e-9 {
		t.Fatalf("re-mapping shortened MTTF: %.0f -> %.0f h", before.Hours, after.Hours)
	}
	combined := nbti.DefaultCombined()
	cb, _, _, err := nbti.FabricMTTFUnder(combined, before.Stress, before.Temp, design.NumContexts)
	if err != nil {
		t.Fatalf("combined wear: %v", err)
	}
	if cb >= before.Hours {
		t.Fatalf("combined wear (%.0f h) not below NBTI-only (%.0f h)", cb, before.Hours)
	}

	// Serialization round-trips both floorplans.
	var buf bytes.Buffer
	err = arch.WriteJSON(&buf, design, map[string]arch.Mapping{
		"baseline": baseline, "aging_aware": result.Mapping,
	})
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	d2, maps, err := arch.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("deserialize: %v", err)
	}
	if d2.NumOps() != design.NumOps() || len(maps) != 2 {
		t.Fatalf("round trip lost data: %d ops, %d maps", d2.NumOps(), len(maps))
	}
	// The deserialized floorplan re-times identically.
	sta2 := timing.Analyze(d2, maps["aging_aware"])
	if diff := sta2.CPD - result.NewCPD; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("re-timed CPD %.6f != %.6f", sta2.CPD, result.NewCPD)
	}

	// SVG artifacts render.
	svg := viz.StressSVG("after", after.Stress)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("stress SVG malformed")
	}
	if s := viz.ContextSVG(design, result.Mapping, 0); !strings.Contains(s, "context 0") {
		t.Fatal("context SVG malformed")
	}

	// Wear rotation never loses to the single floorplan.
	ws, err := core.DiversifiedRemap(context.Background(), design, baseline, core.DefaultOptions(), 2)
	if err != nil {
		t.Fatalf("diversify: %v", err)
	}
	sched, err := ws.Evaluate(design, model, tcfg)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if sched.MaxStress > after.MaxStress+1e-9 {
		t.Fatalf("schedule stress %.3f above single %.3f", sched.MaxStress, after.MaxStress)
	}
}
