// Package buildinfo reads the binary's embedded build metadata (Go
// version, VCS revision, dirty flag) out of runtime/debug.ReadBuildInfo
// once, so the CLIs' -version flags, the server's /v1/version endpoint,
// and the perf-report schema all report the same identity without
// link-time -ldflags plumbing.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Info is one binary's build identity. Fields are empty when the build
// carried no metadata (e.g. `go run` outside a VCS checkout).
type Info struct {
	// GoVersion is the toolchain that built the binary (e.g. "go1.22.1").
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// VCSRevision is the full commit hash the binary was built from.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp (RFC 3339).
	VCSTime string `json:"vcs_time,omitempty"`
	// VCSDirty reports uncommitted changes in the build's working tree.
	VCSDirty bool `json:"vcs_dirty,omitempty"`
}

// Get reads the running binary's build metadata. It never fails: a
// binary without embedded info yields a zero-valued Info (GoVersion
// excepted, which ReadBuildInfo always carries when available).
func Get() Info {
	var info Info
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	info.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.VCSRevision = s.Value
		case "vcs.time":
			info.VCSTime = s.Value
		case "vcs.modified":
			info.VCSDirty = s.Value == "true"
		}
	}
	return info
}

// Revision is the short (12-character) form of the commit hash, with a
// "-dirty" suffix when the tree had local modifications; "unknown" when
// the build embedded no VCS data.
func (i Info) Revision() string {
	rev := i.VCSRevision
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.VCSDirty {
		rev += "-dirty"
	}
	return rev
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	return fmt.Sprintf("%s %s (%s)", i.Module, i.Revision(), i.GoVersion)
}
