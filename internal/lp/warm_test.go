package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a random bounded LP that is feasible by
// construction: the RHS of every row is derived from a random interior
// point x0, with the row sense chosen to admit it.
func randomProblem(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(10)
	m := 2 + rng.Intn(8)
	p := NewProblem()
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		ub := 1 + rng.Float64()*9
		p.AddVar(rng.NormFloat64(), 0, ub)
		x0[j] = rng.Float64() * ub
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		v := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				c := rng.NormFloat64() * 2
				idx = append(idx, j)
				val = append(val, c)
				v += c * x0[j]
			}
		}
		if len(idx) == 0 {
			idx, val = []int{rng.Intn(n)}, []float64{1}
			v = x0[idx[0]]
		}
		switch rng.Intn(3) {
		case 0:
			p.MustAddRow(LE, v+rng.Float64()*2, idx, val)
		case 1:
			p.MustAddRow(GE, v-rng.Float64()*2, idx, val)
		default:
			p.MustAddRow(EQ, v, idx, val)
		}
	}
	return p
}

// tightenRandomBound narrows one variable's bounds around (or away from)
// its current solution value, mimicking a branch-and-bound or rounding
// pin. Returns false if no tightening was possible.
func tightenRandomBound(p *Problem, x []float64, rng *rand.Rand) bool {
	for try := 0; try < 20; try++ {
		j := rng.Intn(p.NumVars())
		lb, ub := p.Bounds(j)
		if ub-lb < 1e-6 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // ceil-like: raise the lower bound past x[j]
			nl := x[j] + rng.Float64()*(ub-x[j])
			if nl > ub {
				nl = ub
			}
			p.SetBounds(j, nl, ub)
		case 1: // floor-like: drop the upper bound below x[j]
			nu := x[j] - rng.Float64()*(x[j]-lb)
			if nu < lb {
				nu = lb
			}
			p.SetBounds(j, lb, nu)
		default: // pin, as the rounding dive does
			v := lb + rng.Float64()*(ub-lb)
			p.SetBounds(j, v, v)
		}
		return true
	}
	return false
}

// TestWarmEquivalenceFuzz is the warm-start contract: for random feasible
// problems and random bound tightenings, a warm solve from the parent
// basis must reach the same status and objective as a cold solve.
func TestWarmEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	warmUsed := 0
	for trial := 0; trial < 400; trial++ {
		p := randomProblem(rng)
		root, err := Solve(context.Background(), p, Options{})
		if err != nil {
			t.Fatalf("trial %d: root solve: %v", trial, err)
		}
		if root.Status != Optimal {
			t.Fatalf("trial %d: root status %v (feasible by construction)", trial, root.Status)
		}
		if root.Basis == nil {
			t.Fatalf("trial %d: optimal root carries no basis snapshot", trial)
		}

		child := p.CloneBounds()
		if !tightenRandomBound(child, root.X, rng) {
			continue
		}
		cold, err := Solve(context.Background(), child, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold child: %v", trial, err)
		}
		warm, err := Solve(context.Background(), child, Options{WarmStart: root.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm child: %v", trial, err)
		}
		if warm.Warm {
			warmUsed++
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v != cold %v (warm used: %v)",
				trial, warm.Status, cold.Status, warm.Warm)
		}
		if cold.Status == Optimal {
			tol := 1e-6 * (1 + math.Abs(cold.Obj))
			if math.Abs(warm.Obj-cold.Obj) > tol {
				t.Fatalf("trial %d: warm obj %g != cold %g", trial, warm.Obj, cold.Obj)
			}
			checkFeasible(t, child, warm.X)
		}
	}
	// The point of the exercise: the snapshot must actually be usable on
	// the overwhelming majority of single-bound changes.
	if warmUsed < 300 {
		t.Fatalf("warm start accepted only %d/400 times", warmUsed)
	}
}

// TestWarmRHSChange exercises the other warm-start axis: the same basis
// reused after the RHS moved (a Step-1 budget probe), including a change
// that makes the problem infeasible.
func TestWarmRHSChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		root, err := Solve(context.Background(), p, Options{})
		if err != nil || root.Status != Optimal {
			t.Fatalf("trial %d: root %v %v", trial, err, root.Status)
		}
		// Perturb every RHS in place (rows are shared by CloneBounds, so
		// rebuild the problem with shifted RHS instead).
		q := NewProblem()
		for j := 0; j < p.NumVars(); j++ {
			lb, ub := p.Bounds(j)
			q.AddVar(p.Obj(j), lb, ub)
		}
		for _, r := range p.Rows() {
			q.MustAddRow(r.Sense, r.RHS+rng.NormFloat64(), r.Idx, r.Val)
		}
		cold, err := Solve(context.Background(), q, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		warm, err := Solve(context.Background(), q, Options{WarmStart: root.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v != cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			tol := 1e-6 * (1 + math.Abs(cold.Obj))
			if math.Abs(warm.Obj-cold.Obj) > tol {
				t.Fatalf("trial %d: warm obj %g != cold %g", trial, warm.Obj, cold.Obj)
			}
			checkFeasible(t, q, warm.X)
		}
	}
}

// TestWarmShapeMismatchRejected feeds a basis from a different problem
// shape; the solve must quietly fall back to the cold path.
func TestWarmShapeMismatchRejected(t *testing.T) {
	small := NewProblem()
	a := small.AddVar(-1, 0, 2)
	small.MustAddRow(LE, 1, []int{a}, []float64{1})
	rootSmall, err := Solve(context.Background(), small, Options{})
	if err != nil || rootSmall.Status != Optimal {
		t.Fatalf("small solve: %v %v", err, rootSmall.Status)
	}

	big := NewProblem()
	x := big.AddVar(-1, 0, 3)
	y := big.AddVar(-1, 0, 3)
	big.MustAddRow(LE, 4, []int{x, y}, []float64{1, 1})
	sol, err := Solve(context.Background(), big, Options{WarmStart: rootSmall.Basis})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Warm {
		t.Fatal("mismatched basis was not rejected")
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-(-4)) > testTol {
		t.Fatalf("fallback solve wrong: %v obj %g", sol.Status, sol.Obj)
	}
}

// TestWarmReSolveSameProblem: re-solving the identical problem warm must
// terminate immediately at the same optimum.
func TestWarmReSolveSameProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng)
		first, err := Solve(context.Background(), p, Options{})
		if err != nil || first.Status != Optimal {
			t.Fatalf("trial %d: first %v %v", trial, err, first.Status)
		}
		again, err := Solve(context.Background(), p, Options{WarmStart: first.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		if !again.Warm {
			t.Fatalf("trial %d: identical re-solve rejected the warm basis", trial)
		}
		if again.Status != Optimal || math.Abs(again.Obj-first.Obj) > 1e-6*(1+math.Abs(first.Obj)) {
			t.Fatalf("trial %d: warm re-solve %v obj %g, want %g", trial, again.Status, again.Obj, first.Obj)
		}
		if again.Iters > 3 {
			t.Fatalf("trial %d: identical warm re-solve took %d iterations", trial, again.Iters)
		}
	}
}
