package lp

import (
	"encoding/binary"
	"fmt"
)

// Basis serialization lets a snapshot outlive the solve that produced
// it: the serve layer exports bases from a finished job and imports
// them to seed a later delta re-solve of a near-identical instance.
// The format is versioned and purely combinatorial, mirroring the
// in-memory snapshot; a decoded basis goes through the same
// newWarmSolver validation as a live one, so a corrupt or mismatched
// import degrades to a cold solve, never a wrong result.

// basisMagic identifies serialized basis snapshots (format version 1).
var basisMagic = [4]byte{'L', 'P', 'B', '1'}

// MarshalBinary encodes the basis snapshot.
func (b *Basis) MarshalBinary() ([]byte, error) {
	if b == nil {
		return nil, fmt.Errorf("lp: marshal nil basis")
	}
	n := int(b.nStruct) + int(b.m)
	if len(b.basis) != int(b.m) || len(b.vstat) != n {
		return nil, fmt.Errorf("lp: marshal inconsistent basis (nStruct=%d m=%d basis=%d vstat=%d)",
			b.nStruct, b.m, len(b.basis), len(b.vstat))
	}
	out := make([]byte, 0, 4+8+4*len(b.basis)+len(b.vstat))
	out = append(out, basisMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(b.nStruct))
	out = binary.LittleEndian.AppendUint32(out, uint32(b.m))
	for _, v := range b.basis {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	for _, v := range b.vstat {
		out = append(out, byte(v))
	}
	return out, nil
}

// UnmarshalBasis decodes a snapshot produced by MarshalBinary. Shape
// consistency is checked here; fit against a particular problem is
// checked at warm-start time.
func UnmarshalBasis(data []byte) (*Basis, error) {
	if len(data) < 12 || [4]byte(data[:4]) != basisMagic {
		return nil, fmt.Errorf("lp: basis blob missing LPB1 header")
	}
	nStruct := int32(binary.LittleEndian.Uint32(data[4:8]))
	m := int32(binary.LittleEndian.Uint32(data[8:12]))
	if nStruct < 0 || m < 0 {
		return nil, fmt.Errorf("lp: basis blob negative dims %d/%d", nStruct, m)
	}
	n := int(nStruct) + int(m)
	want := 12 + 4*int(m) + n
	if len(data) != want {
		return nil, fmt.Errorf("lp: basis blob length %d, want %d for dims %d/%d",
			len(data), want, nStruct, m)
	}
	b := &Basis{
		nStruct: nStruct,
		m:       m,
		basis:   make([]int32, m),
		vstat:   make([]int8, n),
	}
	off := 12
	for i := range b.basis {
		b.basis[i] = int32(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
	}
	for i := range b.vstat {
		b.vstat[i] = int8(data[off])
		off++
	}
	return b, nil
}
