// Package lp implements a bounded-variable revised-simplex linear
// programming solver. It is the foundation of the MILP machinery that
// replaces the commercial CPLEX solver used by the paper.
//
// Problems are stated as
//
//	minimize    c'x
//	subject to  a_i'x  (<=|=|>=)  b_i      for each row i
//	            l <= x <= u                 (bounds may be infinite)
//
// The solver works on the computational standard form Ax + s = b with one
// slack per row (slack bounds encode the row sense), uses artificial
// variables only for rows whose initial residual a feasible slack cannot
// absorb, and runs a textbook two-phase bounded simplex with an explicit
// basis inverse, eta-style pivot updates, periodic primal refresh for
// numerical hygiene, and a Bland's-rule fallback that guarantees
// termination under degeneracy.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"agingfp/internal/flight"
	"agingfp/internal/obs"
)

// WarmRejectsMetric is the labeled counter family counting refused warm
// starts; each increment carries a reason label (dim_mismatch,
// stale_basis, singular) via obs.Labeled.
const WarmRejectsMetric = "agingfp_lp_warmstart_rejects_total"

// Prometheus families for the solver's numerical-health counters and
// the kernel profiler's phase attribution, named consistently with
// WarmRejectsMetric.
const (
	// DegeneratePivotsMetric counts degenerate (zero-step) pivots across
	// all solves reaching one registry.
	DegeneratePivotsMetric = "agingfp_lp_degenerate_pivots_total"
	// RefactorizationsMetric counts primal refreshes / basis
	// refactorizations.
	RefactorizationsMetric = "agingfp_lp_refactorizations_total"
	// PhaseSecondsMetric accumulates profiled wall-clock per simplex
	// phase, labeled {phase="pricing"|...}; only profiled solves feed it.
	PhaseSecondsMetric = "agingfp_lp_phase_seconds_total"
)

// Sense is a row's comparison sense.
type Sense int

// Row senses.
const (
	LE Sense = iota // a'x <= b
	GE              // a'x >= b
	EQ              // a'x == b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Inf is positive infinity, for unbounded variable bounds.
var Inf = math.Inf(1)

// Row is one linear constraint in sparse form.
type Row struct {
	Sense Sense
	RHS   float64
	Idx   []int
	Val   []float64
}

// Problem is a linear program under construction. The zero value is an
// empty problem ready for AddVar/AddRow.
type Problem struct {
	c      []float64
	lb, ub []float64
	rows   []Row
	// rowFam optionally names each row's constraint family (the flight
	// recorder's taxonomy); the kernel profiler attributes pivots to it.
	// Sparse: shorter than rows means the tail is unlabeled.
	rowFam []string
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar appends a variable with objective coefficient c and bounds
// [lb, ub], returning its index.
func (p *Problem) AddVar(c, lb, ub float64) int {
	p.c = append(p.c, c)
	p.lb = append(p.lb, lb)
	p.ub = append(p.ub, ub)
	return len(p.c) - 1
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.c) }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddRow appends the constraint sum(val[k]*x[idx[k]]) sense rhs.
// Duplicate indices within one row are rejected.
func (p *Problem) AddRow(sense Sense, rhs float64, idx []int, val []float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("lp: AddRow index/value length mismatch (%d vs %d)", len(idx), len(val))
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= len(p.c) {
			return fmt.Errorf("lp: AddRow variable %d out of range [0,%d)", j, len(p.c))
		}
		if seen[j] {
			return fmt.Errorf("lp: AddRow duplicate variable %d", j)
		}
		seen[j] = true
	}
	p.rows = append(p.rows, Row{
		Sense: sense,
		RHS:   rhs,
		Idx:   append([]int(nil), idx...),
		Val:   append([]float64(nil), val...),
	})
	return nil
}

// MustAddRow is AddRow panicking on error; for construction code whose
// indices are correct by construction.
func (p *Problem) MustAddRow(sense Sense, rhs float64, idx []int, val []float64) {
	if err := p.AddRow(sense, rhs, idx, val); err != nil {
		panic(err)
	}
}

// Rows exposes the constraint rows (shared storage; callers must not
// modify). Used by diagnostics and solution checkers.
func (p *Problem) Rows() []Row { return p.rows }

// SetRowFamily labels row i with a constraint-family name (e.g. the
// flight taxonomy's "stress-budget"); the kernel profiler attributes
// simplex pivots to these labels. Unlabeled rows count as "other".
func (p *Problem) SetRowFamily(i int, family string) {
	if i < 0 || i >= len(p.rows) {
		return
	}
	for len(p.rowFam) < len(p.rows) {
		p.rowFam = append(p.rowFam, "")
	}
	p.rowFam[i] = family
}

// RowFamily returns row i's family label, "" when unlabeled.
func (p *Problem) RowFamily(i int) string {
	if i < 0 || i >= len(p.rowFam) {
		return ""
	}
	return p.rowFam[i]
}

// SetObj overwrites variable j's objective coefficient.
func (p *Problem) SetObj(j int, c float64) { p.c[j] = c }

// Obj returns variable j's objective coefficient.
func (p *Problem) Obj(j int) float64 { return p.c[j] }

// Bounds returns variable j's bounds.
func (p *Problem) Bounds(j int) (lb, ub float64) { return p.lb[j], p.ub[j] }

// SetBounds overwrites variable j's bounds; used by branch-and-bound.
func (p *Problem) SetBounds(j int, lb, ub float64) {
	p.lb[j], p.ub[j] = lb, ub
}

// CloneBounds returns a copy of the problem that shares the (immutable)
// rows and objective but owns its bound arrays, so branch-and-bound nodes
// can tighten bounds independently.
func (p *Problem) CloneBounds() *Problem {
	return &Problem{
		c:      p.c,
		lb:     append([]float64(nil), p.lb...),
		ub:     append([]float64(nil), p.ub...),
		rows:   p.rows,
		rowFam: p.rowFam,
	}
}

// Status is a solve outcome.
type Status int

// Solve outcomes.
const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
	// IterLimit: the iteration budget was exhausted.
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is a solve result.
type Solution struct {
	Status Status
	// Obj is the objective value (meaningful for Optimal).
	Obj float64
	// X holds the variable values (meaningful for Optimal).
	X []float64
	// Iters is the total simplex iteration count across both phases
	// (primal and dual).
	Iters int
	// Basis is a snapshot of the optimal basis, set on Optimal; pass it
	// as Options.WarmStart to a later solve of a structurally identical
	// problem (e.g. after a bound or RHS change).
	Basis *Basis
	// Warm reports whether the solve reused Options.WarmStart; false
	// with a non-nil WarmStart means the snapshot was rejected and the
	// solver fell back to the cold two-phase path.
	Warm bool
	// Degenerate counts degenerate (zero-step) pivots across the solve —
	// a numerical-health signal: a high share of degenerate pivots means
	// the solver is cycling near a degenerate vertex.
	Degenerate int
	// Refreshes counts primal refreshes / basis refactorizations the
	// solve performed (periodic hygiene plus warm-start installs).
	Refreshes int
	// Profile is the kernel profile (phase-attributed wall-clock and
	// basis-health stats); non-nil only when Options.Profile was set or
	// a flight recorder armed kernel profiling.
	Profile *Profile
}

// Options tunes the solver.
type Options struct {
	// MaxIter bounds total simplex iterations; 0 selects a default
	// proportional to the problem size.
	MaxIter int
	// Tol is the feasibility/optimality tolerance; 0 selects 1e-9.
	Tol float64
	// WarmStart, when non-nil, seeds the solve with a basis snapshot
	// from a previous Solution of a structurally identical problem. The
	// solver refactorizes the basis against the current data and
	// reoptimizes with the dual (or primal) simplex, skipping phase 1;
	// unusable snapshots are rejected and the solve proceeds cold, so a
	// warm start never changes the result, only the work to reach it.
	WarmStart *Basis
	// Trace receives an "lp.warm_start" instant event for every solve
	// that was offered a WarmStart basis (attrs: hit, iters), the raw
	// feed behind the warm-start health counters upstream. nil (the
	// default) costs nothing.
	Trace *obs.Tracer
	// Flight, when non-nil, journals this solve's effort and warm-start
	// outcome into the per-solve flight recorder. nil falls back to the
	// context-carried recorder (flight.WithRecorder), mirroring Trace.
	Flight *flight.Recorder
	// Profile enables the kernel profiler: the Solution carries a Profile
	// attributing wall-clock to simplex phases. When false, a flight
	// recorder with kernel profiling armed (Recorder.EnableKernel) turns
	// it on too. Profiler-off solves pay only nil checks.
	Profile bool
	// ProfileRate is the iteration-sampling stride (time one in N
	// iterations, extrapolate); 0 selects DefaultProfileRate.
	ProfileRate int
	// RefreshEvery overrides the periodic primal-refresh cadence of the
	// simplex loop (iterations between refreshes); 0 keeps the built-in
	// default. The effective value is recorded in the kernel profile so
	// refactor-frequency experiments are reproducible.
	RefreshEvery int
	// ProfileClock replaces the profiler's monotonic clock (nanoseconds
	// since an arbitrary origin) — determinism tests inject a fake clock
	// so same-seed profiles are byte-identical. nil selects wall-clock.
	ProfileClock func() int64

	// prof is the per-Solve profiler instance, threaded to the solver
	// constructors so setup work is attributed too. Set by Solve.
	prof *profiler
}

// Validate rejects nonsense option values with a descriptive error.
// Zero values are valid (they select documented defaults); only values
// that cannot mean anything — negative budgets, tolerances outside
// [0, 1) — are refused. Solve validates its options itself; Validate
// exists so configuration layers can fail fast before queueing work.
func (o Options) Validate() error {
	if o.MaxIter < 0 {
		return fmt.Errorf("lp: Options.MaxIter %d is negative (0 selects the size-proportional default)", o.MaxIter)
	}
	if math.IsNaN(o.Tol) || o.Tol < 0 || o.Tol >= 1 {
		return fmt.Errorf("lp: Options.Tol %g outside [0, 1) (0 selects the default 1e-9)", o.Tol)
	}
	if o.ProfileRate < 0 {
		return fmt.Errorf("lp: Options.ProfileRate %d is negative (0 selects the default %d)", o.ProfileRate, DefaultProfileRate)
	}
	if o.RefreshEvery < 0 {
		return fmt.Errorf("lp: Options.RefreshEvery %d is negative (0 keeps the built-in cadence)", o.RefreshEvery)
	}
	return nil
}

// Solve optimizes the problem. The problem itself is not modified.
//
// Cancellation is cooperative: the simplex loops poll ctx every
// ctxCheckIters iterations, so a canceled or expired context makes
// Solve return ctx.Err() within one check interval. A canceled solve
// returns no Solution and never corrupts warm-start state — the
// WarmStart snapshot is read-only, so it remains valid for a later
// solve.
func Solve(ctx context.Context, p *Problem, opt Options) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Trace == nil {
		// Fall back to the context-carried tracer so server-traced jobs
		// reach this layer without explicit per-call wiring; explicit
		// Options.Trace always wins.
		opt.Trace = obs.TracerFrom(ctx)
	}
	if opt.Flight == nil {
		// Same fallback for the flight recorder: jobs attach one to the
		// context once and every LP solve underneath journals into it.
		opt.Flight = flight.FromContext(ctx)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	// Arm the kernel profiler: explicitly via Options.Profile, or because
	// the attached flight recorder asked for it (Recorder.EnableKernel).
	if !opt.Profile {
		if rate, on := opt.Flight.KernelProfiling(); on {
			opt.Profile = true
			if opt.ProfileRate == 0 {
				opt.ProfileRate = rate
			}
		}
	}
	var tStart int64
	if opt.Profile {
		opt.prof = newProfiler(opt.ProfileRate, opt.ProfileClock)
		tStart = opt.prof.clock()
	}
	if prof := opt.prof; prof != nil {
		t0 := prof.clock()
		err := validate(p)
		prof.direct(phSetup, t0)
		if err != nil {
			return nil, err
		}
	} else if err := validate(p); err != nil {
		return nil, err
	}
	if opt.WarmStart != nil {
		ws, reason := newWarmSolver(p, opt, opt.WarmStart)
		if reason == "" {
			ws.ctx = ctx
			sol, ok, err := ws.runWarm()
			if err != nil {
				return nil, err
			}
			if ok {
				sol.Warm = true
				opt.Trace.Event("lp.warm_start", obs.Bool("hit", true), obs.Int("iters", sol.Iters))
				opt.Flight.NoteWarm(true, "")
				finishSolve(opt, ws, sol, tStart)
				return sol, nil
			}
			// The installed basis reoptimized inconclusively (dual budget
			// exhausted or feasible in neither sense): combinatorially it
			// had gone stale.
			reason = rejectStaleBasis
		}
		// Snapshot rejected: fall back to a cold solve, recording why.
		opt.Trace.Event("lp.warm_start", obs.Bool("hit", false), obs.String("reason", reason))
		opt.Trace.Registry().Counter(obs.Labeled(WarmRejectsMetric, "reason", reason)).Inc()
		opt.Flight.NoteWarm(false, reason)
	}
	s := newSolver(p, opt)
	s.ctx = ctx
	sol, err := s.run()
	if err != nil {
		return nil, err
	}
	finishSolve(opt, s, sol, tStart)
	return sol, nil
}

// finishSolve runs the common completion path: flight accounting, the
// numerical-health Prometheus counters, and — when profiling — building
// the Profile, exporting per-phase seconds, and contributing the kernel
// section to the flight journal.
func finishSolve(opt Options, s *solver, sol *Solution, tStart int64) {
	opt.Flight.NoteLP(sol.Iters, sol.Degenerate, sol.Refreshes)
	reg := opt.Trace.Registry()
	if sol.Degenerate > 0 {
		reg.Counter(DegeneratePivotsMetric).Add(int64(sol.Degenerate))
	}
	if sol.Refreshes > 0 {
		reg.Counter(RefactorizationsMetric).Add(int64(sol.Refreshes))
	}
	prof := opt.prof
	if prof == nil {
		return
	}
	sol.Profile = prof.build(s, prof.clock()-tStart)
	for name, ph := range sol.Profile.Phases {
		reg.Gauge(obs.Labeled(PhaseSecondsMetric, "phase", name)).Add(float64(ph.Nanos) / 1e9)
	}
	opt.Flight.NoteKernel(sol.Profile.Kernel())
}

func validate(p *Problem) error {
	for j := range p.c {
		if p.lb[j] > p.ub[j] {
			return fmt.Errorf("lp: variable %d has lb %g > ub %g", j, p.lb[j], p.ub[j])
		}
		if math.IsNaN(p.c[j]) || math.IsNaN(p.lb[j]) || math.IsNaN(p.ub[j]) {
			return fmt.Errorf("lp: variable %d has NaN data", j)
		}
	}
	for i, r := range p.rows {
		if math.IsNaN(r.RHS) || math.IsInf(r.RHS, 0) {
			return fmt.Errorf("lp: row %d has invalid rhs %g", i, r.RHS)
		}
		for _, v := range r.Val {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: row %d has invalid coefficient %g", i, v)
			}
		}
	}
	if len(p.rows) == 0 {
		return errors.New("lp: problem has no rows")
	}
	return nil
}
