package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func TestBasisMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng)
		sol, err := Solve(context.Background(), p, Options{})
		if err != nil || sol.Status != Optimal {
			continue
		}
		blob, err := sol.Basis.MarshalBinary()
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		back, err := UnmarshalBasis(blob)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		// The decoded snapshot must warm-start the same problem to the
		// same optimum with zero or near-zero extra pivots, exactly
		// like the in-memory snapshot would.
		warm, err := Solve(context.Background(), p, Options{WarmStart: back})
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: warm status %v", trial, warm.Status)
		}
		if math.Abs(warm.Obj-sol.Obj) > 1e-7*(1+math.Abs(sol.Obj)) {
			t.Fatalf("trial %d: warm obj %g vs cold %g", trial, warm.Obj, sol.Obj)
		}
		if !warm.Warm {
			t.Fatalf("trial %d: decoded basis rejected", trial)
		}
	}
}

func TestUnmarshalBasisRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"short":        {'L', 'P', 'B', '1', 0},
		"bad-magic":    append([]byte("XXXX"), make([]byte, 20)...),
		"length-drift": append([]byte("LPB1"), make([]byte, 9)...),
	}
	for label, blob := range cases {
		if _, err := UnmarshalBasis(blob); err == nil {
			t.Fatalf("%s: expected decode error", label)
		}
	}
}
