package lp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 3)
	y := p.AddVar(-2.5, math.Inf(-1), Inf)
	z := p.AddVar(0, 0, Inf)
	p.MustAddRow(LE, 4, []int{x, y}, []float64{1, 1})
	p.MustAddRow(GE, -1, []int{y, z}, []float64{-1, 2})
	p.MustAddRow(EQ, 2, []int{x}, []float64{1})

	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize",
		"obj: x0 - 2.5 x1",
		"Subject To",
		"c0: x0 + x1 <= 4",
		"c1: - x1 + 2 x2 >= -1",
		"c2: x0 = 2",
		"Bounds",
		"0 <= x0 <= 3",
		"x1 free",
		"x2 >= 0",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPZeroObjective(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 0, 1)
	p.MustAddRow(LE, 1, []int{x}, []float64{1})
	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obj: 0 x0") {
		t.Fatalf("zero objective rendered wrong:\n%s", buf.String())
	}
}
