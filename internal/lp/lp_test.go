package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const testTol = 1e-6

// checkFeasible asserts x satisfies every row and bound of p.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for j := 0; j < p.NumVars(); j++ {
		lb, ub := p.Bounds(j)
		if x[j] < lb-testTol || x[j] > ub+testTol {
			t.Fatalf("var %d = %g outside [%g, %g]", j, x[j], lb, ub)
		}
	}
	for i, r := range p.rows {
		v := 0.0
		for k, j := range r.Idx {
			v += r.Val[k] * x[j]
		}
		switch r.Sense {
		case LE:
			if v > r.RHS+testTol {
				t.Fatalf("row %d: %g > %g", i, v, r.RHS)
			}
		case GE:
			if v < r.RHS-testTol {
				t.Fatalf("row %d: %g < %g", i, v, r.RHS)
			}
		case EQ:
			if math.Abs(v-r.RHS) > testTol {
				t.Fatalf("row %d: %g != %g", i, v, r.RHS)
			}
		}
	}
}

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return sol
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+y <= 4, x <= 3, y <= 3  => min -(x+y) = -4.
	p := NewProblem()
	x := p.AddVar(-1, 0, 3)
	y := p.AddVar(-1, 0, 3)
	p.MustAddRow(LE, 4, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj-(-4)) > testTol {
		t.Fatalf("obj = %g, want -4", sol.Obj)
	}
	checkFeasible(t, p, sol.X)
}

func TestEqualityRow(t *testing.T) {
	// min x+2y s.t. x+y = 5, x <= 3 => x=3, y=2, obj 7.
	p := NewProblem()
	x := p.AddVar(1, 0, 3)
	y := p.AddVar(2, 0, Inf)
	p.MustAddRow(EQ, 5, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj-7) > testTol {
		t.Fatalf("obj = %g, want 7", sol.Obj)
	}
	checkFeasible(t, p, sol.X)
}

func TestGERow(t *testing.T) {
	// min 3x+2y s.t. x+y >= 4, x >= 0, y >= 0 => y=4, obj 8.
	p := NewProblem()
	x := p.AddVar(3, 0, Inf)
	y := p.AddVar(2, 0, Inf)
	p.MustAddRow(GE, 4, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Obj-8) > testTol {
		t.Fatalf("obj = %g, want 8", sol.Obj)
	}
	checkFeasible(t, p, sol.X)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 1)
	p.MustAddRow(GE, 3, []int{x}, []float64{1})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	// x+y=1 and x+y=2 cannot both hold.
	p := NewProblem()
	x := p.AddVar(0, 0, Inf)
	y := p.AddVar(0, 0, Inf)
	p.MustAddRow(EQ, 1, []int{x, y}, []float64{1, 1})
	p.MustAddRow(EQ, 2, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, 0, Inf)
	y := p.AddVar(0, 0, 1)
	p.MustAddRow(GE, 0, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3), x in [0,10] => 3.
	p := NewProblem()
	x := p.AddVar(1, 0, 10)
	p.MustAddRow(LE, -3, []int{x}, []float64{-1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Obj-3) > testTol {
		t.Fatalf("got %v obj %g, want optimal 3", sol.Status, sol.Obj)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 via row; x free => -5.
	p := NewProblem()
	x := p.AddVar(1, math.Inf(-1), Inf)
	p.MustAddRow(GE, -5, []int{x}, []float64{1})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Obj-(-5)) > testTol {
		t.Fatalf("got %v obj %g, want optimal -5", sol.Status, sol.Obj)
	}
}

func TestUpperBoundFlip(t *testing.T) {
	// max sum x_i with sum <= n-0.5 exercises bound flips.
	p := NewProblem()
	n := 8
	idx := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = p.AddVar(-1, 0, 1)
		val[i] = 1
	}
	p.MustAddRow(LE, float64(n)-0.5, idx, val)
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Obj-(-(float64(n)-0.5))) > testTol {
		t.Fatalf("got %v obj %g", sol.Status, sol.Obj)
	}
	checkFeasible(t, p, sol.X)
}

// bruteAssignment finds the optimal assignment cost by permutation
// enumeration.
func bruteAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// TestAssignmentLP checks LP optimality against brute force on random
// assignment problems; the assignment polytope is integral, so the LP
// optimum equals the combinatorial optimum.
func TestAssignmentLP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		p := NewProblem()
		vars := make([][]int, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			vars[i] = make([]int, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50)) / 5
				vars[i][j] = p.AddVar(cost[i][j], 0, 1)
			}
		}
		for i := 0; i < n; i++ {
			idx := make([]int, n)
			val := make([]float64, n)
			for j := 0; j < n; j++ {
				idx[j] = vars[i][j]
				val[j] = 1
			}
			p.MustAddRow(EQ, 1, idx, val) // each worker assigned
		}
		for j := 0; j < n; j++ {
			idx := make([]int, n)
			val := make([]float64, n)
			for i := 0; i < n; i++ {
				idx[i] = vars[i][j]
				val[i] = 1
			}
			p.MustAddRow(EQ, 1, idx, val) // each task covered
		}
		sol := solveOK(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		want := bruteAssignment(cost)
		if math.Abs(sol.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: LP obj %g, brute %g", trial, sol.Obj, want)
		}
		checkFeasible(t, p, sol.X)
	}
}

// TestKnapsackRelaxation compares against the closed-form greedy optimum
// of the fractional knapsack.
func TestKnapsackRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		w := make([]float64, n)
		v := make([]float64, n)
		p := NewProblem()
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			w[i] = 1 + float64(rng.Intn(9))
			v[i] = 1 + float64(rng.Intn(20))
			idx[i] = p.AddVar(-v[i], 0, 1)
		}
		capacity := 1 + rng.Float64()*20
		p.MustAddRow(LE, capacity, idx, w)
		sol := solveOK(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Greedy fractional optimum.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := range order {
			for j := i + 1; j < n; j++ {
				if v[order[j]]/w[order[j]] > v[order[i]]/w[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		rem, val := capacity, 0.0
		for _, i := range order {
			take := math.Min(1, rem/w[i])
			val += take * v[i]
			rem -= take * w[i]
			if rem <= 0 {
				break
			}
		}
		if math.Abs(-sol.Obj-val) > 1e-6 {
			t.Fatalf("trial %d: LP %g, greedy %g", trial, -sol.Obj, val)
		}
	}
}

// TestRandomFeasibility property: on random LPs built around a known
// feasible point, the solver never reports infeasible, and its solution
// is feasible with objective no worse than the seed point.
func TestRandomFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		p := NewProblem()
		x0 := make([]float64, n)
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64() * 4
			p.AddVar(rng.Float64()*4-2, 0, 5)
		}
		for i := 0; i < m; i++ {
			var idx []int
			var val []float64
			sum := 0.0
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					c := rng.Float64()*4 - 2
					idx = append(idx, j)
					val = append(val, c)
					sum += c * x0[j]
				}
			}
			if len(idx) == 0 {
				continue
			}
			// Build the row to be satisfied by x0 with margin.
			switch rng.Intn(3) {
			case 0:
				p.MustAddRow(LE, sum+rng.Float64(), idx, val)
			case 1:
				p.MustAddRow(GE, sum-rng.Float64(), idx, val)
			default:
				p.MustAddRow(EQ, sum, idx, val)
			}
		}
		if p.NumRows() == 0 {
			return true
		}
		sol, err := Solve(context.Background(), p, Options{})
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		if sol.Status == Infeasible {
			t.Logf("seed %d: reported infeasible but x0 feasible", seed)
			return false
		}
		if sol.Status != Optimal {
			return true // unbounded is possible with random costs
		}
		// Objective must be <= objective at x0.
		obj0 := 0.0
		for j := 0; j < n; j++ {
			obj0 += p.Obj(j) * x0[j]
		}
		if sol.Obj > obj0+1e-6 {
			t.Logf("seed %d: obj %g worse than seed point %g", seed, sol.Obj, obj0)
			return false
		}
		// And the solution must actually be feasible.
		for i, r := range p.rows {
			v := 0.0
			for k, j := range r.Idx {
				v += r.Val[k] * sol.X[j]
			}
			switch r.Sense {
			case LE:
				if v > r.RHS+testTol {
					t.Logf("seed %d row %d violated", seed, i)
					return false
				}
			case GE:
				if v < r.RHS-testTol {
					t.Logf("seed %d row %d violated", seed, i)
					return false
				}
			case EQ:
				if math.Abs(v-r.RHS) > testTol {
					t.Logf("seed %d row %d violated", seed, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateTransportation(t *testing.T) {
	// A degenerate transportation problem (supplies equal demands with
	// many ties) exercises anti-cycling.
	p := NewProblem()
	n := 4
	vars := make([][]int, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]int, n)
		for j := 0; j < n; j++ {
			vars[i][j] = p.AddVar(1, 0, Inf) // all costs equal: fully degenerate
		}
	}
	for i := 0; i < n; i++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for j := 0; j < n; j++ {
			idx[j], val[j] = vars[i][j], 1
		}
		p.MustAddRow(EQ, 1, idx, val)
	}
	for j := 0; j < n; j++ {
		idx := make([]int, n)
		val := make([]float64, n)
		for i := 0; i < n; i++ {
			idx[i], val[i] = vars[i][j], 1
		}
		p.MustAddRow(EQ, 1, idx, val)
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Obj-float64(n)) > testTol {
		t.Fatalf("got %v obj %g, want optimal %d", sol.Status, sol.Obj, n)
	}
}

func TestValidationErrors(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 1)
	if err := p.AddRow(LE, 1, []int{x, x}, []float64{1, 1}); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	if err := p.AddRow(LE, 1, []int{x + 5}, []float64{1}); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	if err := p.AddRow(LE, 1, []int{x}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	p2 := NewProblem()
	p2.AddVar(1, 2, 1) // lb > ub
	p2.MustAddRow(LE, 1, []int{0}, []float64{1})
	if _, err := Solve(context.Background(), p2, Options{}); err == nil {
		t.Fatal("lb > ub accepted")
	}
	p3 := NewProblem()
	p3.AddVar(1, 0, 1)
	if _, err := Solve(context.Background(), p3, Options{}); err == nil {
		t.Fatal("empty row set accepted")
	}
}

func TestCloneBoundsIsolation(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 5)
	p.MustAddRow(LE, 10, []int{x}, []float64{1})
	q := p.CloneBounds()
	q.SetBounds(x, 2, 3)
	if lb, ub := p.Bounds(x); lb != 0 || ub != 5 {
		t.Fatalf("clone mutated parent bounds: [%g,%g]", lb, ub)
	}
	if lb, ub := q.Bounds(x); lb != 2 || ub != 3 {
		t.Fatalf("clone bounds wrong: [%g,%g]", lb, ub)
	}
}

func TestFixedVariables(t *testing.T) {
	// Fixed vars (lb == ub) must be respected, as used by B&B.
	p := NewProblem()
	x := p.AddVar(-1, 1, 1) // fixed at 1
	y := p.AddVar(-1, 0, 5)
	p.MustAddRow(LE, 4, []int{x, y}, []float64{1, 1})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[x]-1) > testTol || math.Abs(sol.X[y]-3) > testTol {
		t.Fatalf("x=%g y=%g, want 1,3", sol.X[x], sol.X[y])
	}
}
