package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteLP serializes the problem in the (CPLEX) LP text format, the
// lingua franca of LP debugging: the output loads into any external
// solver for cross-checking, and diffs cleanly in tests. Variables are
// named x0..xN-1.
func WriteLP(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	wrote := false
	for j := 0; j < p.NumVars(); j++ {
		c := p.Obj(j)
		if c == 0 {
			continue
		}
		writeTerm(bw, c, j, !wrote)
		wrote = true
	}
	if !wrote {
		fmt.Fprint(bw, " 0 x0")
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, r := range p.Rows() {
		fmt.Fprintf(bw, " c%d:", i)
		for k, j := range r.Idx {
			writeTerm(bw, r.Val[k], j, k == 0)
		}
		switch r.Sense {
		case LE:
			fmt.Fprintf(bw, " <= %g", r.RHS)
		case GE:
			fmt.Fprintf(bw, " >= %g", r.RHS)
		case EQ:
			fmt.Fprintf(bw, " = %g", r.RHS)
		}
		fmt.Fprintln(bw)
	}

	fmt.Fprintln(bw, "Bounds")
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " x%d free\n", j)
		case math.IsInf(hi, 1):
			fmt.Fprintf(bw, " x%d >= %g\n", j, lo)
		case math.IsInf(lo, -1):
			fmt.Fprintf(bw, " x%d <= %g\n", j, hi)
		default:
			fmt.Fprintf(bw, " %g <= x%d <= %g\n", lo, j, hi)
		}
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func writeTerm(w io.Writer, c float64, j int, first bool) {
	switch {
	case first && c == 1:
		fmt.Fprintf(w, " x%d", j)
	case first && c == -1:
		fmt.Fprintf(w, " - x%d", j)
	case first:
		fmt.Fprintf(w, " %g x%d", c, j)
	case c == 1:
		fmt.Fprintf(w, " + x%d", j)
	case c == -1:
		fmt.Fprintf(w, " - x%d", j)
	case c < 0:
		fmt.Fprintf(w, " - %g x%d", -c, j)
	default:
		fmt.Fprintf(w, " + %g x%d", c, j)
	}
}
