package lp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// slowProblem builds a dense equality-constrained LP that is feasible
// by construction (RHS from a random interior point) but needs a full
// phase-1/phase-2 run of several hundred simplex iterations —
// comfortably more than one ctxCheckIters interval.
func slowProblem(rng *rand.Rand, n int) *Problem {
	p := NewProblem()
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddVar(rng.Float64()-0.5, 0, 10)
		x0[j] = 10 * rng.Float64()
	}
	for i := 0; i < n; i++ {
		idx := make([]int, 0, n/2)
		val := make([]float64, 0, n/2)
		rhs := 0.0
		for j := 0; j < n; j++ {
			if (i+j*j)%3 == 0 {
				v := 1 + rng.Float64()
				idx = append(idx, j)
				val = append(val, v)
				rhs += v * x0[j]
			}
		}
		p.MustAddRow(EQ, rhs, idx, val)
	}
	return p
}

func TestSolveCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := slowProblem(rand.New(rand.NewSource(1)), 20)
	sol, err := Solve(ctx, p, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (sol %v)", err, sol)
	}
	if sol != nil {
		t.Fatalf("canceled solve returned a solution: %+v", sol)
	}
}

func TestSolveCanceledMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := slowProblem(rng, 120)

	// Reference: the uncanceled solve must need more than one check
	// interval, or this test would not exercise the mid-solve path.
	ref, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Iters <= ctxCheckIters {
		t.Skipf("reference solve took only %d iters; problem too easy", ref.Iters)
	}

	// cancelAfterIters trips after a fixed number of Err polls, making
	// the test deterministic (a wall-clock timer would race the solver).
	ctx := &countingCtx{Context: context.Background(), fuse: 3}
	_, err = Solve(ctx, p, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// The canceled attempt must not have corrupted anything: the same
	// problem solves identically afterwards.
	again, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != ref.Status || again.Obj != ref.Obj || again.Iters != ref.Iters {
		t.Fatalf("solve after cancellation diverged: %+v vs %+v", again, ref)
	}
}

func TestWarmStartSurvivesCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := slowProblem(rng, 80)
	root, err := Solve(context.Background(), p, Options{})
	if err != nil || root.Status != Optimal {
		t.Fatalf("root solve: %v %v", root, err)
	}

	// Tighten a bound and reoptimize warm — reference run first.
	q := p.CloneBounds()
	q.SetBounds(3, 0, 0.5)
	ref, err := Solve(context.Background(), q, Options{WarmStart: root.Basis})
	if err != nil {
		t.Fatal(err)
	}

	// A canceled warm solve must return ctx.Err() and leave the basis
	// snapshot reusable: re-running warm afterwards matches the
	// reference exactly.
	ctx := &countingCtx{Context: context.Background(), fuse: 1}
	if _, err := Solve(ctx, q, Options{WarmStart: root.Basis}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	again, err := Solve(context.Background(), q, Options{WarmStart: root.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != ref.Status || again.Obj != ref.Obj || again.Warm != ref.Warm || again.Iters != ref.Iters {
		t.Fatalf("warm solve after cancellation diverged: %+v vs %+v", again, ref)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	if err := (Options{MaxIter: -1}).Validate(); err == nil {
		t.Fatal("negative MaxIter accepted")
	}
	if err := (Options{Tol: -0.1}).Validate(); err == nil {
		t.Fatal("negative Tol accepted")
	}
	if err := (Options{Tol: 1.5}).Validate(); err == nil {
		t.Fatal("Tol >= 1 accepted")
	}
	p := NewProblem()
	p.AddVar(1, 0, 1)
	p.MustAddRow(LE, 1, []int{0}, []float64{1})
	if _, err := Solve(context.Background(), p, Options{MaxIter: -5}); err == nil {
		t.Fatal("Solve accepted invalid options")
	}
}

// countingCtx reports Canceled after its Err has been polled fuse
// times; Deadline/Done/Value delegate to the parent. It makes
// mid-solve cancellation deterministic without timers.
type countingCtx struct {
	context.Context
	polls int
	fuse  int
}

func (c *countingCtx) Err() error {
	c.polls++
	if c.polls > c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return c.Context.Done() }

func (c *countingCtx) Deadline() (time.Time, bool) { return c.Context.Deadline() }
