package lp

import (
	"context"
	"math"
)

// statusCanceled is the internal sentinel the pivot loops return when
// the solve's context is done; run/runWarm map it to ctx.Err(). It is
// never stored on a Solution.
const statusCanceled Status = -1

// Variable statuses.
const (
	atLower int8 = iota
	atUpper
	atFree // nonbasic free variable, parked at zero
	basic
)

type colref struct {
	idx []int32
	val []float64
}

type solver struct {
	m       int // rows
	nStruct int // structural variables
	n       int // total variables (struct + slacks + artificials)

	cols []colref
	cost []float64 // phase-2 objective, extended with zeros
	lb   []float64
	ub   []float64
	b    []float64

	basis []int  // row -> basic variable
	vstat []int8 // variable -> status
	x     []float64
	xB    []float64
	binv  [][]float64

	artStart int // first artificial variable index (== n if none)

	tol     float64
	maxIter int
	iters   int

	bland       bool
	degenCount  int // consecutive degenerate steps (resets; drives Bland's rule)
	degenTotal  int // all degenerate steps this solve (never resets; health counter)
	degenRunMax int // longest consecutive degenerate run this solve
	refreshes   int // primal refreshes / refactorizations this solve

	// refreshEvery is the periodic primal-refresh cadence
	// (Options.RefreshEvery, default refreshN).
	refreshEvery int

	// prof is the kernel profiler, nil when profiling is off; the hot
	// loops pay one nil check per phase.
	prof *profiler
	// rowFam is the problem's row-family labels (shared, read-only),
	// for pivot attribution.
	rowFam []string

	// ctx carries the solve's cancellation signal; polled by the pivot
	// loops every ctxCheckIters iterations. nil disables the checks.
	ctx context.Context
}

const (
	pivTol   = 1e-8
	degTol   = 1e-10
	blandTrg = 2000 // consecutive degenerate iterations before Bland's rule
	refreshN = 512  // iterations between primal refreshes

	// ctxCheckIters is the cooperative-cancellation poll interval of the
	// simplex loops: cheap enough to be negligible per iteration, tight
	// enough that a canceled solve returns within a few milliseconds.
	ctxCheckIters = 128
)

// canceled reports whether the solve's context is done. Polled at loop
// heads gated by iteration count, so the common path costs one nil
// check.
func (s *solver) canceled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// newCore builds the solver skeleton shared by the cold and warm paths:
// structural columns, costs, bounds, RHS, default nonbasic statuses, and
// one slack per row (indices nStruct..nStruct+m-1, in row order). No
// basis is installed; artStart is provisionally n (no artificials).
func newCore(p *Problem, opt Options) *solver {
	var t0 int64
	if opt.prof != nil {
		t0 = opt.prof.clock()
	}
	m := len(p.rows)
	nStruct := len(p.c)
	s := &solver{
		m:       m,
		nStruct: nStruct,
		tol:     opt.Tol,
		prof:    opt.prof,
		rowFam:  p.rowFam,
	}
	if s.tol <= 0 {
		s.tol = 1e-7
	}
	s.refreshEvery = opt.RefreshEvery
	if s.refreshEvery <= 0 {
		s.refreshEvery = refreshN
	}

	// Structural columns from the row-wise input.
	s.cols = make([]colref, nStruct, nStruct+2*m)
	for i, r := range p.rows {
		for k, j := range r.Idx {
			s.cols[j].idx = append(s.cols[j].idx, int32(i))
			s.cols[j].val = append(s.cols[j].val, r.Val[k])
		}
	}
	s.cost = append([]float64(nil), p.c...)
	s.lb = append([]float64(nil), p.lb...)
	s.ub = append([]float64(nil), p.ub...)
	s.b = make([]float64, m)
	for i, r := range p.rows {
		s.b[i] = r.RHS
	}

	// Initial nonbasic statuses and values for structurals: the finite
	// bound nearest zero, or zero for free variables.
	s.x = make([]float64, nStruct, nStruct+2*m)
	s.vstat = make([]int8, nStruct, nStruct+2*m)
	for j := 0; j < nStruct; j++ {
		lf, uf := !math.IsInf(s.lb[j], -1), !math.IsInf(s.ub[j], 1)
		switch {
		case lf && uf:
			if math.Abs(s.lb[j]) <= math.Abs(s.ub[j]) {
				s.vstat[j], s.x[j] = atLower, s.lb[j]
			} else {
				s.vstat[j], s.x[j] = atUpper, s.ub[j]
			}
		case lf:
			s.vstat[j], s.x[j] = atLower, s.lb[j]
		case uf:
			s.vstat[j], s.x[j] = atUpper, s.ub[j]
		default:
			s.vstat[j], s.x[j] = atFree, 0
		}
	}

	// All structural arrays are in place; subsequent addCol calls append
	// slacks and artificials after them.
	s.n = nStruct

	// Slack per row: coefficient +1, bounds from the sense.
	for i, r := range p.rows {
		var lo, hi float64
		switch r.Sense {
		case LE:
			lo, hi = 0, Inf
		case GE:
			lo, hi = math.Inf(-1), 0
		default: // EQ
			lo, hi = 0, 0
		}
		j := s.addCol(0, lo, hi)
		s.cols[j].idx = append(s.cols[j].idx, int32(i))
		s.cols[j].val = append(s.cols[j].val, 1)
	}
	s.artStart = s.n

	s.maxIter = opt.MaxIter
	if s.maxIter <= 0 {
		s.maxIter = 10000 + 20*(s.m+s.n)
		if s.maxIter > 400000 {
			s.maxIter = 400000
		}
	}
	if s.prof != nil {
		s.prof.direct(phSetup, t0)
	}
	return s
}

func newSolver(p *Problem, opt Options) *solver {
	s := newCore(p, opt)
	var t0 int64
	if s.prof != nil {
		t0 = s.prof.clock()
	}
	m := s.m
	nStruct := s.nStruct

	// Residuals with all structurals at their initial values.
	resid := append([]float64(nil), s.b...)
	for j := 0; j < nStruct; j++ {
		if s.x[j] != 0 {
			c := s.cols[j]
			for k, i := range c.idx {
				resid[i] -= c.val[k] * s.x[j]
			}
		}
	}

	// Basis: slack where the residual fits its bounds, artificial
	// otherwise. Both give a +-1 diagonal basis matrix.
	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	s.binv = make([][]float64, m)
	diag := make([]float64, m)
	s.artStart = s.n
	for i := 0; i < m; i++ {
		sj := nStruct + i // slack of row i (newCore appends in row order)
		if resid[i] >= s.lb[sj]-s.tol && resid[i] <= s.ub[sj]+s.tol {
			s.basis[i] = sj
			s.vstat[sj] = basic
			s.x[sj] = resid[i]
			s.xB[i] = resid[i]
			diag[i] = 1
			continue
		}
		// Slack stays nonbasic at zero; artificial carries the residual.
		s.x[sj] = 0
		if s.lb[sj] == 0 {
			s.vstat[sj] = atLower
		} else {
			s.vstat[sj] = atUpper
		}
		coeff := 1.0
		if resid[i] < 0 {
			coeff = -1
		}
		aj := s.addCol(0, 0, Inf)
		s.cols[aj].idx = append(s.cols[aj].idx, int32(i))
		s.cols[aj].val = append(s.cols[aj].val, coeff)
		s.basis[i] = aj
		s.vstat[aj] = basic
		s.x[aj] = math.Abs(resid[i])
		s.xB[i] = s.x[aj]
		diag[i] = coeff
	}
	for i := 0; i < m; i++ {
		s.binv[i] = make([]float64, m)
		s.binv[i][i] = diag[i]
	}
	if s.prof != nil {
		s.prof.direct(phSetup, t0)
	}
	return s
}

// addCol appends a variable (column entries added by the caller) and
// returns its index.
func (s *solver) addCol(c, lo, hi float64) int {
	j := s.n
	s.n++
	s.cols = append(s.cols, colref{})
	s.cost = append(s.cost, c)
	s.lb = append(s.lb, lo)
	s.ub = append(s.ub, hi)
	s.x = append(s.x, 0)
	s.vstat = append(s.vstat, atLower)
	return j
}

func (s *solver) run() (*Solution, error) {
	// Phase 1: drive artificials to zero.
	if s.artStart < s.n {
		ph1 := make([]float64, s.n)
		for j := s.artStart; j < s.n; j++ {
			ph1[j] = 1
		}
		st := s.iterate(ph1)
		if st == statusCanceled {
			return nil, s.ctx.Err()
		}
		if st == IterLimit {
			return s.stamp(&Solution{Status: IterLimit, Iters: s.iters}), nil
		}
		infeas := 0.0
		for j := s.artStart; j < s.n; j++ {
			infeas += s.x[j]
		}
		scale := 1.0
		for _, v := range s.b {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		if infeas > 1e-6*scale {
			return s.stamp(&Solution{Status: Infeasible, Iters: s.iters}), nil
		}
		// Pin artificials at zero for phase 2.
		for j := s.artStart; j < s.n; j++ {
			s.lb[j], s.ub[j] = 0, 0
			if s.vstat[j] != basic {
				s.vstat[j] = atLower
				s.x[j] = 0
			}
		}
	}

	// Phase 2.
	st := s.iterate(s.cost)
	if st == statusCanceled {
		return nil, s.ctx.Err()
	}
	sol := s.stamp(&Solution{Status: st, Iters: s.iters})
	if st == Optimal {
		sol.X = append([]float64(nil), s.x[:s.nStruct]...)
		obj := 0.0
		for j := 0; j < s.nStruct; j++ {
			obj += s.cost[j] * s.x[j]
		}
		sol.Obj = obj
		sol.Basis = s.snapshot()
	}
	return sol, nil
}

// computeDuals fills y = cB' * Binv for the given cost vector.
func (s *solver) computeDuals(cost, y []float64) {
	m := s.m
	for k := 0; k < m; k++ {
		y[k] = 0
	}
	for i := 0; i < m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
}

// dualsProfiled is computeDuals with the O(m²) dual recomputation
// attributed to the pricing phase when profiling is armed.
func (s *solver) dualsProfiled(cost, y []float64) {
	if s.prof == nil {
		s.computeDuals(cost, y)
		return
	}
	t0 := s.prof.clock()
	s.computeDuals(cost, y)
	s.prof.direct(phPricing, t0)
}

// iterate runs bounded simplex iterations under the given cost vector
// until optimality, unboundedness, or the iteration budget.
func (s *solver) iterate(cost []float64) Status {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	prof := s.prof

	// Duals: y = cB' * Binv, recomputed from scratch here and at
	// every refresh, and updated incrementally after each pivot via
	// y' = y + d_entering * Binv'[leaving,:] (an O(m) identity).
	s.dualsProfiled(cost, y)

	for ; s.iters < s.maxIter; s.iters++ {
		if s.iters%ctxCheckIters == 0 && s.canceled() {
			return statusCanceled
		}
		if s.iters > 0 && s.iters%s.refreshEvery == 0 {
			s.refresh()
			s.dualsProfiled(cost, y)
		}

		// Phase counts advance every iteration; wall-clock is read only
		// on sampled iterations and extrapolated (see profiler).
		var timed bool
		var t0 int64
		if prof != nil {
			timed = prof.beginIter()
			if timed {
				t0 = prof.clock()
			}
		}

		// Pricing.
		entering := -1
		var dir, enterD float64
		bestViol := s.tol
		for j := 0; j < s.n; j++ {
			st := s.vstat[j]
			if st == basic || s.lb[j] == s.ub[j] {
				continue
			}
			c := s.cols[j]
			d := cost[j]
			for k, i := range c.idx {
				d -= y[i] * c.val[k]
			}
			var viol, dj float64
			switch st {
			case atLower:
				if d < -bestViol {
					viol, dj = -d, 1
				}
			case atUpper:
				if d > bestViol {
					viol, dj = d, -1
				}
			case atFree:
				if d < -bestViol {
					viol, dj = -d, 1
				} else if d > bestViol {
					viol, dj = d, -1
				}
			}
			if dj != 0 {
				entering, dir, enterD = j, dj, d
				if s.bland {
					break // Bland: first eligible index
				}
				bestViol = viol
			}
		}
		if prof != nil {
			t0 = prof.phase(phPricing, timed, t0)
		}
		if entering == -1 {
			return Optimal
		}

		// FTRAN: w = Binv * A[entering].
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		ec := s.cols[entering]
		for k, i := range ec.idx {
			v := ec.val[k]
			for r := 0; r < m; r++ {
				w[r] += s.binv[r][int(i)] * v
			}
		}
		if prof != nil {
			t0 = prof.phase(phFtran, timed, t0)
		}

		// Ratio test.
		tBest := Inf
		if !math.IsInf(s.lb[entering], -1) && !math.IsInf(s.ub[entering], 1) {
			tBest = s.ub[entering] - s.lb[entering] // bound flip
		}
		leaving := -1
		leavingToUpper := false
		for i := 0; i < m; i++ {
			delta := dir * w[i]
			bi := s.basis[i]
			var lim float64
			var toUpper bool
			if delta > pivTol {
				if math.IsInf(s.lb[bi], -1) {
					continue
				}
				lim = (s.xB[i] - s.lb[bi]) / delta
			} else if delta < -pivTol {
				if math.IsInf(s.ub[bi], 1) {
					continue
				}
				lim = (s.ub[bi] - s.xB[i]) / (-delta)
				toUpper = true
			} else {
				continue
			}
			if lim < 0 {
				lim = 0
			}
			take := false
			if lim < tBest-1e-10 {
				take = true
			} else if lim <= tBest+1e-10 && leaving >= 0 {
				if s.bland {
					take = s.basis[i] < s.basis[leaving]
				} else {
					take = math.Abs(w[i]) > math.Abs(w[leaving])
				}
			} else if lim <= tBest+1e-10 && leaving < 0 && lim < tBest {
				take = true
			}
			if take {
				tBest, leaving, leavingToUpper = lim, i, toUpper
			}
		}
		if prof != nil {
			t0 = prof.phase(phRatio, timed, t0)
		}
		if math.IsInf(tBest, 1) {
			return Unbounded
		}
		t := tBest

		// Apply the step.
		if t != 0 {
			for i := 0; i < m; i++ {
				if w[i] != 0 {
					s.xB[i] -= dir * w[i] * t
					s.x[s.basis[i]] = s.xB[i]
				}
			}
			s.x[entering] += dir * t
		}
		if t < degTol {
			s.degenCount++
			s.degenTotal++
			if s.degenCount > s.degenRunMax {
				s.degenRunMax = s.degenCount
			}
			if s.degenCount > blandTrg {
				s.bland = true
			}
		} else {
			s.degenCount = 0
			if s.bland && s.degenCount == 0 {
				s.bland = false
			}
		}

		if leaving < 0 {
			// Bound flip of the entering variable.
			if dir > 0 {
				s.vstat[entering] = atUpper
				s.x[entering] = s.ub[entering]
			} else {
				s.vstat[entering] = atLower
				s.x[entering] = s.lb[entering]
			}
			if prof != nil {
				prof.phase(phUpdate, timed, t0)
			}
			continue
		}

		// Pivot: entering replaces basis[leaving].
		lv := s.basis[leaving]
		if leavingToUpper {
			s.vstat[lv] = atUpper
			s.x[lv] = s.ub[lv]
		} else {
			s.vstat[lv] = atLower
			s.x[lv] = s.lb[lv]
		}
		s.vstat[entering] = basic
		s.basis[leaving] = entering
		s.xB[leaving] = s.x[entering]

		piv := w[leaving]
		rowL := s.binv[leaving]
		invPiv := 1 / piv
		for k := 0; k < m; k++ {
			rowL[k] *= invPiv
		}
		for i := 0; i < m; i++ {
			if i == leaving {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < m; k++ {
				row[k] -= f * rowL[k]
			}
		}
		// Incremental dual update: y' = y + d_entering * Binv'[leaving,:].
		if enterD != 0 {
			for k := 0; k < m; k++ {
				y[k] += enterD * rowL[k]
			}
		}
		if prof != nil {
			prof.phase(phUpdate, timed, t0)
			prof.pivotFamily(s.rowFamilyOf(leaving))
		}
	}
	return IterLimit
}

// stamp copies the solver's numerical-health counters onto a solution;
// every Solution a solver returns passes through it.
func (s *solver) stamp(sol *Solution) *Solution {
	sol.Degenerate = s.degenTotal
	sol.Refreshes = s.refreshes
	return sol
}

// refresh recomputes basic values from the nonbasic solution to curb
// drift from accumulated pivot updates. Self-instrumented (every call
// site — periodic hygiene, warm install, dual reverify — is timed
// uniformly as the refresh phase).
func (s *solver) refresh() {
	var t0 int64
	if s.prof != nil {
		t0 = s.prof.clock()
	}
	s.refreshes++
	r := append([]float64(nil), s.b...)
	for j := 0; j < s.n; j++ {
		if s.vstat[j] == basic || s.x[j] == 0 {
			continue
		}
		c := s.cols[j]
		for k, i := range c.idx {
			r[i] -= c.val[k] * s.x[j]
		}
	}
	for i := 0; i < s.m; i++ {
		v := 0.0
		row := s.binv[i]
		for k := 0; k < s.m; k++ {
			v += row[k] * r[k]
		}
		s.xB[i] = v
		s.x[s.basis[i]] = v
	}
	if s.prof != nil {
		s.prof.direct(phRefresh, t0)
	}
}
