package lp

import (
	"time"

	"agingfp/internal/flight"
)

// Simplex phase names, re-exported from the flight taxonomy so callers
// of the lp package need not import flight to read a Profile.
const (
	PhaseSetup   = flight.PhaseSetup
	PhasePricing = flight.PhasePricing
	PhaseFtran   = flight.PhaseFtran
	PhaseRatio   = flight.PhaseRatio
	PhaseUpdate  = flight.PhaseUpdate
	PhaseRefresh = flight.PhaseRefresh
)

// Internal phase indices; the hot loop indexes fixed arrays, names are
// applied only when the Profile is built.
const (
	phSetup = iota
	phPricing
	phFtran
	phRatio
	phUpdate
	phRefresh
	numPhases
)

var phaseNames = [numPhases]string{PhaseSetup, PhasePricing, PhaseFtran, PhaseRatio, PhaseUpdate, PhaseRefresh}

// DefaultProfileRate is the default iteration-sampling stride: one in
// every N simplex iterations is wall-clock timed and the per-phase
// totals extrapolated from the sample, keeping profiler-on overhead
// under the ~2% budget while phase *counts* stay exact.
const DefaultProfileRate = 16

// PhaseStat is one phase's accumulated effort in a Profile.
type PhaseStat struct {
	// Count is the exact number of times the phase ran (always-on).
	Count int64 `json:"count"`
	// Sampled is how many of those runs were wall-clock timed.
	Sampled int64 `json:"sampled"`
	// Nanos is the wall-clock attributed to the phase: directly-timed
	// phases exactly, loop phases extrapolated as
	// sampledNanos * Count / Sampled.
	Nanos int64 `json:"nanos"`
}

// Profile is the kernel profile of one LP solve, attached to
// Solution.Profile when Options.Profile is set (or a context-carried
// flight recorder armed kernel profiling). It attributes the solve's
// wall-clock to the named simplex phases and carries the basis-health
// stats the sparse-LU rework will be judged against.
type Profile struct {
	// TotalNanos is the measured wall-clock of the whole solve (setup
	// through stamping, including a rejected warm attempt when the solve
	// fell back cold).
	TotalNanos int64 `json:"total_nanos"`
	// SampleRate is the iteration-sampling stride used.
	SampleRate int `json:"sample_rate"`
	// Iters is the simplex iteration count (== Solution.Iters).
	Iters int `json:"iters"`
	// M/N are the row and total column counts; BinvBytes is the dense
	// basis-inverse footprint (8·M²) — the memory cost model of the
	// current kernel.
	M         int   `json:"m"`
	N         int   `json:"n"`
	BinvBytes int64 `json:"binv_bytes"`
	// RefreshEvery is the effective primal-refresh cadence
	// (Options.RefreshEvery or the built-in default).
	RefreshEvery int `json:"refresh_every"`
	// Refreshes/Degenerate mirror the Solution counters;
	// MaxDegenerateRun is the longest consecutive degenerate-pivot run.
	Refreshes        int `json:"refreshes"`
	Degenerate       int `json:"degenerate"`
	MaxDegenerateRun int `json:"max_degenerate_run"`
	// Phases attributes wall-clock by phase name.
	Phases map[string]*PhaseStat `json:"phases"`
	// FamilyPivots counts pivots by the constraint family of the leaving
	// row (Problem.SetRowFamily), "other" for unlabeled rows.
	FamilyPivots map[string]int64 `json:"family_pivots,omitempty"`
}

// Coverage reports the fraction of TotalNanos the phases account for.
func (p *Profile) Coverage() float64 {
	if p == nil || p.TotalNanos <= 0 {
		return 0
	}
	var attr int64
	for _, ph := range p.Phases {
		attr += ph.Nanos
	}
	return float64(attr) / float64(p.TotalNanos)
}

// Kernel converts the per-solve profile into a flight-journal kernel
// contribution (what Recorder.NoteKernel merges).
func (p *Profile) Kernel() *flight.Kernel {
	k := &flight.Kernel{
		Solves:           1,
		TotalNanos:       p.TotalNanos,
		SampleRate:       p.SampleRate,
		RefreshEvery:     p.RefreshEvery,
		MaxM:             p.M,
		MaxN:             p.N,
		BinvBytes:        p.BinvBytes,
		Iters:            int64(p.Iters),
		Degenerate:       int64(p.Degenerate),
		MaxDegenerateRun: p.MaxDegenerateRun,
		Refreshes:        int64(p.Refreshes),
	}
	for name, ph := range p.Phases {
		if k.Phases == nil {
			k.Phases = make(map[string]*flight.KernelPhase, len(p.Phases))
		}
		k.Phases[name] = &flight.KernelPhase{Count: ph.Count, Sampled: ph.Sampled, Nanos: ph.Nanos}
	}
	for fam, n := range p.FamilyPivots {
		if k.FamilyPivots == nil {
			k.FamilyPivots = make(map[string]int64, len(p.FamilyPivots))
		}
		k.FamilyPivots[fam] += n
	}
	return k
}

// profiler is the measurement state threaded through one Solve. Two
// accumulator families per phase keep the extrapolation honest:
//
//   - direct phases (setup, refresh, dual recomputation) are timed on
//     every occurrence — they are rare or already O(m²), so two clock
//     reads are noise;
//   - loop phases (pricing, ftran, ratio, update) are counted on every
//     iteration but timed only on sampled iterations (the first of
//     every solve, then every rate-th), and their totals extrapolated
//     by count/sampled.
//
// Mixing the two inside one phase is safe because the estimate is
// directNanos + sampledNanos·loopCount/sampleN — the direct part never
// enters the extrapolation.
type profiler struct {
	rate  int
	clock func() int64
	iters int64 // loop iterations observed, drives sampling

	directCount  [numPhases]int64
	directNanos  [numPhases]int64
	loopCount    [numPhases]int64
	sampleN      [numPhases]int64
	sampledNanos [numPhases]int64

	famPivots map[string]int64
}

func newProfiler(rate int, clock func() int64) *profiler {
	if rate <= 0 {
		rate = DefaultProfileRate
	}
	if clock == nil {
		base := time.Now()
		clock = func() int64 { return int64(time.Since(base)) }
	}
	return &profiler{rate: rate, clock: clock}
}

// beginIter advances the iteration counter and reports whether this
// iteration's phases should be wall-clock timed. The first iteration of
// every solve is always timed, so even a short warm reoptimization gets
// at least one sample per phase it runs.
func (p *profiler) beginIter() bool {
	p.iters++
	return (p.iters-1)%int64(p.rate) == 0
}

// phase closes one loop phase: the count always advances; on a timed
// iteration the elapsed nanos since t0 are accumulated and the current
// clock returned as the next phase's t0.
func (p *profiler) phase(ph int, timed bool, t0 int64) int64 {
	p.loopCount[ph]++
	if !timed {
		return 0
	}
	now := p.clock()
	p.sampleN[ph]++
	p.sampledNanos[ph] += now - t0
	return now
}

// direct closes one always-timed phase occurrence started at t0.
func (p *profiler) direct(ph int, t0 int64) {
	p.directCount[ph]++
	p.directNanos[ph] += p.clock() - t0
}

// pivotFamily attributes one pivot to the leaving row's constraint
// family (always-on counting; a map increment per pivot).
func (p *profiler) pivotFamily(fam string) {
	if p.famPivots == nil {
		p.famPivots = make(map[string]int64, 8)
	}
	p.famPivots[fam]++
}

// build assembles the Profile from the accumulators and the final
// solver's dimensions. total is the measured whole-solve wall-clock.
func (p *profiler) build(s *solver, total int64) *Profile {
	pr := &Profile{
		TotalNanos:       total,
		SampleRate:       p.rate,
		Iters:            s.iters,
		M:                s.m,
		N:                s.n,
		BinvBytes:        8 * int64(s.m) * int64(s.m),
		RefreshEvery:     s.refreshEvery,
		Refreshes:        s.refreshes,
		Degenerate:       s.degenTotal,
		MaxDegenerateRun: s.degenRunMax,
		Phases:           make(map[string]*PhaseStat, numPhases),
	}
	for ph := 0; ph < numPhases; ph++ {
		count := p.directCount[ph] + p.loopCount[ph]
		if count == 0 {
			continue
		}
		nanos := p.directNanos[ph]
		if p.sampleN[ph] > 0 {
			nanos += int64(float64(p.sampledNanos[ph]) * float64(p.loopCount[ph]) / float64(p.sampleN[ph]))
		}
		pr.Phases[phaseNames[ph]] = &PhaseStat{
			Count:   count,
			Sampled: p.directCount[ph] + p.sampleN[ph],
			Nanos:   nanos,
		}
	}
	if len(p.famPivots) > 0 {
		pr.FamilyPivots = p.famPivots
	}
	return pr
}

// rowFamilyOf names the constraint family of row i, "other" when
// unlabeled or out of range (slack-only rows can never leave, so every
// leaving row is a real constraint row).
func (s *solver) rowFamilyOf(i int) string {
	if i >= 0 && i < len(s.rowFam) && s.rowFam[i] != "" {
		return s.rowFam[i]
	}
	return "other"
}
