package lp

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"agingfp/internal/flight"
)

// profAssignment builds an n x n random-cost assignment LP with its rows
// labeled by family (rows "assignment", columns "capacity"), the same
// shape the re-mapper's batch formulation produces.
func profAssignment(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	vars := make([][]int, n)
	for i := range vars {
		vars[i] = make([]int, n)
		for j := range vars[i] {
			vars[i][j] = p.AddVar(rng.Float64(), 0, 1)
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	for i := 0; i < n; i++ {
		p.MustAddRow(EQ, 1, vars[i], ones)
		p.SetRowFamily(p.NumRows()-1, flight.FamilyAssignment)
		col := make([]int, n)
		for k := 0; k < n; k++ {
			col[k] = vars[k][i]
		}
		p.MustAddRow(EQ, 1, col, ones)
		p.SetRowFamily(p.NumRows()-1, flight.FamilyCapacity)
	}
	return p
}

// fakeClock returns a deterministic profiler clock: every reading
// advances by a fixed step, so two identical solves read identical
// timestamp sequences.
func fakeClock() func() int64 {
	var now int64
	return func() int64 {
		now += 1000
		return now
	}
}

// TestProfileDeterministicJSON: with an injected clock, the same seed
// must produce a byte-identical kernel-profile JSON on every run — the
// acceptance bar for reproducible profiles.
func TestProfileDeterministicJSON(t *testing.T) {
	run := func() []byte {
		p := profAssignment(12, 7)
		sol, err := Solve(context.Background(), p, Options{
			Profile:      true,
			ProfileRate:  4,
			ProfileClock: fakeClock(),
		})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("solve: %v %v", err, sol.Status)
		}
		if sol.Profile == nil {
			t.Fatal("no profile attached")
		}
		out, err := json.Marshal(sol.Profile)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed profiles differ:\n%s\n%s", a, b)
	}
}

// TestProfileStructure checks the profile's internal consistency at
// sample rate 1 (every iteration timed): phases present, full counts,
// high wall-clock coverage, pivots attributed to the labeled families.
func TestProfileStructure(t *testing.T) {
	p := profAssignment(12, 3)
	sol, err := Solve(context.Background(), p, Options{Profile: true, ProfileRate: 1})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	prof := sol.Profile
	if prof == nil {
		t.Fatal("no profile attached")
	}
	if prof.SampleRate != 1 {
		t.Fatalf("SampleRate = %d, want 1", prof.SampleRate)
	}
	if prof.Iters != sol.Iters {
		t.Fatalf("profile iters %d != solution iters %d", prof.Iters, sol.Iters)
	}
	if prof.M != p.NumRows() || prof.N < p.NumVars() {
		t.Fatalf("dims %dx%d, want rows=%d vars>=%d", prof.M, prof.N, p.NumRows(), p.NumVars())
	}
	if want := int64(8 * prof.M * prof.M); prof.BinvBytes != want {
		t.Fatalf("BinvBytes = %d, want %d", prof.BinvBytes, want)
	}
	for _, name := range []string{flight.PhaseSetup, flight.PhasePricing, flight.PhaseFtran, flight.PhaseRatio, flight.PhaseUpdate} {
		ph := prof.Phases[name]
		if ph == nil || ph.Count == 0 {
			t.Fatalf("phase %q missing or empty: %+v", name, ph)
		}
		if ph.Sampled != ph.Count {
			t.Fatalf("phase %q: sampled %d != count %d at rate 1", name, ph.Sampled, ph.Count)
		}
	}
	if cov := prof.Coverage(); cov < 0.5 || cov > 1.05 {
		t.Fatalf("coverage = %.3f, want ~[0.5, 1.05] at rate 1", cov)
	}
	var pivots int64
	for fam, n := range prof.FamilyPivots {
		if fam != flight.FamilyAssignment && fam != flight.FamilyCapacity {
			t.Fatalf("unexpected pivot family %q", fam)
		}
		pivots += n
	}
	if pivots == 0 {
		t.Fatal("no pivots attributed to row families")
	}
}

// TestProfileArmedViaRecorder: an armed flight recorder turns profiling
// on without the caller touching Options.Profile, and the per-solve
// profile is merged into the recorder's kernel aggregate; an unarmed
// recorder leaves the solve unprofiled.
func TestProfileArmedViaRecorder(t *testing.T) {
	rec := flight.NewRecorder(16)
	rec.EnableKernel(4)
	sol, err := Solve(context.Background(), profAssignment(8, 5), Options{Flight: rec})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if sol.Profile == nil {
		t.Fatal("armed recorder did not enable profiling")
	}
	if sol.Profile.SampleRate != 4 {
		t.Fatalf("SampleRate = %d, want the recorder's 4", sol.Profile.SampleRate)
	}
	k := rec.KernelSnapshot()
	if k == nil || k.Solves != 1 || k.Iters != int64(sol.Iters) {
		t.Fatalf("kernel aggregate = %+v, want 1 solve with %d iters", k, sol.Iters)
	}

	cold := flight.NewRecorder(16)
	sol2, err := Solve(context.Background(), profAssignment(8, 5), Options{Flight: cold})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Profile != nil {
		t.Fatal("unarmed recorder enabled profiling")
	}
	if cold.KernelSnapshot() != nil {
		t.Fatal("unarmed recorder accumulated a kernel aggregate")
	}
}

// TestProfileRefreshEvery: the configurable refresh cadence is honored
// and recorded in the profile.
func TestProfileRefreshEvery(t *testing.T) {
	p := profAssignment(12, 9)
	sol, err := Solve(context.Background(), p, Options{Profile: true, RefreshEvery: 2})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if sol.Profile.RefreshEvery != 2 {
		t.Fatalf("RefreshEvery = %d, want 2", sol.Profile.RefreshEvery)
	}
	if sol.Refreshes == 0 || sol.Profile.Refreshes != sol.Refreshes {
		t.Fatalf("refreshes: profile %d, solution %d, want >0 and equal",
			sol.Profile.Refreshes, sol.Refreshes)
	}
	if ph := sol.Profile.Phases[flight.PhaseRefresh]; ph == nil || ph.Count == 0 {
		t.Fatal("refresh phase not recorded despite forced cadence")
	}
}

// TestKernelProfilerOverhead is the overhead gate: profiled solves must
// stay within 1.5x of unprofiled wall-clock (the budget is <2%; the
// slack absorbs shared-runner noise — the precise number comes from
// BenchmarkWarmVsColdSimplex's cold vs cold-profiled arms).
func TestKernelProfilerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	p := profAssignment(20, 11)
	measure := func(opt Options) time.Duration {
		best := time.Duration(1<<62 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			for i := 0; i < 4; i++ {
				sol, err := Solve(context.Background(), p, opt)
				if err != nil || sol.Status != Optimal {
					t.Fatalf("solve: %v %v", err, sol.Status)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	measure(Options{}) // warm up allocator and caches
	off := measure(Options{})
	on := measure(Options{Profile: true})
	if off > 0 && on > off*3/2 {
		t.Fatalf("profiled solves took %v vs %v unprofiled (> 1.5x)", on, off)
	}
}
