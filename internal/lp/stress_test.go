package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func TestIterLimitStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewProblem()
	n := 30
	vars := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVar(-rng.Float64(), 0, 1)
		val[j] = 1
	}
	p.MustAddRow(LE, 10, vars, val)
	p.MustAddRow(GE, 2, vars, val)
	sol, err := Solve(context.Background(), p, Options{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}

// TestLargeTransportation exercises the refresh path (hundreds of
// iterations) and checks optimality against the analytic optimum of a
// cost-structured transportation problem.
func TestLargeTransportation(t *testing.T) {
	n := 40 // 40x40: ~1600 vars, 80 rows, several hundred pivots
	p := NewProblem()
	vars := make([][]int, n)
	for i := range vars {
		vars[i] = make([]int, n)
		for j := range vars[i] {
			// Cost |i-j|: optimal is the identity assignment, cost 0.
			cost := math.Abs(float64(i - j))
			vars[i][j] = p.AddVar(cost, 0, Inf)
		}
	}
	ones := make([]float64, n)
	for k := range ones {
		ones[k] = 1
	}
	for i := 0; i < n; i++ {
		p.MustAddRow(EQ, 1, vars[i], ones)
		col := make([]int, n)
		for k := 0; k < n; k++ {
			col[k] = vars[k][i]
		}
		p.MustAddRow(EQ, 1, col, ones)
	}
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Obj) > 1e-6 {
		t.Fatalf("objective %g, want 0 (identity assignment)", sol.Obj)
	}
}

// TestManyBoundFlips: a problem whose solution path is dominated by
// bound-to-bound flips rather than pivots.
func TestManyBoundFlips(t *testing.T) {
	p := NewProblem()
	n := 50
	idx := make([]int, n)
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		idx[j] = p.AddVar(-1, 0, 1)
		val[j] = 1
	}
	p.MustAddRow(LE, float64(n), idx, val) // non-binding: all flip to 1
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj+float64(n)) > 1e-6 {
		t.Fatalf("got %v obj %g, want -%d", sol.Status, sol.Obj, n)
	}
}

// TestEqualityOnlySystem: a pure equality system with a unique solution.
func TestEqualityOnlySystem(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(-1), Inf)
	y := p.AddVar(0, math.Inf(-1), Inf)
	p.MustAddRow(EQ, 5, []int{x, y}, []float64{1, 1})
	p.MustAddRow(EQ, 1, []int{x, y}, []float64{1, -1})
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > 1e-9 || math.Abs(sol.X[y]-2) > 1e-9 {
		t.Fatalf("x=%g y=%g, want 3,2", sol.X[x], sol.X[y])
	}
}
