package lp

import "math"

// Basis is an opaque snapshot of an optimal simplex basis, suitable for
// warm-starting a later solve of a structurally identical problem (same
// variable and row counts; bounds, RHS, and objective may differ).
// Snapshots are emitted on Solution.Basis for optimal solves and accepted
// via Options.WarmStart.
//
// A snapshot records only combinatorial state — the row-to-variable basis
// assignment and every variable's bound status — never values, so a warm
// start is always re-derived from the new problem's data: the basis is
// refactorized, basic values recomputed, and the solve finished with the
// dual simplex (bound/RHS changes leave the basis dual feasible) or the
// primal simplex. A basis that is stale, singular, or infeasible in both
// senses is rejected and the caller's Solve falls back to the cold
// two-phase path, so warm starting can change performance but never
// results.
type Basis struct {
	nStruct, m int32
	basis      []int32 // row -> basic variable (structural or slack)
	vstat      []int8  // status per variable, structurals then slacks
}

// snapshot captures the current basis. Artificials still basic (possible
// after a degenerate phase 1) are recorded as the slack of their row: the
// two columns are parallel (+-e_i), so the slack cannot also be basic and
// the recorded basis stays nonsingular.
func (s *solver) snapshot() *Basis {
	nb := s.nStruct + s.m
	b := &Basis{
		nStruct: int32(s.nStruct),
		m:       int32(s.m),
		basis:   make([]int32, s.m),
		vstat:   make([]int8, nb),
	}
	copy(b.vstat, s.vstat[:nb])
	for i, bi := range s.basis {
		if bi >= s.artStart {
			row := int(s.cols[bi].idx[0])
			bi = s.nStruct + row
			b.vstat[bi] = basic
		}
		b.basis[i] = int32(bi)
	}
	return b
}

// Warm-start reject reasons, as journaled by the flight recorder and
// labeled on the agingfp_lp_warmstart_rejects_total counter.
const (
	// rejectDimMismatch: the snapshot's shape does not fit the problem.
	rejectDimMismatch = "dim_mismatch"
	// rejectStaleBasis: the shape fits but the combinatorial state is
	// inconsistent (wrong basic count, duplicates, bad statuses) or the
	// dual reoptimization was inconclusive.
	rejectStaleBasis = "stale_basis"
	// rejectSingular: the recorded basis matrix would not factorize
	// against the current data.
	rejectSingular = "singular"
)

// newWarmSolver builds a solver positioned at the snapshot basis, or
// reports a non-empty reject reason when the snapshot does not fit the
// problem (shape mismatch, inconsistent statuses, or a singular basis
// matrix).
func newWarmSolver(p *Problem, opt Options, ws *Basis) (*solver, string) {
	s := newCore(p, opt)
	if int(ws.nStruct) != s.nStruct || int(ws.m) != s.m ||
		len(ws.vstat) != s.n || len(ws.basis) != s.m {
		return nil, rejectDimMismatch
	}

	// Statuses from the snapshot; verify the basis set is consistent.
	copy(s.vstat, ws.vstat)
	basicCount := 0
	for _, st := range s.vstat {
		if st == basic {
			basicCount++
		}
	}
	if basicCount != s.m {
		return nil, rejectStaleBasis
	}
	s.basis = make([]int, s.m)
	seen := make([]bool, s.n)
	for i, bj := range ws.basis {
		j := int(bj)
		if j < 0 || j >= s.n || s.vstat[j] != basic || seen[j] {
			return nil, rejectStaleBasis
		}
		seen[j] = true
		s.basis[i] = j
	}

	// Park nonbasic variables on their recorded bound, re-deriving the
	// side when the current problem's bound on that side is infinite (a
	// status can go stale when bounds change between solves).
	for j := 0; j < s.n; j++ {
		st := s.vstat[j]
		if st == basic {
			continue
		}
		lf, uf := !math.IsInf(s.lb[j], -1), !math.IsInf(s.ub[j], 1)
		switch {
		case st == atLower && !lf:
			if uf {
				st = atUpper
			} else {
				st = atFree
			}
		case st == atUpper && !uf:
			if lf {
				st = atLower
			} else {
				st = atFree
			}
		case st == atFree && (lf || uf):
			// A parked free variable whose bounds became finite must sit
			// on a bound; take the one nearest zero as the cold path does.
			if lf && (!uf || math.Abs(s.lb[j]) <= math.Abs(s.ub[j])) {
				st = atLower
			} else {
				st = atUpper
			}
		}
		switch st {
		case atLower:
			s.x[j] = s.lb[j]
		case atUpper:
			s.x[j] = s.ub[j]
		default:
			s.x[j] = 0
		}
		s.vstat[j] = st
	}

	if !s.factorize() {
		return nil, rejectSingular
	}
	s.xB = make([]float64, s.m)
	s.refresh() // basic values for the new bounds/RHS
	return s, ""
}

// factorize computes the explicit basis inverse for the current basis
// assignment by Gauss-Jordan elimination with partial pivoting, reporting
// false on a (near-)singular basis.
func (s *solver) factorize() bool {
	var t0 int64
	if s.prof != nil {
		t0 = s.prof.clock()
		defer func() { s.prof.direct(phSetup, t0) }()
	}
	m := s.m
	B := make([][]float64, m)
	R := make([][]float64, m)
	maxAbs := 0.0
	for r := 0; r < m; r++ {
		B[r] = make([]float64, m)
		R[r] = make([]float64, m)
		R[r][r] = 1
	}
	for k, j := range s.basis {
		c := s.cols[j]
		for t, i := range c.idx {
			B[i][k] = c.val[t]
			if a := math.Abs(c.val[t]); a > maxAbs {
				maxAbs = a
			}
		}
	}
	pivTolAbs := 1e-10 * math.Max(1, maxAbs)

	// Reduce [B | I] -> [P | R] with R*B = P; then Binv = P^T * R, i.e.
	// Binv[col] = R[perm[col]].
	perm := make([]int, m)
	usedRow := make([]bool, m)
	for col := 0; col < m; col++ {
		pr, pv := -1, pivTolAbs
		for r := 0; r < m; r++ {
			if usedRow[r] {
				continue
			}
			if a := math.Abs(B[r][col]); a > pv {
				pr, pv = r, a
			}
		}
		if pr < 0 {
			return false
		}
		usedRow[pr] = true
		perm[col] = pr
		inv := 1 / B[pr][col]
		rowB, rowR := B[pr], R[pr]
		for k := 0; k < m; k++ {
			rowB[k] *= inv
			rowR[k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == pr {
				continue
			}
			f := B[r][col]
			if f == 0 {
				continue
			}
			tb, tr := B[r], R[r]
			for k := 0; k < m; k++ {
				tb[k] -= f * rowB[k]
				tr[k] -= f * rowR[k]
			}
		}
	}
	s.binv = make([][]float64, m)
	for col := 0; col < m; col++ {
		s.binv[col] = R[perm[col]]
	}
	return true
}

// primalFeasible reports whether every basic value sits within its bounds.
func (s *solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		if s.xB[i] < s.lb[bi]-s.tol || s.xB[i] > s.ub[bi]+s.tol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the reduced costs of all nonbasic
// variables satisfy their status sign conditions under the given cost.
func (s *solver) dualFeasible(cost []float64) bool {
	y := make([]float64, s.m)
	s.computeDuals(cost, y)
	for j := 0; j < s.n; j++ {
		st := s.vstat[j]
		if st == basic || s.lb[j] == s.ub[j] {
			continue
		}
		c := s.cols[j]
		d := cost[j]
		for k, i := range c.idx {
			d -= y[i] * c.val[k]
		}
		switch st {
		case atLower:
			if d < -s.tol {
				return false
			}
		case atUpper:
			if d > s.tol {
				return false
			}
		case atFree:
			if math.Abs(d) > s.tol {
				return false
			}
		}
	}
	return true
}

// runWarm optimizes from the installed warm basis. ok=false asks the
// caller to fall back to a cold solve (the warm basis turned out
// unusable); ok=true returns a result equivalent to a cold solve. A
// non-nil error reports cancellation (the solve's context expired
// mid-reoptimization); the warm basis itself is never modified, so the
// caller may reuse it after a cancellation.
func (s *solver) runWarm() (*Solution, bool, error) {
	// Both feasibility checks are reduced-cost/bound scans; attribute
	// them to the pricing phase so a short warm solve's wall-clock does
	// not escape the profile.
	var t0 int64
	if s.prof != nil {
		t0 = s.prof.clock()
	}
	primalOK := s.primalFeasible()
	dualOK := false
	if !primalOK {
		dualOK = s.dualFeasible(s.cost)
	}
	if s.prof != nil {
		s.prof.direct(phPricing, t0)
	}
	switch {
	case primalOK:
		// The basis survived the data change primal feasible: plain
		// phase-2 primal simplex, no phase 1 needed.
	case dualOK:
		// The usual warm case: a bound/RHS tightening left the basis
		// dual feasible but primal infeasible — reoptimize directly
		// with the dual simplex.
		switch s.dualSimplex(s.cost) {
		case statusCanceled:
			return nil, false, s.ctx.Err()
		case Infeasible:
			return s.stamp(&Solution{Status: Infeasible, Iters: s.iters}), true, nil
		case IterLimit:
			return nil, false, nil
		}
		// Primal feasibility restored; fall through to the primal
		// polish below (normally zero iterations, it also guards the
		// numerics of the dual phase).
	default:
		return nil, false, nil
	}

	st := s.iterate(s.cost)
	if st == statusCanceled {
		return nil, false, s.ctx.Err()
	}
	sol := s.stamp(&Solution{Status: st, Iters: s.iters})
	if st == Optimal {
		sol.X = append([]float64(nil), s.x[:s.nStruct]...)
		obj := 0.0
		for j := 0; j < s.nStruct; j++ {
			obj += s.cost[j] * s.x[j]
		}
		sol.Obj = obj
		sol.Basis = s.snapshot()
	}
	return sol, true, nil
}

// dualSimplex restores primal feasibility from a dual-feasible basis,
// pivoting on the most-violated basic variable. Returns Optimal when
// primal feasibility is reached (dual feasibility is maintained, so the
// basis is then optimal up to the primal polish), Infeasible when a
// violated row admits no entering column (the primal infeasibility
// certificate), or IterLimit when the dual budget is exhausted — the
// caller treats that as a rejection and re-solves cold.
func (s *solver) dualSimplex(cost []float64) Status {
	m := s.m
	y := make([]float64, m)
	w := make([]float64, m)
	prof := s.prof
	budget := 1000 + 10*m
	if budget > s.maxIter {
		budget = s.maxIter
	}
	reverified := false
	for it := 0; it < budget; it++ {
		if it%ctxCheckIters == 0 && s.canceled() {
			return statusCanceled
		}
		// The per-iteration dual recomputation dominates here (O(m²));
		// it is direct-timed into pricing, while ratio/ftran/update use
		// the sampled scheme shared with the primal loop.
		s.dualsProfiled(cost, y)

		// Leaving row: the basic variable with the largest bound
		// violation; none means primal feasible.
		r, viol := -1, s.tol
		var target float64
		var toLower bool
		for i := 0; i < m; i++ {
			bi := s.basis[i]
			if d := s.lb[bi] - s.xB[i]; d > viol {
				r, viol, target, toLower = i, d, s.lb[bi], true
			}
			if d := s.xB[i] - s.ub[bi]; d > viol {
				r, viol, target, toLower = i, d, s.ub[bi], false
			}
		}
		if r < 0 {
			return Optimal
		}

		var timed bool
		var t0 int64
		if prof != nil {
			timed = prof.beginIter()
			if timed {
				t0 = prof.clock()
			}
		}

		// Dual ratio test: among nonbasic columns whose movement pushes
		// xB[r] toward its violated bound, pick the smallest
		// |reduced cost| / |alpha| (ties to the larger pivot).
		rho := s.binv[r]
		enter, bestRatio, bestAlpha := -1, Inf, 0.0
		for j := 0; j < s.n; j++ {
			st := s.vstat[j]
			if st == basic || s.lb[j] == s.ub[j] {
				continue
			}
			c := s.cols[j]
			alpha := 0.0
			for k, i := range c.idx {
				alpha += rho[i] * c.val[k]
			}
			if math.Abs(alpha) <= pivTol {
				continue
			}
			// xB[r] changes by -alpha per unit increase of x_j; statuses
			// restrict the movement direction (atLower up, atUpper down).
			var ok bool
			if toLower {
				ok = (st == atLower && alpha < 0) || (st == atUpper && alpha > 0) || st == atFree
			} else {
				ok = (st == atLower && alpha > 0) || (st == atUpper && alpha < 0) || st == atFree
			}
			if !ok {
				continue
			}
			d := cost[j]
			for k, i := range c.idx {
				d -= y[i] * c.val[k]
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				enter, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		if prof != nil {
			t0 = prof.phase(phRatio, timed, t0)
		}
		if enter < 0 {
			// No column can repair the row: primal infeasible. Refresh
			// once and re-verify before trusting the certificate.
			if !reverified {
				reverified = true
				s.refresh()
				continue
			}
			return Infeasible
		}
		reverified = false
		s.iters++

		// FTRAN: w = Binv * A[enter].
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		ec := s.cols[enter]
		for k, i := range ec.idx {
			v := ec.val[k]
			for q := 0; q < m; q++ {
				w[q] += s.binv[q][int(i)] * v
			}
		}
		if prof != nil {
			t0 = prof.phase(phFtran, timed, t0)
		}

		// Entering direction and step length driving xB[r] to target.
		var dir float64
		switch s.vstat[enter] {
		case atLower:
			dir = 1
		case atUpper:
			dir = -1
		default: // atFree: move toward the violated bound
			if toLower == (w[r] < 0) {
				dir = 1
			} else {
				dir = -1
			}
		}
		denom := dir * w[r]
		if math.Abs(denom) <= pivTol {
			return IterLimit // numerically unusable pivot; reject
		}
		t := (s.xB[r] - target) / denom
		if t < 0 {
			t = 0
		}

		if t != 0 {
			for i := 0; i < m; i++ {
				if w[i] != 0 {
					s.xB[i] -= dir * w[i] * t
					s.x[s.basis[i]] = s.xB[i]
				}
			}
			s.x[enter] += dir * t
		}

		// Pivot: enter replaces basis[r], which leaves at its violated
		// bound.
		lv := s.basis[r]
		if toLower {
			s.vstat[lv] = atLower
			s.x[lv] = s.lb[lv]
		} else {
			s.vstat[lv] = atUpper
			s.x[lv] = s.ub[lv]
		}
		s.vstat[enter] = basic
		s.basis[r] = enter
		s.xB[r] = s.x[enter]

		piv := w[r]
		rowR := s.binv[r]
		invPiv := 1 / piv
		for k := 0; k < m; k++ {
			rowR[k] *= invPiv
		}
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < m; k++ {
				row[k] -= f * rowR[k]
			}
		}
		if prof != nil {
			prof.phase(phUpdate, timed, t0)
			prof.pivotFamily(s.rowFamilyOf(r))
		}
	}
	return IterLimit
}
