package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"agingfp/internal/bench"
	"agingfp/internal/obs"
)

// DriftMetric names for DriftFinding.Metric and the drift gauge's
// metric label.
const (
	DriftSolveMs      = "solve_ms"
	DriftSimplexIters = "simplex_iters"
	DriftLPSolves     = "lp_solves"
)

// DriftGauge is the exported gauge family: one series per
// (benchmark, metric) pair carrying the live-over-baseline ratio. A
// value at or above the configured factor means the perf gate would
// fail on this traffic.
const DriftGauge = "agingfp_telemetry_drift"

// DriftFinding is one baseline comparison: a benchmark's windowed
// median against the committed BENCH_baseline.json record, for one
// metric. Exceeded mirrors the CI perf gate's verdict (ratio > factor).
type DriftFinding struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Ratio     float64 `json:"ratio"`
	Samples   int64   `json:"samples"`
	Exceeded  bool    `json:"exceeded"`
}

// driftDetector compares windowed per-benchmark medians against the
// perf baseline and keeps the agingfp_telemetry_drift gauge current.
// It applies the same posture as the CI perf gate (internal/bench):
// generous factor over a median, meant to catch order-of-magnitude
// regressions in live traffic, not 10% noise.
//
// One caveat, documented rather than hidden: baseline records sum the
// Freeze and Rotate arms (the bench suite runs both), while a service
// job runs one arm. The ratio is therefore conservative — live medians
// sit naturally below baseline — and a reading above the factor is all
// the more significant.
type driftDetector struct {
	records    map[string]bench.PerfRecord
	factor     float64
	minSamples int64

	reg    *obs.Registry
	logger *slog.Logger
}

func newDriftDetector(baseline *bench.PerfReport, factor float64, minSamples int64, reg *obs.Registry, logger *slog.Logger) *driftDetector {
	if baseline == nil {
		return nil
	}
	if factor <= 1 {
		factor = 2.0
	}
	if minSamples < 1 {
		minSamples = 3
	}
	d := &driftDetector{
		records:    make(map[string]bench.PerfRecord, len(baseline.Records)),
		factor:     factor,
		minSamples: minSamples,
		reg:        reg,
		logger:     logger,
	}
	for _, r := range baseline.Records {
		d.records[r.Name] = r
	}
	return d
}

// benchNames returns the baseline's benchmark names, sorted.
func (d *driftDetector) benchNames() []string {
	names := make([]string, 0, len(d.records))
	for n := range d.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// check compares one benchmark's windowed summary against its baseline
// record, updates the drift gauges, and logs a structured alert for
// every metric whose ratio exceeds the factor. Nil-safe; returns nil
// when the benchmark is not in the baseline or has too few samples.
func (d *driftDetector) check(name string, s BucketSummary) []DriftFinding {
	if d == nil {
		return nil
	}
	base, ok := d.records[name]
	if !ok || s.Solved < d.minSamples {
		return nil
	}
	metrics := []struct {
		metric   string
		baseline float64
		current  float64
	}{
		{DriftSolveMs, base.ElapsedMs, s.P50Ms},
		{DriftSimplexIters, float64(base.SimplexIters), s.SimplexItersP50},
		{DriftLPSolves, float64(base.LPSolves), s.LPSolvesP50},
	}
	var out []DriftFinding
	for _, m := range metrics {
		if m.baseline <= 0 {
			continue // baseline predates the counter, or too small to gate
		}
		f := DriftFinding{
			Benchmark: name,
			Metric:    m.metric,
			Baseline:  m.baseline,
			Current:   m.current,
			Ratio:     m.current / m.baseline,
			Samples:   s.Solved,
		}
		f.Exceeded = f.Ratio > d.factor
		d.reg.Gauge(gaugeName(name, m.metric)).Set(f.Ratio)
		if f.Exceeded && d.logger != nil {
			d.logger.LogAttrs(context.Background(), slog.LevelWarn, "solver performance drift",
				slog.String("benchmark", f.Benchmark),
				slog.String("metric", f.Metric),
				slog.Float64("baseline", f.Baseline),
				slog.Float64("current", f.Current),
				slog.Float64("ratio", f.Ratio),
				slog.Float64("factor", d.factor),
				slog.Int64("samples", f.Samples),
			)
		}
		out = append(out, f)
	}
	return out
}

// gaugeName builds the labeled drift gauge series name.
func gaugeName(benchmark, metric string) string {
	return fmt.Sprintf(`%s{metric=%q,benchmark=%q}`, DriftGauge, metric, benchmark)
}
