package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the durable half of the pipeline: wide events appended as
// JSON Lines to size-rotated segment files under one directory, with
// bounded retention and crash-safe recovery.
//
//	events-000001.jsonl
//	events-000002.jsonl   <- active segment, appended to
//
// Append rotates to a new segment once the active one exceeds
// MaxSegmentBytes, and deletes the oldest segments beyond MaxSegments —
// so disk usage is bounded by roughly MaxSegmentBytes × MaxSegments no
// matter how long the process runs. A crash can tear at most the final
// line of the active segment; OpenStore truncates a torn tail (a final
// line without its newline) so the segment is clean before any new
// event lands, and Replay additionally skips any line that fails to
// parse, counting it instead of failing the whole history.
type Store struct {
	dir     string
	maxSeg  int64
	maxSegs int

	mu      sync.Mutex
	f       *os.File
	seq     int   // active segment number
	size    int64 // active segment size
	closed  bool
	dropped int64 // events lost to append errors

	// recoveredBytes counts tail bytes truncated at open — non-zero
	// means the previous process died mid-append.
	recoveredBytes int64
}

const (
	segPrefix = "events-"
	segSuffix = ".jsonl"

	// DefaultMaxSegmentBytes rotates segments at 4 MiB — roughly 8k wide
	// events per segment at ~500 bytes each.
	DefaultMaxSegmentBytes = 4 << 20
	// DefaultMaxSegments bounds retention at 8 segments (~32 MiB, ~64k
	// events) — hours to days of heavy traffic, enough for the windowed
	// aggregator's longest window with a wide margin.
	DefaultMaxSegments = 8
)

// OpenStore opens (creating if needed) the event store in dir and
// recovers the active segment's torn tail, if any.
func OpenStore(dir string, maxSegmentBytes int64, maxSegments int) (*Store, error) {
	if maxSegmentBytes <= 0 {
		maxSegmentBytes = DefaultMaxSegmentBytes
	}
	if maxSegments < 2 {
		maxSegments = 2 // the active segment plus at least one sealed one
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: open store: %w", err)
	}
	s := &Store{dir: dir, maxSeg: maxSegmentBytes, maxSegs: maxSegments}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	s.seq = 1
	if n := len(segs); n > 0 {
		s.seq = segs[n-1]
		if err := s.recoverTail(s.segPath(s.seq)); err != nil {
			return nil, err
		}
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

// segPath names segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix))
}

// segments lists existing segment numbers in ascending order.
func (s *Store) segments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("telemetry: list segments: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n < 1 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// recoverTail truncates a torn final line (one missing its trailing
// newline — the footprint of a crash mid-append) so the active segment
// is whole-lines-only before new events are appended after it.
func (s *Store) recoverTail(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("telemetry: recover %s: %w", path, err)
	}
	if len(b) == 0 || b[len(b)-1] == '\n' {
		return nil
	}
	keep := 0
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		keep = i + 1
	}
	s.recoveredBytes = int64(len(b) - keep)
	if err := os.Truncate(path, int64(keep)); err != nil {
		return fmt.Errorf("telemetry: truncate torn tail of %s: %w", path, err)
	}
	return nil
}

// openActive opens the active segment for append and records its size.
func (s *Store) openActive() error {
	f, err := os.OpenFile(s.segPath(s.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("telemetry: stat segment: %w", err)
	}
	s.f, s.size = f, st.Size()
	return nil
}

// RecoveredBytes reports how many torn-tail bytes OpenStore truncated
// (non-zero only after a crash mid-append).
func (s *Store) RecoveredBytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveredBytes
}

// Dropped reports events lost to append errors since open.
func (s *Store) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Append durably records one event: one marshaled line, rotating and
// pruning as configured. An I/O failure drops the event (counted, and
// surfaced by Dropped) rather than failing the job that emitted it —
// telemetry must never take the service down with it.
func (s *Store) Append(ev *SolveEvent) error {
	if s == nil || ev == nil {
		return nil
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("telemetry: marshal event: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.dropped++
		return fmt.Errorf("telemetry: store closed")
	}
	if s.size > 0 && s.size+int64(len(line)) > s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			s.dropped++
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	if err != nil {
		s.dropped++
		return fmt.Errorf("telemetry: append: %w", err)
	}
	return nil
}

// rotateLocked seals the active segment, starts the next one, and
// prunes the oldest beyond the retention bound.
func (s *Store) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("telemetry: seal segment: %w", err)
	}
	s.seq++
	if err := s.openActive(); err != nil {
		return err
	}
	segs, err := s.segments()
	if err != nil {
		return err
	}
	for len(segs) > s.maxSegs {
		if err := os.Remove(s.segPath(segs[0])); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("telemetry: prune segment: %w", err)
		}
		segs = segs[1:]
	}
	return nil
}

// Replay streams every stored event, oldest first, to fn. Lines that
// fail to parse (a torn tail from a crash the recovery pass could not
// see, manual edits) are skipped and counted in the returned skip
// count. fn returning an error stops the replay.
func (s *Store) Replay(fn func(*SolveEvent) error) (replayed, skipped int, err error) {
	if s == nil {
		return 0, 0, nil
	}
	s.mu.Lock()
	segs, segErr := s.segments()
	s.mu.Unlock()
	if segErr != nil {
		return 0, 0, segErr
	}
	for _, n := range segs {
		f, err := os.Open(s.segPath(n))
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between listing and open
			}
			return replayed, skipped, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev SolveEvent
			if json.Unmarshal(sc.Bytes(), &ev) != nil {
				skipped++
				continue
			}
			if err := fn(&ev); err != nil {
				f.Close()
				return replayed, skipped, err
			}
			replayed++
		}
		scanErr := sc.Err()
		f.Close()
		if scanErr != nil {
			return replayed, skipped, scanErr
		}
	}
	return replayed, skipped, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Close seals the active segment. Appends after Close are dropped.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
