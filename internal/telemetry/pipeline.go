package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/obs"
)

// Config sizes the telemetry pipeline.
type Config struct {
	// Dir is the durable store directory. Required.
	Dir string
	// MaxSegmentBytes / MaxSegments bound the store (defaults
	// DefaultMaxSegmentBytes / DefaultMaxSegments).
	MaxSegmentBytes int64
	MaxSegments     int

	// Step and Cells shape the in-memory aggregation ring (defaults
	// DefaultStep × DefaultCells = 3h at minute granularity).
	Step  time.Duration
	Cells int
	// SketchAccuracy is the quantile sketches' relative error α
	// (default DefaultAccuracy = 2%).
	SketchAccuracy float64

	// Baseline enables drift detection against a perf report (typically
	// the committed BENCH_baseline.json). DriftFactor mirrors the CI
	// perf gate's tolerated factor (default 2.0); DriftMinSamples is
	// the fewest solved jobs of a benchmark in DriftWindow before its
	// ratio is trusted (default 3); DriftWindow the comparison window
	// (default 15m).
	Baseline        *bench.PerfReport
	DriftFactor     float64
	DriftMinSamples int64
	DriftWindow     time.Duration

	// SlowPercentile arms adaptive slow-solve capture: a solve slower
	// than this latency percentile of its shape bucket (over
	// DriftWindow, needing SlowMinSamples solved jobs) is an outlier
	// and its flight journal is written to Dir/slow/ at completion.
	// Default 0.99; zero or negative disables capture. SlowKeep bounds
	// the captured journals (default 32, oldest pruned).
	SlowPercentile float64
	SlowMinSamples int64
	SlowKeep       int

	// TenantCap bounds the per-tenant aggregation key set (default
	// DefaultTenantCap); identities past it roll into "other".
	TenantCap int

	// Observers are invoked for every event the pipeline accepts — both
	// the durable history replayed at Open and every live Record — after
	// the event is folded into the aggregation ring. The SLO engine
	// subscribes here, so its error budgets survive restarts exactly as
	// far back as the store does. Observers must be fast and must not
	// call back into the pipeline.
	Observers []func(*SolveEvent)

	// Registry receives the drift gauges and pipeline counters; Logger
	// the drift and slow-solve alerts. Both may be nil.
	Registry *obs.Registry
	Logger   *slog.Logger

	// Now injects a clock for tests (nil = time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = DefaultStep
	}
	if c.Cells < 2 {
		c.Cells = DefaultCells
	}
	if c.SketchAccuracy <= 0 {
		c.SketchAccuracy = DefaultAccuracy
	}
	if c.DriftFactor <= 1 {
		c.DriftFactor = 2.0
	}
	if c.DriftMinSamples < 1 {
		c.DriftMinSamples = 3
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 15 * time.Minute
	}
	if c.SlowPercentile == 0 {
		c.SlowPercentile = 0.99
	}
	if c.SlowMinSamples < 1 {
		c.SlowMinSamples = 20
	}
	if c.SlowKeep < 1 {
		c.SlowKeep = 32
	}
	if c.TenantCap < 1 {
		c.TenantCap = DefaultTenantCap
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Outcome is what Record reports back about one event: whether the
// solve was a slow outlier for its shape (the caller should capture its
// flight journal) and any drift findings the event's benchmark tripped.
type Outcome struct {
	Slow          bool
	SlowThreshold float64 // ms; the percentile the solve exceeded
	Drift         []DriftFinding
}

// Pipeline is the assembled telemetry flow: durable store + windowed
// aggregator + drift detector + slow-solve capture directory. A nil
// *Pipeline is a no-op on every method, so callers wire it
// unconditionally.
type Pipeline struct {
	cfg   Config
	store *Store
	agg   *Aggregator
	drift *driftDetector
	reg   *obs.Registry
	// replaySkipped counts malformed store lines dropped during the
	// open-time replay; surfaced in WindowStats and as
	// agingfp_telemetry_replay_skipped_total.
	replaySkipped int64
}

// Open builds the pipeline: opens (or creates) the durable store under
// cfg.Dir, replays its history into the aggregation ring so windowed
// statistics survive restarts, and arms drift detection when a baseline
// is configured.
func Open(cfg Config) (*Pipeline, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: Config.Dir is required")
	}
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.Dir, cfg.MaxSegmentBytes, cfg.MaxSegments)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:   cfg,
		store: store,
		agg:   NewAggregator(cfg.Step, cfg.Cells, cfg.SketchAccuracy, cfg.Now),
		drift: newDriftDetector(cfg.Baseline, cfg.DriftFactor, cfg.DriftMinSamples, cfg.Registry, cfg.Logger),
		reg:   cfg.Registry,
	}
	p.agg.tenants = NewTenantTracker(cfg.TenantCap)
	replayed, skipped, err := store.Replay(func(ev *SolveEvent) error {
		p.agg.Record(ev)
		for _, fn := range cfg.Observers {
			fn(ev)
		}
		return nil
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	p.replaySkipped = int64(skipped)
	p.reg.Counter("agingfp_telemetry_events_replayed_total").Add(int64(replayed))
	p.reg.Counter("agingfp_telemetry_replay_skipped_total").Add(int64(skipped))
	if cfg.Logger != nil && (replayed > 0 || skipped > 0 || store.RecoveredBytes() > 0) {
		cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "telemetry store recovered",
			slog.String("dir", cfg.Dir),
			slog.Int("events_replayed", replayed),
			slog.Int("lines_skipped", skipped),
			slog.Int64("torn_tail_bytes", store.RecoveredBytes()),
		)
	}
	return p, nil
}

// Enabled reports whether the pipeline is live (non-nil).
func (p *Pipeline) Enabled() bool { return p != nil }

// Record appends ev to the durable store and folds it into the
// windowed aggregates, then evaluates slow-solve capture (against the
// shape bucket's percentile as it stood BEFORE this event, so the
// outlier cannot raise its own bar) and the event benchmark's drift.
// Store failures are counted, logged, and swallowed — telemetry never
// fails the job that emitted the event.
func (p *Pipeline) Record(ev *SolveEvent) Outcome {
	if p == nil || ev == nil {
		return Outcome{}
	}
	if ev.Time.IsZero() {
		ev.Time = p.cfg.Now()
	}

	var out Outcome
	if p.cfg.SlowPercentile > 0 && ev.Solved() {
		threshold, samples := p.agg.ShapeQuantile(ev.ShapeBucket(), p.cfg.SlowPercentile, p.cfg.DriftWindow)
		if samples >= p.cfg.SlowMinSamples && ev.ElapsedMs > threshold {
			out.Slow, out.SlowThreshold = true, threshold
		}
	}

	if err := p.store.Append(ev); err != nil {
		p.reg.Counter("agingfp_telemetry_append_errors_total").Inc()
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("telemetry append failed", slog.String("error", err.Error()))
		}
	}
	p.reg.Counter("agingfp_telemetry_events_total").Inc()
	p.agg.Record(ev)
	for _, fn := range p.cfg.Observers {
		fn(ev)
	}

	if ev.Bench != "" && p.drift != nil {
		if s, ok := p.agg.BenchStats(ev.Bench, p.cfg.DriftWindow); ok {
			out.Drift = p.drift.check(ev.Bench, s)
		}
	}
	return out
}

// Stats summarizes the trailing window, drift findings included when a
// baseline is armed. Nil on a nil pipeline.
func (p *Pipeline) Stats(window time.Duration) *WindowStats {
	if p == nil {
		return nil
	}
	st := p.agg.Stats(window)
	st.ReplaySkipped = p.replaySkipped
	st.Drift = p.DriftFindings(p.cfg.DriftWindow)
	return st
}

// TenantStats summarizes one tenant's windowed accounting view. Nil on
// a nil pipeline.
func (p *Pipeline) TenantStats(tenant string, window time.Duration) *TenantWindow {
	if p == nil {
		return nil
	}
	return p.agg.TenantStats(tenant, window)
}

// MedianSolveMs is the windowed P50 solve time in milliseconds (0 with
// no solved traffic or a nil pipeline) — the Retry-After estimator's
// input.
func (p *Pipeline) MedianSolveMs(window time.Duration) float64 {
	if p == nil {
		return 0
	}
	return p.agg.Stats(window).Total.P50Ms
}

// DriftFindings evaluates every baseline benchmark against the trailing
// window (gauges updated as a side effect). Nil without a baseline.
func (p *Pipeline) DriftFindings(window time.Duration) []DriftFinding {
	if p == nil || p.drift == nil {
		return nil
	}
	var out []DriftFinding
	for _, name := range p.drift.benchNames() {
		if s, ok := p.agg.BenchStats(name, window); ok {
			out = append(out, p.drift.check(name, s)...)
		}
	}
	return out
}

// Series exposes the aggregator's per-cell time series for dashboards.
func (p *Pipeline) Series(window time.Duration) []SeriesPoint {
	if p == nil {
		return nil
	}
	return p.agg.Series(window)
}

// Span is the longest window Stats can answer.
func (p *Pipeline) Span() time.Duration {
	if p == nil {
		return 0
	}
	return p.agg.Span()
}

// DriftWindow is the configured drift/slow-capture comparison window.
func (p *Pipeline) DriftWindow() time.Duration {
	if p == nil {
		return 0
	}
	return p.cfg.DriftWindow
}

// Dir returns the store directory ("" on a nil pipeline).
func (p *Pipeline) Dir() string {
	if p == nil {
		return ""
	}
	return p.cfg.Dir
}

// slowDir is where captured outlier journals land.
func (p *Pipeline) slowDir() string { return filepath.Join(p.cfg.Dir, "slow") }

// CaptureSlow persists one slow solve's flight journal under
// Dir/slow/<name>.journal.json so the outlier's decision log is already
// on disk when an operator investigates. write receives the
// destination; the oldest captures beyond SlowKeep are pruned. Errors
// are logged and swallowed (capture is best-effort).
func (p *Pipeline) CaptureSlow(name string, write func(io.Writer) error) string {
	if p == nil || write == nil {
		return ""
	}
	dir := p.slowDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		p.captureFailed(err)
		return ""
	}
	path := filepath.Join(dir, name+".journal.json")
	f, err := os.Create(path)
	if err != nil {
		p.captureFailed(err)
		return ""
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(path)
		if werr == nil {
			werr = cerr
		}
		p.captureFailed(werr)
		return ""
	}
	p.reg.Counter("agingfp_telemetry_slow_captures_total").Inc()
	p.pruneSlow()
	return path
}

func (p *Pipeline) captureFailed(err error) {
	p.reg.Counter("agingfp_telemetry_capture_errors_total").Inc()
	if p.cfg.Logger != nil {
		p.cfg.Logger.Warn("slow-solve capture failed", slog.String("error", err.Error()))
	}
}

// pruneSlow keeps the newest SlowKeep captured journals.
func (p *Pipeline) pruneSlow() {
	entries, err := os.ReadDir(p.slowDir())
	if err != nil || len(entries) <= p.cfg.SlowKeep {
		return
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var files []aged
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for i := 0; i < len(files)-p.cfg.SlowKeep; i++ {
		os.Remove(filepath.Join(p.slowDir(), files[i].name))
	}
}

// Close seals the durable store.
func (p *Pipeline) Close() error {
	if p == nil {
		return nil
	}
	return p.store.Close()
}
