package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// RingConfig sizes the continuous CPU-profiling ring (see ProfRing).
type RingConfig struct {
	// Dir is where the rolling captures land, one cpu-<seq>.pprof per
	// window. Required.
	Dir string
	// SlowDir receives copies of windows that covered a marked slow
	// solve (default Dir/slow — next to the captured flight journals).
	SlowDir string
	// Window is the length of one capture (default 30s).
	Window time.Duration
	// Keep bounds the rolling captures kept on disk; the oldest are
	// pruned after each window (default 8). Slow copies are not pruned.
	Keep int
	// Logger receives capture failures (may be nil).
	Logger *slog.Logger
}

func (c RingConfig) withDefaults() RingConfig {
	if c.SlowDir == "" {
		c.SlowDir = filepath.Join(c.Dir, "slow")
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Keep < 1 {
		c.Keep = 8
	}
	return c
}

// ProfRing is the daemon's continuous profiler: a background goroutine
// that captures fixed-window CPU profiles back to back and keeps the
// newest Keep of them on disk, so "what was the process doing when job
// X was slow?" has an answer after the fact without anyone having run
// pprof by hand. Mark links a window to a slow solve: the capture
// covering the mark is copied to SlowDir under the solve's name when
// the window closes.
//
// The runtime allows one CPU profile at a time process-wide; if
// StartCPUProfile fails (e.g. an operator-driven net/http/pprof capture
// is running), the ring logs once and disables itself rather than
// fighting for the profiler. All methods are nil-safe.
type ProfRing struct {
	cfg RingConfig

	mu      sync.Mutex
	seq     int
	pending []string // marks to copy out when the current window closes

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartProfRing creates the capture directory and starts the ring's
// background capture loop.
func StartProfRing(cfg RingConfig) (*ProfRing, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: RingConfig.Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &ProfRing{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Dir returns the ring's capture directory ("" on a nil ring).
func (r *ProfRing) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// Mark flags the capture window currently in flight as covering the
// named slow solve; when the window closes its profile is copied to
// SlowDir/cpu-<seq>-<name>.pprof. Nil-safe.
func (r *ProfRing) Mark(name string) {
	if r == nil || name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending = append(r.pending, sanitizeMark(name))
}

// Close stops the capture loop and waits for the in-flight window to
// finish writing. Nil-safe and idempotent.
func (r *ProfRing) Close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *ProfRing) loop() {
	defer close(r.done)
	for r.capture() {
	}
}

// capture runs one profiling window end to end and reports whether the
// loop should continue (false on stop or on a disabling error).
func (r *ProfRing) capture() bool {
	select {
	case <-r.stop:
		return false
	default:
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	path := filepath.Join(r.cfg.Dir, fmt.Sprintf("cpu-%06d.pprof", seq))
	f, err := os.Create(path)
	if err != nil {
		r.fail(err)
		return false
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		r.fail(err)
		return false
	}
	stopped := false
	select {
	case <-r.stop:
		stopped = true
	case <-time.After(r.cfg.Window):
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		r.fail(err)
		return false
	}
	r.finish(seq, path)
	return !stopped
}

// finish copies the closed window out for any marks it covered, then
// prunes the ring to Keep captures.
func (r *ProfRing) finish(seq int, path string) {
	r.mu.Lock()
	marks := r.pending
	r.pending = nil
	r.mu.Unlock()
	for _, name := range marks {
		r.copySlow(seq, path, name)
	}
	r.prune()
}

func (r *ProfRing) copySlow(seq int, path, name string) {
	if err := os.MkdirAll(r.cfg.SlowDir, 0o755); err != nil {
		r.warn(err)
		return
	}
	src, err := os.Open(path)
	if err != nil {
		r.warn(err)
		return
	}
	defer src.Close()
	dstPath := filepath.Join(r.cfg.SlowDir, fmt.Sprintf("cpu-%06d-%s.pprof", seq, name))
	dst, err := os.Create(dstPath)
	if err != nil {
		r.warn(err)
		return
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		os.Remove(dstPath)
		r.warn(err)
		return
	}
	if err := dst.Close(); err != nil {
		r.warn(err)
	}
}

// prune keeps the newest Keep rolling captures. Sequence numbers are
// zero-padded, so lexical order is capture order.
func (r *ProfRing) prune() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "cpu-") && strings.HasSuffix(n, ".pprof") {
			names = append(names, n)
		}
	}
	if len(names) <= r.cfg.Keep {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-r.cfg.Keep] {
		os.Remove(filepath.Join(r.cfg.Dir, n))
	}
}

// fail logs a disabling error; the capture loop exits after it.
func (r *ProfRing) fail(err error) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Warn("profile ring disabled", slog.String("error", err.Error()))
	}
}

func (r *ProfRing) warn(err error) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Warn("profile ring slow-copy failed", slog.String("error", err.Error()))
	}
}

// sanitizeMark keeps mark-derived filenames flat and portable.
func sanitizeMark(name string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			return c
		default:
			return '_'
		}
	}, name)
}
