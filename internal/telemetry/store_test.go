package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testEvent(i int) *SolveEvent {
	return &SolveEvent{
		Time:      time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Source:    SourceServe,
		JobID:     fmt.Sprintf("job-%06d", i),
		Bench:     "B1",
		Ops:       20,
		Contexts:  4,
		Status:    "done",
		ElapsedMs: 100,
	}
}

// replayIDs collects the JobIDs Replay yields, in order.
func replayIDs(t *testing.T, s *Store) (ids []string, skipped int) {
	t.Helper()
	_, skipped, err := s.Replay(func(ev *SolveEvent) error {
		ids = append(ids, ev.JobID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, skipped
}

func TestStoreRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of events; retention at 3
	// segments must prune the oldest.
	s, err := OpenStore(dir, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}

	segs, err := s.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Fatalf("%d segments retained, want <= 3", len(segs))
	}
	if segs[0] == 1 {
		t.Fatal("oldest segment was never pruned")
	}

	// What survives is a contiguous tail of the stream ending at the last
	// event — retention drops history, never recent events, never order.
	ids, skipped := replayIDs(t, s)
	if skipped != 0 {
		t.Fatalf("skipped %d lines in a clean store", skipped)
	}
	if len(ids) == 0 || len(ids) == total {
		t.Fatalf("replayed %d of %d events; retention should keep a strict subset", len(ids), total)
	}
	if last := ids[len(ids)-1]; last != fmt.Sprintf("job-%06d", total-1) {
		t.Fatalf("last replayed id %s, want the final append", last)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("replay out of order: %s after %s", ids[i], ids[i-1])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, DefaultMaxSegmentBytes, DefaultMaxSegments)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// A crash mid-append leaves a final line without its newline.
	active := filepath.Join(dir, "events-000001.jsonl")
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"time":"2026-08-08T12:`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(dir, DefaultMaxSegmentBytes, DefaultMaxSegments)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.RecoveredBytes() == 0 {
		t.Fatal("torn tail not detected")
	}
	ids, skipped := replayIDs(t, s2)
	if len(ids) != 3 || skipped != 0 {
		t.Fatalf("after recovery: %d events, %d skipped; want 3, 0", len(ids), skipped)
	}
	// The store must keep working after recovery: the next append lands
	// on a clean line.
	if err := s2.Append(testEvent(99)); err != nil {
		t.Fatal(err)
	}
	ids, _ = replayIDs(t, s2)
	if len(ids) != 4 || ids[3] != "job-000099" {
		t.Fatalf("post-recovery append not replayable: %v", ids)
	}
}

func TestStoreSkipsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, DefaultMaxSegmentBytes, DefaultMaxSegments)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(testEvent(0)) //nolint:errcheck
	s.Close()

	// A complete-but-garbage line (manual edit, partial corruption that
	// kept its newline) must be skipped and counted, not kill the replay.
	active := filepath.Join(dir, "events-000001.jsonl")
	f, _ := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("this is not json\n") //nolint:errcheck
	f.Close()
	s.Append(testEvent(1)) //nolint:errcheck // append after close is dropped; reopen instead

	s2, err := OpenStore(dir, DefaultMaxSegmentBytes, DefaultMaxSegments)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Append(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	ids, skipped := replayIDs(t, s2)
	if len(ids) != 2 || skipped != 1 {
		t.Fatalf("replayed %d events, skipped %d; want 2 events, 1 skipped", len(ids), skipped)
	}
}

func TestStoreAppendAfterClose(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0, 0) // zero config takes defaults
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(testEvent(0)); err == nil {
		t.Fatal("append after close must error")
	}
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped())
	}
}
