package telemetry

import (
	"math"
	"sort"
)

// Sketch is a streaming quantile sketch with a relative-error guarantee
// (the DDSketch construction): values are counted in logarithmically
// spaced buckets, index = ceil(log_gamma(v)) with gamma = (1+α)/(1-α),
// so any quantile estimate is within α relative error of the exact
// rank-q value, independent of the distribution and the stream length.
// Memory is O(log(max/min)/α) — tens of buckets for solve times that
// span milliseconds to minutes at α = 2%.
//
// The zero value is not usable; construct with NewSketch. A nil *Sketch
// is a safe no-op for Add and returns zeros from every accessor, so
// aggregation code never branches on presence.
type Sketch struct {
	alpha  float64
	gamma  float64
	logG   float64
	counts map[int]int64 // bucket index -> count, values > 0
	zeros  int64         // values <= 0
	count  int64
	sum    float64
	min    float64
	max    float64
}

// DefaultAccuracy is the relative error α used when a caller passes a
// non-positive accuracy: 2%, i.e. p99 = 1000ms may be reported anywhere
// in [980ms, 1020ms].
const DefaultAccuracy = 0.02

// NewSketch returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1; out-of-range values fall back to DefaultAccuracy).
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAccuracy
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:  alpha,
		gamma:  gamma,
		logG:   math.Log(gamma),
		counts: make(map[int]int64),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 {
	if s == nil {
		return 0
	}
	return s.alpha
}

// Add records one value. Non-positive values are counted in a dedicated
// zero bucket (they have no meaningful relative error) and report as 0
// from Quantile. NaN is dropped.
func (s *Sketch) Add(v float64) {
	if s == nil || math.IsNaN(v) {
		return
	}
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= 0 {
		s.zeros++
	} else {
		s.counts[s.bucket(v)]++
	}
	s.count++
	s.sum += v
}

func (s *Sketch) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logG))
}

// value maps a bucket index back to its midpoint estimate
// 2γ^i/(γ+1), the point within (γ^(i-1), γ^i] with worst-case relative
// error α against every value the bucket can hold.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1) within
// α relative error of the exact rank-⌊q·(n-1)⌋ order statistic. Zero
// when the sketch is empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.count-1)) // 0-based target rank
	if rank < s.zeros {
		return 0
	}
	keys := make([]int, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.zeros
	for _, k := range keys {
		cum += s.counts[k]
		if cum > rank {
			v := s.value(k)
			// Clamp to the observed range: the extreme buckets' midpoints
			// can overshoot the true min/max, which are known exactly.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Merge folds other into s (s keeps its own accuracy; merging sketches
// of different γ is rejected as a no-op because their buckets are not
// commensurable — the aggregator only ever merges same-α sketches).
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil || other.count == 0 || other.gamma != s.gamma {
		return
	}
	for k, c := range other.counts {
		s.counts[k] += c
	}
	s.zeros += other.zeros
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of recorded values.
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Sum returns the sum of recorded values.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	return s.sum
}

// Mean returns the exact mean of recorded values (sum and count are
// tracked exactly; only quantiles are approximate).
func (s *Sketch) Mean() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Max returns the largest recorded value (exact), 0 when empty.
func (s *Sketch) Max() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.max
}

// Min returns the smallest recorded value (exact), 0 when empty.
func (s *Sketch) Min() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.min
}
