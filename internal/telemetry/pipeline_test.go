package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/obs"
)

func testPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Now == nil {
		clock := &fixedClock{t: testBase}
		cfg.Now = clock.now
	}
	p, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPipelineBurstAndRestart is the headline durability check: a burst
// of jobs yields windowed percentiles within the sketch's error bound,
// and a restart (even after a crash tears the store's tail) rebuilds the
// same history from disk.
func TestPipelineBurstAndRestart(t *testing.T) {
	dir := t.TempDir()
	clock := &fixedClock{t: testBase}
	cfg := Config{Dir: dir, Now: clock.now, Registry: obs.NewRegistry()}
	p := testPipeline(t, cfg)

	// 500 solves spread over the trailing 10 minutes with a deterministic
	// latency spread.
	next := lcg(99)
	elapsed := make([]float64, 500)
	for i := range elapsed {
		ms := 20 + 980*next() // 20ms..1s
		elapsed[i] = ms
		ev := solvedEvent(testBase.Add(-time.Duration(i%10)*time.Minute), "B1", 88, 16, ms)
		ev.JobID = fmt.Sprintf("job-%06d", i)
		p.Record(ev)
	}
	sort.Float64s(elapsed)

	st := p.Stats(15 * time.Minute)
	if st.Jobs != 500 || st.Total.Solved != 500 {
		t.Fatalf("jobs/solved = %d/%d, want 500/500", st.Jobs, st.Total.Solved)
	}
	for _, q := range []struct {
		name  string
		got   float64
		exact float64
	}{
		{"p50", st.Total.P50Ms, exactQuantile(elapsed, 0.50)},
		{"p90", st.Total.P90Ms, exactQuantile(elapsed, 0.90)},
		{"p99", st.Total.P99Ms, exactQuantile(elapsed, 0.99)},
	} {
		if relErr := math.Abs(q.got-q.exact) / q.exact; relErr > DefaultAccuracy*1.01 {
			t.Errorf("%s = %g, exact %g, relative error %.4f beyond sketch bound", q.name, q.got, q.exact, relErr)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: tear the active segment's tail, then restart.
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if len(segs) == 0 {
		t.Fatal("no segments on disk after 500 events")
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"time":"2026-`) //nolint:errcheck
	f.Close()

	reg2 := obs.NewRegistry()
	p2 := testPipeline(t, Config{Dir: dir, Now: clock.now, Registry: reg2})
	if got := reg2.Counter("agingfp_telemetry_events_replayed_total").Value(); got != 500 {
		t.Fatalf("replayed %d events after restart, want 500", got)
	}
	st2 := p2.Stats(15 * time.Minute)
	if st2.Jobs != 500 {
		t.Fatalf("post-restart jobs = %d, want 500", st2.Jobs)
	}
	if st2.Total.P50Ms != st.Total.P50Ms || st2.Total.P99Ms != st.Total.P99Ms {
		t.Fatalf("post-restart percentiles differ: p50 %g vs %g, p99 %g vs %g",
			st2.Total.P50Ms, st.Total.P50Ms, st2.Total.P99Ms, st.Total.P99Ms)
	}
}

func TestPipelineDriftDetection(t *testing.T) {
	baseline := &bench.PerfReport{
		Schema: bench.PerfSchema,
		Suite:  "B1",
		Records: []bench.PerfRecord{
			{Name: "B1", ElapsedMs: 100, SimplexIters: 1000, LPSolves: 50},
		},
	}
	var logBuf strings.Builder
	reg := obs.NewRegistry()
	p := testPipeline(t, Config{
		Baseline:        baseline,
		DriftFactor:     2.0,
		DriftMinSamples: 3,
		Registry:        reg,
		Logger:          slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	// Live traffic 3.5x slower than baseline wall-clock, but with LESS
	// solver effort — only solve_ms must trip.
	var out Outcome
	for i := 0; i < 5; i++ {
		ev := solvedEvent(testBase, "B1", 88, 16, 350)
		ev.SimplexIters, ev.LPSolves = 900, 40
		out = p.Record(ev)
	}
	byMetric := map[string]DriftFinding{}
	for _, f := range out.Drift {
		byMetric[f.Metric] = f
	}
	solve, ok := byMetric[DriftSolveMs]
	if !ok || !solve.Exceeded {
		t.Fatalf("solve_ms drift not flagged: %+v", out.Drift)
	}
	if math.Abs(solve.Ratio-3.5) > 3.5*DefaultAccuracy*1.01 {
		t.Fatalf("solve_ms ratio %g, want ~3.5", solve.Ratio)
	}
	if byMetric[DriftSimplexIters].Exceeded || byMetric[DriftLPSolves].Exceeded {
		t.Fatalf("effort metrics below baseline must not be flagged: %+v", out.Drift)
	}

	// The gauge carries the live ratio and the alert names the benchmark.
	g := reg.Gauge(`agingfp_telemetry_drift{metric="solve_ms",benchmark="B1"}`)
	if g.Value() <= 2 {
		t.Fatalf("drift gauge = %g, want > factor", g.Value())
	}
	if !strings.Contains(logBuf.String(), "solver performance drift") {
		t.Fatalf("no drift alert logged:\n%s", logBuf.String())
	}

	// Stats folds the findings in for /v1/stats.
	if st := p.Stats(15 * time.Minute); len(st.Drift) == 0 {
		t.Fatal("WindowStats.Drift empty with an armed baseline")
	}
}

func TestPipelineDriftNeedsSamples(t *testing.T) {
	baseline := &bench.PerfReport{
		Schema:  bench.PerfSchema,
		Suite:   "B1",
		Records: []bench.PerfRecord{{Name: "B1", ElapsedMs: 100}},
	}
	p := testPipeline(t, Config{Baseline: baseline, DriftMinSamples: 5})
	out := p.Record(solvedEvent(testBase, "B1", 88, 16, 1000))
	if len(out.Drift) != 0 {
		t.Fatalf("one sample must not produce findings: %+v", out.Drift)
	}
}

func TestPipelineSlowCapture(t *testing.T) {
	dir := t.TempDir()
	p := testPipeline(t, Config{
		Dir:            dir,
		SlowPercentile: 0.9,
		SlowMinSamples: 5,
		SlowKeep:       2,
	})

	// Build up a baseline population of ~10ms solves for one shape.
	for i := 0; i < 20; i++ {
		if out := p.Record(solvedEvent(testBase, "B1", 88, 16, 10)); out.Slow {
			t.Fatalf("typical solve %d flagged slow", i)
		}
	}
	// The threshold is computed before the event lands, so this outlier
	// cannot raise its own bar.
	out := p.Record(solvedEvent(testBase, "B1", 88, 16, 1000))
	if !out.Slow {
		t.Fatal("10x outlier not flagged slow")
	}
	if out.SlowThreshold <= 0 || out.SlowThreshold > 20 {
		t.Fatalf("slow threshold %g, want ~10ms population percentile", out.SlowThreshold)
	}
	// A different shape has no population yet — never flagged.
	if out := p.Record(solvedEvent(testBase, "tiny", 4, 2, 1000)); out.Slow {
		t.Fatal("unseen shape flagged slow without samples")
	}

	// Capture writes the journal and prunes beyond SlowKeep.
	for _, name := range []string{"job-a", "job-b", "job-c"} {
		path := p.CaptureSlow(name, func(w io.Writer) error {
			_, err := io.WriteString(w, `{"events":[]}`)
			return err
		})
		if path == "" {
			t.Fatalf("capture %s failed", name)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d captured journals retained, want SlowKeep=2", len(entries))
	}
}

func TestPipelineNilSafe(t *testing.T) {
	var p *Pipeline
	if p.Enabled() {
		t.Fatal("nil pipeline reports enabled")
	}
	if out := p.Record(solvedEvent(testBase, "B1", 8, 2, 1)); out.Slow || out.Drift != nil {
		t.Fatal("nil Record must return a zero outcome")
	}
	if p.Stats(time.Minute) != nil || p.Series(time.Minute) != nil || p.DriftFindings(time.Minute) != nil {
		t.Fatal("nil accessors must return nil")
	}
	if p.CaptureSlow("x", func(io.Writer) error { return nil }) != "" {
		t.Fatal("nil CaptureSlow must be a no-op")
	}
	if p.Span() != 0 || p.Dir() != "" || p.Close() != nil {
		t.Fatal("nil pipeline scalar accessors must return zeros")
	}
}

func TestDashboardRenders(t *testing.T) {
	baseline := &bench.PerfReport{
		Schema:  bench.PerfSchema,
		Suite:   "B1",
		Records: []bench.PerfRecord{{Name: "B1", ElapsedMs: 100}},
	}
	p := testPipeline(t, Config{Baseline: baseline})
	for i := 0; i < 10; i++ {
		p.Record(solvedEvent(testBase.Add(-time.Duration(i)*time.Minute), "B1", 88, 16, 300))
	}

	html := Dashboard(p, 15*time.Minute, "agingfloord")
	for _, want := range []string{
		"<!DOCTYPE html>",
		"agingfloord solve telemetry",
		"ops&lt;=128,ctx&lt;=16", // shape names are HTML-escaped
		"B1",
		"<svg",                       // sparklines and heatmap inline
		"prefers-color-scheme: dark", // selected dark mode
		"Baseline drift",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(html, "<script") {
		t.Fatal("dashboard must not ship scripts")
	}

	// A nil pipeline still renders a (empty) page rather than panicking.
	if empty := Dashboard(nil, time.Minute, "x"); !strings.Contains(empty, "<!DOCTYPE html>") {
		t.Fatal("nil-pipeline dashboard did not render")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir must fail")
	}
}

// TestReplaySkipCountSurfaced corrupts the durable store between runs:
// the reopened pipeline must skip the bad line, keep the good history,
// and surface the skip count in both the stats document and the
// replay-skip counter so an operator can tell the window is incomplete.
func TestReplaySkipCountSurfaced(t *testing.T) {
	dir := t.TempDir()
	clock := &fixedClock{t: testBase}
	p := testPipeline(t, Config{Dir: dir, Now: clock.now})
	for i := 0; i < 3; i++ {
		p.Record(solvedEvent(testBase, "B1", 20, 4, 100))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no store segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A complete-but-malformed line (a torn tail would be recovery, not
	// a skip), followed by one more good event a later process appended.
	if _, err := f.WriteString("{not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	reg := obs.NewRegistry()
	p2 := testPipeline(t, Config{Dir: dir, Now: clock.now, Registry: reg})
	st := p2.Stats(time.Hour)
	if st.Jobs != 3 {
		t.Fatalf("replayed jobs = %d, want the 3 intact events", st.Jobs)
	}
	if st.ReplaySkipped != 1 {
		t.Fatalf("stats replay_skipped = %d, want 1", st.ReplaySkipped)
	}
	if got := reg.Counter("agingfp_telemetry_replay_skipped_total").Value(); got != 1 {
		t.Fatalf("replay-skip counter = %d, want 1", got)
	}
}
