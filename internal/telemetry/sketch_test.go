package telemetry

import (
	"math"
	"sort"
	"testing"
)

// lcg is a deterministic uniform(0,1) stream so the accuracy test is
// reproducible without math/rand.
func lcg(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}

// exactQuantile matches the sketch's rank convention: the 0-based
// rank-⌊q·(n-1)⌋ order statistic.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(q * float64(len(sorted)-1))
	return sorted[rank]
}

func TestSketchAccuracy(t *testing.T) {
	// Values spanning 1ms to ~200s — the range real solve times cover —
	// drawn log-uniformly so every decade gets traffic.
	next := lcg(42)
	const n = 5000
	s := NewSketch(DefaultAccuracy)
	values := make([]float64, n)
	for i := range values {
		v := math.Exp(next() * math.Log(200_000))
		values[i] = v
		s.Add(v)
	}
	sort.Float64s(values)

	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := exactQuantile(values, q)
		got := s.Quantile(q)
		if relErr := math.Abs(got-exact) / exact; relErr > s.Alpha()*1.01 {
			t.Errorf("q=%g: got %g, exact %g, relative error %.4f > alpha %.4f",
				q, got, exact, relErr, s.Alpha())
		}
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if s.Min() != values[0] || s.Max() != values[n-1] {
		t.Fatalf("min/max = %g/%g, want exact %g/%g", s.Min(), s.Max(), values[0], values[n-1])
	}
	wantSum := 0.0
	for _, v := range values {
		wantSum += v
	}
	if math.Abs(s.Mean()-wantSum/n) > 1e-6*wantSum/n {
		t.Fatalf("mean = %g, want %g", s.Mean(), wantSum/n)
	}
}

func TestSketchMergeMatchesSingleStream(t *testing.T) {
	next := lcg(7)
	whole, a, b := NewSketch(0.02), NewSketch(0.02), NewSketch(0.02)
	for i := 0; i < 2000; i++ {
		v := 1 + next()*1000
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	// Sums differ only by float addition order.
	if math.Abs(a.Sum()-whole.Sum()) > 1e-6*whole.Sum() {
		t.Fatalf("merged sum %g, want %g", a.Sum(), whole.Sum())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%g: merged %g != single-stream %g (same buckets must agree exactly)", q, got, want)
		}
	}
	// Incommensurable accuracies must refuse to merge rather than mix
	// bucket bases.
	other := NewSketch(0.1)
	other.Add(5)
	before := a.Count()
	a.Merge(other)
	if a.Count() != before {
		t.Fatal("merge across different gamma must be a no-op")
	}
}

func TestSketchZerosAndNil(t *testing.T) {
	s := NewSketch(0.02)
	s.Add(0)
	s.Add(-3)
	s.Add(10)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3 (zeros counted)", s.Count())
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("low quantile with zero bucket = %g, want 0", got)
	}
	if got := s.Quantile(1); math.Abs(got-10) > 10*s.Alpha() {
		t.Fatalf("max quantile = %g, want 10 within alpha", got)
	}
	s.Add(math.NaN())
	if s.Count() != 3 {
		t.Fatal("NaN must be dropped")
	}

	var nilSketch *Sketch
	nilSketch.Add(1) // must not panic
	nilSketch.Merge(s)
	if nilSketch.Quantile(0.5) != 0 || nilSketch.Count() != 0 || nilSketch.Mean() != 0 {
		t.Fatal("nil sketch accessors must return zeros")
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(0.02)
	if s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
}
