// Package telemetry is the longitudinal solve-observability layer: one
// wide event per completed job (CLI run or agingfloord submission),
// appended to a durable size-rotated JSONL store, aggregated into
// time-windowed percentile summaries, and compared against the committed
// perf baseline for drift.
//
// Where internal/obs answers "how is the process doing right now?" with
// live counters and spans, and internal/flight answers "why did THIS
// solve do what it did?" with a per-solve journal, telemetry answers
// "how has the solver been doing over the last hours and across
// restarts?" — the continuous-profiling view a long-running service
// needs to check the paper's minutes-scale-solve claim against live
// traffic instead of one-shot snapshots.
//
// The package is nil-safe throughout: every method on a nil *Pipeline
// is a no-op, so callers wire it unconditionally and pay nothing when
// telemetry is disabled.
package telemetry

import (
	"fmt"
	"time"

	"agingfp/internal/flight"
)

// Source values for SolveEvent.Source.
const (
	SourceServe = "serve" // an agingfloord job
	SourceCLI   = "cli"   // a one-shot agingfloor run
)

// SolveEvent is the wide event one completed solve emits: everything an
// operator needs to slice solver behavior after the fact, denormalized
// into one flat record. One event per job — cache hits included (they
// count toward throughput and hit-rate but are excluded from solve-time
// percentiles, which describe actual solver runs).
type SolveEvent struct {
	// Time is the completion wall-clock timestamp. The store preserves
	// it verbatim, so replayed history lands in the right aggregation
	// cells after a restart.
	Time time.Time `json:"time"`
	// Source is serve or cli.
	Source string `json:"source"`
	// JobID / TraceID join the event with the job API, logs and spans.
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`

	// Tenant is the accounting identity the job ran under (serve's
	// X-Tenant header, defaulted to "anon"). Stored post-rollup: when the
	// daemon's tenant-cardinality cap is exceeded the overflow identity
	// is already "other" here, so the durable history keeps a bounded
	// label set no matter what clients send. Empty on CLI events.
	Tenant string `json:"tenant,omitempty"`

	// Bench is the workload name (Table-I benchmark or design name).
	Bench string `json:"bench,omitempty"`
	// Ops / Contexts are the workload shape; ShapeBucket groups them.
	Ops      int    `json:"ops,omitempty"`
	Contexts int    `json:"contexts,omitempty"`
	Mode     string `json:"mode,omitempty"`

	// Status is the job's terminal state (done, failed, canceled) — or,
	// for CLI runs, the solver's typed status string.
	Status string `json:"status"`
	// CacheHit marks a job answered from the content-addressed cache
	// without running the solver.
	CacheHit bool `json:"cache_hit,omitempty"`
	// SolveKind says how the answer was produced: "cold" (full solve),
	// "exact_hit" / "semantic_hit" (cache tiers), or "delta" (re-solve
	// seeded from a prior job's artifacts). Empty on CLI events.
	SolveKind string `json:"solve_kind,omitempty"`
	Error     string `json:"error,omitempty"`

	// ElapsedMs is the solve wall-clock; QueueWaitMs the time between
	// submission and a worker picking the job up (serve only).
	ElapsedMs   float64 `json:"elapsed_ms"`
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`

	// Per-phase wall-clock, matching core.Stats.
	Step1Ms  float64 `json:"step1_ms,omitempty"`
	RotateMs float64 `json:"rotate_ms,omitempty"`
	Step2Ms  float64 `json:"step2_ms,omitempty"`
	TimingMs float64 `json:"timing_ms,omitempty"`

	// Solver-effort counters, matching core.Stats.
	LPSolves      int `json:"lp_solves,omitempty"`
	SimplexIters  int `json:"simplex_iters,omitempty"`
	ILPNodes      int `json:"ilp_nodes,omitempty"`
	STProbes      int `json:"st_probes,omitempty"`
	ProbeTimeouts int `json:"probe_timeouts,omitempty"`
	WarmStarts    int `json:"warm_starts,omitempty"`
	WarmRejects   int `json:"warm_rejects,omitempty"`

	// Per-phase simplex-kernel wall-clock from the LP kernel profiler,
	// summed across the job's profiled LP solves. Present only when
	// kernel profiling was armed for the job (see flight.EnableKernel);
	// zero otherwise and omitted from the JSON.
	LPSetupMs   float64 `json:"lp_setup_ms,omitempty"`
	LPPricingMs float64 `json:"lp_pricing_ms,omitempty"`
	LPFtranMs   float64 `json:"lp_ftran_ms,omitempty"`
	LPRatioMs   float64 `json:"lp_ratio_ms,omitempty"`
	LPUpdateMs  float64 `json:"lp_update_ms,omitempty"`
	LPRefreshMs float64 `json:"lp_refresh_ms,omitempty"`
}

// FillKernel copies one kernel snapshot's per-phase extrapolated
// wall-clock into the event's flat LP*Ms fields. Nil-safe, so callers
// pass flight.Recorder.KernelSnapshot() unconditionally.
func (e *SolveEvent) FillKernel(k *flight.Kernel) {
	if k == nil {
		return
	}
	ms := func(name string) float64 {
		if ph := k.Phases[name]; ph != nil {
			return float64(ph.Nanos) / 1e6
		}
		return 0
	}
	e.LPSetupMs = ms(flight.PhaseSetup)
	e.LPPricingMs = ms(flight.PhasePricing)
	e.LPFtranMs = ms(flight.PhaseFtran)
	e.LPRatioMs = ms(flight.PhaseRatio)
	e.LPUpdateMs = ms(flight.PhaseUpdate)
	e.LPRefreshMs = ms(flight.PhaseRefresh)
}

// PhaseMs returns the event's non-zero kernel phase times keyed by
// flight's phase names; empty for unprofiled jobs.
func (e *SolveEvent) PhaseMs() map[string]float64 {
	all := map[string]float64{
		flight.PhaseSetup:   e.LPSetupMs,
		flight.PhasePricing: e.LPPricingMs,
		flight.PhaseFtran:   e.LPFtranMs,
		flight.PhaseRatio:   e.LPRatioMs,
		flight.PhaseUpdate:  e.LPUpdateMs,
		flight.PhaseRefresh: e.LPRefreshMs,
	}
	out := make(map[string]float64, len(all))
	for name, v := range all {
		if v > 0 {
			out[name] = v
		}
	}
	return out
}

// Solved reports whether the event describes a solver run whose elapsed
// time belongs in the latency percentiles: a job that finished the
// solver, not a cache replay and not a failure (a canceled 2-second job
// says nothing about solve latency). Exported so the SLO engine
// (internal/slo) classifies events with the same predicate the
// aggregation windows use.
func (e *SolveEvent) Solved() bool {
	return !e.CacheHit && (e.Status == "done" || e.Status == "optimal" || e.Status == "feasible")
}

// Failed reports a job that ended in an error state.
func (e *SolveEvent) Failed() bool {
	return e.Status == "failed" || e.Status == "infeasible" || e.Status == "error"
}

// Canceled reports a job that was canceled (operator or deadline).
func (e *SolveEvent) Canceled() bool { return e.Status == "canceled" }

// ShapeBucket groups workloads of similar size so percentiles compare
// like with like: ops and contexts are rounded up to the next power of
// two (floored at 16 and 4 — below that everything is "tiny" and the
// distinction is noise). A B7-sized job (88 ops, 16 contexts) lands in
// "ops<=128,ctx<=16" alongside every similarly sized submission.
func (e *SolveEvent) ShapeBucket() string {
	return ShapeBucketFor(e.Ops, e.Contexts)
}

// ShapeBucketFor is the bucketing function itself, exported so other
// layers (the SLO engine seeding latency targets from the perf
// baseline's record shapes) land in exactly the buckets live traffic
// lands in.
func ShapeBucketFor(ops, contexts int) string {
	return fmt.Sprintf("ops<=%d,ctx<=%d", ceilPow2(ops, 16), ceilPow2(contexts, 4))
}

// ceilPow2 rounds n up to the next power of two, at least floor.
func ceilPow2(n, floor int) int {
	p := floor
	for p < n {
		p <<= 1
	}
	return p
}
