package telemetry

import (
	"sort"
	"sync"
	"time"
)

// bucketStats accumulates one slice of traffic (one ring cell × one
// grouping key): throughput counters plus quantile sketches over the
// solve-time and solver-effort distributions. Only events that actually
// ran the solver to completion feed the sketches (see SolveEvent.solved)
// — cache replays and canceled jobs would poison latency percentiles.
type bucketStats struct {
	alpha float64

	jobs      int64
	failures  int64
	canceled  int64
	cacheHits int64
	// Per-tier cache-hit counts (exact vs semantic), keyed off the
	// event's SolveKind so per-tenant hit rates can say which tier is
	// doing the work.
	exactHits    int64
	semanticHits int64

	elapsedMs    *Sketch
	queueWaitMs  *Sketch
	simplexIters *Sketch
	lpSolves     *Sketch
	// phases holds per-kernel-phase solve-time sketches, keyed by
	// flight's phase names. Lazy: allocated only when profiled events
	// arrive, so unprofiled deployments pay nothing.
	phases map[string]*Sketch
}

func newBucketStats(alpha float64) *bucketStats {
	return &bucketStats{
		alpha:        alpha,
		elapsedMs:    NewSketch(alpha),
		queueWaitMs:  NewSketch(alpha),
		simplexIters: NewSketch(alpha),
		lpSolves:     NewSketch(alpha),
	}
}

func (b *bucketStats) phase(name string) *Sketch {
	sk := b.phases[name]
	if sk == nil {
		if b.phases == nil {
			b.phases = make(map[string]*Sketch, 6)
		}
		sk = NewSketch(b.alpha)
		b.phases[name] = sk
	}
	return sk
}

func (b *bucketStats) record(ev *SolveEvent) {
	b.jobs++
	switch {
	case ev.CacheHit:
		b.cacheHits++
		switch ev.SolveKind {
		case "exact_hit":
			b.exactHits++
		case "semantic_hit":
			b.semanticHits++
		}
	case ev.Failed():
		b.failures++
	case ev.Canceled():
		b.canceled++
	}
	if ev.QueueWaitMs > 0 {
		b.queueWaitMs.Add(ev.QueueWaitMs)
	}
	if ev.Solved() {
		b.elapsedMs.Add(ev.ElapsedMs)
		b.simplexIters.Add(float64(ev.SimplexIters))
		b.lpSolves.Add(float64(ev.LPSolves))
		for name, ms := range ev.PhaseMs() {
			b.phase(name).Add(ms)
		}
	}
}

func (b *bucketStats) merge(o *bucketStats) {
	b.jobs += o.jobs
	b.failures += o.failures
	b.canceled += o.canceled
	b.cacheHits += o.cacheHits
	b.exactHits += o.exactHits
	b.semanticHits += o.semanticHits
	b.elapsedMs.Merge(o.elapsedMs)
	b.queueWaitMs.Merge(o.queueWaitMs)
	b.simplexIters.Merge(o.simplexIters)
	b.lpSolves.Merge(o.lpSolves)
	for name, sk := range o.phases {
		b.phase(name).Merge(sk)
	}
}

// cell is one time slot of the ring: totals plus per-shape-bucket,
// per-benchmark, and per-tenant breakdowns.
type cell struct {
	start   int64 // unix nanoseconds of the slot start; 0 = empty
	total   *bucketStats
	shapes  map[string]*bucketStats
	benches map[string]*bucketStats
	tenants map[string]*bucketStats
}

// DefaultTenantCap bounds the distinct tenant identities the aggregator
// (and the serve metric labels) will track before rolling overflow into
// "other". Tenants are client-controlled strings, so without a cap one
// misbehaving client could grow the label set — and every Prometheus
// time series behind it — without bound.
const DefaultTenantCap = 32

// TenantOther is the rollup identity for tenants past the cap.
const TenantOther = "other"

// TenantTracker bounds tenant-label cardinality: the first cap distinct
// identities are admitted verbatim (admission order — a pragmatic
// "top-K" under the assumption that steady tenants appear early and
// churn is the attack), everything later maps to TenantOther. Safe for
// concurrent use; the zero value must not be used (NewTenantTracker).
type TenantTracker struct {
	mu   sync.Mutex
	cap  int
	seen map[string]struct{}
}

// NewTenantTracker builds a tracker admitting up to cap identities
// (cap < 1 uses DefaultTenantCap).
func NewTenantTracker(cap int) *TenantTracker {
	if cap < 1 {
		cap = DefaultTenantCap
	}
	return &TenantTracker{cap: cap, seen: make(map[string]struct{}, cap)}
}

// Label maps a tenant identity to its bounded label: the identity
// itself while the cap holds, TenantOther past it. Empty stays empty
// (CLI events carry no tenant).
func (t *TenantTracker) Label(tenant string) string {
	if t == nil || tenant == "" {
		return tenant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.seen[tenant]; ok {
		return tenant
	}
	if len(t.seen) < t.cap {
		t.seen[tenant] = struct{}{}
		return tenant
	}
	return TenantOther
}

// Aggregator maintains a fixed ring of time cells (Step wide, Cells
// long) holding windowed traffic statistics. Events are slotted by
// their own timestamps — so replaying the durable store after a restart
// rebuilds exactly the history the previous process had — and queries
// merge the cells inside the requested window.
//
// All methods are safe for concurrent use.
type Aggregator struct {
	step  time.Duration
	alpha float64
	now   func() time.Time

	// tenants bounds the per-tenant breakdown's key set. Events arrive
	// with serve's own rollup already applied, so this second tracker is
	// a backstop against hand-written stores; both default to
	// DefaultTenantCap.
	tenants *TenantTracker

	mu    sync.Mutex
	cells []cell
}

const (
	// DefaultStep is the aggregation cell width.
	DefaultStep = time.Minute
	// DefaultCells is the ring length: 180 one-minute cells = 3 hours of
	// windowed history (the durable store keeps far more; the ring is
	// what /v1/stats can query).
	DefaultCells = 180
)

// NewAggregator builds a ring of cells Step wide. now is the clock used
// to resolve query windows (nil = time.Now; tests inject their own).
func NewAggregator(step time.Duration, cells int, alpha float64, now func() time.Time) *Aggregator {
	if step <= 0 {
		step = DefaultStep
	}
	if cells < 2 {
		cells = DefaultCells
	}
	if now == nil {
		now = time.Now
	}
	return &Aggregator{step: step, alpha: alpha, now: now, tenants: NewTenantTracker(0), cells: make([]cell, cells)}
}

func (a *Aggregator) lock()   { a.mu.Lock() }
func (a *Aggregator) unlock() { a.mu.Unlock() }

// Span is the total history the ring can hold.
func (a *Aggregator) Span() time.Duration { return a.step * time.Duration(len(a.cells)) }

// Step is the cell width.
func (a *Aggregator) Step() time.Duration { return a.step }

// Record slots ev by its own timestamp. Events older than the cell
// currently occupying their slot are dropped — they are beyond the
// ring's horizon and still live in the durable store.
func (a *Aggregator) Record(ev *SolveEvent) {
	slotStart := ev.Time.Truncate(a.step).UnixNano()
	idx := int((slotStart / int64(a.step)) % int64(len(a.cells)))
	if idx < 0 {
		idx += len(a.cells)
	}
	a.lock()
	defer a.unlock()
	c := &a.cells[idx]
	if c.start != slotStart {
		if c.start > slotStart {
			return // older than the ring horizon
		}
		*c = cell{
			start:   slotStart,
			total:   newBucketStats(a.alpha),
			shapes:  make(map[string]*bucketStats),
			benches: make(map[string]*bucketStats),
			tenants: make(map[string]*bucketStats),
		}
	}
	c.total.record(ev)
	shape := ev.ShapeBucket()
	sb := c.shapes[shape]
	if sb == nil {
		sb = newBucketStats(a.alpha)
		c.shapes[shape] = sb
	}
	sb.record(ev)
	if ev.Bench != "" {
		bb := c.benches[ev.Bench]
		if bb == nil {
			bb = newBucketStats(a.alpha)
			c.benches[ev.Bench] = bb
		}
		bb.record(ev)
	}
	if ev.Tenant != "" {
		label := a.tenants.Label(ev.Tenant)
		tb := c.tenants[label]
		if tb == nil {
			tb = newBucketStats(a.alpha)
			c.tenants[label] = tb
		}
		tb.record(ev)
	}
}

// BucketSummary is the JSON shape of one aggregated traffic slice.
type BucketSummary struct {
	Jobs      int64 `json:"jobs"`
	Solved    int64 `json:"solved"`
	Failures  int64 `json:"failures"`
	Canceled  int64 `json:"canceled"`
	CacheHits int64 `json:"cache_hits"`
	// Per-tier cache hits and the hit rate over the bucket's jobs — the
	// per-tenant accounting view of who is being served from which tier.
	ExactHits    int64   `json:"exact_hits,omitempty"`
	SemanticHits int64   `json:"semantic_hits,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// SolveMsTotal is the exact sum of solved wall-clock in the bucket
	// (sketch sums are exact even though quantiles are approximate) —
	// the resource-attribution figure per-tenant accounting reads.
	SolveMsTotal float64 `json:"solve_ms_total"`

	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms,omitempty"`
	QueueWaitP90Ms float64 `json:"queue_wait_p90_ms,omitempty"`

	SimplexItersP50 float64 `json:"simplex_iters_p50"`
	SimplexItersP99 float64 `json:"simplex_iters_p99"`
	// SimplexItersTotal is the exact windowed sum of simplex iterations
	// — per-tenant totals add up to the aggregate, by construction.
	SimplexItersTotal float64 `json:"simplex_iters_total"`
	LPSolvesP50       float64 `json:"lp_solves_p50"`

	// PhaseP50Ms is the median per-job kernel phase time, keyed by
	// flight's phase names; present only when profiled jobs contributed.
	PhaseP50Ms map[string]float64 `json:"phase_p50_ms,omitempty"`
}

func summarize(b *bucketStats) BucketSummary {
	out := BucketSummary{
		Jobs:              b.jobs,
		Solved:            b.elapsedMs.Count(),
		Failures:          b.failures,
		Canceled:          b.canceled,
		CacheHits:         b.cacheHits,
		ExactHits:         b.exactHits,
		SemanticHits:      b.semanticHits,
		P50Ms:             b.elapsedMs.Quantile(0.50),
		P90Ms:             b.elapsedMs.Quantile(0.90),
		P99Ms:             b.elapsedMs.Quantile(0.99),
		MaxMs:             b.elapsedMs.Max(),
		MeanMs:            b.elapsedMs.Mean(),
		SolveMsTotal:      b.elapsedMs.Sum(),
		QueueWaitP50Ms:    b.queueWaitMs.Quantile(0.50),
		QueueWaitP90Ms:    b.queueWaitMs.Quantile(0.90),
		SimplexItersP50:   b.simplexIters.Quantile(0.50),
		SimplexItersP99:   b.simplexIters.Quantile(0.99),
		SimplexItersTotal: b.simplexIters.Sum(),
		LPSolvesP50:       b.lpSolves.Quantile(0.50),
	}
	if b.jobs > 0 {
		out.CacheHitRate = float64(b.cacheHits) / float64(b.jobs)
	}
	if len(b.phases) > 0 {
		out.PhaseP50Ms = make(map[string]float64, len(b.phases))
		for name, sk := range b.phases {
			out.PhaseP50Ms[name] = sk.Quantile(0.50)
		}
	}
	return out
}

// WindowStats is the GET /v1/stats payload: totals, rates, and the
// per-shape-bucket and per-benchmark percentile breakdowns for one
// trailing window.
type WindowStats struct {
	Window string    `json:"window"`
	Step   string    `json:"step"`
	Since  time.Time `json:"since"`
	Until  time.Time `json:"until"`

	Jobs         int64   `json:"jobs"`
	JobsPerMin   float64 `json:"jobs_per_min"`
	FailureRate  float64 `json:"failure_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`

	Total      BucketSummary            `json:"total"`
	Shapes     map[string]BucketSummary `json:"shapes,omitempty"`
	Benchmarks map[string]BucketSummary `json:"benchmarks,omitempty"`
	// Tenants breaks the window down by accounting identity (serve's
	// X-Tenant, bounded to the tenant cap + "other"). Present only when
	// tenant-attributed events contributed.
	Tenants map[string]BucketSummary `json:"tenants,omitempty"`

	// ReplaySkipped counts malformed store lines skipped when the
	// pipeline replayed its durable history at open — nonzero means the
	// windowed statistics are missing events a past process wrote.
	ReplaySkipped int64 `json:"replay_skipped,omitempty"`

	// Drift carries the latest baseline comparison (nil without a
	// baseline); see DriftFinding.
	Drift []DriftFinding `json:"drift,omitempty"`
}

// Stats merges every cell inside the trailing window (clamped to the
// ring span) into one summary document.
func (a *Aggregator) Stats(window time.Duration) *WindowStats {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	now := a.now()
	since := now.Add(-window)
	out := &WindowStats{
		Window: window.String(),
		Step:   a.step.String(),
		Since:  since,
		Until:  now,
	}
	total := newBucketStats(a.alpha)
	shapes := map[string]*bucketStats{}
	benches := map[string]*bucketStats{}
	tenants := map[string]*bucketStats{}

	a.lock()
	for i := range a.cells {
		c := &a.cells[i]
		if c.start == 0 {
			continue
		}
		start := time.Unix(0, c.start)
		if start.Before(since.Truncate(a.step)) || start.After(now) {
			continue
		}
		total.merge(c.total)
		for k, b := range c.shapes {
			if shapes[k] == nil {
				shapes[k] = newBucketStats(a.alpha)
			}
			shapes[k].merge(b)
		}
		for k, b := range c.benches {
			if benches[k] == nil {
				benches[k] = newBucketStats(a.alpha)
			}
			benches[k].merge(b)
		}
		for k, b := range c.tenants {
			if tenants[k] == nil {
				tenants[k] = newBucketStats(a.alpha)
			}
			tenants[k].merge(b)
		}
	}
	a.unlock()

	out.Jobs = total.jobs
	out.JobsPerMin = float64(total.jobs) / window.Minutes()
	if total.jobs > 0 {
		out.FailureRate = float64(total.failures) / float64(total.jobs)
		out.CacheHitRate = float64(total.cacheHits) / float64(total.jobs)
	}
	out.QueueWaitP50Ms = total.queueWaitMs.Quantile(0.50)
	out.QueueWaitP99Ms = total.queueWaitMs.Quantile(0.99)
	out.Total = summarize(total)
	if len(shapes) > 0 {
		out.Shapes = make(map[string]BucketSummary, len(shapes))
		for k, b := range shapes {
			out.Shapes[k] = summarize(b)
		}
	}
	if len(benches) > 0 {
		out.Benchmarks = make(map[string]BucketSummary, len(benches))
		for k, b := range benches {
			out.Benchmarks[k] = summarize(b)
		}
	}
	if len(tenants) > 0 {
		out.Tenants = make(map[string]BucketSummary, len(tenants))
		for k, b := range tenants {
			out.Tenants[k] = summarize(b)
		}
	}
	return out
}

// TenantWindow is the GET /v1/stats?tenant= payload: one tenant's
// windowed accounting summary.
type TenantWindow struct {
	Tenant  string        `json:"tenant"`
	Window  string        `json:"window"`
	Since   time.Time     `json:"since"`
	Until   time.Time     `json:"until"`
	Summary BucketSummary `json:"summary"`
}

// TenantStats summarizes one tenant over the trailing window. A tenant
// with no traffic in the window returns a zero summary (the identity is
// echoed back, so the response is still self-describing).
func (a *Aggregator) TenantStats(tenant string, window time.Duration) *TenantWindow {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	now := a.now()
	since := now.Add(-window).Truncate(a.step)
	merged := newBucketStats(a.alpha)
	a.lock()
	for i := range a.cells {
		c := &a.cells[i]
		if c.start == 0 {
			continue
		}
		start := time.Unix(0, c.start)
		if start.Before(since) || start.After(now) {
			continue
		}
		if b := c.tenants[tenant]; b != nil {
			merged.merge(b)
		}
	}
	a.unlock()
	return &TenantWindow{
		Tenant:  tenant,
		Window:  window.String(),
		Since:   now.Add(-window),
		Until:   now,
		Summary: summarize(merged),
	}
}

// BenchStats summarizes one benchmark over the trailing window —
// the drift detector's unit of comparison.
func (a *Aggregator) BenchStats(name string, window time.Duration) (BucketSummary, bool) {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	now := a.now()
	since := now.Add(-window).Truncate(a.step)
	merged := newBucketStats(a.alpha)
	found := false
	a.lock()
	for i := range a.cells {
		c := &a.cells[i]
		if c.start == 0 {
			continue
		}
		start := time.Unix(0, c.start)
		if start.Before(since) || start.After(now) {
			continue
		}
		if b := c.benches[name]; b != nil {
			merged.merge(b)
			found = true
		}
	}
	a.unlock()
	return summarize(merged), found
}

// ShapeQuantile returns the q-th solve-time quantile (ms) for one shape
// bucket over the trailing window, with the number of solved samples
// behind it — the slow-solve capture threshold.
func (a *Aggregator) ShapeQuantile(shape string, q float64, window time.Duration) (ms float64, samples int64) {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	now := a.now()
	since := now.Add(-window).Truncate(a.step)
	merged := NewSketch(a.alpha)
	a.lock()
	for i := range a.cells {
		c := &a.cells[i]
		if c.start == 0 {
			continue
		}
		start := time.Unix(0, c.start)
		if start.Before(since) || start.After(now) {
			continue
		}
		if b := c.shapes[shape]; b != nil {
			merged.Merge(b.elapsedMs)
		}
	}
	a.unlock()
	return merged.Quantile(q), merged.Count()
}

// SeriesPoint is one ring cell rendered for the dashboard sparklines.
type SeriesPoint struct {
	Start    time.Time `json:"start"`
	Jobs     int64     `json:"jobs"`
	Failures int64     `json:"failures"`
	P90Ms    float64   `json:"p90_ms"`
}

// Series returns one point per cell across the trailing window, oldest
// first, empty cells included as zeros — the dashboard's time axis.
func (a *Aggregator) Series(window time.Duration) []SeriesPoint {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	now := a.now()
	n := int(window / a.step)
	if n < 1 {
		n = 1
	}
	byStart := map[int64]*cell{}
	a.lock()
	for i := range a.cells {
		if a.cells[i].start != 0 {
			byStart[a.cells[i].start] = &a.cells[i]
		}
	}
	end := now.Truncate(a.step)
	out := make([]SeriesPoint, 0, n)
	for i := n - 1; i >= 0; i-- {
		start := end.Add(-time.Duration(i) * a.step)
		p := SeriesPoint{Start: start}
		if c := byStart[start.UnixNano()]; c != nil {
			p.Jobs = c.total.jobs
			p.Failures = c.total.failures
			p.P90Ms = c.total.elapsedMs.Quantile(0.90)
		}
		out = append(out, p)
	}
	a.unlock()
	return out
}

// ShapeHeat coarsens the trailing window into at most cols time slices
// and returns, per shape bucket seen in the window, the job count per
// slice — the dashboard heatmap's matrix. Row labels (shapes, sorted),
// column labels (slice start times, HH:MM), and vals[row][col] align.
func (a *Aggregator) ShapeHeat(window time.Duration, cols int) (shapes, colLabels []string, vals [][]float64) {
	if window <= 0 || window > a.Span() {
		window = a.Span()
	}
	if cols < 1 {
		cols = 1
	}
	cells := int(window / a.step)
	if cells < 1 {
		cells = 1
	}
	perCol := (cells + cols - 1) / cols
	nCols := (cells + perCol - 1) / perCol

	now := a.now()
	end := now.Truncate(a.step)
	byStart := map[int64]*cell{}
	a.lock()
	for i := range a.cells {
		if a.cells[i].start != 0 {
			byStart[a.cells[i].start] = &a.cells[i]
		}
	}
	counts := map[string][]float64{} // shape -> per-column jobs
	colLabels = make([]string, nCols)
	for col := 0; col < nCols; col++ {
		// Columns run oldest to newest; each spans perCol cells. A cell's
		// offset d counts steps back from the newest cell (d = 0).
		dLow := (nCols - 1 - col) * perCol
		dHigh := dLow + perCol - 1
		if dHigh > cells-1 {
			dHigh = cells - 1
		}
		colLabels[col] = end.Add(-time.Duration(dHigh) * a.step).Format("15:04")
		for d := dLow; d <= dHigh; d++ {
			c := byStart[end.Add(-time.Duration(d)*a.step).UnixNano()]
			if c == nil {
				continue
			}
			for shape, b := range c.shapes {
				if counts[shape] == nil {
					counts[shape] = make([]float64, nCols)
				}
				counts[shape][col] += float64(b.jobs)
			}
		}
	}
	a.unlock()

	shapes = make([]string, 0, len(counts))
	for s := range counts {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	vals = make([][]float64, len(shapes))
	for i, s := range shapes {
		vals[i] = counts[s]
	}
	return shapes, colLabels, vals
}

// ShapeNames returns the shape buckets seen in the trailing window,
// sorted for deterministic rendering.
func (a *Aggregator) ShapeNames(window time.Duration) []string {
	st := a.Stats(window)
	names := make([]string, 0, len(st.Shapes))
	for k := range st.Shapes {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
