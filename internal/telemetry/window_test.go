package telemetry

import (
	"testing"
	"time"
)

// fixedClock returns a controllable now() for the aggregator.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time { return c.t }

var testBase = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func solvedEvent(at time.Time, bench string, ops, contexts int, elapsedMs float64) *SolveEvent {
	return &SolveEvent{
		Time: at, Source: SourceServe, Bench: bench,
		Ops: ops, Contexts: contexts,
		Status: "done", ElapsedMs: elapsedMs, QueueWaitMs: 1,
		SimplexIters: int(elapsedMs) * 10, LPSolves: int(elapsedMs),
	}
}

func TestAggregatorWindowing(t *testing.T) {
	clock := &fixedClock{t: testBase}
	a := NewAggregator(time.Minute, 30, 0.02, clock.now)

	// One event per minute for the trailing 10 minutes.
	for i := 0; i < 10; i++ {
		a.Record(solvedEvent(testBase.Add(-time.Duration(i)*time.Minute), "B1", 20, 4, 100))
	}
	if st := a.Stats(a.Span()); st.Jobs != 10 {
		t.Fatalf("full-span jobs = %d, want 10", st.Jobs)
	}
	// A 5-minute window sees at most the 5-6 newest cells (the boundary
	// cell is included per the truncation rule), never all 10.
	st := a.Stats(5 * time.Minute)
	if st.Jobs < 5 || st.Jobs > 6 {
		t.Fatalf("5m-window jobs = %d, want 5..6", st.Jobs)
	}
	if st.Total.Solved != st.Jobs {
		t.Fatalf("solved = %d, want %d (all events are done)", st.Total.Solved, st.Jobs)
	}
	if st.Total.P50Ms < 90 || st.Total.P50Ms > 110 {
		t.Fatalf("p50 = %g, want ~100 within sketch error", st.Total.P50Ms)
	}

	// Events beyond the ring horizon are dropped: a 30-cell ring wraps a
	// 30-minute-old event onto the newest cell's slot, which is occupied
	// by a newer start and must win.
	before := a.Stats(a.Span()).Jobs
	a.Record(solvedEvent(testBase.Add(-30*time.Minute), "B1", 20, 4, 100))
	if after := a.Stats(a.Span()).Jobs; after != before {
		t.Fatalf("event older than the ring changed totals: %d -> %d", before, after)
	}
}

func TestAggregatorShapeAndBenchBreakdowns(t *testing.T) {
	clock := &fixedClock{t: testBase}
	a := NewAggregator(time.Minute, 60, 0.02, clock.now)

	for i := 0; i < 8; i++ {
		a.Record(solvedEvent(testBase, "B1", 20, 4, 50))   // ops<=32,ctx<=4
		a.Record(solvedEvent(testBase, "B7", 88, 16, 400)) // ops<=128,ctx<=16
	}
	// Failures and cache hits count toward jobs but not latency.
	fail := solvedEvent(testBase, "B1", 20, 4, 5)
	fail.Status = "failed"
	a.Record(fail)
	hit := solvedEvent(testBase, "B1", 20, 4, 0)
	hit.CacheHit = true
	a.Record(hit)

	st := a.Stats(10 * time.Minute)
	if st.Jobs != 18 {
		t.Fatalf("jobs = %d, want 18", st.Jobs)
	}
	small, ok := st.Shapes["ops<=32,ctx<=4"]
	if !ok {
		t.Fatalf("missing small shape bucket; have %v", st.Shapes)
	}
	if small.Jobs != 10 || small.Solved != 8 || small.Failures != 1 || small.CacheHits != 1 {
		t.Fatalf("small bucket %+v", small)
	}
	big := st.Shapes["ops<=128,ctx<=16"]
	if big.P50Ms < 390 || big.P50Ms > 410 {
		t.Fatalf("big-shape p50 = %g, want ~400", big.P50Ms)
	}
	b1, ok := a.BenchStats("B1", 10*time.Minute)
	if !ok || b1.Jobs != 10 {
		t.Fatalf("BenchStats B1: ok=%v %+v", ok, b1)
	}
	if _, ok := a.BenchStats("B99", 10*time.Minute); ok {
		t.Fatal("BenchStats for an unseen benchmark must report not-found")
	}

	ms, samples := a.ShapeQuantile("ops<=128,ctx<=16", 0.5, 10*time.Minute)
	if samples != 8 || ms < 390 || ms > 410 {
		t.Fatalf("ShapeQuantile = %g over %d samples, want ~400 over 8", ms, samples)
	}
}

func TestAggregatorSeriesAndHeat(t *testing.T) {
	clock := &fixedClock{t: testBase}
	a := NewAggregator(time.Minute, 60, 0.02, clock.now)
	for i := 0; i < 6; i++ {
		a.Record(solvedEvent(testBase.Add(-time.Duration(i)*time.Minute), "B1", 20, 4, 100))
	}

	series := a.Series(6 * time.Minute)
	if len(series) != 6 {
		t.Fatalf("series length %d, want 6", len(series))
	}
	var total int64
	for i, p := range series {
		if i > 0 && !p.Start.After(series[i-1].Start) {
			t.Fatal("series not in ascending time order")
		}
		total += p.Jobs
	}
	if total != 6 {
		t.Fatalf("series jobs sum %d, want 6", total)
	}

	shapes, cols, vals := a.ShapeHeat(6*time.Minute, 3)
	if len(shapes) != 1 || shapes[0] != "ops<=32,ctx<=4" {
		t.Fatalf("heat shapes %v", shapes)
	}
	if len(cols) > 3 || len(vals) != 1 || len(vals[0]) != len(cols) {
		t.Fatalf("heat dims: %d cols, vals %v", len(cols), vals)
	}
	sum := 0.0
	for _, v := range vals[0] {
		sum += v
	}
	if sum != 6 {
		t.Fatalf("heat jobs sum %g, want 6", sum)
	}
}

func TestTenantTrackerCapAndRollup(t *testing.T) {
	tr := NewTenantTracker(2)
	if got := tr.Label("a"); got != "a" {
		t.Fatalf("first identity = %q, want admitted", got)
	}
	if got := tr.Label("b"); got != "b" {
		t.Fatalf("second identity = %q, want admitted", got)
	}
	// Past the cap every new identity rolls up; admitted ones keep
	// resolving to themselves.
	for _, raw := range []string{"c", "d", "e"} {
		if got := tr.Label(raw); got != TenantOther {
			t.Fatalf("Label(%q) = %q, want %q", raw, got, TenantOther)
		}
	}
	if got := tr.Label("a"); got != "a" {
		t.Fatalf("admitted identity after overflow = %q, want a", got)
	}
	// Empty is the CLI's "no tenant" and passes through untouched; a nil
	// tracker is inert.
	if got := tr.Label(""); got != "" {
		t.Fatalf("Label(\"\") = %q, want empty", got)
	}
	var nilTr *TenantTracker
	if got := nilTr.Label("x"); got != "x" {
		t.Fatalf("nil tracker Label = %q, want passthrough", got)
	}
}

func TestAggregatorTenantBreakdown(t *testing.T) {
	clock := &fixedClock{t: testBase}
	a := NewAggregator(time.Minute, 10, 0.01, clock.now)
	a.tenants = NewTenantTracker(2)

	for i, tenant := range []string{"a", "a", "b", "c", "d"} {
		ev := solvedEvent(testBase.Add(-time.Duration(i)*time.Minute), "B1", 20, 4, 100)
		ev.Tenant = tenant
		a.Record(ev)
	}

	st := a.Stats(10 * time.Minute)
	if len(st.Tenants) != 3 {
		t.Fatalf("tenant buckets = %v, want a, b, other", st.Tenants)
	}
	if st.Tenants["a"].Jobs != 2 || st.Tenants["b"].Jobs != 1 || st.Tenants[TenantOther].Jobs != 2 {
		t.Fatalf("tenant jobs = %v, want a:2 b:1 other:2", st.Tenants)
	}

	// The single-tenant view matches the breakdown; an over-cap identity
	// reports empty under its own name (its traffic lives in "other").
	tw := a.TenantStats("a", 10*time.Minute)
	if tw == nil || tw.Summary.Jobs != 2 || tw.Summary.Solved != 2 {
		t.Fatalf("TenantStats(a) = %+v, want 2 jobs", tw)
	}
	if sum := a.TenantStats("c", 10*time.Minute).Summary; sum.Jobs != 0 {
		t.Fatalf("rolled-up tenant reports %d jobs under its own name, want 0", sum.Jobs)
	}
}
