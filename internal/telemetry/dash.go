package telemetry

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"

	"agingfp/internal/flight"
	"agingfp/internal/viz"
)

// Dashboard renders the operator view of the pipeline as one
// self-contained HTML document: no scripts, no external assets, inline
// SVG sparklines and a shape-over-time heatmap (internal/viz), stat
// tiles, and per-shape / per-benchmark tables. Colors ride CSS custom
// properties with a selected dark mode, so the page respects
// prefers-color-scheme without re-rendering.
//
// Everything the charts show is also in a table on the same page, so
// the view degrades to text (screen readers, curl) without loss.
//
// extra fragments are trusted pre-rendered HTML sections appended
// before </body> — the serve layer uses this for the SLO panel, which
// lives in internal/slo (telemetry cannot import it without a cycle).
func Dashboard(p *Pipeline, window time.Duration, service string, extra ...string) string {
	st := p.Stats(window)
	if st == nil {
		st = &WindowStats{Window: window.String()}
	}
	series := p.Series(window)
	shapes, cols, heat := []string(nil), []string(nil), [][]float64(nil)
	if p != nil {
		shapes, cols, heat = p.agg.ShapeHeat(window, 24)
	}

	jobsSeries := make([]float64, len(series))
	p90Series := make([]float64, len(series))
	for i, s := range series {
		jobsSeries[i] = float64(s.Jobs)
		p90Series[i] = s.P90Ms
	}

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>agingfloord telemetry</title>
<style>
  :root {
    color-scheme: light dark;
    --surface-1: #fcfcfb; --surface-2: #f0efec;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --series-1: #2a78d6;
    --seq-1:#cde2fb; --seq-2:#9ec5f4; --seq-3:#6da7ec; --seq-4:#3987e5;
    --seq-5:#256abf; --seq-6:#184f95; --seq-7:#0d366b;
    --status-good: #0ca30c; --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface-1: #1a1a19; --surface-2: #383835;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --series-1: #3987e5;
      --seq-1:#0d366b; --seq-2:#184f95; --seq-3:#256abf; --seq-4:#3987e5;
      --seq-5:#6da7ec; --seq-6:#9ec5f4; --seq-7:#cde2fb;
    }
  }
  body { background: var(--surface-1); color: var(--text-primary);
         font: 14px/1.45 system-ui, sans-serif; margin: 24px; }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
  h2 { font-size: 14px; font-weight: 600; margin: 28px 0 8px; }
  .sub { color: var(--text-secondary); margin-bottom: 20px; }
  .sub a { color: var(--series-1); }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
  .tile { background: var(--surface-2); border-radius: 8px; padding: 12px 16px; min-width: 130px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; }
  .tile .hero { font-size: 48px; font-weight: 600; }
  .tile .unit { font-size: 13px; color: var(--text-secondary); }
  table { border-collapse: collapse; margin-top: 4px; }
  th, td { text-align: right; padding: 4px 12px; font-variant-numeric: tabular-nums; }
  th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
  th:first-child, td:first-child { text-align: left; }
  tr + tr td { border-top: 1px solid var(--surface-2); }
  .drift-bad { color: var(--status-critical); font-weight: 600; }
  .drift-ok { color: var(--status-good); }
  .spark { display: inline-block; vertical-align: middle; }
  .note { color: var(--text-secondary); font-size: 12px; margin-top: 6px; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s solve telemetry</h1>\n", html.EscapeString(service))
	fmt.Fprintf(&b, `<div class="sub">window %s · step %s · %s — %s · windows: `,
		html.EscapeString(st.Window), html.EscapeString(st.Step),
		st.Since.Format("15:04:05"), st.Until.Format("15:04:05"))
	for i, w := range []string{"5m", "15m", "1h", "3h"} {
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(&b, `<a href="?window=%s">%s</a>`, w, w)
	}
	b.WriteString("</div>\n")

	// Stat tiles: the hero is the windowed median solve time — the
	// paper's headline quantity, checked continuously.
	b.WriteString(`<div class="tiles">` + "\n")
	fmt.Fprintf(&b, `<div class="tile"><div class="label">p50 solve</div><div class="hero">%s</div><div class="unit">p90 %s · p99 %s</div></div>`+"\n",
		fmtMs(st.Total.P50Ms), fmtMs(st.Total.P90Ms), fmtMs(st.Total.P99Ms))
	tile(&b, "jobs", fmt.Sprintf("%d", st.Jobs), fmt.Sprintf("%.1f/min", st.JobsPerMin))
	tile(&b, "solved", fmt.Sprintf("%d", st.Total.Solved), fmt.Sprintf("%d failed · %d canceled", st.Total.Failures, st.Total.Canceled))
	tile(&b, "cache hit rate", fmt.Sprintf("%.0f%%", 100*st.CacheHitRate), fmt.Sprintf("%d hits", st.Total.CacheHits))
	tile(&b, "queue wait p99", fmtMs(st.QueueWaitP99Ms), "p50 "+fmtMs(st.QueueWaitP50Ms))
	b.WriteString("</div>\n")

	b.WriteString("<h2>Throughput (jobs per step)</h2>\n")
	fmt.Fprintf(&b, `<span class="spark">%s</span>`+"\n", viz.SparklineSVG(jobsSeries, 640, 48))
	b.WriteString("<h2>p90 solve time per step</h2>\n")
	fmt.Fprintf(&b, `<span class="spark">%s</span>`+"\n", viz.SparklineSVG(p90Series, 640, 48))

	if len(shapes) > 0 {
		b.WriteString("<h2>Traffic by workload shape</h2>\n")
		b.WriteString(viz.HeatmapSVG(shapes, thinLabels(cols), heat) + "\n")
		b.WriteString(`<div class="note">cell = jobs per time slice; darker = more (sequential ramp)</div>` + "\n")
	}

	// Solver-kernel panel: rendered only when profiled jobs contributed
	// phase medians (the daemon runs with -kernel-profile).
	if len(st.Total.PhaseP50Ms) > 0 {
		labels := make([]string, 0, len(st.Total.PhaseP50Ms))
		vals := make([]float64, 0, len(st.Total.PhaseP50Ms))
		for _, name := range flight.PhaseOrder {
			if ms, ok := st.Total.PhaseP50Ms[name]; ok {
				labels = append(labels, name)
				vals = append(vals, ms)
			}
		}
		b.WriteString("<h2>Solver kernel: median phase time per job</h2>\n")
		b.WriteString(viz.BarsSVG(labels, vals, "ms") + "\n")
		b.WriteString("<table><tr><th>phase</th><th>p50 per job</th></tr>\n")
		for i, name := range labels {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>\n", html.EscapeString(name), fmtMs(vals[i]))
		}
		b.WriteString("</table>\n")
		b.WriteString(`<div class="note">extrapolated from sampled simplex iterations (see the flight journal's kernel section for counts and coverage)</div>` + "\n")
	}

	if len(st.Shapes) > 0 {
		b.WriteString("<h2>Shape buckets</h2>\n<table><tr><th>shape</th><th>jobs</th><th>solved</th><th>p50</th><th>p90</th><th>p99</th><th>max</th><th>iters p50</th></tr>\n")
		for _, name := range sortedSummaryKeys(st.Shapes) {
			s := st.Shapes[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.0f</td></tr>\n",
				html.EscapeString(name), s.Jobs, s.Solved, fmtMs(s.P50Ms), fmtMs(s.P90Ms), fmtMs(s.P99Ms), fmtMs(s.MaxMs), s.SimplexItersP50)
		}
		b.WriteString("</table>\n")
	}

	// Per-tenant accounting panel: who consumed the solver, and through
	// which cache tier. Solve-time totals are exact sketch sums, so the
	// bars add up to the aggregate.
	if len(st.Tenants) > 0 {
		names := sortedSummaryKeys(st.Tenants)
		vals := make([]float64, len(names))
		for i, name := range names {
			vals[i] = st.Tenants[name].SolveMsTotal
		}
		b.WriteString("<h2>Tenants: solve time consumed</h2>\n")
		b.WriteString(viz.BarsSVG(names, vals, "ms") + "\n")
		b.WriteString("<table><tr><th>tenant</th><th>jobs</th><th>solved</th><th>failed</th><th>solve total</th><th>iters total</th><th>cache hit</th><th>queue p90</th></tr>\n")
		for _, name := range names {
			s := st.Tenants[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%.0f</td><td>%.0f%%</td><td>%s</td></tr>\n",
				html.EscapeString(name), s.Jobs, s.Solved, s.Failures, fmtMs(s.SolveMsTotal), s.SimplexItersTotal, 100*s.CacheHitRate, fmtMs(s.QueueWaitP90Ms))
		}
		b.WriteString("</table>\n")
		b.WriteString(`<div class="note">identities past the tenant cap roll into "other"; totals are exact sums, so rows add up to the aggregate</div>` + "\n")
	}

	if len(st.Benchmarks) > 0 {
		b.WriteString("<h2>Benchmarks</h2>\n<table><tr><th>benchmark</th><th>jobs</th><th>p50</th><th>p99</th><th>iters p50</th><th>LP p50</th></tr>\n")
		for _, name := range sortedSummaryKeys(st.Benchmarks) {
			s := st.Benchmarks[name]
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%.0f</td><td>%.0f</td></tr>\n",
				html.EscapeString(name), s.Jobs, fmtMs(s.P50Ms), fmtMs(s.P99Ms), s.SimplexItersP50, s.LPSolvesP50)
		}
		b.WriteString("</table>\n")
	}

	if len(st.Drift) > 0 {
		b.WriteString("<h2>Baseline drift</h2>\n<table><tr><th>benchmark</th><th>metric</th><th>baseline</th><th>current p50</th><th>ratio</th><th>samples</th><th>status</th></tr>\n")
		for _, f := range st.Drift {
			cls, txt := "drift-ok", "✓ within gate"
			if f.Exceeded {
				cls, txt = "drift-bad", "⚠ drifted"
			}
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td>%.0f</td><td>%.0f</td><td>%.2f×</td><td>%d</td><td class="%s">%s</td></tr>`+"\n",
				html.EscapeString(f.Benchmark), html.EscapeString(f.Metric), f.Baseline, f.Current, f.Ratio, f.Samples, cls, txt)
		}
		b.WriteString("</table>\n")
		b.WriteString(`<div class="note">ratio = windowed p50 over BENCH_baseline.json; the gate factor mirrors CI's perf gate</div>` + "\n")
	}

	for _, frag := range extra {
		b.WriteString(frag)
	}

	b.WriteString("</body></html>\n")
	return b.String()
}

// tile writes one stat tile.
func tile(b *strings.Builder, label, value, unit string) {
	fmt.Fprintf(b, `<div class="tile"><div class="label">%s</div><div class="value">%s</div><div class="unit">%s</div></div>`+"\n",
		html.EscapeString(label), html.EscapeString(value), html.EscapeString(unit))
}

// fmtMs renders a millisecond quantity at a human scale.
func fmtMs(ms float64) string {
	switch {
	case ms <= 0:
		return "–"
	case ms < 1000:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
}

// thinLabels blanks all but every 4th column label so the heatmap axis
// stays readable at 24 columns.
func thinLabels(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		if i%4 == 0 || i == len(labels)-1 {
			out[i] = l
		}
	}
	return out
}

// sortedSummaryKeys sorts a summary map's keys for deterministic pages.
func sortedSummaryKeys(m map[string]BucketSummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
