package dfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddOpAndEdge(t *testing.T) {
	g := &Graph{}
	a := g.AddOp(ALU, "a")
	b := g.AddOp(DMU, "b")
	g.AddEdge(a, b)
	if g.NumOps() != 2 || len(g.Edges) != 1 {
		t.Fatalf("ops %d edges %d", g.NumOps(), len(g.Edges))
	}
	if got := g.Succs(a); len(got) != 1 || got[0] != b {
		t.Fatalf("Succs(a) = %v", got)
	}
	if got := g.Preds(b); len(got) != 1 || got[0] != a {
		t.Fatalf("Preds(b) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := &Graph{}
	g.AddOp(ALU, "a")
	g.AddEdge(0, 5)
}

func TestTopoOrderAndCycle(t *testing.T) {
	g := &Graph{}
	a := g.AddOp(ALU, "a")
	b := g.AddOp(ALU, "b")
	c := g.AddOp(ALU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[a] > pos[b] || pos[b] > pos[c] {
		t.Fatalf("bad order %v", order)
	}
	g.AddEdge(c, a) // cycle
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestValidateRejectsDuplicatesAndSelfLoops(t *testing.T) {
	g := &Graph{}
	a := g.AddOp(ALU, "a")
	b := g.AddOp(ALU, "b")
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if err := g.Validate(); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	g2 := &Graph{}
	x := g2.AddOp(ALU, "x")
	g2.Edges = append(g2.Edges, Edge{From: x, To: x})
	if err := g2.Validate(); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestLevels(t *testing.T) {
	g := FIR(4) // 4 muls + 3 adds (tree of depth 2)
	levels, n := g.Levels()
	if n != 3 {
		t.Fatalf("depth %d, want 3", n)
	}
	for _, in := range g.Inputs() {
		if levels[in] != 0 {
			t.Fatalf("input op %d at level %d", in, levels[in])
		}
	}
}

func TestInputsOutputs(t *testing.T) {
	g := FIR(8)
	if len(g.Inputs()) != 8 {
		t.Fatalf("inputs %d, want 8 taps", len(g.Inputs()))
	}
	if len(g.Outputs()) != 1 {
		t.Fatalf("outputs %d, want 1 accumulator root", len(g.Outputs()))
	}
}

func TestKernelsValid(t *testing.T) {
	for name, mk := range Kernels {
		g := mk()
		if err := g.Validate(); err != nil {
			t.Errorf("kernel %s invalid: %v", name, err)
		}
		if g.NumOps() == 0 {
			t.Errorf("kernel %s empty", name)
		}
	}
}

func TestFIRSizes(t *testing.T) {
	for _, taps := range []int{1, 2, 7, 16} {
		g := FIR(taps)
		wantMuls := taps
		st := g.Stat()
		if st.DMUOps != wantMuls {
			t.Errorf("FIR(%d): %d DMU ops, want %d", taps, st.DMUOps, wantMuls)
		}
		if taps > 1 && st.ALUOps != taps-1 {
			t.Errorf("FIR(%d): %d ALU ops, want %d (adder tree)", taps, st.ALUOps, taps-1)
		}
	}
}

func TestMatMulSize(t *testing.T) {
	g := MatMul(3)
	st := g.Stat()
	if st.DMUOps != 27 {
		t.Fatalf("MatMul(3): %d multiplies, want 27", st.DMUOps)
	}
	if st.Outputs != 9 {
		t.Fatalf("MatMul(3): %d outputs, want 9", st.Outputs)
	}
}

func TestReduceTreeDepth(t *testing.T) {
	g := ReduceTree(32)
	_, depth := g.Levels()
	if depth != 6 { // 32 leaves + log2(32) add levels
		t.Fatalf("depth %d, want 6", depth)
	}
}

func TestStatCounts(t *testing.T) {
	g := IIR(3)
	st := g.Stat()
	if st.Ops != g.NumOps() || st.ALUOps+st.DMUOps != st.Ops {
		t.Fatalf("inconsistent stats %+v", st)
	}
	if st.DMUOps != 15 { // 5 muls per section
		t.Fatalf("IIR(3): %d muls, want 15", st.DMUOps)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := FIR(4)
	c := g.Clone()
	c.AddOp(ALU, "extra")
	if g.NumOps() == c.NumOps() {
		t.Fatal("clone shares op slice")
	}
}

func TestLayeredGeneratorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := 5 + rng.Intn(80)
		depth := 1 + rng.Intn(ops)
		if depth > 12 {
			depth = 12
		}
		spec := DefaultLayeredSpec(ops, depth)
		g, err := NewLayered(rng, spec)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if g.NumOps() != ops {
			t.Logf("seed %d: ops %d != %d", seed, g.NumOps(), ops)
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: invalid: %v", seed, err)
			return false
		}
		_, gotDepth := g.Levels()
		if gotDepth != depth {
			t.Logf("seed %d: depth %d != %d", seed, gotDepth, depth)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredSpecErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []LayeredSpec{
		{Ops: 0, Depth: 1, MaxFanIn: 2},
		{Ops: 5, Depth: 0, MaxFanIn: 2},
		{Ops: 5, Depth: 6, MaxFanIn: 2},
		{Ops: 5, Depth: 2, MaxFanIn: 0},
		{Ops: 5, Depth: 2, MaxFanIn: 2, DMUFrac: 1.5},
	}
	for i, spec := range cases {
		if _, err := NewLayered(rng, spec); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, spec)
		}
	}
}

func TestSortedEdgesDeterministic(t *testing.T) {
	g := &Graph{}
	a := g.AddOp(ALU, "a")
	b := g.AddOp(ALU, "b")
	c := g.AddOp(ALU, "c")
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	g.AddEdge(a, b)
	es := g.SortedEdges()
	if es[0] != (Edge{a, b}) || es[1] != (Edge{a, c}) || es[2] != (Edge{b, c}) {
		t.Fatalf("bad order: %v", es)
	}
}
