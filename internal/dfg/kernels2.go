package dfg

import "fmt"

// Additional arithmetic kernels: CORDIC rotators, bitonic sorting
// networks, Horner-scheme polynomial evaluation, and a complex MAC —
// workload shapes common in the CGRRA application domain (DSP and
// communications), with different chain-depth and DMU-density profiles
// than the filter kernels.

// CORDIC builds n iterations of the CORDIC rotation: each iteration is
// two shifts (DMU), two add/subs (ALU), and an angle-accumulator add,
// with serial dependencies between iterations — the deepest chains of
// any built-in kernel.
func CORDIC(iters int) *Graph {
	if iters < 1 {
		panic("dfg: CORDIC needs iters >= 1")
	}
	g := &Graph{}
	var px, py, pz int = -1, -1, -1
	for i := 0; i < iters; i++ {
		shx := g.AddOp(DMU, fmt.Sprintf("i%d_shx", i))
		shy := g.AddOp(DMU, fmt.Sprintf("i%d_shy", i))
		if px >= 0 {
			g.AddEdge(px, shx)
			g.AddEdge(py, shy)
		}
		nx := g.AddOp(ALU, fmt.Sprintf("i%d_x", i))
		ny := g.AddOp(ALU, fmt.Sprintf("i%d_y", i))
		g.AddEdge(shy, nx)
		g.AddEdge(shx, ny)
		if px >= 0 {
			g.AddEdge(px, nx)
			g.AddEdge(py, ny)
		}
		nz := g.AddOp(ALU, fmt.Sprintf("i%d_z", i))
		if pz >= 0 {
			g.AddEdge(pz, nz)
		}
		px, py, pz = nx, ny, nz
	}
	return g
}

// Bitonic builds a bitonic sorting network over n inputs (n must be a
// power of two): each compare-exchange is one ALU comparator feeding two
// ALU selects.
func Bitonic(n int) *Graph {
	if n < 2 || n&(n-1) != 0 {
		panic("dfg: Bitonic needs a power-of-two size >= 2")
	}
	g := &Graph{}
	// wire[i] is the op currently producing lane i (-1 = primary input).
	wire := make([]int, n)
	for i := range wire {
		wire[i] = -1
	}
	ce := func(i, j int) {
		cmp := g.AddOp(ALU, fmt.Sprintf("cmp_%d_%d", i, j))
		if wire[i] >= 0 {
			g.AddEdge(wire[i], cmp)
		}
		if wire[j] >= 0 && wire[j] != wire[i] {
			g.AddEdge(wire[j], cmp)
		}
		lo := g.AddOp(ALU, fmt.Sprintf("lo_%d_%d", i, j))
		hi := g.AddOp(ALU, fmt.Sprintf("hi_%d_%d", i, j))
		g.AddEdge(cmp, lo)
		g.AddEdge(cmp, hi)
		wire[i], wire[j] = lo, hi
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					if i&k == 0 {
						ce(i, l)
					} else {
						ce(l, i)
					}
				}
			}
		}
	}
	return g
}

// Horner evaluates a degree-n polynomial by Horner's scheme: a strictly
// serial multiply-add chain (n DMU + n ALU ops), the worst case for
// chaining and the best case for stress concentration.
func Horner(degree int) *Graph {
	if degree < 1 {
		panic("dfg: Horner needs degree >= 1")
	}
	g := &Graph{}
	prev := -1
	for i := 0; i < degree; i++ {
		mul := g.AddOp(DMU, fmt.Sprintf("h%d_mul", i))
		if prev >= 0 {
			g.AddEdge(prev, mul)
		}
		add := g.AddOp(ALU, fmt.Sprintf("h%d_add", i))
		g.AddEdge(mul, add)
		prev = add
	}
	return g
}

// ComplexMAC builds n complex multiply-accumulates: each is 4 real
// multiplies, an add and a subtract, plus 2 accumulator adds.
func ComplexMAC(n int) *Graph {
	if n < 1 {
		panic("dfg: ComplexMAC needs n >= 1")
	}
	g := &Graph{}
	accR, accI := -1, -1
	for i := 0; i < n; i++ {
		rr := g.AddOp(DMU, fmt.Sprintf("m%d_rr", i))
		ii := g.AddOp(DMU, fmt.Sprintf("m%d_ii", i))
		ri := g.AddOp(DMU, fmt.Sprintf("m%d_ri", i))
		ir := g.AddOp(DMU, fmt.Sprintf("m%d_ir", i))
		re := g.AddOp(ALU, fmt.Sprintf("m%d_re", i))
		g.AddEdge(rr, re)
		g.AddEdge(ii, re)
		im := g.AddOp(ALU, fmt.Sprintf("m%d_im", i))
		g.AddEdge(ri, im)
		g.AddEdge(ir, im)
		nr := g.AddOp(ALU, fmt.Sprintf("m%d_accr", i))
		g.AddEdge(re, nr)
		if accR >= 0 {
			g.AddEdge(accR, nr)
		}
		ni := g.AddOp(ALU, fmt.Sprintf("m%d_acci", i))
		g.AddEdge(im, ni)
		if accI >= 0 {
			g.AddEdge(accI, ni)
		}
		accR, accI = nr, ni
	}
	return g
}

func init() {
	Kernels["cordic8"] = func() *Graph { return CORDIC(8) }
	Kernels["bitonic8"] = func() *Graph { return Bitonic(8) }
	Kernels["horner8"] = func() *Graph { return Horner(8) }
	Kernels["cmac4"] = func() *Graph { return ComplexMAC(4) }
}
