package dfg

import "fmt"

// This file provides named arithmetic kernels of the kind the paper's C
// benchmarks compile to: filters, transforms, and stencils. Each generator
// returns a pure (unscheduled) data-flow graph; the HLS scheduler in
// internal/hls folds it into contexts.
//
// Multiplications map to the DMU (slow unit); additions, subtractions and
// comparisons map to the ALU (fast unit), following the PE
// characterization quoted in §III of the paper.

// FIR builds an n-tap finite-impulse-response filter: n coefficient
// multiplies feeding a balanced adder tree.
func FIR(taps int) *Graph {
	if taps < 1 {
		panic("dfg: FIR needs at least 1 tap")
	}
	g := &Graph{}
	prods := make([]int, taps)
	for i := range prods {
		prods[i] = g.AddOp(DMU, fmt.Sprintf("mul_t%d", i))
	}
	reduceTree(g, prods, "acc")
	return g
}

// IIR builds a biquad-cascade infinite-impulse-response filter with the
// given number of second-order sections. Each section is 5 multiplies and
// 4 adds with a serial dependency between sections (the feedback chain),
// which produces the long mixed ALU/DMU chains that stress the timing
// constraints.
func IIR(sections int) *Graph {
	if sections < 1 {
		panic("dfg: IIR needs at least 1 section")
	}
	g := &Graph{}
	prev := -1
	for s := 0; s < sections; s++ {
		m := make([]int, 5)
		for i := range m {
			m[i] = g.AddOp(DMU, fmt.Sprintf("s%d_mul%d", s, i))
			if prev >= 0 && i < 2 {
				// Feed-forward from the previous section's output.
				g.AddEdge(prev, m[i])
			}
		}
		a1 := g.AddOp(ALU, fmt.Sprintf("s%d_add1", s))
		g.AddEdge(m[0], a1)
		g.AddEdge(m[1], a1)
		a2 := g.AddOp(ALU, fmt.Sprintf("s%d_add2", s))
		g.AddEdge(m[2], a2)
		g.AddEdge(m[3], a2)
		a3 := g.AddOp(ALU, fmt.Sprintf("s%d_add3", s))
		g.AddEdge(a1, a3)
		g.AddEdge(a2, a3)
		out := g.AddOp(ALU, fmt.Sprintf("s%d_out", s))
		g.AddEdge(a3, out)
		g.AddEdge(m[4], out)
		prev = out
	}
	return g
}

// MatMul builds an n x n by n x n matrix multiply: n*n dot products of
// length n (n*n*n multiplies, each dot product reduced by an adder tree).
func MatMul(n int) *Graph {
	if n < 1 {
		panic("dfg: MatMul needs n >= 1")
	}
	g := &Graph{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prods := make([]int, n)
			for k := 0; k < n; k++ {
				prods[k] = g.AddOp(DMU, fmt.Sprintf("m_%d_%d_%d", i, j, k))
			}
			reduceTree(g, prods, fmt.Sprintf("c_%d_%d", i, j))
		}
	}
	return g
}

// DCT8 builds an 8-point one-dimensional DCT butterfly network (the
// Loeffler-style structure: stages of add/sub butterflies with rotator
// multiplies between them).
func DCT8() *Graph {
	g := &Graph{}
	// Stage 1: 4 butterflies on the 8 inputs.
	in := make([]int, 8)
	for i := range in {
		in[i] = g.AddOp(ALU, fmt.Sprintf("in%d", i))
	}
	add := func(a, b int, name string) int {
		v := g.AddOp(ALU, name)
		g.AddEdge(a, v)
		g.AddEdge(b, v)
		return v
	}
	mul := func(a int, name string) int {
		v := g.AddOp(DMU, name)
		g.AddEdge(a, v)
		return v
	}
	// Butterfly stage 1.
	s1 := make([]int, 8)
	for i := 0; i < 4; i++ {
		s1[i] = add(in[i], in[7-i], fmt.Sprintf("s1a%d", i))
		s1[7-i] = add(in[i], in[7-i], fmt.Sprintf("s1s%d", i))
	}
	// Stage 2: even half butterflies, odd half rotators.
	s2 := make([]int, 8)
	s2[0] = add(s1[0], s1[3], "s2a0")
	s2[3] = add(s1[0], s1[3], "s2s0")
	s2[1] = add(s1[1], s1[2], "s2a1")
	s2[2] = add(s1[1], s1[2], "s2s1")
	for i := 4; i < 8; i++ {
		s2[i] = mul(s1[i], fmt.Sprintf("rot%d", i))
	}
	// Stage 3: final outputs.
	add(s2[0], s2[1], "X0")
	add(s2[0], s2[1], "X4")
	x2 := mul(s2[2], "c2")
	x6 := mul(s2[3], "c6")
	add(x2, s2[3], "X2")
	add(x6, s2[2], "X6")
	o1 := add(s2[4], s2[6], "o1")
	o2 := add(s2[5], s2[7], "o2")
	mul(o1, "X1")
	mul(o2, "X7")
	add(o1, s2[5], "X5")
	add(o2, s2[4], "X3")
	return g
}

// Conv3x3 builds a 3x3 convolution (e.g. a Sobel or Gaussian window) over
// a tile of the given width and height: one 9-tap multiply-accumulate per
// output pixel.
func Conv3x3(w, h int) *Graph {
	if w < 1 || h < 1 {
		panic("dfg: Conv3x3 needs positive tile size")
	}
	g := &Graph{}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			prods := make([]int, 9)
			for t := range prods {
				prods[t] = g.AddOp(DMU, fmt.Sprintf("p%d_%d_%d", x, y, t))
			}
			reduceTree(g, prods, fmt.Sprintf("px%d_%d", x, y))
		}
	}
	return g
}

// FFTStage builds one radix-2 butterfly stage over n points (n must be a
// positive even number): n/2 butterflies, each a twiddle multiply plus an
// add and a subtract.
func FFTStage(n int) *Graph {
	if n < 2 || n%2 != 0 {
		panic("dfg: FFTStage needs positive even n")
	}
	g := &Graph{}
	for i := 0; i < n/2; i++ {
		a := g.AddOp(ALU, fmt.Sprintf("ld_a%d", i))
		b := g.AddOp(ALU, fmt.Sprintf("ld_b%d", i))
		tw := g.AddOp(DMU, fmt.Sprintf("tw%d", i))
		g.AddEdge(b, tw)
		sum := g.AddOp(ALU, fmt.Sprintf("bf_add%d", i))
		g.AddEdge(a, sum)
		g.AddEdge(tw, sum)
		diff := g.AddOp(ALU, fmt.Sprintf("bf_sub%d", i))
		g.AddEdge(a, diff)
		g.AddEdge(tw, diff)
	}
	return g
}

// ReduceTree builds a balanced binary adder tree over n leaf values.
func ReduceTree(n int) *Graph {
	if n < 1 {
		panic("dfg: ReduceTree needs n >= 1")
	}
	g := &Graph{}
	leaves := make([]int, n)
	for i := range leaves {
		leaves[i] = g.AddOp(ALU, fmt.Sprintf("leaf%d", i))
	}
	if n > 1 {
		reduceTree(g, leaves, "sum")
	}
	return g
}

// reduceTree adds a balanced binary ALU adder tree over the given nodes
// and returns the root op ID.
func reduceTree(g *Graph, nodes []int, prefix string) int {
	level := 0
	cur := append([]int(nil), nodes...)
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			v := g.AddOp(ALU, fmt.Sprintf("%s_l%d_%d", prefix, level, i/2))
			g.AddEdge(cur[i], v)
			g.AddEdge(cur[i+1], v)
			next = append(next, v)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
		level++
	}
	return cur[0]
}

// Kernels maps kernel names to parameterless constructors of
// representative instances; used by CLI tools and the benchmark suite.
var Kernels = map[string]func() *Graph{
	"fir16":    func() *Graph { return FIR(16) },
	"fir32":    func() *Graph { return FIR(32) },
	"iir4":     func() *Graph { return IIR(4) },
	"iir8":     func() *Graph { return IIR(8) },
	"matmul3":  func() *Graph { return MatMul(3) },
	"matmul4":  func() *Graph { return MatMul(4) },
	"dct8":     DCT8,
	"conv3x3":  func() *Graph { return Conv3x3(3, 3) },
	"fft16":    func() *Graph { return FFTStage(16) },
	"reduce32": func() *Graph { return ReduceTree(32) },
}
