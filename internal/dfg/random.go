package dfg

import (
	"fmt"
	"math/rand"
)

// LayeredSpec parameterizes the random layered-DAG generator. The
// generator is the workhorse behind the synthetic Table-I benchmark suite:
// it produces DAGs with a controlled op count, depth, fan-in profile, and
// ALU/DMU mix, which are the only structural properties the re-mapping
// flow is sensitive to.
type LayeredSpec struct {
	// Ops is the total number of operations (must be >= 1).
	Ops int
	// Depth is the number of layers (must be >= 1 and <= Ops).
	Depth int
	// DMUFrac is the fraction of DMU (slow) operations in (0,1).
	DMUFrac float64
	// MaxFanIn bounds the number of predecessors per op (>= 1);
	// typical arithmetic DFGs have fan-in 2.
	MaxFanIn int
	// LocalityBias in [0,1] is the probability that a predecessor is
	// drawn from the immediately previous layer rather than any earlier
	// layer. High bias yields chain-heavy graphs (long timing paths).
	LocalityBias float64
}

// DefaultLayeredSpec returns a spec resembling the mid-size paper
// benchmarks: fan-in-2 arithmetic with roughly a third slow ops.
func DefaultLayeredSpec(ops, depth int) LayeredSpec {
	return LayeredSpec{
		Ops:          ops,
		Depth:        depth,
		DMUFrac:      0.35,
		MaxFanIn:     2,
		LocalityBias: 0.8,
	}
}

// NewLayered generates a random layered DAG according to spec, using rng
// for all randomness (the caller controls determinism via the seed).
//
// Layer sizes are balanced with ±50% jitter. Every op in layer l > 0 has
// at least one predecessor in an earlier layer, so the graph's ASAP depth
// equals the requested Depth.
func NewLayered(rng *rand.Rand, spec LayeredSpec) (*Graph, error) {
	if spec.Ops < 1 {
		return nil, fmt.Errorf("dfg: LayeredSpec.Ops = %d, need >= 1", spec.Ops)
	}
	if spec.Depth < 1 || spec.Depth > spec.Ops {
		return nil, fmt.Errorf("dfg: LayeredSpec.Depth = %d, need 1..Ops(%d)", spec.Depth, spec.Ops)
	}
	if spec.MaxFanIn < 1 {
		return nil, fmt.Errorf("dfg: LayeredSpec.MaxFanIn = %d, need >= 1", spec.MaxFanIn)
	}
	if spec.DMUFrac < 0 || spec.DMUFrac > 1 {
		return nil, fmt.Errorf("dfg: LayeredSpec.DMUFrac = %g, need [0,1]", spec.DMUFrac)
	}

	// Partition ops into layers: one op minimum per layer, remainder
	// distributed with jitter.
	sizes := make([]int, spec.Depth)
	for i := range sizes {
		sizes[i] = 1
	}
	remaining := spec.Ops - spec.Depth
	for remaining > 0 {
		l := rng.Intn(spec.Depth)
		sizes[l]++
		remaining--
	}

	g := &Graph{}
	layers := make([][]int, spec.Depth)
	for l := 0; l < spec.Depth; l++ {
		layers[l] = make([]int, sizes[l])
		for i := range layers[l] {
			kind := ALU
			name := "add"
			if rng.Float64() < spec.DMUFrac {
				kind = DMU
				name = "mul"
			}
			layers[l][i] = g.AddOp(kind, fmt.Sprintf("%s_l%d_%d", name, l, i))
		}
	}

	// Wire predecessors. Every op gets at least one predecessor from the
	// immediately previous layer, which pins the graph's ASAP depth to
	// exactly spec.Depth.
	for l := 1; l < spec.Depth; l++ {
		for _, v := range layers[l] {
			used := map[int]bool{}
			first := layers[l-1][rng.Intn(len(layers[l-1]))]
			used[first] = true
			g.AddEdge(first, v)
			extra := rng.Intn(spec.MaxFanIn)
			for f := 0; f < extra; f++ {
				srcLayer := l - 1
				if rng.Float64() > spec.LocalityBias && l > 1 {
					srcLayer = rng.Intn(l)
				}
				src := layers[srcLayer][rng.Intn(len(layers[srcLayer]))]
				if used[src] {
					continue
				}
				used[src] = true
				g.AddEdge(src, v)
			}
		}
	}
	return g, nil
}

// MustNewLayered is NewLayered but panics on spec errors; intended for
// tests and generators with compile-time-known specs.
func MustNewLayered(rng *rand.Rand, spec LayeredSpec) *Graph {
	g, err := NewLayered(rng, spec)
	if err != nil {
		panic(err)
	}
	return g
}
