package dfg

import "testing"

func TestCORDICShape(t *testing.T) {
	g := CORDIC(6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stat()
	if st.DMUOps != 12 { // 2 shifts per iteration
		t.Fatalf("%d shifts, want 12", st.DMUOps)
	}
	if st.ALUOps != 18 { // x, y, z updates per iteration
		t.Fatalf("%d ALU ops, want 18", st.ALUOps)
	}
	// Serial structure: depth grows with iterations.
	_, depth := g.Levels()
	if depth < 11 {
		t.Fatalf("depth %d too shallow for a serial CORDIC", depth)
	}
}

func TestBitonicShape(t *testing.T) {
	g := Bitonic(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// A bitonic network over 8 lanes has 24 compare-exchanges; each is 3 ops.
	if g.NumOps() != 24*3 {
		t.Fatalf("%d ops, want 72", g.NumOps())
	}
	if g.Stat().DMUOps != 0 {
		t.Fatal("comparators must be ALU-only")
	}
}

func TestBitonicRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bitonic(6)
}

func TestHornerIsSerial(t *testing.T) {
	g := Horner(5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 10 {
		t.Fatalf("%d ops, want 10", g.NumOps())
	}
	_, depth := g.Levels()
	if depth != 10 {
		t.Fatalf("depth %d, want a fully serial 10", depth)
	}
	if len(g.Outputs()) != 1 {
		t.Fatalf("%d outputs", len(g.Outputs()))
	}
}

func TestComplexMACShape(t *testing.T) {
	g := ComplexMAC(3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stat()
	if st.DMUOps != 12 { // 4 multiplies per element
		t.Fatalf("%d multiplies, want 12", st.DMUOps)
	}
	if st.ALUOps != 12 { // re, im, 2 accumulates per element
		t.Fatalf("%d adds, want 12", st.ALUOps)
	}
	if len(g.Outputs()) != 2 { // final accR, accI
		t.Fatalf("%d outputs, want 2", len(g.Outputs()))
	}
}

func TestNewKernelsRegistered(t *testing.T) {
	for _, name := range []string{"cordic8", "bitonic8", "horner8", "cmac4"} {
		mk, ok := Kernels[name]
		if !ok {
			t.Errorf("kernel %s not registered", name)
			continue
		}
		if err := mk().Validate(); err != nil {
			t.Errorf("kernel %s invalid: %v", name, err)
		}
	}
}
