// Package dfg defines the data-flow graph (DFG) representation consumed by
// the CGRRA mapping flow, together with generators for named arithmetic
// kernels and random layered DAGs.
//
// A DFG is the output of the high-level-synthesis front end: a DAG of
// operations, each executed by one processing element (PE) of the CGRRA.
// Operations are typed by the PE sub-unit that executes them: the ALU
// (arithmetic/logic) or the DMU (data manipulation: shifts, multiplexing,
// packing). The two units have very different delays (0.87 ns vs 3.14 ns in
// the reference technology characterization), which is what makes stress
// rates operation-dependent.
package dfg

import (
	"fmt"
	"sort"
)

// OpKind identifies which PE sub-unit executes an operation.
type OpKind int

const (
	// ALU operations: add, sub, compare, bitwise logic.
	ALU OpKind = iota
	// DMU operations: multiply, shift networks, data manipulation.
	DMU
)

// String returns the conventional short name of the kind.
func (k OpKind) String() string {
	switch k {
	case ALU:
		return "ALU"
	case DMU:
		return "DMU"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is a single operation in the data-flow graph.
type Op struct {
	// ID is the operation's index in Graph.Ops.
	ID int
	// Kind selects the executing PE sub-unit (and hence the delay and
	// stress rate).
	Kind OpKind
	// Name is a human-readable mnemonic ("add", "mul", ...). It has no
	// semantic effect on the flow.
	Name string
}

// Edge is a data dependency: the result of From feeds an input of To.
type Edge struct {
	From, To int
}

// Graph is a data-flow graph: a DAG of typed operations.
//
// The zero value is an empty graph ready for use via AddOp/AddEdge.
type Graph struct {
	Ops   []Op
	Edges []Edge

	// succ/pred adjacency, rebuilt lazily by ensureAdj.
	succ, pred [][]int
	adjValid   bool
}

// AddOp appends an operation and returns its ID.
func (g *Graph) AddOp(kind OpKind, name string) int {
	id := len(g.Ops)
	g.Ops = append(g.Ops, Op{ID: id, Kind: kind, Name: name})
	g.adjValid = false
	return id
}

// AddEdge records a dependency from -> to. It panics if either endpoint is
// out of range; graph construction errors are programming errors, not
// runtime conditions.
func (g *Graph) AddEdge(from, to int) {
	if from < 0 || from >= len(g.Ops) || to < 0 || to >= len(g.Ops) {
		panic(fmt.Sprintf("dfg: edge (%d,%d) out of range [0,%d)", from, to, len(g.Ops)))
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to})
	g.adjValid = false
}

func (g *Graph) ensureAdj() {
	if g.adjValid {
		return
	}
	n := len(g.Ops)
	g.succ = make([][]int, n)
	g.pred = make([][]int, n)
	for _, e := range g.Edges {
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	g.adjValid = true
}

// Succs returns the successor op IDs of op (ops consuming its result).
// The returned slice is shared; callers must not modify it.
func (g *Graph) Succs(op int) []int {
	g.ensureAdj()
	return g.succ[op]
}

// Preds returns the predecessor op IDs of op (its operand producers).
// The returned slice is shared; callers must not modify it.
func (g *Graph) Preds(op int) []int {
	g.ensureAdj()
	return g.pred[op]
}

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.Ops) }

// Inputs returns the IDs of primary-input operations (in-degree zero),
// in ascending order.
func (g *Graph) Inputs() []int {
	g.ensureAdj()
	var in []int
	for i := range g.Ops {
		if len(g.pred[i]) == 0 {
			in = append(in, i)
		}
	}
	return in
}

// Outputs returns the IDs of primary-output operations (out-degree zero),
// in ascending order.
func (g *Graph) Outputs() []int {
	g.ensureAdj()
	var out []int
	for i := range g.Ops {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TopoOrder returns a topological ordering of the op IDs, or an error if
// the graph contains a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	g.ensureAdj()
	n := len(g.Ops)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dfg: graph contains a cycle (%d of %d ops ordered)", len(order), n)
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints in range, no
// self-loops, no duplicate edges, acyclicity, and consistent op IDs.
func (g *Graph) Validate() error {
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("dfg: op at index %d has ID %d", i, op.ID)
		}
		if op.Kind != ALU && op.Kind != DMU {
			return fmt.Errorf("dfg: op %d has invalid kind %d", i, int(op.Kind))
		}
	}
	seen := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Ops) || e.To < 0 || e.To >= len(g.Ops) {
			return fmt.Errorf("dfg: edge (%d,%d) out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("dfg: self-loop on op %d", e.From)
		}
		if seen[e] {
			return fmt.Errorf("dfg: duplicate edge (%d,%d)", e.From, e.To)
		}
		seen[e] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Levels assigns each op its ASAP level: 0 for primary inputs, and
// 1 + max(pred levels) otherwise. It returns the per-op levels and the
// total number of levels. It panics on cyclic graphs; call Validate first
// on untrusted input.
func (g *Graph) Levels() (levels []int, numLevels int) {
	order, err := g.TopoOrder()
	if err != nil {
		panic("dfg: Levels on cyclic graph: " + err.Error())
	}
	levels = make([]int, len(g.Ops))
	for _, v := range order {
		lv := 0
		for _, p := range g.Preds(v) {
			if levels[p]+1 > lv {
				lv = levels[p] + 1
			}
		}
		levels[v] = lv
		if lv+1 > numLevels {
			numLevels = lv + 1
		}
	}
	return levels, numLevels
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Ops, Edges, ALUOps, DMUOps int
	Inputs, Outputs            int
	Depth                      int // number of ASAP levels
}

// Stat computes summary statistics.
func (g *Graph) Stat() Stats {
	s := Stats{Ops: len(g.Ops), Edges: len(g.Edges)}
	for _, op := range g.Ops {
		if op.Kind == ALU {
			s.ALUOps++
		} else {
			s.DMUOps++
		}
	}
	s.Inputs = len(g.Inputs())
	s.Outputs = len(g.Outputs())
	if len(g.Ops) > 0 {
		_, s.Depth = g.Levels()
	}
	return s
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Ops:   append([]Op(nil), g.Ops...),
		Edges: append([]Edge(nil), g.Edges...),
	}
	return c
}

// SortedEdges returns the edges sorted by (From, To); useful for
// deterministic serialization and test comparisons.
func (g *Graph) SortedEdges() []Edge {
	es := append([]Edge(nil), g.Edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}
