package bench

import (
	"context"
	"fmt"
	"strings"

	"agingfp/internal/core"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// BudgetAblation is E8: the paper constrains every path to the ORIGINAL
// floorplan's CPD; on a synchronous CGRRA, however, any CPD within the
// clock period has identical performance. Relaxing the budget to the
// clock period frees wire slack (and unfreezes critical paths whose
// delay is below the clock), increasing MTTF gains at zero real cost.
type BudgetAblation struct {
	Spec Spec
	// OrigCPD and the clock period bound the two budgets.
	OrigCPD, ClockNs float64
	// PaperBudget* uses budget = original CPD (the paper's rule).
	PaperBudgetIncrease, PaperBudgetCPD float64
	// ClockBudget* uses budget = clock period (extension E8).
	ClockBudgetIncrease, ClockBudgetCPD float64
}

// RunBudgetAblation evaluates E8 for one spec.
func RunBudgetAblation(ctx context.Context, spec Spec, cfg Config) (*BudgetAblation, error) {
	if cfg.Model.A == 0 {
		cfg.Model = nbti.DefaultModel()
	}
	if cfg.Thermal.RVertical == 0 {
		cfg.Thermal = thermal.DefaultConfig()
	}
	if cfg.Remap.PathThresholdFrac == 0 {
		cfg.Remap = core.DefaultOptions()
	}
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res0 := timing.Analyze(d, m0)

	out := &BudgetAblation{Spec: spec, OrigCPD: res0.CPD, ClockNs: d.ClockPeriodNs}
	for _, relaxed := range []bool{false, true} {
		opts := cfg.Remap
		opts.Seed = spec.Seed
		if relaxed {
			opts.CPDBudgetNs = d.ClockPeriodNs
		}
		r, err := core.Remap(ctx, d, m0, opts)
		if err != nil {
			return nil, err
		}
		ratio, err := core.MTTFIncrease(d, m0, r.Mapping, cfg.Model, cfg.Thermal)
		if err != nil {
			return nil, err
		}
		if relaxed {
			out.ClockBudgetIncrease, out.ClockBudgetCPD = ratio, r.NewCPD
		} else {
			out.PaperBudgetIncrease, out.PaperBudgetCPD = ratio, r.NewCPD
		}
	}
	return out, nil
}

// FormatBudgetAblation renders E8.
func FormatBudgetAblation(rows []*BudgetAblation) string {
	var b strings.Builder
	b.WriteString("E8 — delay-budget ablation: original CPD (paper) vs clock period\n")
	b.WriteString("bench  origCPD clock |  CPD-budget: incr  newCPD | clock-budget: incr  newCPD\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s  %6.3f %5.1f |        %9.2fx  %6.3f |       %9.2fx  %6.3f\n",
			r.Spec.Name, r.OrigCPD, r.ClockNs,
			r.PaperBudgetIncrease, r.PaperBudgetCPD,
			r.ClockBudgetIncrease, r.ClockBudgetCPD)
	}
	b.WriteString("(the clock-budget CPD may exceed the original CPD but never the clock,\n")
	b.WriteString(" so the design's synchronous performance is identical)\n")
	return b.String()
}
