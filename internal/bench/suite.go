// Package bench defines the synthetic equivalents of the paper's 27
// benchmark circuits (Table I) and the experiment harness that
// regenerates the paper's tables and figures.
//
// The paper characterizes each benchmark only by its context count, CGRRA
// fabric size, total PE usage ("PE #": operation instances summed over
// contexts) and the resulting fabric usage band (low / medium / high).
// The generator reproduces those parameters exactly with seeded random
// multi-context workloads whose per-context chain structure matches the
// PE characterization (mixed 0.87 ns ALU and 3.14 ns DMU chains that fit
// a 200 MHz clock with operator chaining).
package bench

import (
	"fmt"
	"math/rand"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

// Band is the fabric usage classification of Table I.
type Band int

// Usage bands.
const (
	Low Band = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// Spec describes one Table-I benchmark.
type Spec struct {
	// Name is the paper's benchmark id (B1..B27).
	Name string
	// Contexts is the context count (= design latency in cycles).
	Contexts int
	// Fabric is the PE array.
	Fabric arch.Fabric
	// TotalOps is the "PE #" column: operation instances summed over all
	// contexts.
	TotalOps int
	// Band is the fabric usage band.
	Band Band
	// PaperFreeze and PaperRotate are the MTTF increases Table I reports
	// for the Freeze and Rotate variants.
	PaperFreeze, PaperRotate float64
	// Seed drives the workload generator.
	Seed int64
}

// Utilization returns the average per-context fabric usage rate.
func (s Spec) Utilization() float64 {
	return float64(s.TotalOps) / float64(s.Contexts*s.Fabric.NumPEs())
}

// sq is shorthand for a square fabric.
func sq(n int) arch.Fabric { return arch.Fabric{W: n, H: n} }

// TableI is the full 27-benchmark suite with the paper's published
// parameters and results.
var TableI = []Spec{
	{Name: "B1", Contexts: 4, Fabric: sq(4), TotalOps: 24, Band: Low, PaperFreeze: 1.94, PaperRotate: 1.94, Seed: 1},
	{Name: "B2", Contexts: 4, Fabric: sq(8), TotalOps: 79, Band: Low, PaperFreeze: 2.17, PaperRotate: 2.17, Seed: 2},
	{Name: "B3", Contexts: 4, Fabric: sq(16), TotalOps: 192, Band: Low, PaperFreeze: 2.26, PaperRotate: 2.28, Seed: 3},
	{Name: "B4", Contexts: 8, Fabric: sq(4), TotalOps: 44, Band: Low, PaperFreeze: 2.77, PaperRotate: 2.80, Seed: 4},
	{Name: "B5", Contexts: 8, Fabric: sq(8), TotalOps: 142, Band: Low, PaperFreeze: 2.69, PaperRotate: 2.89, Seed: 5},
	{Name: "B6", Contexts: 8, Fabric: sq(16), TotalOps: 534, Band: Low, PaperFreeze: 2.93, PaperRotate: 3.39, Seed: 6},
	{Name: "B7", Contexts: 16, Fabric: sq(4), TotalOps: 88, Band: Low, PaperFreeze: 3.76, PaperRotate: 3.85, Seed: 7},
	{Name: "B8", Contexts: 16, Fabric: sq(8), TotalOps: 259, Band: Low, PaperFreeze: 3.19, PaperRotate: 3.79, Seed: 8},
	{Name: "B9", Contexts: 16, Fabric: sq(16), TotalOps: 1011, Band: Low, PaperFreeze: 3.35, PaperRotate: 3.73, Seed: 9},

	{Name: "B10", Contexts: 4, Fabric: sq(4), TotalOps: 35, Band: Medium, PaperFreeze: 1.67, PaperRotate: 1.67, Seed: 10},
	{Name: "B11", Contexts: 4, Fabric: sq(8), TotalOps: 148, Band: Medium, PaperFreeze: 1.44, PaperRotate: 1.82, Seed: 11},
	{Name: "B12", Contexts: 4, Fabric: sq(16), TotalOps: 451, Band: Medium, PaperFreeze: 1.54, PaperRotate: 1.77, Seed: 12},
	{Name: "B13", Contexts: 8, Fabric: sq(4), TotalOps: 62, Band: Medium, PaperFreeze: 2.05, PaperRotate: 2.36, Seed: 13},
	{Name: "B14", Contexts: 8, Fabric: sq(8), TotalOps: 280, Band: Medium, PaperFreeze: 1.97, PaperRotate: 2.84, Seed: 14},
	{Name: "B15", Contexts: 8, Fabric: sq(16), TotalOps: 1101, Band: Medium, PaperFreeze: 1.93, PaperRotate: 2.97, Seed: 15},
	{Name: "B16", Contexts: 16, Fabric: sq(4), TotalOps: 147, Band: Medium, PaperFreeze: 2.89, PaperRotate: 3.18, Seed: 16},
	{Name: "B17", Contexts: 16, Fabric: sq(8), TotalOps: 531, Band: Medium, PaperFreeze: 2.62, PaperRotate: 2.94, Seed: 17},
	{Name: "B18", Contexts: 16, Fabric: sq(16), TotalOps: 2165, Band: Medium, PaperFreeze: 2.39, PaperRotate: 3.08, Seed: 18},

	{Name: "B19", Contexts: 4, Fabric: sq(4), TotalOps: 52, Band: High, PaperFreeze: 1.18, PaperRotate: 1.52, Seed: 19},
	{Name: "B20", Contexts: 4, Fabric: sq(8), TotalOps: 175, Band: High, PaperFreeze: 1.27, PaperRotate: 1.70, Seed: 20},
	{Name: "B21", Contexts: 4, Fabric: sq(16), TotalOps: 554, Band: High, PaperFreeze: 1.76, PaperRotate: 2.00, Seed: 21},
	{Name: "B22", Contexts: 8, Fabric: sq(4), TotalOps: 87, Band: High, PaperFreeze: 1.56, PaperRotate: 2.06, Seed: 22},
	{Name: "B23", Contexts: 8, Fabric: sq(8), TotalOps: 327, Band: High, PaperFreeze: 1.48, PaperRotate: 1.98, Seed: 23},
	{Name: "B24", Contexts: 8, Fabric: sq(16), TotalOps: 1521, Band: High, PaperFreeze: 1.59, PaperRotate: 2.05, Seed: 24},
	{Name: "B25", Contexts: 16, Fabric: sq(4), TotalOps: 193, Band: High, PaperFreeze: 1.61, PaperRotate: 2.06, Seed: 25},
	{Name: "B26", Contexts: 16, Fabric: sq(8), TotalOps: 737, Band: High, PaperFreeze: 1.95, PaperRotate: 2.31, Seed: 26},
	{Name: "B27", Contexts: 16, Fabric: sq(16), TotalOps: 3089, Band: High, PaperFreeze: 2.07, PaperRotate: 2.44, Seed: 27},
}

// SpecByName returns the Table-I spec with the given name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range TableI {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Scaled returns a copy of s with the workload (and fabric, preserving
// the utilization band) shrunk by the given linear factor: fabric sides
// are multiplied by f and the op count by f^2. Used to run the largest
// Table-I rows on a laptop-class compute budget (see EXPERIMENTS.md).
func (s Spec) Scaled(f float64) Spec {
	if f >= 1 {
		return s
	}
	out := s
	w := int(float64(s.Fabric.W)*f + 0.5)
	h := int(float64(s.Fabric.H)*f + 0.5)
	if w < 4 {
		w = 4
	}
	if h < 4 {
		h = 4
	}
	out.Fabric = arch.Fabric{W: w, H: h}
	ratio := float64(w*h) / float64(s.Fabric.NumPEs())
	out.TotalOps = int(float64(s.TotalOps)*ratio + 0.5)
	if out.TotalOps < s.Contexts {
		out.TotalOps = s.Contexts
	}
	out.Name = s.Name + "s"
	return out
}

// chain templates: PE-delay sums all fit the 200 MHz chaining budget with
// wire headroom. DMU-headed chains dominate stress; pure-ALU chains of
// depth 3-4 dominate the wire-budget tightness.
var chainTemplates = [][]dfg.OpKind{
	{dfg.DMU},
	{dfg.ALU},
	{dfg.ALU},
	{dfg.DMU, dfg.ALU},
	{dfg.ALU, dfg.ALU},
	{dfg.ALU, dfg.DMU},
	{dfg.ALU, dfg.ALU, dfg.ALU},
	{dfg.ALU, dfg.ALU, dfg.ALU, dfg.ALU},
}

// Synthesize builds the multi-context design for a spec: per-context
// chained-op DAGs plus registered cross-context data edges, with exactly
// spec.TotalOps operations.
func Synthesize(spec Spec) (*arch.Design, error) {
	if spec.TotalOps < spec.Contexts {
		return nil, fmt.Errorf("bench: %s: %d ops cannot fill %d contexts",
			spec.Name, spec.TotalOps, spec.Contexts)
	}
	n := spec.Fabric.NumPEs()
	rng := rand.New(rand.NewSource(spec.Seed))

	// Distribute ops over contexts with jitter, clamped to the fabric.
	counts := make([]int, spec.Contexts)
	base := spec.TotalOps / spec.Contexts
	if base < 1 || base > n {
		return nil, fmt.Errorf("bench: %s: %d ops over %d contexts does not fit fabric %v",
			spec.Name, spec.TotalOps, spec.Contexts, spec.Fabric)
	}
	for c := range counts {
		jitter := int(float64(base) * 0.2 * (rng.Float64()*2 - 1))
		counts[c] = base + jitter
		if counts[c] < 1 {
			counts[c] = 1
		}
		if counts[c] > n {
			counts[c] = n
		}
	}
	// Fix the total exactly.
	sum := 0
	for _, c := range counts {
		sum += c
	}
	for sum != spec.TotalOps {
		c := rng.Intn(spec.Contexts)
		if sum < spec.TotalOps && counts[c] < n {
			counts[c]++
			sum++
		} else if sum > spec.TotalOps && counts[c] > 1 {
			counts[c]--
			sum--
		}
	}

	g := &dfg.Graph{}
	ctx := make([]int, 0, spec.TotalOps)
	opsOfCtx := make([][]int, spec.Contexts)
	headsOfCtx := make([][]int, spec.Contexts) // chain heads (registered inputs land here)

	for c := 0; c < spec.Contexts; c++ {
		remaining := counts[c]
		for remaining > 0 {
			tpl := chainTemplates[rng.Intn(len(chainTemplates))]
			if len(tpl) > remaining {
				tpl = tpl[:remaining]
			}
			prev := -1
			for i, kind := range tpl {
				name := "add"
				if kind == dfg.DMU {
					name = "mul"
				}
				op := g.AddOp(kind, fmt.Sprintf("%s_c%d_%d", name, c, len(opsOfCtx[c])))
				ctx = append(ctx, c)
				opsOfCtx[c] = append(opsOfCtx[c], op)
				if i == 0 {
					headsOfCtx[c] = append(headsOfCtx[c], op)
				} else {
					g.AddEdge(prev, op)
				}
				prev = op
			}
			remaining -= len(tpl)
		}
	}

	// Registered cross-context inputs: chain heads consume 1-2 producers
	// from earlier contexts; mid-chain ops occasionally take an extra
	// registered operand (creating the paper's mid-path source arcs).
	for c := 1; c < spec.Contexts; c++ {
		pickProducer := func() int {
			pc := rng.Intn(c)
			return opsOfCtx[pc][rng.Intn(len(opsOfCtx[pc]))]
		}
		for _, head := range headsOfCtx[c] {
			if rng.Float64() < 0.85 {
				k := 1 + rng.Intn(2)
				used := map[int]bool{}
				for i := 0; i < k; i++ {
					p := pickProducer()
					if !used[p] {
						used[p] = true
						g.AddEdge(p, head)
					}
				}
			}
		}
		for _, op := range opsOfCtx[c] {
			if len(g.Preds(op)) > 0 && rng.Float64() < 0.15 {
				p := pickProducer()
				dup := false
				for _, q := range g.Preds(op) {
					if q == p {
						dup = true
						break
					}
				}
				if !dup {
					g.AddEdge(p, op)
				}
			}
		}
	}

	d := arch.NewDesign(spec.Name, spec.Fabric, spec.Contexts, g, ctx)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: generated design invalid: %w", spec.Name, err)
	}
	if d.NumOps() != spec.TotalOps {
		return nil, fmt.Errorf("bench: %s: generated %d ops, want %d", spec.Name, d.NumOps(), spec.TotalOps)
	}
	return d, nil
}
