package bench

import (
	"strings"
	"testing"
	"time"

	"agingfp/internal/arch"
)

// fakeResult builds a Result without running the flow.
func fakeResult(name string, ctx, fab int, band Band, frz, rot float64) *Result {
	spec := Spec{
		Name: name, Contexts: ctx, Fabric: arch.Fabric{W: fab, H: fab},
		TotalOps: ctx * fab, Band: band, PaperFreeze: frz - 0.1, PaperRotate: rot - 0.1,
	}
	return &Result{
		Spec:           spec,
		RunOps:         spec.TotalOps,
		RunFabric:      spec.Fabric,
		FreezeIncrease: frz,
		RotateIncrease: rot,
		OrigCPD:        4.5,
		FreezeCPD:      4.5,
		RotateCPD:      4.4,
		Elapsed:        time.Second,
	}
}

func TestFormatTableILayout(t *testing.T) {
	rs := []*Result{
		fakeResult("B1", 4, 4, Low, 2.0, 2.1),
		fakeResult("B10", 4, 4, Medium, 1.7, 1.8),
		fakeResult("B19", 4, 4, High, 1.2, 1.5),
		fakeResult("B4", 8, 4, Low, 2.7, 2.9),
	}
	out := FormatTableI(rs)
	for _, want := range []string{"B1", "B10", "B19", "B4", "Avg.", "Overall rotate average"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Per-band averages: low band has B1 (2.1) and B4 (2.9) -> rotate 2.50.
	if !strings.Contains(out, "rotate 2.50") {
		t.Errorf("low-band rotate average wrong:\n%s", out)
	}
}

func TestFormatFig5Layout(t *testing.T) {
	rs := []*Result{
		fakeResult("B1", 4, 4, Low, 2.0, 2.1),
		fakeResult("B10", 4, 4, Medium, 1.7, 1.8),
		fakeResult("B19", 4, 4, High, 1.2, 1.5),
	}
	out := FormatFig5(rs)
	if !strings.Contains(out, "C4F4") {
		t.Fatalf("missing config label:\n%s", out)
	}
	if strings.Count(out, "#") == 0 {
		t.Fatal("missing bars")
	}
	// All three bands appear on the C4F4 row.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "C4F4") && strings.Contains(l, "(") {
			line = l
			break
		}
	}
	if !strings.Contains(line, "2.10") || !strings.Contains(line, "1.80") || !strings.Contains(line, "1.50") {
		t.Fatalf("band values missing from %q", line)
	}
}

func TestFormatFig2b(t *testing.T) {
	f := &Fig2b{
		Hours:        []float64{0, 100, 200},
		Orig:         []float64{0, 0.08, 0.12},
		Remapped:     []float64{0, 0.05, 0.08},
		OrigMTTF:     150,
		RemappedMTTF: 260,
		FailFrac:     0.10,
	}
	out := FormatFig2b(f)
	if !strings.Contains(out, "original fails") {
		t.Fatalf("missing failure marker:\n%s", out)
	}
	if !strings.Contains(out, "1.73x") {
		t.Fatalf("missing increase ratio:\n%s", out)
	}
}

func TestFormatScalingAndGreedy(t *testing.T) {
	sc := FormatScaling([]ScalingPoint{{Ops: 24, TwoStep: time.Second, TwoStepOK: true,
		Monolithic: 5 * time.Second, MonolithicOK: false, MonolithicNodes: 4000}})
	if !strings.Contains(sc, "24") || !strings.Contains(sc, "4000") {
		t.Fatalf("scaling format:\n%s", sc)
	}
	gr := FormatGreedy([]*GreedyComparison{{
		Spec: Spec{Name: "B1"}, GreedyMaxStress: 0.6, GreedyCPD: 5.4,
		MILPMaxStress: 0.7, MILPCPD: 4.4, OrigMaxStress: 1.2, OrigCPD: 4.5,
		CPDViolation: true,
	}})
	if !strings.Contains(gr, "B1") || !strings.Contains(gr, "true") {
		t.Fatalf("greedy format:\n%s", gr)
	}
	ba := FormatBudgetAblation([]*BudgetAblation{{
		Spec: Spec{Name: "B1"}, OrigCPD: 4.2, ClockNs: 5,
		PaperBudgetIncrease: 1.5, PaperBudgetCPD: 4.2,
		ClockBudgetIncrease: 2.2, ClockBudgetCPD: 4.9,
	}})
	if !strings.Contains(ba, "B1") || !strings.Contains(ba, "2.20x") {
		t.Fatalf("budget format:\n%s", ba)
	}
}

func TestWriteCSV(t *testing.T) {
	rs := []*Result{fakeResult("B1", 4, 4, Low, 2.0, 2.1)}
	var b strings.Builder
	if err := WriteCSV(&b, rs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,contexts,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "B1,4,4x4,") {
		t.Fatalf("bad row: %s", lines[1])
	}
}
