package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports suite results as CSV for external plotting — one row
// per benchmark with the measured and paper values.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"name", "contexts", "fabric", "ops", "utilization", "band",
		"freeze_increase", "rotate_increase",
		"paper_freeze", "paper_rotate",
		"orig_cpd_ns", "rotate_cpd_ns",
		"orig_max_stress", "rotate_max_stress",
		"orig_mttf_hours", "elapsed_seconds",
		"step1_seconds", "rotate_phase_seconds", "step2_seconds", "timing_seconds",
		"lp_solves", "simplex_iters",
		"freeze_status", "rotate_status", "probe_timeouts",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Spec.Name,
			fmt.Sprintf("%d", r.Spec.Contexts),
			r.RunFabric.String(),
			fmt.Sprintf("%d", r.RunOps),
			fmt.Sprintf("%.4f", r.Spec.Utilization()),
			r.Spec.Band.String(),
			fmt.Sprintf("%.4f", r.FreezeIncrease),
			fmt.Sprintf("%.4f", r.RotateIncrease),
			fmt.Sprintf("%.2f", r.Spec.PaperFreeze),
			fmt.Sprintf("%.2f", r.Spec.PaperRotate),
			fmt.Sprintf("%.4f", r.OrigCPD),
			fmt.Sprintf("%.4f", r.RotateCPD),
			fmt.Sprintf("%.4f", r.OrigMaxStress),
			fmt.Sprintf("%.4f", r.RotateMaxStress),
			fmt.Sprintf("%.1f", r.OrigMTTFHours),
			fmt.Sprintf("%.1f", r.Elapsed.Seconds()),
			// Phase durations and solver work are reported for the complete
			// (Rotate) method, the arm Table I's headline numbers come from.
			fmt.Sprintf("%.3f", r.RotateStats.Step1Time.Seconds()),
			fmt.Sprintf("%.3f", r.RotateStats.RotateTime.Seconds()),
			fmt.Sprintf("%.3f", r.RotateStats.Step2Time.Seconds()),
			fmt.Sprintf("%.3f", r.RotateStats.TimingTime.Seconds()),
			fmt.Sprintf("%d", r.RotateStats.LPSolves),
			fmt.Sprintf("%d", r.RotateStats.SimplexIters),
			// Typed search outcomes: "node-limit" here means budget
			// exhaustion, which external plots must not bin as
			// infeasibility (the pre-redesign CSV could not tell them
			// apart).
			r.FreezeStatus.String(),
			r.RotateStatus.String(),
			fmt.Sprintf("%d", r.FreezeStats.ProbeTimeouts+r.RotateStats.ProbeTimeouts),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
