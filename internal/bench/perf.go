package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"agingfp/internal/buildinfo"
	"agingfp/internal/flight"
)

// PerfSchema identifies the perf-report JSON layout; bump on breaking
// changes so a stale committed baseline fails loudly instead of
// comparing apples to oranges.
const PerfSchema = "agingfp-bench-perf/v1"

// PerfRecord is one benchmark's performance sample: wall-clock per
// phase plus the solver-effort counters that explain it. Effort fields
// sum the Freeze and Rotate arms (the suite always runs both), so a
// record captures the full cost of producing that benchmark's row.
type PerfRecord struct {
	Name     string `json:"name"`
	Ops      int    `json:"ops"`
	Contexts int    `json:"contexts"`

	ElapsedMs float64 `json:"elapsed_ms"`
	Step1Ms   float64 `json:"step1_ms"`
	RotateMs  float64 `json:"rotate_ms"`
	Step2Ms   float64 `json:"step2_ms"`
	TimingMs  float64 `json:"timing_ms"`

	LPSolves     int `json:"lp_solves"`
	SimplexIters int `json:"simplex_iters"`
	WarmStarts   int `json:"warm_starts"`
	STProbes     int `json:"st_probes"`

	// Per-phase LP kernel wall-clock (both arms summed), present only
	// when the suite ran with kernel profiling. Additive to the v1
	// schema: baselines without them simply omit the fields, and the
	// phase gate skips comparison against such baselines.
	LPSetupMs   float64 `json:"lp_setup_ms,omitempty"`
	LPPricingMs float64 `json:"lp_pricing_ms,omitempty"`
	LPFtranMs   float64 `json:"lp_ftran_ms,omitempty"`
	LPRatioMs   float64 `json:"lp_ratio_ms,omitempty"`
	LPUpdateMs  float64 `json:"lp_update_ms,omitempty"`
	LPRefreshMs float64 `json:"lp_refresh_ms,omitempty"`
}

// PerfReport is the perf trajectory document the bench suite emits
// (BENCH_floorplan.json in CI) and the regression gate compares against
// a committed baseline.
type PerfReport struct {
	Schema string `json:"schema"`
	// Suite names the spec subset the records cover; comparisons require
	// equal suites.
	Suite   string       `json:"suite"`
	Records []PerfRecord `json:"records"`
	// MedianSolveMs is the median per-benchmark elapsed time — the
	// regression-gate statistic. The median (not the mean) so one noisy
	// outlier benchmark cannot fail CI on its own.
	MedianSolveMs float64 `json:"median_solve_ms"`
	// PhaseMedianMs is the per-benchmark median of each LP kernel phase's
	// wall-clock, keyed by flight's phase names. Present only when the
	// suite ran with kernel profiling (additive to the v1 schema).
	PhaseMedianMs map[string]float64 `json:"phase_median_ms,omitempty"`
	// Build identity of the binary that produced the report, so a
	// regression flagged against a committed baseline can name the exact
	// commits being compared. Optional (additive to the v1 schema):
	// baselines produced by older binaries simply omit them.
	GoVersion   string `json:"go_version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSDirty    bool   `json:"vcs_dirty,omitempty"`
}

// NewPerfReport distills suite results into a perf report, stamped with
// the producing binary's build identity.
func NewPerfReport(suite string, results []*Result) *PerfReport {
	bi := buildinfo.Get()
	rep := &PerfReport{Schema: PerfSchema, Suite: suite,
		GoVersion: bi.GoVersion, VCSRevision: bi.VCSRevision, VCSDirty: bi.VCSDirty}
	var elapsed []float64
	for _, r := range results {
		if r == nil {
			continue
		}
		fs, rs := r.FreezeStats, r.RotateStats
		rec := PerfRecord{
			Name:         r.Spec.Name,
			Ops:          r.RunOps,
			Contexts:     r.Spec.Contexts,
			ElapsedMs:    float64(r.Elapsed.Milliseconds()),
			Step1Ms:      float64((fs.Step1Time + rs.Step1Time).Milliseconds()),
			RotateMs:     float64((fs.RotateTime + rs.RotateTime).Milliseconds()),
			Step2Ms:      float64((fs.Step2Time + rs.Step2Time).Milliseconds()),
			TimingMs:     float64((fs.TimingTime + rs.TimingTime).Milliseconds()),
			LPSolves:     fs.LPSolves + rs.LPSolves,
			SimplexIters: fs.SimplexIters + rs.SimplexIters,
			WarmStarts:   fs.WarmStarts + rs.WarmStarts,
			STProbes:     fs.STProbes + rs.STProbes,
		}
		if k := r.Kernel; k != nil {
			ms := func(name string) float64 {
				if ph := k.Phases[name]; ph != nil {
					return float64(ph.Nanos) / 1e6
				}
				return 0
			}
			rec.LPSetupMs = ms(flight.PhaseSetup)
			rec.LPPricingMs = ms(flight.PhasePricing)
			rec.LPFtranMs = ms(flight.PhaseFtran)
			rec.LPRatioMs = ms(flight.PhaseRatio)
			rec.LPUpdateMs = ms(flight.PhaseUpdate)
			rec.LPRefreshMs = ms(flight.PhaseRefresh)
		}
		rep.Records = append(rep.Records, rec)
		elapsed = append(elapsed, rec.ElapsedMs)
	}
	rep.MedianSolveMs = median(elapsed)
	phaseOf := map[string]func(*PerfRecord) float64{
		flight.PhaseSetup:   func(r *PerfRecord) float64 { return r.LPSetupMs },
		flight.PhasePricing: func(r *PerfRecord) float64 { return r.LPPricingMs },
		flight.PhaseFtran:   func(r *PerfRecord) float64 { return r.LPFtranMs },
		flight.PhaseRatio:   func(r *PerfRecord) float64 { return r.LPRatioMs },
		flight.PhaseUpdate:  func(r *PerfRecord) float64 { return r.LPUpdateMs },
		flight.PhaseRefresh: func(r *PerfRecord) float64 { return r.LPRefreshMs },
	}
	for name, of := range phaseOf {
		if m := medianOf(rep.Records, of); m > 0 {
			if rep.PhaseMedianMs == nil {
				rep.PhaseMedianMs = make(map[string]float64)
			}
			rep.PhaseMedianMs[name] = m
		}
	}
	return rep
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// WriteJSON writes the report as indented JSON.
func (p *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPerfReport parses a perf report and validates its schema tag.
func ReadPerfReport(r io.Reader) (*PerfReport, error) {
	var p PerfReport
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("bench: bad perf report: %w", err)
	}
	if p.Schema != PerfSchema {
		return nil, fmt.Errorf("bench: perf report schema %q, want %q", p.Schema, PerfSchema)
	}
	return &p, nil
}

// CompareMedian is the CI regression gate: it fails when the current
// median solve time exceeds factor x the baseline's. Wall-clock on
// shared runners is noisy, which is why the gate is a generous factor
// over a median, not a tight per-benchmark bound; it exists to catch
// order-of-magnitude regressions (a lost warm start, an accidental
// cold path), not 10% drifts. Sub-millisecond baselines are skipped —
// too small to gate meaningfully.
func CompareMedian(current, baseline *PerfReport, factor float64) error {
	if factor <= 1 {
		return fmt.Errorf("bench: regression factor %g must exceed 1", factor)
	}
	if current.Suite != baseline.Suite {
		return fmt.Errorf("bench: perf suites differ: current %q vs baseline %q", current.Suite, baseline.Suite)
	}
	if baseline.MedianSolveMs < 1 {
		return nil
	}
	if limit := baseline.MedianSolveMs * factor; current.MedianSolveMs > limit {
		return fmt.Errorf("bench: median solve time regressed: %.0fms > %.1fx baseline %.0fms",
			current.MedianSolveMs, factor, baseline.MedianSolveMs)
	}
	return nil
}

// CompareEffort gates the solver-effort counters the same way
// CompareMedian gates wall-clock: the per-benchmark medians of
// simplex_iters and lp_solves must not exceed factor x the baseline's.
// Unlike wall-clock, these counters are deterministic for a fixed seed,
// so a regression here is algorithmic (a lost warm start falls straight
// into the simplex-iteration count) rather than runner noise — the same
// generous factor is kept anyway so intentional algorithm changes fail
// with a message, not a mystery. Baselines whose median is below 1 are
// skipped, mirroring the wall-clock rule.
func CompareEffort(current, baseline *PerfReport, factor float64) error {
	if factor <= 1 {
		return fmt.Errorf("bench: regression factor %g must exceed 1", factor)
	}
	if current.Suite != baseline.Suite {
		return fmt.Errorf("bench: perf suites differ: current %q vs baseline %q", current.Suite, baseline.Suite)
	}
	metrics := []struct {
		name string
		of   func(*PerfRecord) float64
	}{
		{"simplex_iters", func(r *PerfRecord) float64 { return float64(r.SimplexIters) }},
		{"lp_solves", func(r *PerfRecord) float64 { return float64(r.LPSolves) }},
	}
	for _, m := range metrics {
		cur := medianOf(current.Records, m.of)
		base := medianOf(baseline.Records, m.of)
		if base < 1 {
			continue
		}
		if limit := base * factor; cur > limit {
			return fmt.Errorf("bench: median %s regressed: %.0f > %.1fx baseline %.0f",
				m.name, cur, factor, base)
		}
	}
	return nil
}

// Compare is the combined CI gate: wall-clock median plus the effort
// medians, first failure wins.
func Compare(current, baseline *PerfReport, factor float64) error {
	if err := CompareMedian(current, baseline, factor); err != nil {
		return err
	}
	return CompareEffort(current, baseline, factor)
}

func medianOf(records []PerfRecord, of func(*PerfRecord) float64) float64 {
	v := make([]float64, 0, len(records))
	for i := range records {
		v = append(v, of(&records[i]))
	}
	return median(v)
}
