package bench

import (
	"context"
	"testing"
)

func TestRunFig2b(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow run")
	}
	s, _ := SpecByName("B1")
	f, err := RunFig2b(context.Background(), s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.RemappedMTTF < f.OrigMTTF {
		t.Fatalf("re-mapping shortened MTTF: %g -> %g", f.OrigMTTF, f.RemappedMTTF)
	}
	if len(f.Hours) != len(f.Orig) || len(f.Hours) != len(f.Remapped) {
		t.Fatal("ragged trajectories")
	}
	// Monotone non-decreasing shift curves; re-mapped always at or below
	// the original at the same time.
	for i := 1; i < len(f.Hours); i++ {
		if f.Orig[i] < f.Orig[i-1] || f.Remapped[i] < f.Remapped[i-1] {
			t.Fatal("non-monotone Vth trajectory")
		}
		if f.Remapped[i] > f.Orig[i]+1e-12 {
			t.Fatalf("re-mapped ages faster at sample %d", i)
		}
	}
}

func TestRunBudgetAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow run")
	}
	s, _ := SpecByName("B1")
	ba, err := RunBudgetAblation(context.Background(), s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both budgets must respect their own guarantee.
	if ba.PaperBudgetCPD > ba.OrigCPD+1e-9 {
		t.Fatalf("paper budget broke CPD: %.3f -> %.3f", ba.OrigCPD, ba.PaperBudgetCPD)
	}
	if ba.ClockBudgetCPD > ba.ClockNs+1e-9 {
		t.Fatalf("clock budget broke the clock: %.3f", ba.ClockBudgetCPD)
	}
	// The relaxed budget never does worse (it strictly contains the
	// paper's feasible set).
	if ba.ClockBudgetIncrease < ba.PaperBudgetIncrease-0.15 {
		t.Fatalf("clock budget markedly worse: %.2f vs %.2f",
			ba.ClockBudgetIncrease, ba.PaperBudgetIncrease)
	}
}

func TestRunScalingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow run")
	}
	pts, err := RunScaling(context.Background(), []int{20, 32}, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if !p.TwoStepOK {
			t.Fatalf("two-step failed at %d ops", p.Ops)
		}
	}
}
