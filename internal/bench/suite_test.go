package bench

import (
	"context"
	"testing"

	"agingfp/internal/place"
	"agingfp/internal/timing"
)

func TestTableIComplete(t *testing.T) {
	if len(TableI) != 27 {
		t.Fatalf("%d benchmarks, want 27", len(TableI))
	}
	seen := map[string]bool{}
	for _, s := range TableI {
		if seen[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
		if s.TotalOps < s.Contexts {
			t.Fatalf("%s: fewer ops than contexts", s.Name)
		}
		if s.PaperFreeze <= 1 || s.PaperRotate < s.PaperFreeze {
			t.Fatalf("%s: inconsistent paper numbers %g/%g", s.Name, s.PaperFreeze, s.PaperRotate)
		}
	}
	// The paper's bands are relative within each (contexts, fabric)
	// group: low < medium < high utilization (e.g. B21 "high" at 0.54
	// sits below B14 "medium" at 0.55 — different groups).
	type key struct{ ctx, fab int }
	groups := map[key][3]float64{}
	for _, s := range TableI {
		k := key{s.Contexts, s.Fabric.W}
		g := groups[k]
		g[int(s.Band)] = s.Utilization()
		groups[k] = g
	}
	for k, g := range groups {
		if !(g[0] < g[1] && g[1] < g[2]) {
			t.Errorf("group C%dF%d: utilizations not ordered: %.2f %.2f %.2f",
				k.ctx, k.fab, g[0], g[1], g[2])
		}
	}
}

func TestSpecByName(t *testing.T) {
	if s, ok := SpecByName("B14"); !ok || s.Contexts != 8 || s.TotalOps != 280 {
		t.Fatalf("B14 lookup wrong: %+v ok=%v", s, ok)
	}
	if _, ok := SpecByName("B99"); ok {
		t.Fatal("nonexistent benchmark found")
	}
}

func TestSynthesizeMatchesSpec(t *testing.T) {
	for _, s := range TableI {
		if s.Fabric.NumPEs() > 64 {
			continue // keep the unit test quick; 16x16 covered by Scaled
		}
		d, err := Synthesize(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if d.NumOps() != s.TotalOps {
			t.Fatalf("%s: %d ops, want %d", s.Name, d.NumOps(), s.TotalOps)
		}
		if d.NumContexts != s.Contexts {
			t.Fatalf("%s: %d contexts, want %d", s.Name, d.NumContexts, s.Contexts)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: invalid design: %v", s.Name, err)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	s, _ := SpecByName("B13")
	d1, err := Synthesize(s)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := Synthesize(s)
	if d1.NumOps() != d2.NumOps() || len(d1.Graph.Edges) != len(d2.Graph.Edges) {
		t.Fatal("generator not deterministic")
	}
	for i, e := range d1.Graph.Edges {
		if d2.Graph.Edges[i] != e {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestSynthesizedDesignIsPlaceable(t *testing.T) {
	for _, name := range []string{"B1", "B13", "B22"} {
		s, _ := SpecByName(name)
		d, err := Synthesize(s)
		if err != nil {
			t.Fatal(err)
		}
		m, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := timing.Analyze(d, m)
		if res.CPD > d.ClockPeriodNs+1e-9 {
			t.Fatalf("%s: CPD %.3f exceeds clock", name, res.CPD)
		}
	}
}

func TestScaledPreservesBand(t *testing.T) {
	s, _ := SpecByName("B27")
	sc := s.Scaled(0.5)
	if sc.Fabric.W != 8 || sc.Fabric.H != 8 {
		t.Fatalf("scaled fabric %v, want 8x8", sc.Fabric)
	}
	du := sc.Utilization() - s.Utilization()
	if du > 0.05 || du < -0.05 {
		t.Fatalf("utilization drifted: %.2f -> %.2f", s.Utilization(), sc.Utilization())
	}
	if s.Scaled(1.0).TotalOps != s.TotalOps {
		t.Fatal("scale 1.0 must be identity")
	}
}

func TestRunSmallBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow benchmark run")
	}
	s, _ := SpecByName("B1")
	r, err := Run(context.Background(), s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.FreezeIncrease < 1 || r.RotateIncrease < r.FreezeIncrease-1e-9 {
		t.Fatalf("MTTF increases wrong: freeze %.2f rotate %.2f", r.FreezeIncrease, r.RotateIncrease)
	}
	if r.FreezeCPD > r.OrigCPD+1e-9 || r.RotateCPD > r.OrigCPD+1e-9 {
		t.Fatalf("CPD regressed: %.3f -> %.3f/%.3f", r.OrigCPD, r.FreezeCPD, r.RotateCPD)
	}
	tbl := FormatTableI([]*Result{r})
	if len(tbl) == 0 {
		t.Fatal("empty table")
	}
	fig := FormatFig5([]*Result{r})
	if len(fig) == 0 {
		t.Fatal("empty figure")
	}
}

func TestGroupAverages(t *testing.T) {
	rs := []*Result{
		{Spec: Spec{Band: Low}, FreezeIncrease: 2, RotateIncrease: 3},
		{Spec: Spec{Band: Low}, FreezeIncrease: 4, RotateIncrease: 5},
		{Spec: Spec{Band: High}, FreezeIncrease: 1, RotateIncrease: 1.5},
	}
	f, r := GroupAverages(rs)
	if f[Low] != 3 || r[Low] != 4 || f[High] != 1 || r[High] != 1.5 {
		t.Fatalf("averages wrong: %v %v", f, r)
	}
	if OverallAverage(rs) != (3+5+1.5)/3 {
		t.Fatalf("overall %.3f", OverallAverage(rs))
	}
}

func TestRunGreedyShowsTimingDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow run")
	}
	s, _ := SpecByName("B10")
	g, err := RunGreedy(context.Background(), s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Greedy must level at least as well as the MILP (it ignores delay),
	// and the MILP must respect the original CPD.
	if g.GreedyMaxStress > g.MILPMaxStress+1e-9 {
		t.Fatalf("greedy leveled worse (%.3f) than MILP (%.3f)?", g.GreedyMaxStress, g.MILPMaxStress)
	}
	if g.MILPCPD > g.OrigCPD+1e-9 {
		t.Fatalf("MILP broke timing")
	}
}
