package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/core"
	"agingfp/internal/flight"
	"agingfp/internal/milp"
	"agingfp/internal/nbti"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// Config parameterizes a suite run.
type Config struct {
	// Remap tunes the re-mapper; zero value selects core.DefaultOptions.
	Remap core.Options
	// Model is the NBTI calibration; zero value selects the default.
	Model nbti.Model
	// Thermal is the compact thermal calibration; zero value selects the
	// default.
	Thermal thermal.Config
	// Scale < 1 shrinks benchmarks linearly (fabric sides x Scale, ops x
	// Scale^2), preserving context counts and utilization bands; used to
	// run the 16x16 rows on small compute budgets.
	Scale float64
	// ScaleThreshold applies Scale only to fabrics with at least this
	// many PEs (default 256, i.e. only the 16x16 rows).
	ScaleThreshold int
	// Verbose prints per-benchmark progress.
	Verbose bool
	// Parallel runs this many benchmarks concurrently (each benchmark is
	// single-threaded and independently seeded, so results are identical
	// to a serial run); 0 or 1 runs serially.
	Parallel int
	// Progress receives per-benchmark log lines when non-nil.
	Progress func(string)
	// Trace observes the suite: one "bench.run" span per benchmark whose
	// end event carries the structured result (increases, CPDs, LP-solve
	// counts), with the re-mapper's own spans nested beneath it. Copied
	// into Remap.Trace unless the caller set that separately. nil (the
	// default) costs nothing.
	Trace *obs.Tracer
	// KernelProfile arms the LP kernel profiler for each benchmark run
	// (on a per-run recorder unless the caller supplied Remap.Flight
	// themselves); the aggregated profile lands in Result.Kernel.
	KernelProfile bool
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Remap:          core.DefaultOptions(),
		Model:          nbti.DefaultModel(),
		Thermal:        thermal.DefaultConfig(),
		Scale:          1.0,
		ScaleThreshold: 256,
	}
}

// Result is the outcome of running one benchmark through the full flow.
type Result struct {
	Spec Spec
	// RunOps/RunFabric are the actually-run workload parameters (after
	// any scaling).
	RunOps    int
	RunFabric arch.Fabric

	// OrigCPD is the aging-unaware floorplan's critical path delay (ns);
	// FreezeCPD/RotateCPD are the re-mapped delays (never larger).
	OrigCPD, FreezeCPD, RotateCPD float64
	// OrigMaxStress and the re-mapped maxima.
	OrigMaxStress, FreezeMaxStress, RotateMaxStress float64
	// MTTF increases (x) versus the aging-unaware floorplan — the
	// quantities Table I reports.
	FreezeIncrease, RotateIncrease float64
	// OrigMTTFHours is the baseline MTTF.
	OrigMTTFHours float64
	// FreezeStatus/RotateStatus classify what each arm's search achieved
	// (milp.Feasible: found a floorplan; milp.Infeasible: proven none;
	// milp.NodeLimit: probes hit their time budget — NOT infeasibility;
	// milp.Optimal: baseline already level). See core.Result.Status.
	FreezeStatus, RotateStatus milp.Status
	// Stats from the two re-mapping runs.
	FreezeStats, RotateStats core.Stats
	// Kernel is the aggregated LP kernel profile across both re-mapping
	// arms; nil unless Config.KernelProfile armed the profiler.
	Kernel *flight.Kernel
	// Elapsed is the wall-clock time for the whole benchmark.
	Elapsed time.Duration
}

// Run executes the full flow for one spec: synthesize, baseline-place,
// re-map in both Freeze and Rotate modes, and evaluate MTTF ratios.
// Cancellation propagates into the re-mapper; a canceled run returns
// ctx.Err().
func Run(ctx context.Context, spec Spec, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	origSpec := spec
	if cfg.Scale > 0 && cfg.Scale < 1 {
		threshold := cfg.ScaleThreshold
		if threshold <= 0 {
			threshold = 256
		}
		if spec.Fabric.NumPEs() >= threshold {
			spec = spec.Scaled(cfg.Scale)
		}
	}
	if cfg.Model.A == 0 {
		cfg.Model = nbti.DefaultModel()
	}
	if cfg.Thermal.RVertical == 0 {
		cfg.Thermal = thermal.DefaultConfig()
	}
	if cfg.Remap.PathThresholdFrac == 0 {
		cfg.Remap = core.DefaultOptions()
	}
	cfg.Remap.Seed = spec.Seed
	if cfg.Remap.Trace == nil {
		cfg.Remap.Trace = cfg.Trace
	}
	// Kernel profiling: one recorder spans both re-mapping arms (and any
	// retry), so the profile aggregates the benchmark's whole LP effort.
	if cfg.KernelProfile && cfg.Remap.Flight == nil {
		cfg.Remap.Flight = flight.NewRecorder(1)
	}
	if cfg.KernelProfile {
		cfg.Remap.Flight.EnableKernel(0)
	}

	start := time.Now()
	bsp := cfg.Remap.Trace.Start("bench.run",
		obs.String("name", spec.Name), obs.Int("contexts", spec.Contexts),
		obs.String("band", spec.Band.String()), obs.Int64("seed", spec.Seed))
	cfg.Remap.TraceParent = bsp
	// The span's end event is the structured per-benchmark result record.
	var r *Result
	defer func() {
		if r == nil {
			bsp.End(obs.String("status", "error"))
			return
		}
		bsp.End(obs.String("status", "ok"),
			obs.Float("freeze_increase", r.FreezeIncrease),
			obs.Float("rotate_increase", r.RotateIncrease),
			obs.Float("orig_cpd", r.OrigCPD),
			obs.Float("rotate_cpd", r.RotateCPD),
			obs.Int("lp_solves", r.FreezeStats.LPSolves+r.RotateStats.LPSolves),
			obs.Duration("step1", r.RotateStats.Step1Time),
			obs.Duration("rotate", r.RotateStats.RotateTime),
			obs.Duration("step2", r.RotateStats.Step2Time),
			obs.Duration("timing", r.RotateStats.TimingTime))
	}()
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}
	res0 := timing.Analyze(d, m0)
	before, err := core.Evaluate(d, m0, cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}

	fr, ro, err := core.RemapBoth(ctx, d, m0, cfg.Remap)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
	}
	if !fr.Improved && !ro.Improved {
		// Both searches struck out on this seed; one retry with a
		// different search seed recovers plain search-noise failures
		// (the MILP feasibility dive is randomized).
		retry := cfg.Remap
		retry.Seed = spec.Seed + 9173
		fr2, ro2, err := core.RemapBoth(ctx, d, m0, retry)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", spec.Name, err)
		}
		if fr2.Improved || ro2.Improved {
			fr, ro = fr2, ro2
		}
	}
	afterF, err := core.Evaluate(d, fr.Mapping, cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	afterR, err := core.Evaluate(d, ro.Mapping, cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	// The complete method keeps the better floorplan; RemapBoth compares
	// by max stress, but MTTF also depends on the thermal placement, so
	// re-compare by the actual reliability objective here.
	if afterF.Hours > afterR.Hours {
		ro, afterR = fr, afterF
	}

	// Result.Spec keeps the ORIGINAL Table-I identity (so grouping and
	// paper comparisons stay aligned); RunOps/RunFabric describe the
	// actually-run (possibly scaled) workload.
	r = &Result{
		Spec:            origSpec,
		RunOps:          d.NumOps(),
		RunFabric:       d.Fabric,
		OrigCPD:         res0.CPD,
		FreezeCPD:       fr.NewCPD,
		RotateCPD:       ro.NewCPD,
		FreezeStatus:    fr.Status,
		RotateStatus:    ro.Status,
		OrigMaxStress:   before.MaxStress,
		FreezeMaxStress: afterF.MaxStress,
		RotateMaxStress: afterR.MaxStress,
		FreezeIncrease:  afterF.Hours / before.Hours,
		RotateIncrease:  afterR.Hours / before.Hours,
		OrigMTTFHours:   before.Hours,
		FreezeStats:     fr.Stats,
		RotateStats:     ro.Stats,
		Kernel:          cfg.Remap.Flight.KernelSnapshot(),
		Elapsed:         time.Since(start),
	}
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("%-4s ctx=%2d fab=%-6v ops=%4d util=%.2f  freeze %.2fx  rotate %.2fx  (paper %.2f/%.2f)  cpd %.2f->%.2f  %s",
			spec.Name, spec.Contexts, d.Fabric, d.NumOps(), spec.Utilization(),
			r.FreezeIncrease, r.RotateIncrease, spec.PaperFreeze, spec.PaperRotate,
			r.OrigCPD, r.RotateCPD, r.Elapsed.Round(time.Millisecond)))
	}
	return r, nil
}

// RunSuite runs a list of specs, returning results in spec order. With
// cfg.Parallel > 1 the benchmarks run concurrently on a worker pool.
// The first failure stops dispatching (in-flight benchmarks finish), and
// the returned error names the spec that failed. A canceled ctx also
// stops dispatching; benchmarks already running finish their own
// cancellation promptly via the re-mapper's ctx polling.
func RunSuite(ctx context.Context, specs []Spec, cfg Config) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Parallel
	if workers <= 1 {
		var out []*Result
		for _, s := range specs {
			r, err := Run(ctx, s, cfg)
			if err != nil {
				return out, fmt.Errorf("bench: spec %s: %w", s.Name, err)
			}
			out = append(out, r)
		}
		return out, nil
	}
	out := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	failed := make(chan struct{})
	var failOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := Run(ctx, specs[i], cfg)
				if err != nil {
					errs[i] = fmt.Errorf("bench: spec %s: %w", specs[i].Name, err)
					failOnce.Do(func() { close(failed) })
					continue
				}
				out[i] = r
			}
		}()
	}
dispatch:
	for i := range specs {
		select {
		case jobs <- i:
		case <-failed:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	// Report the earliest failure in spec order, so reruns and error
	// messages are deterministic even when several workers failed.
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// FormatTableI renders results in the layout of the paper's Table I:
// rows by (context #, fabric), super-columns by usage band, with per-band
// and overall averages, and measured-vs-paper values side by side.
func FormatTableI(results []*Result) string {
	byKey := map[string]*Result{}
	for _, r := range results {
		byKey[r.Spec.Name] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s | %-28s | %-28s | %-28s\n", "ctx#", "fabric",
		"low usage  (frz/rot vs paper)", "medium usage (frz/rot vs paper)", "high usage (frz/rot vs paper)")
	type group struct{ ctx, fab int }
	groups := []group{{4, 4}, {4, 8}, {4, 16}, {8, 4}, {8, 8}, {8, 16}, {16, 4}, {16, 8}, {16, 16}}
	sumF := map[Band]float64{}
	sumR := map[Band]float64{}
	cnt := map[Band]int{}
	for _, g := range groups {
		cells := make([]string, 3)
		for _, r := range results {
			if r.Spec.Contexts != g.ctx || r.Spec.Fabric.W != g.fab {
				continue
			}
			band := r.Spec.Band
			name := r.Spec.Name
			if r.RunFabric != r.Spec.Fabric {
				name += "s" // scaled run (see EXPERIMENTS.md)
			}
			cells[int(band)] = fmt.Sprintf("%-4s %4d %4.2f/%4.2f (%4.2f/%4.2f)",
				name, r.RunOps, r.FreezeIncrease, r.RotateIncrease,
				r.Spec.PaperFreeze, r.Spec.PaperRotate)
			sumF[band] += r.FreezeIncrease
			sumR[band] += r.RotateIncrease
			cnt[band]++
		}
		fmt.Fprintf(&b, "%-5d %-7s | %-28s | %-28s | %-28s\n",
			g.ctx, fmt.Sprintf("%dx%d", g.fab, g.fab), cells[0], cells[1], cells[2])
	}
	fmt.Fprintf(&b, "%-13s |", "Avg.")
	for _, band := range []Band{Low, Medium, High} {
		if cnt[band] > 0 {
			fmt.Fprintf(&b, " freeze %.2f rotate %.2f (n=%d) |",
				sumF[band]/float64(cnt[band]), sumR[band]/float64(cnt[band]), cnt[band])
		} else {
			fmt.Fprintf(&b, " - |")
		}
	}
	total, n := 0.0, 0
	for _, band := range []Band{Low, Medium, High} {
		total += sumR[band]
		n += cnt[band]
	}
	if n > 0 {
		fmt.Fprintf(&b, "\nOverall rotate average: %.2fx (paper: 2.50x)\n", total/float64(n))
	}
	return b.String()
}

// FormatFig5 renders the Fig. 5 series: MTTF increase of the complete
// (Rotate) method grouped by configuration CxFy, three utilization bars
// per group.
func FormatFig5(results []*Result) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — aging-aware re-mapping MTTF increase (x)\n")
	b.WriteString("config   low    medium  high   (paper: low/med/high)\n")
	type key struct{ ctx, fab int }
	rows := map[key][3]*Result{}
	var keys []key
	for _, r := range results {
		k := key{r.Spec.Contexts, r.Spec.Fabric.W}
		if _, seen := rows[k]; !seen {
			keys = append(keys, k)
		}
		v := rows[k]
		v[int(r.Spec.Band)] = r
		rows[k] = v
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ctx != keys[j].ctx {
			return keys[i].ctx < keys[j].ctx
		}
		return keys[i].fab < keys[j].fab
	})
	for _, k := range keys {
		v := rows[k]
		fmt.Fprintf(&b, "C%dF%-3d", k.ctx, k.fab)
		paper := make([]string, 0, 3)
		for band := 0; band < 3; band++ {
			if v[band] != nil {
				fmt.Fprintf(&b, " %6.2f", v[band].RotateIncrease)
				paper = append(paper, fmt.Sprintf("%.2f", v[band].Spec.PaperRotate))
			} else {
				b.WriteString("      -")
			}
		}
		fmt.Fprintf(&b, "   (%s)\n", strings.Join(paper, "/"))
	}
	// Also emit bars for quick visual comparison.
	b.WriteString("\n")
	for _, k := range keys {
		v := rows[k]
		for band := 0; band < 3; band++ {
			if v[band] == nil {
				continue
			}
			n := int(v[band].RotateIncrease * 10)
			if n > 60 {
				n = 60
			}
			fmt.Fprintf(&b, "C%dF%-3d %-6s %5.2fx %s\n", k.ctx, k.fab,
				Band(band), v[band].RotateIncrease, strings.Repeat("#", n))
		}
	}
	return b.String()
}
