package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/core"
	"agingfp/internal/milp"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// Fig2b regenerates the paper's Fig. 2(b): fractional threshold-voltage
// shift over time for the original and re-mapped floorplans of one
// benchmark, with the 10% failure threshold crossing (the MTTF).
type Fig2b struct {
	// Hours are the sample times.
	Hours []float64
	// Orig and Remapped are the Vth shift fractions of the limiting PE
	// under each floorplan.
	Orig, Remapped []float64
	// OrigMTTF and RemappedMTTF are the threshold crossings (hours).
	OrigMTTF, RemappedMTTF float64
	// FailFrac is the failure threshold (0.10).
	FailFrac float64
}

// RunFig2b evaluates the Vth trajectories for a spec.
func RunFig2b(ctx context.Context, spec Spec, cfg Config) (*Fig2b, error) {
	if cfg.Model.A == 0 {
		cfg.Model = nbti.DefaultModel()
	}
	if cfg.Thermal.RVertical == 0 {
		cfg.Thermal = thermal.DefaultConfig()
	}
	if cfg.Remap.PathThresholdFrac == 0 {
		cfg.Remap = core.DefaultOptions()
	}
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rr, err := core.Remap(ctx, d, m0, cfg.Remap)
	if err != nil {
		return nil, err
	}

	worst := func(m arch.Mapping) (sr, temp float64, mttf float64, err error) {
		rep, err := core.Evaluate(d, m, cfg.Model, cfg.Thermal)
		if err != nil {
			return 0, 0, 0, err
		}
		pe := rep.LimitingPE
		sr = rep.Stress.At(pe) / float64(d.NumContexts)
		temp = rep.Temp[pe.Y][pe.X]
		return sr, temp, rep.Hours, nil
	}
	srO, tO, mttfO, err := worst(m0)
	if err != nil {
		return nil, err
	}
	srR, tR, mttfR, err := worst(rr.Mapping)
	if err != nil {
		return nil, err
	}

	out := &Fig2b{OrigMTTF: mttfO, RemappedMTTF: mttfR, FailFrac: cfg.Model.FailFrac}
	horizon := mttfR * 1.2
	for i := 0; i <= 40; i++ {
		out.Hours = append(out.Hours, horizon*float64(i)/40)
	}
	out.Orig = cfg.Model.Trajectory(srO, tO, out.Hours)
	out.Remapped = cfg.Model.Trajectory(srR, tR, out.Hours)
	return out, nil
}

// FormatFig2b renders the two trajectories as an ASCII chart.
func FormatFig2b(f *Fig2b) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2(b) — Vth shift fraction vs time (fail at %.0f%%)\n", f.FailFrac*100)
	fmt.Fprintf(&b, "original MTTF:  %.0f h (%.2f years)\n", f.OrigMTTF, f.OrigMTTF/8760)
	fmt.Fprintf(&b, "re-mapped MTTF: %.0f h (%.2f years)  => increase %.2fx\n\n",
		f.RemappedMTTF, f.RemappedMTTF/8760, f.RemappedMTTF/f.OrigMTTF)
	b.WriteString("    hours    orig     remap\n")
	for i, h := range f.Hours {
		markO, markR := "", ""
		if i > 0 && f.Orig[i-1] < f.FailFrac && f.Orig[i] >= f.FailFrac {
			markO = " <-- original fails"
		}
		if i > 0 && f.Remapped[i-1] < f.FailFrac && f.Remapped[i] >= f.FailFrac {
			markR = " <-- re-mapped fails"
		}
		fmt.Fprintf(&b, "%9.0f  %.5f  %.5f%s%s\n", h, f.Orig[i], f.Remapped[i], markO, markR)
	}
	return b.String()
}

// ScalingPoint is one instance size of the E4 scaling experiment
// comparing the monolithic ILP of §V.A with the paper's two-step
// LP-round-ILP scheme.
type ScalingPoint struct {
	Ops int
	// TwoStep is the wall time of the production path (LP relaxation +
	// rounding dive); TwoStepOK reports whether it found a floorplan.
	TwoStep   time.Duration
	TwoStepOK bool
	// Monolithic is the wall time of a pure branch-and-bound on the same
	// formulation; MonolithicNodes the nodes it needed (or burned).
	Monolithic      time.Duration
	MonolithicOK    bool
	MonolithicNodes int
	// MonolithicStatus is the branch-and-bound's typed outcome. Before
	// the Status redesign, a node-limited search (milp.NodeLimit) was
	// indistinguishable from a proven infeasibility in this report; the
	// ok column still collapses them, so read this field when the
	// distinction matters (a NodeLimit point says "nodeCap too small",
	// not "the formulation is infeasible").
	MonolithicStatus milp.Status
}

// RunScaling runs E4 on growing synthetic instances: same fabric, rising
// op counts. nodeCap bounds the monolithic solver (the paper gave CPLEX
// five days; we give B&B a node budget).
func RunScaling(ctx context.Context, opsList []int, nodeCap int, seed int64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for i, ops := range opsList {
		spec := Spec{
			Name: fmt.Sprintf("S%d", ops), Contexts: 4, Fabric: sq(6),
			TotalOps: ops, Band: Medium, Seed: seed + int64(i),
		}
		d, err := Synthesize(spec)
		if err != nil {
			return nil, err
		}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			return nil, err
		}
		st := arch.ComputeStress(d, m0)
		target := (st.Max() + st.Mean()) / 2 // a mid-range budget

		opts := core.DefaultOptions()
		opts.Seed = seed
		pt := ScalingPoint{Ops: d.NumOps()}

		// Two-step path.
		t0 := time.Now()
		_, okTwo, err := core.SolveRemapOnce(ctx, d, m0, target, opts)
		if err != nil {
			return nil, err
		}
		pt.TwoStep = time.Since(t0)
		pt.TwoStepOK = okTwo

		// Monolithic ILP on the identical formulation.
		t0 = time.Now()
		res, err := core.SolveRemapMonolithic(ctx, d, m0, target, opts, nodeCap)
		if err != nil {
			return nil, err
		}
		pt.Monolithic = time.Since(t0)
		pt.MonolithicOK = res.Status == milp.Optimal || res.Status == milp.Feasible
		pt.MonolithicNodes = res.Nodes
		pt.MonolithicStatus = res.Status
		out = append(out, pt)
	}
	return out, nil
}

// FormatScaling renders E4.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("E4 — monolithic ILP (§V.A) vs two-step LP/round/ILP (§V.B)\n")
	b.WriteString("  ops   two-step        ok   monolithic      status     nodes\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%5d   %-12v  %-5v %-12v  %-10s %d\n",
			p.Ops, p.TwoStep.Round(time.Millisecond), p.TwoStepOK,
			p.Monolithic.Round(time.Millisecond), p.MonolithicStatus, p.MonolithicNodes)
	}
	return b.String()
}

// GreedyComparison is E7: the delay-unaware LPT leveler versus the MILP.
type GreedyComparison struct {
	Spec Spec
	// GreedyMaxStress is the (excellent) stress level LPT reaches.
	GreedyMaxStress float64
	// GreedyCPD is the resulting critical path delay — typically well
	// above the original, which is the paper's core argument for a
	// delay-aware formulation.
	GreedyCPD float64
	// MILP results for the same design.
	MILPMaxStress, MILPCPD float64
	OrigMaxStress, OrigCPD float64
	// CPDViolation reports whether greedy broke the timing guarantee.
	CPDViolation bool
}

// RunGreedy runs E7 for one spec.
func RunGreedy(ctx context.Context, spec Spec, cfg Config) (*GreedyComparison, error) {
	if cfg.Remap.PathThresholdFrac == 0 {
		cfg.Remap = core.DefaultOptions()
	}
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res0 := timing.Analyze(d, m0)
	s0 := arch.ComputeStress(d, m0)

	gm := core.GreedyLevel(d, nil)
	gs := arch.ComputeStress(d, gm)
	gres := timing.Analyze(d, gm)

	rr, err := core.Remap(ctx, d, m0, cfg.Remap)
	if err != nil {
		return nil, err
	}
	return &GreedyComparison{
		Spec:            spec,
		GreedyMaxStress: gs.Max(),
		GreedyCPD:       gres.CPD,
		MILPMaxStress:   rr.NewMaxStress,
		MILPCPD:         rr.NewCPD,
		OrigMaxStress:   s0.Max(),
		OrigCPD:         res0.CPD,
		CPDViolation:    gres.CPD > res0.CPD+1e-9,
	}, nil
}

// FormatGreedy renders E7.
func FormatGreedy(rows []*GreedyComparison) string {
	var b strings.Builder
	b.WriteString("E7 — delay-unaware LPT leveler vs delay-aware MILP\n")
	b.WriteString("bench  origStress  greedyStress  milpStress | origCPD  greedyCPD  milpCPD  greedy breaks timing?\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s  %9.3f  %11.3f  %9.3f | %7.3f  %8.3f  %7.3f  %v\n",
			r.Spec.Name, r.OrigMaxStress, r.GreedyMaxStress, r.MILPMaxStress,
			r.OrigCPD, r.GreedyCPD, r.MILPCPD, r.CPDViolation)
	}
	return b.String()
}

// GroupAverages summarizes Table-I results per band; used by tests and
// EXPERIMENTS.md.
func GroupAverages(results []*Result) (freeze, rotate map[Band]float64) {
	freeze = map[Band]float64{}
	rotate = map[Band]float64{}
	cnt := map[Band]int{}
	for _, r := range results {
		freeze[r.Spec.Band] += r.FreezeIncrease
		rotate[r.Spec.Band] += r.RotateIncrease
		cnt[r.Spec.Band]++
	}
	for b := Low; b <= High; b++ {
		if cnt[b] > 0 {
			freeze[b] /= float64(cnt[b])
			rotate[b] /= float64(cnt[b])
		}
	}
	return freeze, rotate
}

// OverallAverage returns the mean Rotate-mode MTTF increase.
func OverallAverage(results []*Result) float64 {
	if len(results) == 0 {
		return math.NaN()
	}
	t := 0.0
	for _, r := range results {
		t += r.RotateIncrease
	}
	return t / float64(len(results))
}
