package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func perfResult(name string, elapsed time.Duration, lp int) *Result {
	r := &Result{Elapsed: elapsed, RunOps: 10}
	r.Spec.Name = name
	r.Spec.Contexts = 4
	r.FreezeStats.LPSolves = lp
	r.RotateStats.LPSolves = lp
	r.FreezeStats.Step1Time = elapsed / 4
	r.RotateStats.Step2Time = elapsed / 2
	return r
}

func TestPerfReportRoundTrip(t *testing.T) {
	rep := NewPerfReport("smoke", []*Result{
		perfResult("B1", 100*time.Millisecond, 5),
		perfResult("B2", 300*time.Millisecond, 9),
		nil, // skipped slots from a failed parallel run must not panic
		perfResult("B3", 200*time.Millisecond, 7),
	})
	if len(rep.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(rep.Records))
	}
	if rep.MedianSolveMs != 200 {
		t.Fatalf("median = %g, want 200", rep.MedianSolveMs)
	}
	if rep.Records[0].LPSolves != 10 {
		t.Fatalf("LPSolves = %d, want both arms summed (10)", rep.Records[0].LPSolves)
	}
	if rep.Records[0].Step1Ms != 25 || rep.Records[0].Step2Ms != 50 {
		t.Fatalf("phase ms = %g/%g, want 25/50", rep.Records[0].Step1Ms, rep.Records[0].Step2Ms)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MedianSolveMs != rep.MedianSolveMs || len(got.Records) != len(rep.Records) || got.Suite != "smoke" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPerfReportBadSchema(t *testing.T) {
	if _, err := ReadPerfReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("want schema error")
	}
}

func TestCompareMedian(t *testing.T) {
	base := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 100}
	ok := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 199}
	if err := CompareMedian(ok, base, 2); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	slow := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 201}
	if err := CompareMedian(slow, base, 2); err == nil {
		t.Fatal("want regression error")
	}
	// Different suites must refuse to compare rather than pass silently.
	other := &PerfReport{Schema: PerfSchema, Suite: "full", MedianSolveMs: 10}
	if err := CompareMedian(other, base, 2); err == nil {
		t.Fatal("want suite mismatch error")
	}
	// Tiny baselines (noise floor) skip the gate.
	tiny := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 0.4}
	fast := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 900}
	if err := CompareMedian(fast, tiny, 2); err != nil {
		t.Fatalf("sub-ms baseline must skip: %v", err)
	}
	if err := CompareMedian(ok, base, 1); err == nil {
		t.Fatal("want factor validation error")
	}
}
