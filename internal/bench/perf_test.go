package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func perfResult(name string, elapsed time.Duration, lp int) *Result {
	r := &Result{Elapsed: elapsed, RunOps: 10}
	r.Spec.Name = name
	r.Spec.Contexts = 4
	r.FreezeStats.LPSolves = lp
	r.RotateStats.LPSolves = lp
	r.FreezeStats.Step1Time = elapsed / 4
	r.RotateStats.Step2Time = elapsed / 2
	return r
}

func TestPerfReportRoundTrip(t *testing.T) {
	rep := NewPerfReport("smoke", []*Result{
		perfResult("B1", 100*time.Millisecond, 5),
		perfResult("B2", 300*time.Millisecond, 9),
		nil, // skipped slots from a failed parallel run must not panic
		perfResult("B3", 200*time.Millisecond, 7),
	})
	if len(rep.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(rep.Records))
	}
	if rep.MedianSolveMs != 200 {
		t.Fatalf("median = %g, want 200", rep.MedianSolveMs)
	}
	if rep.Records[0].LPSolves != 10 {
		t.Fatalf("LPSolves = %d, want both arms summed (10)", rep.Records[0].LPSolves)
	}
	if rep.Records[0].Step1Ms != 25 || rep.Records[0].Step2Ms != 50 {
		t.Fatalf("phase ms = %g/%g, want 25/50", rep.Records[0].Step1Ms, rep.Records[0].Step2Ms)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MedianSolveMs != rep.MedianSolveMs || len(got.Records) != len(rep.Records) || got.Suite != "smoke" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPerfReportBadSchema(t *testing.T) {
	if _, err := ReadPerfReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("want schema error")
	}
}

func TestCompareMedian(t *testing.T) {
	base := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 100}
	ok := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 199}
	if err := CompareMedian(ok, base, 2); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	slow := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 201}
	if err := CompareMedian(slow, base, 2); err == nil {
		t.Fatal("want regression error")
	}
	// Different suites must refuse to compare rather than pass silently.
	other := &PerfReport{Schema: PerfSchema, Suite: "full", MedianSolveMs: 10}
	if err := CompareMedian(other, base, 2); err == nil {
		t.Fatal("want suite mismatch error")
	}
	// Tiny baselines (noise floor) skip the gate.
	tiny := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 0.4}
	fast := &PerfReport{Schema: PerfSchema, Suite: "smoke", MedianSolveMs: 900}
	if err := CompareMedian(fast, tiny, 2); err != nil {
		t.Fatalf("sub-ms baseline must skip: %v", err)
	}
	if err := CompareMedian(ok, base, 1); err == nil {
		t.Fatal("want factor validation error")
	}
}

// effortReport builds a report whose records carry the given per-bench
// effort counters (wall-clock kept sub-ms so CompareMedian stays out of
// the way in Compare tests that target the effort gate).
func effortReport(suite string, simplex, lp []int) *PerfReport {
	rep := &PerfReport{Schema: PerfSchema, Suite: suite, MedianSolveMs: 0.5}
	for i := range simplex {
		rep.Records = append(rep.Records, PerfRecord{
			Name: fmt.Sprintf("B%d", i+1), SimplexIters: simplex[i], LPSolves: lp[i],
		})
	}
	return rep
}

func TestCompareEffort(t *testing.T) {
	base := effortReport("smoke", []int{1000, 2000, 3000}, []int{50, 60, 70})

	// Within budget: both effort medians under 2x.
	ok := effortReport("smoke", []int{1500, 3500, 2500}, []int{80, 100, 110})
	if err := CompareEffort(ok, base, 2); err != nil {
		t.Fatalf("within budget: %v", err)
	}

	// A lost warm start shows up as a simplex-iteration blowup even when
	// wall-clock noise hides it.
	iterRegress := effortReport("smoke", []int{5000, 4100, 4500}, []int{60, 65, 70})
	err := CompareEffort(iterRegress, base, 2)
	if err == nil || !strings.Contains(err.Error(), "simplex_iters") {
		t.Fatalf("want simplex_iters regression, got %v", err)
	}

	lpRegress := effortReport("smoke", []int{1000, 2000, 3000}, []int{130, 140, 150})
	err = CompareEffort(lpRegress, base, 2)
	if err == nil || !strings.Contains(err.Error(), "lp_solves") {
		t.Fatalf("want lp_solves regression, got %v", err)
	}

	// Suites must match, factor must be a factor.
	if err := CompareEffort(effortReport("full", nil, nil), base, 2); err == nil {
		t.Fatal("want suite mismatch error")
	}
	if err := CompareEffort(ok, base, 1); err == nil {
		t.Fatal("want factor validation error")
	}

	// Zero-effort baselines (predating the counters) skip the gate.
	empty := effortReport("smoke", []int{0, 0, 0}, []int{0, 0, 0})
	if err := CompareEffort(iterRegress, empty, 2); err != nil {
		t.Fatalf("zero baseline must skip: %v", err)
	}
}

func TestCombinedCompare(t *testing.T) {
	base := effortReport("smoke", []int{1000, 1000, 1000}, []int{50, 50, 50})
	base.MedianSolveMs = 100

	good := effortReport("smoke", []int{1100, 1100, 1100}, []int{55, 55, 55})
	good.MedianSolveMs = 150
	if err := Compare(good, base, 2); err != nil {
		t.Fatalf("combined gate within budget: %v", err)
	}

	slow := effortReport("smoke", []int{1100, 1100, 1100}, []int{55, 55, 55})
	slow.MedianSolveMs = 250
	if err := Compare(slow, base, 2); err == nil {
		t.Fatal("combined gate must catch wall-clock regressions")
	}

	churn := effortReport("smoke", []int{9000, 9000, 9000}, []int{55, 55, 55})
	churn.MedianSolveMs = 150
	if err := Compare(churn, base, 2); err == nil {
		t.Fatal("combined gate must catch effort regressions")
	}
}
