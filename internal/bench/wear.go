package bench

import (
	"context"
	"fmt"
	"strings"

	"agingfp/internal/core"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

// WearResult is E9: rotating between several CPD-safe aging-aware
// floorplans over time (the related-work module-diversification idea
// composed with the paper's re-mapper).
type WearResult struct {
	Spec Spec
	// Configurations actually collected (duplicates dropped).
	Configurations int
	// SingleIncrease is the best single floorplan's MTTF increase;
	// ScheduleIncrease the alternating schedule's.
	SingleIncrease, ScheduleIncrease float64
}

// RunWear evaluates a k-configuration wear schedule for one spec.
func RunWear(ctx context.Context, spec Spec, cfg Config, k int) (*WearResult, error) {
	if cfg.Model.A == 0 {
		cfg.Model = nbti.DefaultModel()
	}
	if cfg.Thermal.RVertical == 0 {
		cfg.Thermal = thermal.DefaultConfig()
	}
	if cfg.Remap.PathThresholdFrac == 0 {
		cfg.Remap = core.DefaultOptions()
	}
	cfg.Remap.Seed = spec.Seed
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		return nil, err
	}
	before, err := core.Evaluate(d, m0, cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	ws, err := core.DiversifiedRemap(ctx, d, m0, cfg.Remap, k)
	if err != nil {
		return nil, err
	}
	single, err := core.Evaluate(d, ws.Mappings[0], cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	sched, err := ws.Evaluate(d, cfg.Model, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	return &WearResult{
		Spec:             spec,
		Configurations:   len(ws.Mappings),
		SingleIncrease:   single.Hours / before.Hours,
		ScheduleIncrease: sched.Hours / before.Hours,
	}, nil
}

// FormatWear renders E9.
func FormatWear(rows []*WearResult) string {
	var b strings.Builder
	b.WriteString("E9 — wear-rotation schedules over diversified aging-aware floorplans\n")
	b.WriteString("bench  configs  single-floorplan  rotating-schedule\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s  %7d  %15.2fx  %16.2fx\n",
			r.Spec.Name, r.Configurations, r.SingleIncrease, r.ScheduleIncrease)
	}
	b.WriteString("(alternating distinct CPD-safe floorplans time-averages the stress\n")
	b.WriteString(" maps, so the schedule is never worse than its best member)\n")
	return b.String()
}
