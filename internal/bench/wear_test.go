package bench

import (
	"context"
	"testing"
)

func TestRunWear(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow run")
	}
	s, _ := SpecByName("B1")
	wr, err := RunWear(context.Background(), s, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Configurations < 1 {
		t.Fatal("no configurations")
	}
	if wr.ScheduleIncrease < wr.SingleIncrease-1e-6 {
		t.Fatalf("schedule (%.2fx) worse than single floorplan (%.2fx)",
			wr.ScheduleIncrease, wr.SingleIncrease)
	}
	out := FormatWear([]*WearResult{wr})
	if len(out) == 0 {
		t.Fatal("empty format")
	}
}
