package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// DebugSink renders trace activity as human-readable lines — the
// replacement for the flow's historical ad-hoc -debug prints. Lines are
// printed chronologically (span starts, instant events, span ends) with
// nesting shown by indentation and a monotonic offset from the first
// event:
//
//	+0.000s    > core.remap mode=rotate seed=1
//	+0.012s    . core.probe.round st_target=0.5120 round=0 status=infeasible
//	+0.034s    < core.probe (21.7ms) ok=false
//
// Safe for concurrent use.
type DebugSink struct {
	mu    sync.Mutex
	w     io.Writer
	t0    time.Time
	depth map[uint64]int
}

// NewDebugSink returns a debug sink writing to w.
func NewDebugSink(w io.Writer) *DebugSink {
	return &DebugSink{w: w, depth: map[uint64]int{}}
}

func (d *DebugSink) line(e *Event, marker string, dur time.Duration, closing bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.t0.IsZero() {
		d.t0 = e.Start
	}
	depth := 0
	if e.Parent != 0 {
		depth = d.depth[e.Parent] + 1
	}
	switch {
	case closing:
		delete(d.depth, e.ID)
	case !e.Instant:
		d.depth[e.ID] = depth
	}
	at := e.Start.Sub(d.t0)
	if closing {
		at += dur
	}
	buf := make([]byte, 0, 96)
	buf = append(buf, fmt.Sprintf("%+9.3fs %*s%s %s", at.Seconds(), 2*depth, "", marker, e.Name)...)
	if closing {
		buf = append(buf, fmt.Sprintf(" (%s)", dur.Round(10*time.Microsecond))...)
	}
	for _, a := range e.Attrs {
		buf = append(buf, ' ')
		buf = append(buf, a.Key...)
		buf = append(buf, '=')
		buf = appendDebugValue(buf, a)
	}
	buf = append(buf, '\n')
	d.w.Write(buf)
}

// SpanStart implements StartSink.
func (d *DebugSink) SpanStart(e *Event) { d.line(e, ">", 0, false) }

// Emit implements Sink.
func (d *DebugSink) Emit(e *Event) {
	if e.Instant {
		d.line(e, ".", 0, false)
		return
	}
	d.line(e, "<", e.Duration, true)
}

func appendDebugValue(buf []byte, a Attr) []byte {
	switch a.kind {
	case kindString:
		return append(buf, a.s...)
	case kindInt:
		return strconv.AppendInt(buf, a.i, 10)
	case kindFloat:
		return strconv.AppendFloat(buf, a.f, 'g', 6, 64)
	case kindBool:
		return strconv.AppendBool(buf, a.i != 0)
	case kindDuration:
		return append(buf, time.Duration(a.i).Round(time.Microsecond).String()...)
	default:
		return append(buf, '?')
	}
}

// JSONLSink writes one JSON object per completed span or instant event,
// suitable for chrome://tracing-style post-processing:
//
//	{"name":"core.probe","id":7,"parent":2,"start_us":1722850000000000,
//	 "dur_us":21700,"attrs":{"st_target":0.512,"ok":false}}
//
// start_us is microseconds since the Unix epoch; dur_us is the span
// duration (0 with "instant":true for point events). Output is buffered;
// call Close (or Flush) to drain it. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// jsonlFlushAt bounds the internal buffer before a write is forced.
const jsonlFlushAt = 1 << 16

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buf
	b = append(b, `{"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"id":`...)
	b = strconv.AppendUint(b, e.ID, 10)
	if e.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, e.Parent, 10)
	}
	b = append(b, `,"start_us":`...)
	b = strconv.AppendInt(b, e.Start.UnixMicro(), 10)
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, e.Duration.Microseconds(), 10)
	if e.Instant {
		b = append(b, `,"instant":true`...)
	}
	if len(e.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			b = appendJSONValue(b, a)
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	s.buf = b
	if len(s.buf) >= jsonlFlushAt {
		s.flushLocked()
	}
}

// Flush writes any buffered lines through to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.err
}

// Close flushes; it does not close the underlying writer.
func (s *JSONLSink) Close() error { return s.Flush() }

func (s *JSONLSink) flushLocked() {
	if len(s.buf) == 0 || s.err != nil {
		return
	}
	_, s.err = s.w.Write(s.buf)
	s.buf = s.buf[:0]
}

func appendJSONValue(b []byte, a Attr) []byte {
	switch a.kind {
	case kindString:
		return appendJSONString(b, a.s)
	case kindInt:
		return strconv.AppendInt(b, a.i, 10)
	case kindFloat:
		return appendJSONFloat(b, a.f)
	case kindBool:
		return strconv.AppendBool(b, a.i != 0)
	case kindDuration:
		// Durations serialize as float seconds.
		return appendJSONFloat(b, time.Duration(a.i).Seconds())
	default:
		return append(b, "null"...)
	}
}

// appendJSONFloat renders f as a valid JSON number (JSON has no
// NaN/Inf literals; they become null).
func appendJSONFloat(b []byte, f float64) []byte {
	if f != f || f > 1e308 || f < -1e308 {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quote, backslash, control characters).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
			i++
		case c == '\n':
			b = append(b, '\\', 'n')
			i++
		case c == '\t':
			b = append(b, '\\', 't')
			i++
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
			i++
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, `�`...)
			} else {
				b = append(b, s[i:i+size]...)
			}
			i += size
		}
	}
	return append(b, '"')
}
