package obs_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"agingfp/internal/obs"
)

// TestReporterLatestValue checks the core latest-value contract: Update
// read-modify-writes the snapshot, Seq bumps by one per publish, and
// readers see whole snapshots.
func TestReporterLatestValue(t *testing.T) {
	r := obs.NewReporter()
	if p := r.Latest(); p.Seq != 0 || p.Phase != "" {
		t.Fatalf("fresh reporter snapshot = %+v, want zero", p)
	}
	r.Update(func(p *obs.Progress) { p.Phase = "step1"; p.STProbes = 1 })
	r.Update(func(p *obs.Progress) { p.LPSolves = 7 })
	p := r.Latest()
	if p.Seq != 2 {
		t.Fatalf("Seq = %d, want 2", p.Seq)
	}
	if p.Phase != "step1" || p.STProbes != 1 || p.LPSolves != 7 {
		t.Fatalf("fields not carried across updates: %+v", p)
	}
	if p.UpdatedUnixMicro == 0 {
		t.Fatal("UpdatedUnixMicro not stamped")
	}
}

// TestReporterTerminalIdempotent pins the terminal-state contract: once
// a Done snapshot is published, later updates — including a second,
// conflicting terminal publish — are dropped, and Seq stops advancing.
func TestReporterTerminalIdempotent(t *testing.T) {
	r := obs.NewReporter()
	r.Update(func(p *obs.Progress) { p.Phase = "probe"; p.STProbes = 3 })
	r.Update(func(p *obs.Progress) { p.Done = true; p.Status = "failed" })
	final := r.Latest()
	if !final.Done || final.Status != "failed" {
		t.Fatalf("terminal snapshot = %+v, want Done/failed", final)
	}

	r.Update(func(p *obs.Progress) { p.Done = true; p.Status = "done" })
	r.Update(func(p *obs.Progress) { p.LPSolves = 99 })
	got := r.Latest()
	if got.Status != "failed" {
		t.Fatalf("second terminal publish overwrote the first: Status = %q, want %q", got.Status, "failed")
	}
	if got.Seq != final.Seq {
		t.Fatalf("Seq advanced past terminal state: %d -> %d", final.Seq, got.Seq)
	}
	if got.LPSolves != final.LPSolves {
		t.Fatalf("non-terminal field mutated after terminal state: %+v", got)
	}
}

// TestReporterNilInert pins the nil contract: Update never calls its
// closure, Latest returns zero, Watch returns a nil (never-ready)
// channel.
func TestReporterNilInert(t *testing.T) {
	var r *obs.Reporter
	r.Update(func(p *obs.Progress) { t.Fatal("closure called on nil reporter") })
	if p := r.Latest(); p != (obs.Progress{}) {
		t.Fatalf("nil Latest = %+v, want zero", p)
	}
	p, ch := r.Watch()
	if p != (obs.Progress{}) || ch != nil {
		t.Fatalf("nil Watch = (%+v, %v), want (zero, nil)", p, ch)
	}
}

// TestReporterNilUpdateZeroAllocs keeps the disabled progress path free
// for solver inner loops: publishing to a nil reporter must not allocate.
func TestReporterNilUpdateZeroAllocs(t *testing.T) {
	var r *obs.Reporter
	n := testing.AllocsPerRun(100, func() {
		r.Update(func(p *obs.Progress) { p.Nodes++ })
	})
	if n != 0 {
		t.Fatalf("nil reporter Update allocates %.1f per op, want 0", n)
	}
}

// TestReporterWatchWake checks that a watcher blocked on the notify
// channel wakes on the next update and observes it (directly or after a
// Seq re-check — spurious wakes are allowed, lost wakes are not).
func TestReporterWatchWake(t *testing.T) {
	r := obs.NewReporter()
	p, ch := r.Watch()
	if p.Seq != 0 {
		t.Fatalf("pre-update Watch Seq = %d", p.Seq)
	}
	go r.Update(func(p *obs.Progress) { p.Phase = "rotate" })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher not woken by update")
	}
	if got := r.Latest(); got.Seq != 1 || got.Phase != "rotate" {
		t.Fatalf("post-wake snapshot = %+v", got)
	}
	// A second Watch after the wake must return a fresh channel that the
	// next update closes.
	_, ch2 := r.Watch()
	r.Update(func(p *obs.Progress) { p.Phase = "probe" })
	select {
	case <-ch2:
	case <-time.After(5 * time.Second):
		t.Fatal("second watcher not woken")
	}
}

// TestReporterConcurrent hammers the CAS loop from several writers and a
// watcher; with -race this is the memory-safety check, and the final Seq
// proves no update was dropped.
func TestReporterConcurrent(t *testing.T) {
	const writers, perWriter = 8, 200
	r := obs.NewReporter()
	done := make(chan struct{})
	go func() { // watcher: follow updates until the writers finish
		defer close(done)
		last := uint64(0)
		for {
			p, ch := r.Watch()
			if p.Seq > last {
				last = p.Seq
			}
			if p.LPSolves == writers*perWriter {
				return
			}
			<-ch
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Update(func(p *obs.Progress) { p.LPSolves++ })
			}
		}()
	}
	wg.Wait()
	p := r.Latest()
	if p.Seq != writers*perWriter || p.LPSolves != writers*perWriter {
		t.Fatalf("Seq=%d LPSolves=%d, want both %d", p.Seq, p.LPSolves, writers*perWriter)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watcher never observed final count")
	}
}

// TestContextPropagation checks the With*/From round trips and the inert
// defaults on bare and nil contexts.
func TestContextPropagation(t *testing.T) {
	if obs.TracerFrom(nil) != nil || obs.TraceIDFrom(nil) != "" || obs.ReporterFrom(nil) != nil {
		t.Fatal("nil context must yield inert zero values")
	}
	ctx := context.Background()
	if obs.TracerFrom(ctx) != nil || obs.TraceIDFrom(ctx) != "" || obs.ReporterFrom(ctx) != nil {
		t.Fatal("bare context must yield inert zero values")
	}
	tr := obs.New()
	rep := obs.NewReporter()
	ctx = obs.WithTracer(ctx, tr)
	ctx = obs.WithTraceID(ctx, "deadbeefcafe0123")
	ctx = obs.WithReporter(ctx, rep)
	if obs.TracerFrom(ctx) != tr {
		t.Fatal("tracer did not round-trip")
	}
	if got := obs.TraceIDFrom(ctx); got != "deadbeefcafe0123" {
		t.Fatalf("trace ID = %q", got)
	}
	if obs.ReporterFrom(ctx) != rep {
		t.Fatal("reporter did not round-trip")
	}
	// Deliberate masking: attaching nil hides an outer tracer.
	masked := obs.WithTracer(ctx, nil)
	if obs.TracerFrom(masked) != nil {
		t.Fatal("nil tracer must mask the outer one")
	}
}

// TestTracerSinksAndFlush covers the fan-out accessors added for the job
// server: Sinks exposure and Flush on buffered sinks.
func TestTracerSinksAndFlush(t *testing.T) {
	if (*obs.Tracer)(nil).Sinks() != nil {
		t.Fatal("nil tracer Sinks must be nil")
	}
	if err := (*obs.Tracer)(nil).Flush(); err != nil {
		t.Fatalf("nil tracer Flush: %v", err)
	}
	var buf lockedBuffer
	js := obs.NewJSONLSink(&buf)
	tr := obs.New(js)
	if got := tr.Sinks(); len(got) != 1 || got[0] != obs.Sink(js) {
		t.Fatalf("Sinks = %v", got)
	}
	tr.Event("unit.test")
	if buf.Len() != 0 {
		t.Fatal("JSONL sink flushed eagerly; expected buffering")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Tracer.Flush did not reach the buffered sink")
	}
}

// lockedBuffer is a minimal concurrency-safe write buffer for sink tests.
type lockedBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b = append(l.b, p...)
	return len(p), nil
}

func (l *lockedBuffer) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.b)
}
