package obs

import "context"

// Context propagation. The job server owns the per-request observability
// state — the tracer, the trace/correlation ID, and the live progress
// reporter — and the solver layers (core, milp, lp) sit several calls
// below it behind stable APIs. Rather than threading three extra
// parameters through every signature, the request-scoped trio rides the
// context.Context that already flows end to end for cancellation:
//
//	ctx = obs.WithTracer(ctx, tracer)
//	ctx = obs.WithTraceID(ctx, "4be1c9...")
//	ctx = obs.WithReporter(ctx, reporter)
//
// Each solver layer falls back to the context value only when its own
// Options.Trace is nil, so explicit wiring (tests, the CLI) always wins.
// All accessors are nil-safe on a nil context and return the inert zero
// value ((*Tracer)(nil), "", (*Reporter)(nil)) when nothing is attached,
// so callers never branch.

type ctxKey int

const (
	ctxTracer ctxKey = iota
	ctxTraceID
	ctxReporter
)

// WithTracer returns a context carrying t. A nil t is stored as-is (the
// nil tracer is valid and inert), which lets a caller deliberately mask
// an outer tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxTracer, t)
}

// TracerFrom returns the tracer attached to ctx, or nil (the inert
// tracer) when ctx is nil or carries none.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxTracer).(*Tracer)
	return t
}

// WithTraceID returns a context carrying the job's trace/correlation ID.
// The ID is free-form; the job server uses 16 hex characters.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxTraceID, id)
}

// TraceIDFrom returns the trace/correlation ID attached to ctx, or ""
// when ctx is nil or carries none.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxTraceID).(string)
	return id
}

// WithReporter returns a context carrying a live progress reporter.
func WithReporter(ctx context.Context, r *Reporter) context.Context {
	return context.WithValue(ctx, ctxReporter, r)
}

// ReporterFrom returns the progress reporter attached to ctx, or nil
// (the inert reporter) when ctx is nil or carries none.
func ReporterFrom(ctx context.Context) *Reporter {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxReporter).(*Reporter)
	return r
}
