package obs_test

import (
	"strings"
	"testing"
	"time"

	"agingfp/internal/obs"
)

// TestMetricsSnapshotGolden pins the Prometheus text-exposition format:
// deterministic ordering, one # TYPE line per family, inline label
// sets, histogram buckets cumulative with sum/count in seconds.
func TestMetricsSnapshotGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("agingfp_lp_solves_total").Add(42)
	r.Counter("agingfp_st_probes_total").Inc()
	r.Gauge(`agingfp_phase_seconds{phase="step1"}`).Set(0.5)
	r.Gauge(`agingfp_phase_seconds{phase="step2"}`).Add(1.25)
	h := r.Histogram("agingfp_probe_seconds")
	h.Observe(50 * time.Microsecond) // le 0.0001
	h.Observe(5 * time.Millisecond)  // le 0.01
	h.Observe(2 * time.Second)       // le 10
	h.Observe(5 * time.Minute)       // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE agingfp_lp_solves_total counter
agingfp_lp_solves_total 42
# TYPE agingfp_phase_seconds gauge
agingfp_phase_seconds{phase="step1"} 0.5
agingfp_phase_seconds{phase="step2"} 1.25
# TYPE agingfp_probe_seconds histogram
agingfp_probe_seconds_bucket{le="0.0001"} 1
agingfp_probe_seconds_bucket{le="0.001"} 1
agingfp_probe_seconds_bucket{le="0.01"} 2
agingfp_probe_seconds_bucket{le="0.1"} 2
agingfp_probe_seconds_bucket{le="1"} 2
agingfp_probe_seconds_bucket{le="10"} 3
agingfp_probe_seconds_bucket{le="60"} 3
agingfp_probe_seconds_bucket{le="+Inf"} 4
agingfp_probe_seconds_sum 302.00505
agingfp_probe_seconds_count 4
# TYPE agingfp_st_probes_total counter
agingfp_st_probes_total 1
`
	if got := b.String(); got != want {
		t.Fatalf("snapshot mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilRegistrySafe pins the nil-safety contract the call sites rely
// on.
func TestNilRegistrySafe(t *testing.T) {
	var r *obs.Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(time.Second)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil registry instruments must read zero")
	}
}

// TestHistogramAccumulators checks Sum/Count against direct observes.
func TestHistogramAccumulators(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	h.Observe(100 * time.Millisecond)
	h.Observe(400 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 500*time.Millisecond {
		t.Fatalf("sum = %v, want 500ms", h.Sum())
	}
	// Same-name lookup returns the same instrument.
	if r.Histogram("h") != h {
		t.Fatal("Histogram lookup not idempotent")
	}
}
