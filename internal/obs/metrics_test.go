package obs_test

import (
	"strings"
	"testing"
	"time"

	"agingfp/internal/obs"
)

// TestMetricsSnapshotGolden pins the Prometheus text-exposition format:
// deterministic ordering, one # TYPE line per family, inline label
// sets, histogram buckets cumulative with sum/count in seconds.
func TestMetricsSnapshotGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("agingfp_lp_solves_total").Add(42)
	r.Counter("agingfp_st_probes_total").Inc()
	r.Gauge(`agingfp_phase_seconds{phase="step1"}`).Set(0.5)
	r.Gauge(`agingfp_phase_seconds{phase="step2"}`).Add(1.25)
	h := r.Histogram("agingfp_probe_seconds")
	h.Observe(50 * time.Microsecond) // le 0.0001
	h.Observe(5 * time.Millisecond)  // le 0.0064
	h.Observe(2 * time.Second)       // le 3.2768
	h.Observe(5 * time.Minute)       // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE agingfp_lp_solves_total counter
agingfp_lp_solves_total 42
# TYPE agingfp_phase_seconds gauge
agingfp_phase_seconds{phase="step1"} 0.5
agingfp_phase_seconds{phase="step2"} 1.25
# TYPE agingfp_probe_seconds histogram
agingfp_probe_seconds_bucket{le="0.0001"} 1
agingfp_probe_seconds_bucket{le="0.0002"} 1
agingfp_probe_seconds_bucket{le="0.0004"} 1
agingfp_probe_seconds_bucket{le="0.0008"} 1
agingfp_probe_seconds_bucket{le="0.0016"} 1
agingfp_probe_seconds_bucket{le="0.0032"} 1
agingfp_probe_seconds_bucket{le="0.0064"} 2
agingfp_probe_seconds_bucket{le="0.0128"} 2
agingfp_probe_seconds_bucket{le="0.0256"} 2
agingfp_probe_seconds_bucket{le="0.0512"} 2
agingfp_probe_seconds_bucket{le="0.1024"} 2
agingfp_probe_seconds_bucket{le="0.2048"} 2
agingfp_probe_seconds_bucket{le="0.4096"} 2
agingfp_probe_seconds_bucket{le="0.8192"} 2
agingfp_probe_seconds_bucket{le="1.6384"} 2
agingfp_probe_seconds_bucket{le="3.2768"} 3
agingfp_probe_seconds_bucket{le="6.5536"} 3
agingfp_probe_seconds_bucket{le="13.1072"} 3
agingfp_probe_seconds_bucket{le="26.2144"} 3
agingfp_probe_seconds_bucket{le="52.4288"} 3
agingfp_probe_seconds_bucket{le="104.8576"} 3
agingfp_probe_seconds_bucket{le="+Inf"} 4
agingfp_probe_seconds_sum 302.00505
agingfp_probe_seconds_count 4
# TYPE agingfp_st_probes_total counter
agingfp_st_probes_total 1
`
	if got := b.String(); got != want {
		t.Fatalf("snapshot mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWarmRejectLabelsExposed pins the labeled warm-start reject family:
// every reject reason the LP layer can emit must surface as its own
// labeled series in the exposition, so dashboards can break rejects down
// by cause instead of seeing one opaque total.
func TestWarmRejectLabelsExposed(t *testing.T) {
	r := obs.NewRegistry()
	const family = "agingfp_lp_warmstart_rejects_total"
	for i, reason := range []string{"stale_basis", "singular", "dim_mismatch"} {
		r.Counter(obs.Labeled(family, "reason", reason)).Add(int64(i + 1))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`agingfp_lp_warmstart_rejects_total{reason="stale_basis"} 1`,
		`agingfp_lp_warmstart_rejects_total{reason="singular"} 2`,
		`agingfp_lp_warmstart_rejects_total{reason="dim_mismatch"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing labeled series %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "# TYPE agingfp_lp_warmstart_rejects_total counter") {
		t.Errorf("exposition missing TYPE line for the reject family:\n%s", got)
	}
}

// TestHistogramExponentialBuckets pins the bucket layout contract: bounds
// are exponential (base 100µs, factor 2), every observation lands in the
// first bucket whose bound is >= it, and the bucket count matches what
// Counts reports.
func TestHistogramExponentialBuckets(t *testing.T) {
	bounds := obs.Bounds()
	if len(bounds) != 21 {
		t.Fatalf("got %d bounds, want 21", len(bounds))
	}
	if bounds[0] != 1e-4 {
		t.Fatalf("first bound %g, want 1e-4", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if got := bounds[i] / bounds[i-1]; got != 2 {
			t.Fatalf("bounds[%d]/bounds[%d] = %g, want exactly 2", i, i-1, got)
		}
	}

	r := obs.NewRegistry()
	h := r.Histogram("h")
	for i, d := range []time.Duration{
		90 * time.Microsecond, // bucket 0
		time.Millisecond,      // 0.0016 -> bucket 4
		time.Second,           // 1.6384 -> bucket 14
		2 * time.Minute,       // > 104.8576 -> +Inf
	} {
		h.Observe(d)
		counts := h.Counts()
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != int64(i)+1 {
			t.Fatalf("after %d observes, bucket total %d", i+1, total)
		}
	}
	counts := h.Counts()
	for i, want := range map[int]int64{0: 1, 4: 1, 14: 1, 21: 1} {
		if counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want, counts)
		}
	}
}

// TestNilRegistrySafe pins the nil-safety contract the call sites rely
// on.
func TestNilRegistrySafe(t *testing.T) {
	var r *obs.Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(time.Second)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil registry instruments must read zero")
	}
}

// TestHistogramAccumulators checks Sum/Count against direct observes.
func TestHistogramAccumulators(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	h.Observe(100 * time.Millisecond)
	h.Observe(400 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 500*time.Millisecond {
		t.Fatalf("sum = %v, want 500ms", h.Sum())
	}
	// Same-name lookup returns the same instrument.
	if r.Histogram("h") != h {
		t.Fatal("Histogram lookup not idempotent")
	}
}
