// Package obs is the observability layer of the floorplanning flow:
// span-based tracing with pluggable sinks plus an in-process metrics
// registry (see metrics.go).
//
// The design goal is a zero-overhead default: a nil *Tracer is a valid,
// fully inert tracer — every method is nil-safe and the span hot path
// performs no heap allocations when tracing is disabled, so the solver
// inner loops can stay instrumented unconditionally. Attributes are
// typed (no interface{} boxing) for the same reason.
//
// A Span is a named interval with a start time, a duration fixed at
// End, a parent, and a flat attribute list. Instant events (Span.Event
// / Tracer.Event) are zero-duration points parented to a span. Sinks
// receive exactly one Event per span, emitted at End; sinks that also
// implement StartSink are additionally notified at span start, which is
// how the human-readable debug sink prints progress in chronological
// order. Sinks must be safe for concurrent use: the Freeze and Rotate
// arms of the flow trace into one Tracer from two goroutines.
package obs

import (
	"sync/atomic"
	"time"
)

// attrKind discriminates the typed Attr payload.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
	kindDuration
)

// Attr is one key/value span attribute. Values are stored unboxed;
// construct attrs with String, Int, Int64, Float, Bool, or Duration.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// String returns a string-valued attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindString, s: v} }

// Int returns an integer-valued attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// Int64 returns an integer-valued attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// Float returns a float-valued attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Bool returns a boolean-valued attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.i = 1
	}
	return a
}

// Duration returns a duration-valued attribute (rendered in seconds).
func Duration(key string, v time.Duration) Attr {
	return Attr{Key: key, kind: kindDuration, i: int64(v)}
}

// Value returns the attribute's value boxed as an interface, for sinks
// and tests that prefer uniform handling over the appendJSON fast path.
func (a Attr) Value() interface{} {
	switch a.kind {
	case kindString:
		return a.s
	case kindInt:
		return a.i
	case kindFloat:
		return a.f
	case kindBool:
		return a.i != 0
	case kindDuration:
		return time.Duration(a.i)
	default:
		return nil
	}
}

// Event is what sinks receive: one completed span (Instant false) or
// one instant event (Instant true). Sinks must not retain the Event or
// its Attrs slice after Emit/SpanStart returns.
type Event struct {
	// Name is the span or event name (dotted lowercase taxonomy, e.g.
	// "core.probe").
	Name string
	// ID is unique per tracer; Parent is the enclosing span's ID, 0 for
	// roots.
	ID, Parent uint64
	// Start is the span start (or the instant of an instant event).
	Start time.Time
	// Duration is the span length; 0 for instant events and span-start
	// notifications.
	Duration time.Duration
	// Instant marks a point event rather than a completed span.
	Instant bool
	// Attrs are the attributes (start attrs followed by End attrs).
	Attrs []Attr
}

// Sink consumes trace events. Implementations must be safe for
// concurrent Emit calls and must not retain the event.
type Sink interface {
	Emit(e *Event)
}

// StartSink is an optional Sink extension notified when a span starts
// (with the span's start attrs and zero Duration), letting a sink
// render chronological progress; the matching Emit still follows at
// span End.
type StartSink interface {
	Sink
	SpanStart(e *Event)
}

// Tracer fans spans out to its sinks and carries an optional metrics
// Registry. A nil *Tracer is fully inert; construct live tracers with
// New.
type Tracer struct {
	sinks  []Sink
	starts []StartSink
	reg    *Registry
	ids    atomic.Uint64
}

// New returns a tracer emitting to the given sinks (nil sinks are
// dropped). A tracer with no sinks still works as a metrics carrier
// once WithMetrics is applied; its spans are no-ops.
func New(sinks ...Sink) *Tracer {
	t := &Tracer{}
	for _, s := range sinks {
		if s == nil {
			continue
		}
		t.sinks = append(t.sinks, s)
		if ss, ok := s.(StartSink); ok {
			t.starts = append(t.starts, ss)
		}
	}
	return t
}

// WithMetrics attaches a metrics registry and returns the tracer.
func (t *Tracer) WithMetrics(r *Registry) *Tracer {
	if t != nil {
		t.reg = r
	}
	return t
}

// Registry returns the attached metrics registry; nil when the tracer
// is nil or carries none. A nil *Registry is itself inert, so
// tr.Registry().Counter("x").Add(1) is always safe.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracing reports whether spans are live (at least one sink).
func (t *Tracer) Tracing() bool { return t != nil && len(t.sinks) > 0 }

// Sinks returns the tracer's sinks, for fan-out composition: the job
// server builds per-job tracers that tee into the process-wide sinks
// plus a per-job capture sink. The returned slice is shared — callers
// must not mutate it. Nil-safe.
func (t *Tracer) Sinks() []Sink {
	if t == nil {
		return nil
	}
	return t.sinks
}

// Flusher is the optional sink extension for buffered sinks (JSONLSink
// implements it): Flush writes buffered events through to the
// underlying writer.
type Flusher interface {
	Flush() error
}

// Flush flushes every sink that buffers (implements Flusher), returning
// the first error. Call it on graceful-shutdown paths so buffered trace
// lines are not lost; nil-safe and a no-op for unbuffered sinks.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Span is one traced interval. The zero Span is inert: all methods are
// no-ops and Child propagates the inertness, so disabled tracing
// costs nothing down the call tree.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start begins a root span. With a nil tracer or no sinks it returns
// the inert zero Span without allocating.
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if !t.Tracing() {
		return Span{}
	}
	return t.startSpan(0, name, attrs)
}

// Event emits a root instant event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Tracing() {
		return
	}
	t.emitInstant(0, name, attrs)
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) Span {
	s := Span{tr: t, id: t.ids.Add(1), parent: parent, name: name, start: time.Now()}
	if len(attrs) > 0 {
		// Copy: the caller's variadic slice must not escape, so the
		// disabled path stays allocation-free at every call site.
		s.attrs = append(make([]Attr, 0, len(attrs)+4), attrs...)
	}
	if len(t.starts) > 0 {
		ev := Event{Name: name, ID: s.id, Parent: parent, Start: s.start, Attrs: s.attrs}
		for _, ss := range t.starts {
			ss.SpanStart(&ev)
		}
	}
	return s
}

func (t *Tracer) emitInstant(parent uint64, name string, attrs []Attr) {
	ev := Event{Name: name, ID: t.ids.Add(1), Parent: parent, Start: time.Now(), Instant: true}
	if len(attrs) > 0 {
		ev.Attrs = append(make([]Attr, 0, len(attrs)), attrs...)
	}
	for _, s := range t.sinks {
		s.Emit(&ev)
	}
}

// Active reports whether the span is live (records and emits).
func (s Span) Active() bool { return s.tr != nil }

// Child begins a sub-span. On an inert parent it returns an inert span.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.startSpan(s.id, name, attrs)
}

// Event emits an instant event parented to this span.
func (s Span) Event(name string, attrs ...Attr) {
	if s.tr == nil {
		return
	}
	s.tr.emitInstant(s.id, name, attrs)
}

// End completes the span, appending the given attrs to the start attrs
// and emitting the span's single Event to every sink. End on an inert
// span is a no-op; ending a span twice emits twice (don't).
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	ev := Event{
		Name:     s.name,
		ID:       s.id,
		Parent:   s.parent,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    append(s.attrs, attrs...),
	}
	for _, sink := range s.tr.sinks {
		sink.Emit(&ev)
	}
}
