package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a point-in-time snapshot of one job's solver progress —
// the latest-value record behind the job server's GET /v1/jobs/{id}/progress
// endpoint and the CLI's -progress status line. Layers overwrite only the
// fields they own: core stamps the phase/probe/relax-round group, the
// branch-and-bound solver stamps the node/incumbent group, and the
// terminal fields are stamped exactly once by whoever owns the job's
// lifecycle (the job server, or nobody for library callers).
//
// The struct is a value: readers always see a consistent snapshot, never
// a half-written update.
type Progress struct {
	// Seq increases by one per published update; a reader that polls can
	// detect "no news" by comparing sequence numbers.
	Seq uint64 `json:"seq"`
	// Phase names the flow stage the job is in: "step1", "rotate",
	// "probe", "bnb", "done".
	Phase string `json:"phase,omitempty"`

	// STTarget is the stress budget currently being probed (Step 1 binary
	// search or Step 2.3 relax-and-retry); STProbes and RelaxRounds count
	// Step-1 probes and Algorithm-1 outer iterations so far.
	STTarget    float64 `json:"st_target,omitempty"`
	STProbes    int     `json:"st_probes,omitempty"`
	RelaxRounds int     `json:"relax_rounds,omitempty"`
	// Batch/Batches locate the solve inside the current probe's context
	// batch sweep (1-based; 0 before the first batch).
	Batch   int `json:"batch,omitempty"`
	Batches int `json:"batches,omitempty"`
	// LPSolves/SimplexIters are cumulative solver effort — the monotone
	// "is it moving?" counters.
	LPSolves     int64 `json:"lp_solves,omitempty"`
	SimplexIters int64 `json:"simplex_iters,omitempty"`

	// Branch-and-bound progress (non-zero only when the monolithic MILP
	// solver is exercised): expanded node count, the best integer
	// incumbent found so far, the root relaxation bound, and the relative
	// incumbent/bound gap.
	Nodes        int64   `json:"nodes,omitempty"`
	HasIncumbent bool    `json:"has_incumbent,omitempty"`
	Incumbent    float64 `json:"incumbent,omitempty"`
	Bound        float64 `json:"bound,omitempty"`
	Gap          float64 `json:"gap,omitempty"`

	// Done marks the terminal update; Status carries the outcome
	// ("done", "failed", "canceled" for the job server; a solver status
	// string for library users).
	Done   bool   `json:"done,omitempty"`
	Status string `json:"status,omitempty"`

	// UpdatedUnixMicro is the publish time (microseconds since the Unix
	// epoch), stamped by Update.
	UpdatedUnixMicro int64 `json:"updated_us,omitempty"`
}

// Reporter is a lock-free latest-value progress cell: writers publish
// read-modify-write updates of a Progress snapshot, readers poll Latest
// or block on Watch. There are no queues and no history — an update
// simply replaces the snapshot — so an arbitrarily slow reader costs the
// solver nothing and sees the freshest state when it looks.
//
// A nil *Reporter is fully inert (Update is a no-op that never calls its
// closure, Latest returns the zero Progress), so the solver layers stay
// instrumented unconditionally, mirroring the nil-Tracer contract.
// Safe for concurrent use by any number of writers and readers.
type Reporter struct {
	cur    atomic.Pointer[Progress]
	notify atomic.Pointer[chan struct{}]
}

// NewReporter returns a reporter holding the zero snapshot.
func NewReporter() *Reporter {
	r := &Reporter{}
	r.cur.Store(&Progress{})
	return r
}

// Update publishes a new snapshot: f mutates a private copy of the
// latest one, then the copy is installed with a bumped Seq and a fresh
// timestamp. Concurrent updates linearize via compare-and-swap (f may
// run more than once under contention; it must be a pure function of its
// argument). On a nil reporter Update returns without calling f.
//
// A terminal snapshot (Done set) is final: once published, every later
// Update is dropped, so a job's first outcome — "failed", "canceled" —
// can't be overwritten by a racing late writer publishing "done".
func (r *Reporter) Update(f func(p *Progress)) {
	if r == nil {
		return
	}
	for {
		old := r.cur.Load()
		if old.Done {
			return
		}
		next := *old
		f(&next)
		next.Seq = old.Seq + 1
		next.UpdatedUnixMicro = time.Now().UnixMicro()
		if r.cur.CompareAndSwap(old, &next) {
			// Wake any watchers. Updates with nobody watching see a nil
			// swap and pay nothing beyond it.
			if ch := r.notify.Swap(nil); ch != nil {
				close(*ch)
			}
			return
		}
	}
}

// Latest returns the current snapshot (the zero Progress on a nil
// reporter).
func (r *Reporter) Latest() Progress {
	if r == nil {
		return Progress{}
	}
	return *r.cur.Load()
}

// Watch returns the current snapshot plus a channel that is closed at
// the next update — the blocking primitive behind the SSE stream.
// Spurious wakes are possible (an update racing the subscription closes
// the channel immediately); callers must re-check Seq. On a nil reporter
// the channel is nil, i.e. it never delivers — correct "no updates ever"
// semantics for select loops that also wait on a context.
func (r *Reporter) Watch() (Progress, <-chan struct{}) {
	if r == nil {
		return Progress{}, nil
	}
	for {
		if chp := r.notify.Load(); chp != nil {
			// Read the snapshot after the channel: if an update slipped in
			// between, it either shows in the snapshot or has closed the
			// channel — a spurious wake, never a lost one.
			return *r.cur.Load(), *chp
		}
		ch := make(chan struct{})
		if r.notify.CompareAndSwap(nil, &ch) {
			return *r.cur.Load(), ch
		}
	}
}
