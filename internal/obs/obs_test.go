package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"agingfp/internal/obs"
)

// TestNoopZeroAllocs is the hot-path contract: with tracing disabled
// (nil tracer — the library default), spans, events, and metric lookups
// must not allocate, so the solver inner loops can stay instrumented
// unconditionally.
func TestNoopZeroAllocs(t *testing.T) {
	var tr *obs.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("core.remap", obs.String("mode", "rotate"), obs.Int64("seed", 1))
		probe := sp.Child("core.probe", obs.Float("st_target", 0.5))
		probe.Event("core.probe.round", obs.Int("round", 0), obs.Bool("ok", false))
		probe.End(obs.Bool("ok", true), obs.Duration("dt", time.Millisecond))
		sp.End()
		tr.Event("lp.warm_start", obs.Bool("hit", true), obs.Int("iters", 42))
		tr.Registry().Counter("agingfp_lp_solves_total").Add(1)
		tr.Registry().Gauge("agingfp_phase_seconds").Add(0.25)
		tr.Registry().Histogram("agingfp_probe_seconds").Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("no-op span path allocated %.1f times per run, want 0", allocs)
	}
}

// TestSinklessTracerZeroAllocSpans covers the metrics-only
// configuration: a live registry with no sinks must still keep the
// span path allocation-free.
func TestSinklessTracerZeroAllocSpans(t *testing.T) {
	tr := obs.New().WithMetrics(obs.NewRegistry())
	ctr := tr.Registry().Counter("c")
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("span", obs.Int("i", 3))
		sp.Child("child").End()
		sp.End(obs.Bool("ok", true))
		ctr.Inc()
	})
	if allocs != 0 {
		t.Fatalf("sinkless span path allocated %.1f times per run, want 0", allocs)
	}
	if got := ctr.Value(); got != 201 {
		// AllocsPerRun executes one warm-up run plus the measured runs.
		t.Fatalf("counter = %d, want 201", got)
	}
}

type jsonlLine struct {
	Name    string                 `json:"name"`
	ID      uint64                 `json:"id"`
	Parent  uint64                 `json:"parent"`
	StartUS int64                  `json:"start_us"`
	DurUS   int64                  `json:"dur_us"`
	Instant bool                   `json:"instant"`
	Attrs   map[string]interface{} `json:"attrs"`
}

// TestJSONLRoundTrip drives a nested span tree through the JSONL sink
// and verifies every line parses, IDs are unique, parents resolve, and
// children nest inside their parent's interval.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	tr := obs.New(sink)

	root := tr.Start("root", obs.String("mode", "rotate \"quoted\"\n"))
	probe := root.Child("probe", obs.Float("st", 0.5))
	dive := probe.Child("dive")
	dive.Event("backjump", obs.Int("depth", 3))
	time.Sleep(2 * time.Millisecond)
	dive.End(obs.Int("pins", 7))
	probe.End(obs.Bool("ok", true))
	root.End()
	tr.Event("loose", obs.Duration("dt", 1500*time.Millisecond))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	byID := map[uint64]jsonlLine{}
	byName := map[string]jsonlLine{}
	for _, ln := range lines {
		var ev jsonlLine
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %q does not parse: %v", ln, err)
		}
		if _, dup := byID[ev.ID]; dup {
			t.Fatalf("duplicate id %d", ev.ID)
		}
		byID[ev.ID] = ev
		byName[ev.Name] = ev
	}
	// Parents resolve and children nest within the parent's interval.
	for _, ev := range byID {
		if ev.Parent == 0 {
			continue
		}
		p, ok := byID[ev.Parent]
		if !ok {
			t.Fatalf("%s: parent %d not in trace", ev.Name, ev.Parent)
		}
		if ev.StartUS < p.StartUS {
			t.Errorf("%s starts before parent %s", ev.Name, p.Name)
		}
		if end, pend := ev.StartUS+ev.DurUS, p.StartUS+p.DurUS; end > pend {
			t.Errorf("%s ends at %d, after parent %s at %d", ev.Name, end, p.Name, pend)
		}
	}
	if got := byName["probe"].Parent; got != byName["root"].ID {
		t.Errorf("probe parent = %d, want root id %d", got, byName["root"].ID)
	}
	if got := byName["backjump"]; !got.Instant || got.Parent != byName["dive"].ID {
		t.Errorf("backjump = %+v, want instant child of dive", got)
	}
	if byName["dive"].DurUS < 2000 {
		t.Errorf("dive duration %dus, want >= slept 2000us", byName["dive"].DurUS)
	}
	// Attr round-trips: start attrs and End attrs merge on one event.
	if got := byName["root"].Attrs["mode"]; got != "rotate \"quoted\"\n" {
		t.Errorf("root mode attr = %q", got)
	}
	if got := byName["dive"].Attrs["pins"]; got != float64(7) {
		t.Errorf("dive pins attr = %v", got)
	}
	if got := byName["probe"].Attrs; got["st"] != 0.5 || got["ok"] != true {
		t.Errorf("probe attrs = %v", got)
	}
	if got := byName["loose"].Attrs["dt"]; got != 1.5 {
		t.Errorf("duration attr = %v, want 1.5 (seconds)", got)
	}
}

// TestDebugSinkRendering checks the human-readable sink: chronological
// start/event/end lines, indentation by depth, and attr rendering.
func TestDebugSinkRendering(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewDebugSink(&buf))
	root := tr.Start("core.remap", obs.String("mode", "freeze"))
	p := root.Child("core.probe", obs.Float("st", 0.25))
	p.Event("core.probe.round", obs.Int("round", 0))
	p.End(obs.Bool("ok", true))
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	want := []string{
		"> core.remap mode=freeze",
		"  > core.probe st=0.25",
		"    . core.probe.round round=0",
		"  < core.probe",
		"< core.remap",
	}
	for i, w := range want {
		if !strings.Contains(lines[i], w) {
			t.Errorf("line %d = %q, want it to contain %q", i, lines[i], w)
		}
	}
	if !strings.Contains(lines[3], "ok=true") {
		t.Errorf("span end line %q missing End attr", lines[3])
	}
}

// TestTracerConcurrency exercises two goroutines tracing into one
// tracer (the RemapBoth shape) under -race.
func TestTracerConcurrency(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf), obs.NewDebugSink(&bytes.Buffer{})).WithMetrics(obs.NewRegistry())
	done := make(chan struct{})
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.Start("arm", obs.Int("g", g))
				sp.Child("work", obs.Int("i", i)).End()
				sp.End()
				tr.Registry().Counter("n").Inc()
			}
		}(g)
	}
	<-done
	<-done
	if got := tr.Registry().Counter("n").Value(); got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
}
