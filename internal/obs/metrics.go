package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is an in-process metrics store: monotonic integer counters,
// float gauges, and duration histograms, keyed by Prometheus-style
// names (optionally carrying a label set inline, e.g.
// `agingfp_phase_seconds{phase="step1"}`). Lookups lazily create the
// instrument; WritePrometheus emits a deterministic text-exposition
// snapshot.
//
// Every accessor is nil-safe on both the registry and the returned
// instrument, so call sites never branch on whether metrics are
// enabled: (*Registry)(nil).Counter("x").Add(1) is a cheap no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer. The nil counter is a
// no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float value with last-write-wins Set and atomic Add (the
// latter makes cumulative-seconds gauges safe across goroutines). The
// nil gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: fixed exponential bounds, base 100µs with a
// factor of 2, spanning the flow's interesting range (sub-millisecond
// simplex solves through ~100-second jobs) with two buckets per decade —
// the standard Prometheus exponential-bucket convention, so `le` series
// from different deployments line up and histogram_quantile interpolates
// sanely. 21 finite bounds plus +Inf.
const (
	histBase    = 1e-4 // seconds
	histFactor  = 2.0
	histNBounds = 21
)

var histBounds = func() []float64 {
	b := make([]float64, histNBounds)
	v := histBase
	for i := range b {
		b[i] = v
		v *= histFactor
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram (exponential bounds in
// histBounds, plus +Inf). Observe is lock-free — one atomic add per
// bucket/sum/count — so hot solver paths can record into it directly.
// The nil histogram is a no-op.
type Histogram struct {
	buckets [histNBounds + 1]atomic.Int64 // last is +Inf
	sumNs   atomic.Int64
	count   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	i := 0
	for i < len(histBounds) && sec > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Counts returns the per-bucket observation counts (not cumulative),
// one entry per finite bound plus a final +Inf bucket. Nil-safe.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, histNBounds+1)
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Bounds returns the finite bucket upper bounds in seconds (a copy).
func Bounds() []float64 { return append([]float64(nil), histBounds...) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// baseName strips an inline label set from a metric name:
// `x{label="v"}` -> `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeledName splices extra label text (`k="v"` form, no braces) into a
// metric name that may already carry an inline label set.
func labeledName(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// Labeled attaches one label to a metric name in the registry's inline
// convention: Labeled("x_total", "reason", "singular") is
// `x_total{reason="singular"}`. Instrument layers use it to key one
// Counter per label value while WritePrometheus still groups the family
// under a single # TYPE line.
func Labeled(name, key, value string) string {
	return labeledName(name, key+`="`+value+`"`)
}

// WritePrometheus writes a text-exposition snapshot of every
// instrument, sorted by name with one # TYPE line per metric family.
// Counter values are integers; gauge values and histogram sums are
// floats in seconds where the instrument measures time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type entry struct {
		name string
		emit func(io.Writer) error
	}
	var entries []entry
	for name, c := range r.counters {
		c := c
		entries = append(entries, entry{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
			return err
		}})
	}
	for name, g := range r.gauges {
		g, name := g, name
		entries = append(entries, entry{name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %g\n", name, g.Value())
			return err
		}})
	}
	for name, h := range r.hists {
		h, name := h, name
		entries = append(entries, entry{name, func(w io.Writer) error {
			cum := int64(0)
			for i := range histBounds {
				cum += h.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n",
					labeledName(baseName(name)+"_bucket", fmt.Sprintf(`le="%g"`, histBounds[i])), cum); err != nil {
					return err
				}
			}
			cum += h.buckets[len(histBounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n",
				labeledName(baseName(name)+"_bucket", `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n", baseName(name), h.Sum().Seconds()); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count %d\n", baseName(name), h.Count())
			return err
		}})
	}
	types := map[string]string{}
	for name := range r.counters {
		types[baseName(name)] = "counter"
	}
	for name := range r.gauges {
		types[baseName(name)] = "gauge"
	}
	for name := range r.hists {
		types[baseName(name)] = "histogram"
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	lastFamily := ""
	for _, e := range entries {
		if fam := baseName(e.name); fam != lastFamily {
			lastFamily = fam
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, types[fam]); err != nil {
				return err
			}
		}
		if err := e.emit(w); err != nil {
			return err
		}
	}
	return nil
}
