package serve

import "net/http"

// openAPIVersion is the spec revision served at /v1/openapi.json. Bump
// it when the API surface changes.
const openAPIVersion = "1.2.0"

// openAPIDocument assembles the OpenAPI 3 description from the route
// table plus the hand-maintained schema section. Paths come from the
// table (the same source the mux is wired from), so the spec cannot
// name a route that does not exist; TestOpenAPICoversRoutes checks the
// converse — every table row must round-trip through the served spec.
func (s *Server) openAPIDocument() map[string]interface{} {
	paths := map[string]interface{}{}
	for _, rt := range s.routes() {
		p, _ := paths[rt.Pattern].(map[string]interface{})
		if p == nil {
			p = map[string]interface{}{}
			paths[rt.Pattern] = p
		}
		op := map[string]interface{}{
			"summary":   rt.Summary,
			"responses": responsesFor(rt),
		}
		switch rt.Method {
		case "POST":
			p["post"] = op
		case "DELETE":
			p["delete"] = op
		default:
			p["get"] = op
		}
	}
	return map[string]interface{}{
		"openapi": "3.0.3",
		"info": map[string]interface{}{
			"title":       "agingfloord",
			"description": "MILP-based aging-aware floorplanning service for multi-context CGRRA fabrics",
			"version":     openAPIVersion,
		},
		"paths": paths,
		"components": map[string]interface{}{
			"schemas": openAPISchemas(),
		},
	}
}

// responsesFor lists the status codes each route can answer with. All
// error responses share the ErrorBody envelope.
func responsesFor(rt route) map[string]interface{} {
	errRef := map[string]interface{}{
		"description": "error envelope",
		"content": map[string]interface{}{
			"application/json": map[string]interface{}{
				"schema": ref("Error"),
			},
		},
	}
	out := map[string]interface{}{}
	switch {
	case rt.Method == "POST":
		out["202"] = okJSON("Snapshot")
		out["400"] = errRef
		out["503"] = errRef
		if rt.Pattern == "/v1/jobs/{id}/delta" {
			out["404"] = errRef
			out["409"] = errRef
		}
	case rt.Method == "DELETE":
		out["200"] = okJSON("Snapshot")
		out["404"] = errRef
	case rt.Pattern == "/v1/jobs/{id}/result":
		out["200"] = okJSON("JobResult")
		out["404"] = errRef
		out["409"] = errRef
	case rt.Pattern == "/v1/jobs/{id}":
		out["200"] = okJSON("Snapshot")
		out["404"] = errRef
	case rt.Pattern == "/v1/slo":
		out["200"] = okJSON("SLOStatus")
		out["404"] = errRef
	default:
		out["200"] = map[string]interface{}{"description": "success"}
	}
	return out
}

func ref(name string) map[string]interface{} {
	return map[string]interface{}{"$ref": "#/components/schemas/" + name}
}

func okJSON(schema string) map[string]interface{} {
	return map[string]interface{}{
		"description": "success",
		"content": map[string]interface{}{
			"application/json": map[string]interface{}{"schema": ref(schema)},
		},
	}
}

// openAPISchemas declares the wire documents clients program against.
// Property lists are hand-maintained; the structural details live in
// the Go types' doc comments.
func openAPISchemas() map[string]interface{} {
	obj := func(props ...string) map[string]interface{} {
		m := map[string]interface{}{}
		for _, p := range props {
			m[p] = map[string]interface{}{}
		}
		return map[string]interface{}{"type": "object", "properties": m}
	}
	return map[string]interface{}{
		"JobRequest":   obj("bench", "design", "mode", "seed", "time_limit_ms", "deadline_ms", "tenant"),
		"DeltaRequest": obj("design", "mode", "seed", "time_limit_ms", "deadline_ms", "tenant"),
		"Snapshot": obj("id", "trace_id", "tenant", "state", "error", "solve_kind", "base_job",
			"delta_fallback", "reuse", "cost", "submitted", "started", "finished"),
		"Cost": obj("tier", "queue_wait_ms", "solve_ms", "lp_solves", "simplex_iters",
			"ilp_nodes", "st_probes", "phase_ms"),
		"SLOStatus": obj("window", "since", "until", "objectives"),
		"JobResult": obj("design", "ops", "contexts", "status", "improved", "st_target",
			"st_lower_bound", "orig_max_stress", "new_max_stress", "orig_cpd_ns",
			"new_cpd_ns", "mttf", "stats", "mapping"),
		"Error": map[string]interface{}{
			"type": "object",
			"properties": map[string]interface{}{
				"error": obj("code", "message", "trace_id"),
			},
		},
	}
}

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.openAPIDocument())
}
