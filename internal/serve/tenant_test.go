package serve_test

// Tenant accounting, per-job cost attribution, and the SLO endpoint —
// the multi-tenant observability surface, driven end-to-end over HTTP.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"agingfp/internal/serve"
	"agingfp/internal/slo"
	"agingfp/internal/telemetry"
)

// postJobAs submits a raw body under an explicit X-Tenant header and
// returns the snapshot, status code, and response headers.
func postJobAs(t *testing.T, hs *httptest.Server, tenant, body string) (serve.Snapshot, int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return snap, resp.StatusCode, resp.Header
}

// TestTenantEchoValidationAndCost covers the identity plumbing on one
// job's round trip: the X-Tenant header rides into the snapshot and
// response headers, absence defaults to "anon", garbage is a 400, and
// every terminal job carries a cost block whose tier matches how the
// answer was produced.
func TestTenantEchoValidationAndCost(t *testing.T) {
	p := openPipeline(t, telemetry.Config{Dir: t.TempDir()})
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p})

	snap, code, _ := postJobAs(t, hs, "team-a", `{"bench": "B1", "seed": 71}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if snap.Tenant != "team-a" {
		t.Fatalf("snapshot tenant = %q, want team-a", snap.Tenant)
	}
	final := waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)
	if final.Tenant != "team-a" {
		t.Fatalf("final snapshot tenant = %q, want team-a", final.Tenant)
	}
	if final.Cost == nil {
		t.Fatal("terminal job lacks a cost block")
	}
	if final.Cost.Tier != "cold" || final.Cost.SolveMs <= 0 {
		t.Fatalf("cold cost = tier %q solve %gms, want cold/>0", final.Cost.Tier, final.Cost.SolveMs)
	}
	if final.Cost.SimplexIters <= 0 || final.Cost.LPSolves <= 0 {
		t.Fatalf("cold cost lacks solver effort: %+v", final.Cost)
	}

	// The status GET echoes the tenant as a response header alongside
	// the trace id.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get("X-Tenant"); got != "team-a" {
		t.Fatalf("status response X-Tenant = %q, want team-a", got)
	}

	// Same bytes, different tenant: served from cache (tenant is
	// delivery metadata, not solve identity), with a zero-cost hit tier.
	hit, code, _ := postJobAs(t, hs, "team-b", `{"bench": "B1", "seed": 71}`)
	if code != http.StatusAccepted || hit.State != serve.StateDone {
		t.Fatalf("cross-tenant resubmit: HTTP %d state %q, want a cache hit", code, hit.State)
	}
	if hit.Tenant != "team-b" {
		t.Fatalf("hit tenant = %q, want team-b", hit.Tenant)
	}
	if hit.Cost == nil || hit.Cost.Tier != "exact_hit" || hit.Cost.SolveMs != 0 {
		t.Fatalf("cache-hit cost = %+v, want tier exact_hit with zero solve time", hit.Cost)
	}

	// No header: accounted as anon.
	anon, _ := postJob(t, hs, `{"bench": "B1", "seed": 71}`)
	if anon.Tenant != serve.DefaultTenant {
		t.Fatalf("anonymous tenant = %q, want %q", anon.Tenant, serve.DefaultTenant)
	}

	// Identity charset is bounded: spaces are a validation error.
	if _, code, _ := postJobAs(t, hs, "bad tenant!", `{"bench": "B1"}`); code != http.StatusBadRequest {
		t.Fatalf("invalid tenant: HTTP %d, want 400", code)
	}

	// The per-tenant stats view exists and counted team-a's solve.
	var tw telemetry.TenantWindow
	if code := getJSON(t, hs.URL+"/v1/stats?tenant=team-a", &tw); code != http.StatusOK {
		t.Fatalf("/v1/stats?tenant=: HTTP %d", code)
	}
	if tw.Tenant != "team-a" || tw.Summary.Jobs != 1 || tw.Summary.Solved != 1 {
		t.Fatalf("team-a window = %+v, want 1 job / 1 solved", tw)
	}
}

// TestSLOEndToEnd wires the engine the way agingfloord does — as a
// telemetry observer — and checks the full loop: real traffic lands in
// /v1/slo with a healthy budget, the dash renders the panel, and a
// synthetic failure burst flips both windows of the fast and slow
// burn-rate pairs with the objective named in the alert log.
func TestSLOEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	engine := slo.New([]slo.Objective{slo.Availability(0.99)}, slo.Config{Logger: logger})
	p := openPipeline(t, telemetry.Config{
		Dir:       t.TempDir(),
		Observers: []func(*telemetry.SolveEvent){engine.Record},
	})
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p, SLO: engine})

	snap, _ := postJob(t, hs, `{"bench": "B1", "seed": 81}`)
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)
	if hit, _ := postJob(t, hs, `{"bench": "B1", "seed": 81}`); hit.State != serve.StateDone {
		t.Fatalf("resubmit not a cache hit: %q", hit.State)
	}

	cl := testClient(hs)
	st, err := cl.SLO(context.Background(), "")
	if err != nil {
		t.Fatalf("SLO: %v", err)
	}
	if len(st.Objectives) != 1 || st.Objectives[0].Name != "availability" {
		t.Fatalf("objectives = %+v, want one availability objective", st.Objectives)
	}
	avail := st.Objectives[0]
	// Both the solve and the cache hit are availability-eligible.
	if avail.Eligible < 2 || avail.Good != avail.Eligible {
		t.Fatalf("eligible/good = %d/%d, want >=2 all-good", avail.Eligible, avail.Good)
	}
	if avail.SLI != 1 || avail.ErrorBudgetRemaining != 1 || avail.Alerting {
		t.Fatalf("healthy status = SLI %v budget %v alerting %v, want 1/1/false",
			avail.SLI, avail.ErrorBudgetRemaining, avail.Alerting)
	}

	// Window parameter parses; garbage is a 400.
	if _, err := cl.SLO(context.Background(), "30m"); err != nil {
		t.Fatalf("SLO windowed: %v", err)
	}
	if code := getJSON(t, hs.URL+"/v1/slo?window=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad window: HTTP %d, want 400", code)
	}

	// The dash grows an SLO panel when the engine is wired.
	resp, err := http.Get(hs.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	dash, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(dash), "Service-level objectives") {
		t.Fatalf("dash lacks the SLO panel:\n%.400s", dash)
	}

	// Failure burst through the pipeline (the production event path):
	// enough budget burn to trip both windows of both pairs.
	for i := 0; i < 25; i++ {
		p.Record(&telemetry.SolveEvent{
			Time: time.Now(), Source: telemetry.SourceServe,
			JobID: fmt.Sprintf("burst-%03d", i), Bench: "B1",
			Status: "failed", ElapsedMs: 50, Error: "synthetic",
		})
	}
	st, err = cl.SLO(context.Background(), "")
	if err != nil {
		t.Fatalf("SLO after burst: %v", err)
	}
	avail = st.Objectives[0]
	if !avail.FastAlert || !avail.SlowAlert || !avail.Alerting {
		t.Fatalf("post-burst alerts fast/slow = %v/%v, want both firing", avail.FastAlert, avail.SlowAlert)
	}
	if avail.ErrorBudgetRemaining >= 1 {
		t.Fatalf("post-burst budget = %v, want burned", avail.ErrorBudgetRemaining)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "SLO burn-rate alert") || !strings.Contains(logs, "slo=availability") {
		t.Fatalf("alert log missing the objective name:\n%s", logs)
	}
}

func TestSLOWithoutEngine404s(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	if code := getJSON(t, hs.URL+"/v1/slo", nil); code != http.StatusNotFound {
		t.Fatalf("/v1/slo without engine: HTTP %d, want 404", code)
	}
}

// TestTenantCardinalityCapMetrics proves the label-set bound: tenants
// are client-controlled strings, so past the cap they roll up into
// "other" and /metrics never grows more than cap+1 tenant labels.
func TestTenantCardinalityCapMetrics(t *testing.T) {
	p := openPipeline(t, telemetry.Config{Dir: t.TempDir(), TenantCap: 2})
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p, TenantCap: 2})

	// One cold solve, then the same bytes under a parade of identities —
	// cheap cache hits, each minted under a fresh tenant.
	first, code, _ := postJobAs(t, hs, "t1", `{"bench": "B1", "seed": 91}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, first.ID, serve.StateDone, 30*time.Second)
	for _, tenant := range []string{"t2", "t3", "t4", "t5"} {
		hit, code, _ := postJobAs(t, hs, tenant, `{"bench": "B1", "seed": 91}`)
		if code != http.StatusAccepted || hit.State != serve.StateDone {
			t.Fatalf("hit under %s: HTTP %d state %q", tenant, code, hit.State)
		}
		// The raw identity still rides the job snapshot even when the
		// metrics label rolled up.
		if hit.Tenant != tenant {
			t.Fatalf("snapshot tenant = %q, want %q", hit.Tenant, tenant)
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	labels := map[string]bool{}
	for _, m := range regexp.MustCompile(`agingfp_tenant_[a-z_]+{[^}]*tenant="([^"]+)"`).FindAllStringSubmatch(string(metrics), -1) {
		labels[m[1]] = true
	}
	if len(labels) == 0 {
		t.Fatal("no tenant-labeled metrics exported")
	}
	if !labels[telemetry.TenantOther] {
		t.Fatalf("rollup label missing; exported tenants: %v", labels)
	}
	if len(labels) > 3 { // cap(2) + "other"
		t.Fatalf("tenant label cardinality = %d (%v), want <= cap+1 = 3", len(labels), labels)
	}

	// The windowed stats view is bounded the same way: t4's jobs are
	// accounted under "other", not under t4.
	var st telemetry.WindowStats
	if code := getJSON(t, hs.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("/v1/stats: HTTP %d", code)
	}
	if len(st.Tenants) > 3 {
		t.Fatalf("stats tenant cardinality = %d (%v), want <= 3", len(st.Tenants), st.Tenants)
	}
	if st.Tenants[telemetry.TenantOther].Jobs < 2 {
		t.Fatalf("rollup bucket jobs = %d, want the over-cap tenants' traffic", st.Tenants[telemetry.TenantOther].Jobs)
	}
}

// TestMixedTenantAccountingExact runs concurrent cold solves under
// three tenants and checks the books balance exactly: per-tenant job
// counts and solver-effort sums must add up to the aggregate (sketch
// sums are exact, so this is equality, not approximation).
func TestMixedTenantAccountingExact(t *testing.T) {
	p := openPipeline(t, telemetry.Config{Dir: t.TempDir()})
	_, hs, _ := testServer(t, serve.Config{Workers: 2, Telemetry: p})

	tenants := []string{"team-a", "team-b", "team-c"}
	const jobsPer = 2
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*jobsPer)
	for ti, tenant := range tenants {
		for j := 0; j < jobsPer; j++ {
			wg.Add(1)
			go func(tenant string, seed int64) {
				defer wg.Done()
				cl := testClient(hs)
				cl.Tenant = tenant
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				snap, err := cl.Submit(ctx, &serve.JobRequest{Bench: "B1", Seed: seed})
				if err != nil {
					errs <- err
					return
				}
				final, err := cl.Wait(ctx, snap.ID)
				if err != nil {
					errs <- err
					return
				}
				if final.State != serve.StateDone {
					errs <- fmt.Errorf("job %s under %s: state %q (%s)", snap.ID, tenant, final.State, final.Error)
				}
			}(tenant, int64(100+ti*jobsPer+j)) // distinct seeds: every solve is cold
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var st telemetry.WindowStats
	if code := getJSON(t, hs.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("/v1/stats: HTTP %d", code)
	}
	if st.Jobs != int64(len(tenants)*jobsPer) {
		t.Fatalf("aggregate jobs = %d, want %d", st.Jobs, len(tenants)*jobsPer)
	}
	var jobs int64
	var iters, solveMs float64
	for _, tenant := range tenants {
		b, ok := st.Tenants[tenant]
		if !ok {
			t.Fatalf("stats missing tenant %s: %v", tenant, st.Tenants)
		}
		if b.Jobs != jobsPer || b.Solved != jobsPer {
			t.Fatalf("%s jobs/solved = %d/%d, want %d/%d", tenant, b.Jobs, b.Solved, jobsPer, jobsPer)
		}
		jobs += b.Jobs
		iters += b.SimplexItersTotal
		solveMs += b.SolveMsTotal
	}
	if jobs != st.Jobs {
		t.Fatalf("per-tenant job sum = %d, aggregate %d", jobs, st.Jobs)
	}
	if iters <= 0 || math.Abs(iters-st.Total.SimplexItersTotal) > 1e-6 {
		t.Fatalf("per-tenant simplex-iteration sum = %v, aggregate %v", iters, st.Total.SimplexItersTotal)
	}
	if solveMs <= 0 || math.Abs(solveMs-st.Total.SolveMsTotal) > 1e-6 {
		t.Fatalf("per-tenant solve-time sum = %v, aggregate %v", solveMs, st.Total.SolveMsTotal)
	}
}
