package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/obs"
	"agingfp/internal/serve"
	"agingfp/internal/serve/client"
)

// testServer wires a serve.Server into an httptest listener, builds a
// typed client against it, and tears everything down with the test.
func testServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Registry = reg
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Drain()
	})
	return s, hs, reg
}

// testClient builds the typed client the e2e tests drive the API with.
func testClient(hs *httptest.Server) *client.Client {
	cl := client.New(hs.URL, hs.Client())
	cl.PollInterval = 5 * time.Millisecond
	return cl
}

// postJob submits a raw body over plain HTTP — kept raw (not the typed
// client) so the validation tests can send malformed JSON.
func postJob(t *testing.T, hs *httptest.Server, body string) (serve.Snapshot, int) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return snap, resp.StatusCode
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// waitState polls the job through the typed client until it reaches
// want (or any terminal state) and returns the final snapshot.
func waitState(t *testing.T, hs *httptest.Server, id string, want serve.JobState, timeout time.Duration) serve.Snapshot {
	t.Helper()
	cl := testClient(hs)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		snap, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatalf("status poll: %v", err)
		}
		if snap.State == want {
			return snap
		}
		switch snap.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			t.Fatalf("job %s reached terminal state %q, want %q (err: %s)", id, snap.State, want, snap.Error)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s stuck in %q, want %q", id, snap.State, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// slowDocument returns a workload big enough that the solve takes
// minutes — the cancellation and drain tests interrupt it long before
// that. Built once; Synthesize is cheap, it is the solve that is slow.
var slowDocument = sync.OnceValue(func() string {
	d, err := bench.Synthesize(bench.Spec{
		Name: "slowpoke", Contexts: 8, Fabric: arch.Fabric{W: 12, H: 12},
		TotalOps: 900, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	doc, err := json.Marshal(arch.ToDocument(d, nil))
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf(`{"design": %s}`, doc)
})

func TestJobLifecycle(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if snap.State != serve.StateQueued && snap.State != serve.StateDone {
		t.Fatalf("fresh job state %q", snap.State)
	}

	// Result before completion must 409 (unless the tiny job already
	// finished, in which case the lifecycle collapsed legitimately).
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("early result: HTTP %d", resp.StatusCode)
	}

	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)

	cl := testClient(hs)
	_, res, err := cl.Result(context.Background(), snap.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Design != "B1" {
		t.Fatalf("result design %q", res.Design)
	}
	if res.Status != "feasible" && res.Status != "optimal" {
		t.Fatalf("result status %q", res.Status)
	}
	if res.MTTF.Increase <= 0 || res.MTTF.BeforeHours <= 0 {
		t.Fatalf("implausible MTTF report: %+v", res.MTTF)
	}
	if len(res.Mapping) == 0 {
		t.Fatal("empty mapping in result")
	}

	// Unknown job ids surface as a typed not_found APIError.
	if _, err := cl.Job(context.Background(), "job-999999"); err == nil {
		t.Fatal("unknown job: want error")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Status != http.StatusNotFound || apiErr.Code != serve.CodeNotFound {
		t.Fatalf("unknown job error: %v", err)
	}
}

func TestCacheHitByteIdentical(t *testing.T) {
	_, hs, reg := testServer(t, serve.Config{Workers: 1})

	first, code := postJob(t, hs, `{"bench": "B1", "seed": 11}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, first.ID, serve.StateDone, 30*time.Second)

	// Identical content in a different field order and spacing must hit
	// the cache: the key hashes the canonicalized request.
	second, code := postJob(t, hs, `{ "seed": 11, "bench": "B1" }`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	if second.State != serve.StateDone {
		t.Fatalf("cache hit not served instantly: state %q", second.State)
	}
	if got := reg.Counter(`agingfp_serve_cache_hits_total`).Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	cl := testClient(hs)
	read := func(id string) []byte {
		raw, _, err := cl.Result(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := read(first.ID), read(second.ID)
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed result differs from original:\n%s\nvs\n%s", a, b)
	}

	// A different seed is a different workload.
	third, code := postJob(t, hs, `{"bench": "B1", "seed": 12}`)
	if code != http.StatusAccepted {
		t.Fatalf("third submit: HTTP %d", code)
	}
	if third.State == serve.StateDone {
		t.Fatal("different seed must not hit the cache")
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, slowDocument())
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateRunning, 10*time.Second)

	cl := testClient(hs)
	start := time.Now()
	if _, err := cl.Cancel(context.Background(), snap.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	// The solver must unwind cooperatively well before the solve would
	// finish (the workload runs for minutes uncanceled).
	got := waitState(t, hs, snap.ID, serve.StateCanceled, 15*time.Second)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if got.Error == "" {
		t.Fatal("canceled job should record the cancellation cause")
	}

	// Result for a canceled job is an error, not a document.
	if _, _, err := cl.Result(context.Background(), snap.ID); err == nil {
		t.Fatal("canceled job served a result")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	running, code := postJob(t, hs, slowDocument())
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	queued, code := postJob(t, hs, `{"bench": "B3"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", code)
	}

	cl := testClient(hs)
	if _, err := cl.Cancel(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, hs, queued.ID, serve.StateCanceled, 5*time.Second)

	// Unblock the worker so Cleanup's Drain stays fast.
	if _, err := cl.Cancel(context.Background(), running.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	body := strings.Replace(slowDocument(), `{"design"`, `{"deadline_ms": 300, "design"`, 1)
	snap, code := postJob(t, hs, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	got := waitState(t, hs, snap.ID, serve.StateFailed, 30*time.Second)
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("deadline job error %q", got.Error)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	for _, body := range []string{
		`{}`,                                    // neither bench nor design
		`{"bench": "B1", "design": {}}`,         // both
		`{"bench": "B99"}`,                      // unknown benchmark
		`{"bench": "B1", "mode": "sideways"}`,   // unknown mode
		`{"bench": "B1", "deadline_ms": -4}`,    // negative deadline
		`{"bench": "B1", "time_limit_ms": -10}`, // negative solver budget
		`not json`,
	} {
		if _, code := postJob(t, hs, body); code != http.StatusBadRequest {
			t.Errorf("submit %s: HTTP %d, want 400", body, code)
		}
	}
}

func TestQueueFullAndDrain(t *testing.T) {
	s, hs, _ := testServer(t, serve.Config{Workers: 1, QueueDepth: 1, DrainTimeout: time.Second})

	running, code := postJob(t, hs, slowDocument())
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, running.ID, serve.StateRunning, 10*time.Second)
	if _, code := postJob(t, hs, `{"bench": "B4"}`); code != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d", code)
	}
	// Over capacity: a 503 that tells the client when to come back. The
	// hint is queue depth scaled by observed solve time, clamped to at
	// least one second, so it must parse as a positive integer.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(`{"bench": "B5"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: HTTP %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("503 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Drain force-cancels the slow job after DrainTimeout and must
	// return promptly (bounded well below the solve's natural runtime).
	start := time.Now()
	s.Drain()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
	if _, code := postJob(t, hs, `{"bench": "B6"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: HTTP %d, want 503", code)
	}
	final := waitState(t, hs, running.ID, serve.StateCanceled, 5*time.Second)
	if final.State != serve.StateCanceled {
		t.Fatalf("drained job state %q", final.State)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if code := getJSON(t, hs.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if health.Status != "ok" || health.Draining {
		t.Fatalf("healthz: %+v", health)
	}

	snap, _ := postJob(t, hs, `{"bench": "B1"}`)
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"agingfp_serve_jobs_submitted_total 1",
		`agingfp_serve_jobs_total{state="done"} 1`,
		"agingfp_serve_cache_misses_total 1",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, b)
		}
	}
}

// TestDrainLeavesNoWorkers exercises the bare server (no HTTP): after a
// drain the worker goroutines must be gone — the job-server lifecycle
// owns its goroutines completely.
func TestDrainLeavesNoWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	s := serve.New(serve.Config{Workers: 4, DrainTimeout: time.Second})
	if _, err := s.Submit(&serve.JobRequest{Bench: "B1"}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines: %d before, %d after drain", before, got)
	}
}
