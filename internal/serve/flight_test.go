package serve_test

import (
	"agingfp/internal/serve"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"agingfp/internal/flight"
)

// TestReportEndpoint is the end-to-end check for the flight-recorder
// surface: a solved job serves its report as JSON, text, and raw
// journal; bad formats 400; unknown jobs 404; and the report survives a
// drain (the journal belongs to the job record, not the worker).
func TestReportEndpoint(t *testing.T) {
	s, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, `{"bench": "B1", "seed": 21}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)

	var rep flight.Report
	if code := getJSON(t, hs.URL+"/v1/jobs/"+snap.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	if rep.Schema != flight.ReportSchema {
		t.Fatalf("report schema %q, want %q", rep.Schema, flight.ReportSchema)
	}
	if rep.Summary.RelaxIterations < 1 {
		t.Fatalf("report shows %d relax iterations, want >= 1", rep.Summary.RelaxIterations)
	}

	get := func(url string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), b
	}

	code, ctype, body := get(hs.URL + "/v1/jobs/" + snap.ID + "/report?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), "flight report") {
		t.Fatalf("text report: HTTP %d, content-type %q, body %q", code, ctype, body)
	}

	code, _, body = get(hs.URL + "/v1/jobs/" + snap.ID + "/report?format=journal")
	if code != http.StatusOK {
		t.Fatalf("journal: HTTP %d", code)
	}
	j, err := flight.ReadJournal(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("journal does not round-trip: %v", err)
	}
	if len(j.Events) == 0 {
		t.Fatal("journal has no events")
	}

	if code, _, _ := get(hs.URL + "/v1/jobs/" + snap.ID + "/report?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: HTTP %d, want 400", code)
	}
	if code, _, _ := get(hs.URL + "/v1/jobs/job-999999/report"); code != http.StatusNotFound {
		t.Fatalf("unknown job report: HTTP %d, want 404", code)
	}

	// A cache hit never ran a solve, so it has no journal: 404, not an
	// empty report.
	hit, code := postJob(t, hs, `{"seed": 21, "bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	if hit.State != serve.StateDone {
		t.Fatalf("expected instant cache hit, state %q", hit.State)
	}
	if code, _, _ := get(hs.URL + "/v1/jobs/" + hit.ID + "/report"); code != http.StatusNotFound {
		t.Fatalf("cache-hit report: HTTP %d, want 404", code)
	}

	// Drain parks the workers; completed jobs keep serving their reports.
	s.Drain()
	if code, _, _ := get(hs.URL + "/v1/jobs/" + snap.ID + "/report"); code != http.StatusOK {
		t.Fatalf("report after drain: HTTP %d, want 200", code)
	}
}

// TestReportDisabled pins the opt-out: a negative FlightEvents bound
// attaches no recorder, and the endpoint 404s even for solved jobs.
func TestReportDisabled(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1, FlightEvents: -1})

	snap, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)
	if code := getJSON(t, hs.URL+"/v1/jobs/"+snap.ID+"/report", nil); code != http.StatusNotFound {
		t.Fatalf("report with recording disabled: HTTP %d, want 404", code)
	}
}

// TestVersionEndpoint pins /v1/version: always 200, always a parseable
// build-identity document with at least the Go version populated.
func TestVersionEndpoint(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	resp, err := http.Get(hs.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: HTTP %d", resp.StatusCode)
	}
	var v struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" {
		t.Fatal("version document has no go_version")
	}
}
