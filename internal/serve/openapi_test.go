package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestOpenAPICoversRoutes walks the route table and the served spec in
// both directions: every registered route must appear in the OpenAPI
// document with the right method, and the document must not advertise
// operations that are not in the table. This is the drift guard the
// hand-maintained spec relies on.
func TestOpenAPICoversRoutes(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("openapi: HTTP %d", resp.StatusCode)
	}
	var spec struct {
		OpenAPI string                                `json:"openapi"`
		Info    struct{ Version string }              `json:"info"`
		Paths   map[string]map[string]json.RawMessage `json:"paths"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.OpenAPI == "" || spec.Info.Version == "" {
		t.Fatalf("spec missing identity: openapi=%q version=%q", spec.OpenAPI, spec.Info.Version)
	}

	methodKey := map[string]string{"GET": "get", "POST": "post", "DELETE": "delete"}
	inTable := map[string]bool{}
	for _, rt := range s.routes() {
		key, ok := methodKey[rt.Method]
		if !ok {
			t.Fatalf("route %s %s uses a method the spec walker does not know", rt.Method, rt.Pattern)
		}
		inTable[rt.Pattern+" "+key] = true
		ops, ok := spec.Paths[rt.Pattern]
		if !ok {
			t.Errorf("spec missing path %s", rt.Pattern)
			continue
		}
		if _, ok := ops[key]; !ok {
			t.Errorf("spec path %s missing %s operation", rt.Pattern, rt.Method)
		}
	}
	for path, ops := range spec.Paths {
		for method := range ops {
			if !inTable[path+" "+method] {
				t.Errorf("spec advertises %s %s, which is not a registered route", method, path)
			}
		}
	}

	// The mux must actually serve every GET route the table declares
	// with something other than 404-from-the-mux (handler-level 404s
	// for missing jobs are fine; a mux miss would be text/plain 404
	// "404 page not found").
	for _, rt := range s.routes() {
		if rt.Method != "GET" {
			continue
		}
		probe := rt.Pattern
		if probe == "/v1/jobs/{id}" || len(probe) > len("/v1/jobs/{id}") && probe[:len("/v1/jobs/{id}")] == "/v1/jobs/{id}" {
			continue // job routes need a live job; covered elsewhere
		}
		resp, err := http.Get(hs.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound && resp.Header.Get("Content-Type") == "text/plain; charset=utf-8" {
			t.Errorf("route %s is in the table but the mux does not serve it", probe)
		}
	}
}
