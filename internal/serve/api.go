package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/buildinfo"
	"agingfp/internal/canon"
	"agingfp/internal/core"
	"agingfp/internal/flight"
	"agingfp/internal/nbti"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/slo"
	"agingfp/internal/telemetry"
	"agingfp/internal/thermal"
)

// JobRequest is one floorplanning submission. Exactly one of Bench and
// Design selects the workload; the remaining fields tune the solver.
type JobRequest struct {
	// Bench names a built-in Table-I benchmark (B1..B27).
	Bench string `json:"bench,omitempty"`
	// Design is an inline design document (the same schema agingfloor
	// -save writes). A mapping named "baseline" is used as the starting
	// floorplan when present; otherwise the server places one.
	Design *arch.Document `json:"design,omitempty"`
	// Mode selects the re-mapping arm: "rotate" (default) or "freeze".
	Mode string `json:"mode,omitempty"`
	// Seed fixes the solver's random stream (0 keeps the default, which
	// for Bench workloads is the spec's published seed).
	Seed int64 `json:"seed,omitempty"`
	// TimeLimitMs bounds each ST_target probe (0 keeps the default).
	TimeLimitMs int64 `json:"time_limit_ms,omitempty"`
	// DeadlineMs bounds the whole job wall-clock, queue wait included
	// (0 uses the server default). The deadline is delivery policy, not
	// workload identity, so it is excluded from the result-cache key.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Tenant is the accounting identity the job runs under ("" defaults
	// to "anon"; the X-Tenant request header overrides this field). Like
	// the deadline it is delivery metadata, not workload identity, so it
	// is excluded from the result-cache key — two tenants submitting the
	// same design share the cached result.
	Tenant string `json:"tenant,omitempty"`
}

// RequestError reports a submission the server refuses outright
// (malformed design, unknown benchmark, invalid options). The HTTP
// layer maps it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// options expands the request knobs into validated solver options.
func (r *JobRequest) options() (core.Options, error) {
	opts := core.DefaultOptions()
	switch r.Mode {
	case "", "rotate":
		opts.Mode = core.Rotate
	case "freeze":
		opts.Mode = core.Freeze
	default:
		return opts, badRequest("serve: unknown mode %q (want freeze or rotate)", r.Mode)
	}
	if r.Seed != 0 {
		opts.Seed = r.Seed
	}
	if r.TimeLimitMs != 0 {
		opts.TimeLimit = time.Duration(r.TimeLimitMs) * time.Millisecond
	}
	if r.DeadlineMs < 0 {
		return opts, badRequest("serve: negative deadline_ms %d", r.DeadlineMs)
	}
	// Fail fast with the solver's own diagnostics before any work is
	// queued (negative time limits land here).
	if err := opts.Validate(); err != nil {
		return opts, badRequest("%v", err)
	}
	return opts, nil
}

// canonicalize validates the request and returns its canonical bytes —
// the content-cache identity. Marshaling the parsed struct (rather than
// hashing the client's raw body) normalizes field order, whitespace and
// defaulted fields, so semantically identical submissions collide in
// the cache on purpose. DeadlineMs is omitted: it decides whether a run
// finishes, never what it computes.
func (r *JobRequest) canonicalize() ([]byte, error) {
	if (r.Bench == "") == (r.Design == nil) {
		return nil, badRequest("serve: submit exactly one of bench, design")
	}
	if r.Bench != "" {
		if _, ok := bench.SpecByName(r.Bench); !ok {
			return nil, badRequest("serve: unknown benchmark %q (want B1..B27)", r.Bench)
		}
	}
	if r.Design != nil {
		if _, _, err := arch.FromDocument(r.Design); err != nil {
			return nil, badRequest("serve: bad design: %v", err)
		}
	}
	if _, err := r.options(); err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Bench       string         `json:"bench,omitempty"`
		Design      *arch.Document `json:"design,omitempty"`
		Mode        string         `json:"mode,omitempty"`
		Seed        int64          `json:"seed,omitempty"`
		TimeLimitMs int64          `json:"time_limit_ms,omitempty"`
	}{r.Bench, r.Design, r.Mode, r.Seed, r.TimeLimitMs})
}

// MTTFSummary is the reliability section of a result document.
type MTTFSummary struct {
	BeforeHours float64 `json:"before_hours"`
	AfterHours  float64 `json:"after_hours"`
	Increase    float64 `json:"increase"`
}

// SolveStats is the solver-effort section of a result document.
type SolveStats struct {
	LPSolves      int `json:"lp_solves"`
	SimplexIters  int `json:"simplex_iters"`
	ILPSolves     int `json:"ilp_solves"`
	ILPNodes      int `json:"ilp_nodes"`
	STProbes      int `json:"st_probes"`
	ProbeTimeouts int `json:"probe_timeouts"`
}

// JobResult is the document a finished job serves. Every field is a
// deterministic function of the request (no wall-clock values), so the
// cached bytes equal what a fresh run would produce.
type JobResult struct {
	Design string `json:"design"`
	// Ops / Contexts are the workload shape (telemetry buckets jobs by
	// them; clients get them for free).
	Ops      int `json:"ops"`
	Contexts int `json:"contexts"`
	// Status is the solver's typed outcome (optimal, feasible,
	// node-limit, canceled, infeasible).
	Status   string  `json:"status"`
	Improved bool    `json:"improved"`
	STTarget float64 `json:"st_target"`
	STLower  float64 `json:"st_lower_bound"`

	OrigMaxStress float64 `json:"orig_max_stress"`
	NewMaxStress  float64 `json:"new_max_stress"`
	OrigCPDNs     float64 `json:"orig_cpd_ns"`
	NewCPDNs      float64 `json:"new_cpd_ns"`

	MTTF MTTFSummary `json:"mttf"`

	Stats SolveStats `json:"stats"`

	// Mapping is the aging-aware floorplan, one [x, y] per op.
	Mapping [][2]int `json:"mapping"`
}

// canonResult is the rendering-agnostic core of a result document: the
// solve outcome of the (canonical) instance, with the mapping in the
// solved instance's op numbering and no client-chosen names. A cold
// solve produces one and renders it through the request's op
// permutation; a semantic cache hit re-renders the stored one through
// the new request's permutation — the two paths produce byte-identical
// documents by construction.
type canonResult struct {
	ops      int
	contexts int
	status   string
	improved bool
	stTarget float64
	stLower  float64

	origMaxStress float64
	newMaxStress  float64
	origCPD       float64
	newCPD        float64

	mttf  MTTFSummary
	stats SolveStats

	mapping []arch.Coord // solved-instance op order
}

// renderResult materializes the client-facing document: the design
// name comes from the request, the mapping is translated back to the
// client's op numbering (opPerm maps client index -> solved index; nil
// means identity).
func renderResult(designName string, opPerm []int, cr *canonResult) ([]byte, error) {
	out := &JobResult{
		Design:        designName,
		Ops:           cr.ops,
		Contexts:      cr.contexts,
		Status:        cr.status,
		Improved:      cr.improved,
		STTarget:      cr.stTarget,
		STLower:       cr.stLower,
		OrigMaxStress: cr.origMaxStress,
		NewMaxStress:  cr.newMaxStress,
		OrigCPDNs:     cr.origCPD,
		NewCPDNs:      cr.newCPD,
		MTTF:          cr.mttf,
		Stats:         cr.stats,
	}
	out.Mapping = make([][2]int, len(cr.mapping))
	for i := range cr.mapping {
		c := cr.mapping[i]
		if opPerm != nil {
			c = cr.mapping[opPerm[i]]
		}
		out.Mapping[i] = [2]int{c.X, c.Y}
	}
	return json.MarshalIndent(out, "", "  ")
}

// solveArtifacts is the per-job artifact set the delta API seeds a
// re-solve from. clientDoc is the job's workload in the numbering the
// client submitted it in (a delta request diffs against it); the
// remaining fields are in the solved instance's numbering, reached
// from client numbering via opPerm/ctxPerm (nil = identity).
type solveArtifacts struct {
	clientDoc *arch.Document
	opPerm    []int
	ctxPerm   []int
	baseline  arch.Mapping // the m0 actually solved against
	solved    arch.Mapping // the floorplan the solve produced
	frozen    map[int]arch.Coord
	stTarget  float64
	stLower   float64
	bases     [][]byte // serialized lp.Basis per context batch
	mode      string   // resolved solver options (delta inherits these)
	seed      int64
	timeLimit int64
}

// solveInfo is what execute reports back for the job's telemetry wide
// event: workload identity and shape plus the solver-effort statistics.
// Partially filled on failure paths (shape is known once the design
// builds, stats once the solver returns).
type solveInfo struct {
	design   string
	ops      int
	contexts int
	status   string
	stats    core.Stats
}

// execOut is everything a finished execute hands back to runJob: the
// rendered result bytes, the rendering-agnostic canonical result (for
// the semantic cache tier), the artifact set future delta jobs seed
// from, and — for delta jobs — the fallback reason and reuse report.
type execOut struct {
	result    []byte
	cres      *canonResult
	artifacts *solveArtifacts
	fallback  string // delta cold-fallback reason; "" = seeded (or not a delta)
	reuse     *core.ResumeInfo
}

// solveInstance runs the solver on one prepared instance and folds the
// outcome (solve + reliability evaluation) into a canonResult. A nil
// prior solves cold; a non-nil one seeds the re-solve from it. info is
// updated in place as facts become available.
func (s *Server) solveInstance(ctx context.Context, d *arch.Design, m0 arch.Mapping, opts core.Options, prior *core.Prior, info *solveInfo) (*canonResult, *core.Result, error) {
	// The per-job tracer (process sinks + this job's capture buffer)
	// rides the context from runJob; falling back through it here keeps
	// explicit-wiring callers (tests) working unchanged.
	opts.Trace = obs.TracerFrom(ctx)
	if opts.Trace == nil {
		opts.Trace = s.cfg.Trace
	}

	var (
		res *core.Result
		err error
	)
	if prior != nil {
		res, err = core.RemapFromPrior(ctx, d, m0, opts, prior)
	} else {
		res, err = core.Remap(ctx, d, m0, opts)
	}
	if res != nil {
		info.stats = res.Stats
		info.status = res.Status.String()
	}
	if err != nil {
		return nil, res, err
	}

	model, tcfg := nbti.DefaultModel(), thermal.DefaultConfig()
	before, err := core.Evaluate(d, m0, model, tcfg)
	if err != nil {
		return nil, res, err
	}
	ratio, err := core.MTTFIncrease(d, m0, res.Mapping, model, tcfg)
	if err != nil {
		return nil, res, err
	}

	cr := &canonResult{
		ops:           d.NumOps(),
		contexts:      d.NumContexts,
		status:        res.Status.String(),
		improved:      res.Improved,
		stTarget:      res.STTarget,
		stLower:       res.STLowerBound,
		origMaxStress: res.OrigMaxStress,
		newMaxStress:  res.NewMaxStress,
		origCPD:       res.OrigCPD,
		newCPD:        res.NewCPD,
		mapping:       res.Mapping,
	}
	cr.mttf = MTTFSummary{BeforeHours: before.Hours, AfterHours: before.Hours * ratio, Increase: ratio}
	cr.stats = SolveStats{
		LPSolves:      res.Stats.LPSolves,
		SimplexIters:  res.Stats.SimplexIters,
		ILPSolves:     res.Stats.ILPSolves,
		ILPNodes:      res.Stats.ILPNodes,
		STProbes:      res.Stats.STProbes,
		ProbeTimeouts: res.Stats.ProbeTimeouts,
	}
	return cr, res, nil
}

// packArtifacts serializes a finished solve into the artifact set a
// future delta job seeds from. clientDoc/opPerm/ctxPerm tie the solved
// numbering back to the numbering the client submitted in.
func packArtifacts(clientDoc *arch.Document, opPerm, ctxPerm []int, m0 arch.Mapping, res *core.Result, opts core.Options) *solveArtifacts {
	art := &solveArtifacts{
		clientDoc: clientDoc,
		opPerm:    opPerm,
		ctxPerm:   ctxPerm,
		baseline:  append(arch.Mapping(nil), m0...),
		solved:    append(arch.Mapping(nil), res.Mapping...),
		frozen:    res.FrozenOps,
		stTarget:  res.STTarget,
		stLower:   res.STLowerBound,
		mode:      "rotate",
		seed:      opts.Seed,
		timeLimit: int64(opts.TimeLimit / time.Millisecond),
	}
	if opts.Mode == core.Freeze {
		art.mode = "freeze"
	}
	art.bases = make([][]byte, len(res.Bases))
	for i, b := range res.Bases {
		if b == nil {
			continue
		}
		if enc, err := b.MarshalBinary(); err == nil {
			art.bases[i] = enc
		}
	}
	return art
}

// execute runs one job under its context and renders the result
// document. Cancellation surfaces as ctx's error (the partial solver
// result is discarded — a half-searched floorplan is not a deliverable).
// The returned solveInfo is non-nil whenever the design was built, even
// when the solve itself failed.
//
// Design submissions solve the CANONICAL instance (internal/canon) and
// render the result back through the request's own op permutation.
// That is what makes the semantic cache tier sound on bytes: a cold
// solve of any isomorphic submission and a semantic replay both render
// the same stored canonical outcome the same way.
func (s *Server) execute(ctx context.Context, j *job) (*execOut, *solveInfo, error) {
	req := j.req
	if j.delta != nil {
		return s.executeDelta(ctx, j)
	}

	if req.Bench != "" {
		spec, _ := bench.SpecByName(req.Bench)
		d, err := bench.Synthesize(spec)
		if err != nil {
			return nil, nil, err
		}
		info := &solveInfo{design: d.Name, ops: d.NumOps(), contexts: d.NumContexts}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			return nil, info, err
		}
		opts, err := req.options()
		if err != nil {
			return nil, info, err
		}
		if req.Seed == 0 {
			opts.Seed = spec.Seed
		}
		cr, res, err := s.solveInstance(ctx, d, m0, opts, nil, info)
		if err != nil {
			return nil, info, err
		}
		out, err := renderResult(d.Name, nil, cr)
		if err != nil {
			return nil, info, err
		}
		// Bench jobs are identity-numbered: their artifact document is
		// the synthesized design itself, so deltas against them align
		// without any permutation.
		clientDoc := arch.ToDocument(d, map[string]arch.Mapping{canon.BaselineMapping: m0})
		return &execOut{
			result:    out,
			cres:      cr,
			artifacts: packArtifacts(clientDoc, nil, nil, m0, res, opts),
		}, info, nil
	}

	// Design submission: solve the canonical instance.
	form := j.canonForm
	if form == nil {
		var err error
		form, err = canon.Canonicalize(req.Design)
		if err != nil {
			return nil, nil, err
		}
	}
	d, mappings, err := arch.FromDocument(form.Doc)
	if err != nil {
		return nil, nil, err
	}
	info := &solveInfo{design: req.Design.Name, ops: d.NumOps(), contexts: d.NumContexts}
	m0 := mappings[canon.BaselineMapping]
	if m0 == nil {
		// place.Place is deterministic for a fixed seed, and the
		// canonical design is identical across isomorphic submissions,
		// so every one of them gets the same starting floorplan.
		m0, err = place.Place(d, place.DefaultConfig())
		if err != nil {
			return nil, info, err
		}
	}
	opts, err := req.options()
	if err != nil {
		return nil, info, err
	}
	cr, res, err := s.solveInstance(ctx, d, m0, opts, nil, info)
	if err != nil {
		return nil, info, err
	}
	out, err := renderResult(req.Design.Name, form.OpPerm, cr)
	if err != nil {
		return nil, info, err
	}
	return &execOut{
		result:    out,
		cres:      cr,
		artifacts: packArtifacts(req.Design, form.OpPerm, form.CtxPerm, m0, res, opts),
	}, info, nil
}

// Handler returns the service's HTTP routes:
//
//	POST   /v1/jobs               submit; 202 with the job snapshot
//	POST   /v1/jobs/{id}/delta    incremental re-solve seeded from a
//	                              finished base job's artifacts
//	GET    /v1/jobs/{id}          job status snapshot
//	GET    /v1/jobs/{id}/result   finished job's result document
//	GET    /v1/jobs/{id}/progress latest solver-progress snapshot
//	GET    /v1/jobs/{id}/events   server-sent-events progress stream
//	GET    /v1/jobs/{id}/trace    captured JSONL span trace (if enabled)
//	GET    /v1/jobs/{id}/report   flight-recorder explainability report
//	                              (?format=json|text|journal, default json)
//	DELETE /v1/jobs/{id}          cooperative cancel
//	GET    /v1/version            build identity (VCS revision, Go version)
//	GET    /v1/stats              windowed telemetry summary
//	                              (?window=15m&tenant=NAME; Config.Telemetry)
//	GET    /v1/slo                SLO status: SLIs, error budgets, and
//	                              burn rates (?window=1h; Config.SLO)
//	GET    /v1/openapi.json       hand-maintained OpenAPI description
//	GET    /healthz               liveness + drain state
//	GET    /metrics               Prometheus text-format snapshot
//	GET    /debug/dash            self-contained HTML operator dashboard
//	                              (?window=15m; Config.Telemetry)
//	GET    /debug/pprof/...       runtime profiles (Config.EnablePprof)
//
// Every response carries X-Trace-Id when the route resolves a job, and
// Config.Logger (when set) records one line per request keyed by the
// same ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.logRequests(mux)
}

// route is one mux registration. The table is the single source of
// truth the handler wiring AND the OpenAPI document are generated
// from, so a route cannot ship unspecified (the spec test walks this
// table).
type route struct {
	Method  string
	Pattern string
	Summary string
	handler http.HandlerFunc
}

// routes lists every /v1 and operational endpoint. The pprof mounts
// stay out of the table: they are third-party handlers gated by
// EnablePprof, not part of the service's API surface.
func (s *Server) routes() []route {
	return []route{
		{"POST", "/v1/jobs", "submit a floorplanning job", s.handleSubmit},
		{"POST", "/v1/jobs/{id}/delta", "submit an incremental re-solve seeded from a finished base job", s.handleDelta},
		{"GET", "/v1/jobs/{id}", "job status snapshot", s.handleStatus},
		{"GET", "/v1/jobs/{id}/result", "finished job's result document", s.handleResult},
		{"GET", "/v1/jobs/{id}/progress", "latest solver-progress snapshot", s.handleProgress},
		{"GET", "/v1/jobs/{id}/events", "server-sent-events progress stream", s.handleEvents},
		{"GET", "/v1/jobs/{id}/trace", "captured JSONL span trace", s.handleTrace},
		{"GET", "/v1/jobs/{id}/report", "flight-recorder explainability report", s.handleReport},
		{"DELETE", "/v1/jobs/{id}", "cooperative cancel", s.handleCancel},
		{"GET", "/v1/version", "build identity", s.handleVersion},
		{"GET", "/v1/stats", "windowed telemetry summary", s.handleStats},
		{"GET", "/v1/slo", "service-level objective status", s.handleSLO},
		{"GET", "/v1/openapi.json", "this API description", s.handleOpenAPI},
		{"GET", "/healthz", "liveness and drain state", s.handleHealthz},
		{"GET", "/metrics", "Prometheus text-format snapshot", s.handleMetrics},
		{"GET", "/debug/dash", "HTML operator dashboard", s.handleDash},
	}
}

// statusWriter records the response code and byte count for the request
// log. It forwards Flush so the SSE stream keeps working behind the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
	n    int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.n += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests wraps the mux with structured request logging. The job's
// trace_id is read back from the X-Trace-Id header the handlers stamp,
// so request lines and lifecycle lines correlate without re-resolving
// the route here.
func (s *Server) logRequests(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Int64("bytes", sw.n),
			slog.Duration("elapsed", time.Since(start)),
		}
		if id := sw.Header().Get("X-Trace-Id"); id != "" {
			attrs = append(attrs, slog.String("trace_id", id))
		}
		if tenant := sw.Header().Get("X-Tenant"); tenant != "" {
			attrs = append(attrs, slog.String("tenant", tenant))
		}
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http request", attrs...)
	})
}

// setTraceHeader stamps the job's correlation ID — and its accounting
// identity — on the response, so clients see which tenant the job was
// attributed to and the request log picks both up without re-resolving
// the route.
func setTraceHeader(w http.ResponseWriter, snap Snapshot) {
	if snap.TraceID != "" {
		w.Header().Set("X-Trace-Id", snap.TraceID)
	}
	if snap.Tenant != "" {
		w.Header().Set("X-Tenant", snap.Tenant)
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// rejectWithRetry maps intake back-pressure (queue full, draining) to
// the error envelope plus a Retry-After header, so well-behaved clients
// back off for about as long as the backlog needs to drain instead of
// hammering.
func (s *Server) rejectWithRetry(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	httpError(w, err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		httpError(w, badRequest("serve: read body: %v", err))
		return
	}
	var req JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, badRequest("serve: bad request JSON: %v", err))
		return
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		req.Tenant = h
	}
	snap, err := s.Submit(&req)
	if err != nil {
		s.rejectWithRetry(w, err)
		return
	}
	setTraceHeader(w, snap)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		httpError(w, badRequest("serve: read body: %v", err))
		return
	}
	var req DeltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, badRequest("serve: bad request JSON: %v", err))
		return
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		req.Tenant = h
	}
	snap, err := s.SubmitDelta(r.PathValue("id"), &req)
	if err != nil {
		s.rejectWithRetry(w, err)
		return
	}
	setTraceHeader(w, snap)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	setTraceHeader(w, snap)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if snap, err := s.Job(r.PathValue("id")); err == nil {
		setTraceHeader(w, snap)
	}
	out, err := s.Result(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out) //nolint:errcheck
}

// ProgressSnapshot is the GET /v1/jobs/{id}/progress payload and the SSE
// event data: the job's identity and state plus the latest solver
// progress.
type ProgressSnapshot struct {
	ID       string       `json:"id"`
	TraceID  string       `json:"trace_id,omitempty"`
	State    JobState     `json:"state"`
	Progress obs.Progress `json:"progress"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	snap, prog, err := s.Progress(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	setTraceHeader(w, snap)
	writeJSON(w, http.StatusOK, ProgressSnapshot{
		ID: snap.ID, TraceID: snap.TraceID, State: snap.State, Progress: prog,
	})
}

// handleEvents streams progress updates as server-sent events: one
// `data:` line per published snapshot (deduplicated by Seq), ending
// after the terminal Done event or when the client goes away. Quiet
// stretches (a long simplex phase publishes nothing for a while) are
// bridged with `: keep-alive` comment frames every Config.SSEKeepAlive,
// so idle-timeout reverse proxies keep the stream open and a vanished
// client is noticed by the failed write instead of lingering forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, err := s.reporter(id)
	if err != nil {
		httpError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	if snap, err := s.Job(id); err == nil {
		setTraceHeader(w, snap)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	var keepC <-chan time.Time
	if s.cfg.SSEKeepAlive > 0 {
		ticker := time.NewTicker(s.cfg.SSEKeepAlive)
		defer ticker.Stop()
		keepC = ticker.C
	}

	var lastSeq uint64
	sent := false
	for {
		p, ch := rep.Watch()
		if !sent || p.Seq > lastSeq {
			snap, _ := s.Job(id)
			data, err := json.Marshal(ProgressSnapshot{
				ID: id, TraceID: snap.TraceID, State: snap.State, Progress: p,
			})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
			lastSeq, sent = p.Seq, true
			if p.Done {
				return
			}
		}
		select {
		case <-ch:
		case <-keepC:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if snap, err := s.Job(r.PathValue("id")); err == nil {
		setTraceHeader(w, snap)
	}
	out, err := s.Trace(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(out) //nolint:errcheck
}

// handleReport serves the job's flight-recorder output: the raw journal
// (?format=journal), the human-readable report (?format=text), or the
// deterministic report JSON (default). The journal snapshot is
// consistent mid-solve, so a report of a running job shows the search
// so far.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if snap, err := s.Job(r.PathValue("id")); err == nil {
		setTraceHeader(w, snap)
	}
	journal, err := s.FlightJournal(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "journal":
		w.Header().Set("Content-Type", "application/json")
		journal.WriteJSON(w) //nolint:errcheck // response already committed
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, flight.BuildReport(journal).Text()) //nolint:errcheck
	case "", "json":
		out, err := flight.BuildReport(journal).JSON()
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out) //nolint:errcheck
	default:
		httpError(w, badRequest("serve: unknown report format %q (want json, text, or journal)", format))
	}
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, buildinfo.Get())
}

// statsWindow resolves the ?window= query (default: the pipeline's
// drift window, the horizon operators usually care about first).
func (s *Server) statsWindow(r *http.Request) (time.Duration, error) {
	window := s.cfg.Telemetry.DriftWindow()
	q := r.URL.Query().Get("window")
	if q == "" {
		return window, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, badRequest("serve: bad window %q: %v", q, err)
	}
	if d <= 0 {
		return 0, badRequest("serve: window %q must be positive", q)
	}
	return d, nil
}

// handleStats serves the windowed telemetry summary: percentiles per
// shape bucket, benchmark, and tenant, throughput, cache hit rate, and
// drift findings. ?tenant=NAME narrows the response to one tenant's
// accounting view (look up "other" for identities past the cardinality
// cap — a rolled-up tenant's own name reports zero traffic, honestly).
// 404 when no telemetry pipeline is configured.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Telemetry == nil {
		httpError(w, ErrNoTelemetry)
		return
	}
	window, err := s.statsWindow(r)
	if err != nil {
		httpError(w, err)
		return
	}
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		writeJSON(w, http.StatusOK, s.cfg.Telemetry.TenantStats(tenant, window))
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Telemetry.Stats(window))
}

// handleSLO serves the SLO engine's objective status: per-objective
// SLI, error-budget remaining, and multi-window burn rates. ?window=
// narrows the SLI/budget horizon (default: the engine's full 6h ring).
// 404 when no engine is configured (it requires telemetry — the engine
// is fed through the pipeline's observer hook).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SLO == nil {
		httpError(w, ErrNoSLO)
		return
	}
	var window time.Duration // 0 = the engine's full ring span
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			httpError(w, badRequest("serve: bad window %q", q))
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, s.cfg.SLO.Status(window))
}

// handleDash serves the self-contained HTML operator dashboard over the
// same windowed summary /v1/stats exposes as JSON.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Telemetry == nil {
		httpError(w, ErrNoTelemetry)
		return
	}
	window, err := s.statsWindow(r)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var extras []string
	if s.cfg.SLO != nil {
		extras = append(extras, slo.PanelHTML(s.cfg.SLO.Status(window)))
	}
	io.WriteString(w, telemetry.Dashboard(s.cfg.Telemetry, window, "agingfloord", extras...)) //nolint:errcheck
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	snap, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	setTraceHeader(w, snap)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status     string `json:"status"`
		Draining   bool   `json:"draining"`
		QueueDepth int    `json:"queue_depth"`
	}{"ok", s.Draining(), s.QueueDepth()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		httpError(w, err)
	}
}
