package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/canon"
	"agingfp/internal/core"
	"agingfp/internal/flight"
	"agingfp/internal/lp"
	"agingfp/internal/obs"
	"agingfp/internal/place"
)

// ErrBaseNotReady rejects a delta submission whose base job has not
// finished successfully (409): a queued, running, failed, or canceled
// base has no trustworthy artifacts to seed from.
var ErrBaseNotReady = errors.New("serve: delta base job not finished")

// DeltaRequest is the POST /v1/jobs/{id}/delta payload: the full
// modified design (not a patch — the server diffs it against the base
// job's stored document) plus optional solver-option overrides. Unset
// options inherit the base job's resolved values, so a bare
// {"design": ...} re-solves under the same mode, seed, and time limit
// the base ran with.
//
// The diff contract is position-stable: op i of the delta document is
// understood to be op i of the base document (possibly with a changed
// kind, context, or edges), and new ops are appended after the base's.
// Reorderings read as remove+add and force a cold fallback.
type DeltaRequest struct {
	Design      *arch.Document `json:"design"`
	Mode        string         `json:"mode,omitempty"`
	Seed        int64          `json:"seed,omitempty"`
	TimeLimitMs int64          `json:"time_limit_ms,omitempty"`
	DeadlineMs  int64          `json:"deadline_ms,omitempty"`
	// Tenant is the accounting identity (see JobRequest.Tenant); a delta
	// job is attributed to its own submitter, not the base job's.
	Tenant string `json:"tenant,omitempty"`
}

// DeltaDiff summarizes how a delta design differs from its base. It is
// computed in the clients' shared numbering (the position-stable
// contract) and drives the warm-vs-cold decision.
type DeltaDiff struct {
	OpsAdded        int  `json:"ops_added"`
	OpsRemoved      int  `json:"ops_removed"`
	OpsModified     int  `json:"ops_modified"`
	EdgesAdded      int  `json:"edges_added"`
	EdgesRemoved    int  `json:"edges_removed"`
	ContextsAdded   int  `json:"contexts_added"`
	ContextsRemoved int  `json:"contexts_removed"`
	FabricChanged   bool `json:"fabric_changed"`
}

// computeDiff diffs two design documents under the position-stable
// contract. Fabric covers everything that reshapes the solve space
// globally: dimensions, clock period, and wire delay.
func computeDiff(base, next *arch.Document) DeltaDiff {
	var d DeltaDiff
	d.FabricChanged = base.FabricW != next.FabricW || base.FabricH != next.FabricH ||
		base.ClockPeriodNs != next.ClockPeriodNs || base.UnitWireDelayNs != next.UnitWireDelayNs
	if len(next.Ops) >= len(base.Ops) {
		d.OpsAdded = len(next.Ops) - len(base.Ops)
	} else {
		d.OpsRemoved = len(base.Ops) - len(next.Ops)
	}
	for i := 0; i < len(base.Ops) && i < len(next.Ops); i++ {
		if base.Ops[i].Kind != next.Ops[i].Kind || base.Ops[i].Ctx != next.Ops[i].Ctx {
			d.OpsModified++
		}
	}
	if next.NumContexts >= base.NumContexts {
		d.ContextsAdded = next.NumContexts - base.NumContexts
	} else {
		d.ContextsRemoved = base.NumContexts - next.NumContexts
	}
	baseEdges := make(map[[2]int]int, len(base.Edges))
	for _, e := range base.Edges {
		baseEdges[e]++
	}
	for _, e := range next.Edges {
		if baseEdges[e] > 0 {
			baseEdges[e]--
		} else {
			d.EdgesAdded++
		}
	}
	for _, n := range baseEdges {
		d.EdgesRemoved += n
	}
	return d
}

// deltaPlan is the prepared solve for one delta job: the instance to
// run (in the base's solved numbering when seeding, the client's own
// when falling back cold), the permutations to render results back
// through, and the prior to seed from (nil = cold).
type deltaPlan struct {
	design   *arch.Design
	m0       arch.Mapping
	opPerm   []int // delta-client index -> solved index; nil = identity
	ctxPerm  []int
	prior    *core.Prior
	fallback string // non-empty names the cold-fallback reason
	diff     DeltaDiff
}

// Cold-fallback reasons, surfaced verbatim in the job snapshot's
// delta_fallback field so the response says why the seed was discarded.
const (
	fallbackNoArtifacts     = "base_artifacts_unavailable"
	fallbackFabricChanged   = "fabric_changed"
	fallbackOpsRemoved      = "ops_removed"
	fallbackContextsRemoved = "contexts_removed"
	fallbackTooLarge        = "delta_too_large"
	fallbackAlignment       = "alignment_invalid"
)

// coldPlan prepares a from-scratch solve of the delta design in its own
// numbering — the fallback when the base's artifacts cannot seed it.
func coldPlan(doc *arch.Document, reason string, diff DeltaDiff) (*deltaPlan, error) {
	d, mappings, err := arch.FromDocument(doc)
	if err != nil {
		return nil, badRequest("serve: bad design: %v", err)
	}
	m0 := mappings[canon.BaselineMapping]
	if m0 == nil {
		m0, err = place.Place(d, place.DefaultConfig())
		if err != nil {
			return nil, err
		}
	}
	return &deltaPlan{design: d, m0: m0, fallback: reason, diff: diff}, nil
}

// planDelta decides warm vs cold for one delta job and prepares the
// instance. Warm seeding requires the base's artifacts, an unchanged
// fabric, no removals, and a delta small enough (< half the base's
// ops changed or added) that the prior plausibly still helps; anything
// that breaks the numbering alignment demotes to cold with a reason
// instead of failing.
func (s *Server) planDelta(j *job) (*deltaPlan, error) {
	doc := j.req.Design
	art := j.baseArtifacts
	if art == nil || art.clientDoc == nil {
		return coldPlan(doc, fallbackNoArtifacts, DeltaDiff{})
	}
	diff := computeDiff(art.clientDoc, doc)
	switch {
	case diff.FabricChanged:
		return coldPlan(doc, fallbackFabricChanged, diff)
	case diff.OpsRemoved > 0:
		return coldPlan(doc, fallbackOpsRemoved, diff)
	case diff.ContextsRemoved > 0:
		return coldPlan(doc, fallbackContextsRemoved, diff)
	case 2*(diff.OpsModified+diff.OpsAdded) > len(art.clientDoc.Ops):
		return coldPlan(doc, fallbackTooLarge, diff)
	}

	plan, ok := s.alignDelta(doc, art, diff)
	if !ok {
		return coldPlan(doc, fallbackAlignment, diff)
	}
	return plan, nil
}

// alignDelta renumbers the delta design with the base's permutations
// (identity-extended over appended ops and contexts), so the solved
// instance's op indices line up with the base's frozen rotations and
// the LP shapes its basis snapshots expect. Returns ok=false whenever
// the renumbered instance fails validation — the caller demotes to a
// cold solve rather than guessing.
func (s *Server) alignDelta(doc *arch.Document, art *solveArtifacts, diff DeltaDiff) (*deltaPlan, bool) {
	n := len(doc.Ops)
	nBase := len(art.clientDoc.Ops)
	if art.opPerm != nil && len(art.opPerm) != nBase {
		return nil, false
	}
	opPerm := identityPerm(n)
	copy(opPerm, art.opPerm)
	ctxPerm := identityPerm(doc.NumContexts)
	copy(ctxPerm, art.ctxPerm)

	ops2 := make([]arch.DocOp, n)
	for i, op := range doc.Ops {
		if op.Ctx < 0 || op.Ctx >= len(ctxPerm) || opPerm[i] >= n {
			return nil, false
		}
		ops2[opPerm[i]] = arch.DocOp{Kind: op.Kind, Ctx: ctxPerm[op.Ctx]}
	}
	edges2 := make([][2]int, len(doc.Edges))
	for k, e := range doc.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, false
		}
		edges2[k] = [2]int{opPerm[e[0]], opPerm[e[1]]}
	}
	sort.Slice(edges2, func(a, b int) bool {
		if edges2[a][0] != edges2[b][0] {
			return edges2[a][0] < edges2[b][0]
		}
		return edges2[a][1] < edges2[b][1]
	})
	doc2 := &arch.Document{
		Name:            doc.Name,
		FabricW:         doc.FabricW,
		FabricH:         doc.FabricH,
		NumContexts:     doc.NumContexts,
		ClockPeriodNs:   doc.ClockPeriodNs,
		UnitWireDelayNs: doc.UnitWireDelayNs,
		Ops:             ops2,
		Edges:           edges2,
	}
	d2, _, err := arch.FromDocument(doc2)
	if err != nil {
		// The base's context order no longer linearizes the delta's
		// precedence constraints (or some other invariant broke).
		return nil, false
	}

	m0, ok := alignBaseline(doc, d2, art, opPerm, n, nBase)
	if !ok {
		return nil, false
	}

	bases := make([]*lp.Basis, len(art.bases))
	for i, enc := range art.bases {
		if enc == nil {
			continue
		}
		if b, err := lp.UnmarshalBasis(enc); err == nil {
			bases[i] = b
		}
	}
	prior := &core.Prior{
		Frozen:       art.frozen,
		STTarget:     art.stTarget,
		STLowerBound: art.stLower,
		Bases:        bases,
		// The base's solved floorplan is already in the aligned (solved)
		// numbering; when the delta appended ops the length mismatch
		// makes the core reject it during validation, which is the
		// intended fallback.
		Mapping: art.solved,
	}
	return &deltaPlan{design: d2, m0: m0, opPerm: opPerm, ctxPerm: ctxPerm, prior: prior, diff: diff}, true
}

// alignBaseline builds the starting floorplan for the aligned delta
// instance. A baseline mapping in the delta document wins (translated
// into the solved numbering); otherwise the base's solved baseline is
// reused and appended ops are greedily placed on free PEs of their
// context.
func alignBaseline(doc *arch.Document, d2 *arch.Design, art *solveArtifacts, opPerm []int, n, nBase int) (arch.Mapping, bool) {
	if raw, ok := doc.Mappings[canon.BaselineMapping]; ok {
		m0 := make(arch.Mapping, n)
		if len(raw) != n {
			return nil, false
		}
		for i, xy := range raw {
			m0[opPerm[i]] = arch.Coord{X: xy[0], Y: xy[1]}
		}
		if err := arch.ValidateMapping(d2, m0); err != nil {
			return nil, false
		}
		return m0, true
	}
	if len(art.baseline) != nBase {
		return nil, false
	}
	m0 := make(arch.Mapping, n)
	copy(m0, art.baseline)
	used := make(map[[3]int]bool, n)
	for i := 0; i < nBase; i++ {
		used[[3]int{d2.Ctx[i], m0[i].X, m0[i].Y}] = true
	}
	for i := nBase; i < n; i++ {
		placed := false
		for y := 0; y < d2.Fabric.H && !placed; y++ {
			for x := 0; x < d2.Fabric.W && !placed; x++ {
				key := [3]int{d2.Ctx[i], x, y}
				if !used[key] {
					used[key] = true
					m0[i] = arch.Coord{X: x, Y: y}
					placed = true
				}
			}
		}
		if !placed {
			return nil, false
		}
	}
	if err := arch.ValidateMapping(d2, m0); err != nil {
		return nil, false
	}
	return m0, true
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// executeDelta runs one delta job: plan (warm or cold), solve, render
// in the delta client's numbering, and export fresh artifacts so delta
// jobs can chain.
func (s *Server) executeDelta(ctx context.Context, j *job) (*execOut, *solveInfo, error) {
	plan, err := s.planDelta(j)
	if err != nil {
		return nil, nil, err
	}
	info := &solveInfo{design: j.req.Design.Name, ops: plan.design.NumOps(), contexts: plan.design.NumContexts}
	opts, err := j.req.options()
	if err != nil {
		return nil, info, err
	}
	cr, res, err := s.solveInstance(ctx, plan.design, plan.m0, opts, plan.prior, info)
	if err != nil {
		return nil, info, err
	}
	out, err := renderResult(j.req.Design.Name, plan.opPerm, cr)
	if err != nil {
		return nil, info, err
	}
	return &execOut{
		result:    out,
		cres:      cr,
		artifacts: packArtifacts(j.req.Design, plan.opPerm, plan.ctxPerm, plan.m0, res, opts),
		fallback:  plan.fallback,
		reuse:     res.Resume,
	}, info, nil
}

// SubmitDelta validates and enqueues an incremental re-solve against a
// finished base job. Unset solver options inherit the base's resolved
// values. Delta jobs bypass both cache tiers on purpose — their whole
// point is to run the solver from a better starting point, and whether
// the seed survived is reported per job (snapshot delta_fallback /
// reuse), not guessed from cache state.
func (s *Server) SubmitDelta(baseID string, req *DeltaRequest) (Snapshot, error) {
	tenant, err := resolveTenant(req.Tenant)
	if err != nil {
		return Snapshot{}, err
	}
	if req.Design == nil {
		return Snapshot{}, badRequest("serve: delta request needs a design")
	}
	if _, _, err := arch.FromDocument(req.Design); err != nil {
		return Snapshot{}, badRequest("serve: bad design: %v", err)
	}

	s.mu.Lock()
	base, ok := s.jobs[baseID]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	base.mu.Lock()
	baseState := base.state
	art := base.artifacts
	base.mu.Unlock()
	if baseState != StateDone {
		return Snapshot{}, fmt.Errorf("%w: job %s is %s", ErrBaseNotReady, baseID, baseState)
	}

	jr := &JobRequest{
		Design:      req.Design,
		Mode:        req.Mode,
		Seed:        req.Seed,
		TimeLimitMs: req.TimeLimitMs,
		DeadlineMs:  req.DeadlineMs,
	}
	if art != nil {
		if jr.Mode == "" {
			jr.Mode = art.mode
		}
		if jr.Seed == 0 {
			jr.Seed = art.seed
		}
		if jr.TimeLimitMs == 0 {
			jr.TimeLimitMs = art.timeLimit
		}
	}
	if _, err := jr.options(); err != nil {
		return Snapshot{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Snapshot{}, ErrDraining
	}
	s.nextID++
	j := &job{
		id:            fmt.Sprintf("job-%06d", s.nextID),
		traceID:       newTraceID(),
		tenant:        tenant,
		req:           jr,
		submitted:     time.Now(),
		state:         StateQueued,
		rep:           obs.NewReporter(),
		solveKind:     solveKindDelta,
		baseID:        baseID,
		delta:         req,
		baseArtifacts: art,
	}
	if s.cfg.CaptureTraces {
		j.capture = newTraceCapture(s.cfg.TraceBytesPerJob)
	}
	if s.cfg.FlightEvents > 0 {
		j.flight = flight.NewRecorder(s.cfg.FlightEvents)
	}
	s.reg.Counter(`agingfp_serve_jobs_submitted_total`).Inc()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}

	select {
	case s.queue <- j:
	default:
		j.cancel()
		return Snapshot{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.gaugeState(StateQueued, 1)
	s.reg.Gauge(`agingfp_serve_queue_depth`).Set(float64(len(s.queue)))
	s.logJob(j, "delta job submitted", slog.String("base_job", baseID), slog.String("mode", jr.Mode))
	return j.snapshot(), nil
}
