// Package serve hosts the floorplanner as a long-running job service:
// clients submit designs over HTTP/JSON, a bounded worker pool drains a
// FIFO queue, and results are kept in a content-addressed cache so a
// repeated submission is answered byte-identically without re-solving.
//
// The package exists because the context-first solver API makes each
// job independently cancellable: every queued job carries its own
// context (deadline included), and the solver layers below — Remap,
// the branch-and-bound search, the simplex loops — poll it
// cooperatively, so cancel requests and SIGTERM drains take effect
// mid-solve rather than at the next job boundary.
package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"agingfp/internal/canon"
	"agingfp/internal/flight"
	"agingfp/internal/obs"
	"agingfp/internal/slo"
	"agingfp/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// Workers is the solver pool size (default 2). Each worker runs one
	// job at a time; the floorplanner itself may fan out further.
	Workers int
	// QueueDepth bounds the FIFO backlog (default 16). A full queue
	// rejects submissions with ErrQueueFull rather than buffering
	// without bound.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 64, FIFO eviction).
	CacheEntries int
	// DefaultDeadline applies to jobs that do not request their own
	// deadline; zero means no limit. The deadline clock starts at
	// submission, so time spent queued counts against it.
	DefaultDeadline time.Duration
	// DrainTimeout bounds Drain's wait for in-flight jobs before they
	// are force-canceled (default 30s).
	DrainTimeout time.Duration
	// Trace observes solver spans; Registry carries service metrics and
	// backs the /metrics endpoint. Both may be nil.
	Trace    *obs.Tracer
	Registry *obs.Registry
	// Logger receives structured request and job-lifecycle records, every
	// one keyed by the job's trace_id so log lines, span streams, and API
	// responses join on one correlation ID. nil disables logging.
	Logger *slog.Logger
	// CaptureTraces keeps a bounded in-memory JSONL span trace per job,
	// retrievable while the job record lives via GET /v1/jobs/{id}/trace.
	CaptureTraces bool
	// TraceBytesPerJob bounds each job's captured trace (default 1 MiB);
	// events past the cap are counted and dropped, never buffered.
	TraceBytesPerJob int
	// FlightEvents bounds each job's flight-recorder journal (default
	// flight.DefaultMaxEvents); events past the cap are counted and
	// dropped while the journal's aggregates keep advancing. Negative
	// disables per-job recording (and GET /v1/jobs/{id}/report).
	FlightEvents int
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
	// on Handler. Off by default: the profiles expose internals, so
	// operators opt in per deployment.
	EnablePprof bool
	// Telemetry is the longitudinal wide-event pipeline: every finished
	// job (cache hits included) emits one durable event, and the
	// pipeline backs GET /v1/stats and GET /debug/dash. nil disables
	// both (the routes answer 404) at zero per-job cost.
	Telemetry *telemetry.Pipeline
	// KernelProfile arms the LP kernel profiler on every job's flight
	// recorder: solves attribute their wall-clock to simplex phases,
	// journals and reports grow a kernel section, and wide events carry
	// per-phase times. Requires FlightEvents recording.
	KernelProfile bool
	// ProfileRing, when set, links slow-solve outliers to the daemon's
	// continuous CPU-profile ring: the capture window covering the slow
	// job is copied aside under the job's id.
	ProfileRing *telemetry.ProfRing
	// SSEKeepAlive is the idle interval after which the /events stream
	// emits a `: keep-alive` comment, so reverse proxies do not reap
	// quiet connections and dead clients are detected by the failed
	// write. Zero defaults to 15s; negative disables.
	SSEKeepAlive time.Duration
	// SLO is the service-level-objective engine backing GET /v1/slo and
	// the /debug/dash SLO panel. The server never feeds it directly —
	// events reach it through the telemetry pipeline's observer hook
	// (replayed history included), so the engine requires Telemetry and
	// nil disables the route (404) at zero cost.
	SLO *slo.Engine
	// TenantCap bounds the distinct tenant labels the server emits into
	// metrics and wide events (default telemetry.DefaultTenantCap).
	// Identities past the cap are accounted under "other"; the per-job
	// Snapshot keeps the raw name regardless.
	TenantCap int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.TraceBytesPerJob < 1 {
		c.TraceBytesPerJob = 1 << 20
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = flight.DefaultMaxEvents
	}
	if c.SSEKeepAlive == 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	return c
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the backlog is at
	// QueueDepth (503).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after Drain began (503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrNotDone reports a result request for an unfinished job (409).
	ErrNotDone = errors.New("serve: job not finished")
	// ErrNoTrace reports a trace request when capture is disabled (404).
	ErrNoTrace = errors.New("serve: per-job trace capture disabled")
	// ErrNoFlight reports a report request for a job without a flight
	// journal — recording disabled, or the job was served from the result
	// cache without running the solver (404).
	ErrNoFlight = errors.New("serve: no flight journal for this job")
	// ErrNoTelemetry reports a /v1/stats or /debug/dash request when no
	// telemetry pipeline is configured (404).
	ErrNoTelemetry = errors.New("serve: telemetry disabled")
	// ErrNoSLO reports a /v1/slo request when no SLO engine is
	// configured (404).
	ErrNoSLO = errors.New("serve: slo engine disabled")
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Solve kinds: how a job's answer was (or will be) produced. They are
// provenance, not workload identity — the result bytes are the same
// whichever tier answered.
const (
	solveKindCold     = "cold"
	solveKindExact    = "exact_hit"
	solveKindSemantic = "semantic_hit"
	solveKindDelta    = "delta"
)

// job is the internal record of one submission.
type job struct {
	id        string
	key       string // exact-tier cache key; "" for delta jobs (never cached)
	semKey    string // semantic-tier key; "" for bench and delta jobs
	traceID   string // correlation ID across logs, spans, and the API
	tenant    string // validated accounting identity (raw, pre-rollup)
	req       *JobRequest
	canonForm *canon.Form // canonical form of a design submission; nil otherwise
	ctx       context.Context
	cancel    context.CancelFunc
	submitted time.Time
	rep       *obs.Reporter    // live solver progress (always non-nil)
	capture   *traceCapture    // per-job span capture; nil unless enabled
	flight    *flight.Recorder // per-job decision journal; nil for cache hits or when disabled

	// Delta-job identity, fixed at submission.
	solveKind     string
	baseID        string        // delta jobs: the seeding job's id
	delta         *DeltaRequest // nil unless this is a delta job
	baseArtifacts *solveArtifacts

	mu            sync.Mutex
	state         JobState
	errText       string
	result        []byte
	artifacts     *solveArtifacts // exported after a successful solve (or attached on cache hits)
	deltaFallback string          // cold-fallback reason; "" when the seed was used
	reuse         *ReuseInfo
	cost          *CostReport // attribution, set when the job reaches a terminal state
	started       time.Time
	finished      time.Time
}

// ReuseInfo reports which of the base job's artifacts a delta re-solve
// actually used — the honest version of "warm": a delta that fell back
// cold says so here and in delta_fallback rather than pretending.
type ReuseInfo struct {
	FrozenReused bool `json:"frozen_reused"`
	BasesSeeded  int  `json:"bases_seeded"`
	BracketHit   bool `json:"bracket_hit"`
}

// CostReport is the per-job resource-attribution block a terminal job
// carries in its snapshot: what the answer cost to produce, wherever it
// was produced. It lives on the Snapshot rather than in the result
// document on purpose — result bytes are a deterministic function of
// the request (the cache contract), and wall-clock cost is not.
type CostReport struct {
	// Tier is the provenance the cost describes: cold, exact_hit,
	// semantic_hit, or delta. Cache tiers cost ~nothing and say so.
	Tier string `json:"tier"`
	// QueueWaitMs is submission-to-worker-pickup; SolveMs the solver
	// wall-clock (zero for cache hits).
	QueueWaitMs float64 `json:"queue_wait_ms"`
	SolveMs     float64 `json:"solve_ms"`
	// Solver-effort counters: the work the hardware actually did.
	LPSolves     int `json:"lp_solves,omitempty"`
	SimplexIters int `json:"simplex_iters,omitempty"`
	ILPNodes     int `json:"ilp_nodes,omitempty"`
	STProbes     int `json:"st_probes,omitempty"`
	// PhaseMs breaks the simplex kernel's wall-clock down per phase;
	// present only when kernel profiling was armed for the job.
	PhaseMs map[string]float64 `json:"phase_ms,omitempty"`
}

// costFromEvent derives the attribution block from the job's wide
// event, so the cost block and the telemetry record can never disagree.
func costFromEvent(ev *telemetry.SolveEvent) *CostReport {
	c := &CostReport{
		Tier:         ev.SolveKind,
		QueueWaitMs:  ev.QueueWaitMs,
		LPSolves:     ev.LPSolves,
		SimplexIters: ev.SimplexIters,
		ILPNodes:     ev.ILPNodes,
		STProbes:     ev.STProbes,
	}
	if !ev.CacheHit {
		c.SolveMs = ev.ElapsedMs
	}
	if ph := ev.PhaseMs(); len(ph) > 0 {
		c.PhaseMs = ph
	}
	return c
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the accounting identity the job was submitted under
	// (X-Tenant header or request field, defaulted to "anon"). This is
	// the raw validated name — metrics and telemetry may have rolled it
	// into "other" under the cardinality cap, but the job record keeps
	// the truth.
	Tenant string   `json:"tenant,omitempty"`
	State  JobState `json:"state"`
	Error  string   `json:"error,omitempty"`
	// SolveKind is how the answer was produced: cold, exact_hit,
	// semantic_hit, or delta.
	SolveKind string `json:"solve_kind,omitempty"`
	// BaseJob names the seeding job for delta submissions.
	BaseJob string `json:"base_job,omitempty"`
	// DeltaFallback carries the reason a delta ran cold ("" = seeded).
	DeltaFallback string     `json:"delta_fallback,omitempty"`
	Reuse         *ReuseInfo `json:"reuse,omitempty"`
	// Cost is the resource-attribution block, present once the job is
	// terminal.
	Cost      *CostReport `json:"cost,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   time.Time   `json:"started,omitempty"`
	Finished  time.Time   `json:"finished,omitempty"`
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:            j.id,
		TraceID:       j.traceID,
		Tenant:        j.tenant,
		State:         j.state,
		Error:         j.errText,
		SolveKind:     j.solveKind,
		BaseJob:       j.baseID,
		DeltaFallback: j.deltaFallback,
		Reuse:         j.reuse,
		Cost:          j.cost,
		Submitted:     j.submitted,
		Started:       j.started,
		Finished:      j.finished,
	}
}

// DefaultTenant is the accounting identity of submissions that carry
// none.
const DefaultTenant = "anon"

// resolveTenant validates the submitted tenant identity: empty defaults
// to DefaultTenant; otherwise 1–64 characters of [A-Za-z0-9._-] (a
// metric-label-safe charset, so tenant names never need escaping in
// /metrics or log lines). Anything else is a 400.
func resolveTenant(raw string) (string, error) {
	if raw == "" {
		return DefaultTenant, nil
	}
	if len(raw) > 64 {
		return "", badRequest("serve: tenant %q too long (max 64 characters)", raw)
	}
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return "", badRequest("serve: tenant %q has invalid character %q (want [A-Za-z0-9._-])", raw, r)
		}
	}
	return raw, nil
}

// newTraceID returns a 16-hex-character random correlation ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; IDs only need
		// uniqueness, so fall back to the time.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// traceCapture is a bounded in-memory JSONL span buffer for one job: an
// obs JSONL sink writing into a size-capped byte buffer. Events past the
// cap are dropped (and counted), so a runaway trace cannot grow the job
// record without bound.
type traceCapture struct {
	sink *obs.JSONLSink
	mu   sync.Mutex
	buf  bytes.Buffer
	max  int
	drop int64
}

func newTraceCapture(maxBytes int) *traceCapture {
	c := &traceCapture{max: maxBytes}
	c.sink = obs.NewJSONLSink(c)
	return c
}

// Write implements io.Writer for the JSONL sink's flushes.
func (c *traceCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.buf.Len()+len(p) > c.max {
		c.drop += int64(len(p))
		return len(p), nil // swallow, never error the tracer
	}
	c.buf.Write(p)
	return len(p), nil
}

// bytes flushes the sink and returns a copy of the captured JSONL.
func (c *traceCapture) bytes() []byte {
	c.sink.Flush() //nolint:errcheck // Write never errors
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// Server owns the queue, the worker pool, and the result cache. Create
// with New, wire Handler into an http.Server, and call Drain on
// shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *resultCache
	tenants *telemetry.TenantTracker // rolls tenant labels past the cap into "other"

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int
	draining bool
}

// New starts a server with cfg.Workers solver goroutines. The pool runs
// until Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Solver spans feed the same registry /metrics exposes.
	cfg.Trace = cfg.Trace.WithMetrics(cfg.Registry)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		cache:      newResultCache(cfg.CacheEntries, cfg.Registry),
		tenants:    telemetry.NewTenantTracker(cfg.TenantCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates, caches or enqueues a request and returns the job's
// id. Two cache tiers answer without solver work: an exact tier keyed
// by the canonical request bytes (replays are byte-identical to the
// original run), and under it a semantic tier keyed by the design's
// isomorphism hash — a renumbered-but-structurally-equal resubmission
// misses on bytes but hits on structure, and the stored canonical
// result is re-rendered through the new request's own op permutation.
// ErrQueueFull and ErrDraining report back-pressure; validation
// problems surface as *RequestError.
func (s *Server) Submit(req *JobRequest) (Snapshot, error) {
	tenant, err := resolveTenant(req.Tenant)
	if err != nil {
		return Snapshot{}, err
	}
	canonical, err := req.canonicalize()
	if err != nil {
		return Snapshot{}, err
	}
	key := requestKey(canonical)
	var (
		form   *canon.Form
		semKey string
	)
	if req.Design != nil {
		form, err = canon.Canonicalize(req.Design)
		if err != nil {
			return Snapshot{}, badRequest("serve: bad design: %v", err)
		}
		semKey = semanticKey(form.Hash, req.Mode, req.Seed, req.TimeLimitMs)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Snapshot{}, ErrDraining
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		key:       key,
		semKey:    semKey,
		traceID:   newTraceID(),
		tenant:    tenant,
		req:       req,
		canonForm: form,
		solveKind: solveKindCold,
		submitted: time.Now(),
		state:     StateQueued,
		rep:       obs.NewReporter(),
	}
	if s.cfg.CaptureTraces {
		j.capture = newTraceCapture(s.cfg.TraceBytesPerJob)
	}
	s.reg.Counter(`agingfp_serve_jobs_submitted_total`).Inc()

	if cached, ok := s.cache.get(key); ok {
		s.reg.Counter(`agingfp_serve_cache_hits_total`).Inc()
		s.reg.Counter(`agingfp_serve_cache_tier_hits_total{tier="exact"}`).Inc()
		j.solveKind = solveKindExact
		s.finishFromCache(j, cached)
		return j.snapshot(), nil
	}
	if semKey != "" {
		if e, ok := s.cache.getSemantic(semKey); ok {
			out, rerr := renderResult(req.Design.Name, form.OpPerm, e.result)
			if rerr == nil {
				s.reg.Counter(`agingfp_cache_semantic_hits_total`).Inc()
				s.reg.Counter(`agingfp_serve_cache_tier_hits_total{tier="semantic"}`).Inc()
				// Promote into the exact tier so the next identical
				// resubmission short-circuits even earlier — and serve
				// the tier's stored slice so replays stay one allocation.
				s.cache.put(key, out)
				if cached, ok := s.cache.get(key); ok {
					out = cached
				}
				j.solveKind = solveKindSemantic
				s.finishFromCache(j, out)
				return j.snapshot(), nil
			}
			// An unrenderable semantic entry means corrupted state;
			// fall through to a cold solve rather than failing the job.
		}
	}
	s.reg.Counter(`agingfp_serve_cache_misses_total`).Inc()
	// Only jobs that actually run the solver get a flight recorder: a
	// cache hit replays stored bytes, so there are no decisions to
	// journal and the report endpoint answers 404 for it.
	if s.cfg.FlightEvents > 0 {
		j.flight = flight.NewRecorder(s.cfg.FlightEvents)
		if s.cfg.KernelProfile {
			j.flight.EnableKernel(0)
		}
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}

	select {
	case s.queue <- j:
	default:
		j.cancel()
		return Snapshot{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.gaugeState(StateQueued, 1)
	s.reg.Gauge(`agingfp_serve_queue_depth`).Set(float64(len(s.queue)))
	s.logJob(j, "job submitted", slog.String("bench", req.Bench), slog.String("mode", req.Mode))
	return j.snapshot(), nil
}

// tenantLabel is the metric/telemetry label for a job's tenant: the raw
// name while the cardinality cap has room, "other" past it.
func (s *Server) tenantLabel(j *job) string { return s.tenants.Label(j.tenant) }

// accountTenant folds one terminal job into the per-tenant counters.
// agingfp_tenant_solve_seconds_total is a gauge used as a float
// accumulator (the obs counter is integer-only); it only ever goes up.
func (s *Server) accountTenant(label string, final JobState, solveElapsed time.Duration) {
	s.reg.Counter(obs.Labeled(obs.Labeled(`agingfp_tenant_jobs_total`, "tenant", label), "status", string(final))).Inc()
	s.reg.Gauge(obs.Labeled(`agingfp_tenant_solve_seconds_total`, "tenant", label)).Add(solveElapsed.Seconds())
}

// retryAfterSeconds estimates when a rejected submission is worth
// retrying: the current backlog (plus the rejected job) divided across
// the worker pool at the windowed median solve time, clamped to
// [1, 300] seconds. Without telemetry (or traffic) the estimate assumes
// 2s per job — a deliberate overestimate for an idle-history server.
func (s *Server) retryAfterSeconds() int {
	const defaultSolveMs = 2000
	medianMs := s.cfg.Telemetry.MedianSolveMs(s.cfg.Telemetry.DriftWindow())
	if medianMs <= 0 {
		medianMs = defaultSolveMs
	}
	backlog := float64(len(s.queue) + 1)
	secs := math.Ceil(backlog * medianMs / 1000 / float64(s.cfg.Workers))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return int(secs)
}

// finishFromCache completes a cache-answered job at submission time:
// the stored bytes become the result, the job is terminal immediately,
// and — for design submissions whose semantic entry survives — the
// canonical artifacts are rebound to this submission's numbering so
// the job can still serve as a delta base. Called with s.mu held.
func (s *Server) finishFromCache(j *job, cached []byte) {
	j.state = StateDone
	j.result = cached
	if j.semKey != "" && j.canonForm != nil {
		if e, ok := s.cache.getSemantic(j.semKey); ok && e.artifacts != nil {
			art := *e.artifacts
			art.clientDoc = j.req.Design
			art.opPerm = j.canonForm.OpPerm
			art.ctxPerm = j.canonForm.CtxPerm
			j.artifacts = &art
		}
	}
	j.started = j.submitted
	j.finished = j.submitted
	// A cache hit consumed no queue slot and no solver time; the cost
	// block says so explicitly rather than being absent.
	j.cost = &CostReport{Tier: j.solveKind}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	j.cancel() // nothing left to cancel
	s.jobs[j.id] = j
	s.gaugeState(StateDone, 1)
	s.accountTenant(s.tenantLabel(j), StateDone, 0)
	j.rep.Update(func(p *obs.Progress) { p.Phase = "done"; p.Done = true; p.Status = string(StateDone) })
	s.logJob(j, "job served from cache",
		slog.Bool("cache_hit", true), slog.String("solve_kind", j.solveKind))
	s.emitCacheHitEvent(j, cached)
}

// emitCacheHitEvent records a cache-served job as a wide event: it
// counts toward throughput and the hit rate but is excluded from solve
// latency percentiles (the pipeline keys that off cache_hit). The
// workload identity and shape are read back out of the cached result
// document, which carries them precisely so replays stay attributable.
func (s *Server) emitCacheHitEvent(j *job, cached []byte) {
	tp := s.cfg.Telemetry
	if tp == nil {
		return
	}
	var res struct {
		Design   string `json:"design"`
		Ops      int    `json:"ops"`
		Contexts int    `json:"contexts"`
	}
	json.Unmarshal(cached, &res) //nolint:errcheck // best-effort attribution
	mode := j.req.Mode
	if mode == "" {
		mode = "rotate"
	}
	tp.Record(&telemetry.SolveEvent{
		Time:      time.Now(),
		Source:    telemetry.SourceServe,
		JobID:     j.id,
		TraceID:   j.traceID,
		Tenant:    s.tenantLabel(j),
		Bench:     res.Design,
		Ops:       res.Ops,
		Contexts:  res.Contexts,
		Mode:      mode,
		Status:    string(StateDone),
		CacheHit:  true,
		SolveKind: j.solveKind,
	})
}

// gaugeState moves the live per-state job-count gauges: +1 when a job
// enters a state, -1 when it leaves. The terminal states only ever gain,
// so their gauges double as running totals for jobs still in the map.
func (s *Server) gaugeState(st JobState, delta float64) {
	s.reg.Gauge(`agingfp_serve_jobs{state="` + string(st) + `"}`).Add(delta)
}

// logJob emits one structured lifecycle record keyed by the job's IDs.
func (s *Server) logJob(j *job, msg string, attrs ...slog.Attr) {
	if s.cfg.Logger == nil {
		return
	}
	base := []slog.Attr{slog.String("job_id", j.id), slog.String("trace_id", j.traceID)}
	if j.tenant != "" {
		base = append(base, slog.String("tenant", j.tenant))
	}
	s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, append(base, attrs...)...)
}

// Job returns the current snapshot of a job.
func (s *Server) Job(id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Result returns the finished job's result document (the exact cached
// bytes). ErrNotDone while the job is queued or running; a failed or
// canceled job reports its error instead.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed, StateCanceled:
		return nil, fmt.Errorf("serve: job %s %s: %s", id, j.state, j.errText)
	default:
		return nil, ErrNotDone
	}
}

// Cancel requests cooperative cancellation of a job. A queued job is
// marked canceled at once (the worker will skip it); a running job's
// context is canceled and the solver unwinds within one poll interval.
// Canceling a finished job is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	dropped := false
	var queueWait time.Duration
	if j.state == StateQueued {
		dropped = true
		j.state = StateCanceled
		j.errText = context.Canceled.Error()
		j.finished = time.Now()
		queueWait = j.finished.Sub(j.submitted)
		j.cost = &CostReport{Tier: j.solveKind, QueueWaitMs: durMs(queueWait)}
		s.reg.Counter(`agingfp_serve_jobs_total{state="canceled"}`).Inc()
		s.gaugeState(StateQueued, -1)
		s.gaugeState(StateCanceled, 1)
	}
	j.mu.Unlock()
	if dropped {
		j.rep.Update(func(p *obs.Progress) { p.Phase = "done"; p.Done = true; p.Status = string(StateCanceled) })
		s.logJob(j, "job canceled while queued")
		s.accountTenant(s.tenantLabel(j), StateCanceled, 0)
		s.emitQueueDropEvent(j, StateCanceled, queueWait, context.Canceled)
	}
	j.cancel()
	return nil
}

// emitQueueDropEvent records a job that went terminal without ever
// running the solver — canceled while queued, or expired before a
// worker picked it up — so availability accounting and per-tenant stats
// see every submission's outcome, not just the solved ones.
func (s *Server) emitQueueDropEvent(j *job, final JobState, queueWait time.Duration, cause error) {
	tp := s.cfg.Telemetry
	if tp == nil {
		return
	}
	mode := j.req.Mode
	if mode == "" {
		mode = "rotate"
	}
	name := j.req.Bench
	if name == "" && j.req.Design != nil {
		name = j.req.Design.Name
	}
	ev := &telemetry.SolveEvent{
		Time:        time.Now(),
		Source:      telemetry.SourceServe,
		JobID:       j.id,
		TraceID:     j.traceID,
		Tenant:      s.tenantLabel(j),
		Bench:       name,
		Mode:        mode,
		Status:      string(final),
		SolveKind:   j.solveKind,
		QueueWaitMs: durMs(queueWait),
	}
	if cause != nil {
		ev.Error = cause.Error()
	}
	tp.Record(ev)
}

// Progress returns the job's latest solver-progress snapshot.
func (s *Server) Progress(id string) (Snapshot, obs.Progress, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, obs.Progress{}, ErrNotFound
	}
	return j.snapshot(), j.rep.Latest(), nil
}

// reporter exposes a job's live progress cell (for the SSE stream).
func (s *Server) reporter(id string) (*obs.Reporter, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.rep, nil
}

// Trace returns the job's captured JSONL span trace. ErrNoTrace when
// capture is disabled (or the process has no trace sinks).
func (s *Server) Trace(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if j.capture == nil {
		return nil, ErrNoTrace
	}
	return j.capture.bytes(), nil
}

// FlightJournal snapshots the job's flight-recorder journal. It works
// on live jobs too (the snapshot is consistent mid-solve) and keeps
// working after Drain, so an operator can pull the journal of a job
// that was force-canceled. ErrNoFlight when the job has no recorder
// (recording disabled, or a cache-hit job that never ran the solver).
func (s *Server) FlightJournal(id string) (*flight.Journal, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if j.flight == nil {
		return nil, ErrNoFlight
	}
	return j.flight.Snapshot(), nil
}

// Draining reports whether Drain has begun (used by /healthz).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth reports the current backlog length.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Drain stops intake, lets queued and running jobs finish, and returns
// once the pool is idle. Jobs still running after cfg.DrainTimeout are
// force-canceled (they unwind cooperatively and report Canceled).
// Submissions during and after Drain fail with ErrDraining.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.waitWorkers(s.cfg.DrainTimeout)
		return
	}
	s.draining = true
	close(s.queue) // Submit holds s.mu before sending, so no send-after-close
	s.mu.Unlock()

	if !s.waitWorkers(s.cfg.DrainTimeout) {
		s.baseCancel() // force the stragglers to unwind
		s.workers.Wait()
	}
	s.baseCancel()
	// The workers are parked: flush buffered trace sinks now so a
	// SIGTERM-driven drain does not lose the tail of the span stream.
	if err := s.cfg.Trace.Flush(); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("trace sink flush failed", slog.String("error", err.Error()))
	}
}

func (s *Server) waitWorkers(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.reg.Gauge(`agingfp_serve_queue_depth`).Set(float64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job end to end and records the outcome.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock() // canceled while queued
		return
	}
	if err := j.ctx.Err(); err != nil {
		// The deadline covers queue wait: a job that expired before a
		// worker picked it up fails without touching the solver. A
		// drain-forced cancellation reports canceled, not failed.
		final := StateFailed
		if errors.Is(err, context.Canceled) {
			final = StateCanceled
		}
		j.state = final
		s.reg.Counter(`agingfp_serve_jobs_total{state="` + string(final) + `"}`).Inc()
		s.gaugeState(StateQueued, -1)
		s.gaugeState(final, 1)
		j.errText = err.Error()
		j.finished = time.Now()
		expireWait := j.finished.Sub(j.submitted)
		j.cost = &CostReport{Tier: j.solveKind, QueueWaitMs: durMs(expireWait)}
		j.mu.Unlock()
		j.rep.Update(func(p *obs.Progress) { p.Phase = "done"; p.Done = true; p.Status = string(final) })
		s.logJob(j, "job expired in queue", slog.String("state", string(final)))
		s.accountTenant(s.tenantLabel(j), final, 0)
		s.emitQueueDropEvent(j, final, expireWait, err)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.gaugeState(StateQueued, -1)
	s.gaugeState(StateRunning, 1)
	s.reg.Histogram(`agingfp_serve_queue_wait_seconds`).Observe(queueWait)
	s.reg.Gauge(`agingfp_serve_workers_busy`).Add(1)
	defer s.reg.Gauge(`agingfp_serve_workers_busy`).Add(-1)
	defer j.cancel() // release the deadline timer
	s.logJob(j, "job started", slog.Duration("queue_wait", queueWait))

	// Per-job observability context: a tracer teeing the process-wide
	// sinks with this job's capture buffer (so the job's spans are both
	// in the shared stream and individually retrievable), the trace ID,
	// and the live progress reporter all ride the job's context into the
	// solver layers.
	sinks := s.cfg.Trace.Sinks()
	if j.capture != nil {
		sinks = append(append([]obs.Sink(nil), sinks...), j.capture.sink)
	}
	tr := obs.New(sinks...).WithMetrics(s.reg)
	ctx := obs.WithTracer(j.ctx, tr)
	ctx = obs.WithTraceID(ctx, j.traceID)
	ctx = obs.WithReporter(ctx, j.rep)
	if j.flight != nil {
		ctx = flight.WithRecorder(ctx, j.flight)
	}

	eo, info, err := s.execute(ctx, j)

	j.mu.Lock()
	j.finished = time.Now()
	s.reg.Histogram(`agingfp_serve_job_seconds`).Observe(j.finished.Sub(j.started))
	var final JobState
	switch {
	case err == nil:
		out := eo.result
		// Delta jobs bypass the caches (key == ""): their results
		// depend on the base job's artifacts, not the request alone.
		if j.key != "" {
			// Store-then-load so the job serves the same byte slice
			// future cache hits will.
			s.cache.put(j.key, out)
			if cached, ok := s.cache.get(j.key); ok {
				out = cached
			}
		}
		// Only cold design solves feed the semantic tier: its contract
		// is "the canonical instance's own solve outcome", which a
		// seeded delta re-solve does not satisfy.
		if j.semKey != "" && j.solveKind == solveKindCold && eo.cres != nil {
			s.cache.putSemantic(j.semKey, &semanticEntry{result: eo.cres, artifacts: eo.artifacts})
		}
		final = StateDone
		j.result = out
		j.artifacts = eo.artifacts
		j.deltaFallback = eo.fallback
		if eo.reuse != nil {
			j.reuse = &ReuseInfo{
				FrozenReused: eo.reuse.FrozenReused,
				BasesSeeded:  eo.reuse.BasesSeeded,
				BracketHit:   eo.reuse.BracketHit,
			}
		}
	case errors.Is(err, context.Canceled):
		final = StateCanceled
		j.errText = err.Error()
	default:
		final = StateFailed
		j.errText = err.Error()
	}
	j.state = final
	s.reg.Counter(`agingfp_serve_jobs_total{state="` + string(final) + `"}`).Inc()
	s.gaugeState(StateRunning, -1)
	s.gaugeState(final, 1)
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	if j.capture != nil {
		j.capture.sink.Flush() //nolint:errcheck // Write never errors
	}
	// Terminal progress event: pollers and SSE readers key off Done.
	j.rep.Update(func(p *obs.Progress) { p.Phase = "done"; p.Done = true; p.Status = string(final) })
	attrs := []slog.Attr{slog.String("state", string(final)), slog.Duration("elapsed", elapsed)}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.logJob(j, "job finished", attrs...)
	s.emitSolveEvent(j, info, final, elapsed, queueWait, err)
}

// emitSolveEvent builds the finished job's wide event, derives the
// job's cost-attribution block from it (the two can never disagree),
// folds the job into the per-tenant counters, and hands the event to
// the telemetry pipeline — which, when it flags the solve as a slow
// outlier for its shape bucket, persists the job's flight journal next
// to the event store so the decision log is on disk before anyone asks.
// Cost and tenant accounting happen even with a nil pipeline.
func (s *Server) emitSolveEvent(j *job, info *solveInfo, final JobState, elapsed, queueWait time.Duration, jobErr error) {
	mode := j.req.Mode
	if mode == "" {
		mode = "rotate"
	}
	ev := &telemetry.SolveEvent{
		Time:        time.Now(),
		Source:      telemetry.SourceServe,
		JobID:       j.id,
		TraceID:     j.traceID,
		Tenant:      s.tenantLabel(j),
		Mode:        mode,
		Status:      string(final),
		SolveKind:   j.solveKind,
		ElapsedMs:   durMs(elapsed),
		QueueWaitMs: durMs(queueWait),
	}
	if jobErr != nil {
		ev.Error = jobErr.Error()
	}
	if info != nil {
		ev.Bench = info.design
		ev.Ops = info.ops
		ev.Contexts = info.contexts
		st := info.stats
		ev.Step1Ms = durMs(st.Step1Time)
		ev.RotateMs = durMs(st.RotateTime)
		ev.Step2Ms = durMs(st.Step2Time)
		ev.TimingMs = durMs(st.TimingTime)
		ev.LPSolves = st.LPSolves
		ev.SimplexIters = st.SimplexIters
		ev.ILPNodes = st.ILPNodes
		ev.STProbes = st.STProbes
		ev.ProbeTimeouts = st.ProbeTimeouts
		ev.WarmStarts = st.WarmStarts
		ev.WarmRejects = st.WarmStartRejects
	}
	ev.FillKernel(j.flight.KernelSnapshot())

	j.mu.Lock()
	j.cost = costFromEvent(ev)
	j.mu.Unlock()
	s.accountTenant(ev.Tenant, final, elapsed)

	tp := s.cfg.Telemetry
	if tp == nil {
		return
	}
	out := tp.Record(ev)
	if out.Slow {
		// Link the continuous profiler to the outlier: the CPU capture
		// window in flight right now covered (at least the tail of) the
		// slow solve.
		s.cfg.ProfileRing.Mark(j.id)
		if j.flight != nil {
			path := tp.CaptureSlow(j.id, j.flight.Snapshot().WriteJSON)
			s.logJob(j, "slow solve captured",
				slog.Float64("elapsed_ms", ev.ElapsedMs),
				slog.Float64("threshold_ms", out.SlowThreshold),
				slog.String("journal", path))
		}
	}
}

// durMs converts a duration to float milliseconds for the wide event.
func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
