// Package serve hosts the floorplanner as a long-running job service:
// clients submit designs over HTTP/JSON, a bounded worker pool drains a
// FIFO queue, and results are kept in a content-addressed cache so a
// repeated submission is answered byte-identically without re-solving.
//
// The package exists because the context-first solver API makes each
// job independently cancellable: every queued job carries its own
// context (deadline included), and the solver layers below — Remap,
// the branch-and-bound search, the simplex loops — poll it
// cooperatively, so cancel requests and SIGTERM drains take effect
// mid-solve rather than at the next job boundary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"agingfp/internal/obs"
)

// Config sizes the service.
type Config struct {
	// Workers is the solver pool size (default 2). Each worker runs one
	// job at a time; the floorplanner itself may fan out further.
	Workers int
	// QueueDepth bounds the FIFO backlog (default 16). A full queue
	// rejects submissions with ErrQueueFull rather than buffering
	// without bound.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache
	// (default 64, FIFO eviction).
	CacheEntries int
	// DefaultDeadline applies to jobs that do not request their own
	// deadline; zero means no limit. The deadline clock starts at
	// submission, so time spent queued counts against it.
	DefaultDeadline time.Duration
	// DrainTimeout bounds Drain's wait for in-flight jobs before they
	// are force-canceled (default 30s).
	DrainTimeout time.Duration
	// Trace observes solver spans; Registry carries service metrics and
	// backs the /metrics endpoint. Both may be nil.
	Trace    *obs.Tracer
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.CacheEntries < 1 {
		c.CacheEntries = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission when the backlog is at
	// QueueDepth (503).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after Drain began (503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrNotDone reports a result request for an unfinished job (409).
	ErrNotDone = errors.New("serve: job not finished")
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// job is the internal record of one submission.
type job struct {
	id        string
	key       string // cache key (canonical request hash)
	req       *JobRequest
	ctx       context.Context
	cancel    context.CancelFunc
	submitted time.Time

	mu       sync.Mutex
	state    JobState
	errText  string
	result   []byte
	started  time.Time
	finished time.Time
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID        string    `json:"id"`
	State     JobState  `json:"state"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.id,
		State:     j.state,
		Error:     j.errText,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Server owns the queue, the worker pool, and the result cache. Create
// with New, wire Handler into an http.Server, and call Drain on
// shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int
	draining bool
}

// New starts a server with cfg.Workers solver goroutines. The pool runs
// until Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	// Solver spans feed the same registry /metrics exposes.
	cfg.Trace = cfg.Trace.WithMetrics(cfg.Registry)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		cache:      newResultCache(cfg.CacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates, caches or enqueues a request and returns the job's
// id. A content-cache hit completes the job immediately — the stored
// bytes are served as-is, so replays are byte-identical to the original
// run. ErrQueueFull and ErrDraining report back-pressure; validation
// problems surface as *RequestError.
func (s *Server) Submit(req *JobRequest) (Snapshot, error) {
	canonical, err := req.canonicalize()
	if err != nil {
		return Snapshot{}, err
	}
	key := requestKey(canonical)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Snapshot{}, ErrDraining
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		key:       key,
		req:       req,
		submitted: time.Now(),
		state:     StateQueued,
	}
	s.reg.Counter(`agingfp_serve_jobs_submitted_total`).Inc()

	if cached, ok := s.cache.get(key); ok {
		s.reg.Counter(`agingfp_serve_cache_hits_total`).Inc()
		j.state = StateDone
		j.result = cached
		j.started = j.submitted
		j.finished = j.submitted
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
		j.cancel() // nothing left to cancel
		s.jobs[j.id] = j
		return j.snapshot(), nil
	}
	s.reg.Counter(`agingfp_serve_cache_misses_total`).Inc()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, deadline)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}

	select {
	case s.queue <- j:
	default:
		j.cancel()
		return Snapshot{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.reg.Gauge(`agingfp_serve_queue_depth`).Set(float64(len(s.queue)))
	return j.snapshot(), nil
}

// Job returns the current snapshot of a job.
func (s *Server) Job(id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Result returns the finished job's result document (the exact cached
// bytes). ErrNotDone while the job is queued or running; a failed or
// canceled job reports its error instead.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed, StateCanceled:
		return nil, fmt.Errorf("serve: job %s %s: %s", id, j.state, j.errText)
	default:
		return nil, ErrNotDone
	}
}

// Cancel requests cooperative cancellation of a job. A queued job is
// marked canceled at once (the worker will skip it); a running job's
// context is canceled and the solver unwinds within one poll interval.
// Canceling a finished job is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errText = context.Canceled.Error()
		j.finished = time.Now()
		s.reg.Counter(`agingfp_serve_jobs_total{state="canceled"}`).Inc()
	}
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Draining reports whether Drain has begun (used by /healthz).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth reports the current backlog length.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Drain stops intake, lets queued and running jobs finish, and returns
// once the pool is idle. Jobs still running after cfg.DrainTimeout are
// force-canceled (they unwind cooperatively and report Canceled).
// Submissions during and after Drain fail with ErrDraining.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.waitWorkers(s.cfg.DrainTimeout)
		return
	}
	s.draining = true
	close(s.queue) // Submit holds s.mu before sending, so no send-after-close
	s.mu.Unlock()

	if !s.waitWorkers(s.cfg.DrainTimeout) {
		s.baseCancel() // force the stragglers to unwind
		s.workers.Wait()
	}
	s.baseCancel()
}

func (s *Server) waitWorkers(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.reg.Gauge(`agingfp_serve_queue_depth`).Set(float64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job end to end and records the outcome.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock() // canceled while queued
		return
	}
	if err := j.ctx.Err(); err != nil {
		// The deadline covers queue wait: a job that expired before a
		// worker picked it up fails without touching the solver. A
		// drain-forced cancellation reports canceled, not failed.
		if errors.Is(err, context.Canceled) {
			j.state = StateCanceled
			s.reg.Counter(`agingfp_serve_jobs_total{state="canceled"}`).Inc()
		} else {
			j.state = StateFailed
			s.reg.Counter(`agingfp_serve_jobs_total{state="failed"}`).Inc()
		}
		j.errText = err.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.reg.Gauge(`agingfp_serve_workers_busy`).Add(1)
	defer s.reg.Gauge(`agingfp_serve_workers_busy`).Add(-1)
	defer j.cancel() // release the deadline timer

	out, err := s.execute(j.ctx, j.req)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	s.reg.Histogram(`agingfp_serve_job_seconds`).Observe(j.finished.Sub(j.started))
	switch {
	case err == nil:
		// Store-then-load so the job serves the same byte slice future
		// cache hits will.
		s.cache.put(j.key, out)
		if cached, ok := s.cache.get(j.key); ok {
			out = cached
		}
		j.state = StateDone
		j.result = out
		s.reg.Counter(`agingfp_serve_jobs_total{state="done"}`).Inc()
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errText = err.Error()
		s.reg.Counter(`agingfp_serve_jobs_total{state="canceled"}`).Inc()
	default:
		j.state = StateFailed
		j.errText = err.Error()
		s.reg.Counter(`agingfp_serve_jobs_total{state="failed"}`).Inc()
	}
}
