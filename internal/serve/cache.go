package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"agingfp/internal/obs"
)

// resultCache is the content-addressed result store: completed job
// results are kept under the canonical hash of the request that
// produced them, so resubmitting a byte-identical workload is answered
// from memory with the exact bytes of the first run — no solver work,
// no re-marshaling drift.
//
// The floorplanner is deterministic for a fixed request (fixed seed,
// fixed design, fixed options), which is what makes caching sound: the
// cached bytes are the bytes a fresh run would produce.
// Cache occupancy and churn are exported alongside the hit/miss
// counters Submit maintains, so /metrics tells the whole cache story:
// hits vs misses (effectiveness), entries (occupancy against the
// configured bound), evictions (churn — a high rate at full occupancy
// means the working set exceeds CacheEntries).
// A second, semantic tier sits under the exact one: design submissions
// are canonicalized (internal/canon), and the solve result of the
// canonical instance is stored under the canonical hash plus solver
// options. A renumbered-but-isomorphic resubmission misses the exact
// tier (different bytes) but hits the semantic tier, and the stored
// canonical result is re-rendered through the new request's own op
// permutation — producing exactly the bytes a cold solve of that
// submission would have produced, because cold solves of design
// submissions also solve the canonical instance and render the same
// way. Semantic entries additionally carry the solve's artifact set
// (frozen rotations, ST bracket, LP bases) for the delta API.
type resultCache struct {
	mu      sync.Mutex
	entries map[string][]byte
	order   []string // insertion order, for FIFO eviction
	sem     map[string]*semanticEntry
	semOrd  []string
	cap     int
	reg     *obs.Registry
}

// semanticEntry is one semantic-tier record: the rendering-agnostic
// canonical result plus the artifacts a delta re-solve seeds from.
type semanticEntry struct {
	result    *canonResult
	artifacts *solveArtifacts
}

func newResultCache(capacity int, reg *obs.Registry) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		entries: make(map[string][]byte),
		sem:     make(map[string]*semanticEntry),
		cap:     capacity,
		reg:     reg,
	}
}

// requestKey derives the cache key from the canonical request bytes.
// Callers pass the re-marshaled (not raw client) JSON: encoding/json
// emits struct fields in declaration order and map keys sorted, so two
// semantically identical submissions hash alike regardless of the
// client's field order or whitespace.
func requestKey(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[key]
	return b, ok
}

func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return // first result wins; replays must stay byte-identical
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.reg.Counter(`agingfp_serve_cache_evictions_total`).Inc()
	}
	c.entries[key] = val
	c.order = append(c.order, key)
	c.reg.Gauge(`agingfp_serve_cache_entries`).Set(float64(len(c.entries)))
}

// semanticKey derives the semantic-tier key: the canonical design hash
// mixed with every solver option that is part of workload identity
// (DeadlineMs stays excluded here too — delivery policy, not work).
func semanticKey(canonHash, mode string, seed, timeLimitMs int64) string {
	if mode == "" {
		mode = "rotate"
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d", canonHash, mode, seed, timeLimitMs)))
	return hex.EncodeToString(sum[:])
}

func (c *resultCache) getSemantic(key string) (*semanticEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.sem[key]
	return e, ok
}

func (c *resultCache) putSemantic(key string, e *semanticEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.sem[key]; exists {
		return // first result wins, mirroring the exact tier
	}
	for len(c.sem) >= c.cap && len(c.semOrd) > 0 {
		oldest := c.semOrd[0]
		c.semOrd = c.semOrd[1:]
		delete(c.sem, oldest)
		c.reg.Counter(`agingfp_serve_cache_evictions_total`).Inc()
	}
	c.sem[key] = e
	c.semOrd = append(c.semOrd, key)
	c.reg.Gauge(`agingfp_serve_cache_semantic_entries`).Set(float64(len(c.sem)))
}
