package serve_test

import (
	"agingfp/internal/serve"
	"bufio"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"agingfp/internal/telemetry"
)

func openPipeline(t *testing.T, cfg telemetry.Config) *telemetry.Pipeline {
	t.Helper()
	p, err := telemetry.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestStatsAndDashEndpoints runs real jobs through the full pipeline:
// solve + cache hit land as wide events, /v1/stats serves the windowed
// summary, /debug/dash renders it, and a restarted pipeline (new process
// over the same directory) still answers with the same history.
func TestStatsAndDashEndpoints(t *testing.T) {
	dir := t.TempDir()
	p := openPipeline(t, telemetry.Config{Dir: dir})
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p})

	snap, code := postJob(t, hs, `{"bench": "B1", "seed": 41}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)
	// Byte-identical resubmission: a cache-hit wide event.
	if again, _ := postJob(t, hs, `{"bench": "B1", "seed": 41}`); again.State != serve.StateDone {
		t.Fatalf("resubmit not served from cache: %q", again.State)
	}

	var st telemetry.WindowStats
	if code := getJSON(t, hs.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("/v1/stats: HTTP %d", code)
	}
	if st.Jobs != 2 || st.Total.Solved != 1 || st.Total.CacheHits != 1 {
		t.Fatalf("stats jobs/solved/hits = %d/%d/%d, want 2/1/1", st.Jobs, st.Total.Solved, st.Total.CacheHits)
	}
	if st.Total.P50Ms <= 0 {
		t.Fatalf("p50 = %g, want the real solve's latency", st.Total.P50Ms)
	}
	if _, ok := st.Benchmarks["B1"]; !ok {
		t.Fatalf("stats missing B1 benchmark breakdown: %v", st.Benchmarks)
	}
	if len(st.Shapes) == 0 {
		t.Fatal("stats missing shape buckets")
	}

	// Explicit window parses; garbage is a 400.
	if code := getJSON(t, hs.URL+"/v1/stats?window=5m", &st); code != http.StatusOK {
		t.Fatalf("/v1/stats?window=5m: HTTP %d", code)
	}
	if code := getJSON(t, hs.URL+"/v1/stats?window=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad window: HTTP %d, want 400", code)
	}

	resp, err := http.Get(hs.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/debug/dash: HTTP %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "solve telemetry") || !strings.Contains(string(body), "B1") {
		t.Fatalf("dashboard lacks content:\n%.400s", body)
	}

	// Restart: a fresh pipeline over the same directory replays the
	// durable store, so the history survives the process.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := openPipeline(t, telemetry.Config{Dir: dir})
	_, hs2, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p2})
	var st2 telemetry.WindowStats
	if code := getJSON(t, hs2.URL+"/v1/stats?window=1h", &st2); code != http.StatusOK {
		t.Fatalf("post-restart /v1/stats: HTTP %d", code)
	}
	if st2.Jobs != 2 || st2.Total.Solved != 1 {
		t.Fatalf("post-restart jobs/solved = %d/%d, want 2/1", st2.Jobs, st2.Total.Solved)
	}
}

func TestStatsWithoutTelemetry404s(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	if code := getJSON(t, hs.URL+"/v1/stats", nil); code != http.StatusNotFound {
		t.Fatalf("/v1/stats without pipeline: HTTP %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/debug/dash", nil); code != http.StatusNotFound {
		t.Fatalf("/debug/dash without pipeline: HTTP %d, want 404", code)
	}
}

// TestSlowSolveAutoCapture seeds the pipeline with a fast synthetic
// population for B1's exact shape, then runs a real solve: it is orders
// of magnitude slower than the synthetic percentile, so its flight
// journal must land in <dir>/slow/ without anyone asking.
func TestSlowSolveAutoCapture(t *testing.T) {
	dir := t.TempDir()
	p := openPipeline(t, telemetry.Config{
		Dir:            dir,
		SlowPercentile: 0.5,
		SlowMinSamples: 1,
	})
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Telemetry: p})

	// Learn B1's shape from a first solve, then synthesize the fast
	// population in that bucket.
	snap, _ := postJob(t, hs, `{"bench": "B1", "seed": 51}`)
	waitState(t, hs, snap.ID, serve.StateDone, 30*time.Second)
	var res serve.JobResult
	if code := getJSON(t, hs.URL+"/v1/jobs/"+snap.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if res.Ops <= 0 || res.Contexts <= 0 {
		t.Fatalf("result lacks workload shape: ops %d contexts %d", res.Ops, res.Contexts)
	}
	for i := 0; i < 5; i++ {
		p.Record(&telemetry.SolveEvent{
			Time: time.Now(), Source: telemetry.SourceServe,
			Bench: "B1", Ops: res.Ops, Contexts: res.Contexts,
			Status: "done", ElapsedMs: 0.001,
		})
	}

	snap2, _ := postJob(t, hs, `{"bench": "B1", "seed": 52}`)
	waitState(t, hs, snap2.ID, serve.StateDone, 30*time.Second)

	entries, err := os.ReadDir(filepath.Join(dir, "slow"))
	if err != nil {
		t.Fatalf("no slow-capture directory: %v", err)
	}
	found := false
	for _, e := range entries {
		if e.Name() == snap2.ID+".journal.json" {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow solve %s not captured; dir has %v", snap2.ID, entries)
	}
}

// TestSSEKeepAlive parks a job in the queue behind a busy worker and
// watches its event stream: with no progress to report, the server must
// still emit `: keep-alive` comment frames at the configured interval.
func TestSSEKeepAlive(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1, SSEKeepAlive: 40 * time.Millisecond})

	running, code := postJob(t, hs, slowDocument())
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, running.ID, serve.StateRunning, 10*time.Second)
	queued, code := postJob(t, hs, `{"bench": "B2"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", code)
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read frames until a keep-alive comment shows up; the queued job
	// publishes nothing, so only the ticker can produce one.
	type lineOrErr struct {
		line string
		err  error
	}
	lines := make(chan lineOrErr, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: sc.Text()}
		}
		lines <- lineOrErr{err: io.EOF}
	}()
	deadline := time.After(5 * time.Second)
	sawKeepAlive := false
	for !sawKeepAlive {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream ended before keep-alive: %v", l.err)
			}
			if strings.HasPrefix(l.line, ": keep-alive") {
				sawKeepAlive = true
			}
		case <-deadline:
			t.Fatal("no keep-alive frame within 5s at a 40ms interval")
		}
	}

	// Unblock the worker so cleanup drains fast.
	for _, id := range []string{running.ID, queued.ID} {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestCacheEvictionMetrics(t *testing.T) {
	_, hs, reg := testServer(t, serve.Config{Workers: 1, CacheEntries: 1})

	first, _ := postJob(t, hs, `{"bench": "B1", "seed": 61}`)
	waitState(t, hs, first.ID, serve.StateDone, 30*time.Second)
	if got := reg.Gauge(`agingfp_serve_cache_entries`).Value(); got != 1 {
		t.Fatalf("cache entries gauge = %g, want 1", got)
	}
	if got := reg.Counter(`agingfp_serve_cache_evictions_total`).Value(); got != 0 {
		t.Fatalf("evictions before overflow = %d, want 0", got)
	}

	second, _ := postJob(t, hs, `{"bench": "B1", "seed": 62}`)
	waitState(t, hs, second.ID, serve.StateDone, 30*time.Second)
	if got := reg.Counter(`agingfp_serve_cache_evictions_total`).Value(); got != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", got)
	}
	if got := reg.Gauge(`agingfp_serve_cache_entries`).Value(); got != 1 {
		t.Fatalf("cache entries gauge after eviction = %g, want 1 (bounded)", got)
	}

	// The first job's entry was evicted: an identical resubmission must
	// miss and re-run rather than hit.
	resubmit, _ := postJob(t, hs, `{"bench": "B1", "seed": 61}`)
	if resubmit.State == serve.StateDone {
		t.Fatal("evicted entry served a cache hit")
	}
	waitState(t, hs, resubmit.ID, serve.StateDone, 30*time.Second)
}
