package serve_test

import (
	"agingfp/internal/serve"
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
)

// progressDocument is sized so individual LP solves finish in a couple
// of seconds (the progress counters visibly move) while the whole solve
// runs for minutes — unlike slowDocument, whose single LPs are too big
// to complete before the cancellation tests interrupt them.
var progressDocument = sync.OnceValue(func() string {
	d, err := bench.Synthesize(bench.Spec{
		Name: "crawler", Contexts: 8, Fabric: arch.Fabric{W: 10, H: 10},
		TotalOps: 400, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	doc, err := json.Marshal(arch.ToDocument(d, nil))
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf(`{"design": %s}`, doc)
})

// TestProgressPollingMidSolve is the end-to-end progress contract: a
// slow job exposes live, monotonically advancing counters through
// GET /v1/jobs/{id}/progress while the solver runs, and a cancel leaves
// a terminal done=true snapshot behind. Run under -race this also
// exercises the lock-free reporter against concurrent HTTP readers.
func TestProgressPollingMidSolve(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, progressDocument())
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateRunning, 10*time.Second)

	// Poll until the solver has demonstrably moved twice, asserting the
	// monotone-counter contract on every observation.
	var lastSeq uint64
	var lastLP int64
	advances := 0
	deadline := time.Now().Add(90 * time.Second)
	for (advances < 2 || lastLP == 0) && time.Now().Before(deadline) {
		var ps serve.ProgressSnapshot
		if code := getJSON(t, hs.URL+"/v1/jobs/"+snap.ID+"/progress", &ps); code != http.StatusOK {
			t.Fatalf("progress poll: HTTP %d", code)
		}
		if ps.ID != snap.ID || ps.TraceID != snap.TraceID {
			t.Fatalf("progress identity %q/%q, want %q/%q", ps.ID, ps.TraceID, snap.ID, snap.TraceID)
		}
		p := ps.Progress
		if p.Seq < lastSeq {
			t.Fatalf("seq went backwards: %d after %d", p.Seq, lastSeq)
		}
		if p.LPSolves < lastLP {
			t.Fatalf("lp_solves went backwards: %d after %d", p.LPSolves, lastLP)
		}
		if p.Done {
			t.Fatalf("running job published done=true: %+v", p)
		}
		if p.Seq > lastSeq && p.Seq > 0 {
			advances++
		}
		lastSeq, lastLP = p.Seq, p.LPSolves
		time.Sleep(10 * time.Millisecond)
	}
	if advances < 2 {
		t.Fatalf("progress never advanced twice (last seq %d)", lastSeq)
	}
	if lastLP == 0 {
		t.Fatalf("lp_solves stayed 0 mid-solve")
	}

	// Cancel and require the terminal event on the same endpoint.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, hs, snap.ID, serve.StateCanceled, 10*time.Second)

	var final serve.ProgressSnapshot
	getJSON(t, hs.URL+"/v1/jobs/"+snap.ID+"/progress", &final)
	if !final.Progress.Done || final.Progress.Status != string(serve.StateCanceled) {
		t.Fatalf("terminal progress = %+v, want done=true status=canceled", final.Progress)
	}
	if final.Progress.Seq <= lastSeq {
		t.Fatalf("terminal seq %d did not advance past %d", final.Progress.Seq, lastSeq)
	}
}

// TestEventsStream reads the SSE endpoint end to end: events arrive with
// strictly increasing sequence numbers and the stream terminates itself
// on the Done event.
func TestEventsStream(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != snap.TraceID {
		t.Fatalf("X-Trace-Id = %q, want %q", got, snap.TraceID)
	}

	var events []serve.ProgressSnapshot
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.ProgressSnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	// The server closes the stream after Done; the scanner just ends.
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events before stream end")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Progress.Seq <= events[i-1].Progress.Seq {
			t.Fatalf("event %d seq %d not above %d", i, events[i].Progress.Seq, events[i-1].Progress.Seq)
		}
	}
	last := events[len(events)-1]
	if !last.Progress.Done || last.Progress.Status != string(serve.StateDone) {
		t.Fatalf("final event = %+v, want done=true status=done", last.Progress)
	}
}

// syncBuffer lets the worker goroutines and the request middleware log
// concurrently into one buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestLogTraceCorrelation is the correlation golden test: every log
// record the job produces — lifecycle lines from the worker and request
// lines from the middleware — carries the same trace_id the API returns
// in serve.Snapshot.TraceID and the X-Trace-Id header.
func TestLogTraceCorrelation(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, hs, _ := testServer(t, serve.Config{Workers: 1, Logger: logger})

	snap, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if len(snap.TraceID) != 16 {
		t.Fatalf("TraceID = %q, want 16 hex chars", snap.TraceID)
	}
	waitState(t, hs, snap.ID, serve.StateDone, 2*time.Minute)

	// A status poll after completion must echo the ID in the header.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != snap.TraceID {
		t.Fatalf("X-Trace-Id = %q, want %q", got, snap.TraceID)
	}

	// Parse the structured log: lifecycle records keyed by job_id must all
	// carry the job's trace_id, and the request log for the poll above must
	// carry the same one.
	var lifecycle, requests int
	for _, line := range logBuf.lines() {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		switch {
		case rec["job_id"] == snap.ID:
			lifecycle++
			if rec["trace_id"] != snap.TraceID {
				t.Fatalf("lifecycle record %q trace_id = %v, want %q", rec["msg"], rec["trace_id"], snap.TraceID)
			}
		case rec["msg"] == "http request" && rec["trace_id"] != nil:
			requests++
			if rec["trace_id"] != snap.TraceID {
				t.Fatalf("request record trace_id = %v, want %q", rec["trace_id"], snap.TraceID)
			}
		}
	}
	// At minimum: submitted, started, finished.
	if lifecycle < 3 {
		t.Fatalf("%d lifecycle records, want >= 3", lifecycle)
	}
	if requests == 0 {
		t.Fatal("no request records carried the trace_id")
	}
}

// TestMetricsStateGauges checks the live per-state job gauges and the
// queue metrics surface on /metrics after a job completes.
func TestMetricsStateGauges(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	snap, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, snap.ID, serve.StateDone, 2*time.Minute)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`agingfp_serve_jobs{state="done"} 1`,
		`agingfp_serve_jobs{state="queued"} 0`,
		`agingfp_serve_jobs{state="running"} 0`,
		`agingfp_serve_queue_depth 0`,
		`agingfp_serve_queue_wait_seconds_count 1`,
		`agingfp_serve_job_seconds_count 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The histograms must carry bucketed exposition, not just sums.
	if !strings.Contains(body, `agingfp_serve_queue_wait_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics missing queue-wait +Inf bucket:\n%s", body)
	}
}

func readAll(resp *http.Response) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}

// TestPprofGated checks the profile handlers mount only on request.
func TestPprofGated(t *testing.T) {
	_, off, _ := testServer(t, serve.Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: HTTP %d, want 404", resp.StatusCode)
	}

	_, on, _ := testServer(t, serve.Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestTraceEndpoint checks the per-job span capture: 404 with a typed
// error when capture is off, JSONL spans mentioning the remap flow when
// on — and the capture works without any process-wide sink configured.
func TestTraceEndpoint(t *testing.T) {
	_, off, _ := testServer(t, serve.Config{Workers: 1})
	snap, code := postJob(t, off, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, off, snap.ID, serve.StateDone, 2*time.Minute)
	resp, err := http.Get(off.URL + "/v1/jobs/" + snap.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("capture off: HTTP %d, want 404", resp.StatusCode)
	}

	_, on, _ := testServer(t, serve.Config{Workers: 1, CaptureTraces: true})
	snap, code = postJob(t, on, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, on, snap.ID, serve.StateDone, 2*time.Minute)
	resp, err = http.Get(on.URL + "/v1/jobs/" + snap.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capture on: HTTP %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("captured trace is empty")
	}
	var sawRemap bool
	for _, line := range lines {
		var ev map[string]interface{}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q is not JSON: %v", line, err)
		}
		if name, _ := ev["name"].(string); strings.HasPrefix(name, "core.remap") {
			sawRemap = true
		}
	}
	if !sawRemap {
		t.Fatalf("no core.remap span in %d captured lines", len(lines))
	}
}

// TestCacheHitTerminalProgress: a cache-served job must still expose a
// terminal progress snapshot so SSE/poll clients terminate.
func TestCacheHitTerminalProgress(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})

	first, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, hs, first.ID, serve.StateDone, 2*time.Minute)

	second, code := postJob(t, hs, `{"bench": "B1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	if second.State != serve.StateDone {
		t.Fatalf("cache hit state %q, want done", second.State)
	}
	var ps serve.ProgressSnapshot
	if code := getJSON(t, hs.URL+"/v1/jobs/"+second.ID+"/progress", &ps); code != http.StatusOK {
		t.Fatalf("progress: HTTP %d", code)
	}
	if !ps.Progress.Done || ps.Progress.Status != string(serve.StateDone) {
		t.Fatalf("cache-hit progress = %+v, want done=true status=done", ps.Progress)
	}
	if second.TraceID == first.TraceID {
		t.Fatal("cache hit reused the original trace ID; wants its own")
	}
}
