package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/place"
	"agingfp/internal/serve"
	"agingfp/internal/serve/client"
)

// designDoc synthesizes a small design and packages it as a document
// with a baseline mapping — the shape a real client submits.
func designDoc(t *testing.T, name string, totalOps, contexts, w, h int, seed int64) *arch.Document {
	t.Helper()
	d, err := bench.Synthesize(bench.Spec{
		Name: name, Contexts: contexts, Fabric: arch.Fabric{W: w, H: h},
		TotalOps: totalOps, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return arch.ToDocument(d, map[string]arch.Mapping{"baseline": m0})
}

// renumberDoc applies an op permutation (new index = perm[old index])
// and a cosmetic rename — the structurally-equal-but-byte-different
// resubmission the semantic cache tier exists for.
func renumberDoc(t *testing.T, doc *arch.Document, perm []int) *arch.Document {
	t.Helper()
	if len(perm) != len(doc.Ops) {
		t.Fatalf("perm length %d, ops %d", len(perm), len(doc.Ops))
	}
	out := &arch.Document{
		Name:            doc.Name + "-renumbered",
		FabricW:         doc.FabricW,
		FabricH:         doc.FabricH,
		NumContexts:     doc.NumContexts,
		ClockPeriodNs:   doc.ClockPeriodNs,
		UnitWireDelayNs: doc.UnitWireDelayNs,
	}
	out.Ops = make([]arch.DocOp, len(doc.Ops))
	for i, op := range doc.Ops {
		out.Ops[perm[i]] = op
	}
	out.Edges = make([][2]int, len(doc.Edges))
	for k, e := range doc.Edges {
		out.Edges[k] = [2]int{perm[e[0]], perm[e[1]]}
	}
	if doc.Mappings != nil {
		out.Mappings = make(map[string][][2]int, len(doc.Mappings))
		for name, m := range doc.Mappings {
			m2 := make([][2]int, len(m))
			for i, xy := range m {
				m2[perm[i]] = xy
			}
			out.Mappings[name] = m2
		}
	}
	return out
}

func reversePerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

// copyDoc deep-copies a document through its JSON form.
func copyDoc(t *testing.T, doc *arch.Document) *arch.Document {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var out arch.Document
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestSemanticCacheHit is the tentpole's first acceptance test: a
// renumbered-but-isomorphic resubmission must be answered from the
// semantic tier with zero solver work, and the served bytes must equal
// what a cold solve of that same renumbered document produces on a
// fresh server.
func TestSemanticCacheHit(t *testing.T) {
	doc := designDoc(t, "sem-e2e", 10, 3, 3, 3, 7)
	renumbered := renumberDoc(t, doc, reversePerm(len(doc.Ops)))
	ctx := context.Background()

	_, hs, reg := testServer(t, serve.Config{Workers: 1})
	cl := testClient(hs)

	first, err := cl.Submit(ctx, &serve.JobRequest{Design: doc})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hs, first.ID, serve.StateDone, 60*time.Second)

	second, err := cl.Submit(ctx, &serve.JobRequest{Design: renumbered})
	if err != nil {
		t.Fatal(err)
	}
	if second.State != serve.StateDone {
		t.Fatalf("semantic hit not served instantly: state %q", second.State)
	}
	if second.SolveKind != "semantic_hit" {
		t.Fatalf("solve_kind %q, want semantic_hit", second.SolveKind)
	}
	if got := reg.Counter(`agingfp_cache_semantic_hits_total`).Value(); got != 1 {
		t.Fatalf("semantic hits = %d, want 1", got)
	}
	if got := reg.Counter(`agingfp_serve_cache_tier_hits_total{tier="semantic"}`).Value(); got != 1 {
		t.Fatalf("semantic tier hits = %d, want 1", got)
	}
	if got := reg.Counter(`agingfp_serve_cache_hits_total`).Value(); got != 0 {
		t.Fatalf("exact hits = %d, want 0 (the bytes differ)", got)
	}

	semBytes, _, err := cl.Result(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identity: a fresh server cold-solving the renumbered doc
	// must produce exactly the bytes the semantic replay served.
	_, hs2, _ := testServer(t, serve.Config{Workers: 1})
	cl2 := testClient(hs2)
	cold, err := cl2.Submit(ctx, &serve.JobRequest{Design: renumbered})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hs2, cold.ID, serve.StateDone, 60*time.Second)
	coldBytes, _, err := cl2.Result(ctx, cold.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(semBytes, coldBytes) {
		t.Fatalf("semantic replay differs from cold solve:\n%s\nvs\n%s", semBytes, coldBytes)
	}

	// Resubmitting the renumbered doc a second time is now an exact hit
	// (the semantic hit promoted it), not another semantic one.
	third, err := cl.Submit(ctx, &serve.JobRequest{Design: renumbered})
	if err != nil {
		t.Fatal(err)
	}
	if third.State != serve.StateDone || third.SolveKind != "exact_hit" {
		t.Fatalf("promoted resubmission: state %q solve_kind %q", third.State, third.SolveKind)
	}
}

// TestDeltaWarmBeatsCold is the tentpole's second acceptance test: a
// one-op delta re-solve seeded from the base job must complete with
// measurably fewer simplex iterations than a cold solve of the same
// mutated design.
func TestDeltaWarmBeatsCold(t *testing.T) {
	doc := designDoc(t, "delta-e2e", 24, 4, 4, 4, 9)
	ctx := context.Background()

	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	cl := testClient(hs)

	base, err := cl.Submit(ctx, &serve.JobRequest{Design: doc, Mode: "freeze"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hs, base.ID, serve.StateDone, 120*time.Second)

	mutated := copyDoc(t, doc)
	mutated.Ops[0].Kind = 1 - mutated.Ops[0].Kind

	delta, err := cl.Delta(ctx, base.ID, &serve.DeltaRequest{Design: mutated})
	if err != nil {
		t.Fatal(err)
	}
	if delta.SolveKind != "delta" || delta.BaseJob != base.ID {
		t.Fatalf("delta snapshot: %+v", delta)
	}
	final := waitState(t, hs, delta.ID, serve.StateDone, 120*time.Second)
	if final.DeltaFallback != "" {
		t.Fatalf("one-op delta fell back cold: %q", final.DeltaFallback)
	}
	if final.Reuse == nil {
		t.Fatal("seeded delta reported no reuse info")
	}
	_, warmRes, err := cl.Result(ctx, delta.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Cold comparator: the same mutated design solved from scratch on a
	// fresh server under identical options.
	_, hs2, _ := testServer(t, serve.Config{Workers: 1})
	cl2 := testClient(hs2)
	cold, err := cl2.Submit(ctx, &serve.JobRequest{Design: mutated, Mode: "freeze"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hs2, cold.ID, serve.StateDone, 120*time.Second)
	_, coldRes, err := cl2.Result(ctx, cold.ID)
	if err != nil {
		t.Fatal(err)
	}

	if warmRes.Stats.SimplexIters >= coldRes.Stats.SimplexIters {
		t.Fatalf("warm delta used %d simplex iters, cold solve %d — seeding bought nothing",
			warmRes.Stats.SimplexIters, coldRes.Stats.SimplexIters)
	}
	if warmRes.Stats.STProbes > coldRes.Stats.STProbes {
		t.Fatalf("warm delta used %d ST probes, cold solve %d",
			warmRes.Stats.STProbes, coldRes.Stats.STProbes)
	}
	if warmRes.Status != "feasible" && warmRes.Status != "optimal" {
		t.Fatalf("warm delta status %q", warmRes.Status)
	}
}

// TestDeltaFallbackReasons: deltas that invalidate the base's
// artifacts must still solve — cold — and say why.
func TestDeltaFallback(t *testing.T) {
	doc := designDoc(t, "fallback-e2e", 10, 3, 3, 3, 11)
	ctx := context.Background()

	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	cl := testClient(hs)
	base, err := cl.Submit(ctx, &serve.JobRequest{Design: doc})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hs, base.ID, serve.StateDone, 60*time.Second)

	// Removing an op breaks the position-stable alignment.
	smaller := copyDoc(t, doc)
	last := len(smaller.Ops) - 1
	smaller.Ops = smaller.Ops[:last]
	kept := smaller.Edges[:0]
	for _, e := range smaller.Edges {
		if e[0] != last && e[1] != last {
			kept = append(kept, e)
		}
	}
	smaller.Edges = kept
	for name, m := range smaller.Mappings {
		smaller.Mappings[name] = m[:last]
	}

	delta, err := cl.Delta(ctx, base.ID, &serve.DeltaRequest{Design: smaller})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, hs, delta.ID, serve.StateDone, 60*time.Second)
	if final.DeltaFallback != "ops_removed" {
		t.Fatalf("delta_fallback %q, want ops_removed", final.DeltaFallback)
	}
	if _, res, err := cl.Result(ctx, delta.ID); err != nil {
		t.Fatal(err)
	} else if len(res.Mapping) != last {
		t.Fatalf("fallback result has %d mapping entries, want %d", len(res.Mapping), last)
	}
}

// TestDeltaBaseValidation: deltas against missing or unfinished base
// jobs are typed rejections, not queued work.
func TestDeltaBaseValidation(t *testing.T) {
	ctx := context.Background()
	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	cl := testClient(hs)
	doc := designDoc(t, "basecheck-e2e", 8, 2, 3, 3, 13)

	if _, err := cl.Delta(ctx, "job-999999", &serve.DeltaRequest{Design: doc}); err == nil {
		t.Fatal("delta against unknown base: want error")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown base error: %v", err)
	}

	slow, code := postJob(t, hs, slowDocument())
	if code != http.StatusAccepted {
		t.Fatalf("slow submit: HTTP %d", code)
	}
	if _, err := cl.Delta(ctx, slow.ID, &serve.DeltaRequest{Design: doc}); err == nil {
		t.Fatal("delta against unfinished base: want error")
	} else if apiErr, ok := err.(*client.APIError); !ok ||
		apiErr.Status != http.StatusConflict || apiErr.Code != serve.CodeBaseNotReady {
		t.Fatalf("unfinished base error: %v", err)
	}
	if _, err := cl.Cancel(ctx, slow.ID); err != nil {
		t.Fatal(err)
	}
}

// TestErrorEnvelope pins the unified /v1 error shape on the wire.
func TestErrorEnvelope(t *testing.T) {
	_, hs, _ := testServer(t, serve.Config{Workers: 1})
	resp, err := http.Get(hs.URL + "/v1/jobs/job-424242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", resp.StatusCode)
	}
	var body serve.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != serve.CodeNotFound || body.Error.Message == "" {
		t.Fatalf("envelope %+v", body)
	}
}
