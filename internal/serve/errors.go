package serve

import (
	"errors"
	"net/http"
)

// ErrorCode is the machine-readable classification every /v1 error
// response carries. Clients branch on the code, humans read the
// message; the two never need to agree on wording.
type ErrorCode string

const (
	// CodeBadRequest: the request itself is invalid (malformed JSON,
	// unknown benchmark, bad options). 400.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: no such job, or the requested sub-resource (trace,
	// flight journal, telemetry) is not enabled. 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeNotDone: the job exists but has not finished. 409.
	CodeNotDone ErrorCode = "not_done"
	// CodeBaseNotReady: a delta submission names a base job that has
	// not finished successfully. 409.
	CodeBaseNotReady ErrorCode = "base_not_ready"
	// CodeUnavailable: the server is refusing intake (queue full or
	// draining). 503.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal: everything else. 500.
	CodeInternal ErrorCode = "internal"
)

// ErrorBody is the one JSON envelope every /v1 error response uses:
//
//	{"error": {"code": "...", "message": "...", "trace_id": "..."}}
//
// trace_id is present when the route resolved a job, so a client can
// quote the same correlation ID the server logged.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the payload inside the envelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	TraceID string    `json:"trace_id,omitempty"`
}

// classify maps a service error to its envelope code and HTTP status.
func classify(err error) (ErrorCode, int) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		return CodeBadRequest, http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		return CodeUnavailable, http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoTrace), errors.Is(err, ErrNoFlight),
		errors.Is(err, ErrNoTelemetry), errors.Is(err, ErrNoSLO):
		return CodeNotFound, http.StatusNotFound
	case errors.Is(err, ErrBaseNotReady):
		return CodeBaseNotReady, http.StatusConflict
	case errors.Is(err, ErrNotDone):
		return CodeNotDone, http.StatusConflict
	default:
		return CodeInternal, http.StatusInternalServerError
	}
}

// httpError writes the unified error envelope. The trace ID rides the
// X-Trace-Id header handlers stamp before failing, so the envelope and
// the header always agree.
func httpError(w http.ResponseWriter, err error) {
	code, status := classify(err)
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{
		Code:    code,
		Message: err.Error(),
		TraceID: w.Header().Get("X-Trace-Id"),
	}})
}
