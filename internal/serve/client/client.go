// Package client is the typed Go client for the agingfloord HTTP API.
// It speaks the same wire types the server defines (serve.JobRequest,
// serve.Snapshot, serve.JobResult, ...), decodes the unified error
// envelope into *APIError, and owns the poll-until-done loop every
// caller was otherwise hand-rolling.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"agingfp/internal/serve"
	"agingfp/internal/slo"
)

// APIError is a non-2xx response decoded from the server's error
// envelope. Status is the HTTP code; Code the machine-readable
// classification; TraceID correlates with the server's logs when the
// route resolved a job.
type APIError struct {
	Status  int
	Code    serve.ErrorCode
	Message string
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("%s (http %d, code %s, trace %s)", e.Message, e.Status, e.Code, e.TraceID)
	}
	return fmt.Sprintf("%s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// Client talks to one agingfloord server.
type Client struct {
	base string
	http *http.Client
	// PollInterval paces Wait's status polling (default 150ms).
	PollInterval time.Duration
	// Tenant, when set, rides every request as the X-Tenant header — the
	// accounting identity the server attributes jobs and resource usage
	// to. Empty submits anonymously (the server accounts it as "anon").
	Tenant string
}

// New builds a client for the server at base (e.g.
// "http://localhost:8080"). A nil httpClient uses a dedicated client
// with no global timeout — job waits are bounded by the caller's
// context, not a transport knob.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{
		base:         strings.TrimRight(base, "/"),
		http:         httpClient,
		PollInterval: 150 * time.Millisecond,
	}
}

// do issues one request and decodes errors into *APIError. A nil out
// skips body decoding; *[]byte captures the raw body; anything else is
// JSON-decoded into.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
		var envelope serve.ErrorBody
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Message != "" {
			apiErr.Code = envelope.Error.Code
			apiErr.Message = envelope.Error.Message
			apiErr.TraceID = envelope.Error.TraceID
		}
		return apiErr
	}
	switch dst := out.(type) {
	case nil:
		return nil
	case *[]byte:
		*dst = raw
		return nil
	default:
		return json.Unmarshal(raw, out)
	}
}

// Submit posts a job and returns its snapshot (202).
func (c *Client) Submit(ctx context.Context, req *serve.JobRequest) (serve.Snapshot, error) {
	var snap serve.Snapshot
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &snap)
	return snap, err
}

// Delta posts an incremental re-solve against a finished base job.
func (c *Client) Delta(ctx context.Context, baseID string, req *serve.DeltaRequest) (serve.Snapshot, error) {
	var snap serve.Snapshot
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(baseID)+"/delta", req, &snap)
	return snap, err
}

// Job fetches a job's status snapshot.
func (c *Client) Job(ctx context.Context, id string) (serve.Snapshot, error) {
	var snap serve.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Result fetches a finished job's raw result document and its decoded
// form. The raw bytes are returned so byte-exactness (the cache
// contract) survives the client.
func (c *Client) Result(ctx context.Context, id string) ([]byte, *serve.JobResult, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &raw); err != nil {
		return nil, nil, err
	}
	var res serve.JobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return raw, nil, err
	}
	return raw, &res, nil
}

// Progress fetches the latest solver-progress snapshot.
func (c *Client) Progress(ctx context.Context, id string) (serve.ProgressSnapshot, error) {
	var prog serve.ProgressSnapshot
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/progress", nil, &prog)
	return prog, err
}

// Report fetches the flight-recorder report. format is "json", "text",
// or "journal" ("" = server default).
func (c *Client) Report(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/report"
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	var raw []byte
	err := c.do(ctx, http.MethodGet, path, nil, &raw)
	return raw, err
}

// Trace fetches the job's captured JSONL span trace.
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, &raw)
	return raw, err
}

// Stats fetches the windowed telemetry summary ("" = server default
// window; otherwise a Go duration string like "15m").
func (c *Client) Stats(ctx context.Context, window string) ([]byte, error) {
	path := "/v1/stats"
	if window != "" {
		path += "?window=" + url.QueryEscape(window)
	}
	var raw []byte
	err := c.do(ctx, http.MethodGet, path, nil, &raw)
	return raw, err
}

// SLO fetches the server's service-level-objective status: per-objective
// SLIs, error-budget remaining, and multi-window burn rates. window ""
// uses the server default (the engine's full ring span); otherwise a Go
// duration string like "1h". 404 (*APIError) when the server runs
// without an SLO engine.
func (c *Client) SLO(ctx context.Context, window string) (*slo.Status, error) {
	path := "/v1/slo"
	if window != "" {
		path += "?window=" + url.QueryEscape(window)
	}
	var st slo.Status
	if err := c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cooperative cancellation and returns the job's
// post-cancel snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (serve.Snapshot, error) {
	var snap serve.Snapshot
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Version fetches the server's build identity.
func (c *Client) Version(ctx context.Context) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &raw)
	return raw, err
}

// OpenAPI fetches the served API description.
func (c *Client) OpenAPI(ctx context.Context) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/openapi.json", nil, &raw)
	return raw, err
}

// Wait polls until the job reaches a terminal state (done, failed,
// canceled) and returns the final snapshot. The context bounds the
// wait; a failed or canceled job is returned with a nil error — the
// caller decides whether that is a problem.
func (c *Client) Wait(ctx context.Context, id string) (serve.Snapshot, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 150 * time.Millisecond
	}
	for {
		snap, err := c.Job(ctx, id)
		if err != nil {
			return snap, err
		}
		switch snap.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-time.After(interval):
		}
	}
}
