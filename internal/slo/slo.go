// Package slo is the service-level-objective engine for agingfloord:
// declarative objectives over the telemetry event stream, windowed SLIs,
// error-budget tracking, and Google-SRE-style multi-window burn-rate
// alerting.
//
// The engine deliberately does NOT read the telemetry aggregation ring:
// the slow burn pair needs a 6-hour window, twice the default ring span,
// and objective classification needs only two integers per event. So the
// engine keeps its own ring of per-objective good/eligible counters
// (tiny: two int64 per objective per minute cell) and subscribes to the
// pipeline through telemetry.Config.Observers — which also feeds it the
// durable history replayed at open, so error budgets survive restarts.
//
// Alerting follows the multi-window multi-burn-rate recipe: a "fast"
// pair (5m + 1h) catches sharp regressions within minutes, a "slow" pair
// (30m + 6h) catches slow bleeds; each pair fires only when BOTH of its
// windows burn past the pair's threshold, so a brief spike that the long
// window has already absorbed does not page anyone. Thresholds are
// clamped per objective: a target of 0.90 caps the achievable burn rate
// at 1/(1-0.90) = 10, so the canonical 14.4 would be unreachable and the
// defaults scale with the budget instead.
package slo

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/obs"
	"agingfp/internal/telemetry"
)

// Kind classifies what an objective measures.
type Kind string

const (
	// KindAvailability: the fraction of terminal, non-canceled jobs that
	// did not fail. Cache hits count (they are served requests).
	KindAvailability Kind = "availability"
	// KindLatency: the fraction of solved jobs in one shape bucket that
	// finished under the objective's latency target.
	KindLatency Kind = "latency"
)

// Objective is one declarative service-level objective.
type Objective struct {
	// Name keys the objective everywhere: /v1/slo, the slo= metric
	// label, and the burn-rate alert log line.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Kind        Kind   `json:"kind"`
	// Target is the good-fraction objective (e.g. 0.99 = "99% of
	// eligible events are good"). Must be < 1 — a zero error budget
	// makes burn rates undefined; New clamps to 0.9999.
	Target float64 `json:"target"`

	// Shape scopes a latency objective to one telemetry shape bucket
	// (telemetry.ShapeBucketFor); LatencyTargetMs is its per-job bound.
	// Both are ignored for availability objectives.
	Shape           string  `json:"shape,omitempty"`
	LatencyTargetMs float64 `json:"latency_target_ms,omitempty"`

	// FastBurn / SlowBurn override the pair thresholds (0 = derived:
	// fast = min(14.4, 0.5/(1-target)), slow = min(6, 0.25/(1-target))).
	FastBurn float64 `json:"fast_burn,omitempty"`
	SlowBurn float64 `json:"slow_burn,omitempty"`
}

// classify maps one event onto the objective: whether it is eligible at
// all, and if so whether it was good.
func (o *Objective) classify(ev *telemetry.SolveEvent) (eligible, good bool) {
	switch o.Kind {
	case KindAvailability:
		if ev.Canceled() {
			return false, false // the client walked away; not an outcome
		}
		return true, !ev.Failed()
	case KindLatency:
		if !ev.Solved() || ev.ShapeBucket() != o.Shape {
			return false, false
		}
		return true, ev.ElapsedMs <= o.LatencyTargetMs
	default:
		return false, false
	}
}

// fastBurn / slowBurn resolve the pair thresholds with the
// budget-scaled clamp applied.
func (o *Objective) fastBurn() float64 {
	if o.FastBurn > 0 {
		return o.FastBurn
	}
	return math.Min(14.4, 0.5/(1-o.Target))
}

func (o *Objective) slowBurn() float64 {
	if o.SlowBurn > 0 {
		return o.SlowBurn
	}
	return math.Min(6, 0.25/(1-o.Target))
}

// The two alert pairs: each fires only when both of its windows burn
// past the pair threshold.
var (
	fastPair = burnPair{name: "fast", short: 5 * time.Minute, long: time.Hour}
	slowPair = burnPair{name: "slow", short: 30 * time.Minute, long: 6 * time.Hour}
)

type burnPair struct {
	name        string
	short, long time.Duration
}

// Config sizes the engine.
type Config struct {
	// Step and Cells shape the counter ring (defaults: 1m × 360 = 6h,
	// enough to evaluate the slow pair's long window).
	Step  time.Duration
	Cells int
	// Registry receives the budget and burn-rate gauges; Logger the
	// burn alerts. Both may be nil.
	Registry *obs.Registry
	Logger   *slog.Logger
	// Now injects a clock for tests (nil = time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = time.Minute
	}
	if c.Cells < 2 {
		c.Cells = int(slowPair.long/c.Step) + 1
		if c.Cells < 2 {
			c.Cells = 2
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloCell is one ring slot: per-objective good and eligible counts,
// indexed in objective declaration order.
type sloCell struct {
	start    int64 // unix nanoseconds of the slot start; 0 = empty
	good     []int64
	eligible []int64
}

// pairState latches each pair's alert per objective so the slog alert
// is edge-triggered (fires on the false→true transition, logs recovery
// on true→false) rather than spamming every event.
type pairState struct {
	fast, slow bool
}

// Engine evaluates a fixed objective set against the event stream.
// Nil-safe: every method on a nil *Engine is a no-op or zero value, so
// serve wires it unconditionally.
type Engine struct {
	cfg  Config
	objs []Objective

	mu     sync.Mutex
	cells  []sloCell
	alerts []pairState
}

// New builds an engine for the given objectives. Objective names must
// be unique (later duplicates are dropped); targets are clamped into
// (0, 0.9999].
func New(objs []Objective, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	seen := map[string]bool{}
	kept := make([]Objective, 0, len(objs))
	for _, o := range objs {
		if o.Name == "" || seen[o.Name] {
			continue
		}
		seen[o.Name] = true
		if o.Target >= 1 {
			o.Target = 0.9999
		}
		if o.Target <= 0 {
			o.Target = 0.99
		}
		kept = append(kept, o)
	}
	e := &Engine{
		cfg:    cfg,
		objs:   kept,
		cells:  make([]sloCell, cfg.Cells),
		alerts: make([]pairState, len(kept)),
	}
	// Publish the gauges at boot so dashboards see a full budget and a
	// zero burn before the first event, not an absent series.
	for i := range e.objs {
		e.publish(i)
	}
	return e
}

// Objectives returns the engine's objective set (copy).
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return append([]Objective(nil), e.objs...)
}

// Record folds one event into the counter ring and re-evaluates the
// event's objectives (gauges updated, alerts edge-triggered). Intended
// to be wired as a telemetry.Config observer.
func (e *Engine) Record(ev *telemetry.SolveEvent) {
	if e == nil || ev == nil {
		return
	}
	when := ev.Time
	if when.IsZero() {
		when = e.cfg.Now()
	}
	slotStart := when.Truncate(e.cfg.Step).UnixNano()
	idx := int((slotStart / int64(e.cfg.Step)) % int64(len(e.cells)))
	if idx < 0 {
		idx += len(e.cells)
	}

	touched := make([]int, 0, len(e.objs))
	e.mu.Lock()
	c := &e.cells[idx]
	if c.start != slotStart {
		if c.start > slotStart {
			e.mu.Unlock()
			return // beyond the ring horizon
		}
		*c = sloCell{
			start:    slotStart,
			good:     make([]int64, len(e.objs)),
			eligible: make([]int64, len(e.objs)),
		}
	}
	for i := range e.objs {
		eligible, good := e.objs[i].classify(ev)
		if !eligible {
			continue
		}
		c.eligible[i]++
		if good {
			c.good[i]++
		}
		touched = append(touched, i)
	}
	e.mu.Unlock()

	for _, i := range touched {
		e.publish(i)
	}
}

// counts merges the ring over the trailing window.
func (e *Engine) counts(obj int, window time.Duration) (good, eligible int64) {
	span := e.cfg.Step * time.Duration(len(e.cells))
	if window <= 0 || window > span {
		window = span
	}
	now := e.cfg.Now()
	since := now.Add(-window).Truncate(e.cfg.Step)
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.cells {
		c := &e.cells[i]
		if c.start == 0 {
			continue
		}
		start := time.Unix(0, c.start)
		if start.Before(since) || start.After(now) {
			continue
		}
		good += c.good[obj]
		eligible += c.eligible[obj]
	}
	return good, eligible
}

// burnRate is the error rate over the window divided by the error
// budget rate: 1.0 means the budget is being spent exactly at the rate
// that exhausts it over the budget window; 0 with no eligible traffic.
func (e *Engine) burnRate(obj int, window time.Duration) float64 {
	good, eligible := e.counts(obj, window)
	if eligible == 0 {
		return 0
	}
	errRate := float64(eligible-good) / float64(eligible)
	return errRate / (1 - e.objs[obj].Target)
}

// budgetRemaining is the fraction of the error budget left over the
// window (negative = overspent; 1 with no traffic).
func (e *Engine) budgetRemaining(obj int, window time.Duration) float64 {
	good, eligible := e.counts(obj, window)
	if eligible == 0 {
		return 1
	}
	budget := float64(eligible) * (1 - e.objs[obj].Target)
	return 1 - float64(eligible-good)/budget
}

// evaluate computes the current pair alerts for one objective.
func (e *Engine) evaluate(obj int) (st pairState, burns map[string]float64) {
	o := &e.objs[obj]
	burns = map[string]float64{}
	for _, pair := range []burnPair{fastPair, slowPair} {
		burns[pair.short.String()] = e.burnRate(obj, pair.short)
		burns[pair.long.String()] = e.burnRate(obj, pair.long)
	}
	st.fast = burns[fastPair.short.String()] >= o.fastBurn() && burns[fastPair.long.String()] >= o.fastBurn()
	st.slow = burns[slowPair.short.String()] >= o.slowBurn() && burns[slowPair.long.String()] >= o.slowBurn()
	return st, burns
}

// publish refreshes one objective's gauges and edge-triggers its burn
// alerts.
func (e *Engine) publish(obj int) {
	o := &e.objs[obj]
	st, burns := e.evaluate(obj)
	reg := e.cfg.Registry
	reg.Gauge(obs.Labeled("agingfp_slo_error_budget_remaining", "slo", o.Name)).Set(e.budgetRemaining(obj, 0))
	for window, burn := range burns {
		reg.Gauge(obs.Labeled(obs.Labeled("agingfp_slo_burn_rate", "slo", o.Name), "window", window)).Set(burn)
	}

	e.mu.Lock()
	prev := e.alerts[obj]
	e.alerts[obj] = st
	e.mu.Unlock()

	if e.cfg.Logger == nil {
		return
	}
	log := func(pair burnPair, threshold float64, firing bool) {
		level, msg := slog.LevelWarn, "SLO burn-rate alert"
		if !firing {
			level, msg = slog.LevelInfo, "SLO burn-rate alert cleared"
		}
		e.cfg.Logger.LogAttrs(context.Background(), level, msg,
			slog.String("slo", o.Name),
			slog.String("pair", pair.name),
			slog.Float64("burn_short", burns[pair.short.String()]),
			slog.Float64("burn_long", burns[pair.long.String()]),
			slog.Float64("threshold", threshold),
			slog.String("windows", pair.short.String()+"+"+pair.long.String()),
		)
	}
	if st.fast != prev.fast {
		log(fastPair, o.fastBurn(), st.fast)
	}
	if st.slow != prev.slow {
		log(slowPair, o.slowBurn(), st.slow)
	}
}

// ObjectiveStatus is one objective's entry in the /v1/slo document.
type ObjectiveStatus struct {
	Name            string  `json:"name"`
	Description     string  `json:"description,omitempty"`
	Kind            Kind    `json:"kind"`
	Target          float64 `json:"target"`
	Shape           string  `json:"shape,omitempty"`
	LatencyTargetMs float64 `json:"latency_target_ms,omitempty"`

	// Eligible / Good / SLI describe the status window; SLI is 1 with no
	// eligible traffic (an idle service is meeting its objectives).
	Eligible int64   `json:"eligible"`
	Good     int64   `json:"good"`
	SLI      float64 `json:"sli"`

	// ErrorBudgetRemaining is the budget fraction left over the status
	// window (negative = overspent).
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`

	// BurnRates keys burn by window ("5m0s", "30m0s", "1h0m0s",
	// "6h0m0s"); FastBurnThreshold / SlowBurnThreshold are the pair
	// trip points after the budget-scaled clamp.
	BurnRates         map[string]float64 `json:"burn_rates"`
	FastBurnThreshold float64            `json:"fast_burn_threshold"`
	SlowBurnThreshold float64            `json:"slow_burn_threshold"`
	FastAlert         bool               `json:"fast_alert"`
	SlowAlert         bool               `json:"slow_alert"`
	Alerting          bool               `json:"alerting"`
}

// Status is the GET /v1/slo payload.
type Status struct {
	Window     string            `json:"window"`
	Since      time.Time         `json:"since"`
	Until      time.Time         `json:"until"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Status evaluates every objective over the trailing window (0 = the
// full ring span). Nil on a nil engine.
func (e *Engine) Status(window time.Duration) *Status {
	if e == nil {
		return nil
	}
	span := e.cfg.Step * time.Duration(len(e.cells))
	if window <= 0 || window > span {
		window = span
	}
	now := e.cfg.Now()
	out := &Status{
		Window: window.String(),
		Since:  now.Add(-window),
		Until:  now,
	}
	for i := range e.objs {
		o := &e.objs[i]
		good, eligible := e.counts(i, window)
		st, burns := e.evaluate(i)
		os := ObjectiveStatus{
			Name:                 o.Name,
			Description:          o.Description,
			Kind:                 o.Kind,
			Target:               o.Target,
			Shape:                o.Shape,
			LatencyTargetMs:      o.LatencyTargetMs,
			Eligible:             eligible,
			Good:                 good,
			SLI:                  1,
			ErrorBudgetRemaining: e.budgetRemaining(i, window),
			BurnRates:            burns,
			FastBurnThreshold:    o.fastBurn(),
			SlowBurnThreshold:    o.slowBurn(),
			FastAlert:            st.fast,
			SlowAlert:            st.slow,
			Alerting:             st.fast || st.slow,
		}
		if eligible > 0 {
			os.SLI = float64(good) / float64(eligible)
		}
		out.Objectives = append(out.Objectives, os)
	}
	sort.Slice(out.Objectives, func(i, j int) bool { return out.Objectives[i].Name < out.Objectives[j].Name })
	return out
}

// Availability builds the standard availability objective.
func Availability(target float64) Objective {
	return Objective{
		Name:        "availability",
		Description: fmt.Sprintf("%.4g of terminal non-canceled jobs do not fail", target),
		Kind:        KindAvailability,
		Target:      target,
	}
}

// FromBaseline derives one latency objective per shape bucket present
// in the perf baseline: the target is the bucket's worst baseline
// elapsed time × factor (live solves share hardware with other jobs,
// so the bound is deliberately loose), and the objective asks that 90%
// of solved jobs in the bucket finish under it.
func FromBaseline(rep *bench.PerfReport, factor float64) []Objective {
	if rep == nil || factor <= 0 {
		return nil
	}
	worst := map[string]float64{}
	for _, r := range rep.Records {
		bucket := telemetry.ShapeBucketFor(r.Ops, r.Contexts)
		if r.ElapsedMs > worst[bucket] {
			worst[bucket] = r.ElapsedMs
		}
	}
	buckets := make([]string, 0, len(worst))
	for b := range worst {
		buckets = append(buckets, b)
	}
	sort.Strings(buckets)
	objs := make([]Objective, 0, len(buckets))
	for _, b := range buckets {
		target := worst[b] * factor
		objs = append(objs, Objective{
			Name:            "latency-" + b,
			Description:     fmt.Sprintf("90%% of %s solves finish under %.0fms (baseline worst × %.2g)", b, target, factor),
			Kind:            KindLatency,
			Target:          0.90,
			Shape:           b,
			LatencyTargetMs: target,
		})
	}
	return objs
}

// DefaultObjectives is the daemon's stock objective set: availability
// at availTarget plus baseline-seeded latency objectives (none when
// rep is nil).
func DefaultObjectives(availTarget float64, rep *bench.PerfReport, latencyFactor float64) []Objective {
	objs := []Objective{Availability(availTarget)}
	return append(objs, FromBaseline(rep, latencyFactor)...)
}
