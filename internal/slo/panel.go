package slo

import (
	"fmt"
	"html"
	"strings"

	"agingfp/internal/viz"
)

// PanelHTML renders one Status as an HTML fragment for the operator
// dashboard (/debug/dash). The telemetry dashboard cannot import this
// package (slo already imports telemetry), so serve passes the fragment
// through telemetry.Dashboard's extra parameter instead.
func PanelHTML(st *Status) string {
	var b strings.Builder
	b.WriteString(`<h2>Service-level objectives</h2>`)
	if st == nil || len(st.Objectives) == 0 {
		b.WriteString(`<div class="note">No SLO engine configured.</div>`)
		return b.String()
	}
	fmt.Fprintf(&b, `<div class="note">window %s &middot; burn rate 1.0 = budget exhausts exactly over the window</div>`,
		html.EscapeString(st.Window))

	// Budget bars: one bar per objective, floored at 0 so an overspent
	// budget renders as an empty bar (the table below carries the sign).
	labels := make([]string, 0, len(st.Objectives))
	vals := make([]float64, 0, len(st.Objectives))
	for _, o := range st.Objectives {
		labels = append(labels, o.Name)
		rem := o.ErrorBudgetRemaining * 100
		if rem < 0 {
			rem = 0
		}
		vals = append(vals, rem)
	}
	b.WriteString(`<div class="tile"><h3>Error budget remaining</h3>`)
	b.WriteString(viz.BarsSVG(labels, vals, "%"))
	b.WriteString(`</div>`)

	b.WriteString(`<table><thead><tr>` +
		`<th>objective</th><th>kind</th><th>target</th><th>SLI</th>` +
		`<th>eligible</th><th>budget left</th>` +
		`<th>burn 5m/1h</th><th>burn 30m/6h</th><th>alert</th>` +
		`</tr></thead><tbody>`)
	for _, o := range st.Objectives {
		alert := "ok"
		cls := "drift-ok"
		switch {
		case o.FastAlert && o.SlowAlert:
			alert, cls = "fast+slow", "drift-bad"
		case o.FastAlert:
			alert, cls = "fast", "drift-bad"
		case o.SlowAlert:
			alert, cls = "slow", "drift-bad"
		}
		fmt.Fprintf(&b,
			`<tr><td>%s</td><td>%s</td><td>%.4g</td><td>%.4g</td>`+
				`<td>%d</td><td>%.1f%%</td>`+
				`<td>%.2f / %.2f</td><td>%.2f / %.2f</td><td class="%s">%s</td></tr>`,
			html.EscapeString(o.Name), html.EscapeString(string(o.Kind)),
			o.Target, o.SLI,
			o.Eligible, o.ErrorBudgetRemaining*100,
			o.BurnRates["5m0s"], o.BurnRates["1h0m0s"],
			o.BurnRates["30m0s"], o.BurnRates["6h0m0s"],
			cls, alert)
	}
	b.WriteString(`</tbody></table>`)
	return b.String()
}
