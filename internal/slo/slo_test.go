package slo

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"

	"agingfp/internal/bench"
	"agingfp/internal/obs"
	"agingfp/internal/telemetry"
)

// testEngine builds an engine on a manual clock.
func testEngine(t *testing.T, objs []Objective, now *time.Time, cfg Config) *Engine {
	t.Helper()
	cfg.Now = func() time.Time { return *now }
	return New(objs, cfg)
}

func doneEvent(at time.Time) *telemetry.SolveEvent {
	return &telemetry.SolveEvent{Time: at, Source: telemetry.SourceServe, Status: "done", ElapsedMs: 100}
}

func failedEvent(at time.Time) *telemetry.SolveEvent {
	return &telemetry.SolveEvent{Time: at, Source: telemetry.SourceServe, Status: "failed", ElapsedMs: 100}
}

// Golden check of the budget and burn arithmetic: 100 eligible jobs,
// 5 failed, against a 99% availability objective. The error rate is
// 0.05 = 5× the 0.01 budget rate, so every window's burn rate is
// exactly 5; the budget allowed 1 failure and 5 were spent, so the
// remaining fraction is 1 - 5/1 = -4 (overspent, reported honestly).
func TestBurnRateAndBudgetGolden(t *testing.T) {
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{})

	for i := 0; i < 95; i++ {
		e.Record(doneEvent(now))
	}
	for i := 0; i < 5; i++ {
		e.Record(failedEvent(now))
	}

	st := e.Status(time.Hour)
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(st.Objectives))
	}
	o := st.Objectives[0]
	if o.Eligible != 100 || o.Good != 95 {
		t.Fatalf("eligible/good = %d/%d, want 100/95", o.Eligible, o.Good)
	}
	if math.Abs(o.SLI-0.95) > 1e-9 {
		t.Fatalf("SLI = %v, want 0.95", o.SLI)
	}
	if math.Abs(o.ErrorBudgetRemaining-(-4)) > 1e-9 {
		t.Fatalf("budget remaining = %v, want -4", o.ErrorBudgetRemaining)
	}
	for _, w := range []string{"5m0s", "30m0s", "1h0m0s", "6h0m0s"} {
		if math.Abs(o.BurnRates[w]-5) > 1e-9 {
			t.Fatalf("burn[%s] = %v, want 5", w, o.BurnRates[w])
		}
	}
	// Availability at 0.99: 0.5/0.01 = 50, so the canonical thresholds
	// survive the clamp.
	if o.FastBurnThreshold != 14.4 || o.SlowBurnThreshold != 6 {
		t.Fatalf("thresholds = %v/%v, want 14.4/6", o.FastBurnThreshold, o.SlowBurnThreshold)
	}
}

// A loose objective cannot burn faster than 1/(1-target); the derived
// thresholds must clamp below that ceiling or the alert could never
// fire.
func TestThresholdClampForLooseTargets(t *testing.T) {
	o := Objective{Name: "x", Kind: KindAvailability, Target: 0.90}
	if got := o.fastBurn(); math.Abs(got-5) > 1e-9 { // 0.5/0.1
		t.Fatalf("fastBurn = %v, want 5", got)
	}
	if got := o.slowBurn(); math.Abs(got-2.5) > 1e-9 { // 0.25/0.1
		t.Fatalf("slowBurn = %v, want 2.5", got)
	}
	tight := Objective{Name: "y", Kind: KindAvailability, Target: 0.99}
	if tight.fastBurn() != 14.4 || tight.slowBurn() != 6 {
		t.Fatalf("tight thresholds = %v/%v, want 14.4/6", tight.fastBurn(), tight.slowBurn())
	}
}

// Truth table, firing half: a failure burst with no healthy history
// makes every window equally hot, so BOTH windows of both pairs exceed
// their thresholds and both alerts fire — and the slog alert is
// edge-triggered (one warn per pair, not one per event) and names the
// SLO.
func TestBurnAlertBothWindowsHotFires(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{Logger: logger})

	for i := 0; i < 20; i++ {
		e.Record(failedEvent(now))
	}

	st := e.Status(0).Objectives[0]
	if !st.FastAlert || !st.SlowAlert || !st.Alerting {
		t.Fatalf("alerts fast=%v slow=%v, want both true", st.FastAlert, st.SlowAlert)
	}
	logs := buf.String()
	if n := strings.Count(logs, "SLO burn-rate alert"); n != 2 {
		t.Fatalf("warn lines = %d, want exactly 2 (one per pair, edge-triggered):\n%s", n, logs)
	}
	if !strings.Contains(logs, "slo=availability") {
		t.Fatalf("alert does not name the SLO:\n%s", logs)
	}
}

// Truth table, suppressed half: a long healthy history dilutes the
// long window, so only the short window goes hot and neither pair
// fires — the multi-window guard against paging on blips.
func TestBurnAlertOneWindowHotDoesNotFire(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{Logger: logger})

	// 55 minutes of healthy traffic...
	past := now.Add(-55 * time.Minute)
	for i := 0; i < 1000; i++ {
		e.Record(doneEvent(past))
	}
	// ...then a 20-job failure burst right now.
	for i := 0; i < 20; i++ {
		e.Record(failedEvent(now))
	}

	st := e.Status(0).Objectives[0]
	// 5m window: 20/20 failed → burn 100, hot.
	if st.BurnRates["5m0s"] < 14.4 {
		t.Fatalf("short-window burn = %v, want >= 14.4", st.BurnRates["5m0s"])
	}
	// 1h window: 20/1020 failed → burn ≈ 1.96, cold.
	if st.BurnRates["1h0m0s"] >= 14.4 {
		t.Fatalf("long-window burn = %v, want < 14.4", st.BurnRates["1h0m0s"])
	}
	if st.FastAlert || st.SlowAlert {
		t.Fatalf("alerts fast=%v slow=%v, want both false", st.FastAlert, st.SlowAlert)
	}
	if strings.Contains(buf.String(), "SLO burn-rate alert") {
		t.Fatalf("unexpected alert logged:\n%s", buf.String())
	}
}

// Recovery: after the burst ages out of both short windows, the alert
// clears and the clear is logged once.
func TestBurnAlertClearsAndLogsRecovery(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{Logger: logger})

	for i := 0; i < 20; i++ {
		e.Record(failedEvent(now))
	}
	if !e.Status(0).Objectives[0].Alerting {
		t.Fatal("burst did not trip the alert")
	}
	buf.Reset()

	// 40 minutes later a healthy job arrives: the failures are out of
	// the 5m and 30m windows, so both pairs drop cold.
	now = now.Add(40 * time.Minute)
	e.Record(doneEvent(now))

	st := e.Status(0).Objectives[0]
	if st.FastAlert || st.SlowAlert {
		t.Fatalf("alerts fast=%v slow=%v after recovery, want false", st.FastAlert, st.SlowAlert)
	}
	logs := buf.String()
	if n := strings.Count(logs, "SLO burn-rate alert cleared"); n != 2 {
		t.Fatalf("clear lines = %d, want 2 (one per pair):\n%s", n, logs)
	}
}

// Latency objectives are scoped to one shape bucket and judge only
// solved jobs against the per-job bound.
func TestLatencyObjectiveClassification(t *testing.T) {
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	bucket := telemetry.ShapeBucketFor(24, 4)
	obj := Objective{
		Name: "latency-small", Kind: KindLatency, Target: 0.90,
		Shape: bucket, LatencyTargetMs: 500,
	}
	e := testEngine(t, []Objective{obj}, &now, Config{})

	mk := func(ops int, elapsed float64, status string) *telemetry.SolveEvent {
		return &telemetry.SolveEvent{Time: now, Status: status, Ops: ops, Contexts: 4, ElapsedMs: elapsed}
	}
	e.Record(mk(24, 100, "done"))   // in bucket, fast → good
	e.Record(mk(24, 900, "done"))   // in bucket, slow → bad
	e.Record(mk(500, 9000, "done")) // other bucket → ineligible
	e.Record(mk(24, 100, "failed")) // not solved → ineligible
	ev := mk(24, 100, "done")
	ev.CacheHit = true
	e.Record(ev) // cache hit → ineligible (no solver ran)

	o := e.Status(time.Hour).Objectives[0]
	if o.Eligible != 2 || o.Good != 1 {
		t.Fatalf("eligible/good = %d/%d, want 2/1", o.Eligible, o.Good)
	}
	if math.Abs(o.SLI-0.5) > 1e-9 {
		t.Fatalf("SLI = %v, want 0.5", o.SLI)
	}
}

// An idle service meets its objectives: full budget, zero burn, SLI 1.
func TestIdleEngineReportsFullBudget(t *testing.T) {
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	reg := obs.NewRegistry()
	e := testEngine(t, []Objective{Availability(0.999)}, &now, Config{Registry: reg})

	o := e.Status(0).Objectives[0]
	if o.SLI != 1 || o.ErrorBudgetRemaining != 1 || o.Alerting {
		t.Fatalf("idle status = %+v, want SLI 1, budget 1, no alert", o)
	}
	// New publishes the gauges at boot so scrapes see the series before
	// the first event.
	g := reg.Gauge(obs.Labeled("agingfp_slo_error_budget_remaining", "slo", "availability"))
	if g.Value() != 1 {
		t.Fatalf("boot budget gauge = %v, want 1", g.Value())
	}
}

// Gauges track the ring: after the golden burst the budget gauge goes
// negative and every burn-rate window gauge reads 5.
func TestGaugesFollowBudget(t *testing.T) {
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	reg := obs.NewRegistry()
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{Registry: reg})
	for i := 0; i < 95; i++ {
		e.Record(doneEvent(now))
	}
	for i := 0; i < 5; i++ {
		e.Record(failedEvent(now))
	}
	g := reg.Gauge(obs.Labeled("agingfp_slo_error_budget_remaining", "slo", "availability"))
	if math.Abs(g.Value()-(-4)) > 1e-9 {
		t.Fatalf("budget gauge = %v, want -4", g.Value())
	}
	for _, w := range []string{"5m0s", "1h0m0s", "30m0s", "6h0m0s"} {
		bg := reg.Gauge(obs.Labeled(obs.Labeled("agingfp_slo_burn_rate", "slo", "availability"), "window", w))
		if math.Abs(bg.Value()-5) > 1e-9 {
			t.Fatalf("burn gauge[%s] = %v, want 5", w, bg.Value())
		}
	}
}

// FromBaseline seeds one latency objective per shape bucket, bounded
// by the bucket's worst baseline time scaled by the factor.
func TestFromBaseline(t *testing.T) {
	rep := &bench.PerfReport{Records: []bench.PerfRecord{
		{Name: "B1", Ops: 24, Contexts: 4, ElapsedMs: 40},
		{Name: "B1b", Ops: 30, Contexts: 4, ElapsedMs: 60}, // same bucket, worse
		{Name: "B7", Ops: 88, Contexts: 16, ElapsedMs: 900},
	}, MedianSolveMs: 60}

	objs := FromBaseline(rep, 4)
	if len(objs) != 2 {
		t.Fatalf("objectives = %d, want 2 (one per bucket)", len(objs))
	}
	byShape := map[string]Objective{}
	for _, o := range objs {
		if o.Kind != KindLatency || o.Target != 0.90 {
			t.Fatalf("objective %q kind/target = %v/%v", o.Name, o.Kind, o.Target)
		}
		byShape[o.Shape] = o
	}
	small := byShape[telemetry.ShapeBucketFor(24, 4)]
	if small.LatencyTargetMs != 240 { // worst 60ms × 4
		t.Fatalf("small-bucket target = %v, want 240", small.LatencyTargetMs)
	}
	big := byShape[telemetry.ShapeBucketFor(88, 16)]
	if big.LatencyTargetMs != 3600 {
		t.Fatalf("big-bucket target = %v, want 3600", big.LatencyTargetMs)
	}
	if FromBaseline(nil, 4) != nil {
		t.Fatal("nil report must yield no objectives")
	}
}

// Nil engines and nil events are inert — serve wires the engine
// unconditionally.
func TestNilSafety(t *testing.T) {
	var e *Engine
	e.Record(doneEvent(time.Now()))
	if e.Status(0) != nil {
		t.Fatal("nil engine Status must be nil")
	}
	if e.Objectives() != nil {
		t.Fatal("nil engine Objectives must be nil")
	}
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	live := testEngine(t, []Objective{Availability(0.99)}, &now, Config{})
	live.Record(nil) // must not panic
}

// PanelHTML escapes and renders without an engine and with alerts.
func TestPanelHTML(t *testing.T) {
	if got := PanelHTML(nil); !strings.Contains(got, "No SLO engine") {
		t.Fatalf("nil status panel = %q", got)
	}
	now := time.Date(2026, 1, 2, 12, 0, 30, 0, time.UTC)
	e := testEngine(t, []Objective{Availability(0.99)}, &now, Config{})
	for i := 0; i < 5; i++ {
		e.Record(failedEvent(now))
	}
	html := PanelHTML(e.Status(0))
	for _, want := range []string{"Service-level objectives", "availability", "fast+slow", "Error budget remaining"} {
		if !strings.Contains(html, want) {
			t.Fatalf("panel missing %q:\n%s", want, html)
		}
	}
}
