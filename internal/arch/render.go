package arch

import (
	"fmt"
	"strings"
)

// RenderStress draws a stress map as fixed-width ASCII art, one cell per
// PE, normalized to the map's own maximum. It is used by the example
// programs and debug reports; '.' marks an unstressed PE and digits 1-9
// mark deciles of the maximum.
func RenderStress(s StressMap) string {
	max := s.Max()
	var b strings.Builder
	for y := len(s) - 1; y >= 0; y-- {
		for x := range s[y] {
			v := s[y][x]
			switch {
			case v == 0:
				b.WriteString(" .")
			case max == 0:
				b.WriteString(" ?")
			default:
				d := int(v / max * 9.999)
				if d > 9 {
					d = 9
				}
				fmt.Fprintf(&b, " %d", d)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderOccupancy draws which PEs context c uses under mapping m ('#')
// versus idle PEs ('.').
func RenderOccupancy(d *Design, m Mapping, c int) string {
	used := make(map[Coord]bool)
	for _, op := range d.ContextOps(c) {
		used[m[op]] = true
	}
	var b strings.Builder
	for y := d.Fabric.H - 1; y >= 0; y-- {
		for x := 0; x < d.Fabric.W; x++ {
			if used[Coord{X: x, Y: y}] {
				b.WriteString(" #")
			} else {
				b.WriteString(" .")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderHeat draws a float grid (e.g. a thermal map) normalized between
// its min and max, digits 0-9.
func RenderHeat(grid [][]float64) string {
	lo, hi := grid[0][0], grid[0][0]
	for _, row := range grid {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	var b strings.Builder
	for y := len(grid) - 1; y >= 0; y-- {
		for _, v := range grid[y] {
			d := 0
			if span > 0 {
				d = int((v - lo) / span * 9.999)
			}
			if d > 9 {
				d = 9
			}
			fmt.Fprintf(&b, " %d", d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
