package arch

import "agingfp/internal/dfg"

// IntraPreds returns op's predecessors scheduled in the same context —
// combinationally chained inputs whose delay accumulates within the clock
// cycle.
func (d *Design) IntraPreds(op int) []int {
	var out []int
	for _, p := range d.Graph.Preds(op) {
		if d.Ctx[p] == d.Ctx[op] {
			out = append(out, p)
		}
	}
	return out
}

// IntraSuccs returns op's successors scheduled in the same context.
func (d *Design) IntraSuccs(op int) []int {
	var out []int
	for _, s := range d.Graph.Succs(op) {
		if d.Ctx[s] == d.Ctx[op] {
			out = append(out, s)
		}
	}
	return out
}

// CrossPreds returns op's predecessors scheduled in earlier contexts —
// registered inputs. The register sits at the producer op's PE, so the
// consumer pays a wire from the producer's location.
func (d *Design) CrossPreds(op int) []int {
	var out []int
	for _, p := range d.Graph.Preds(op) {
		if d.Ctx[p] < d.Ctx[op] {
			out = append(out, p)
		}
	}
	return out
}

// IntraEdges returns the chained (same-context) data edges of context c.
func (d *Design) IntraEdges(c int) []dfg.Edge {
	var out []dfg.Edge
	for _, e := range d.Graph.Edges {
		if d.Ctx[e.From] == c && d.Ctx[e.To] == c {
			out = append(out, e)
		}
	}
	return out
}
