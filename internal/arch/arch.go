// Package arch models the multi-context coarse-grained runtime
// reconfigurable architecture (CGRRA) targeted by the flow: a W x H grid
// of processing elements (PEs) that is time-shared by C contexts, one
// context per clock cycle.
//
// The central artifacts are:
//
//   - Design: a scheduled application — operations assigned to contexts,
//     with data edges that are either intra-context (combinational
//     chaining within a clock cycle) or cross-context (registered).
//   - Mapping: the floorplan — a PE coordinate for every operation.
//   - StressMap: the per-PE accumulated NBTI stress induced by a mapping,
//     the quantity the aging-aware re-mapper levels across the fabric.
package arch

import (
	"fmt"
	"math"
	"sync"

	"agingfp/internal/dfg"
)

// Technology constants from the paper's PE characterization (§III and
// §VI): a 200 MHz clock, an 0.87 ns ALU and a 3.14 ns DMU.
const (
	// DefaultClockPeriodNs is the clock period at the 200 MHz HLS target.
	DefaultClockPeriodNs = 5.0
	// ALUDelayNs is the combinational delay through a PE's ALU.
	ALUDelayNs = 0.87
	// DMUDelayNs is the combinational delay through a PE's DMU.
	DMUDelayNs = 3.14
	// DefaultUnitWireDelayNs is the delay of one Manhattan grid hop on
	// the buffered inter-PE interconnect. Buffering makes wire delay
	// linear in length (§V.B).
	DefaultUnitWireDelayNs = 0.12
)

// OpDelayNs returns the PE-internal combinational delay of an op kind.
func OpDelayNs(k dfg.OpKind) float64 {
	if k == dfg.DMU {
		return DMUDelayNs
	}
	return ALUDelayNs
}

// Coord is a PE location on the fabric grid.
type Coord struct {
	X, Y int
}

// Dist returns the Manhattan distance to o, the wire-length metric used
// throughout the flow.
func (c Coord) Dist(o Coord) int {
	dx := c.X - o.X
	if dx < 0 {
		dx = -dx
	}
	dy := c.Y - o.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Fabric is the PE array geometry.
type Fabric struct {
	W, H int
}

// NumPEs returns the number of PEs on the fabric.
func (f Fabric) NumPEs() int { return f.W * f.H }

// Contains reports whether c lies on the fabric.
func (f Fabric) Contains(c Coord) bool {
	return c.X >= 0 && c.X < f.W && c.Y >= 0 && c.Y < f.H
}

// Index returns the row-major linear index of c.
func (f Fabric) Index(c Coord) int { return c.Y*f.W + c.X }

// CoordOf returns the coordinate of the row-major linear index i.
func (f Fabric) CoordOf(i int) Coord { return Coord{X: i % f.W, Y: i / f.W} }

// String implements fmt.Stringer.
func (f Fabric) String() string { return fmt.Sprintf("%dx%d", f.W, f.H) }

// Design is a scheduled application ready for floorplanning: every
// operation carries a context (clock cycle) assignment, and every data
// edge is classified by the schedule as chained (same context) or
// registered (producer in an earlier context).
type Design struct {
	// Name identifies the design in reports.
	Name string
	// Fabric is the target PE array.
	Fabric Fabric
	// NumContexts is the number of contexts C (= the design latency in
	// clock cycles).
	NumContexts int
	// Graph is the underlying data-flow graph.
	Graph *dfg.Graph
	// Ctx[i] is the context (0-based) executing op i. Edges must satisfy
	// Ctx[From] <= Ctx[To]; equality means combinational chaining.
	Ctx []int
	// ClockPeriodNs is the clock period (default DefaultClockPeriodNs).
	ClockPeriodNs float64
	// UnitWireDelayNs is the per-hop wire delay (default
	// DefaultUnitWireDelayNs).
	UnitWireDelayNs float64

	ctxMu   sync.Mutex // guards the lazy caches below
	ctxOps  [][]int    // per-context op lists, built lazily
	ctxOpsV bool
}

// NewDesign wraps a scheduled graph into a Design with default timing
// constants. ctx[i] is the context of op i.
func NewDesign(name string, f Fabric, numContexts int, g *dfg.Graph, ctx []int) *Design {
	return &Design{
		Name:            name,
		Fabric:          f,
		NumContexts:     numContexts,
		Graph:           g,
		Ctx:             ctx,
		ClockPeriodNs:   DefaultClockPeriodNs,
		UnitWireDelayNs: DefaultUnitWireDelayNs,
	}
}

// ContextOps returns the op IDs scheduled in context c. The slice is
// shared; callers must not modify it. Safe for concurrent use.
func (d *Design) ContextOps(c int) []int {
	d.ctxMu.Lock()
	if !d.ctxOpsV {
		d.buildCtxOpsLocked()
	}
	ops := d.ctxOps[c]
	d.ctxMu.Unlock()
	return ops
}

// Precompute forces the lazy per-context caches to be built now. Callers
// that fan a Design out to several goroutines call this first so the
// workers share one copy instead of racing to build their own.
func (d *Design) Precompute() {
	d.ctxMu.Lock()
	if !d.ctxOpsV {
		d.buildCtxOpsLocked()
	}
	d.ctxMu.Unlock()
}

func (d *Design) buildCtxOpsLocked() {
	d.ctxOps = make([][]int, d.NumContexts)
	for op, cx := range d.Ctx {
		d.ctxOps[cx] = append(d.ctxOps[cx], op)
	}
	d.ctxOpsV = true
}

// InvalidateCaches drops derived data after in-place schedule edits.
func (d *Design) InvalidateCaches() {
	d.ctxMu.Lock()
	d.ctxOpsV = false
	d.ctxMu.Unlock()
}

// NumOps returns the number of operations in the design.
func (d *Design) NumOps() int { return d.Graph.NumOps() }

// StressRate returns the NBTI stress rate of op: its duty cycle within a
// clock period, i.e. PE delay over clock period (§III).
func (d *Design) StressRate(op int) float64 {
	return OpDelayNs(d.Graph.Ops[op].Kind) / d.ClockPeriodNs
}

// MaxContextOps returns the largest per-context op count; the fabric must
// have at least this many PEs.
func (d *Design) MaxContextOps() int {
	m := 0
	for c := 0; c < d.NumContexts; c++ {
		if n := len(d.ContextOps(c)); n > m {
			m = n
		}
	}
	return m
}

// Validate checks schedule invariants: context range, edge causality
// (producer context <= consumer context), per-context op counts within
// fabric capacity, and positive timing constants.
func (d *Design) Validate() error {
	if d.Fabric.W < 1 || d.Fabric.H < 1 {
		return fmt.Errorf("arch: invalid fabric %v", d.Fabric)
	}
	if d.NumContexts < 1 {
		return fmt.Errorf("arch: NumContexts = %d", d.NumContexts)
	}
	if len(d.Ctx) != d.Graph.NumOps() {
		return fmt.Errorf("arch: Ctx length %d != ops %d", len(d.Ctx), d.Graph.NumOps())
	}
	if d.ClockPeriodNs <= 0 || d.UnitWireDelayNs < 0 {
		return fmt.Errorf("arch: non-positive timing constants (period %g, unit wire %g)",
			d.ClockPeriodNs, d.UnitWireDelayNs)
	}
	if err := d.Graph.Validate(); err != nil {
		return err
	}
	for op, c := range d.Ctx {
		if c < 0 || c >= d.NumContexts {
			return fmt.Errorf("arch: op %d in context %d, want [0,%d)", op, c, d.NumContexts)
		}
	}
	for _, e := range d.Graph.Edges {
		if d.Ctx[e.From] > d.Ctx[e.To] {
			return fmt.Errorf("arch: edge (%d,%d) violates causality: contexts %d > %d",
				e.From, e.To, d.Ctx[e.From], d.Ctx[e.To])
		}
	}
	for c := 0; c < d.NumContexts; c++ {
		if n := len(d.ContextOps(c)); n > d.Fabric.NumPEs() {
			return fmt.Errorf("arch: context %d has %d ops, fabric %v has %d PEs",
				c, n, d.Fabric, d.Fabric.NumPEs())
		}
	}
	return nil
}

// TotalOpsUsed returns the summed per-context op count — the "PE #"
// column of the paper's Table I (PE usage instances across contexts).
func (d *Design) TotalOpsUsed() int { return d.Graph.NumOps() }

// UtilizationRate returns the average per-context fabric utilization:
// ops / (contexts * PEs). Table I's low/medium/high bands correspond to
// roughly <=0.40, 0.40-0.65 and >0.65.
func (d *Design) UtilizationRate() float64 {
	return float64(d.Graph.NumOps()) / float64(d.NumContexts*d.Fabric.NumPEs())
}

// Mapping is a floorplan: Mapping[op] is the PE executing op in its
// context. A valid mapping places at most one op per PE per context.
type Mapping []Coord

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// ValidateMapping checks that m is a legal floorplan for d: every op on
// the fabric and no two ops of the same context sharing a PE.
func ValidateMapping(d *Design, m Mapping) error {
	if len(m) != d.NumOps() {
		return fmt.Errorf("arch: mapping length %d != ops %d", len(m), d.NumOps())
	}
	for op, c := range m {
		if !d.Fabric.Contains(c) {
			return fmt.Errorf("arch: op %d at %v outside fabric %v", op, c, d.Fabric)
		}
	}
	occupied := make(map[[3]int]int)
	for op := range m {
		key := [3]int{d.Ctx[op], m[op].X, m[op].Y}
		if prev, ok := occupied[key]; ok {
			return fmt.Errorf("arch: ops %d and %d share PE %v in context %d",
				prev, op, m[op], d.Ctx[op])
		}
		occupied[key] = op
	}
	return nil
}

// StressMap holds the per-PE accumulated stress time (summed stress rates
// over all contexts), indexed [y][x].
type StressMap [][]float64

// NewStressMap allocates a zero stress map for f.
func NewStressMap(f Fabric) StressMap {
	s := make(StressMap, f.H)
	cells := make([]float64, f.W*f.H)
	for y := range s {
		s[y], cells = cells[:f.W], cells[f.W:]
	}
	return s
}

// At returns the stress at coordinate c.
func (s StressMap) At(c Coord) float64 { return s[c.Y][c.X] }

// Max returns the maximum accumulated stress over all PEs — the quantity
// that determines fabric MTTF.
func (s StressMap) Max() float64 {
	m := 0.0
	for _, row := range s {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Total returns the summed stress over all PEs. Re-binding conserves this
// quantity (stress moves between PEs, it is never created or destroyed).
func (s StressMap) Total() float64 {
	t := 0.0
	for _, row := range s {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Mean returns the average accumulated stress over all PEs, the paper's
// ST_low starting point for the binary search.
func (s StressMap) Mean() float64 {
	n := 0
	for _, row := range s {
		n += len(row)
	}
	if n == 0 {
		return 0
	}
	return s.Total() / float64(n)
}

// ArgMax returns the coordinate of the most-stressed PE (ties broken by
// row-major order).
func (s StressMap) ArgMax() Coord {
	best := Coord{}
	bv := math.Inf(-1)
	for y, row := range s {
		for x, v := range row {
			if v > bv {
				bv = v
				best = Coord{X: x, Y: y}
			}
		}
	}
	return best
}

// ComputeStress accumulates per-PE stress for mapping m of design d:
// each op adds its stress rate to the PE it occupies, summed across all
// contexts (§III: accumulated stress time).
func ComputeStress(d *Design, m Mapping) StressMap {
	s := NewStressMap(d.Fabric)
	for op, c := range m {
		s[c.Y][c.X] += d.StressRate(op)
	}
	return s
}

// ContextStress returns the per-PE stress contributed by context c alone,
// used as the per-configuration power map for the thermal model.
func ContextStress(d *Design, m Mapping, c int) StressMap {
	s := NewStressMap(d.Fabric)
	for _, op := range d.ContextOps(c) {
		s[m[op].Y][m[op].X] += d.StressRate(op)
	}
	return s
}
