package arch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/dfg"
)

func TestCoordDist(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{5, 1}, Coord{2, 3}, 5},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Dist(c.a); got != c.want {
			t.Errorf("Dist not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestFabricIndexRoundTrip(t *testing.T) {
	f := Fabric{W: 7, H: 5}
	for i := 0; i < f.NumPEs(); i++ {
		c := f.CoordOf(i)
		if !f.Contains(c) {
			t.Fatalf("CoordOf(%d) = %v outside fabric", i, c)
		}
		if f.Index(c) != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, f.Index(c))
		}
	}
	if f.Contains(Coord{7, 0}) || f.Contains(Coord{0, 5}) || f.Contains(Coord{-1, 0}) {
		t.Fatal("Contains accepts out-of-range coords")
	}
}

func TestOpDelay(t *testing.T) {
	if OpDelayNs(dfg.ALU) != ALUDelayNs || OpDelayNs(dfg.DMU) != DMUDelayNs {
		t.Fatal("wrong delays")
	}
}

// chainDesign builds a 2-context design: ctx0 has two chained ALUs, ctx1
// one DMU consuming the chain result.
func chainDesign() *Design {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.ALU, "b")
	c := g.AddOp(dfg.DMU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	return NewDesign("chain", Fabric{W: 4, H: 4}, 2, g, []int{0, 0, 1})
}

func TestDesignValidate(t *testing.T) {
	d := chainDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Causality violation.
	bad := chainDesign()
	bad.Ctx = []int{1, 0, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("causality violation accepted")
	}
	// Context out of range.
	bad2 := chainDesign()
	bad2.Ctx = []int{0, 0, 5}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range context accepted")
	}
}

func TestContextOps(t *testing.T) {
	d := chainDesign()
	if got := d.ContextOps(0); len(got) != 2 {
		t.Fatalf("ctx0 ops %v", got)
	}
	if got := d.ContextOps(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ctx1 ops %v", got)
	}
	if d.MaxContextOps() != 2 {
		t.Fatalf("MaxContextOps %d", d.MaxContextOps())
	}
}

func TestAdjacencyHelpers(t *testing.T) {
	d := chainDesign()
	if got := d.IntraPreds(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("IntraPreds(1) = %v", got)
	}
	if got := d.CrossPreds(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CrossPreds(2) = %v", got)
	}
	if got := d.IntraSuccs(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("IntraSuccs(0) = %v", got)
	}
	if got := d.IntraEdges(0); len(got) != 1 {
		t.Fatalf("IntraEdges(0) = %v", got)
	}
}

func TestValidateMapping(t *testing.T) {
	d := chainDesign()
	m := Mapping{{0, 0}, {1, 0}, {0, 0}} // op2 in ctx1 may reuse (0,0)
	if err := ValidateMapping(d, m); err != nil {
		t.Fatal(err)
	}
	collide := Mapping{{0, 0}, {0, 0}, {1, 1}} // ops 0,1 same ctx same PE
	if err := ValidateMapping(d, collide); err == nil {
		t.Fatal("same-context collision accepted")
	}
	off := Mapping{{0, 0}, {9, 0}, {1, 1}}
	if err := ValidateMapping(d, off); err == nil {
		t.Fatal("off-fabric coordinate accepted")
	}
	short := Mapping{{0, 0}}
	if err := ValidateMapping(d, short); err == nil {
		t.Fatal("short mapping accepted")
	}
}

func TestStressComputation(t *testing.T) {
	d := chainDesign()
	m := Mapping{{0, 0}, {1, 0}, {0, 0}}
	s := ComputeStress(d, m)
	aluSR := ALUDelayNs / DefaultClockPeriodNs
	dmuSR := DMUDelayNs / DefaultClockPeriodNs
	if got := s.At(Coord{0, 0}); !close(got, aluSR+dmuSR) {
		t.Fatalf("stress(0,0) = %g, want %g", got, aluSR+dmuSR)
	}
	if got := s.At(Coord{1, 0}); !close(got, aluSR) {
		t.Fatalf("stress(1,0) = %g", got)
	}
	if !close(s.Total(), 2*aluSR+dmuSR) {
		t.Fatalf("total %g", s.Total())
	}
	if s.ArgMax() != (Coord{0, 0}) {
		t.Fatalf("argmax %v", s.ArgMax())
	}
	cs := ContextStress(d, m, 1)
	if !close(cs.At(Coord{0, 0}), dmuSR) || cs.At(Coord{1, 0}) != 0 {
		t.Fatalf("context stress wrong: %v", cs)
	}
}

// Property: total stress is invariant under any legal re-mapping.
func TestStressConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(20, 4))
		ctx := make([]int, 20)
		levels, _ := g.Levels()
		for i := range ctx {
			ctx[i] = levels[i]
		}
		d := NewDesign("p", Fabric{W: 6, H: 6}, maxOf(ctx)+1, g, ctx)
		if err := d.Validate(); err != nil {
			return true // generator produced an over-wide context; skip
		}
		m1 := randomLegalMapping(d, rng)
		m2 := randomLegalMapping(d, rng)
		s1, s2 := ComputeStress(d, m1), ComputeStress(d, m2)
		return close(s1.Total(), s2.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomLegalMapping(d *Design, rng *rand.Rand) Mapping {
	m := make(Mapping, d.NumOps())
	for c := 0; c < d.NumContexts; c++ {
		perm := rng.Perm(d.Fabric.NumPEs())
		for i, op := range d.ContextOps(c) {
			m[op] = d.Fabric.CoordOf(perm[i])
		}
	}
	return m
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestStressMapStats(t *testing.T) {
	s := NewStressMap(Fabric{W: 3, H: 2})
	s[0][0] = 1
	s[1][2] = 5
	if s.Max() != 5 || !close(s.Total(), 6) || !close(s.Mean(), 1.0) {
		t.Fatalf("max %g total %g mean %g", s.Max(), s.Total(), s.Mean())
	}
}

func TestUtilizationRate(t *testing.T) {
	d := chainDesign() // 3 ops, 2 contexts, 16 PEs
	want := 3.0 / (2 * 16)
	if got := d.UtilizationRate(); !close(got, want) {
		t.Fatalf("utilization %g, want %g", got, want)
	}
}

func TestRenderers(t *testing.T) {
	d := chainDesign()
	m := Mapping{{0, 0}, {1, 0}, {0, 0}}
	if out := RenderStress(ComputeStress(d, m)); len(out) == 0 {
		t.Fatal("empty stress render")
	}
	if out := RenderOccupancy(d, m, 0); len(out) == 0 {
		t.Fatal("empty occupancy render")
	}
	grid := [][]float64{{1, 2}, {3, 4}}
	if out := RenderHeat(grid); len(out) == 0 {
		t.Fatal("empty heat render")
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
