package arch

import (
	"bytes"
	"strings"
	"testing"

	"agingfp/internal/dfg"
)

func docDesign() (*Design, Mapping) {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	c := g.AddOp(dfg.ALU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	d := NewDesign("doc", Fabric{W: 4, H: 4}, 2, g, []int{0, 0, 1})
	m := Mapping{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0}}
	return d, m
}

func TestJSONRoundTrip(t *testing.T) {
	d, m := docDesign()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d, map[string]Mapping{"baseline": m}); err != nil {
		t.Fatal(err)
	}
	d2, maps, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.NumContexts != d.NumContexts || d2.Fabric != d.Fabric {
		t.Fatalf("metadata mismatch: %+v", d2)
	}
	if d2.NumOps() != d.NumOps() || len(d2.Graph.Edges) != len(d.Graph.Edges) {
		t.Fatalf("graph mismatch")
	}
	if d2.ClockPeriodNs != d.ClockPeriodNs || d2.UnitWireDelayNs != d.UnitWireDelayNs {
		t.Fatalf("timing constants mismatch")
	}
	m2, ok := maps["baseline"]
	if !ok {
		t.Fatal("mapping lost")
	}
	for i := range m {
		if m2[i] != m[i] {
			t.Fatalf("op %d at %v, want %v", i, m2[i], m[i])
		}
	}
	// Contexts preserved.
	for i := range d.Ctx {
		if d2.Ctx[i] != d.Ctx[i] {
			t.Fatalf("ctx of op %d: %d vs %d", i, d2.Ctx[i], d.Ctx[i])
		}
	}
}

func TestReadJSONRejectsBadDocs(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","fabric_w":0,"fabric_h":4,"num_contexts":1,"ops":[{"kind":0,"ctx":0}]}`,
		`{"name":"x","fabric_w":4,"fabric_h":4,"num_contexts":1,"ops":[{"kind":7,"ctx":0}]}`,
		`{"name":"x","fabric_w":4,"fabric_h":4,"num_contexts":1,"ops":[{"kind":0,"ctx":0}],"edges":[[0,5]]}`,
		`{"name":"x","fabric_w":4,"fabric_h":4,"num_contexts":1,"ops":[{"kind":0,"ctx":0}],"mappings":{"m":[[0,0],[1,1]]}}`,
		`{"name":"x","fabric_w":4,"fabric_h":4,"num_contexts":1,"ops":[{"kind":0,"ctx":0}],"mappings":{"m":[[9,9]]}}`,
	}
	for i, src := range cases {
		if _, _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDocumentWithoutMappings(t *testing.T) {
	d, _ := docDesign()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	_, maps, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 0 {
		t.Fatalf("unexpected mappings %v", maps)
	}
}
