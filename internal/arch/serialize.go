package arch

import (
	"encoding/json"
	"fmt"
	"io"

	"agingfp/internal/dfg"
)

// Document is the serializable form of a scheduled design plus (optional)
// floorplans — the artifact a CAD flow would hand to bitstream
// generation. It round-trips through JSON.
type Document struct {
	// Name of the design.
	Name string `json:"name"`
	// FabricW/FabricH describe the PE array.
	FabricW int `json:"fabric_w"`
	FabricH int `json:"fabric_h"`
	// NumContexts is the context count.
	NumContexts int `json:"num_contexts"`
	// ClockPeriodNs / UnitWireDelayNs are the timing constants.
	ClockPeriodNs   float64 `json:"clock_period_ns"`
	UnitWireDelayNs float64 `json:"unit_wire_delay_ns"`
	// Ops lists the operations (kind 0 = ALU, 1 = DMU).
	Ops []DocOp `json:"ops"`
	// Edges lists data dependencies.
	Edges [][2]int `json:"edges"`
	// Mappings holds named floorplans, e.g. "baseline" and "aging_aware";
	// each is one [x, y] per op.
	Mappings map[string][][2]int `json:"mappings,omitempty"`
}

// DocOp is one serialized operation.
type DocOp struct {
	Kind int    `json:"kind"`
	Name string `json:"name,omitempty"`
	Ctx  int    `json:"ctx"`
}

// ToDocument serializes a design with the given named floorplans.
func ToDocument(d *Design, mappings map[string]Mapping) *Document {
	doc := &Document{
		Name:            d.Name,
		FabricW:         d.Fabric.W,
		FabricH:         d.Fabric.H,
		NumContexts:     d.NumContexts,
		ClockPeriodNs:   d.ClockPeriodNs,
		UnitWireDelayNs: d.UnitWireDelayNs,
	}
	for i, op := range d.Graph.Ops {
		doc.Ops = append(doc.Ops, DocOp{Kind: int(op.Kind), Name: op.Name, Ctx: d.Ctx[i]})
	}
	for _, e := range d.Graph.Edges {
		doc.Edges = append(doc.Edges, [2]int{e.From, e.To})
	}
	if len(mappings) > 0 {
		doc.Mappings = map[string][][2]int{}
		for name, m := range mappings {
			cells := make([][2]int, len(m))
			for i, c := range m {
				cells[i] = [2]int{c.X, c.Y}
			}
			doc.Mappings[name] = cells
		}
	}
	return doc
}

// FromDocument reconstructs the design and floorplans, validating both.
func FromDocument(doc *Document) (*Design, map[string]Mapping, error) {
	g := &dfg.Graph{}
	ctx := make([]int, 0, len(doc.Ops))
	for _, op := range doc.Ops {
		if op.Kind != int(dfg.ALU) && op.Kind != int(dfg.DMU) {
			return nil, nil, fmt.Errorf("arch: document op kind %d invalid", op.Kind)
		}
		g.AddOp(dfg.OpKind(op.Kind), op.Name)
		ctx = append(ctx, op.Ctx)
	}
	for _, e := range doc.Edges {
		if e[0] < 0 || e[0] >= len(doc.Ops) || e[1] < 0 || e[1] >= len(doc.Ops) {
			return nil, nil, fmt.Errorf("arch: document edge %v out of range", e)
		}
		g.AddEdge(e[0], e[1])
	}
	d := NewDesign(doc.Name, Fabric{W: doc.FabricW, H: doc.FabricH}, doc.NumContexts, g, ctx)
	if doc.ClockPeriodNs > 0 {
		d.ClockPeriodNs = doc.ClockPeriodNs
	}
	if doc.UnitWireDelayNs > 0 {
		d.UnitWireDelayNs = doc.UnitWireDelayNs
	}
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("arch: document design invalid: %w", err)
	}
	maps := map[string]Mapping{}
	for name, cells := range doc.Mappings {
		if len(cells) != d.NumOps() {
			return nil, nil, fmt.Errorf("arch: mapping %q has %d cells, want %d", name, len(cells), d.NumOps())
		}
		m := make(Mapping, len(cells))
		for i, c := range cells {
			m[i] = Coord{X: c[0], Y: c[1]}
		}
		if err := ValidateMapping(d, m); err != nil {
			return nil, nil, fmt.Errorf("arch: mapping %q: %w", name, err)
		}
		maps[name] = m
	}
	return d, maps, nil
}

// WriteJSON serializes a design and floorplans to w.
func WriteJSON(w io.Writer, d *Design, mappings map[string]Mapping) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToDocument(d, mappings))
}

// ReadJSON loads a design and floorplans from r.
func ReadJSON(r io.Reader) (*Design, map[string]Mapping, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("arch: decode: %w", err)
	}
	return FromDocument(&doc)
}
