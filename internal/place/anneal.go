package place

import (
	"fmt"
	"math"
	"math/rand"

	"agingfp/internal/arch"
	"agingfp/internal/timing"
)

// AnnealConfig tunes the simulated-annealing placer — the refinement
// stage commercial flows run after a constructive seed. It optimizes the
// same objective as the greedy baseline (timing-feasible packed
// placements with short wires) but escapes local minima, and it uses the
// incremental STA so each move is priced in microseconds.
type AnnealConfig struct {
	// Seed drives the random walk.
	Seed int64
	// Moves is the total move budget; 0 derives one from the design size.
	Moves int
	// StartTemp/EndTemp bound the geometric cooling schedule, in cost
	// units; zero selects defaults.
	StartTemp, EndTemp float64
	// WirelenWeight and CPDPenalty weight the two cost terms.
	WirelenWeight, CPDPenalty float64
}

// DefaultAnnealConfig returns the standard schedule.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{
		Seed:          1,
		StartTemp:     4.0,
		EndTemp:       0.02,
		WirelenWeight: 1.0,
		CPDPenalty:    200.0,
	}
}

// Anneal refines a placement by simulated annealing: random relocations
// and same-context swaps, accepted by the Metropolis criterion on
//
//	cost = WirelenWeight * total wirelength + CPDPenalty * max(0, CPD - clock)
//
// It starts from the greedy baseline placement and always returns a legal
// mapping that meets the clock period (falling back to the seed if the
// walk never found a feasible improvement).
func Anneal(d *arch.Design, cfg AnnealConfig) (arch.Mapping, error) {
	seedMap, err := Place(d, DefaultConfig())
	if err != nil {
		return nil, err
	}
	if cfg.Moves == 0 {
		cfg.Moves = 400 * d.NumOps()
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 4
	}
	if cfg.EndTemp <= 0 || cfg.EndTemp >= cfg.StartTemp {
		cfg.EndTemp = cfg.StartTemp / 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inc := timing.NewIncremental(d, seedMap)

	// Occupancy per context.
	occ := make([]map[arch.Coord]int, d.NumContexts)
	for c := range occ {
		occ[c] = map[arch.Coord]int{}
	}
	for op, pe := range inc.Mapping() {
		occ[d.Ctx[op]][pe] = op
	}

	wirelen := func(m arch.Mapping) int {
		t := 0
		for _, e := range d.Graph.Edges {
			t += m[e.From].Dist(m[e.To])
		}
		return t
	}
	cost := func(wl int, cpd float64) float64 {
		c := cfg.WirelenWeight * float64(wl)
		if over := cpd - d.ClockPeriodNs; over > 0 {
			c += cfg.CPDPenalty * over
		}
		return c
	}

	curWL := wirelen(inc.Mapping())
	curCost := cost(curWL, inc.CPD())
	best := inc.Mapping().Clone()
	bestCost := curCost
	bestFeasible := inc.CPD() <= d.ClockPeriodNs+1e-9

	cool := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/math.Max(1, float64(cfg.Moves)))
	temp := cfg.StartTemp
	n := d.Fabric.NumPEs()

	for move := 0; move < cfg.Moves; move++ {
		op := rng.Intn(d.NumOps())
		c := d.Ctx[op]
		from := inc.Mapping()[op]
		to := d.Fabric.CoordOf(rng.Intn(n))
		if to == from {
			temp *= cool
			continue
		}
		other, occupied := occ[c][to]

		// Apply tentatively.
		inc.MoveOp(op, to)
		if occupied {
			inc.MoveOp(other, from)
		}
		newWL := wirelen(inc.Mapping())
		newCost := cost(newWL, inc.CPD())
		accept := newCost <= curCost ||
			rng.Float64() < math.Exp((curCost-newCost)/math.Max(temp, 1e-9))
		if accept {
			delete(occ[c], from)
			occ[c][to] = op
			if occupied {
				occ[c][from] = other
			}
			curWL, curCost = newWL, newCost
			feasible := inc.CPD() <= d.ClockPeriodNs+1e-9
			if feasible && (!bestFeasible || newCost < bestCost) {
				best = inc.Mapping().Clone()
				bestCost = newCost
				bestFeasible = true
			}
		} else {
			// Revert.
			if occupied {
				inc.MoveOp(other, to)
			}
			inc.MoveOp(op, from)
		}
		temp *= cool
	}

	if !bestFeasible {
		return nil, fmt.Errorf("place: annealing never reached timing feasibility")
	}
	if err := arch.ValidateMapping(d, best); err != nil {
		return nil, fmt.Errorf("place: annealer produced illegal mapping: %w", err)
	}
	return best, nil
}
