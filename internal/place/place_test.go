package place

import (
	"math/rand"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/timing"
)

func placed(t *testing.T, g *dfg.Graph, w, h int) (*arch.Design, arch.Mapping) {
	t.Helper()
	d, err := hls.BuildDesign("t", g, arch.Fabric{W: w, H: h}, hls.DefaultConfig())
	if err != nil {
		t.Fatalf("BuildDesign: %v", err)
	}
	m, err := Place(d, DefaultConfig())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return d, m
}

func TestPlaceLegalAndMeetsTiming(t *testing.T) {
	for name, mk := range map[string]*dfg.Graph{
		"fir16": dfg.FIR(16),
		"dct8":  dfg.DCT8(),
		"iir4":  dfg.IIR(4),
	} {
		d, m := placed(t, mk, 8, 8)
		if err := arch.ValidateMapping(d, m); err != nil {
			t.Errorf("%s: illegal placement: %v", name, err)
			continue
		}
		res := timing.Analyze(d, m)
		if res.CPD > d.ClockPeriodNs+1e-9 {
			t.Errorf("%s: CPD %.3f exceeds period %.3f", name, res.CPD, d.ClockPeriodNs)
		}
	}
}

func TestPlacePacksCorner(t *testing.T) {
	// The baseline is bounding-box minimizing: a 16-op-wide design on a
	// big fabric must stay within a small corner region.
	d, m := placed(t, dfg.FIR(16), 12, 12)
	w, h := UsedRegion(d, m)
	if w > 6 || h > 6 {
		t.Fatalf("used region %dx%d, expected tight packing for 16-wide contexts", w, h)
	}
}

func TestPlaceConcentratesStress(t *testing.T) {
	// The aging-unaware floorplan should concentrate stress: max stress
	// well above the fabric mean (the paper's premise, Fig. 2a).
	d, m := placed(t, dfg.FIR(16), 8, 8)
	s := arch.ComputeStress(d, m)
	if s.Max() < 1.5*s.Mean() {
		t.Fatalf("baseline too level: max %.3f vs mean %.3f", s.Max(), s.Mean())
	}
}

func TestPlaceDeterministicPerSeed(t *testing.T) {
	d1, m1 := placed(t, dfg.FIR(16), 8, 8)
	_, m2 := placed(t, dfg.FIR(16), 8, 8)
	_ = d1
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("placement not deterministic at op %d: %v vs %v", i, m1[i], m2[i])
		}
	}
}

func TestPlaceFullFabric(t *testing.T) {
	// A context exactly filling the fabric must still place legally.
	g := &dfg.Graph{}
	for i := 0; i < 16; i++ {
		g.AddOp(dfg.ALU, "x")
	}
	d, err := hls.BuildDesign("full", g, arch.Fabric{W: 4, H: 4}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Place(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.ValidateMapping(d, m); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceRandomDesigns(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(40+rng.Intn(40), 4+rng.Intn(4)))
		d, err := hls.BuildDesign("r", g, arch.Fabric{W: 8, H: 8}, hls.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := Place(d, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := arch.ValidateMapping(d, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := timing.Analyze(d, m)
		if res.CPD > d.ClockPeriodNs+1e-9 {
			t.Fatalf("seed %d: CPD %.3f over period", seed, res.CPD)
		}
	}
}

func TestUsedRegion(t *testing.T) {
	g := &dfg.Graph{}
	g.AddOp(dfg.ALU, "a")
	g.AddOp(dfg.ALU, "b")
	d := arch.NewDesign("x", arch.Fabric{W: 8, H: 8}, 1, g, []int{0, 0})
	m := arch.Mapping{{X: 2, Y: 1}, {X: 5, Y: 3}}
	w, h := UsedRegion(d, m)
	if w != 6 || h != 4 {
		t.Fatalf("region %dx%d, want 6x4", w, h)
	}
}
