package place

import (
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/timing"
)

func TestAnnealLegalAndMeetsTiming(t *testing.T) {
	d, err := hls.BuildDesign("fir", dfg.FIR(16), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAnnealConfig()
	cfg.Moves = 3000
	m, err := Anneal(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.ValidateMapping(d, m); err != nil {
		t.Fatal(err)
	}
	res := timing.Analyze(d, m)
	if res.CPD > d.ClockPeriodNs+1e-9 {
		t.Fatalf("CPD %.3f over clock", res.CPD)
	}
}

func TestAnnealImprovesWirelength(t *testing.T) {
	d, err := hls.BuildDesign("dct", dfg.DCT8(), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seed, err := Place(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := func(m arch.Mapping) int {
		t := 0
		for _, e := range d.Graph.Edges {
			t += m[e.From].Dist(m[e.To])
		}
		return t
	}
	cfg := DefaultAnnealConfig()
	cfg.Moves = 6000
	m, err := Anneal(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wl(m) > wl(seed) {
		t.Fatalf("annealing worsened wirelength: %d -> %d", wl(seed), wl(m))
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	d, err := hls.BuildDesign("fir", dfg.FIR(8), arch.Fabric{W: 5, H: 5}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultAnnealConfig()
	cfg.Moves = 2000
	m1, err := Anneal(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Anneal(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("nondeterministic at op %d", i)
		}
	}
}
