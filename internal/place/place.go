// Package place implements the aging-unaware baseline placer — the stand-in
// for the commercial Musketeer placement-and-routing stage whose output
// the paper's re-mapper takes as its starting point.
//
// Like the commercial tool, the placer is timing-driven and
// area-minimizing: it packs each context's operations into the smallest
// square corner region that fits (minimizing the bounding box of used
// PEs), places ops near their data producers to keep wires short, and
// iteratively repairs any clock-period violation. It deliberately does
// NOT consider aging: every context reuses the same packed corner, which
// concentrates stress on a few PEs — the behaviour the paper's Fig. 2(a)
// illustrates and the re-mapper fixes.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"agingfp/internal/arch"
	"agingfp/internal/timing"
)

// Config tunes the placer.
type Config struct {
	// Seed drives tie-breaking; placements are deterministic per seed.
	Seed int64
	// RefinePasses is the number of swap-refinement sweeps per context.
	RefinePasses int
	// MaxRepairRounds bounds the timing-repair loop per region size.
	MaxRepairRounds int
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, RefinePasses: 3, MaxRepairRounds: 20}
}

// Place computes the aging-unaware baseline floorplan for d: a mapping
// that meets the clock period with a minimal packed bounding box.
//
// It returns an error if no legal placement meeting the clock period is
// found even with the region grown to the full fabric.
func Place(d *arch.Design, cfg Config) (arch.Mapping, error) {
	if cfg.RefinePasses == 0 {
		cfg.RefinePasses = 3
	}
	if cfg.MaxRepairRounds == 0 {
		cfg.MaxRepairRounds = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Smallest square region that fits the widest context.
	side := 1
	for side*side < d.MaxContextOps() {
		side++
	}
	for ; side <= max(d.Fabric.W, d.Fabric.H); side++ {
		w, h := side, side
		if w > d.Fabric.W {
			w = d.Fabric.W
		}
		if h > d.Fabric.H {
			h = d.Fabric.H
		}
		if w*h < d.MaxContextOps() {
			continue
		}
		m := greedySeed(d, w, h, rng)
		refine(d, m, w, h, cfg.RefinePasses, rng)
		ok := repairTiming(d, m, w, h, cfg.MaxRepairRounds)
		if !ok && w >= d.Fabric.W && h >= d.Fabric.H {
			// Last resort at full fabric size: annealing repair escapes
			// the greedy repair's local optima on dense designs.
			ok = annealRepairTiming(d, m, rng, 300*d.NumOps())
		}
		if ok {
			if err := arch.ValidateMapping(d, m); err != nil {
				return nil, fmt.Errorf("place: internal error: %w", err)
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("place: cannot meet clock period %.2f ns on fabric %v",
		d.ClockPeriodNs, d.Fabric)
}

// annealRepairTiming runs a Metropolis walk on CPD overage (with a small
// wirelength tie-break), mutating m in place. Returns true once the
// design meets its clock period.
func annealRepairTiming(d *arch.Design, m arch.Mapping, rng *rand.Rand, moves int) bool {
	inc := timing.NewIncremental(d, m)
	occ := make([]map[arch.Coord]int, d.NumContexts)
	for c := range occ {
		occ[c] = map[arch.Coord]int{}
	}
	for op, pe := range inc.Mapping() {
		occ[d.Ctx[op]][pe] = op
	}
	// Dense objective: total arrival excess over the clock period. The
	// CPD alone is a plateau (it only moves when THE critical path
	// changes); summing every op's violation gives the walk gradient
	// information on dense designs.
	cost := func() float64 {
		t := 0.0
		for op := 0; op < d.NumOps(); op++ {
			if over := inc.Arrival(op) - d.ClockPeriodNs; over > 0 {
				t += over
			}
		}
		return t
	}
	cur := cost()
	temp := 0.2
	cool := math.Pow(0.005/temp, 1/math.Max(1, float64(moves)))
	n := d.Fabric.NumPEs()
	for i := 0; i < moves && cur > 0; i++ {
		op := rng.Intn(d.NumOps())
		c := d.Ctx[op]
		from := inc.Mapping()[op]
		to := d.Fabric.CoordOf(rng.Intn(n))
		if to == from {
			temp *= cool
			continue
		}
		other, occupied := occ[c][to]
		inc.MoveOp(op, to)
		if occupied {
			inc.MoveOp(other, from)
		}
		next := cost()
		if next <= cur || rng.Float64() < math.Exp((cur-next)/math.Max(temp, 1e-9)) {
			delete(occ[c], from)
			occ[c][to] = op
			if occupied {
				occ[c][from] = other
			}
			cur = next
		} else {
			if occupied {
				inc.MoveOp(other, to)
			}
			inc.MoveOp(op, from)
		}
		temp *= cool
	}
	if cur > 0 {
		return false
	}
	copy(m, inc.Mapping())
	return true
}

// greedySeed places each context's ops into the w x h corner region in
// topological order, each op at the free PE minimizing wire length to its
// already-placed producers (intra-context chained producers weighted
// heavier, since their wires burn combinational slack).
func greedySeed(d *arch.Design, w, h int, rng *rand.Rand) arch.Mapping {
	m := make(arch.Mapping, d.NumOps())
	order, _ := d.Graph.TopoOrder()
	for c := 0; c < d.NumContexts; c++ {
		free := make(map[arch.Coord]bool, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				free[arch.Coord{X: x, Y: y}] = true
			}
		}
		for _, op := range order {
			if d.Ctx[op] != c {
				continue
			}
			best := arch.Coord{X: -1}
			bestCost := 1 << 30
			// Deterministic scan order plus random tie-break.
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					pe := arch.Coord{X: x, Y: y}
					if !free[pe] {
						continue
					}
					cost := 0
					for _, p := range d.Graph.Preds(op) {
						wgt := 1
						if d.Ctx[p] == c {
							wgt = 3 // chained wire: costs combinational slack
						}
						cost += wgt * m[p].Dist(pe)
					}
					// Prefer corner packing as a secondary criterion.
					cost = cost*64 + (x + y)
					if cost < bestCost || (cost == bestCost && rng.Intn(2) == 0) {
						best, bestCost = pe, cost
					}
				}
			}
			m[op] = best
			delete(free, best)
		}
	}
	return m
}

// refine runs swap-based hill climbing on weighted wirelength within each
// context.
func refine(d *arch.Design, m arch.Mapping, w, h, passes int, rng *rand.Rand) {
	for pass := 0; pass < passes; pass++ {
		for c := 0; c < d.NumContexts; c++ {
			ops := d.ContextOps(c)
			if len(ops) < 2 {
				continue
			}
			for trial := 0; trial < 4*len(ops); trial++ {
				a := ops[rng.Intn(len(ops))]
				b := ops[rng.Intn(len(ops))]
				if a == b {
					continue
				}
				before := opWireCost(d, m, a) + opWireCost(d, m, b)
				m[a], m[b] = m[b], m[a]
				after := opWireCost(d, m, a) + opWireCost(d, m, b)
				if after >= before {
					m[a], m[b] = m[b], m[a] // revert
				}
			}
		}
	}
}

// opWireCost is the weighted wirelength of all edges incident to op.
func opWireCost(d *arch.Design, m arch.Mapping, op int) int {
	cost := 0
	for _, p := range d.Graph.Preds(op) {
		wgt := 1
		if d.Ctx[p] == d.Ctx[op] {
			wgt = 3
		}
		cost += wgt * m[p].Dist(m[op])
	}
	for _, s := range d.Graph.Succs(op) {
		wgt := 1
		if d.Ctx[s] == d.Ctx[op] {
			wgt = 3
		}
		cost += wgt * m[op].Dist(m[s])
	}
	return cost
}

// repairTiming iteratively pulls the ops of period-violating paths closer
// together. Returns true once the design meets its clock period.
func repairTiming(d *arch.Design, m arch.Mapping, w, h, maxRounds int) bool {
	for round := 0; round < maxRounds; round++ {
		res := timing.Analyze(d, m)
		if res.CPD <= d.ClockPeriodNs+1e-9 {
			return true
		}
		paths := timing.EnumeratePaths(d, m, res, timing.EnumerateOptions{
			ThresholdFrac: 0.999, MaxPaths: 8, MaxPerContext: 4,
		})
		if len(paths) == 0 {
			return false
		}
		improved := false
		for _, p := range paths {
			if p.Delay <= d.ClockPeriodNs {
				continue
			}
			if shortenPath(d, m, p, w, h) {
				improved = true
			}
		}
		if !improved {
			return false
		}
	}
	res := timing.Analyze(d, m)
	return res.CPD <= d.ClockPeriodNs+1e-9
}

// shortenPath tries to reduce the wirelength of path p by moving each of
// its ops (or swapping with the occupant) to the position minimizing the
// path's wire length while not increasing the op's total wire cost
// disproportionately. Returns true if any move was applied.
func shortenPath(d *arch.Design, m arch.Mapping, p *timing.Path, w, h int) bool {
	occupant := make(map[[3]int]int)
	for op := range m {
		occupant[[3]int{d.Ctx[op], m[op].X, m[op].Y}] = op
	}
	moved := false
	for _, op := range p.Ops {
		c := d.Ctx[op]
		bestCost := pathWire(d, m, p)
		var bestPE arch.Coord
		found := false
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pe := arch.Coord{X: x, Y: y}
				if pe == m[op] {
					continue
				}
				other, occ := occupant[[3]int{c, pe.X, pe.Y}]
				old := m[op]
				m[op] = pe
				if occ {
					m[other] = old
				}
				cost := pathWire(d, m, p)
				m[op] = old
				if occ {
					m[other] = pe
				}
				if cost < bestCost {
					bestCost, bestPE, found = cost, pe, true
				}
			}
		}
		if found {
			old := m[op]
			if other, occ := occupant[[3]int{c, bestPE.X, bestPE.Y}]; occ {
				m[other] = old
				occupant[[3]int{c, old.X, old.Y}] = other
			} else {
				delete(occupant, [3]int{c, old.X, old.Y})
			}
			m[op] = bestPE
			occupant[[3]int{c, bestPE.X, bestPE.Y}] = op
			moved = true
		}
	}
	return moved
}

// pathWire is the total wire length of p under m.
func pathWire(d *arch.Design, m arch.Mapping, p *timing.Path) int {
	wl := 0
	for _, a := range p.Arcs() {
		if a.From >= 0 {
			wl += m[a.From].Dist(m[a.To])
		}
	}
	return wl
}

// UsedRegion returns the bounding box (w, h) of all PEs used by any
// context — the area metric the baseline minimizes.
func UsedRegion(d *arch.Design, m arch.Mapping) (int, int) {
	maxX, maxY := 0, 0
	for _, pe := range m {
		if pe.X > maxX {
			maxX = pe.X
		}
		if pe.Y > maxY {
			maxY = pe.Y
		}
	}
	return maxX + 1, maxY + 1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
