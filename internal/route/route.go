// Package route materializes the flow's abstract Manhattan wires as
// explicit L-shaped grid routes and accounts for routing congestion —
// the placement-and-routing half of the commercial flow the paper builds
// on. The re-mapper itself prices wires by Manhattan distance (§V.B's
// buffered-wire model); this package verifies that the distances are
// realizable and quantifies how evenly the re-mapped floorplans load the
// interconnect.
package route

import (
	"fmt"

	"agingfp/internal/arch"
)

// Segment is one unit hop between adjacent cells.
type Segment struct {
	From, To arch.Coord
}

// Route is a wire: an ordered list of unit segments from the driver PE to
// the load PE.
type Route struct {
	// Ctx is the context whose configuration carries this wire.
	Ctx int
	// Driver and Load are the endpoints (op IDs).
	Driver, Load int
	Segments     []Segment
}

// Len returns the route's wire length in hops.
func (r *Route) Len() int { return len(r.Segments) }

// lRoute builds an L-shaped route from a to b. bendFirstX selects the
// bend orientation (x-then-y or y-then-x).
func lRoute(a, b arch.Coord, bendFirstX bool) []Segment {
	var segs []Segment
	cur := a
	stepX := func() {
		for cur.X != b.X {
			next := cur
			if b.X > cur.X {
				next.X++
			} else {
				next.X--
			}
			segs = append(segs, Segment{From: cur, To: next})
			cur = next
		}
	}
	stepY := func() {
		for cur.Y != b.Y {
			next := cur
			if b.Y > cur.Y {
				next.Y++
			} else {
				next.Y--
			}
			segs = append(segs, Segment{From: cur, To: next})
			cur = next
		}
	}
	if bendFirstX {
		stepX()
		stepY()
	} else {
		stepY()
		stepX()
	}
	return segs
}

// Congestion tracks per-cell interconnect usage, accumulated over all
// contexts (the fabric's wiring is shared; each context programs its own
// subset).
type Congestion struct {
	Fabric arch.Fabric
	// Use[y][x] counts route segments entering or leaving the cell.
	Use [][]int
}

// NewCongestion allocates a zero map.
func NewCongestion(f arch.Fabric) *Congestion {
	c := &Congestion{Fabric: f, Use: make([][]int, f.H)}
	for y := range c.Use {
		c.Use[y] = make([]int, f.W)
	}
	return c
}

func (c *Congestion) add(seg Segment) {
	c.Use[seg.From.Y][seg.From.X]++
	c.Use[seg.To.Y][seg.To.X]++
}

// Max returns the most-used cell's load.
func (c *Congestion) Max() int {
	m := 0
	for _, row := range c.Use {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Total returns the summed segment-endpoint usage (2x total wirelength).
func (c *Congestion) Total() int {
	t := 0
	for _, row := range c.Use {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Result is the outcome of routing a whole design.
type Result struct {
	Routes     []*Route
	Congestion *Congestion
	// TotalWireLen is the summed route length in hops.
	TotalWireLen int
	// MaxRouteLen is the longest single route.
	MaxRouteLen int
}

// RouteAll routes every data edge of the design under mapping m: chained
// edges within their context, registered edges in the consumer's context
// (the wire runs from the producer's output register to the consumer).
// Each wire picks the L-bend that currently crosses less congestion —
// a one-pass greedy router in the spirit of the commercial flow's
// detailed router.
func RouteAll(d *arch.Design, m arch.Mapping) (*Result, error) {
	if err := arch.ValidateMapping(d, m); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	res := &Result{Congestion: NewCongestion(d.Fabric)}
	for _, e := range d.Graph.Edges {
		ctx := d.Ctx[e.To]
		a, b := m[e.From], m[e.To]
		if a == b {
			// Same PE across contexts: the register feeds the local
			// input network; no fabric wire.
			continue
		}
		segsX := lRoute(a, b, true)
		segsY := lRoute(a, b, false)
		segs := segsX
		if congestionCost(res.Congestion, segsY) < congestionCost(res.Congestion, segsX) {
			segs = segsY
		}
		r := &Route{Ctx: ctx, Driver: e.From, Load: e.To, Segments: segs}
		for _, s := range segs {
			res.Congestion.add(s)
		}
		res.Routes = append(res.Routes, r)
		res.TotalWireLen += r.Len()
		if r.Len() > res.MaxRouteLen {
			res.MaxRouteLen = r.Len()
		}
	}
	return res, nil
}

// congestionCost prices a candidate route by the squared usage of the
// cells it would cross (quadratic: hot cells repel harder).
func congestionCost(c *Congestion, segs []Segment) int {
	cost := 0
	for _, s := range segs {
		u := c.Use[s.To.Y][s.To.X]
		cost += (u + 1) * (u + 1)
	}
	return cost
}

// Validate checks every route's structural invariants: unit steps,
// contiguity, endpoints matching the mapping, and length equal to the
// Manhattan distance (L-routes are always shortest).
func Validate(d *arch.Design, m arch.Mapping, res *Result) error {
	for i, r := range res.Routes {
		if len(r.Segments) == 0 {
			return fmt.Errorf("route %d: empty", i)
		}
		if r.Segments[0].From != m[r.Driver] {
			return fmt.Errorf("route %d: starts at %v, driver at %v", i, r.Segments[0].From, m[r.Driver])
		}
		last := r.Segments[len(r.Segments)-1].To
		if last != m[r.Load] {
			return fmt.Errorf("route %d: ends at %v, load at %v", i, last, m[r.Load])
		}
		for k, s := range r.Segments {
			if s.From.Dist(s.To) != 1 {
				return fmt.Errorf("route %d segment %d: non-unit step %v -> %v", i, k, s.From, s.To)
			}
			if k > 0 && r.Segments[k-1].To != s.From {
				return fmt.Errorf("route %d: discontinuous at segment %d", i, k)
			}
			if !d.Fabric.Contains(s.From) || !d.Fabric.Contains(s.To) {
				return fmt.Errorf("route %d: off fabric", i)
			}
		}
		if r.Len() != m[r.Driver].Dist(m[r.Load]) {
			return fmt.Errorf("route %d: length %d != Manhattan %d", i, r.Len(), m[r.Driver].Dist(m[r.Load]))
		}
	}
	return nil
}
