package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/dfg"
	"agingfp/internal/place"
)

func TestLRouteShapes(t *testing.T) {
	a := arch.Coord{X: 1, Y: 1}
	b := arch.Coord{X: 4, Y: 3}
	sx := lRoute(a, b, true)
	sy := lRoute(a, b, false)
	if len(sx) != 5 || len(sy) != 5 {
		t.Fatalf("lengths %d/%d, want Manhattan 5", len(sx), len(sy))
	}
	// x-first bends at (4,1); y-first bends at (1,3).
	if sx[2].To != (arch.Coord{X: 4, Y: 1}) {
		t.Fatalf("x-first corner %v", sx[2].To)
	}
	if sy[1].To != (arch.Coord{X: 1, Y: 3}) {
		t.Fatalf("y-first corner %v", sy[1].To)
	}
	// Degenerate: same cell.
	if got := lRoute(a, a, true); len(got) != 0 {
		t.Fatalf("self route %v", got)
	}
}

func TestRouteAllOnBenchmark(t *testing.T) {
	spec, _ := bench.SpecByName("B4")
	d, err := bench.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RouteAll(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, m, res); err != nil {
		t.Fatal(err)
	}
	if res.TotalWireLen <= 0 || res.Congestion.Max() <= 0 {
		t.Fatalf("degenerate routing: total %d, max congestion %d", res.TotalWireLen, res.Congestion.Max())
	}
	// Endpoint accounting: total congestion entries = 2 x total hops.
	if res.Congestion.Total() != 2*res.TotalWireLen {
		t.Fatalf("congestion total %d != 2x wirelen %d", res.Congestion.Total(), res.TotalWireLen)
	}
}

// Property: every route is a shortest path regardless of mapping.
func TestRoutesAreShortest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(18, 4))
		levels, nl := g.Levels()
		ctx := make([]int, g.NumOps())
		copy(ctx, levels)
		d := arch.NewDesign("r", arch.Fabric{W: 5, H: 5}, nl, g, ctx)
		if d.Validate() != nil {
			return true
		}
		m := make(arch.Mapping, d.NumOps())
		for c := 0; c < d.NumContexts; c++ {
			perm := rng.Perm(25)
			for i, op := range d.ContextOps(c) {
				m[op] = d.Fabric.CoordOf(perm[i])
			}
		}
		res, err := RouteAll(d, m)
		if err != nil {
			return false
		}
		return Validate(d, m, res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCongestionAwareBendChoice: routing many parallel wires through a
// shared corridor, the greedy bend choice must spread load versus a
// naive all-x-first router.
func TestCongestionAwareBendChoice(t *testing.T) {
	g := &dfg.Graph{}
	n := 6
	for i := 0; i < n; i++ {
		a := g.AddOp(dfg.ALU, "src")
		b := g.AddOp(dfg.ALU, "dst")
		g.AddEdge(a, b)
	}
	ctx := make([]int, 2*n)
	for i := range ctx {
		ctx[i] = i % 2 // sources ctx0, sinks ctx1
	}
	d := arch.NewDesign("cong", arch.Fabric{W: 8, H: 8}, 2, g, ctx)
	m := make(arch.Mapping, 2*n)
	for i := 0; i < n; i++ {
		m[2*i] = arch.Coord{X: 0, Y: i}   // column of drivers
		m[2*i+1] = arch.Coord{X: 7, Y: i} // column of loads (same rows)
	}
	res, err := RouteAll(d, m)
	if err != nil {
		t.Fatal(err)
	}
	// Same-row pairs: both bends degenerate to the same straight route,
	// so this just validates; now offset the loads to force bends.
	for i := 0; i < n; i++ {
		m[2*i+1] = arch.Coord{X: 7, Y: (i + 3) % 8}
	}
	res, err = RouteAll(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, m, res); err != nil {
		t.Fatal(err)
	}
	// A naive all-x-first router would funnel every bend into column 7.
	naive := NewCongestion(d.Fabric)
	for i := 0; i < n; i++ {
		for _, s := range lRoute(m[2*i], m[2*i+1], true) {
			naive.add(s)
		}
	}
	if res.Congestion.Max() > naive.Max() {
		t.Fatalf("greedy router more congested (%d) than naive (%d)",
			res.Congestion.Max(), naive.Max())
	}
}

// TestRemapDoesNotExplodeCongestion: the re-mapped floorplan's congestion
// stays within a small factor of the baseline's (spreading ops spreads
// wires too).
func TestSamePECrossContextEdgeHasNoWire(t *testing.T) {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.ALU, "b")
	g.AddEdge(a, b)
	d := arch.NewDesign("x", arch.Fabric{W: 3, H: 3}, 2, g, []int{0, 1})
	m := arch.Mapping{{X: 1, Y: 1}, {X: 1, Y: 1}} // same PE, consecutive contexts
	res, err := RouteAll(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 0 {
		t.Fatalf("%d routes for a register-local edge", len(res.Routes))
	}
}
