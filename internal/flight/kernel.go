// Solver-kernel profile types: the phase-attributed simplex effort and
// branch-and-bound tree shape a recorder accumulates when kernel
// profiling is armed (EnableKernel). The lp layer measures per solve and
// contributes via NoteKernel; milp contributes tree shape via NoteTree.
// Both sections are strictly opt-in — an unarmed recorder journals
// neither, so existing journals stay byte-identical.
package flight

// Simplex phase names, shared between the lp profiler, the journal, and
// every exporter (metrics labels, report sections, dashboards).
const (
	PhaseSetup   = "setup"
	PhasePricing = "pricing"
	PhaseFtran   = "ftran"
	PhaseRatio   = "ratio"
	PhaseUpdate  = "update"
	PhaseRefresh = "refresh"
)

// PhaseOrder lists the simplex phases in pipeline order, for renderers
// that want a stable, meaningful ordering instead of alphabetical.
var PhaseOrder = []string{PhaseSetup, PhasePricing, PhaseFtran, PhaseRatio, PhaseUpdate, PhaseRefresh}

// KernelPhase is the accumulated effort of one simplex phase: how often
// it ran, how many of those runs were wall-clock sampled, and the
// extrapolated total nanoseconds attributed to it.
type KernelPhase struct {
	Count   int64 `json:"count"`
	Sampled int64 `json:"sampled"`
	Nanos   int64 `json:"nanos"`
}

// Kernel aggregates phase-attributed simplex effort across every
// profiled LP solve of one recorder's lifetime.
type Kernel struct {
	// Solves counts profiled LP solves merged into this aggregate.
	Solves int64 `json:"solves"`
	// TotalNanos is the measured wall-clock across those solves; the
	// per-phase Nanos should attribute nearly all of it (Coverage).
	TotalNanos int64 `json:"total_nanos"`
	// SampleRate is the iteration sampling stride the profiler used
	// (time every Nth iteration, extrapolate).
	SampleRate int `json:"sample_rate"`
	// RefreshEvery is the effective primal-refresh cadence, recorded so
	// refactor-frequency experiments are reproducible from the journal.
	RefreshEvery int `json:"refresh_every"`
	// MaxM/MaxN are the largest basis dimension and column count seen;
	// BinvBytes is the dense basis-inverse footprint at MaxM (8·M²) —
	// the cost model the sparse-LU work will be judged against.
	MaxM      int   `json:"max_m"`
	MaxN      int   `json:"max_n"`
	BinvBytes int64 `json:"binv_bytes"`
	// Iters/Degenerate/Refreshes sum the per-solve counters;
	// MaxDegenerateRun is the longest consecutive degenerate-pivot run
	// observed in any single solve.
	Iters            int64 `json:"iters"`
	Degenerate       int64 `json:"degenerate"`
	MaxDegenerateRun int   `json:"max_degenerate_run"`
	Refreshes        int64 `json:"refreshes"`
	// Phases is the phase-attributed effort, keyed by Phase* name.
	Phases map[string]*KernelPhase `json:"phases,omitempty"`
	// FamilyPivots counts simplex pivots by the constraint family of the
	// leaving row (the flight recorder's family taxonomy plus "capacity",
	// "wire-axis", and "other"), attributing kernel effort to the
	// formulation rows that drive it.
	FamilyPivots map[string]int64 `json:"family_pivots,omitempty"`
}

// Coverage reports the fraction of measured wall-clock the named phases
// account for; the CI gate asserts >= 0.95. Nil-safe.
func (k *Kernel) Coverage() float64 {
	if k == nil || k.TotalNanos <= 0 {
		return 0
	}
	var attr int64
	for _, ph := range k.Phases {
		attr += ph.Nanos
	}
	return float64(attr) / float64(k.TotalNanos)
}

// merge folds one solve's contribution into the aggregate.
func (k *Kernel) merge(c *Kernel) {
	k.Solves += c.Solves
	k.TotalNanos += c.TotalNanos
	if c.SampleRate > 0 {
		k.SampleRate = c.SampleRate
	}
	if c.RefreshEvery > 0 {
		k.RefreshEvery = c.RefreshEvery
	}
	if c.MaxM > k.MaxM {
		k.MaxM = c.MaxM
	}
	if c.MaxN > k.MaxN {
		k.MaxN = c.MaxN
	}
	if c.BinvBytes > k.BinvBytes {
		k.BinvBytes = c.BinvBytes
	}
	k.Iters += c.Iters
	k.Degenerate += c.Degenerate
	if c.MaxDegenerateRun > k.MaxDegenerateRun {
		k.MaxDegenerateRun = c.MaxDegenerateRun
	}
	k.Refreshes += c.Refreshes
	for name, ph := range c.Phases {
		if k.Phases == nil {
			k.Phases = make(map[string]*KernelPhase)
		}
		dst := k.Phases[name]
		if dst == nil {
			dst = &KernelPhase{}
			k.Phases[name] = dst
		}
		dst.Count += ph.Count
		dst.Sampled += ph.Sampled
		dst.Nanos += ph.Nanos
	}
	for fam, n := range c.FamilyPivots {
		if k.FamilyPivots == nil {
			k.FamilyPivots = make(map[string]int64)
		}
		k.FamilyPivots[fam] += n
	}
}

// clone deep-copies the aggregate so callers can serialize it while the
// recorder keeps merging.
func (k *Kernel) clone() *Kernel {
	if k == nil {
		return nil
	}
	out := *k
	if k.Phases != nil {
		out.Phases = make(map[string]*KernelPhase, len(k.Phases))
		for name, ph := range k.Phases {
			cp := *ph
			out.Phases[name] = &cp
		}
	}
	out.FamilyPivots = copyCounts(k.FamilyPivots)
	return &out
}

// B&B prune reasons, the taxonomy of TreeStats.Prunes (a subset of the
// Cause values KindPrune events carry, plus "integral" for leaves that
// needed no branching).
const (
	PruneBound      = "bound"
	PruneInfeasible = "infeasible"
	PruneIntegral   = "integral"
	PruneIterLimit  = "iterlimit"
	PruneBudget     = "budget"
)

// maxTreeDepthBins caps the depth histogram; deeper nodes land in the
// last bin so a pathological dive cannot grow the journal unboundedly.
const maxTreeDepthBins = 32

// maxTreeIncumbents bounds the recorded incumbent trajectory across all
// merged solves.
const maxTreeIncumbents = 64

// TreeIncumbent is one incumbent improvement: at which processed node
// it landed and the objective it reached.
type TreeIncumbent struct {
	Node int     `json:"node"`
	Obj  float64 `json:"obj"`
}

// TreeStats is the branch-and-bound tree shape aggregated across the
// MILP solves of one recorder's lifetime.
type TreeStats struct {
	// Solves counts MILP solves merged in; Nodes the processed nodes.
	Solves int   `json:"solves"`
	Nodes  int64 `json:"nodes"`
	// MaxDepth is the deepest node processed; DepthHist counts nodes per
	// depth (index = depth, capped at maxTreeDepthBins-1).
	MaxDepth  int     `json:"max_depth"`
	DepthHist []int64 `json:"depth_hist,omitempty"`
	// Prunes counts pruned subtrees by reason (Prune* taxonomy).
	Prunes map[string]int64 `json:"prunes,omitempty"`
	// Incumbents is the improvement trajectory (bounded; per solve the
	// node indices restart from that solve's own numbering).
	Incumbents []TreeIncumbent `json:"incumbents,omitempty"`
	// ElapsedNanos sums the wall-clock of the merged solves, giving node
	// throughput as Nodes/ElapsedNanos.
	ElapsedNanos int64 `json:"elapsed_nanos,omitempty"`
}

// Node records one processed node at the given depth. Unsynchronized —
// for a TreeStats still owned by a single search; NoteTree merges it
// into a recorder under lock afterwards. Nil-safe.
func (t *TreeStats) Node(depth int) {
	if t == nil {
		return
	}
	t.Nodes++
	if depth > t.MaxDepth {
		t.MaxDepth = depth
	}
	bin := depth
	if bin >= maxTreeDepthBins {
		bin = maxTreeDepthBins - 1
	}
	for len(t.DepthHist) <= bin {
		t.DepthHist = append(t.DepthHist, 0)
	}
	t.DepthHist[bin]++
}

// Prune records one pruned subtree by reason (Prune* taxonomy). Nil-safe.
func (t *TreeStats) Prune(cause string) {
	if t == nil {
		return
	}
	if t.Prunes == nil {
		t.Prunes = make(map[string]int64)
	}
	t.Prunes[cause]++
}

// Incumbent records one incumbent improvement (bounded). Nil-safe.
func (t *TreeStats) Incumbent(node int, obj float64) {
	if t == nil || len(t.Incumbents) >= maxTreeIncumbents {
		return
	}
	t.Incumbents = append(t.Incumbents, TreeIncumbent{Node: node, Obj: obj})
}

// merge folds one MILP solve's tree shape into the aggregate.
func (t *TreeStats) merge(c *TreeStats) {
	t.Solves += c.Solves
	t.Nodes += c.Nodes
	if c.MaxDepth > t.MaxDepth {
		t.MaxDepth = c.MaxDepth
	}
	if len(c.DepthHist) > len(t.DepthHist) {
		grown := make([]int64, len(c.DepthHist))
		copy(grown, t.DepthHist)
		t.DepthHist = grown
	}
	for d, n := range c.DepthHist {
		t.DepthHist[d] += n
	}
	for cause, n := range c.Prunes {
		if t.Prunes == nil {
			t.Prunes = make(map[string]int64)
		}
		t.Prunes[cause] += n
	}
	for _, inc := range c.Incumbents {
		if len(t.Incumbents) >= maxTreeIncumbents {
			break
		}
		t.Incumbents = append(t.Incumbents, inc)
	}
	t.ElapsedNanos += c.ElapsedNanos
}

// clone deep-copies the aggregate.
func (t *TreeStats) clone() *TreeStats {
	if t == nil {
		return nil
	}
	out := *t
	out.DepthHist = append([]int64(nil), t.DepthHist...)
	out.Prunes = copyCounts(t.Prunes)
	out.Incumbents = append([]TreeIncumbent(nil), t.Incumbents...)
	return &out
}

// EnableKernel arms kernel profiling on the recorder: LP solves that
// fall back to this recorder (explicitly or via the context) profile
// themselves at the given sampling rate (0 selects the lp default) and
// contribute via NoteKernel, and MILP solves contribute tree shape via
// NoteTree. Nil-safe; unarmed recorders cost the solvers one atomic
// load per solve.
func (r *Recorder) EnableKernel(rate int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kernelOn = true
	r.kernelRate = rate
}

// KernelProfiling reports whether kernel profiling is armed and the
// requested sampling rate (0 = solver default). Nil-safe.
func (r *Recorder) KernelProfiling() (rate int, on bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kernelRate, r.kernelOn
}

// NoteKernel merges one profiled LP solve's kernel contribution.
func (r *Recorder) NoteKernel(c *Kernel) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.kernel == nil {
		r.kernel = &Kernel{}
	}
	r.kernel.merge(c)
}

// NoteTree merges one MILP solve's tree-shape contribution. Only armed
// recorders accept it: tree stats carry wall-clock, which would break
// the byte-identity of unprofiled journals.
func (r *Recorder) NoteTree(c *TreeStats) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.kernelOn {
		return
	}
	if r.tree == nil {
		r.tree = &TreeStats{}
	}
	r.tree.merge(c)
}

// KernelSnapshot deep-copies the kernel aggregate (nil when no profiled
// solve contributed yet) without the cost of a full journal snapshot.
func (r *Recorder) KernelSnapshot() *Kernel {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kernel.clone()
}
