package flight

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindProbe})
	r.NoteLP(3, 1, 1)
	r.NoteWarm(false, "singular")
	r.NoteNodes(7)
	r.NoteInfeasible(FamilyStressBudget)
	r.SetStress(&StressAttribution{})
	if j := r.Snapshot(); j != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", j)
	}
}

func TestRecorderBounding(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindProbe, Round: i})
	}
	j := r.Snapshot()
	if len(j.Events) != 3 {
		t.Fatalf("stored %d events, want 3", len(j.Events))
	}
	if j.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", j.Dropped)
	}
	// Aggregates keep counting past the bound.
	if got := j.Aggregates.EventCounts[KindProbe]; got != 10 {
		t.Fatalf("EventCounts[probe] = %d, want 10", got)
	}
	for i, e := range j.Events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestRecorderDefaultBound(t *testing.T) {
	r := NewRecorder(0)
	if r.max != DefaultMaxEvents {
		t.Fatalf("max = %d, want %d", r.max, DefaultMaxEvents)
	}
}

func TestContextPropagation(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) != nil")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext(empty ctx) != nil")
	}
	r := NewRecorder(8)
	ctx := WithRecorder(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("recorder did not round-trip through context")
	}
	// A nil recorder shadows the one above — diagnosis solves rely on
	// this to keep their LP probing out of the journal.
	stripped := WithRecorder(ctx, nil)
	if FromContext(stripped) != nil {
		t.Fatal("nil recorder failed to shadow parent")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindProbe, Round: 1, ST: 0.5, Status: "infeasible"})
	r.Record(Event{Kind: KindRelax, Round: 1, ST: 0.55, F: 0.05, Cause: "infeasible"})
	r.NoteLP(40, 2, 1)
	r.NoteWarm(true, "")
	r.NoteWarm(false, "dim_mismatch")
	r.NoteInfeasible(FamilyStressBudget)
	r.SetStress(&StressAttribution{W: 2, H: 1, Total: [][]float64{{1, 2}}, Frozen: [][]float64{{0.5, 0}}})
	j := r.Snapshot()

	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != JournalSchema {
		t.Fatalf("schema %q", back.Schema)
	}
	if len(back.Events) != len(j.Events) {
		t.Fatalf("events %d, want %d", len(back.Events), len(j.Events))
	}
	if back.Aggregates.SimplexIters != 40 || back.Aggregates.WarmAccepts != 1 {
		t.Fatalf("aggregates did not round-trip: %+v", back.Aggregates)
	}
	if back.Stress == nil || back.Stress.Total[0][1] != 2 {
		t.Fatalf("stress did not round-trip: %+v", back.Stress)
	}

	bad := strings.NewReader(`{"schema":"other/v9"}`)
	if _, err := ReadJournal(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Kind: KindProbe})
	j := r.Snapshot()
	r.Record(Event{Kind: KindRelax})
	r.NoteWarm(false, "singular")
	if len(j.Events) != 1 {
		t.Fatalf("snapshot grew to %d events", len(j.Events))
	}
	if j.Aggregates.EventCounts[KindRelax] != 0 || len(j.Aggregates.WarmRejects) != 0 {
		t.Fatal("snapshot shares maps with the live recorder")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindBranch, Node: i})
				r.NoteLP(1, 0, 0)
				r.NoteWarm(i%2 == 0, "stale_basis")
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	j := r.Snapshot()
	if got := j.Aggregates.EventCounts[KindBranch]; got != 800 {
		t.Fatalf("EventCounts[branch] = %d, want 800", got)
	}
	if j.Aggregates.LPSolves != 800 {
		t.Fatalf("LPSolves = %d, want 800", j.Aggregates.LPSolves)
	}
	if len(j.Events) != 64 || j.Dropped == 0 {
		t.Fatalf("bounding failed under concurrency: %d stored, %d dropped", len(j.Events), j.Dropped)
	}
}

func TestBuildReportSynthesis(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: KindStep1Probe, ST: 0.4, Status: "infeasible", Cause: "milp"})
	r.Record(Event{Kind: KindStep1Probe, ST: 0.6, Status: "feasible", Cause: "greedy"})
	r.Record(Event{Kind: KindProbe, Round: 1, ST: 0.6, Status: "infeasible"})
	r.Record(Event{Kind: KindRelax, Round: 1, ST: 0.65, F: 0.05, Cause: "infeasible"})
	r.Record(Event{Kind: KindProbe, Round: 2, ST: 0.65, Status: "feasible", Obj: 3.2})
	r.Record(Event{Kind: KindRotateScore, Round: 0, Obj: 5})
	r.Record(Event{Kind: KindRotateScore, Round: 1, Obj: 3})
	r.Record(Event{Kind: KindRotate, Round: 1, Obj: 3, N: 4})
	r.Record(Event{Kind: KindRotateCtx, Ctx: 0, Var: 2})
	r.Record(Event{Kind: KindRotateCtx, Ctx: 1, Var: 0})
	r.Record(Event{Kind: KindPrune, Node: 3, Cause: "bound"})
	r.Record(Event{Kind: KindPrune, Node: 5, Cause: "bound"})
	r.NoteNodes(9)
	r.NoteInfeasible(FamilyStressBudget)

	rep := BuildReport(r.Snapshot())
	if rep.Summary.RelaxIterations != 2 {
		t.Fatalf("RelaxIterations = %d, want 2", rep.Summary.RelaxIterations)
	}
	if rep.Summary.FinalST != 0.65 || rep.Summary.FinalStatus != "feasible" {
		t.Fatalf("final = %v/%q", rep.Summary.FinalST, rep.Summary.FinalStatus)
	}
	if len(rep.Step1) != 2 || rep.Step1[1].Cause != "greedy" {
		t.Fatalf("step1 table wrong: %+v", rep.Step1)
	}
	if len(rep.Relaxes) != 1 || rep.Relaxes[0].Cause != "infeasible" {
		t.Fatalf("relax timeline wrong: %+v", rep.Relaxes)
	}
	if rep.Rotation == nil || rep.Rotation.Restarts != 2 || rep.Rotation.Winner != 1 || len(rep.Rotation.Choices) != 2 {
		t.Fatalf("rotation summary wrong: %+v", rep.Rotation)
	}
	if rep.Search.Nodes != 9 || rep.Search.Prunes["bound"] != 2 {
		t.Fatalf("search summary wrong: %+v", rep.Search)
	}
	if rep.Infeasibility == nil || rep.Infeasibility.Blocker != FamilyStressBudget {
		t.Fatalf("digest wrong: %+v", rep.Infeasibility)
	}
	txt := rep.Text()
	for _, want := range []string{"probe convergence", "relax timeline", "stress-budget", "rotation"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text report missing %q:\n%s", want, txt)
		}
	}
}

func TestDigestBlockerPriority(t *testing.T) {
	cases := []struct {
		counts map[string]int64
		want   string
	}{
		{map[string]int64{FamilyPathDelay: 3, FamilyStressBudget: 1}, FamilyPathDelay},
		{map[string]int64{FamilyPathDelay: 2, FamilyStressBudget: 2}, FamilyStressBudget},
		{map[string]int64{FamilyAssignment: 2, FamilyPathDelay: 2}, FamilyPathDelay},
		{map[string]int64{FamilyAssignment: 5}, FamilyAssignment},
		{map[string]int64{"mystery": 1, FamilyAssignment: 1}, FamilyAssignment},
	}
	for _, c := range cases {
		if got := dominantFamily(c.counts); got != c.want {
			t.Errorf("dominantFamily(%v) = %q, want %q", c.counts, got, c.want)
		}
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRecorder(0)
		r.Record(Event{Kind: KindProbe, Round: 1, ST: 0.5, Status: "infeasible"})
		r.NoteWarm(false, "singular")
		r.NoteWarm(false, "dim_mismatch")
		r.NoteInfeasible(FamilyPathDelay)
		r.NoteInfeasible(FamilyStressBudget)
		r.Record(Event{Kind: KindPrune, Cause: "bound"})
		r.Record(Event{Kind: KindPrune, Cause: "infeasible"})
		out, err := BuildReport(r.Snapshot()).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("report JSON not byte-identical:\n%s\n----\n%s", a, b)
	}
}

func TestHeatmapSVG(t *testing.T) {
	rep := BuildReport(&Journal{Schema: JournalSchema})
	if svg := rep.HeatmapSVG(); svg != "" {
		t.Fatal("heatmap without stress should be empty")
	}
	rep.Stress = &StressAttribution{W: 2, H: 2, Total: [][]float64{{1, 2}, {3, 4}}}
	svg := rep.HeatmapSVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "stress attribution") {
		t.Fatalf("bad heatmap SVG: %.120s", svg)
	}
}
