// Journal serialization and the explainability report derived from it.
//
// A Journal is the raw, replayable event log a Recorder captured; the
// Report is its synthesis — probe convergence table, relax timeline,
// rotation summary, B&B and warm-start tallies, infeasibility digest,
// and per-PE stress heatmap. Both serialize deterministically: no
// timestamps, no map iteration in ordered output, stable field order,
// so byte-identical solves produce byte-identical documents.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"agingfp/internal/viz"
)

// JournalSchema tags the journal JSON layout; readers reject other
// schemas so a stale file fails loudly.
const JournalSchema = "agingfp-flight/v1"

// ReportSchema tags the rendered report JSON layout.
const ReportSchema = "agingfp-flight-report/v1"

// Journal is a recorder's exported state: the bounded event log plus
// the aggregates that kept counting past the bound.
type Journal struct {
	Schema     string             `json:"schema"`
	MaxEvents  int                `json:"max_events"`
	Dropped    int                `json:"dropped"`
	Aggregates Aggregates         `json:"aggregates"`
	Stress     *StressAttribution `json:"stress,omitempty"`
	// Kernel/Tree carry the solver-kernel profile when profiling was
	// armed (EnableKernel); both are absent otherwise.
	Kernel *Kernel    `json:"kernel,omitempty"`
	Tree   *TreeStats `json:"tree,omitempty"`
	Events []Event    `json:"events"`
}

// WriteJSON writes the journal as indented JSON.
func (j *Journal) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadJournal parses a journal and validates its schema tag.
func ReadJournal(r io.Reader) (*Journal, error) {
	var j Journal
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("flight: bad journal: %w", err)
	}
	if j.Schema != JournalSchema {
		return nil, fmt.Errorf("flight: journal schema %q, want %q", j.Schema, JournalSchema)
	}
	return &j, nil
}

// ProbeRow is one line of a probe convergence table. Cause carries the
// step-1 feasibility certificate (greedy or milp) and is empty for
// outer probes.
type ProbeRow struct {
	Round  int     `json:"round"`
	ST     float64 `json:"st"`
	Status string  `json:"status"`
	Obj    float64 `json:"obj"`
	Cause  string  `json:"cause,omitempty"`
}

// RelaxRow is one Algorithm-1 relaxation: the new target, the delta
// applied, and which probe outcome forced it.
type RelaxRow struct {
	Round int     `json:"round"`
	ST    float64 `json:"st"`
	Delta float64 `json:"delta"`
	Cause string  `json:"cause"`
}

// RotationChoice is the orientation the winning restart chose for one
// context.
type RotationChoice struct {
	Ctx         int `json:"ctx"`
	Orientation int `json:"orientation"`
}

// RotationSummary condenses the rotation-restart tournament.
type RotationSummary struct {
	Restarts  int              `json:"restarts"`
	Winner    int              `json:"winner"`
	BestScore float64          `json:"best_score"`
	CrossArcs int              `json:"cross_arcs"`
	Choices   []RotationChoice `json:"choices,omitempty"`
}

// SearchSummary tallies the branch-and-bound trajectory.
type SearchSummary struct {
	Nodes      int64            `json:"nodes"`
	Branches   int64            `json:"branches"`
	Incumbents int64            `json:"incumbents"`
	Prunes     map[string]int64 `json:"prunes,omitempty"`
}

// WarmSummary tallies warm-start outcomes by reject reason.
type WarmSummary struct {
	Accepts int64            `json:"accepts"`
	Rejects map[string]int64 `json:"rejects,omitempty"`
}

// NumericsSummary surfaces the LP layer's numerical-health counters.
type NumericsSummary struct {
	LPSolves         int64 `json:"lp_solves"`
	SimplexIters     int64 `json:"simplex_iters"`
	DegeneratePivots int64 `json:"degenerate_pivots"`
	Refactorizations int64 `json:"refactorizations"`
}

// Digest attributes failed probes to constraint families and names the
// dominant one.
type Digest struct {
	ByFamily map[string]int64 `json:"by_family"`
	// Blocker is the family with the most attributions; ties break by
	// severity order stress-budget > path-delay > assignment, since an
	// exhausted stress budget subsumes the others as an explanation.
	Blocker string `json:"blocker"`
}

// Summary is the report's headline numbers.
type Summary struct {
	// RelaxIterations counts Algorithm-1 outer probes — it equals
	// core.Stats.OuterIterations for the same solve.
	RelaxIterations int64   `json:"relax_iterations"`
	Step1Probes     int64   `json:"step1_probes"`
	Relaxations     int64   `json:"relaxations"`
	Batches         int64   `json:"batches"`
	FinalST         float64 `json:"final_st"`
	FinalStatus     string  `json:"final_status"`
	DroppedEvents   int     `json:"dropped_events"`
}

// Report is the explainability document synthesized from a journal.
type Report struct {
	Schema        string             `json:"schema"`
	Summary       Summary            `json:"summary"`
	Step1         []ProbeRow         `json:"step1,omitempty"`
	Probes        []ProbeRow         `json:"probes,omitempty"`
	Relaxes       []RelaxRow         `json:"relaxes,omitempty"`
	Rotation      *RotationSummary   `json:"rotation,omitempty"`
	Search        SearchSummary      `json:"search"`
	Warm          WarmSummary        `json:"warm"`
	Numerics      NumericsSummary    `json:"numerics"`
	Infeasibility *Digest            `json:"infeasibility,omitempty"`
	Stress        *StressAttribution `json:"stress,omitempty"`
	// Kernel/Tree pass the journal's solver-kernel profile through when
	// profiling was armed.
	Kernel *Kernel    `json:"kernel,omitempty"`
	Tree   *TreeStats `json:"tree,omitempty"`
}

// BuildReport synthesizes a journal into a report. The pass over the
// events is order-preserving (events carry monotone Seq), so the same
// journal always yields the same report.
func BuildReport(j *Journal) *Report {
	r := &Report{Schema: ReportSchema}
	if j == nil {
		return r
	}
	agg := j.Aggregates
	r.Summary = Summary{
		RelaxIterations: agg.EventCounts[KindProbe],
		Step1Probes:     agg.EventCounts[KindStep1Probe],
		Relaxations:     agg.EventCounts[KindRelax],
		Batches:         agg.EventCounts[KindBatch],
		DroppedEvents:   j.Dropped,
	}
	r.Search = SearchSummary{
		Nodes:      agg.Nodes,
		Branches:   agg.EventCounts[KindBranch],
		Incumbents: agg.EventCounts[KindIncumbent],
	}
	r.Warm = WarmSummary{Accepts: agg.WarmAccepts, Rejects: copyCounts(agg.WarmRejects)}
	r.Numerics = NumericsSummary{
		LPSolves:         agg.LPSolves,
		SimplexIters:     agg.SimplexIters,
		DegeneratePivots: agg.DegeneratePivots,
		Refactorizations: agg.Refactorizations,
	}
	r.Stress = j.Stress
	r.Kernel = j.Kernel
	r.Tree = j.Tree

	var rot *RotationSummary
	for _, e := range j.Events {
		switch e.Kind {
		case KindStep1Probe:
			r.Step1 = append(r.Step1, ProbeRow{Round: len(r.Step1) + 1, ST: e.ST, Status: e.Status, Obj: e.Obj, Cause: e.Cause})
		case KindProbe:
			r.Probes = append(r.Probes, ProbeRow{Round: e.Round, ST: e.ST, Status: e.Status, Obj: e.Obj})
			r.Summary.FinalST = e.ST
			r.Summary.FinalStatus = e.Status
		case KindRelax:
			r.Relaxes = append(r.Relaxes, RelaxRow{Round: e.Round, ST: e.ST, Delta: e.F, Cause: e.Cause})
		case KindRotate:
			if rot == nil {
				rot = &RotationSummary{}
			}
			rot.Winner = e.Round
			rot.BestScore = e.Obj
			rot.CrossArcs = e.N
		case KindRotateScore:
			if rot == nil {
				rot = &RotationSummary{}
			}
			rot.Restarts++
		case KindRotateCtx:
			if rot == nil {
				rot = &RotationSummary{}
			}
			rot.Choices = append(rot.Choices, RotationChoice{Ctx: e.Ctx, Orientation: e.Var})
		case KindPrune:
			if r.Search.Prunes == nil {
				r.Search.Prunes = make(map[string]int64)
			}
			r.Search.Prunes[e.Cause]++
		}
	}
	r.Rotation = rot

	if len(agg.InfeasibleFamilies) > 0 {
		r.Infeasibility = &Digest{
			ByFamily: copyCounts(agg.InfeasibleFamilies),
			Blocker:  dominantFamily(agg.InfeasibleFamilies),
		}
	}
	return r
}

// familyPriority orders constraint families for blocker tie-breaks.
var familyPriority = []string{FamilyStressBudget, FamilyPathDelay, FamilyAssignment}

func dominantFamily(counts map[string]int64) string {
	best, bestN := "", int64(-1)
	// Known families first in severity order, then any unknown families
	// alphabetically so the result never depends on map order.
	seen := make(map[string]bool, len(counts))
	ordered := make([]string, 0, len(counts))
	for _, f := range familyPriority {
		if _, ok := counts[f]; ok {
			ordered = append(ordered, f)
			seen[f] = true
		}
	}
	rest := make([]string, 0, len(counts))
	for f := range counts {
		if !seen[f] {
			rest = append(rest, f)
		}
	}
	sort.Strings(rest)
	ordered = append(ordered, rest...)
	for _, f := range ordered {
		if counts[f] > bestN {
			best, bestN = f, counts[f]
		}
	}
	return best
}

// JSON renders the report as deterministic indented JSON. Maps are the
// only unordered containers and encoding/json sorts their keys, so the
// bytes are a pure function of the journal.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// HeatmapSVG renders the per-PE stress-attribution heatmap (total
// accumulated stress per PE), or "" when the journal carried none.
func (r *Report) HeatmapSVG() string {
	if r.Stress == nil || len(r.Stress.Total) == 0 {
		return ""
	}
	return viz.HeatSVG("per-PE stress attribution", r.Stress.Total)
}

// KernelSVG renders the per-phase wall-clock breakdown as a horizontal
// bar chart, or "" when the journal carried no kernel profile.
func (r *Report) KernelSVG() string {
	if r.Kernel == nil || len(r.Kernel.Phases) == 0 {
		return ""
	}
	var labels []string
	var ms []float64
	for _, name := range PhaseOrder {
		if ph := r.Kernel.Phases[name]; ph != nil {
			labels = append(labels, name)
			ms = append(ms, float64(ph.Nanos)/1e6)
		}
	}
	return viz.BarsSVG(labels, ms, "ms")
}

// Text renders the human-readable report: the tables an operator reads
// top to bottom to answer "what happened and why".
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== flight report (%s) ====\n", r.Schema)
	s := r.Summary
	fmt.Fprintf(&b, "relax iterations %d (step1 probes %d, relaxations %d, batches %d)\n",
		s.RelaxIterations, s.Step1Probes, s.Relaxations, s.Batches)
	if s.FinalStatus != "" {
		fmt.Fprintf(&b, "final: ST_target %.4f, status %s\n", s.FinalST, s.FinalStatus)
	}
	if s.DroppedEvents > 0 {
		fmt.Fprintf(&b, "note: %d events dropped at the recorder bound; aggregates remain exact\n", s.DroppedEvents)
	}

	if len(r.Step1) > 0 {
		fmt.Fprintf(&b, "\n-- step-1 binary search (ST_low) --\n")
		fmt.Fprintf(&b, "%5s  %9s  %-10s  %s\n", "probe", "ST", "verdict", "certificate")
		for _, p := range r.Step1 {
			fmt.Fprintf(&b, "%5d  %9.4f  %-10s  %s\n", p.Round, p.ST, p.Status, p.Cause)
		}
	}
	if len(r.Probes) > 0 {
		fmt.Fprintf(&b, "\n-- probe convergence --\n")
		fmt.Fprintf(&b, "%5s  %9s  %-13s  %9s\n", "round", "ST", "status", "CPD")
		for _, p := range r.Probes {
			if p.Obj != 0 {
				fmt.Fprintf(&b, "%5d  %9.4f  %-13s  %9.4f\n", p.Round, p.ST, p.Status, p.Obj)
			} else {
				fmt.Fprintf(&b, "%5d  %9.4f  %-13s  %9s\n", p.Round, p.ST, p.Status, "-")
			}
		}
	}
	if len(r.Relaxes) > 0 {
		fmt.Fprintf(&b, "\n-- relax timeline (ST_target += Δ) --\n")
		fmt.Fprintf(&b, "%5s  %9s  %9s  %s\n", "round", "new ST", "delta", "cause")
		for _, x := range r.Relaxes {
			fmt.Fprintf(&b, "%5d  %9.4f  %9.4f  %s\n", x.Round, x.ST, x.Delta, x.Cause)
		}
	}
	if rot := r.Rotation; rot != nil {
		fmt.Fprintf(&b, "\n-- rotation --\n")
		fmt.Fprintf(&b, "restarts %d, winner %d (score %.4f, cross-context arcs %d)\n",
			rot.Restarts, rot.Winner, rot.BestScore, rot.CrossArcs)
		if len(rot.Choices) > 0 {
			fmt.Fprintf(&b, "orientation per context:")
			for _, c := range rot.Choices {
				fmt.Fprintf(&b, " %d:%d", c.Ctx, c.Orientation)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	fmt.Fprintf(&b, "\n-- search --\n")
	fmt.Fprintf(&b, "B&B nodes %d, branches %d, incumbents %d", r.Search.Nodes, r.Search.Branches, r.Search.Incumbents)
	if len(r.Search.Prunes) > 0 {
		fmt.Fprintf(&b, ", prunes:")
		for _, k := range sortedKeys(r.Search.Prunes) {
			fmt.Fprintf(&b, " %s=%d", k, r.Search.Prunes[k])
		}
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "warm starts: %d accepted", r.Warm.Accepts)
	if len(r.Warm.Rejects) > 0 {
		fmt.Fprintf(&b, ", rejected:")
		for _, k := range sortedKeys(r.Warm.Rejects) {
			fmt.Fprintf(&b, " %s=%d", k, r.Warm.Rejects[k])
		}
	}
	fmt.Fprintf(&b, "\n")
	n := r.Numerics
	fmt.Fprintf(&b, "numerics: %d LP solves, %d simplex iterations, %d degenerate pivots, %d refactorizations\n",
		n.LPSolves, n.SimplexIters, n.DegeneratePivots, n.Refactorizations)

	if k := r.Kernel; k != nil {
		fmt.Fprintf(&b, "\n-- solver kernel (profiled) --\n")
		fmt.Fprintf(&b, "%d profiled LP solves, %.2f ms measured, coverage %.1f%% (timing 1/%d iterations, refresh every %d)\n",
			k.Solves, float64(k.TotalNanos)/1e6, 100*k.Coverage(), k.SampleRate, k.RefreshEvery)
		fmt.Fprintf(&b, "basis: max %d rows x %d cols, dense binv %d bytes; %d iterations, %d degenerate (longest run %d), %d refreshes\n",
			k.MaxM, k.MaxN, k.BinvBytes, k.Iters, k.Degenerate, k.MaxDegenerateRun, k.Refreshes)
		fmt.Fprintf(&b, "%-8s  %10s  %10s  %10s  %6s\n", "phase", "count", "sampled", "ms", "share")
		for _, name := range PhaseOrder {
			ph := k.Phases[name]
			if ph == nil {
				continue
			}
			share := 0.0
			if k.TotalNanos > 0 {
				share = 100 * float64(ph.Nanos) / float64(k.TotalNanos)
			}
			fmt.Fprintf(&b, "%-8s  %10d  %10d  %10.2f  %5.1f%%\n",
				name, ph.Count, ph.Sampled, float64(ph.Nanos)/1e6, share)
		}
		if len(k.FamilyPivots) > 0 {
			fmt.Fprintf(&b, "pivots by constraint family:")
			for _, fam := range sortedKeys(k.FamilyPivots) {
				fmt.Fprintf(&b, " %s=%d", fam, k.FamilyPivots[fam])
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if t := r.Tree; t != nil {
		fmt.Fprintf(&b, "\n-- branch-and-bound tree shape --\n")
		throughput := ""
		if t.ElapsedNanos > 0 {
			throughput = fmt.Sprintf(", %.0f nodes/s", float64(t.Nodes)/(float64(t.ElapsedNanos)/1e9))
		}
		fmt.Fprintf(&b, "%d solves, %d nodes, max depth %d%s\n", t.Solves, t.Nodes, t.MaxDepth, throughput)
		if len(t.DepthHist) > 0 {
			fmt.Fprintf(&b, "nodes by depth:")
			for d, c := range t.DepthHist {
				if c > 0 {
					fmt.Fprintf(&b, " %d:%d", d, c)
				}
			}
			fmt.Fprintf(&b, "\n")
		}
		if len(t.Prunes) > 0 {
			fmt.Fprintf(&b, "prunes:")
			for _, cause := range sortedKeys(t.Prunes) {
				fmt.Fprintf(&b, " %s=%d", cause, t.Prunes[cause])
			}
			fmt.Fprintf(&b, "\n")
		}
		if len(t.Incumbents) > 0 {
			fmt.Fprintf(&b, "incumbent trajectory (node:obj):")
			for _, inc := range t.Incumbents {
				fmt.Fprintf(&b, " %d:%.4f", inc.Node, inc.Obj)
			}
			fmt.Fprintf(&b, "\n")
		}
	}

	if d := r.Infeasibility; d != nil {
		fmt.Fprintf(&b, "\n-- infeasibility digest --\n")
		fmt.Fprintf(&b, "blocking constraint family: %s\n", d.Blocker)
		for _, k := range sortedKeys(d.ByFamily) {
			fmt.Fprintf(&b, "  %-14s %d\n", k, d.ByFamily[k])
		}
	}
	if st := r.Stress; st != nil && len(st.Total) > 0 {
		fmt.Fprintf(&b, "\n-- per-PE stress attribution (total / frozen share) --\n")
		for y := len(st.Total) - 1; y >= 0; y-- {
			for x := range st.Total[y] {
				frozen := 0.0
				if y < len(st.Frozen) && x < len(st.Frozen[y]) {
					frozen = st.Frozen[y][x]
				}
				fmt.Fprintf(&b, " %6.3f/%-6.3f", st.Total[y][x], frozen)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
