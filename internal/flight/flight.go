// Package flight is the per-solve flight recorder: a bounded,
// allocation-conscious journal of the structured decisions Algorithm 1
// makes while it runs — Step-1 probes, ST_target relaxations, rotation
// scoring, rounding-dive pre-maps, branch-and-bound events, warm-start
// outcomes, and infeasibility attributions. Where internal/obs answers
// "how is the fleet doing?" with spans and counters, flight answers
// "why did THIS solve do what it did?" with a replayable event log and
// a derived explainability report (see report.go).
//
// The recorder is nil-safe throughout: every method on a nil *Recorder
// is a no-op, so solver layers journal unconditionally and pay nothing
// when no recorder is attached. It travels on the context via
// WithRecorder/FromContext, mirroring obs.WithReporter, and is bounded:
// past MaxEvents the event slice stops growing and only the drop count
// and aggregates advance, so a runaway solve cannot exhaust memory.
package flight

import (
	"context"
	"sync"
)

// DefaultMaxEvents bounds a recorder whose caller did not choose a
// capacity. Large enough for every event of a B1..B27 solve, small
// enough that a server holding one journal per completed job stays
// cheap.
const DefaultMaxEvents = 4096

// Event kinds, one per decision family. The Kind string is the event's
// discriminator; which other fields are meaningful depends on it (see
// the Event field docs).
const (
	// KindStep1Probe is one feasibility probe of the Step-1 binary
	// search for ST_low: ST carries the probed target, Status the
	// verdict, Cause the certificate that decided it (greedy or milp).
	KindStep1Probe = "step1_probe"
	// KindProbe is one outer Algorithm-1 probe at a fixed ST_target:
	// Round is the 1-based outer iteration, Status the outcome
	// (feasible, infeasible, cpd_regressed, timeout, canceled, error),
	// Obj the resulting CPD when feasible.
	KindProbe = "probe"
	// KindRelax is one `ST_target += Δ` relaxation: ST is the new
	// target, F the delta applied, Cause the triggering probe status.
	KindRelax = "relax"
	// KindRotateScore is one scored rotation restart: Round is the
	// restart index, Obj the overlap score, N the cross-context arcs.
	KindRotateScore = "rotate_score"
	// KindRotate is the rotation winner: Round the winning restart,
	// Obj its score, N its cross-context arc count.
	KindRotate = "rotate"
	// KindRotateCtx is the orientation chosen for one context by the
	// winning restart: Ctx the context, Var the orientation index.
	KindRotateCtx = "rotate_ctx"
	// KindBatch is one assignment-MILP batch solve: Batch is the batch
	// index, N the movable ops, M the LP rows, Status the outcome
	// (solved, construction_infeasible, lp_infeasible, iterlimit,
	// dive_failed, timeout, canceled), Cause the constraint family
	// blamed when infeasible.
	KindBatch = "batch"
	// KindPremap is one bulk pre-map round of the rounding dive: Batch
	// and Round (dive restart) locate it, N counts variables pinned at
	// the rounding threshold, M the variables still fractional after.
	KindPremap = "premap"
	// KindDive is the end of one rounding-dive restart: Status is
	// integral or failed, N the pins placed, Round the restart index.
	KindDive = "dive"
	// KindWarmReject is a refused warm start: Cause is the reason
	// (dim_mismatch, stale_basis, singular).
	KindWarmReject = "warm_reject"
	// KindBranch is a B&B branching decision: Node, Depth, Var the
	// fractional variable branched on, F its fractional value.
	KindBranch = "branch"
	// KindIncumbent is a new B&B incumbent: Node, Depth, Obj.
	KindIncumbent = "incumbent"
	// KindPrune is a pruned B&B subtree: Node, Depth, Cause (bound,
	// infeasible, iterlimit, budget).
	KindPrune = "prune"
	// KindInfeasible attributes one failed probe to a constraint
	// family: Cause is stress-budget, path-delay, or assignment.
	KindInfeasible = "infeasible"
)

// Constraint families an infeasible probe can be attributed to.
const (
	FamilyStressBudget = "stress-budget"
	FamilyPathDelay    = "path-delay"
	FamilyAssignment   = "assignment"
)

// Additional row families used only by the kernel profiler's pivot
// attribution (they never block feasibility on their own, so the
// infeasibility diagnosis does not relax them).
const (
	FamilyCapacity = "capacity"
	FamilyWireAxis = "wire-axis"
)

// Event is one journaled decision. It is a flat value struct — no
// pointers, no interfaces — so recording is one slice append and the
// journal serializes deterministically. Fields beyond Seq/Kind are
// meaningful per kind (see the Kind* docs); unused ones stay zero.
type Event struct {
	Seq    int     `json:"seq"`
	Kind   string  `json:"kind"`
	ST     float64 `json:"st"`
	Obj    float64 `json:"obj"`
	F      float64 `json:"f"`
	Status string  `json:"status,omitempty"`
	Cause  string  `json:"cause,omitempty"`
	Round  int     `json:"round"`
	Batch  int     `json:"batch"`
	Ctx    int     `json:"ctx"`
	Node   int     `json:"node"`
	Depth  int     `json:"depth"`
	Var    int     `json:"var"`
	N      int     `json:"n"`
	M      int     `json:"m"`
}

// Aggregates are counters that keep advancing even after the event
// buffer is full, so the journal's totals stay truthful under drops.
type Aggregates struct {
	LPSolves         int64 `json:"lp_solves"`
	SimplexIters     int64 `json:"simplex_iters"`
	DegeneratePivots int64 `json:"degenerate_pivots"`
	Refactorizations int64 `json:"refactorizations"`
	WarmAccepts      int64 `json:"warm_accepts"`
	Nodes            int64 `json:"nodes"`
	// WarmRejects counts refused warm starts by reason (dim_mismatch,
	// stale_basis, singular).
	WarmRejects map[string]int64 `json:"warm_rejects,omitempty"`
	// InfeasibleFamilies counts infeasibility attributions by
	// constraint family; the report's digest derives its blocker from
	// this map.
	InfeasibleFamilies map[string]int64 `json:"infeasible_families,omitempty"`
	// EventCounts counts recorded events by kind, including dropped
	// ones, so "how many probes ran" never depends on the bound.
	EventCounts map[string]int64 `json:"event_counts,omitempty"`
}

// StressAttribution is the per-PE decomposition behind the report's
// heatmap: Total is each PE's accumulated stress under the final
// floorplan and Frozen the share contributed by frozen (carried-over)
// assignments, so Total-Frozen is what the re-mapping itself placed.
type StressAttribution struct {
	W      int         `json:"w"`
	H      int         `json:"h"`
	Total  [][]float64 `json:"total"`
	Frozen [][]float64 `json:"frozen"`
}

// Recorder journals events for one solve. Create with NewRecorder,
// attach to the solve's context with WithRecorder, then Snapshot after
// the solve returns. All methods are safe for concurrent use and are
// no-ops on a nil receiver.
type Recorder struct {
	mu      sync.Mutex
	max     int
	seq     int
	dropped int
	events  []Event
	agg     Aggregates
	stress  *StressAttribution

	// Kernel profiling state (see kernel.go); armed by EnableKernel,
	// populated by NoteKernel/NoteTree. Both stay nil when unarmed so
	// existing journals serialize unchanged.
	kernelOn   bool
	kernelRate int
	kernel     *Kernel
	tree       *TreeStats
}

// NewRecorder returns a recorder bounded to max events; max <= 0
// selects DefaultMaxEvents.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Recorder{max: max}
}

// Record journals one event, assigning its sequence number. Past the
// bound the event is counted (dropped, EventCounts) but not stored.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	r.seq++
	if r.agg.EventCounts == nil {
		r.agg.EventCounts = make(map[string]int64)
	}
	r.agg.EventCounts[e.Kind]++
	if len(r.events) < r.max {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
}

// NoteLP accumulates one LP solve's effort and numerical-health
// counters (degenerate pivots taken, basis refactorizations).
func (r *Recorder) NoteLP(iters, degenerate, refactorizations int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agg.LPSolves++
	r.agg.SimplexIters += int64(iters)
	r.agg.DegeneratePivots += int64(degenerate)
	r.agg.Refactorizations += int64(refactorizations)
}

// NoteWarm tallies one warm-start outcome; rejects also journal a
// warm_reject event carrying the reason.
func (r *Recorder) NoteWarm(accepted bool, reason string) {
	if r == nil {
		return
	}
	if accepted {
		r.mu.Lock()
		r.agg.WarmAccepts++
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	if r.agg.WarmRejects == nil {
		r.agg.WarmRejects = make(map[string]int64)
	}
	r.agg.WarmRejects[reason]++
	r.mu.Unlock()
	r.Record(Event{Kind: KindWarmReject, Cause: reason})
}

// NoteNodes adds processed branch-and-bound nodes to the aggregate.
func (r *Recorder) NoteNodes(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agg.Nodes += int64(n)
}

// NoteInfeasible attributes one failed probe to a constraint family
// and journals the attribution.
func (r *Recorder) NoteInfeasible(family string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.agg.InfeasibleFamilies == nil {
		r.agg.InfeasibleFamilies = make(map[string]int64)
	}
	r.agg.InfeasibleFamilies[family]++
	r.mu.Unlock()
	r.Record(Event{Kind: KindInfeasible, Cause: family})
}

// SetStress attaches the per-PE stress attribution computed from the
// final floorplan; the last call wins.
func (r *Recorder) SetStress(s *StressAttribution) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stress = s
}

// Snapshot copies the journal out of the recorder. The copy is deep
// for everything the recorder itself may still mutate, so callers can
// serialize it while the solve (or another snapshot) continues.
func (r *Recorder) Snapshot() *Journal {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	j := &Journal{
		Schema:     JournalSchema,
		MaxEvents:  r.max,
		Dropped:    r.dropped,
		Aggregates: r.agg,
		Stress:     r.stress,
		Kernel:     r.kernel.clone(),
		Tree:       r.tree.clone(),
		Events:     append([]Event(nil), r.events...),
	}
	j.Aggregates.WarmRejects = copyCounts(r.agg.WarmRejects)
	j.Aggregates.InfeasibleFamilies = copyCounts(r.agg.InfeasibleFamilies)
	j.Aggregates.EventCounts = copyCounts(r.agg.EventCounts)
	return j
}

func copyCounts(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ctxKey carries the recorder on a context; an unexported type so no
// other package can collide with it.
type ctxKey struct{}

// WithRecorder returns a context carrying r. Attaching a nil recorder
// is meaningful: it shadows any recorder further up, which the
// infeasibility-diagnosis LP solves use so their probing does not
// pollute the journal they are diagnosing for.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the context's recorder, or nil — safe on a nil
// context.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
