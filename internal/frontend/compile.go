package frontend

import (
	"fmt"
	"sort"

	"agingfp/internal/dfg"
)

// Unit assignment per operator: multiplies and shift networks execute on
// the slow DMU, additive and bitwise logic on the fast ALU (§III's PE
// characterization).
func unitOf(op string) dfg.OpKind {
	switch op {
	case "*", "<<", ">>":
		return dfg.DMU
	default:
		return dfg.ALU
	}
}

// CompileResult carries the generated DFG and the program's interface.
type CompileResult struct {
	Graph *dfg.Graph
	// Inputs are the identifiers read but never assigned, sorted.
	Inputs []string
	// Outputs are the identifiers assigned but never read, sorted.
	Outputs []string
	// OpOf maps each assigned name to the op producing its value, or -1
	// for pass-through definitions (e.g. y = x; or y = 5;).
	OpOf map[string]int
}

// value is the compile-time binding of an expression: either a DFG op
// (producer >= 0) or a leaf (input variable / constant) with no op.
type value struct {
	producer int
}

// Compile translates a parsed program into a data-flow graph.
//
// Semantics:
//   - each binary operation becomes one typed DFG op;
//   - operands that are computed values contribute data edges;
//   - operands that are primary inputs or constants contribute no edge
//     (they arrive through the PE's input network / configuration);
//   - reassigning a name shadows the previous value (SSA-style renaming
//     happens implicitly: earlier consumers keep their producer).
func Compile(prog *Program) (*CompileResult, error) {
	g := &dfg.Graph{}
	env := map[string]value{}     // current binding of each assigned name
	declared := map[string]bool{} // every assignment target in the program
	read := map[string]bool{}     // assigned names read after assignment
	inputs := map[string]bool{}   // free identifiers
	for _, st := range prog.Stmts {
		declared[st.Name] = true
	}

	var genExpr func(e Expr) (value, error)
	genExpr = func(e Expr) (value, error) {
		switch n := e.(type) {
		case *ConstRef:
			return value{producer: -1}, nil
		case *VarRef:
			if v, ok := env[n.Name]; ok {
				read[n.Name] = true
				return v, nil
			}
			if declared[n.Name] {
				// Assigned later in the program but not yet here.
				line, col := n.Pos()
				return value{}, errAt(line, col, "use of %q before assignment", n.Name)
			}
			inputs[n.Name] = true
			return value{producer: -1}, nil
		case *BinOp:
			left, err := genExpr(n.Left)
			if err != nil {
				return value{}, err
			}
			right, err := genExpr(n.Right)
			if err != nil {
				return value{}, err
			}
			id := g.AddOp(unitOf(n.Op), opName(n.Op))
			if left.producer >= 0 {
				g.AddEdge(left.producer, id)
			}
			if right.producer >= 0 && right.producer != left.producer {
				g.AddEdge(right.producer, id)
			}
			return value{producer: id}, nil
		default:
			return value{}, fmt.Errorf("frontend: unknown expression node %T", e)
		}
	}

	for _, st := range prog.Stmts {
		v, err := genExpr(st.Value)
		if err != nil {
			return nil, err
		}
		env[st.Name] = v
		delete(read, st.Name) // re-assignment revives output candidacy
	}

	res := &CompileResult{Graph: g, OpOf: map[string]int{}}
	for name, v := range env {
		res.OpOf[name] = v.producer
	}
	for name := range inputs {
		res.Inputs = append(res.Inputs, name)
	}
	for name := range declared {
		if !read[name] {
			res.Outputs = append(res.Outputs, name)
		}
	}
	sort.Strings(res.Inputs)
	sort.Strings(res.Outputs)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("frontend: generated graph invalid: %w", err)
	}
	return res, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*CompileResult, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}

func opName(op string) string {
	switch op {
	case "+":
		return "add"
	case "-":
		return "sub"
	case "*":
		return "mul"
	case "<<":
		return "shl"
	case ">>":
		return "shr"
	case "&":
		return "and"
	case "|":
		return "or"
	case "^":
		return "xor"
	default:
		return op
	}
}
