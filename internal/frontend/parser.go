package frontend

import "fmt"

// AST node kinds.

// Expr is an expression tree node.
type Expr interface {
	exprNode()
	// Pos returns the source position.
	Pos() (line, col int)
}

// VarRef references a named value (a previously assigned variable or a
// primary input).
type VarRef struct {
	Name      string
	line, col int
}

// ConstRef is an integer literal. Constants are free at runtime (they
// are baked into PE configurations) and generate no DFG operation.
type ConstRef struct {
	Text      string
	line, col int
}

// BinOp is a binary operation.
type BinOp struct {
	Op          string // "+", "-", "*", "<<", ">>", "&", "|", "^"
	Left, Right Expr
	line, col   int
}

func (v *VarRef) exprNode()   {}
func (c *ConstRef) exprNode() {}
func (b *BinOp) exprNode()    {}

// Pos implements Expr.
func (v *VarRef) Pos() (int, int)   { return v.line, v.col }
func (c *ConstRef) Pos() (int, int) { return c.line, c.col }
func (b *BinOp) Pos() (int, int)    { return b.line, b.col }

// Assign is one statement: name = expr ;
type Assign struct {
	Name      string
	Value     Expr
	line, col int
}

// Program is a parsed behavioral description.
type Program struct {
	Stmts []*Assign
}

// parser is a recursive-descent parser with C-like precedence:
//
//	or:    |            (lowest)
//	xor:   ^
//	and:   &
//	shift: << >>
//	add:   + -
//	mul:   *            (highest binary)
//	unary: ( ) ident number
type parser struct {
	toks []token
	at   int
}

func (p *parser) peek() token { return p.toks[p.at] }
func (p *parser) next() token { t := p.toks[p.at]; p.at++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, errAt(t.line, t.col, "expected %v, found %v %q", k, t.kind, t.text)
	}
	return p.next(), nil
}

// Parse parses a behavioral description into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("frontend: empty program (%s)", describeSource(src))
	}
	return prog, nil
}

func (p *parser) statement() (*Assign, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	value, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &Assign{Name: name.text, Value: value, line: name.line, col: name.col}, nil
}

// binLevel builds a left-associative binary level.
func (p *parser) binLevel(ops map[tokKind]string, sub func() (Expr, error)) (Expr, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		opText, ok := ops[t.kind]
		if !ok {
			return left, nil
		}
		p.next()
		right, err := sub()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: opText, Left: left, Right: right, line: t.line, col: t.col}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokOr: "|"}, p.parseXor)
}
func (p *parser) parseXor() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokXor: "^"}, p.parseAnd)
}
func (p *parser) parseAnd() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokAnd: "&"}, p.parseShift)
}
func (p *parser) parseShift() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokShl: "<<", tokShr: ">>"}, p.parseAdd)
}
func (p *parser) parseAdd() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokPlus: "+", tokMinus: "-"}, p.parseMul)
}
func (p *parser) parseMul() (Expr, error) {
	return p.binLevel(map[tokKind]string{tokStar: "*"}, p.parseUnary)
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		return &VarRef{Name: t.text, line: t.line, col: t.col}, nil
	case tokNumber:
		p.next()
		return &ConstRef{Text: t.text, line: t.line, col: t.col}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(t.line, t.col, "expected expression, found %v %q", t.kind, t.text)
	}
}
