package frontend

import (
	"fmt"
	"strings"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
)

func compileOK(t *testing.T, src string) *CompileResult {
	t.Helper()
	r, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r
}

func TestSimpleAssignment(t *testing.T) {
	r := compileOK(t, "y = a + b;")
	if r.Graph.NumOps() != 1 {
		t.Fatalf("%d ops, want 1", r.Graph.NumOps())
	}
	if r.Graph.Ops[0].Kind != dfg.ALU {
		t.Fatalf("add on %v, want ALU", r.Graph.Ops[0].Kind)
	}
	if len(r.Inputs) != 2 || r.Inputs[0] != "a" || r.Inputs[1] != "b" {
		t.Fatalf("inputs %v", r.Inputs)
	}
	if len(r.Outputs) != 1 || r.Outputs[0] != "y" {
		t.Fatalf("outputs %v", r.Outputs)
	}
}

func TestUnitAssignment(t *testing.T) {
	cases := map[string]dfg.OpKind{
		"y = a * b;":  dfg.DMU,
		"y = a << b;": dfg.DMU,
		"y = a >> b;": dfg.DMU,
		"y = a + b;":  dfg.ALU,
		"y = a - b;":  dfg.ALU,
		"y = a & b;":  dfg.ALU,
		"y = a | b;":  dfg.ALU,
		"y = a ^ b;":  dfg.ALU,
	}
	for src, want := range cases {
		r := compileOK(t, src)
		if r.Graph.Ops[0].Kind != want {
			t.Errorf("%s: kind %v, want %v", src, r.Graph.Ops[0].Kind, want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// a + b * c: the multiply feeds the add.
	r := compileOK(t, "y = a + b * c;")
	if r.Graph.NumOps() != 2 {
		t.Fatalf("%d ops", r.Graph.NumOps())
	}
	mul, add := -1, -1
	for _, op := range r.Graph.Ops {
		if op.Name == "mul" {
			mul = op.ID
		}
		if op.Name == "add" {
			add = op.ID
		}
	}
	if mul < 0 || add < 0 {
		t.Fatal("ops missing")
	}
	if got := r.Graph.Succs(mul); len(got) != 1 || got[0] != add {
		t.Fatalf("mul feeds %v, want add", got)
	}
	// (a + b) * c flips the dependency.
	r2 := compileOK(t, "y = (a + b) * c;")
	var m2, a2 int
	for _, op := range r2.Graph.Ops {
		if op.Name == "mul" {
			m2 = op.ID
		}
		if op.Name == "add" {
			a2 = op.ID
		}
	}
	if got := r2.Graph.Succs(a2); len(got) != 1 || got[0] != m2 {
		t.Fatalf("add feeds %v, want mul", got)
	}
}

func TestPrecedenceLevels(t *testing.T) {
	// | lowest, then ^, &, shifts, +, * highest.
	r := compileOK(t, "y = a | b ^ c & d << e + f * g;")
	// The root (output op) must be the OR.
	outs := r.Graph.Outputs()
	if len(outs) != 1 || r.Graph.Ops[outs[0]].Name != "or" {
		t.Fatalf("root op %v", r.Graph.Ops[outs[0]].Name)
	}
}

func TestChainedDependencies(t *testing.T) {
	src := `
		t0 = a * b;
		t1 = t0 + c;
		t2 = t1 + t0;
		out = t2 * d;
	`
	r := compileOK(t, src)
	if r.Graph.NumOps() != 4 {
		t.Fatalf("%d ops, want 4", r.Graph.NumOps())
	}
	levels, depth := r.Graph.Levels()
	if depth != 4 {
		t.Fatalf("depth %d, want 4 (serial chain)", depth)
	}
	_ = levels
	if len(r.Outputs) != 1 || r.Outputs[0] != "out" {
		t.Fatalf("outputs %v", r.Outputs)
	}
}

func TestConstantsGenerateNoEdges(t *testing.T) {
	r := compileOK(t, "y = a * 3 + 1;")
	if r.Graph.NumOps() != 2 {
		t.Fatalf("%d ops", r.Graph.NumOps())
	}
	if len(r.Graph.Edges) != 1 {
		t.Fatalf("%d edges, want 1 (constants are free)", len(r.Graph.Edges))
	}
}

func TestPassThroughAssignment(t *testing.T) {
	r := compileOK(t, "y = x; z = y + 1;")
	if r.OpOf["y"] != -1 {
		t.Fatalf("pass-through produced op %d", r.OpOf["y"])
	}
	if len(r.Outputs) != 1 || r.Outputs[0] != "z" {
		t.Fatalf("outputs %v", r.Outputs)
	}
}

func TestReassignmentShadows(t *testing.T) {
	src := `
		acc = a * b;
		acc = acc + c;
		out = acc + d;
	`
	r := compileOK(t, src)
	if r.Graph.NumOps() != 3 {
		t.Fatalf("%d ops", r.Graph.NumOps())
	}
	if len(r.Outputs) != 1 || r.Outputs[0] != "out" {
		t.Fatalf("outputs %v (acc must not be an output)", r.Outputs)
	}
}

func TestForwardReferenceRejected(t *testing.T) {
	_, err := CompileSource("y = z + 1; z = a * b;")
	if err == nil {
		t.Fatal("forward reference accepted")
	}
	if se, ok := err.(*SyntaxError); !ok || se.Line != 1 {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"",
		"y = ;",
		"y = a +;",
		"= a + b;",
		"y = (a + b;",
		"y = a $ b;",
		"y = a + b",
		"/* unterminated",
	}
	for _, src := range cases {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
		// line comment
		y = a + b; /* block
		            comment */ z = y * c;
	`
	r := compileOK(t, src)
	if r.Graph.NumOps() != 2 {
		t.Fatalf("%d ops", r.Graph.NumOps())
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := CompileSource("y = a + b;\nz = a $ b;")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("not a SyntaxError: %v", err)
	}
	if se.Line != 2 {
		t.Fatalf("error at line %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "2:") {
		t.Fatalf("message lacks position: %s", se.Error())
	}
}

// TestEndToEndScheduling compiles a small dot-product and pushes it
// through HLS to a valid design.
func TestEndToEndScheduling(t *testing.T) {
	src := `
		p0 = x0 * c0;
		p1 = x1 * c1;
		p2 = x2 * c2;
		p3 = x3 * c3;
		s0 = p0 + p1;
		s1 = p2 + p3;
		out = s0 + s1;
	`
	r := compileOK(t, src)
	d, err := hls.BuildDesign("dot4", r.Graph, arch.Fabric{W: 4, H: 4}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumContexts < 2 {
		t.Fatalf("%d contexts; multiplies and adds cannot chain fully", d.NumContexts)
	}
}

func TestFIREquivalence(t *testing.T) {
	// The textual FIR matches the programmatic dfg.FIR shape.
	var b strings.Builder
	for i := 0; i < 8; i++ {
		b.WriteString(sprintfLine("p%d = x%d * c%d;", i, i, i))
	}
	b.WriteString("s0 = p0 + p1; s1 = p2 + p3; s2 = p4 + p5; s3 = p6 + p7;")
	b.WriteString("t0 = s0 + s1; t1 = s2 + s3; out = t0 + t1;")
	r := compileOK(t, b.String())
	want := dfg.FIR(8).Stat()
	got := r.Graph.Stat()
	if got.DMUOps != want.DMUOps || got.ALUOps != want.ALUOps || got.Depth != want.Depth {
		t.Fatalf("shape mismatch: got %+v want %+v", got, want)
	}
}

func sprintfLine(format string, args ...interface{}) string {
	return strings.TrimSpace(fmt.Sprintf(format, args...)) + "\n"
}
