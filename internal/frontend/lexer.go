// Package frontend compiles a small C-like behavioral language into the
// data-flow graphs consumed by the HLS flow — the role the paper's
// "behavioral description for HLS" input plays (§IV: "The input to this
// flow is a behavioral description").
//
// The language is a sequence of assignments over integer expressions:
//
//	// 4-tap FIR
//	acc0 = x0 * c0;
//	acc1 = x1 * c1;
//	sum0 = acc0 + acc1;
//	out  = sum0 + x2 * c2 + x3 * c3;
//
// Operators: + - (ALU), * << >> (DMU), & | ^ (ALU), with C precedence
// and parentheses. Identifiers never assigned are primary inputs;
// assigned-but-never-read values are primary outputs. Each binary
// operation becomes one DFG operation typed by the unit that executes it.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokAssign // =
	tokSemi   // ;
	tokLParen
	tokRParen
	tokPlus
	tokMinus
	tokStar
	tokShl // <<
	tokShr // >>
	tokAnd // &
	tokOr  // |
	tokXor // ^
	tokEOF
)

func (k tokKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokAssign:
		return "'='"
	case tokSemi:
		return "';'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokShl:
		return "'<<'"
	case tokShr:
		return "'>>'"
	case tokAnd:
		return "'&'"
	case tokOr:
		return "'|'"
	case tokXor:
		return "'^'"
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("tokKind(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("frontend: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			start := [2]int{line, col}
			advance(2)
			for {
				if i+1 >= n {
					return nil, errAt(start[0], start[1], "unterminated block comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			sl, sc := line, col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], sl, sc})
		case unicode.IsDigit(rune(c)):
			start := i
			sl, sc := line, col
			for i < n && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{tokNumber, src[start:i], sl, sc})
		default:
			sl, sc := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case two == "<<":
				toks = append(toks, token{tokShl, two, sl, sc})
				advance(2)
			case two == ">>":
				toks = append(toks, token{tokShr, two, sl, sc})
				advance(2)
			default:
				var k tokKind
				switch c {
				case '=':
					k = tokAssign
				case ';':
					k = tokSemi
				case '(':
					k = tokLParen
				case ')':
					k = tokRParen
				case '+':
					k = tokPlus
				case '-':
					k = tokMinus
				case '*':
					k = tokStar
				case '&':
					k = tokAnd
				case '|':
					k = tokOr
				case '^':
					k = tokXor
				default:
					return nil, errAt(sl, sc, "unexpected character %q", string(rune(c)))
				}
				toks = append(toks, token{k, string(c), sl, sc})
				advance(1)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

// describeSource returns a one-line summary for diagnostics.
func describeSource(src string) string {
	lines := strings.Count(src, "\n") + 1
	return fmt.Sprintf("%d lines, %d bytes", lines, len(src))
}
