// Package thermal provides a compact steady-state thermal model of the
// CGRRA fabric, standing in for the HotSpot simulator used by the paper.
//
// The fabric is modelled as a grid of thermal nodes, one per PE. Each
// node dissipates power proportional to its NBTI stress rate (a PE's
// switching activity and its stress duty cycle are both set by the
// operation it executes), conducts heat laterally to its four grid
// neighbours through a lateral resistance Rl, and convects vertically to
// ambient through Rv (package + heat-sink path). Steady state satisfies,
// for every cell:
//
//	(T - Tamb)/Rv + sum_n (T - Tn)/Rl = P
//
// which the solver relaxes with Gauss-Seidel/SOR iterations. The model
// reproduces the property the MTTF computation depends on: temperature
// increases monotonically with local power and with the power of
// neighbours, so levelling stress also levels and lowers the hot spots.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Config calibrates the compact model.
type Config struct {
	// AmbientK is the ambient (heat sink) temperature in kelvin.
	AmbientK float64
	// RVertical is the vertical (convection) thermal resistance per
	// cell, K/W.
	RVertical float64
	// RLateral is the lateral conduction resistance between adjacent
	// cells, K/W.
	RLateral float64
	// PowerPerStress converts a PE's accumulated stress rate into watts.
	PowerPerStress float64
	// LeakageW is a constant background power per PE.
	LeakageW float64
	// Tol is the convergence tolerance on the max temperature update per
	// sweep, in kelvin.
	Tol float64
	// MaxIter bounds the SOR sweeps.
	MaxIter int
	// Omega is the SOR over-relaxation factor in (0,2); 0 selects the
	// default.
	Omega float64
}

// DefaultConfig returns a calibration giving HotSpot-like magnitudes on
// CGRRA workloads: ambient 318 K and a spread of roughly 5-20 K between
// an idle and a fully-stressed PE. The moderate spread matters: the NBTI
// exponent 1/n amplifies temperature deltas by the 4th power, and the
// paper's MTTF gains (1.2x-3.9x) constrain how much of the gain can come
// from temperature.
func DefaultConfig() Config {
	return Config{
		AmbientK:       318.0,
		RVertical:      9.0,
		RLateral:       4.0,
		PowerPerStress: 0.8,
		LeakageW:       0.05,
		Tol:            1e-7,
		MaxIter:        20000,
		Omega:          1.7,
	}
}

// Solve computes the steady-state temperature map for the given per-cell
// power map (watts), in kelvin. The power grid must be rectangular and
// non-empty.
func Solve(power [][]float64, cfg Config) ([][]float64, error) {
	h := len(power)
	if h == 0 {
		return nil, errors.New("thermal: empty power map")
	}
	w := len(power[0])
	for y, row := range power {
		if len(row) != w {
			return nil, fmt.Errorf("thermal: ragged power map: row %d has %d cells, want %d", y, len(row), w)
		}
		for x, p := range row {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("thermal: invalid power %g at (%d,%d)", p, x, y)
			}
		}
	}
	if cfg.RVertical <= 0 || cfg.RLateral <= 0 {
		return nil, fmt.Errorf("thermal: non-positive resistances (Rv=%g, Rl=%g)", cfg.RVertical, cfg.RLateral)
	}
	omega := cfg.Omega
	if omega == 0 {
		omega = 1.5
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("thermal: SOR omega %g out of (0,2)", omega)
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 20000
	}

	t := make([][]float64, h)
	for y := range t {
		t[y] = make([]float64, w)
		for x := range t[y] {
			t[y][x] = cfg.AmbientK
		}
	}
	gv := 1 / cfg.RVertical
	gl := 1 / cfg.RLateral

	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				num := power[y][x] + cfg.AmbientK*gv
				den := gv
				if x > 0 {
					num += t[y][x-1] * gl
					den += gl
				}
				if x < w-1 {
					num += t[y][x+1] * gl
					den += gl
				}
				if y > 0 {
					num += t[y-1][x] * gl
					den += gl
				}
				if y < h-1 {
					num += t[y+1][x] * gl
					den += gl
				}
				next := num / den
				upd := t[y][x] + omega*(next-t[y][x])
				if d := math.Abs(upd - t[y][x]); d > maxDelta {
					maxDelta = d
				}
				t[y][x] = upd
			}
		}
		if maxDelta < tol {
			return t, nil
		}
	}
	return nil, fmt.Errorf("thermal: SOR did not converge in %d iterations", maxIter)
}

// PowerFromStress converts a per-PE accumulated-stress map (summed stress
// rates over contexts) into a power map, normalizing by the number of
// contexts so that power reflects time-averaged activity.
func PowerFromStress(stress [][]float64, numContexts int, cfg Config) [][]float64 {
	p := make([][]float64, len(stress))
	inv := 1.0
	if numContexts > 0 {
		inv = 1.0 / float64(numContexts)
	}
	for y, row := range stress {
		p[y] = make([]float64, len(row))
		for x, s := range row {
			p[y][x] = cfg.LeakageW + cfg.PowerPerStress*s*inv
		}
	}
	return p
}

// MaxK returns the maximum temperature of a map.
func MaxK(t [][]float64) float64 {
	m := math.Inf(-1)
	for _, row := range t {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// At is a bounds-checked accessor used by reporting code.
func At(t [][]float64, x, y int) float64 { return t[y][x] }
