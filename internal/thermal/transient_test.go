package thermal

import (
	"math"
	"testing"
)

func TestTransientStartsAtAmbient(t *testing.T) {
	cfg := DefaultTransientConfig()
	st, err := NewTransient(4, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range st.Temp() {
		for _, v := range row {
			if v != cfg.AmbientK {
				t.Fatalf("initial temp %g", v)
			}
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	cfg := DefaultTransientConfig()
	p := uniformPower(5, 5, 0)
	p[2][2] = 1.5
	steady, err := Solve(p, cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewTransient(5, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate for many time constants.
	tau := cfg.CapacityJPerK * cfg.RVertical
	if err := st.Step(p, 30*tau); err != nil {
		t.Fatal(err)
	}
	for y := range steady {
		for x := range steady[y] {
			if d := math.Abs(st.Temp()[y][x] - steady[y][x]); d > 0.05 {
				t.Fatalf("(%d,%d): transient %g vs steady %g", x, y, st.Temp()[y][x], steady[y][x])
			}
		}
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	cfg := DefaultTransientConfig()
	p := uniformPower(3, 3, 1.0)
	st, _ := NewTransient(3, 3, cfg)
	prev := cfg.AmbientK
	tau := cfg.CapacityJPerK * cfg.RVertical
	for i := 0; i < 8; i++ {
		if err := st.Step(p, tau/2); err != nil {
			t.Fatal(err)
		}
		now := st.Temp()[1][1]
		if now < prev-1e-9 {
			t.Fatalf("temperature dropped under constant heating: %g -> %g", prev, now)
		}
		prev = now
	}
}

func TestTransientCoolsAfterPowerOff(t *testing.T) {
	cfg := DefaultTransientConfig()
	hot := uniformPower(3, 3, 2.0)
	off := uniformPower(3, 3, 0)
	st, _ := NewTransient(3, 3, cfg)
	tau := cfg.CapacityJPerK * cfg.RVertical
	if err := st.Step(hot, 20*tau); err != nil {
		t.Fatal(err)
	}
	peak := st.Temp()[1][1]
	if err := st.Step(off, 20*tau); err != nil {
		t.Fatal(err)
	}
	cooled := st.Temp()[1][1]
	if cooled >= peak {
		t.Fatalf("no cooling: %g -> %g", peak, cooled)
	}
	if math.Abs(cooled-cfg.AmbientK) > 0.05 {
		t.Fatalf("did not return to ambient: %g", cooled)
	}
}

func TestSettleTime(t *testing.T) {
	cfg := DefaultTransientConfig()
	p := uniformPower(4, 4, 1.0)
	secs, final, err := SettleTime(p, cfg, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("zero settle time")
	}
	// The fabric's thermal time constant is milliseconds — vastly longer
	// than the 5 ns context period, which justifies using time-averaged
	// power for the MTTF model (see package comment).
	if secs < 1e-4 || secs > 1 {
		t.Fatalf("settle time %g s outside the millisecond regime", secs)
	}
	if MaxK(final) <= cfg.AmbientK {
		t.Fatal("settled map not above ambient")
	}
}

func TestTransientValidation(t *testing.T) {
	cfg := DefaultTransientConfig()
	if _, err := NewTransient(0, 3, cfg); err == nil {
		t.Fatal("empty fabric accepted")
	}
	bad := cfg
	bad.CapacityJPerK = 0
	if _, err := NewTransient(3, 3, bad); err == nil {
		t.Fatal("zero capacity accepted")
	}
	tooBig := cfg
	tooBig.DtSeconds = 1
	if _, err := NewTransient(3, 3, tooBig); err == nil {
		t.Fatal("unstable dt accepted")
	}
	st, _ := NewTransient(3, 3, cfg)
	if err := st.Step(uniformPower(2, 2, 0), 0.01); err == nil {
		t.Fatal("mismatched power map accepted")
	}
	if err := st.Step(uniformPower(3, 3, 0), -1); err == nil {
		t.Fatal("negative duration accepted")
	}
}
