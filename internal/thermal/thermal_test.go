package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformPower(w, h int, p float64) [][]float64 {
	out := make([][]float64, h)
	for y := range out {
		out[y] = make([]float64, w)
		for x := range out[y] {
			out[y][x] = p
		}
	}
	return out
}

func TestZeroPowerIsAmbient(t *testing.T) {
	cfg := DefaultConfig()
	tm, err := Solve(uniformPower(6, 6, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tm {
		for _, v := range row {
			if math.Abs(v-cfg.AmbientK) > 1e-4 {
				t.Fatalf("idle fabric at %g K, want ambient %g", v, cfg.AmbientK)
			}
		}
	}
}

func TestUniformPowerUniformTemp(t *testing.T) {
	cfg := DefaultConfig()
	tm, err := Solve(uniformPower(5, 5, 1.0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With uniform power there is no lateral flow: T = Tamb + P*Rv.
	want := cfg.AmbientK + 1.0*cfg.RVertical
	for _, row := range tm {
		for _, v := range row {
			if math.Abs(v-want) > 1e-3 {
				t.Fatalf("uniform fabric at %g K, want %g", v, want)
			}
		}
	}
}

func TestHotspotPeaksAtSource(t *testing.T) {
	cfg := DefaultConfig()
	p := uniformPower(7, 7, 0)
	p[3][3] = 2.0
	tm, err := Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak := tm[3][3]
	for y, row := range tm {
		for x, v := range row {
			if v > peak+1e-9 {
				t.Fatalf("temp at (%d,%d)=%g exceeds source %g", x, y, v, peak)
			}
		}
	}
	if peak <= cfg.AmbientK {
		t.Fatalf("hotspot not above ambient")
	}
	// Symmetry: the four orthogonal neighbours of the center are equal.
	if math.Abs(tm[3][2]-tm[3][4]) > 1e-6 || math.Abs(tm[2][3]-tm[4][3]) > 1e-6 ||
		math.Abs(tm[3][2]-tm[2][3]) > 1e-6 {
		t.Fatalf("asymmetric response around a centered source")
	}
}

func TestMonotoneInPower(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		w, h := 4+rng.Intn(4), 4+rng.Intn(4)
		p1 := make([][]float64, h)
		p2 := make([][]float64, h)
		for y := 0; y < h; y++ {
			p1[y] = make([]float64, w)
			p2[y] = make([]float64, w)
			for x := 0; x < w; x++ {
				p1[y][x] = rng.Float64()
				p2[y][x] = p1[y][x] + rng.Float64()*0.5 // p2 >= p1 everywhere
			}
		}
		t1, err1 := Solve(p1, cfg)
		t2, err2 := Solve(p2, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if t2[y][x] < t1[y][x]-1e-6 {
					t.Logf("seed %d: non-monotone at (%d,%d)", seed, x, y)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBalance(t *testing.T) {
	// Total power in == total vertical heat out at steady state.
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	p := make([][]float64, 6)
	total := 0.0
	for y := range p {
		p[y] = make([]float64, 6)
		for x := range p[y] {
			p[y][x] = rng.Float64() * 2
			total += p[y][x]
		}
	}
	cfg.Tol = 1e-10
	tm, err := Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := 0.0
	for _, row := range tm {
		for _, v := range row {
			out += (v - cfg.AmbientK) / cfg.RVertical
		}
	}
	if math.Abs(out-total) > 1e-4*total {
		t.Fatalf("energy imbalance: in %g, out %g", total, out)
	}
}

func TestSolveValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Solve(nil, cfg); err == nil {
		t.Fatal("empty map accepted")
	}
	if _, err := Solve([][]float64{{1, 2}, {3}}, cfg); err == nil {
		t.Fatal("ragged map accepted")
	}
	if _, err := Solve([][]float64{{-1}}, cfg); err == nil {
		t.Fatal("negative power accepted")
	}
	bad := cfg
	bad.RVertical = 0
	if _, err := Solve(uniformPower(2, 2, 1), bad); err == nil {
		t.Fatal("zero resistance accepted")
	}
	bad2 := cfg
	bad2.Omega = 2.5
	if _, err := Solve(uniformPower(2, 2, 1), bad2); err == nil {
		t.Fatal("invalid omega accepted")
	}
}

func TestPowerFromStress(t *testing.T) {
	cfg := DefaultConfig()
	stress := [][]float64{{0, 4}, {2, 0}}
	p := PowerFromStress(stress, 4, cfg)
	if math.Abs(p[0][0]-cfg.LeakageW) > 1e-12 {
		t.Fatalf("idle PE power %g, want leakage %g", p[0][0], cfg.LeakageW)
	}
	want := cfg.LeakageW + cfg.PowerPerStress*1.0 // 4 stress / 4 contexts
	if math.Abs(p[0][1]-want) > 1e-12 {
		t.Fatalf("power %g, want %g", p[0][1], want)
	}
}

func TestMaxK(t *testing.T) {
	if MaxK([][]float64{{1, 5}, {3, 2}}) != 5 {
		t.Fatal("MaxK wrong")
	}
	if At([][]float64{{1, 5}}, 1, 0) != 5 {
		t.Fatal("At wrong")
	}
}

func TestCalibratedSpread(t *testing.T) {
	// DESIGN.md: a fully-stressed PE should sit roughly 5-20 K above an
	// idle one under the default calibration, keeping the temperature
	// contribution to MTTF in the paper's plausible range.
	cfg := DefaultConfig()
	p := uniformPower(8, 8, 0)
	for y := range p {
		for x := range p[y] {
			p[y][x] = cfg.LeakageW
		}
	}
	p[0][0] += cfg.PowerPerStress * 0.8 // one PE at ~max realistic duty
	tm, err := Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spread := tm[0][0] - tm[7][7]
	if spread < 1 || spread > 25 {
		t.Fatalf("single-PE spread %g K outside calibrated band [1,25]", spread)
	}
	// A packed 4x4 stressed corner — the aging-unaware floorplan's shape
	// — must heat collectively into the HotSpot-like 5-20 K range.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			p[y][x] = cfg.LeakageW + cfg.PowerPerStress*0.8
		}
	}
	tm2, err := Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corner := tm2[0][0] - tm2[7][7]
	if corner < 3 || corner > 30 {
		t.Fatalf("packed-corner spread %g K outside [3,30]", corner)
	}
}
