package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Transient simulation: HotSpot's second operating mode. Each thermal
// node gets a heat capacity; temperatures then evolve as
//
//	C dT/dt = P - (T - Tamb)/Rv - sum_n (T - Tn)/Rl
//
// integrated with forward Euler under a stability-bounded step. The
// re-mapping flow itself only needs steady state (context switching at
// 5 ns is far below the fabric's thermal time constant, so per-context
// power averages out), but the transient solver verifies that
// assumption and supports duty-cycled workload studies.

// TransientConfig extends Config with dynamics.
type TransientConfig struct {
	Config
	// CapacityJPerK is the per-node heat capacity (joules per kelvin).
	CapacityJPerK float64
	// DtSeconds is the integration step; 0 picks a stable default.
	DtSeconds float64
}

// DefaultTransientConfig returns dynamics giving a time constant
// tau = C * R of a few milliseconds, typical for silicon at PE-block
// granularity.
func DefaultTransientConfig() TransientConfig {
	return TransientConfig{
		Config:        DefaultConfig(),
		CapacityJPerK: 5e-4,
	}
}

// stableDt returns a forward-Euler-stable step for the configuration:
// dt < C / G_total with margin.
func (tc TransientConfig) stableDt() float64 {
	g := 1/tc.RVertical + 4/tc.RLateral
	return 0.25 * tc.CapacityJPerK / g
}

// TransientState is an evolving thermal simulation.
type TransientState struct {
	cfg  TransientConfig
	temp [][]float64
	w, h int
	dt   float64
	// ElapsedS is the simulated time.
	ElapsedS float64
}

// NewTransient creates a simulation starting at ambient.
func NewTransient(w, h int, cfg TransientConfig) (*TransientState, error) {
	if w < 1 || h < 1 {
		return nil, errors.New("thermal: empty fabric")
	}
	if cfg.RVertical <= 0 || cfg.RLateral <= 0 || cfg.CapacityJPerK <= 0 {
		return nil, fmt.Errorf("thermal: invalid transient config %+v", cfg)
	}
	dt := cfg.DtSeconds
	if dt <= 0 {
		dt = cfg.stableDt()
	}
	if dt > cfg.stableDt() {
		return nil, fmt.Errorf("thermal: dt %g exceeds stability bound %g", dt, cfg.stableDt())
	}
	st := &TransientState{cfg: cfg, w: w, h: h, dt: dt}
	st.temp = make([][]float64, h)
	for y := range st.temp {
		st.temp[y] = make([]float64, w)
		for x := range st.temp[y] {
			st.temp[y][x] = cfg.AmbientK
		}
	}
	return st, nil
}

// Temp returns the current temperature map (live storage; copy before
// mutating).
func (s *TransientState) Temp() [][]float64 { return s.temp }

// Step advances the simulation by duration seconds under the given power
// map.
func (s *TransientState) Step(power [][]float64, duration float64) error {
	if len(power) != s.h || len(power[0]) != s.w {
		return fmt.Errorf("thermal: power map %dx%d, want %dx%d", len(power[0]), len(power), s.w, s.h)
	}
	if duration < 0 {
		return errors.New("thermal: negative duration")
	}
	gv := 1 / s.cfg.RVertical
	gl := 1 / s.cfg.RLateral
	invC := 1 / s.cfg.CapacityJPerK
	next := make([][]float64, s.h)
	for y := range next {
		next[y] = make([]float64, s.w)
	}
	steps := int(math.Ceil(duration / s.dt))
	for k := 0; k < steps; k++ {
		dt := s.dt
		if rem := duration - float64(k)*s.dt; rem < dt {
			dt = rem
		}
		for y := 0; y < s.h; y++ {
			for x := 0; x < s.w; x++ {
				t := s.temp[y][x]
				flux := power[y][x] - (t-s.cfg.AmbientK)*gv
				if x > 0 {
					flux -= (t - s.temp[y][x-1]) * gl
				}
				if x < s.w-1 {
					flux -= (t - s.temp[y][x+1]) * gl
				}
				if y > 0 {
					flux -= (t - s.temp[y-1][x]) * gl
				}
				if y < s.h-1 {
					flux -= (t - s.temp[y+1][x]) * gl
				}
				next[y][x] = t + dt*flux*invC
			}
		}
		s.temp, next = next, s.temp
	}
	s.ElapsedS += duration
	return nil
}

// SettleTime estimates how long the fabric takes to come within tol
// kelvin of steady state under constant power, by simulating until the
// largest per-step drift falls below tol per time constant. Returns the
// simulated time and the final map.
func SettleTime(power [][]float64, cfg TransientConfig, tol float64, maxSeconds float64) (float64, [][]float64, error) {
	h := len(power)
	if h == 0 {
		return 0, nil, errors.New("thermal: empty power map")
	}
	w := len(power[0])
	st, err := NewTransient(w, h, cfg)
	if err != nil {
		return 0, nil, err
	}
	steady, err := Solve(power, cfg.Config)
	if err != nil {
		return 0, nil, err
	}
	chunk := cfg.stableDt() * 50
	for st.ElapsedS < maxSeconds {
		if err := st.Step(power, chunk); err != nil {
			return 0, nil, err
		}
		worst := 0.0
		for y := range steady {
			for x := range steady[y] {
				if d := math.Abs(st.temp[y][x] - steady[y][x]); d > worst {
					worst = d
				}
			}
		}
		if worst < tol {
			return st.ElapsedS, st.temp, nil
		}
	}
	return st.ElapsedS, st.temp, fmt.Errorf("thermal: not settled after %g s", maxSeconds)
}
