package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"agingfp/internal/lp"
)

// TestRootBasisImport checks that a basis exported from one solve can
// seed the root relaxation of a later solve of the same problem shape:
// identical results, one extra warm start (the root), and graceful
// rejection when the imported basis does not fit.
func TestRootBasisImport(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tested := 0
	for trial := 0; trial < 20 && tested < 8; trial++ {
		p, rows, ints := randomBinaryProblem(rng)
		_ = rows
		cold, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{})
		if err != nil || cold.Status != Optimal {
			continue
		}
		// Export the root relaxation's basis the way a prior job would:
		// serialize, then decode for the next solve.
		rel, err := lp.Solve(context.Background(), p, lp.Options{})
		if err != nil || rel.Status != lp.Optimal {
			continue
		}
		blob, err := rel.Basis.MarshalBinary()
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		root, err := lp.UnmarshalBasis(blob)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		warm, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints},
			Options{RootBasis: root})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warm.Status != cold.Status || math.Abs(warm.Obj-cold.Obj) > 1e-7*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: root basis changed result: %v/%g vs %v/%g",
				trial, warm.Status, warm.Obj, cold.Status, cold.Obj)
		}
		if warm.WarmStarts+warm.WarmStartRejects != cold.WarmStarts+cold.WarmStartRejects+1 {
			t.Fatalf("trial %d: root basis not attempted: warm %d/%d vs cold %d/%d",
				trial, warm.WarmStarts, warm.WarmStartRejects,
				cold.WarmStarts, cold.WarmStartRejects)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no optimal trials exercised the root basis path")
	}
}
