package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestWarmStartEquivalence: warm-started branch and bound must reach the
// same status and objective as the cold ablation on random 0/1 programs.
func TestWarmStartEquivalence(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _, ints := randomBinaryProblem(rng)
		warm, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		cold, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000, NoWarmStart: true})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v != cold %v", seed, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("seed %d: warm obj %g != cold %g", seed, warm.Obj, cold.Obj)
		}
		if cold.WarmStarts != 0 || cold.WarmStartRejects != 0 {
			t.Fatalf("seed %d: cold ablation reported warm starts (%d/%d)",
				seed, cold.WarmStarts, cold.WarmStartRejects)
		}
		if warm.Nodes > 1 && warm.WarmStarts+warm.WarmStartRejects == 0 {
			t.Fatalf("seed %d: %d nodes but no warm-start attempts recorded", seed, warm.Nodes)
		}
	}
}

// TestWarmStartNodeAndIterBudget asserts the optimization actually pays:
// across a batch of random instances, warm-started search must not expand
// more nodes in aggregate than the cold ablation (alternative LP optima
// can perturb branching on individual instances, so the assertion is on
// the totals), and must spend strictly fewer simplex iterations.
func TestWarmStartNodeAndIterBudget(t *testing.T) {
	var warmNodes, coldNodes, warmIters, coldIters, accepted int
	for seed := int64(200); seed < 320; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _, ints := randomBinaryProblem(rng)
		warm, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		cold, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000, NoWarmStart: true})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warmNodes += warm.Nodes
		coldNodes += cold.Nodes
		warmIters += warm.SimplexIters
		coldIters += cold.SimplexIters
		accepted += warm.WarmStarts
	}
	if accepted == 0 {
		t.Fatal("no warm start was ever accepted")
	}
	// Identical branching would give identical node counts; alternative
	// optima may shift a few trees, but aggregate regressions mean the
	// warm path is returning different (wrong or worse) relaxations.
	if warmNodes > coldNodes+coldNodes/20 {
		t.Fatalf("warm-started search expanded more nodes: %d vs %d", warmNodes, coldNodes)
	}
	if warmIters >= coldIters {
		t.Fatalf("warm-started search did not save simplex iterations: %d vs %d", warmIters, coldIters)
	}
	t.Logf("nodes %d vs %d, simplex iters %d (warm) vs %d (cold), %.1fx iteration reduction, %d warm starts accepted",
		warmNodes, coldNodes, warmIters, coldIters, float64(coldIters)/float64(warmIters), accepted)
}
