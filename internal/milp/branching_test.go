package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"agingfp/internal/lp"
)

// assignmentProblem builds an n-op / n-slot assignment feasibility MILP
// with per-slot budgets — the structure the re-mapping flow produces.
func assignmentProblem(rng *rand.Rand, n int) (*Problem, []int) {
	p := lp.NewProblem()
	var ints []int
	vars := make([][]int, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]int, n)
		for j := 0; j < n; j++ {
			vars[i][j] = p.AddVar(rng.Float64()*0.01, 0, 1)
			ints = append(ints, vars[i][j])
		}
		ones := make([]float64, n)
		for k := range ones {
			ones[k] = 1
		}
		p.MustAddRow(lp.EQ, 1, vars[i], ones)
	}
	for j := 0; j < n; j++ {
		col := make([]int, n)
		ones := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = vars[i][j]
			ones[i] = 1
		}
		p.MustAddRow(lp.LE, 1, col, ones)
	}
	return &Problem{LP: p, IntVars: ints}, ints
}

// TestDiveBranchingFindsFeasibleFast: on assignment problems the Dive
// rule should reach an integral solution in few nodes.
func TestDiveBranchingFindsFeasibleFast(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		prob, _ := assignmentProblem(rng, 6)
		res, err := Solve(context.Background(), prob, Options{Branching: Dive, StopAtFirst: true, MaxNodes: 200})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal && res.Status != Feasible {
			t.Fatalf("trial %d: %v after %d nodes", trial, res.Status, res.Nodes)
		}
		// Assignment LPs are integral: the root should already solve it.
		if res.Nodes > 50 {
			t.Fatalf("trial %d: %d nodes for an integral-polytope problem", trial, res.Nodes)
		}
	}
}

// TestBranchingRulesAgree: both rules must find the same optimum.
func TestBranchingRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(5)
		p := lp.NewProblem()
		var ints []int
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			ints = append(ints, p.AddVar(-(1+rng.Float64()*9), 0, 1))
			w[j] = 1 + rng.Float64()*9
		}
		p.MustAddRow(lp.LE, float64(n)*2, ints, w)

		a, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{Branching: MostFractional})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{Branching: Dive})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v", trial, a.Status, b.Status)
		}
		if math.Abs(a.Obj-b.Obj) > 1e-6 {
			t.Fatalf("trial %d: objectives differ: %g vs %g", trial, a.Obj, b.Obj)
		}
	}
}

func TestIntegerGeneralVariables(t *testing.T) {
	// Non-binary integers: maximize x+y, x,y integer, x+y <= 7.3,
	// x <= 4.5 -> x=4, y=3.
	p := lp.NewProblem()
	x := p.AddVar(-1, 0, 4.5)
	y := p.AddVar(-1, 0, 10)
	p.MustAddRow(lp.LE, 7.3, []int{x, y}, []float64{1, 1})
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: []int{x, y}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-(-7)) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal -7", res.Status, res.Obj)
	}
	for _, j := range []int{x, y} {
		if math.Abs(res.X[j]-math.Round(res.X[j])) > 1e-6 {
			t.Fatalf("x[%d]=%g not integral", j, res.X[j])
		}
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// One binary gate, one continuous flow: min -f, f <= 3*b, b binary,
	// f <= 2.5 -> b=1, f=2.5.
	p := lp.NewProblem()
	b := p.AddVar(0.1, 0, 1) // small cost on the gate
	f := p.AddVar(-1, 0, 2.5)
	p.MustAddRow(lp.LE, 0, []int{f, b}, []float64{1, -3})
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: []int{b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[b]-1) > 1e-6 || math.Abs(res.X[f]-2.5) > 1e-6 {
		t.Fatalf("b=%g f=%g, want 1, 2.5", res.X[b], res.X[f])
	}
}
