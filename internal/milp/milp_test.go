package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"agingfp/internal/lp"
)

// bruteBinary enumerates all 0/1 assignments of a problem whose variables
// are all binary, returning the optimal objective (or +Inf if infeasible).
func bruteBinary(p *lp.Problem, rows []lp.Row) float64 {
	n := p.NumVars()
	best := math.Inf(1)
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for _, r := range rows {
				v := 0.0
				for k, jj := range r.Idx {
					v += r.Val[k] * x[jj]
				}
				switch r.Sense {
				case lp.LE:
					if v > r.RHS+1e-9 {
						return
					}
				case lp.GE:
					if v < r.RHS-1e-9 {
						return
					}
				case lp.EQ:
					if math.Abs(v-r.RHS) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for jj := 0; jj < n; jj++ {
				obj += p.Obj(jj) * x[jj]
			}
			if obj < best {
				best = obj
			}
			return
		}
		lb, ub := p.Bounds(j)
		for v := lb; v <= ub; v++ {
			x[j] = v
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

// randomBinaryProblem builds a random 0/1 program and also returns its
// rows for the brute-force checker.
func randomBinaryProblem(rng *rand.Rand) (*lp.Problem, []lp.Row, []int) {
	n := 3 + rng.Intn(8)
	m := 1 + rng.Intn(5)
	p := lp.NewProblem()
	ints := make([]int, n)
	for j := 0; j < n; j++ {
		ints[j] = p.AddVar(float64(rng.Intn(21)-10), 0, 1)
	}
	var rows []lp.Row
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				idx = append(idx, j)
				val = append(val, float64(rng.Intn(9)-4))
			}
		}
		if len(idx) == 0 {
			idx = append(idx, rng.Intn(n))
			val = append(val, 1)
		}
		sense := lp.Sense(rng.Intn(3))
		rhs := float64(rng.Intn(11) - 3)
		if sense == lp.EQ {
			// Keep equality rows satisfiable often: rhs from a random
			// binary point.
			rhs = 0
			for k := range idx {
				if rng.Intn(2) == 1 {
					rhs += val[k]
				}
			}
		}
		p.MustAddRow(sense, rhs, idx, val)
		rows = append(rows, lp.Row{Sense: sense, RHS: rhs, Idx: idx, Val: val})
	}
	return p, rows, ints
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, rows, ints := randomBinaryProblem(rng)
		want := bruteBinary(p, rows)
		res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000})
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		if math.IsInf(want, 1) {
			if res.Status != Infeasible {
				t.Logf("seed %d: want infeasible, got %v obj %g", seed, res.Status, res.Obj)
				return false
			}
			return true
		}
		if res.Status != Optimal {
			t.Logf("seed %d: want optimal, got %v", seed, res.Status)
			return false
		}
		if math.Abs(res.Obj-want) > 1e-6 {
			t.Logf("seed %d: obj %g, brute %g", seed, res.Obj, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack with known optimum.
	// items: (w, v): (2,3) (3,4) (4,5) (5,6), cap 5 -> best value 7 (2+3).
	p := lp.NewProblem()
	w := []float64{2, 3, 4, 5}
	v := []float64{3, 4, 5, 6}
	ints := make([]int, len(w))
	for i := range w {
		ints[i] = p.AddVar(-v[i], 0, 1)
	}
	p.MustAddRow(lp.LE, 5, ints, w)
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-(-7)) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal -7", res.Status, res.Obj)
	}
}

func TestIntegerAssignmentFeasibility(t *testing.T) {
	// Pure feasibility: 3 ops, 3 PEs, stress budget forces a perfect
	// spread. Mirrors the structure of the re-mapper's formulation.
	p := lp.NewProblem()
	stress := []float64{0.6, 0.6, 0.6}
	var vars [][]int
	var ints []int
	for i := 0; i < 3; i++ {
		row := make([]int, 3)
		for k := 0; k < 3; k++ {
			row[k] = p.AddVar(0, 0, 1)
			ints = append(ints, row[k])
		}
		vars = append(vars, row)
		p.MustAddRow(lp.EQ, 1, row, []float64{1, 1, 1})
	}
	for k := 0; k < 3; k++ {
		idx := []int{vars[0][k], vars[1][k], vars[2][k]}
		p.MustAddRow(lp.LE, 0.7, idx, stress) // budget < 2 ops' stress
	}
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("got %v, want feasible assignment", res.Status)
	}
	// Each PE must hold exactly one op.
	for k := 0; k < 3; k++ {
		sum := res.X[vars[0][k]] + res.X[vars[1][k]] + res.X[vars[2][k]]
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("PE %d holds %g ops", k, sum)
		}
	}
}

func TestInfeasibleBudget(t *testing.T) {
	// Two ops, one PE, budget below one op's stress: infeasible.
	p := lp.NewProblem()
	a := p.AddVar(0, 0, 1)
	b := p.AddVar(0, 0, 1)
	p.MustAddRow(lp.EQ, 1, []int{a}, []float64{1})
	p.MustAddRow(lp.EQ, 1, []int{b}, []float64{1})
	p.MustAddRow(lp.LE, 0.5, []int{a, b}, []float64{0.6, 0.6})
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: []int{a, b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", res.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := lp.NewProblem()
	var ints []int
	var val []float64
	for j := 0; j < 30; j++ {
		ints = append(ints, p.AddVar(-(1+rng.Float64()), 0, 1))
		val = append(val, 1+rng.Float64()*3)
	}
	p.MustAddRow(lp.LE, 20, ints, val)
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 2 {
		t.Fatalf("solved %d nodes, limit 2", res.Nodes)
	}
	if res.Status == Infeasible {
		t.Fatalf("node-limited search must not claim infeasibility")
	}
}

func TestTimeLimit(t *testing.T) {
	p := lp.NewProblem()
	var ints []int
	var val []float64
	rng := rand.New(rand.NewSource(5))
	for j := 0; j < 40; j++ {
		ints = append(ints, p.AddVar(-(1+rng.Float64()), 0, 1))
		val = append(val, 1+rng.Float64()*3)
	}
	p.MustAddRow(lp.LE, 25, ints, val)
	start := time.Now()
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("time limit ignored")
	}
	if res.Status == Infeasible {
		t.Fatalf("time-limited search must not claim infeasibility")
	}
}

func TestRootObjIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		p, rows, ints := randomBinaryProblem(rng)
		res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{MaxNodes: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			continue
		}
		if !math.IsNaN(res.RootObj) && res.RootObj > res.Obj+1e-6 {
			t.Fatalf("trial %d: root LP %g above integer optimum %g", trial, res.RootObj, res.Obj)
		}
		_ = rows
	}
}

func TestStopAtFirst(t *testing.T) {
	// With StopAtFirst the solver may return a suboptimal incumbent, but
	// it must be integral and feasible.
	p := lp.NewProblem()
	var ints []int
	for j := 0; j < 10; j++ {
		ints = append(ints, p.AddVar(-float64(j+1), 0, 1))
	}
	val := make([]float64, 10)
	for i := range val {
		val[i] = 1
	}
	p.MustAddRow(lp.LE, 5, ints, val)
	res, err := Solve(context.Background(), &Problem{LP: p, IntVars: ints}, Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status %v", res.Status)
	}
	for _, j := range ints {
		if math.Abs(res.X[j]-math.Round(res.X[j])) > 1e-6 {
			t.Fatalf("non-integral x[%d] = %g", j, res.X[j])
		}
	}
}

// TestStatusString pins the Stringer for every declared status plus the
// unknown-value fallback, which log lines and flight-recorder events
// rely on for stable text.
func TestStatusString(t *testing.T) {
	cases := []struct {
		s    Status
		want string
	}{
		{Optimal, "optimal"},
		{Feasible, "feasible"},
		{NodeLimit, "node-limit"},
		{Canceled, "canceled"},
		{Infeasible, "infeasible"},
		{Status(42), "Status(42)"},
		{Status(-1), "Status(-1)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Status(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}
