package milp

import (
	"context"
	"math"
	"testing"

	"agingfp/internal/flight"
	"agingfp/internal/lp"
)

// knapsackProblem builds a 0/1 knapsack that forces real branching
// (fractional LP relaxation at the root).
func knapsackProblem() *Problem {
	p := lp.NewProblem()
	w := []float64{2, 3, 4, 5, 7, 6}
	v := []float64{3, 4, 5, 6, 9, 7}
	ints := make([]int, len(w))
	for i := range w {
		ints[i] = p.AddVar(-v[i], 0, 1)
	}
	p.MustAddRow(lp.LE, 11, ints, w)
	return &Problem{LP: p, IntVars: ints}
}

// TestTreeStatsRecorded: with a kernel-armed recorder, branch-and-bound
// leaves its tree-shape stats in the flight snapshot — node count,
// prune-reason taxonomy, incumbent trajectory, and elapsed time.
func TestTreeStatsRecorded(t *testing.T) {
	rec := flight.NewRecorder(64)
	rec.EnableKernel(0)
	res, err := Solve(context.Background(), knapsackProblem(), Options{Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj-(-14)) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal -14", res.Status, res.Obj)
	}
	ts := rec.Snapshot().Tree
	if ts == nil {
		t.Fatal("armed recorder has no tree stats")
	}
	if ts.Nodes < 2 {
		t.Fatalf("Nodes = %d, want branching (>= 2)", ts.Nodes)
	}
	var hist int64
	for _, n := range ts.DepthHist {
		hist += n
	}
	if hist != ts.Nodes {
		t.Fatalf("depth histogram sums to %d, want Nodes = %d", hist, ts.Nodes)
	}
	var prunes int64
	for reason, n := range ts.Prunes {
		switch reason {
		case flight.PruneBound, flight.PruneInfeasible, flight.PruneIntegral,
			flight.PruneIterLimit, flight.PruneBudget:
		default:
			t.Fatalf("unknown prune reason %q", reason)
		}
		prunes += n
	}
	if prunes == 0 {
		t.Fatal("no prunes recorded on a branching solve")
	}
	if len(ts.Incumbents) == 0 {
		t.Fatal("no incumbent trajectory recorded")
	}
	last := ts.Incumbents[len(ts.Incumbents)-1]
	if math.Abs(last.Obj-res.Obj) > 1e-6 {
		t.Fatalf("last incumbent obj %g != result obj %g", last.Obj, res.Obj)
	}
	if ts.ElapsedNanos <= 0 {
		t.Fatal("ElapsedNanos not recorded")
	}

	// An unarmed recorder must stay tree-free: journals serialize
	// byte-identically whether or not the profiler code is compiled in.
	cold := flight.NewRecorder(64)
	if _, err := Solve(context.Background(), knapsackProblem(), Options{Flight: cold}); err != nil {
		t.Fatal(err)
	}
	if cold.Snapshot().Tree != nil {
		t.Fatal("unarmed recorder accumulated tree stats")
	}
}
