package milp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"agingfp/internal/lp"
)

// hardProblem builds a 0/1 knapsack-style MILP that needs many
// branch-and-bound nodes, so cancellation can land mid-search.
func hardProblem(rng *rand.Rand, n int) *Problem {
	p := lp.NewProblem()
	var ints []int
	var val []float64
	for j := 0; j < n; j++ {
		ints = append(ints, p.AddVar(-(1+rng.Float64()), 0, 1))
		val = append(val, 1+rng.Float64()*3)
	}
	p.MustAddRow(lp.LE, float64(n)*0.7, ints, val)
	return &Problem{LP: p, IntVars: ints}
}

func TestSolveCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(ctx, hardProblem(rand.New(rand.NewSource(1)), 20), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Status != Canceled {
		t.Fatalf("want partial result with Status Canceled, got %+v", res)
	}
	if res.Nodes != 0 {
		t.Fatalf("pre-start cancellation expanded %d nodes", res.Nodes)
	}
}

func TestSolveCanceledMidSearch(t *testing.T) {
	prob := hardProblem(rand.New(rand.NewSource(9)), 35)

	ref, err := Solve(context.Background(), prob, Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Nodes < 10 {
		t.Skipf("reference search took only %d nodes; problem too easy", ref.Nodes)
	}

	// Cancel after a handful of node-level polls; the search must stop
	// promptly with a partial result and must not claim infeasibility.
	ctx := &countingCtx{Context: context.Background(), fuse: 5}
	res, err := Solve(ctx, prob, Options{MaxNodes: 50000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Status != Canceled {
		t.Fatalf("want partial result with Status Canceled, got %+v", res)
	}
	if res.Nodes >= ref.Nodes {
		t.Fatalf("canceled search expanded %d nodes, full search %d", res.Nodes, ref.Nodes)
	}

	// A later, uncanceled solve of the same problem is unaffected.
	again, err := Solve(context.Background(), prob, Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != ref.Status || again.Obj != ref.Obj || again.Nodes != ref.Nodes {
		t.Fatalf("solve after cancellation diverged: %+v vs %+v", again, ref)
	}
}

func TestNodeLimitStatus(t *testing.T) {
	prob := hardProblem(rand.New(rand.NewSource(4)), 40)
	res, err := Solve(context.Background(), prob, Options{MaxNodes: 1, StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	// One node cannot both find an incumbent and prove anything; the
	// status must be NodeLimit or Feasible, never Infeasible/Optimal
	// claims a single relaxation cannot support.
	if res.Status == Infeasible {
		t.Fatalf("node-limited search claimed infeasibility")
	}
	if !res.hasIncumbent() && res.Status != NodeLimit {
		t.Fatalf("budget exhausted with no incumbent: want NodeLimit, got %v", res.Status)
	}
}

func TestMILPOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	for _, bad := range []Options{
		{MaxNodes: -1},
		{TimeLimit: -time.Second},
		{IntTol: -0.1},
		{IntTol: 0.6},
		{Branching: Branching(99)},
		{LP: lp.Options{MaxIter: -3}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("options %+v accepted", bad)
		}
	}
	if _, err := Solve(context.Background(), hardProblem(rand.New(rand.NewSource(2)), 5), Options{MaxNodes: -1}); err == nil {
		t.Fatal("Solve accepted invalid options")
	}
}

// hasIncumbent reports whether the result carries a solution vector.
func (r *Result) hasIncumbent() bool { return len(r.X) > 0 }

// countingCtx reports Canceled after its Err has been polled fuse
// times, making mid-search cancellation deterministic without timers.
type countingCtx struct {
	context.Context
	polls int
	fuse  int
}

func (c *countingCtx) Err() error {
	c.polls++
	if c.polls > c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return c.Context.Done() }

func (c *countingCtx) Deadline() (time.Time, bool) { return c.Context.Deadline() }
