// Package milp solves mixed-integer linear programs by LP-based branch
// and bound over the simplex solver in internal/lp. Together the two
// packages replace the commercial CPLEX solver used by the paper.
//
// The solver is a depth-first branch-and-bound with most-fractional
// branching, nearest-value child ordering (a "dive" that finds feasible
// assignments quickly on the near-integral LPs produced by the paper's
// formulation), bound-based pruning against the incumbent, and node/time
// budgets. For pure feasibility problems (zero objective), the search
// stops at the first integral solution.
package milp

import (
	"context"
	"fmt"
	"math"
	"time"

	"agingfp/internal/flight"
	"agingfp/internal/lp"
	"agingfp/internal/obs"
)

// Problem is a MILP: an LP plus a set of integer-constrained variables.
type Problem struct {
	// LP holds the constraints, bounds and objective.
	LP *lp.Problem
	// IntVars lists the variables constrained to integer values.
	IntVars []int
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes (LP solves);
	// 0 selects 100000.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance; 0 selects 1e-6.
	IntTol float64
	// LP tunes the relaxation solves.
	LP lp.Options
	// StopAtFirst stops at the first integer-feasible solution even for
	// problems with a non-zero objective.
	StopAtFirst bool
	// Branching selects the branching rule.
	Branching Branching
	// NoWarmStart disables basis reuse between parent and child nodes,
	// forcing every relaxation to a cold two-phase solve. Warm starting
	// never changes results, so this exists only for the warm-vs-cold
	// ablation and its regression tests.
	NoWarmStart bool
	// RootBasis, when non-nil, seeds the root relaxation with a basis
	// exported from an earlier solve of a structurally identical
	// problem (e.g. the same assignment MILP at a different ST_target).
	// Like all warm starts it is validated against the problem and
	// silently dropped when stale, so importing a basis across jobs can
	// change performance but never results. Ignored under NoWarmStart.
	RootBasis *lp.Basis
	// Trace observes the search: a "milp.solve" span per Solve (attrs:
	// vars, int_vars, nodes, status, simplex_iters), a "milp.incumbent"
	// instant event per improving integer solution, and a node-expansion
	// counter agingfp_milp_nodes_total when a metrics registry is
	// attached. nil (the default) costs nothing.
	Trace *obs.Tracer
	// Flight, when non-nil, journals the search's decisions — every
	// branch, incumbent, and prune with its reason — into the per-solve
	// flight recorder, alongside the coarser Trace events. nil falls
	// back to the context-carried recorder (flight.WithRecorder).
	Flight *flight.Recorder
}

// Validate rejects nonsense option values with a descriptive error.
// Zero values are valid (they select documented defaults). It also
// validates the embedded LP options.
func (o Options) Validate() error {
	if o.MaxNodes < 0 {
		return fmt.Errorf("milp: Options.MaxNodes %d is negative (0 selects the default 100000)", o.MaxNodes)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("milp: Options.TimeLimit %v is negative (0 means no limit)", o.TimeLimit)
	}
	if math.IsNaN(o.IntTol) || o.IntTol < 0 || o.IntTol >= 0.5 {
		return fmt.Errorf("milp: Options.IntTol %g outside [0, 0.5) (0 selects the default 1e-6)", o.IntTol)
	}
	if o.Branching != MostFractional && o.Branching != Dive {
		return fmt.Errorf("milp: unknown Branching rule %d", int(o.Branching))
	}
	return o.LP.Validate()
}

// Branching selects how the search picks and orders branches.
type Branching int

const (
	// MostFractional branches on the variable farthest from an integer,
	// nearest-value child first. Good for proving optimality.
	MostFractional Branching = iota
	// Dive branches on the fractional variable with the largest value,
	// rounding it up first. This plunges toward integer-feasible points
	// quickly and suits the feasibility problems of the re-mapping flow,
	// whose LP relaxations are near-integral.
	Dive
)

// Status is a search outcome. Outcomes are ordered from strongest to
// weakest claim: Optimal proves, Feasible exhibits, NodeLimit and
// Canceled report an interrupted search (with or without an incumbent —
// check Result.X), Infeasible refutes.
type Status int

// Search outcomes.
const (
	// Optimal: proven optimal integer solution (or first feasible, for
	// feasibility problems / StopAtFirst).
	Optimal Status = iota
	// Feasible: budget exhausted with an incumbent in hand. The
	// incumbent is integer-feasible but not proven optimal.
	Feasible
	// NodeLimit: the node/time budget was exhausted with no incumbent.
	// This is NOT a proof of infeasibility — a larger budget may still
	// find a solution — and callers must not treat it as one.
	NodeLimit
	// Canceled: the context was canceled or its deadline passed
	// mid-search. The Result carries whatever was found so far; Solve
	// additionally returns ctx.Err().
	Canceled
	// Infeasible: the search tree was exhausted; no integer solution
	// exists.
	Infeasible
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NodeLimit:
		return "node-limit"
	case Canceled:
		return "canceled"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of a solve.
type Result struct {
	Status Status
	// Obj and X describe the incumbent (valid for Optimal/Feasible).
	Obj float64
	X   []float64
	// Nodes is the number of LP relaxations solved.
	Nodes int
	// RootObj is the root LP relaxation objective (a lower bound),
	// NaN if the root was infeasible.
	RootObj float64
	// SimplexIters is the total simplex iteration count over all node
	// relaxations (primal and dual phases).
	SimplexIters int
	// WarmStarts / WarmStartRejects count child relaxations that reused
	// the parent's basis versus snapshots the LP layer rejected (falling
	// back to a cold solve).
	WarmStarts, WarmStartRejects int
}

type searcher struct {
	ctx      context.Context
	base     *lp.Problem
	intVars  []int
	opts     Options
	deadline time.Time
	hasDL    bool

	incumbent []float64
	incObj    float64
	hasInc    bool
	nodes     int
	pureFeas  bool

	simplexIters int
	warmStarts   int
	warmRejects  int

	span      obs.Span      // the per-Solve "milp.solve" span
	nodeCtr   *obs.Counter  // agingfp_milp_nodes_total (nil-safe)
	rep       *obs.Reporter // ctx-carried live progress; nil when unwatched
	rootBound float64       // root relaxation objective (NaN until known)

	rec *flight.Recorder // per-solve decision journal (nil-safe)
	// budgetLogged makes the budget prune a one-shot journal entry: a
	// hit budget unwinds the whole recursion, and one event per unwound
	// frame would say nothing new.
	budgetLogged bool

	// tree collects B&B tree-shape stats (depth histogram, prune
	// taxonomy, incumbent trajectory) when the recorder armed kernel
	// profiling; nil otherwise, so unprofiled journals stay
	// byte-identical. Contributed via NoteTree when the solve ends.
	tree      *flight.TreeStats
	treeStart time.Time

	incCtr    *obs.Counter            // agingfp_milp_incumbents_total (nil-safe)
	pruneCtrs map[string]*obs.Counter // agingfp_milp_prunes_total{reason}, cached per reason
}

// Tree-shape Prometheus families, alongside agingfp_milp_nodes_total.
const (
	// PrunesMetric counts pruned B&B subtrees, labeled
	// {reason="bound"|"infeasible"|"integral"|"iterlimit"|"budget"}.
	PrunesMetric = "agingfp_milp_prunes_total"
	// IncumbentsMetric counts incumbent improvements.
	IncumbentsMetric = "agingfp_milp_incumbents_total"
)

// notePrune records one pruned subtree in the tree stats (when
// profiling) and the per-reason Prometheus counter (always, cached so
// the hot path pays one map lookup, mirroring nodeCtr).
func (s *searcher) notePrune(cause string) {
	s.tree.Prune(cause)
	c, ok := s.pruneCtrs[cause]
	if !ok {
		c = s.opts.Trace.Registry().Counter(obs.Labeled(PrunesMetric, "reason", cause))
		if s.pruneCtrs == nil {
			s.pruneCtrs = make(map[string]*obs.Counter, 4)
		}
		s.pruneCtrs[cause] = c
	}
	c.Inc()
}

// publishProgress stamps the branch-and-bound group of the job's live
// progress snapshot (nodes, incumbent, root bound, relative gap). The
// caller throttles; the update closure reads only locals so a CAS retry
// under contention re-applies cleanly.
func (s *searcher) publishProgress() {
	nodes := int64(s.nodes)
	hasInc, inc, bound := s.hasInc, s.incObj, s.rootBound
	gap := 0.0
	if hasInc && !math.IsNaN(bound) {
		gap = (inc - bound) / math.Max(1, math.Abs(inc))
	}
	s.rep.Update(func(p *obs.Progress) {
		p.Phase = "bnb"
		p.Nodes = nodes
		p.HasIncumbent = hasInc
		if hasInc {
			p.Incumbent = inc
		}
		if !math.IsNaN(bound) {
			p.Bound = bound
		}
		p.Gap = gap
	})
}

// Solve runs branch and bound. The problem's bound arrays are cloned; the
// caller's problem is not modified.
//
// Cancellation is cooperative: the search polls ctx at every node and
// the node relaxations poll it inside their simplex loops, so a
// canceled or expired context makes Solve return promptly with a
// partial Result (Status Canceled, node/iteration counts so far, and
// the incumbent if one was found) alongside ctx.Err().
func Solve(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 100000
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}
	if opts.Trace == nil {
		// Fall back to the context-carried tracer so server-traced jobs
		// reach this layer; explicit Options.Trace always wins.
		opts.Trace = obs.TracerFrom(ctx)
	}
	if opts.LP.Trace == nil {
		// Node relaxations report their warm-start events to the same
		// tracer unless the caller wired the LP layer separately.
		opts.LP.Trace = opts.Trace
	}
	if opts.Flight == nil {
		opts.Flight = flight.FromContext(ctx)
	}
	if opts.LP.Flight == nil {
		// Node relaxations journal into the same recorder.
		opts.LP.Flight = opts.Flight
	}
	s := &searcher{
		ctx:     ctx,
		base:    p.LP.CloneBounds(),
		intVars: p.IntVars,
		opts:    opts,
		incObj:  math.Inf(1),
		span: opts.Trace.Start("milp.solve",
			obs.Int("vars", p.LP.NumVars()),
			obs.Int("int_vars", len(p.IntVars)),
			obs.Int("rows", p.LP.NumRows())),
		nodeCtr:   opts.Trace.Registry().Counter("agingfp_milp_nodes_total"),
		incCtr:    opts.Trace.Registry().Counter(IncumbentsMetric),
		rep:       obs.ReporterFrom(ctx),
		rootBound: math.NaN(),
		rec:       opts.Flight,
	}
	if _, on := s.rec.KernelProfiling(); on {
		s.tree = &flight.TreeStats{Solves: 1}
		s.treeStart = time.Now()
	}
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
		s.hasDL = true
	}
	s.pureFeas = true
	for j := 0; j < p.LP.NumVars(); j++ {
		if p.LP.Obj(j) != 0 {
			s.pureFeas = false
			break
		}
	}

	rootObj := math.NaN()
	st, err := s.dfs(0, &rootObj, opts.RootBasis)
	if err != nil && st != searchCanceled {
		s.span.End(obs.String("status", "error"), obs.Int("nodes", s.nodes))
		return nil, err
	}
	res := &Result{
		Nodes:            s.nodes,
		RootObj:          rootObj,
		SimplexIters:     s.simplexIters,
		WarmStarts:       s.warmStarts,
		WarmStartRejects: s.warmRejects,
	}
	switch {
	case st == searchCanceled:
		res.Status = Canceled
		if s.hasInc {
			res.Obj = s.incObj
			res.X = s.incumbent
		}
	case s.hasInc && (st == searchDone || st == searchExhausted):
		res.Status = Optimal
		res.Obj = s.incObj
		res.X = s.incumbent
	case s.hasInc:
		res.Status = Feasible
		res.Obj = s.incObj
		res.X = s.incumbent
	case st == searchExhausted:
		res.Status = Infeasible
	default:
		res.Status = NodeLimit
	}
	s.span.End(
		obs.Int("nodes", res.Nodes),
		obs.String("status", res.Status.String()),
		obs.Int("simplex_iters", res.SimplexIters),
		obs.Int("warm_starts", res.WarmStarts),
		obs.Int("warm_rejects", res.WarmStartRejects))
	s.rec.NoteNodes(res.Nodes)
	if s.tree != nil {
		s.tree.ElapsedNanos = int64(time.Since(s.treeStart))
		s.rec.NoteTree(s.tree)
	}
	if s.rep != nil {
		s.publishProgress()
	}
	return res, err
}

type searchState int

const (
	searchExhausted searchState = iota // subtree fully explored
	searchDone                         // stopping condition met (first feasible)
	searchBudget                       // node/time budget hit
	searchCanceled                     // context canceled or deadline passed
)

// dfs explores one node. warm is the parent node's optimal basis (nil at
// the root): a child differs from its parent by one bound change, so the
// relaxation is reoptimized by the LP layer's dual simplex instead of a
// cold phase-1 restart.
func (s *searcher) dfs(depth int, rootObj *float64, warm *lp.Basis) (searchState, error) {
	if err := s.ctx.Err(); err != nil {
		return searchCanceled, err
	}
	if s.nodes >= s.opts.MaxNodes {
		if !s.budgetLogged {
			s.budgetLogged = true
			s.rec.Record(flight.Event{Kind: flight.KindPrune, Node: s.nodes, Depth: depth, Cause: "budget"})
			s.notePrune(flight.PruneBudget)
		}
		return searchBudget, nil
	}
	if s.hasDL && time.Now().After(s.deadline) {
		if !s.budgetLogged {
			s.budgetLogged = true
			s.rec.Record(flight.Event{Kind: flight.KindPrune, Node: s.nodes, Depth: depth, Cause: "budget"})
			s.notePrune(flight.PruneBudget)
		}
		return searchBudget, nil
	}
	s.nodes++
	s.nodeCtr.Inc()
	s.tree.Node(depth)
	if s.rep != nil && s.nodes&63 == 1 {
		// Throttled heartbeat: every 64th node (and the first), plus the
		// unthrottled incumbent/root publishes below, keeps the hot loop
		// cheap while a poller still sees the search moving.
		s.publishProgress()
	}
	lpOpts := s.opts.LP
	if !s.opts.NoWarmStart {
		lpOpts.WarmStart = warm
	}
	sol, err := lp.Solve(s.ctx, s.base, lpOpts)
	if err != nil {
		// A mid-relaxation cancellation surfaces as the context's error;
		// anything else is a genuine solver failure.
		if cerr := s.ctx.Err(); cerr != nil {
			return searchCanceled, cerr
		}
		return searchExhausted, err
	}
	s.simplexIters += sol.Iters
	if lpOpts.WarmStart != nil {
		if sol.Warm {
			s.warmStarts++
		} else {
			s.warmRejects++
		}
	}
	if depth == 0 && sol.Status == lp.Optimal {
		*rootObj = sol.Obj
		s.rootBound = sol.Obj
		if s.rep != nil {
			s.publishProgress()
		}
	}
	switch sol.Status {
	case lp.Infeasible:
		s.rec.Record(flight.Event{Kind: flight.KindPrune, Node: s.nodes, Depth: depth, Cause: "infeasible"})
		s.notePrune(flight.PruneInfeasible)
		return searchExhausted, nil
	case lp.Unbounded:
		return searchExhausted, fmt.Errorf("milp: LP relaxation unbounded at depth %d", depth)
	case lp.IterLimit:
		// Treat as unexplorable; conservative (cannot prune optimality
		// claims below, so report budget).
		s.rec.Record(flight.Event{Kind: flight.KindPrune, Node: s.nodes, Depth: depth, Cause: "iterlimit"})
		s.notePrune(flight.PruneIterLimit)
		return searchBudget, nil
	}
	if s.hasInc && sol.Obj >= s.incObj-1e-9 {
		s.rec.Record(flight.Event{Kind: flight.KindPrune, Node: s.nodes, Depth: depth, Cause: "bound", Obj: sol.Obj})
		s.notePrune(flight.PruneBound)
		return searchExhausted, nil // bound-dominated
	}

	// Pick the branching variable.
	branch, score := -1, 0.0
	for _, j := range s.intVars {
		v := sol.X[j]
		f := math.Abs(v - math.Round(v))
		if f <= s.opts.IntTol {
			continue
		}
		var sc float64
		if s.opts.Branching == Dive {
			sc = v - math.Floor(v) // prefer values closest to the ceiling
		} else {
			sc = f
		}
		if sc > score {
			branch, score = j, sc
		}
	}
	if branch == -1 {
		// Integral: new incumbent.
		s.incumbent = roundInts(sol.X, s.intVars)
		s.incObj = sol.Obj
		s.hasInc = true
		s.span.Event("milp.incumbent",
			obs.Float("obj", sol.Obj),
			obs.Int("nodes", s.nodes),
			obs.Int("depth", depth))
		s.rec.Record(flight.Event{Kind: flight.KindIncumbent, Node: s.nodes, Depth: depth, Obj: sol.Obj})
		s.incCtr.Inc()
		s.tree.Incumbent(s.nodes, sol.Obj)
		s.notePrune(flight.PruneIntegral)
		if s.rep != nil {
			s.publishProgress()
		}
		if s.pureFeas || s.opts.StopAtFirst {
			return searchDone, nil
		}
		return searchExhausted, nil
	}

	v := sol.X[branch]
	s.rec.Record(flight.Event{Kind: flight.KindBranch, Node: s.nodes, Depth: depth, Var: branch, F: v})
	lo, hi := s.base.Bounds(branch)
	floorV, ceilV := math.Floor(v), math.Ceil(v)

	// Child order: dive always rounds up first; otherwise take the
	// nearest value first.
	type child struct{ lb, ub float64 }
	up := child{lb: ceilV, ub: hi}
	down := child{lb: lo, ub: floorV}
	order := []child{down, up}
	if s.opts.Branching == Dive || v-floorV > 0.5 {
		order = []child{up, down}
	}
	for _, ch := range order {
		if ch.lb > ch.ub {
			continue
		}
		s.base.SetBounds(branch, ch.lb, ch.ub)
		st, err := s.dfs(depth+1, rootObj, sol.Basis)
		s.base.SetBounds(branch, lo, hi)
		if err != nil {
			return st, err
		}
		if st == searchDone || st == searchBudget {
			return st, nil
		}
	}
	return searchExhausted, nil
}

// roundInts snaps integer variables to the nearest integer, returning a
// copy.
func roundInts(x []float64, intVars []int) []float64 {
	out := append([]float64(nil), x...)
	for _, j := range intVars {
		out[j] = math.Round(out[j])
	}
	return out
}
