package timing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

// paperExample reproduces the §V.B.2 worked example (Fig. 4b): a single
// context with three 3-op chains placed in rows of a 5x3 region, where
// PE-internal delay is 2 ns, unit wire delay 1 ns, and adjacent-PE wires
// are length 1.
//
// We model "normalized delay 2" with a custom clock so numbers match:
// here we just check relative path arithmetic using ALU ops and scaled
// constants.
func chain3x3() (*arch.Design, arch.Mapping) {
	g := &dfg.Graph{}
	// path1: 0->1->2 ; path3 (critical): 3->4->5->6->7->8 (6 ops).
	for i := 0; i < 9; i++ {
		g.AddOp(dfg.ALU, "op")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	for i := 3; i < 8; i++ {
		g.AddEdge(i, i+1)
	}
	ctx := make([]int, 9)
	d := arch.NewDesign("fig4", arch.Fabric{W: 8, H: 8}, 1, g, ctx)
	d.UnitWireDelayNs = 1.0
	d.ClockPeriodNs = 1000 // irrelevant here
	m := make(arch.Mapping, 9)
	// path1 on row 0 (adjacent), path3 on row 1 (adjacent).
	m[0], m[1], m[2] = arch.Coord{X: 0, Y: 0}, arch.Coord{X: 1, Y: 0}, arch.Coord{X: 2, Y: 0}
	for i := 0; i < 6; i++ {
		m[3+i] = arch.Coord{X: i, Y: 1}
	}
	return d, m
}

func TestAnalyzeWorkedExample(t *testing.T) {
	d, m := chain3x3()
	res := Analyze(d, m)
	alu := arch.ALUDelayNs
	// path1: 3 PEs + 2 unit wires; path3: 6 PEs + 5 unit wires.
	want1 := 3*alu + 2
	want3 := 6*alu + 5
	if !closeF(res.PerContextCPD[0], want3) {
		t.Fatalf("CPD %g, want %g", res.PerContextCPD[0], want3)
	}
	if !closeF(res.Arrival[2], want1) {
		t.Fatalf("arrival(2) = %g, want %g", res.Arrival[2], want1)
	}
	if res.CPD != res.PerContextCPD[0] {
		t.Fatalf("design CPD mismatch")
	}
}

func TestCrossContextSourceWire(t *testing.T) {
	// Producer in ctx0 at (0,0); consumer in ctx1 at (3,0): the
	// registered input pays a 3-hop wire before the consumer's PE delay.
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	g.AddEdge(a, b)
	d := arch.NewDesign("x", arch.Fabric{W: 4, H: 4}, 2, g, []int{0, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 3, Y: 0}}
	res := Analyze(d, m)
	want := d.UnitWireDelayNs*3 + arch.DMUDelayNs
	if !closeF(res.PerContextCPD[1], want) {
		t.Fatalf("ctx1 CPD %g, want %g", res.PerContextCPD[1], want)
	}
}

func TestCriticalOpsWorkedExample(t *testing.T) {
	d, m := chain3x3()
	res := Analyze(d, m)
	crit := CriticalOps(d, m, res, 1e-6)
	for i := 3; i < 9; i++ {
		if !crit[i] {
			t.Fatalf("op %d on the critical chain not marked critical", i)
		}
	}
	for i := 0; i < 3; i++ {
		if crit[i] {
			t.Fatalf("op %d (short chain) wrongly critical", i)
		}
	}
}

func TestCriticalOnlyInCriticalContexts(t *testing.T) {
	// Two contexts: ctx0 short chain, ctx1 long chain. Only ctx1's ops
	// are design-critical.
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	c := g.AddOp(dfg.DMU, "c")
	g.AddEdge(b, c)
	d := arch.NewDesign("x", arch.Fabric{W: 4, H: 4}, 2, g, []int{0, 1, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}}
	res := Analyze(d, m)
	crit := CriticalOps(d, m, res, 1e-6)
	if crit[a] {
		t.Fatal("short-context op marked critical")
	}
	if !crit[b] || !crit[c] {
		t.Fatal("critical chain not frozen")
	}
}

// brutePaths enumerates all register-to-register paths by brute force.
func brutePaths(d *arch.Design, m arch.Mapping) []*Path {
	var all []*Path
	uw := d.UnitWireDelayNs
	var extend func(chain []int)
	extend = func(chain []int) {
		last := chain[len(chain)-1]
		succs := d.IntraSuccs(last)
		if len(succs) == 0 {
			// Materialize paths for every source variant of chain[0].
			head := chain[0]
			mk := func(src int) *Path {
				p := &Path{
					Context: d.Ctx[head],
					Source:  src,
					Ops:     append([]int(nil), chain...),
				}
				for _, op := range chain {
					p.PEDelaySum += arch.OpDelayNs(d.Graph.Ops[op].Kind)
				}
				for _, a := range p.Arcs() {
					if a.From >= 0 {
						p.WireLen += m[a.From].Dist(m[a.To])
					}
				}
				p.Delay = p.PEDelaySum + uw*float64(p.WireLen)
				return p
			}
			if len(d.IntraPreds(head)) == 0 && len(d.CrossPreds(head)) == 0 {
				all = append(all, mk(-1))
			}
			for _, src := range d.CrossPreds(head) {
				all = append(all, mk(src))
			}
			return
		}
		for _, s := range succs {
			extend(append(chain, s))
		}
	}
	for op := 0; op < d.NumOps(); op++ {
		if len(d.IntraPreds(op)) == 0 {
			extend([]int{op})
		} else if len(d.CrossPreds(op)) > 0 {
			// Mid-chain op with an additional registered input: its own
			// chains start here too.
			extendFromMid(d, m, op, &all)
		}
	}
	return all
}

// extendFromMid enumerates downstream chains from op for its registered
// sources only.
func extendFromMid(d *arch.Design, m arch.Mapping, op int, all *[]*Path) {
	uw := d.UnitWireDelayNs
	var extend func(chain []int)
	extend = func(chain []int) {
		last := chain[len(chain)-1]
		succs := d.IntraSuccs(last)
		if len(succs) == 0 {
			for _, src := range d.CrossPreds(chain[0]) {
				p := &Path{Context: d.Ctx[chain[0]], Source: src, Ops: append([]int(nil), chain...)}
				for _, o := range chain {
					p.PEDelaySum += arch.OpDelayNs(d.Graph.Ops[o].Kind)
				}
				for _, a := range p.Arcs() {
					if a.From >= 0 {
						p.WireLen += m[a.From].Dist(m[a.To])
					}
				}
				p.Delay = p.PEDelaySum + uw*float64(p.WireLen)
				*all = append(*all, p)
			}
			return
		}
		for _, s := range succs {
			extend(append(chain, s))
		}
	}
	extend([]int{op})
}

func pathKey(p *Path) string {
	k := fmt.Sprintf("%d|%d", p.Context, p.Source)
	for _, o := range p.Ops {
		k += fmt.Sprintf(",%d", o)
	}
	return k
}

// TestEnumerateMatchesBruteForce: with threshold small enough to keep
// everything, enumeration must equal the brute-force path listing.
func TestEnumerateMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.LayeredSpec{
			Ops: 12 + rng.Intn(14), Depth: 3 + rng.Intn(3),
			DMUFrac: 0.3, MaxFanIn: 2, LocalityBias: 0.9,
		})
		levels, nl := g.Levels()
		ctx := make([]int, g.NumOps())
		for i := range ctx {
			ctx[i] = levels[i] / 2 // two levels chained per context
		}
		d := arch.NewDesign("p", arch.Fabric{W: 6, H: 6}, (nl+1)/2, g, ctx)
		if d.Validate() != nil {
			return true
		}
		m := make(arch.Mapping, d.NumOps())
		for c := 0; c < d.NumContexts; c++ {
			perm := rng.Perm(36)
			for i, op := range d.ContextOps(c) {
				m[op] = d.Fabric.CoordOf(perm[i])
			}
		}
		res := Analyze(d, m)
		got := EnumeratePaths(d, m, res, EnumerateOptions{ThresholdFrac: 1e-9, MaxPaths: 0, MaxPerContext: 0})
		want := brutePaths(d, m)
		if len(got) != len(want) {
			t.Logf("seed %d: %d paths enumerated, brute force %d", seed, len(got), len(want))
			return false
		}
		wk := map[string]float64{}
		for _, p := range want {
			wk[pathKey(p)] = p.Delay
		}
		for _, p := range got {
			wd, ok := wk[pathKey(p)]
			if !ok {
				t.Logf("seed %d: path not in brute force set", seed)
				return false
			}
			if math.Abs(wd-p.Delay) > 1e-9 {
				t.Logf("seed %d: delay mismatch %g vs %g", seed, p.Delay, wd)
				return false
			}
		}
		// The maximum enumerated delay must equal the CPD.
		maxD := 0.0
		for _, p := range got {
			if p.Delay > maxD {
				maxD = p.Delay
			}
		}
		if math.Abs(maxD-res.CPD) > 1e-9 {
			t.Logf("seed %d: max path %g != CPD %g", seed, maxD, res.CPD)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateThresholdFilters(t *testing.T) {
	d, m := chain3x3()
	res := Analyze(d, m)
	paths := EnumeratePaths(d, m, res, EnumerateOptions{ThresholdFrac: 0.8, MaxPaths: 100, MaxPerContext: 100})
	for _, p := range paths {
		if p.Delay < 0.8*res.CPD-1e-9 {
			t.Fatalf("path below threshold returned: %g < %g", p.Delay, 0.8*res.CPD)
		}
	}
	// The 3-op chain (delay ~4.6) is under 80% of ~10.2 and must be gone.
	for _, p := range paths {
		if p.Ops[0] == 0 {
			t.Fatalf("short path not filtered")
		}
	}
}

func TestEnumerateMaxPathsKeepsLongest(t *testing.T) {
	d, m := chain3x3()
	res := Analyze(d, m)
	paths := EnumeratePaths(d, m, res, EnumerateOptions{ThresholdFrac: 0.01, MaxPaths: 1, MaxPerContext: 0})
	if len(paths) != 1 {
		t.Fatalf("%d paths, want 1", len(paths))
	}
	if !closeF(paths[0].Delay, res.CPD) {
		t.Fatalf("kept path %g, want the critical one %g", paths[0].Delay, res.CPD)
	}
}

func TestArcs(t *testing.T) {
	p := &Path{Source: 7, Ops: []int{1, 2, 3}}
	arcs := p.Arcs()
	want := []Arc{{7, 1}, {1, 2}, {2, 3}}
	if len(arcs) != len(want) {
		t.Fatalf("arcs %v", arcs)
	}
	for i := range want {
		if arcs[i] != want[i] {
			t.Fatalf("arc %d = %v, want %v", i, arcs[i], want[i])
		}
	}
	p2 := &Path{Source: -1, Ops: []int{4, 5}}
	if got := p2.Arcs(); len(got) != 1 || got[0] != (Arc{4, 5}) {
		t.Fatalf("PI path arcs %v", got)
	}
}

func closeF(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
