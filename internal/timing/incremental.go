package timing

import (
	"container/heap"

	"agingfp/internal/arch"
)

// Incremental maintains arrival times under single-op moves, recomputing
// only the moved op's fan-out cone — the classic incremental-STA trick
// that makes move-based optimizers (annealers, local search) affordable.
// Results match a from-scratch Analyze exactly (asserted by property
// tests).
type Incremental struct {
	d *arch.Design
	m arch.Mapping
	// arrival mirrors Result.Arrival.
	arrival []float64
	order   []int // topological order
	rank    []int // op -> position in order
}

// NewIncremental builds the initial analysis. The mapping is copied.
func NewIncremental(d *arch.Design, m arch.Mapping) *Incremental {
	order, err := d.Graph.TopoOrder()
	if err != nil {
		panic("timing: " + err.Error())
	}
	inc := &Incremental{
		d:     d,
		m:     m.Clone(),
		order: order,
		rank:  make([]int, d.NumOps()),
	}
	for i, op := range order {
		inc.rank[op] = i
	}
	res := Analyze(d, inc.m)
	inc.arrival = res.Arrival
	return inc
}

// Arrival returns op's current completion time within its context.
func (inc *Incremental) Arrival(op int) float64 { return inc.arrival[op] }

// Mapping returns the current mapping (live storage; do not mutate).
func (inc *Incremental) Mapping() arch.Mapping { return inc.m }

// CPD returns the current critical path delay (max arrival).
func (inc *Incremental) CPD() float64 {
	cpd := 0.0
	for _, a := range inc.arrival {
		if a > cpd {
			cpd = a
		}
	}
	return cpd
}

// rankHeap orders ops by topological rank for monotone propagation.
type rankHeap struct {
	items []int
	rank  []int
	in    map[int]bool
}

func (h *rankHeap) Len() int           { return len(h.items) }
func (h *rankHeap) Less(i, j int) bool { return h.rank[h.items[i]] < h.rank[h.items[j]] }
func (h *rankHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rankHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *rankHeap) Pop() interface{} {
	v := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return v
}
func (h *rankHeap) add(op int) {
	if !h.in[op] {
		h.in[op] = true
		heap.Push(h, op)
	}
}
func (h *rankHeap) take() int { v := heap.Pop(h).(int); delete(h.in, v); return v }

// MoveOp relocates op to pe and incrementally updates arrival times.
// Legality (no same-context collision) is the caller's responsibility;
// use arch.ValidateMapping for full checks.
func (inc *Incremental) MoveOp(op int, pe arch.Coord) {
	inc.m[op] = pe
	// Seed the propagation front with every op whose inputs changed:
	// op itself (its input wires moved with it) and all its consumers
	// (their wire from op changed).
	h := &rankHeap{rank: inc.rank, in: map[int]bool{}}
	h.add(op)
	for _, s := range inc.d.Graph.Succs(op) {
		h.add(s)
	}
	for h.Len() > 0 {
		v := h.take()
		old := inc.arrival[v]
		nv := inc.recompute(v)
		if nv == old {
			continue
		}
		inc.arrival[v] = nv
		for _, s := range inc.d.Graph.Succs(v) {
			if inc.d.Ctx[s] == inc.d.Ctx[v] {
				h.add(s) // chained: arrival change propagates
			}
		}
	}
}

// recompute evaluates one op's arrival from its predecessors.
func (inc *Incremental) recompute(op int) float64 {
	uw := inc.d.UnitWireDelayNs
	start := 0.0
	for _, p := range inc.d.Graph.Preds(op) {
		w := uw * float64(inc.m[p].Dist(inc.m[op]))
		var t float64
		if inc.d.Ctx[p] == inc.d.Ctx[op] {
			t = inc.arrival[p] + w
		} else {
			t = w
		}
		if t > start {
			start = t
		}
	}
	return start + arch.OpDelayNs(inc.d.Graph.Ops[op].Kind)
}
