package timing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

// TestIncrementalMatchesFullSTA: after arbitrary sequences of moves the
// incremental arrival times equal a from-scratch analysis.
func TestIncrementalMatchesFullSTA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(20+rng.Intn(20), 3+rng.Intn(3)))
		levels, nl := g.Levels()
		ctx := make([]int, g.NumOps())
		for i := range ctx {
			ctx[i] = levels[i] / 2
		}
		d := arch.NewDesign("inc", arch.Fabric{W: 6, H: 6}, (nl+1)/2, g, ctx)
		if d.Validate() != nil {
			return true
		}
		m := make(arch.Mapping, d.NumOps())
		occupied := make([]map[arch.Coord]bool, d.NumContexts)
		for c := range occupied {
			occupied[c] = map[arch.Coord]bool{}
		}
		for c := 0; c < d.NumContexts; c++ {
			perm := rng.Perm(36)
			for i, op := range d.ContextOps(c) {
				co := d.Fabric.CoordOf(perm[i])
				m[op] = co
				occupied[c][co] = true
			}
		}
		inc := NewIncremental(d, m)
		for move := 0; move < 12; move++ {
			op := rng.Intn(d.NumOps())
			c := d.Ctx[op]
			// Pick a free cell in the op's context.
			var target arch.Coord
			for {
				target = d.Fabric.CoordOf(rng.Intn(36))
				if !occupied[c][target] {
					break
				}
			}
			delete(occupied[c], inc.Mapping()[op])
			occupied[c][target] = true
			inc.MoveOp(op, target)

			full := Analyze(d, inc.Mapping())
			for i := range full.Arrival {
				if math.Abs(full.Arrival[i]-inc.Arrival(i)) > 1e-9 {
					t.Logf("seed %d move %d: op %d arrival %g vs %g",
						seed, move, i, inc.Arrival(i), full.Arrival[i])
					return false
				}
			}
			if math.Abs(full.CPD-inc.CPD()) > 1e-9 {
				t.Logf("seed %d: CPD %g vs %g", seed, inc.CPD(), full.CPD)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalMoveBackRestores(t *testing.T) {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.ALU, "b")
	c := g.AddOp(dfg.DMU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	d := arch.NewDesign("x", arch.Fabric{W: 4, H: 4}, 2, g, []int{0, 0, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	inc := NewIncremental(d, m)
	origCPD := inc.CPD()
	origArr := inc.Arrival(c)
	inc.MoveOp(b, arch.Coord{X: 3, Y: 3})
	if inc.CPD() <= origCPD {
		t.Fatal("stretching the chain should raise the CPD")
	}
	inc.MoveOp(b, arch.Coord{X: 1, Y: 0})
	if math.Abs(inc.CPD()-origCPD) > 1e-12 || math.Abs(inc.Arrival(c)-origArr) > 1e-12 {
		t.Fatalf("move-back did not restore: CPD %g vs %g", inc.CPD(), origCPD)
	}
}

func TestIncrementalCrossContextConsumer(t *testing.T) {
	// Moving a producer changes the registered wire seen by its consumer
	// in the next context.
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	g.AddEdge(a, b)
	d := arch.NewDesign("x", arch.Fabric{W: 5, H: 5}, 2, g, []int{0, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 0, Y: 1}}
	inc := NewIncremental(d, m)
	before := inc.Arrival(b)
	inc.MoveOp(a, arch.Coord{X: 4, Y: 4})
	after := inc.Arrival(b)
	if after <= before {
		t.Fatalf("consumer arrival did not grow: %g -> %g", before, after)
	}
	full := Analyze(d, inc.Mapping())
	if math.Abs(full.Arrival[b]-after) > 1e-12 {
		t.Fatalf("incremental %g vs full %g", after, full.Arrival[b])
	}
}
