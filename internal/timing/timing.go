// Package timing performs static timing analysis on a placed multi-context
// CGRRA design.
//
// Each context is one clock cycle: its operations form a combinational
// DAG whose register-to-register paths must fit in the clock period. A
// timing path starts either at a registered input — the register sits at
// the PE of the producing operation in an earlier context, so the path
// begins with a wire from that PE — or at a primary input (assumed
// register at the consuming PE itself), and ends at an operation whose
// result is registered (no chained successor).
//
// Path delay = sum of PE-internal delays + unit wire delay x Manhattan
// wire length, per the buffered-wire model of §V.B of the paper.
//
// The package provides both an arrival-time DP (for the critical path
// delay, CPD) and explicit enumeration of near-critical paths (for the
// MILP's path wire-length constraints; the paper retains paths whose
// delay is within 20% of the CPD).
package timing

import (
	"fmt"
	"sort"

	"agingfp/internal/arch"
)

// Arc is one hop of a timing path: data travels from the PE of op From to
// the PE of op To. From == -1 denotes a primary-input start (no wire).
type Arc struct {
	From, To int
}

// Path is a register-to-register timing path inside one context.
type Path struct {
	// Context is the clock cycle this path belongs to.
	Context int
	// Source is the cross-context producer op whose output register
	// feeds the path, or -1 for a primary-input path.
	Source int
	// Ops is the chained op sequence, in data-flow order.
	Ops []int
	// Delay is the total path delay (ns) under the analyzed mapping.
	Delay float64
	// PEDelaySum is the mapping-independent part: the sum of PE-internal
	// delays along Ops. The wire-length budget of the MILP is
	// (CPD - PEDelaySum) / unitWireDelay.
	PEDelaySum float64
	// WireLen is the total Manhattan wire length under the analyzed
	// mapping.
	WireLen int
}

// Arcs returns the path's wire hops: the source arc (if any) followed by
// each chained hop.
func (p *Path) Arcs() []Arc {
	var arcs []Arc
	if p.Source >= 0 {
		arcs = append(arcs, Arc{From: p.Source, To: p.Ops[0]})
	}
	for i := 0; i+1 < len(p.Ops); i++ {
		arcs = append(arcs, Arc{From: p.Ops[i], To: p.Ops[i+1]})
	}
	return arcs
}

// Result is the output of a full-design analysis.
type Result struct {
	// CPD is the critical path delay: the longest path delay over all
	// contexts (ns).
	CPD float64
	// CriticalContext is a context achieving the CPD.
	CriticalContext int
	// Arrival[op] is the completion time of op within its context (ns).
	Arrival []float64
	// PerContextCPD[c] is the longest path delay of context c.
	PerContextCPD []float64
}

// Analyze computes arrival times and the critical path delay of design d
// under mapping m.
func Analyze(d *arch.Design, m arch.Mapping) *Result {
	n := d.NumOps()
	res := &Result{
		Arrival:       make([]float64, n),
		PerContextCPD: make([]float64, d.NumContexts),
	}
	order, err := d.Graph.TopoOrder()
	if err != nil {
		// Designs are validated before analysis; a cycle here is a
		// programming error.
		panic("timing: " + err.Error())
	}
	uw := d.UnitWireDelayNs
	for _, op := range order {
		start := 0.0
		for _, p := range d.Graph.Preds(op) {
			var t float64
			w := uw * float64(m[p].Dist(m[op]))
			if d.Ctx[p] == d.Ctx[op] {
				t = res.Arrival[p] + w
			} else {
				// Registered input: launched at cycle start from the
				// producer's output register.
				t = w
			}
			if t > start {
				start = t
			}
		}
		res.Arrival[op] = start + arch.OpDelayNs(d.Graph.Ops[op].Kind)
		c := d.Ctx[op]
		if res.Arrival[op] > res.PerContextCPD[c] {
			res.PerContextCPD[c] = res.Arrival[op]
		}
	}
	for c, v := range res.PerContextCPD {
		if v > res.CPD {
			res.CPD = v
			res.CriticalContext = c
		}
	}
	return res
}

// CriticalOps returns the set of ops lying on a design-critical path —
// a path achieving the design-wide CPD within eps. These are the ops the
// re-mapper freezes (§V.B.1). Paths of contexts whose own longest delay
// is below the CPD carry positive slack, so their ops stay movable and
// are protected by wire-length budget constraints instead (Fig. 4:
// path3 is frozen, paths 1-2 get budgets).
func CriticalOps(d *arch.Design, m arch.Mapping, res *Result, eps float64) map[int]bool {
	req := requiredTimes(d, m, res)
	crit := make(map[int]bool)
	for op := 0; op < d.NumOps(); op++ {
		// slack = required - arrival, where required was initialized at
		// the op's own context CPD; an op is design-critical when its
		// context achieves the CPD and its slack there is ~zero.
		if res.PerContextCPD[d.Ctx[op]] >= res.CPD-eps && req[op]-res.Arrival[op] <= eps {
			crit[op] = true
		}
	}
	return crit
}

// requiredTimes computes, for each op, the latest completion time that
// keeps every downstream path within its context's CPD.
func requiredTimes(d *arch.Design, m arch.Mapping, res *Result) []float64 {
	n := d.NumOps()
	req := make([]float64, n)
	order, _ := d.Graph.TopoOrder()
	uw := d.UnitWireDelayNs
	// Initialize at the context CPD, then tighten in reverse topo order.
	for op := 0; op < n; op++ {
		req[op] = res.PerContextCPD[d.Ctx[op]]
	}
	for i := len(order) - 1; i >= 0; i-- {
		op := order[i]
		for _, s := range d.Graph.Succs(op) {
			if d.Ctx[s] != d.Ctx[op] {
				continue
			}
			w := uw * float64(m[op].Dist(m[s]))
			t := req[s] - arch.OpDelayNs(d.Graph.Ops[s].Kind) - w
			if t < req[op] {
				req[op] = t
			}
		}
	}
	return req
}

// EnumerateOptions controls near-critical path enumeration.
type EnumerateOptions struct {
	// ThresholdFrac keeps paths with Delay >= ThresholdFrac * CPD.
	// The paper's default monitors paths within 20% of the CPD, i.e.
	// ThresholdFrac = 0.8.
	ThresholdFrac float64
	// MaxPaths caps the number of returned paths (the paper's "M longest
	// timing paths" filter); <= 0 means no cap. When the cap binds, the
	// longest paths are kept.
	MaxPaths int
	// MaxPerContext optionally caps paths per context; <= 0 disables.
	MaxPerContext int
}

// DefaultEnumerateOptions mirrors the paper's defaults.
func DefaultEnumerateOptions() EnumerateOptions {
	return EnumerateOptions{ThresholdFrac: 0.8, MaxPaths: 4096, MaxPerContext: 512}
}

// EnumeratePaths lists register-to-register paths of d under m whose delay
// meets the near-critical threshold, sorted by decreasing delay.
//
// Enumeration is exact up to the caps: a branch is pruned only when its
// best possible completion provably misses the threshold.
func EnumeratePaths(d *arch.Design, m arch.Mapping, res *Result, opts EnumerateOptions) []*Path {
	if opts.ThresholdFrac <= 0 || opts.ThresholdFrac > 1 {
		panic(fmt.Sprintf("timing: ThresholdFrac %g out of (0,1]", opts.ThresholdFrac))
	}
	threshold := opts.ThresholdFrac * res.CPD
	uw := d.UnitWireDelayNs

	// Downstream potential: max additional delay achievable from op
	// (inclusive of op's own PE delay) to any sink of its context.
	n := d.NumOps()
	down := make([]float64, n)
	order, _ := d.Graph.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		op := order[i]
		best := 0.0
		for _, s := range d.IntraSuccs(op) {
			t := uw*float64(m[op].Dist(m[s])) + down[s]
			if t > best {
				best = t
			}
		}
		down[op] = arch.OpDelayNs(d.Graph.Ops[op].Kind) + best
	}

	var all []*Path
	perCtx := make([]int, d.NumContexts)

	var dfs func(chain []int, delay, peSum float64, wire int, source, ctx int)
	dfs = func(chain []int, delay, peSum float64, wire int, source, ctx int) {
		if opts.MaxPaths > 0 && len(all) >= opts.MaxPaths*4 {
			return // hard safety cap before final trim
		}
		if opts.MaxPerContext > 0 && perCtx[ctx] >= opts.MaxPerContext {
			return
		}
		last := chain[len(chain)-1]
		succs := d.IntraSuccs(last)
		if len(succs) == 0 {
			if delay >= threshold {
				p := &Path{
					Context:    ctx,
					Source:     source,
					Ops:        append([]int(nil), chain...),
					Delay:      delay,
					PEDelaySum: peSum,
					WireLen:    wire,
				}
				all = append(all, p)
				perCtx[ctx]++
			}
			return
		}
		for _, s := range succs {
			w := m[last].Dist(m[s])
			next := delay + uw*float64(w) + down[s]
			if next < threshold {
				continue // cannot reach threshold through s
			}
			dfs(append(chain, s),
				delay+uw*float64(w)+arch.OpDelayNs(d.Graph.Ops[s].Kind),
				peSum+arch.OpDelayNs(d.Graph.Ops[s].Kind),
				wire+w, source, ctx)
		}
	}

	for op := 0; op < n; op++ {
		ctx := d.Ctx[op]
		pe := arch.OpDelayNs(d.Graph.Ops[op].Kind)
		// Primary-input or intra-sourced start.
		if len(d.IntraPreds(op)) == 0 && len(d.CrossPreds(op)) == 0 {
			if down[op] >= threshold {
				dfs([]int{op}, pe, pe, 0, -1, ctx)
			}
		}
		// Registered starts: one per cross-context producer.
		for _, src := range d.CrossPreds(op) {
			w := m[src].Dist(m[op])
			start := uw*float64(w) + pe
			if start-pe+down[op] >= threshold {
				dfs([]int{op}, start, pe, w, src, ctx)
			}
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i].Delay > all[j].Delay })
	if opts.MaxPaths > 0 && len(all) > opts.MaxPaths {
		all = all[:opts.MaxPaths]
	}
	return all
}
