// Package core implements the paper's contribution: the MILP-based
// delay- and aging-aware re-mapping flow for multi-context CGRRAs
// (Algorithm 1).
//
// Given a scheduled design and its aging-unaware baseline floorplan, the
// re-mapper produces a new operation-to-PE binding that levels the
// accumulated NBTI stress across the fabric — raising the MTTF — while
// provably not increasing the critical path delay:
//
//  1. Step 1 determines a lower bound for the per-PE accumulated stress
//     budget ST_target by binary search over delay-unaware feasibility
//     MILPs (solved with the paper's LP-relax / round>0.95 / residual-ILP
//     scheme).
//  2. Step 2.1 freezes each context's critical paths as rigid shapes and
//     rotates them among the 8 grid isometries to minimize the overlap of
//     critical-path operations on particular PEs (Rotate mode; Freeze
//     mode pins them at their original PEs).
//  3. Step 2.2 converts every near-critical timing path into a linear
//     wire-length budget (CPD - sum of PE delays) / unit wire delay.
//  4. Step 2.3 solves the full assignment MILP at ST_target, relaxing the
//     budget by a step Delta whenever the MILP is infeasible or the
//     re-timed CPD regressed, exactly as in Algorithm 1.
package core

import (
	"fmt"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/flight"
	"agingfp/internal/lp"
	"agingfp/internal/milp"
	"agingfp/internal/nbti"
	"agingfp/internal/obs"
	"agingfp/internal/thermal"
)

// Mode selects the critical-path handling strategy of Table I.
type Mode int

const (
	// Freeze pins critical-path ops at their original PEs (the paper's
	// "Freeze" columns).
	Freeze Mode = iota
	// Rotate additionally rotates each context's frozen critical paths
	// among the 8 grid isometries to minimize stacking (the paper's
	// "Rotate" columns — the complete method).
	Rotate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Freeze:
		return "freeze"
	case Rotate:
		return "rotate"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes the re-mapper. The zero value is NOT usable; start from
// DefaultOptions.
type Options struct {
	// Mode selects Freeze or Rotate.
	Mode Mode
	// PathThresholdFrac keeps timing paths within this fraction of the
	// CPD as monitored constraints (paper default: paths within 20% of
	// the CPD, i.e. 0.8).
	PathThresholdFrac float64
	// MaxPaths / MaxPathsPerContext cap the monitored path set (the
	// paper's "M longest paths" filter).
	MaxPaths, MaxPathsPerContext int
	// DeltaFrac is the ST_target relaxation step Delta of Algorithm 1,
	// as a fraction of (ST_up - ST_low).
	DeltaFrac float64
	// BinarySearchSteps bounds the Step-1 binary search probes.
	BinarySearchSteps int
	// RoundThreshold is the LP pre-mapping threshold (paper: 0.95).
	RoundThreshold float64
	// CandidatesPerOp bounds each op's candidate PE set in the
	// delay-aware MILP; 0 (the default) admits every PE. Sampled sets
	// shrink the variable count but inject feasibility noise; they are
	// kept for the scaling ablation.
	CandidatesPerOp int
	// ContextsPerBatch solves this many contexts jointly per MILP.
	// 0 derives a batch size from the problem scale; negative forces a
	// single joint MILP over all contexts. Large instances use small
	// batches to keep the simplex basis tractable (DESIGN.md guard
	// rails); the stress budget rows chain across batches so the final
	// floorplan still satisfies ST_target globally.
	ContextsPerBatch int
	// MaxNodes bounds branch-and-bound nodes in the experimental
	// monolithic solver (the production dive is LP-budgeted instead).
	MaxNodes int
	// TimeLimit is the wall-clock budget of one ST_target probe
	// (including its lazy-path repair rounds); on timeout the probe
	// counts as infeasible. 0 means unbounded.
	TimeLimit time.Duration
	// Seed drives rotation selection and candidate sampling.
	Seed int64
	// WireObjective adds a tiny wirelength term to the (otherwise null)
	// objective, improving realized CPD without affecting feasibility.
	WireObjective bool
	// RotationRestarts is the number of randomized orientation
	// assignments evaluated in Step 2.1.
	RotationRestarts int
	// CritEpsNs is the slack tolerance identifying critical ops.
	CritEpsNs float64
	// Debug prints per-iteration progress of Algorithm 1 to stdout.
	// It is sugar for a Trace carrying a stdout obs.DebugSink: when
	// Trace is nil and Debug is set, Remap installs exactly that, so
	// debug output and trace events come from the same span stream and
	// cannot drift apart. With Trace set, Debug is ignored — attach a
	// DebugSink to the tracer instead.
	Debug bool
	// Trace receives structured spans, instant events, and (when a
	// registry is attached) metrics for the whole flow; see
	// internal/obs for the span taxonomy. nil — the default — disables
	// all instrumentation at zero cost, including zero allocations on
	// the solver hot paths.
	Trace *obs.Tracer
	// TraceParent, when live, nests this run's root span under it (how
	// RemapBoth groups its Freeze and Rotate arms, and how callers like
	// the bench harness attach runs to their own spans). The zero value
	// makes the run a trace root.
	TraceParent obs.Span
	// Flight, when non-nil, journals every decision Algorithm 1 makes —
	// Step-1 probes, relaxations, rotation scoring, pre-maps, B&B
	// events, warm-start outcomes, infeasibility attributions — into the
	// per-solve flight recorder (internal/flight); Remap also threads it
	// onto the context so the milp/lp layers underneath journal into the
	// same recorder. nil falls back to the context-carried recorder
	// (flight.WithRecorder); nil both ways disables journaling at zero
	// cost. Note: under RemapBoth the two concurrent arms interleave
	// their events in one journal; attach a recorder per Remap call when
	// per-arm ordering matters.
	Flight *flight.Recorder
	// LinearSTSearch runs Step 2.3 exactly as Algorithm 1 writes it:
	// ST_target swept linearly upward from the lower bound by Delta.
	// The default (false) bisects the same interval instead, reaching
	// the same smallest-feasible budget (within Delta) in O(log) probes
	// — important because every infeasible probe costs a full MILP
	// attempt. See the scaling experiment E4.
	LinearSTSearch bool
	// CPDBudgetNs overrides the delay budget of the path constraints.
	// 0 (the default) uses the original floorplan's CPD, exactly as the
	// paper's formulation (3) does — the re-mapped CPD never exceeds the
	// original. Setting it to the clock period instead (extension E8)
	// exploits the fact that any CPD within the clock period has
	// identical performance on a synchronous CGRRA: paths gain wire
	// slack, fewer ops are frozen, and MTTF gains grow — still with zero
	// real performance cost. Values below the original CPD are ignored.
	CPDBudgetNs float64
	// Step1MILP determines the Step-1 lower bound with the paper's
	// delay-unaware binary-search MILP. The default (false) uses the
	// LPT greedy leveler's achieved maximum, which is a feasible
	// delay-unaware budget computable in microseconds and within a few
	// percent of the MILP bound on these assignment-structured
	// instances (tested in TestStep1GreedyVsMILP).
	Step1MILP bool
	// WarmHeuristics enables simplex basis reuse inside the LP-rounding
	// heuristics: the per-batch relaxation warm-starts from the previous
	// probe's basis, and the rounding dive's re-solves reuse the last
	// optimal basis across pin rounds. This cuts simplex iterations
	// substantially, but a warm-started solve can land on a different
	// (equally optimal) LP vertex than a cold one, and the dive's pin
	// decisions read the vertex — so the produced floorplans may differ
	// from (and occasionally round worse than) the cold defaults, while
	// always remaining budget- and CPD-valid. Off by default so results
	// stay reproducible; the exact branch-and-bound layer (internal/milp)
	// always reuses bases, where it provably cannot change results.
	WarmHeuristics bool
	// PathRepairRounds bounds the lazy-constraint loop per ST_target:
	// when the re-timed floorplan's CPD regressed through a path that was
	// below the monitoring threshold, the violating paths are added to
	// the constraint set and the MILP re-solved at the same budget.
	// Algorithm 1 instead only relaxes ST_target in this case; the lazy
	// rows recover the paper's "no CPD increase observed" behaviour on
	// workloads where sub-threshold paths do regress (see DESIGN.md).
	PathRepairRounds int

	// prior carries a previous solve's artifacts for a seeded re-solve.
	// Unexported on purpose: the only entry point is RemapFromPrior,
	// which also opts into the warm heuristics the seeding relies on.
	prior *Prior
}

// Validate rejects nonsense option values with a descriptive error.
// Remap validates its options itself; Validate exists so configuration
// layers (flag parsing, the job server) can fail fast before queueing
// work. Note the asymmetry with the zero-value solver options: core's
// zero Options is NOT usable (PathThresholdFrac and RoundThreshold have
// no zero-selects-default), which is exactly what the first two checks
// catch.
func (o Options) Validate() error {
	if o.Mode != Freeze && o.Mode != Rotate {
		return fmt.Errorf("core: unknown Mode %d", int(o.Mode))
	}
	if o.PathThresholdFrac <= 0 || o.PathThresholdFrac > 1 {
		return fmt.Errorf("core: Options.PathThresholdFrac %g outside (0, 1] (start from DefaultOptions)", o.PathThresholdFrac)
	}
	if o.RoundThreshold <= 0.5 || o.RoundThreshold > 1 {
		return fmt.Errorf("core: Options.RoundThreshold %g outside (0.5, 1] (the paper uses 0.95)", o.RoundThreshold)
	}
	if o.MaxPaths < 0 || o.MaxPathsPerContext < 0 {
		return fmt.Errorf("core: negative path caps (MaxPaths %d, MaxPathsPerContext %d)", o.MaxPaths, o.MaxPathsPerContext)
	}
	if o.DeltaFrac < 0 || o.DeltaFrac > 1 {
		return fmt.Errorf("core: Options.DeltaFrac %g outside [0, 1]", o.DeltaFrac)
	}
	if o.BinarySearchSteps < 0 {
		return fmt.Errorf("core: Options.BinarySearchSteps %d is negative", o.BinarySearchSteps)
	}
	if o.CandidatesPerOp < 0 {
		return fmt.Errorf("core: Options.CandidatesPerOp %d is negative (0 admits every PE)", o.CandidatesPerOp)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("core: Options.MaxNodes %d is negative", o.MaxNodes)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("core: Options.TimeLimit %v is negative (0 means unbounded)", o.TimeLimit)
	}
	if o.RotationRestarts < 0 {
		return fmt.Errorf("core: Options.RotationRestarts %d is negative", o.RotationRestarts)
	}
	if o.CritEpsNs < 0 {
		return fmt.Errorf("core: Options.CritEpsNs %g is negative", o.CritEpsNs)
	}
	if o.PathRepairRounds < 0 {
		return fmt.Errorf("core: Options.PathRepairRounds %d is negative", o.PathRepairRounds)
	}
	if o.CPDBudgetNs < 0 {
		return fmt.Errorf("core: Options.CPDBudgetNs %g is negative (0 uses the original CPD)", o.CPDBudgetNs)
	}
	return nil
}

// DefaultOptions mirrors the paper's published parameters.
func DefaultOptions() Options {
	return Options{
		Mode:               Rotate,
		PathThresholdFrac:  0.8,
		MaxPaths:           2048,
		MaxPathsPerContext: 256,
		DeltaFrac:          1.0 / 16,
		BinarySearchSteps:  7,
		RoundThreshold:     0.95,
		CandidatesPerOp:    0,
		ContextsPerBatch:   0,
		MaxNodes:           600,
		TimeLimit:          2 * time.Minute,
		Seed:               1,
		WireObjective:      true,
		RotationRestarts:   24,
		CritEpsNs:          1e-6,
		PathRepairRounds:   8,
	}
}

// Stats records solver effort for the scaling experiments (E4).
//
// Duration convention: every duration in Stats is wall-clock, not CPU
// time — a phase that fans out over N workers accrues once, and a
// phase stalled on the scheduler still accrues. The per-phase fields
// (Step1Time, RotateTime, Step2Time, TimingTime) are additive effort
// totals: Stats.add sums them, so merged stats (e.g. a Rotate run that
// absorbed its Freeze fallback) report the combined work of every run
// folded in, and their sum can exceed the Elapsed of any single run.
// Elapsed is the opposite: the start-to-finish wall-clock of one run
// only. It is deliberately NOT summed by add — concurrent runs overlap
// in time, so adding their Elapsed would double-count the wall — and
// after a merge it still describes the run that carries the struct.
type Stats struct {
	// LPSolves counts simplex solves (the rounding dive's unit of work).
	// ILPSolves/ILPNodes count branch-and-bound usage; the production
	// dive replaces B&B, so they are non-zero only in experiments that
	// exercise the monolithic solver.
	LPSolves, ILPSolves int
	// ILPNodes is the total branch-and-bound node count.
	ILPNodes int
	// STProbes is the number of Step-1 binary-search probes.
	STProbes int
	// ProbeTimeouts counts Step-2.3 ST_target probes abandoned on
	// Options.TimeLimit. A run that found nothing with timeouts on the
	// books reports Status NodeLimit, not Infeasible — the budget, not
	// the formulation, may be what failed.
	ProbeTimeouts int
	// OuterIterations counts Algorithm-1 ST_target relaxations.
	OuterIterations int
	// SimplexIters is the total simplex iteration count (primal and
	// dual) across every LP solve — the flow's true unit of work, and
	// the quantity warm starting reduces.
	SimplexIters int
	// WarmStarts / WarmStartRejects count LP solves that reused a prior
	// basis snapshot versus snapshots the LP layer rejected (cold
	// fallback). Their ratio is the health metric of the basis-reuse
	// plumbing: rejects should be rare.
	WarmStarts, WarmStartRejects int
	// Step1Time is wall-clock spent determining the Step-1 stress
	// lower bound (greedy level or binary-search MILP).
	Step1Time time.Duration
	// RotateTime is wall-clock spent in Step 2.1 critical-path
	// freezing/rotation (orientation search included).
	RotateTime time.Duration
	// Step2Time is wall-clock spent solving the Step-2.3 assignment
	// MILPs (all batches of all probes, rounding dives included). The
	// STA verification between probes is accounted under TimingTime,
	// so the two do not overlap.
	Step2Time time.Duration
	// TimingTime is wall-clock spent in static timing analysis: the
	// initial baseline analysis, each probe's CPD verification, and
	// violated-path enumeration for the lazy repair rounds.
	TimingTime time.Duration
	// Elapsed is this run's total start-to-finish wall-clock time (see
	// the duration convention above: unlike the phase fields it is not
	// aggregated by add).
	Elapsed time.Duration
}

// noteLP folds one LP solve into the counters and mirrors it into the
// tracer's metrics registry (no-op without one). warmTried reports
// whether a warm-start basis was offered to the solver.
func (st *Stats) noteLP(tr *obs.Tracer, sol *lp.Solution, warmTried bool) {
	st.LPSolves++
	st.SimplexIters += sol.Iters
	reg := tr.Registry()
	reg.Counter("agingfp_lp_solves_total").Inc()
	reg.Counter("agingfp_simplex_iters_total").Add(int64(sol.Iters))
	if warmTried {
		if sol.Warm {
			st.WarmStarts++
			reg.Counter("agingfp_warm_starts_total").Inc()
		} else {
			// The reject itself is counted by the LP layer's labeled
			// agingfp_lp_warmstart_rejects_total{reason=...} counter at
			// the point where the reason is known; here only the Stats
			// field advances.
			st.WarmStartRejects++
		}
	}
}

// add accumulates other into st. Every counter and every per-phase
// duration aggregates; only Elapsed is excluded, by the convention
// documented on Stats (it is one run's wall-clock span, and concurrent
// runs overlap, so summing it would double-count the wall).
func (st *Stats) add(other Stats) {
	st.LPSolves += other.LPSolves
	st.ILPSolves += other.ILPSolves
	st.ILPNodes += other.ILPNodes
	st.STProbes += other.STProbes
	st.ProbeTimeouts += other.ProbeTimeouts
	st.OuterIterations += other.OuterIterations
	st.SimplexIters += other.SimplexIters
	st.WarmStarts += other.WarmStarts
	st.WarmStartRejects += other.WarmStartRejects
	st.Step1Time += other.Step1Time
	st.RotateTime += other.RotateTime
	st.Step2Time += other.Step2Time
	st.TimingTime += other.TimingTime
}

// Result is the outcome of a re-mapping run.
type Result struct {
	// Status classifies the run's outcome with the solver layer's
	// vocabulary (milp.Status):
	//
	//	Optimal    — the baseline stress was already perfectly level;
	//	             nothing to do.
	//	Feasible   — the search produced a budget- and CPD-valid
	//	             floorplan (check Improved for whether it beats the
	//	             baseline).
	//	NodeLimit  — no floorplan found, but at least one probe was
	//	             abandoned on Options.TimeLimit, so infeasibility was
	//	             NOT proven; retrying with a larger budget (or a
	//	             relaxed ST_target) may succeed.
	//	Canceled   — the context was canceled mid-run; the Result carries
	//	             the statistics gathered so far and the baseline
	//	             mapping.
	//	Infeasible — every probe genuinely failed; the flow kept the
	//	             original floorplan.
	Status milp.Status
	// Mapping is the aging-aware floorplan (equals the input mapping if
	// no improvement was possible).
	Mapping arch.Mapping
	// STTarget is the accumulated-stress budget the solution satisfies.
	STTarget float64
	// STLowerBound is Step 1's delay-unaware lower bound.
	STLowerBound float64
	// OrigMaxStress / NewMaxStress are the worst per-PE accumulated
	// stress before and after.
	OrigMaxStress, NewMaxStress float64
	// OrigCPD / NewCPD are the critical path delays before and after;
	// the flow guarantees NewCPD <= OrigCPD.
	OrigCPD, NewCPD float64
	// Improved reports whether the mapping changed.
	Improved bool
	// FallbackToFreeze reports that this result was produced in Rotate
	// mode but the rotated search found nothing better, so the Freeze
	// floorplan was substituted. Table-I "rotate" columns carrying this
	// flag are really freeze solutions and must not be read as evidence
	// that rotation helped.
	FallbackToFreeze bool
	// FrozenOps records the Step-2.1 frozen critical-op positions the
	// solution honors (rotated in Rotate mode, original in Freeze).
	// Together with Bases and the ST bracket it forms the artifact set
	// a delta re-solve of a near-identical design seeds from (see
	// Prior / RemapFromPrior).
	FrozenOps map[int]arch.Coord
	// Bases holds the final per-batch LP basis snapshots recorded
	// during the search, aligned with the run's context batching. nil
	// entries mean that batch never reached an optimal relaxation.
	Bases []*lp.Basis
	// Resume describes how a Prior was used; nil for cold solves.
	Resume *ResumeInfo
	// Stats records solver effort.
	Stats Stats
}

// ResumeInfo reports which parts of a Prior a seeded re-solve actually
// reused — the honesty ledger for the delta API's "warm" claim.
type ResumeInfo struct {
	// FrozenReused: Step 2.1 was skipped because the prior's frozen
	// rotations still cover this design's critical ops.
	FrozenReused bool
	// BasesSeeded is how many per-batch basis snapshots were imported
	// (each may still be rejected at the LP layer if the batch's shape
	// drifted; see Stats.WarmStartRejects).
	BasesSeeded int
	// BracketHit: the prior's ST_target bracket was probed first and
	// was feasible, collapsing the budget search to O(1) probes.
	BracketHit bool
}

// MTTFReport carries the reliability evaluation of one floorplan.
type MTTFReport struct {
	// Hours is the fabric MTTF.
	Hours float64
	// LimitingPE is the first-failing PE.
	LimitingPE arch.Coord
	// MaxStress is the worst per-PE accumulated stress.
	MaxStress float64
	// MaxTempK is the hottest steady-state PE temperature.
	MaxTempK float64
	// Temp is the full temperature map (kelvin, [y][x]).
	Temp [][]float64
	// Stress is the accumulated stress map.
	Stress arch.StressMap
}

// Evaluate computes the MTTF of design d under mapping m: stress map ->
// thermal map -> first-failing PE under the NBTI model (§III).
func Evaluate(d *arch.Design, m arch.Mapping, model nbti.Model, tcfg thermal.Config) (*MTTFReport, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	stress := arch.ComputeStress(d, m)
	power := thermal.PowerFromStress(stress, d.NumContexts, tcfg)
	temp, err := thermal.Solve(power, tcfg)
	if err != nil {
		return nil, err
	}
	hours, x, y, err := model.FabricMTTF(stress, temp, d.NumContexts)
	if err != nil {
		return nil, err
	}
	return &MTTFReport{
		Hours:      hours,
		LimitingPE: arch.Coord{X: x, Y: y},
		MaxStress:  stress.Max(),
		MaxTempK:   thermal.MaxK(temp),
		Temp:       temp,
		Stress:     stress,
	}, nil
}

// MTTFIncrease evaluates the headline metric of Table I: the ratio of the
// re-mapped floorplan's MTTF to the original floorplan's MTTF.
func MTTFIncrease(d *arch.Design, orig, remapped arch.Mapping, model nbti.Model, tcfg thermal.Config) (float64, error) {
	before, err := Evaluate(d, orig, model, tcfg)
	if err != nil {
		return 0, err
	}
	after, err := Evaluate(d, remapped, model, tcfg)
	if err != nil {
		return 0, err
	}
	return after.Hours / before.Hours, nil
}
