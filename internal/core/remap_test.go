package core

import (
	"context"
	"math/rand"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
	"agingfp/internal/timing"
)

// skipUnderRace skips multi-second full-flow tests when the race
// detector is on: they contain no goroutines of their own and the
// ~15x scheduler slowdown would push the package past any sane CI
// timeout. The -race run keeps the tests that do fork goroutines.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("skipping heavyweight sequential flow test under -race")
	}
}

// buildSmall builds a placed small design for flow tests.
func buildSmall(t *testing.T, g *dfg.Graph, w, h int) (*arch.Design, arch.Mapping) {
	t.Helper()
	d, err := hls.BuildDesign("test", g, arch.Fabric{W: w, H: h}, hls.DefaultConfig())
	if err != nil {
		t.Fatalf("BuildDesign: %v", err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	return d, m
}

func checkRemapInvariants(t *testing.T, d *arch.Design, m0 arch.Mapping, r *Result) {
	t.Helper()
	if err := arch.ValidateMapping(d, r.Mapping); err != nil {
		t.Fatalf("remapped floorplan illegal: %v", err)
	}
	if r.NewCPD > r.OrigCPD+1e-9 {
		t.Fatalf("CPD regressed: %.4f -> %.4f", r.OrigCPD, r.NewCPD)
	}
	// Re-verify CPD independently.
	res := timing.Analyze(d, r.Mapping)
	if res.CPD > r.OrigCPD+1e-9 {
		t.Fatalf("independent STA shows CPD regression: %.4f -> %.4f", r.OrigCPD, res.CPD)
	}
	if r.NewMaxStress > r.OrigMaxStress+1e-9 {
		t.Fatalf("max stress regressed: %.4f -> %.4f", r.OrigMaxStress, r.NewMaxStress)
	}
	// Stress conservation: total stress is invariant under re-binding.
	s0 := arch.ComputeStress(d, m0)
	s1 := arch.ComputeStress(d, r.Mapping)
	if diff := s0.Total() - s1.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total stress not conserved: %.6f vs %.6f", s0.Total(), s1.Total())
	}
}

func TestRemapFIRFreeze(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	opts := DefaultOptions()
	opts.Mode = Freeze
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
	if !r.Improved {
		t.Errorf("expected stress improvement on a sparse fabric (max %.3f, mean lower bound %.3f)",
			r.OrigMaxStress, r.STLowerBound)
	}
}

func TestRemapFIRRotate(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	opts := DefaultOptions()
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
	if !r.Improved {
		t.Errorf("expected improvement")
	}
}

func TestRemapDCT(t *testing.T) {
	d, m0 := buildSmall(t, dfg.DCT8(), 5, 5)
	r, err := Remap(context.Background(), d, m0, DefaultOptions())
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
}

func TestRemapChunkedMatchesInvariants(t *testing.T) {
	d, m0 := buildSmall(t, dfg.IIR(6), 6, 6)
	opts := DefaultOptions()
	opts.ContextsPerBatch = 2
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap chunked: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
}

func TestRemapMTTFRatioAtLeastOne(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	r, err := Remap(context.Background(), d, m0, DefaultOptions())
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	ratio, err := MTTFIncrease(d, m0, r.Mapping, nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		t.Fatalf("MTTFIncrease: %v", err)
	}
	if ratio < 1.0-1e-9 {
		t.Fatalf("MTTF ratio %.3f < 1", ratio)
	}
	if r.Improved && ratio <= 1.0 {
		t.Errorf("stress improved but MTTF ratio %.3f not > 1", ratio)
	}
}

func TestGreedyLevelLegalAndLevel(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	m := GreedyLevel(d, nil)
	if err := arch.ValidateMapping(d, m); err != nil {
		t.Fatalf("greedy mapping illegal: %v", err)
	}
	g := arch.ComputeStress(d, m)
	o := arch.ComputeStress(d, m0)
	if g.Max() > o.Max()+1e-9 {
		t.Fatalf("greedy leveling made stress worse: %.3f vs %.3f", g.Max(), o.Max())
	}
}

func TestGreedyRespectsFrozen(t *testing.T) {
	d, _ := buildSmall(t, dfg.FIR(8), 4, 4)
	frozen := map[int]arch.Coord{0: {X: 3, Y: 3}}
	m := GreedyLevel(d, frozen)
	if m[0] != (arch.Coord{X: 3, Y: 3}) {
		t.Fatalf("frozen op moved to %v", m[0])
	}
	if err := arch.ValidateMapping(d, m); err != nil {
		t.Fatalf("mapping illegal: %v", err)
	}
}

func TestOrientIsometry(t *testing.T) {
	f := arch.Fabric{W: 8, H: 8}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := arch.Coord{X: rng.Intn(8), Y: rng.Intn(8)}
		b := arch.Coord{X: rng.Intn(8), Y: rng.Intn(8)}
		for o := 0; o < numOrientations; o++ {
			oa, ob := orient(a, o, f), orient(b, o, f)
			if !f.Contains(oa) || !f.Contains(ob) {
				t.Fatalf("orient %d moved %v/%v off fabric: %v/%v", o, a, b, oa, ob)
			}
			if oa.Dist(ob) != a.Dist(b) {
				t.Fatalf("orient %d not isometric: %v-%v dist %d -> %d",
					o, a, b, a.Dist(b), oa.Dist(ob))
			}
		}
	}
}

func TestOrientBijection(t *testing.T) {
	f := arch.Fabric{W: 6, H: 6}
	for o := 0; o < numOrientations; o++ {
		seen := make(map[arch.Coord]bool)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				c := orient(arch.Coord{X: x, Y: y}, o, f)
				if seen[c] {
					t.Fatalf("orientation %d maps two cells to %v", o, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestOrientationPoolRules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orients := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// C <= 8: all distinct.
	for _, c := range []int{2, 4, 8} {
		pool := orientationPool(orients, c, rng)
		if len(pool) != c {
			t.Fatalf("pool length %d != %d", len(pool), c)
		}
		seen := map[int]bool{}
		for _, o := range pool {
			if seen[o] {
				t.Fatalf("C=%d: orientation %d repeated", c, o)
			}
			seen[o] = true
		}
	}
	// C > 8: counts between C/8 and C/8+1.
	for _, c := range []int{9, 16, 27} {
		pool := orientationPool(orients, c, rng)
		counts := map[int]int{}
		for _, o := range pool {
			counts[o]++
		}
		base := c / 8
		for o, n := range counts {
			if n < base || n > base+1 {
				t.Fatalf("C=%d: orientation %d appears %d times, want %d or %d", c, o, n, base, base+1)
			}
		}
	}
}

func TestRotateFreezeModeKeepsPositions(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(8), 4, 4)
	res := timing.Analyze(d, m0)
	crit := timing.CriticalOps(d, m0, res, 1e-6)
	opts := DefaultOptions()
	opts.Mode = Freeze
	rng := rand.New(rand.NewSource(1))
	pos := rotateFrozen(context.Background(), d, m0, crit, opts, rng, obs.Span{})
	for op, pe := range pos {
		if pe != m0[op] {
			t.Fatalf("freeze mode moved op %d: %v -> %v", op, m0[op], pe)
		}
	}
}
