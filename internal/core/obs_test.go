package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"agingfp/internal/dfg"
	"agingfp/internal/lp"
	"agingfp/internal/obs"
)

// traceEvent mirrors the JSONL sink's wire format (see obs/sinks.go);
// parent and instant are omitted when zero/false.
type traceEvent struct {
	Name    string                 `json:"name"`
	ID      uint64                 `json:"id"`
	Parent  uint64                 `json:"parent"`
	StartUs int64                  `json:"start_us"`
	DurUs   int64                  `json:"dur_us"`
	Instant bool                   `json:"instant"`
	Attrs   map[string]interface{} `json:"attrs"`
}

// TestRemapObservability is the end-to-end acceptance check for the
// tracing layer: a traced Remap must produce a parseable JSONL stream
// whose root span covers (within tolerance) Stats.Elapsed, whose child
// spans nest inside their parents, and whose metric counters agree with
// the Stats the flow reports.
func TestRemapObservability(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)

	var buf bytes.Buffer
	js := obs.NewJSONLSink(&buf)
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Mode = Freeze // no rotation fallback: one run, one root span
	opts.Trace = obs.New(js).WithMetrics(reg)

	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
	if err := js.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Every line must parse, IDs must be unique, and parents resolve.
	var events []traceEvent
	byID := map[uint64]traceEvent{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e traceEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if _, dup := byID[e.ID]; dup && !e.Instant {
			t.Fatalf("duplicate span id %d (%s)", e.ID, e.Name)
		}
		events = append(events, e)
		byID[e.ID] = e
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}

	var root *traceEvent
	for i := range events {
		if events[i].Name == "core.remap" {
			if root != nil {
				t.Fatal("more than one core.remap root span")
			}
			root = &events[i]
		}
	}
	if root == nil {
		t.Fatal("no core.remap root span")
	}
	if root.Parent != 0 {
		t.Fatalf("root span has parent %d", root.Parent)
	}

	// Parent resolution and interval nesting. The root is emitted last
	// (spans emit at End), so resolve against the full ID set.
	for _, e := range events {
		if e.Parent == 0 {
			continue
		}
		p, ok := byID[e.Parent]
		if !ok {
			t.Fatalf("event %s (id %d) has unknown parent %d", e.Name, e.ID, e.Parent)
		}
		const slopUs = 2000 // clock reads are not atomic with span bookkeeping
		if e.StartUs < p.StartUs-slopUs || e.StartUs+e.DurUs > p.StartUs+p.DurUs+slopUs {
			t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
				e.Name, e.StartUs, e.StartUs+e.DurUs, p.Name, p.StartUs, p.StartUs+p.DurUs)
		}
	}

	// The root span and Stats.Elapsed time the same run; the root opens
	// slightly later (after input validation and the initial STA), so it
	// must be contained in Elapsed and close to it.
	rootDur := time.Duration(root.DurUs) * time.Microsecond
	if rootDur > r.Stats.Elapsed+10*time.Millisecond {
		t.Errorf("root span %v exceeds Stats.Elapsed %v", rootDur, r.Stats.Elapsed)
	}
	if gap := r.Stats.Elapsed - rootDur; gap > 500*time.Millisecond {
		t.Errorf("root span %v trails Stats.Elapsed %v by %v", rootDur, r.Stats.Elapsed, gap)
	}

	// Counters must agree exactly with the Stats the flow printed.
	for _, c := range []struct {
		name string
		want int
	}{
		{"agingfp_lp_solves_total", r.Stats.LPSolves},
		{"agingfp_simplex_iters_total", r.Stats.SimplexIters},
		{"agingfp_st_probes_total", r.Stats.STProbes},
		{"agingfp_outer_iterations_total", r.Stats.OuterIterations},
		{"agingfp_warm_starts_total", r.Stats.WarmStarts},
	} {
		if got := reg.Counter(c.name).Value(); got != int64(c.want) {
			t.Errorf("%s = %d, want %d (Stats)", c.name, got, c.want)
		}
	}

	// Warm-start rejects are counted per reason (in the LP layer, where
	// the reason is known); the labeled family must sum to the Stats
	// total.
	var rejects int64
	for _, reason := range []string{"dim_mismatch", "stale_basis", "singular"} {
		rejects += reg.Counter(obs.Labeled(lp.WarmRejectsMetric, "reason", reason)).Value()
	}
	if rejects != int64(r.Stats.WarmStartRejects) {
		t.Errorf("%s (summed over reasons) = %d, want %d (Stats)",
			lp.WarmRejectsMetric, rejects, r.Stats.WarmStartRejects)
	}

	// Phase gauges mirror the Stats phase durations (same run, same
	// registry, so they must match to float precision).
	for _, g := range []struct {
		name string
		want time.Duration
	}{
		{`agingfp_phase_seconds{phase="step1"}`, r.Stats.Step1Time},
		{`agingfp_phase_seconds{phase="rotate"}`, r.Stats.RotateTime},
		{`agingfp_phase_seconds{phase="step2"}`, r.Stats.Step2Time},
		{`agingfp_phase_seconds{phase="timing"}`, r.Stats.TimingTime},
	} {
		got := reg.Gauge(g.name).Value()
		if diff := got - g.want.Seconds(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", g.name, got, g.want.Seconds())
		}
	}

	// Phase durations are disjoint slices of the run: their sum cannot
	// exceed the run's wall clock.
	phaseSum := r.Stats.Step1Time + r.Stats.RotateTime + r.Stats.Step2Time + r.Stats.TimingTime
	if phaseSum > r.Stats.Elapsed+10*time.Millisecond {
		t.Errorf("phase sum %v exceeds Elapsed %v", phaseSum, r.Stats.Elapsed)
	}
}

// TestRemapUntracedNoTraceState pins that an untraced run leaves no
// observability residue: nil tracer, nil registry, zero Options cost.
func TestRemapUntracedStatsPhases(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	opts := DefaultOptions()
	opts.Mode = Freeze
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	// Phase accounting works without a tracer: the flow did LP work, so
	// Step2Time must be nonzero and bounded by the wall clock.
	if r.Stats.LPSolves > 0 && r.Stats.Step2Time <= 0 {
		t.Error("Step2Time not accrued on an untraced run")
	}
	if r.Stats.Step2Time > r.Stats.Elapsed {
		t.Errorf("Step2Time %v exceeds Elapsed %v", r.Stats.Step2Time, r.Stats.Elapsed)
	}
}
