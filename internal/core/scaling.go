package core

import (
	"context"
	"math/rand"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/lp"
	"agingfp/internal/milp"
	"agingfp/internal/obs"
	"agingfp/internal/timing"
)

// buildFullProblem constructs the complete delay-aware formulation (all
// contexts in one batch, Freeze mode) at the given stress budget; shared
// by the two scaling-experiment entry points so they solve the identical
// MILP.
func buildFullProblem(d *arch.Design, m0 arch.Mapping, stTarget float64, opts Options, rng *rand.Rand) *batchProblem {
	res0 := timing.Analyze(d, m0)
	stress0 := arch.ComputeStress(d, m0)
	crit := timing.CriticalOps(d, m0, res0, opts.CritEpsNs)
	frozenPos := make(map[int]arch.Coord, len(crit))
	for op := range crit {
		frozenPos[op] = m0[op]
	}
	paths := timing.EnumeratePaths(d, m0, res0, timing.EnumerateOptions{
		ThresholdFrac: opts.PathThresholdFrac,
		MaxPaths:      opts.MaxPaths,
		MaxPerContext: opts.MaxPathsPerContext,
	})
	inBatch := make(map[int]bool, d.NumContexts)
	for c := 0; c < d.NumContexts; c++ {
		inBatch[c] = true
	}
	var movable []int
	for op := 0; op < d.NumOps(); op++ {
		if _, fr := frozenPos[op]; !fr {
			movable = append(movable, op)
		}
	}
	committed := make([]float64, d.Fabric.NumPEs())
	for op, pe := range frozenPos {
		committed[d.Fabric.Index(pe)] += d.StressRate(op)
	}
	cands := candidateSets(d, m0, stress0, frozenPos, movable, opts.CandidatesPerOp, rng)
	return buildBatch(d, m0, inBatch, frozenPos, cands, paths, stTarget, committed, res0.CPD, opts)
}

// SolveRemapOnce solves one delay-aware re-binding MILP at a fixed
// ST_target with the production two-step scheme (LP relaxation + rounding
// dive). It exists for the E4 scaling experiment; the full flow is Remap.
func SolveRemapOnce(ctx context.Context, d *arch.Design, m0 arch.Mapping, stTarget float64, opts Options) (arch.Mapping, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	bp := buildFullProblem(d, m0, stTarget, opts, rng)
	stats := &Stats{}
	parent := opts.Trace.Start("core.solve_once", obs.Float("st_target", stTarget))
	defer parent.End()
	asn, ok, _, err := solveBatch(ctx, bp, opts, stats, rng, time.Time{}, nil, 0, parent)
	if err != nil || !ok {
		return nil, false, err
	}
	m := m0.Clone()
	for op, pe := range asn {
		m[op] = pe
	}
	return m, true, nil
}

// SolveRemapMonolithic solves the identical formulation with plain
// branch-and-bound and no LP pre-mapping — the §V.A monolithic ILP whose
// poor scaling motivated the paper's two-step MILP. nodeCap bounds the
// search.
func SolveRemapMonolithic(ctx context.Context, d *arch.Design, m0 arch.Mapping, stTarget float64, opts Options, nodeCap int) (*milp.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	bp := buildFullProblem(d, m0, stTarget, opts, rng)
	if bp.infeasibleReason != "" {
		return &milp.Result{Status: milp.Infeasible}, nil
	}
	return milp.Solve(ctx, &milp.Problem{LP: bp.lp, IntVars: bp.ints}, milp.Options{
		MaxNodes:    nodeCap,
		StopAtFirst: true,
		Branching:   milp.MostFractional,
		Trace:       opts.Trace,
	})
}

// Test/diagnostic accessors (used by cmd/profremap and benchmarks).

// BuildFullProblemForTest exposes the single-batch formulation builder.
func BuildFullProblemForTest(d *arch.Design, m0 arch.Mapping, stTarget float64, opts Options, rng *rand.Rand) interface{} {
	return buildFullProblem(d, m0, stTarget, opts, rng)
}

// BPRows returns the row count of a problem built by
// BuildFullProblemForTest.
func BPRows(bp interface{}) int { return bp.(*batchProblem).lp.NumRows() }

// BPVars returns the variable count.
func BPVars(bp interface{}) int { return bp.(*batchProblem).lp.NumVars() }

// BPLP returns the underlying LP.
func BPLP(bp interface{}) *lp.Problem { return bp.(*batchProblem).lp }
