package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/flight"
	"agingfp/internal/milp"
	"agingfp/internal/obs"
	"agingfp/internal/timing"
)

// Remap runs the full aging-aware re-mapping flow (Algorithm 1) on design
// d starting from the aging-unaware floorplan m0, and returns the new
// floorplan together with the achieved stress target and CPD bookkeeping.
//
// The returned mapping's critical path delay never exceeds the delay
// budget — the original floorplan's CPD by default (Options.CPDBudgetNs
// can relax it toward the clock period). If no strictly better stress
// level can be reached under that guarantee, the original mapping is
// returned with Improved == false.
//
// Cancellation is cooperative: ctx is polled at every ST_target probe,
// every context batch, every branch-and-bound node and (via the LP
// layer) inside the simplex loops, so a canceled or expired context
// makes Remap return promptly. A canceled run returns a partial Result
// (Status milp.Canceled, the baseline mapping, statistics so far)
// alongside ctx.Err(); existing synchronous callers pass
// context.Background().
func Remap(ctx context.Context, d *arch.Design, m0 arch.Mapping, opts Options) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := arch.ValidateMapping(d, m0); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// Observability: explicit Options.Trace wins; otherwise fall back to
	// the context-carried tracer (how server-traced jobs reach this layer),
	// and only then to the opts.Debug sugar that installs a stdout debug
	// sink, so the historical -debug trace and the span stream are one and
	// the same.
	if opts.Trace == nil {
		opts.Trace = obs.TracerFrom(ctx)
	}
	if opts.Trace == nil && opts.Debug {
		opts.Trace = obs.New(obs.NewDebugSink(os.Stdout))
	}
	tr := opts.Trace
	reg := tr.Registry()
	rep := obs.ReporterFrom(ctx)

	// The flight recorder follows the same precedence (explicit option,
	// then context), and the context is re-wrapped with the resolved
	// recorder so the milp/lp layers underneath journal into it without
	// per-call wiring.
	if opts.Flight == nil {
		opts.Flight = flight.FromContext(ctx)
	}
	ctx = flight.WithRecorder(ctx, opts.Flight)

	rng := rand.New(rand.NewSource(opts.Seed))
	staT := time.Now()
	res0 := timing.Analyze(d, m0)
	staDur := time.Since(staT)
	stress0 := arch.ComputeStress(d, m0)
	stUp, stLow := stress0.Max(), stress0.Mean()

	// The delay budget every path must respect. The paper uses the
	// original CPD; extension E8 relaxes it toward the clock period
	// (identical synchronous performance, more wire slack).
	budget := res0.CPD
	if opts.CPDBudgetNs > budget {
		budget = opts.CPDBudgetNs
	}

	result := &Result{
		Mapping:       m0,
		OrigMaxStress: stUp,
		NewMaxStress:  stUp,
		OrigCPD:       res0.CPD,
		NewCPD:        res0.CPD,
		STTarget:      stUp,
		STLowerBound:  stLow,
	}
	result.Stats.TimingTime += staDur

	// The run's root span; nested under TraceParent when the caller
	// provided one (RemapBoth arms, bench runs, the freeze fallback).
	// The context's trace/correlation ID, when present, is stamped on the
	// root so the span stream joins against the server's request log.
	rootAttrs := []obs.Attr{obs.String("mode", opts.Mode.String()),
		obs.Int64("seed", opts.Seed), obs.Int("ops", d.NumOps()), obs.Int("contexts", d.NumContexts)}
	if id := obs.TraceIDFrom(ctx); id != "" {
		rootAttrs = append(rootAttrs, obs.String("trace_id", id))
	}
	var root obs.Span
	if opts.TraceParent.Active() {
		root = opts.TraceParent.Child("core.remap", rootAttrs...)
	} else {
		root = tr.Start("core.remap", rootAttrs...)
	}
	defer func() {
		result.Stats.Elapsed = time.Since(start)
		// Phase gauges accumulate across runs sharing the registry
		// (both RemapBoth arms, fallback runs); they are cumulative
		// wall-clock seconds per phase, mirroring the Stats fields.
		reg.Gauge(`agingfp_phase_seconds{phase="step1"}`).Add(result.Stats.Step1Time.Seconds())
		reg.Gauge(`agingfp_phase_seconds{phase="rotate"}`).Add(result.Stats.RotateTime.Seconds())
		reg.Gauge(`agingfp_phase_seconds{phase="step2"}`).Add(result.Stats.Step2Time.Seconds())
		reg.Gauge(`agingfp_phase_seconds{phase="timing"}`).Add(result.Stats.TimingTime.Seconds())
		// Distribution counterparts of the cumulative gauges: one
		// observation per Remap run, so operators get latency quantiles
		// per phase and for whole runs, not just totals.
		reg.Histogram(`agingfp_phase_duration_seconds{phase="step1"}`).Observe(result.Stats.Step1Time)
		reg.Histogram(`agingfp_phase_duration_seconds{phase="rotate"}`).Observe(result.Stats.RotateTime)
		reg.Histogram(`agingfp_phase_duration_seconds{phase="step2"}`).Observe(result.Stats.Step2Time)
		reg.Histogram(`agingfp_phase_duration_seconds{phase="timing"}`).Observe(result.Stats.TimingTime)
		reg.Histogram("agingfp_remap_seconds").Observe(result.Stats.Elapsed)
		root.End(
			obs.Bool("improved", result.Improved),
			obs.Float("st_target", result.STTarget),
			obs.Float("new_max_stress", result.NewMaxStress),
			obs.Int("outer_iterations", result.Stats.OuterIterations))
	}()

	if stUp-stLow < 1e-12 {
		result.Status = milp.Optimal
		return result, nil // stress already perfectly level
	}

	// fail classifies an error return: a canceled context yields the
	// partial result (baseline mapping, stats so far) with Status
	// Canceled alongside ctx.Err(); anything else is a genuine failure.
	fail := func(err error) (*Result, error) {
		if cerr := ctx.Err(); cerr != nil {
			result.Status = milp.Canceled
			return result, cerr
		}
		return nil, err
	}

	perBatch := opts.ContextsPerBatch
	switch {
	case perBatch == 0:
		perBatch = autoBatch(d, 250)
	case perBatch < 0:
		perBatch = d.NumContexts
	}
	batchList := batches(d.NumContexts, perBatch)

	// Step 1: delay-unaware lower bound for ST_target. The default uses
	// the LPT level (an achievable delay-unaware budget); Step1MILP runs
	// the paper's binary-search MILP instead.
	s1T := time.Now()
	s1 := root.Child("core.step1", obs.Bool("milp", opts.Step1MILP))
	rep.Update(func(p *obs.Progress) { p.Phase = "step1" })
	var stLB float64
	if opts.Step1MILP {
		var err error
		stLB, err = stressLowerBound(ctx, d, m0, stress0, stLow, stUp, batchList, opts, rng, &result.Stats, s1)
		if err != nil {
			s1.End(obs.String("status", "error"))
			return fail(err)
		}
	} else {
		stLB = arch.ComputeStress(d, GreedyLevel(d, nil)).Max()
		if stLB < stLow {
			stLB = stLow
		}
		result.Stats.STProbes++
		reg.Counter("agingfp_st_probes_total").Inc()
		opts.Flight.Record(flight.Event{Kind: flight.KindStep1Probe,
			ST: stLB, Status: "feasible", Cause: "greedy"})
	}
	result.STLowerBound = stLB
	result.Stats.Step1Time += time.Since(s1T)
	s1.End(obs.Float("st_lower_bound", stLB), obs.Int("probes", result.Stats.STProbes))

	// Step 2.1: critical-path freezing (and rotation in Rotate mode).
	// With a relaxed budget no path is critical and nothing is frozen.
	crit := map[int]bool{}
	if budget <= res0.CPD+1e-12 {
		crit = timing.CriticalOps(d, m0, res0, opts.CritEpsNs)
	}
	rotT := time.Now()
	rsp := root.Child("core.rotate", obs.String("mode", opts.Mode.String()), obs.Int("critical_ops", len(crit)))
	rep.Update(func(p *obs.Progress) { p.Phase = "rotate" })
	if opts.prior != nil {
		result.Resume = &ResumeInfo{}
	}
	var frozenPos map[int]arch.Coord
	// A seeded re-solve first tries the prior's frozen rotations: when
	// they still cover every critical op the rotation search is skipped
	// outright. Only meaningful in Rotate mode — Freeze recomputes the
	// original positions trivially. A bad reuse cannot corrupt results:
	// the probes verify CPD against the budget regardless of where the
	// frozen shapes sit.
	if opts.Mode == Rotate {
		if fp, ok := priorFrozen(d, crit, opts.prior); ok {
			frozenPos = fp
			result.Resume.FrozenReused = true
		}
	}
	if frozenPos == nil {
		frozenPos = rotateFrozen(ctx, d, m0, crit, opts, rng, rsp)
	}
	result.Stats.RotateTime += time.Since(rotT)
	rsp.End(obs.Int("frozen_ops", len(frozenPos)))
	if err := ctx.Err(); err != nil {
		return fail(err)
	}

	// Step 2.2: monitored path set and wire budgets (paths within 20%
	// of the delay budget). Under a relaxed budget the initial set may
	// be empty; the lazy repair rounds then supply any needed rows.
	var paths []*timing.Path
	if frac := opts.PathThresholdFrac * budget / res0.CPD; frac <= 1 {
		paths = timing.EnumeratePaths(d, m0, res0, timing.EnumerateOptions{
			ThresholdFrac: frac,
			MaxPaths:      opts.MaxPaths,
			MaxPerContext: opts.MaxPathsPerContext,
		})
	}

	// The frozen ops alone put a floor under any achievable ST_target:
	// a PE stacked with frozen critical ops in several contexts cannot be
	// relieved (§V.B.1 — the motivation for rotation). Start there.
	frozenFloor := make([]float64, d.Fabric.NumPEs())
	for op, pe := range frozenPos {
		frozenFloor[d.Fabric.Index(pe)] += d.StressRate(op)
	}
	stStart := stLB
	for _, v := range frozenFloor {
		if v > stStart {
			stStart = v
		}
	}

	// Step 2.3: solve, relaxing ST_target by Delta on failure.
	delta := (stUp - stLow) * opts.DeltaFrac
	if delta <= 0 {
		delta = stUp/16 + 1e-9
	}
	repairRounds := opts.PathRepairRounds
	if repairRounds < 1 {
		repairRounds = 1
	}
	pathSeen := make(map[string]bool, len(paths))
	for _, p := range paths {
		pathSeen[pathIdent(p)] = true
	}

	// Basis snapshots shared across ST_target probes (consecutive probes
	// rebuild the same per-batch LPs with only the stress budget and lazy
	// path rows changed). The cache always records — the final slots are
	// exported on Result.Bases for delta re-solves — but serves bases
	// back only under Options.WarmHeuristics: the relaxation vertex
	// seeds the rounding dive's pin decisions, and a warm-started
	// relaxation lands on a different (equally optimal) vertex than a
	// cold one, so serving trades bit-identical floorplans for speed.
	probeCache := newWarmCache(len(batchList), opts.WarmHeuristics)
	if opts.prior != nil {
		result.Resume.BasesSeeded = probeCache.seed(opts.prior.Bases)
	}

	// probe attempts one ST_target: MILP solve (with lazy-path repair
	// rounds) followed by the Algorithm-1 CPD verification. Each probe
	// runs under a wall-clock budget (Options.TimeLimit) so a single
	// pathological budget cannot stall the whole search — on timeout the
	// probe counts as infeasible and the schedule moves on.
	probeHist := reg.Histogram("agingfp_probe_seconds")
	outerCtr := reg.Counter("agingfp_outer_iterations_total")
	// lastProbeStatus feeds the relax events' Cause: a relaxation is
	// triggered by whatever the previous probe concluded (infeasible,
	// cpd_regressed, timeout).
	lastProbeStatus := ""
	probe := func(st float64) (m arch.Mapping, cpd float64, feasible bool, err error) {
		result.Stats.OuterIterations++
		outerRound := result.Stats.OuterIterations
		outerCtr.Inc()
		pT := time.Now()
		psp := root.Child("core.probe", obs.Float("st", st))
		rep.Update(func(p *obs.Progress) {
			p.Phase = "probe"
			p.STTarget = st
			p.RelaxRounds = result.Stats.OuterIterations
			p.LPSolves = int64(result.Stats.LPSolves)
			p.SimplexIters = int64(result.Stats.SimplexIters)
		})
		status := "infeasible"
		defer func() {
			probeHist.Observe(time.Since(pT))
			psp.End(obs.String("status", status))
			lastProbeStatus = status
			// Exactly one probe event per OuterIterations increment (this
			// closure is the only place either happens), so the report's
			// RelaxIterations always equals Stats.OuterIterations.
			opts.Flight.Record(flight.Event{Kind: flight.KindProbe,
				Round: outerRound, ST: st, Status: status, Obj: cpd})
		}()
		var deadline time.Time
		if opts.TimeLimit > 0 {
			deadline = time.Now().Add(opts.TimeLimit)
		}
		for round := 0; round < repairRounds; round++ {
			if err := ctx.Err(); err != nil {
				status = "canceled"
				return nil, 0, false, err
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				status = "timeout"
				result.Stats.ProbeTimeouts++
				return nil, 0, false, nil
			}
			s2T := time.Now()
			mNew, ok, err := solveAllBatches(ctx, d, m0, frozenPos, paths, st, budget, stress0, batchList, opts, rng, &result.Stats, deadline, probeCache, psp)
			result.Stats.Step2Time += time.Since(s2T)
			if err != nil {
				status = "error"
				return nil, 0, false, err
			}
			if !ok {
				if !deadline.IsZero() && time.Now().After(deadline) {
					// The batch loop bailed on the probe deadline, not on
					// a proven infeasibility.
					status = "timeout"
					result.Stats.ProbeTimeouts++
					psp.Event("core.probe.round", obs.Int("round", round), obs.Bool("solved", false))
					return nil, 0, false, nil
				}
				psp.Event("core.probe.round", obs.Int("round", round), obs.Bool("solved", false))
				return nil, 0, false, nil
			}
			staT := time.Now()
			newRes := timing.Analyze(d, mNew)
			result.Stats.TimingTime += time.Since(staT)
			psp.Event("core.probe.round", obs.Int("round", round), obs.Bool("solved", true),
				obs.Float("cpd", newRes.CPD), obs.Float("budget", budget), obs.Int("paths", len(paths)))
			if newRes.CPD <= budget+1e-9 {
				status = "feasible"
				return mNew, newRes.CPD, true, nil
			}
			// A path below the monitoring threshold regressed past the
			// CPD: add the violators as lazy rows and re-solve at the
			// same budget (see Options.PathRepairRounds).
			repT := time.Now()
			added := 0
			for _, p := range violatedPaths(d, mNew, newRes, budget) {
				if id := pathIdent(p); !pathSeen[id] {
					pathSeen[id] = true
					paths = append(paths, p)
					added++
				}
			}
			result.Stats.TimingTime += time.Since(repT)
			psp.Event("core.probe.repair", obs.Int("round", round), obs.Int("added", added), obs.Int("paths", len(paths)))
			if added == 0 {
				// The CPD regressed past the budget and every violating
				// path is already constrained: more repair rounds cannot
				// help at this ST_target.
				status = "cpd_regressed"
				return nil, 0, false, nil
			}
		}
		status = "cpd_regressed"
		return nil, 0, false, nil
	}

	finish := func(m arch.Mapping, st, cpd float64) *Result {
		result.Status = milp.Feasible
		result.Mapping = m
		result.STTarget = st
		sm := arch.ComputeStress(d, m)
		result.NewMaxStress = sm.Max()
		result.NewCPD = cpd
		result.Improved = result.NewMaxStress < stUp-1e-12
		if opts.Flight != nil {
			// Per-PE stress attribution for the report's heatmap: the
			// final accumulated stress, and the share the frozen critical
			// ops contribute (the part re-mapping could not move).
			f := d.Fabric
			total := make([][]float64, f.H)
			for y := range total {
				total[y] = append([]float64(nil), sm[y]...)
			}
			frozen := make([][]float64, f.H)
			for y := range frozen {
				frozen[y] = make([]float64, f.W)
			}
			for op, pe := range frozenPos {
				frozen[pe.Y][pe.X] += d.StressRate(op)
			}
			opts.Flight.SetStress(&flight.StressAttribution{
				W: f.W, H: f.H, Total: total, Frozen: frozen})
		}
		return result
	}

	searched := false
	linearSweep := func() (bool, error) {
		// Algorithm 1 literal: sweep upward by Delta, ending at ST_up.
		const maxOuter = 64
		for k := 0; result.Stats.OuterIterations < maxOuter; k++ {
			st := stStart + float64(k)*delta
			lastProbe := false
			if st >= stUp-1e-12 {
				st, lastProbe = stUp, true
			}
			if k > 0 {
				// Algorithm 1's `ST_target += Δ`, caused by whatever the
				// previous probe concluded.
				opts.Flight.Record(flight.Event{Kind: flight.KindRelax,
					Round: result.Stats.OuterIterations, ST: st, F: delta, Cause: lastProbeStatus})
			}
			m, cpd, ok, err := probe(st)
			if err != nil {
				return false, err
			}
			if ok {
				finish(m, st, cpd)
				return true, nil
			}
			if lastProbe {
				break
			}
		}
		return false, nil
	}
	if opts.LinearSTSearch {
		ok, err := linearSweep()
		if err != nil {
			return fail(err)
		}
		searched = ok
	} else {
		// Seeded re-solve: probe the prior solve's ST_target first. On a
		// hit the budget search collapses to O(1) probes — one at the
		// prior target plus one refinement a Delta below it — instead of
		// the cold path's endpoint probes and O(log) bisection. On a
		// miss (the delta genuinely tightened the instance) nothing is
		// lost but the one probe: the cold search below runs as usual.
		skipStart := false
		if p := opts.prior; p != nil && p.STTarget > 0 {
			st1 := p.STTarget
			if st1 < stStart {
				st1 = stStart
			}
			if st1 > stUp {
				st1 = stUp
			}
			// Validate the prior floorplan directly before spending a
			// MILP probe: if it is still structurally valid, meets the
			// prior stress target on THIS design's stress rates, and
			// stays under the delay budget, it IS a feasible floorplan
			// at st1 — the bracket hit costs one timing analysis. A
			// MILP re-probe could not give that guarantee: the probe
			// pool's lazy path rows accumulate across a solve, so the
			// prior's winning probe is not reproducible in isolation.
			var m arch.Mapping
			var cpd float64
			ok := false
			if pm := p.Mapping; pm != nil && arch.ValidateMapping(d, pm) == nil &&
				arch.ComputeStress(d, pm).Max() <= st1+1e-9 {
				vT := time.Now()
				pres := timing.Analyze(d, pm)
				result.Stats.TimingTime += time.Since(vT)
				if pres.CPD <= budget+1e-9 {
					m, cpd, ok = pm, pres.CPD, true
					opts.Flight.Record(flight.Event{Kind: flight.KindProbe,
						Round: result.Stats.OuterIterations, ST: st1, Status: "prior_validated", Obj: cpd})
				}
			}
			if !ok {
				var err error
				m, cpd, ok, err = probe(st1)
				if err != nil {
					return fail(err)
				}
			}
			if ok {
				result.Resume.BracketHit = true
				st0 := st1 - delta
				if st0 > stStart {
					if m2, cpd2, ok2, err := probe(st0); err != nil {
						return fail(err)
					} else if ok2 {
						m, st1, cpd = m2, st0, cpd2
					}
				}
				finish(m, st1, cpd)
				searched = true
			} else if st1 <= stStart+1e-15 {
				// The resume probe already was the stStart probe.
				skipStart = true
			}
		}
		// Bisection over [stStart, stUp]: same smallest-feasible budget
		// (within Delta), O(log) probes.
		if !searched && !skipStart {
			if m, cpd, ok, err := probe(stStart); err != nil {
				return fail(err)
			} else if ok {
				finish(m, stStart, cpd)
				searched = true
			}
		}
		if !searched {
			lo := stStart
			var bestM arch.Mapping
			var bestST, bestCPD float64
			hi := stUp
			// The jump from the failed stStart probe to ST_up is the
			// bisection's (single, coarse) relaxation; the interior
			// probes below refine it and appear in the probe table.
			opts.Flight.Record(flight.Event{Kind: flight.KindRelax,
				Round: result.Stats.OuterIterations, ST: stUp, F: stUp - stStart, Cause: lastProbeStatus})
			if m, cpd, ok, err := probe(stUp); err != nil {
				return fail(err)
			} else if ok {
				bestM, bestST, bestCPD = m, stUp, cpd
			}
			if bestM != nil {
				for hi-lo > delta {
					mid := (lo + hi) / 2
					m, cpd, ok, err := probe(mid)
					if err != nil {
						return fail(err)
					}
					if ok {
						bestM, bestST, bestCPD = m, mid, cpd
						hi = mid
					} else {
						lo = mid
					}
				}
				finish(bestM, bestST, bestCPD)
				searched = true
			} else {
				// Bisection assumes ST_up is feasible, which context
				// batching cannot guarantee (earlier batches may consume
				// budget at cells the originals occupied). Fall back to
				// the Algorithm-1 linear sweep, which probes the
				// intermediate budgets the bisection skipped.
				ok, err := linearSweep()
				if err != nil {
					return fail(err)
				}
				searched = ok
			}
		}
	}
	// Classify what the search achieved. finish() already stamped
	// Feasible on success; an empty-handed run distinguishes a proven
	// infeasibility from one whose probes hit their time budget
	// (satellite fix: a budget-limited failure must not masquerade as
	// infeasibility — relaxing ST_target or raising TimeLimit may
	// succeed).
	if !searched {
		if result.Stats.ProbeTimeouts > 0 {
			result.Status = milp.NodeLimit
		} else {
			result.Status = milp.Infeasible
		}
	}

	// Export the re-solve artifact set (frozen rotations + final
	// per-batch bases). Harvested by the serve layer's delta API; the
	// freeze-fallback branch below returns the fallback run's own
	// artifacts instead when its floorplan wins.
	result.FrozenOps = make(map[int]arch.Coord, len(frozenPos))
	for op, pe := range frozenPos {
		result.FrozenOps[op] = pe
	}
	result.Bases = probeCache.export()

	// Rotation can make the frozen-path geometry unreachable from its
	// registered producers and consumers, especially on small context
	// counts — Table I itself shows Rotate == Freeze on the small
	// benchmarks. The Freeze configuration always admits the original
	// floorplan, so when rotation produced nothing better, fall back and
	// keep whichever floorplan is better.
	if opts.Mode == Rotate && !result.Improved {
		fo := opts
		fo.Mode = Freeze
		fo.TraceParent = root // nest the fallback run under this one
		fr, err := Remap(ctx, d, m0, fo)
		if err != nil {
			return fail(err)
		}
		fr.Stats.add(result.Stats)
		if betterResult(fr, result) {
			fr.FallbackToFreeze = true
			return fr, nil
		}
		return result, nil
	}
	return result, nil
}

// betterResult reports whether a is a better floorplan than b: lower
// maximum accumulated stress, ties broken by lower CPD.
func betterResult(a, b *Result) bool {
	if a.NewMaxStress != b.NewMaxStress {
		return a.NewMaxStress < b.NewMaxStress
	}
	return a.NewCPD < b.NewCPD
}

// RemapBoth runs the Freeze ablation and the complete Rotate method on
// the same baseline: Table I reports both columns, and a deployed flow
// keeps the better floorplan, so the Rotate result is never allowed to
// fall below the Freeze result. The two arms share no mutable state
// (each Remap derives its own rng from Options.Seed and clones the
// mapping), so they run concurrently.
func RemapBoth(ctx context.Context, d *arch.Design, m0 arch.Mapping, opts Options) (freeze, rotate *Result, err error) {
	// Precompute the design's lazily-built caches before the arms fork so
	// both reuse one copy instead of racing to build their own.
	d.Precompute()

	// Resolve the tracer once here (ctx fallback, then the Debug sugar) so
	// both arms share one sink (and one span-ID space) instead of each
	// Remap creating its own.
	if opts.Trace == nil {
		opts.Trace = obs.TracerFrom(ctx)
	}
	if opts.Trace == nil && opts.Debug {
		opts.Trace = obs.New(obs.NewDebugSink(os.Stdout))
	}
	// Resolve the flight recorder once too, so both arms journal into the
	// same recorder (see Options.Flight for the interleaving caveat).
	if opts.Flight == nil {
		opts.Flight = flight.FromContext(ctx)
	}
	var both obs.Span
	if opts.TraceParent.Active() {
		both = opts.TraceParent.Child("core.remap_both")
	} else {
		both = opts.Trace.Start("core.remap_both")
	}

	var (
		wg                sync.WaitGroup
		freezeErr, rotErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		fo := opts
		fo.Mode = Freeze
		fo.TraceParent = both
		freeze, freezeErr = Remap(ctx, d, m0, fo)
	}()
	go func() {
		defer wg.Done()
		ro := opts
		ro.Mode = Rotate
		ro.TraceParent = both
		rotate, rotErr = Remap(ctx, d, m0, ro)
	}()
	wg.Wait()
	if freezeErr != nil {
		both.End(obs.String("status", "error"))
		return nil, nil, freezeErr
	}
	if rotErr != nil {
		both.End(obs.String("status", "error"))
		return nil, nil, rotErr
	}
	if betterResult(freeze, rotate) {
		r := *freeze
		r.Stats = rotate.Stats
		r.FallbackToFreeze = true
		rotate = &r
	}
	both.End(obs.String("status", "ok"), obs.Bool("fallback_to_freeze", rotate.FallbackToFreeze))
	return freeze, rotate, nil
}

// pathIdent returns a dedup key for a timing path (its op sequence and
// source, which determine its budget row).
func pathIdent(p *timing.Path) string {
	id := fmt.Sprintf("%d|%d", p.Context, p.Source)
	for _, op := range p.Ops {
		id += fmt.Sprintf(",%d", op)
	}
	return id
}

// violatedPaths lists paths of mapping m whose delay exceeds the original
// CPD — the sub-threshold paths that regressed after a re-mapping.
func violatedPaths(d *arch.Design, m arch.Mapping, res *timing.Result, origCPD float64) []*timing.Path {
	frac := origCPD / res.CPD
	if frac >= 1 {
		return nil
	}
	cand := timing.EnumeratePaths(d, m, res, timing.EnumerateOptions{
		ThresholdFrac: frac,
		MaxPaths:      128,
		MaxPerContext: 64,
	})
	var out []*timing.Path
	for _, p := range cand {
		if p.Delay > origCPD+1e-9 {
			out = append(out, p)
		}
	}
	return out
}

// solveAllBatches re-binds every non-frozen op, one context batch at a
// time, under the global stress budget st. Returns ok=false if any batch
// is infeasible. Each batch is traced as a "core.batch" span under
// parent (with a construction-infeasibility event when buildBatch bailed
// early).
func solveAllBatches(ctx context.Context, d *arch.Design, m0 arch.Mapping, frozenPos map[int]arch.Coord,
	paths []*timing.Path, st, cpd float64, stress0 arch.StressMap,
	batchList [][]int, opts Options, rng *rand.Rand, stats *Stats, deadline time.Time,
	cache *warmCache, parent obs.Span) (arch.Mapping, bool, error) {

	f := d.Fabric
	mCur := m0.Clone()
	committed := make([]float64, f.NumPEs())
	for op, pe := range frozenPos {
		mCur[op] = pe
		committed[f.Index(pe)] += d.StressRate(op)
	}

	rep := obs.ReporterFrom(ctx)
	for bi, bctx := range batchList {
		inBatch := make(map[int]bool, len(bctx))
		for _, c := range bctx {
			inBatch[c] = true
		}
		var movable []int
		for op := 0; op < d.NumOps(); op++ {
			if !inBatch[d.Ctx[op]] {
				continue
			}
			if _, fr := frozenPos[op]; fr {
				continue
			}
			movable = append(movable, op)
		}
		bsp := parent.Child("core.batch",
			obs.Int("batch", bi), obs.Int("contexts", len(bctx)), obs.Int("movable", len(movable)))
		if rep != nil {
			b, n := bi+1, len(batchList)
			rep.Update(func(p *obs.Progress) {
				p.Batch = b
				p.Batches = n
				p.LPSolves = int64(stats.LPSolves)
				p.SimplexIters = int64(stats.SimplexIters)
			})
		}
		if err := ctx.Err(); err != nil {
			bsp.End(obs.String("status", "canceled"))
			opts.Flight.Record(flight.Event{Kind: flight.KindBatch,
				Batch: bi, N: len(movable), Status: "canceled"})
			return nil, false, err
		}
		cands := candidateSets(d, m0, stress0, frozenPos, movable, opts.CandidatesPerOp, rng)
		bp := buildBatch(d, mCur, inBatch, frozenPos, cands, paths, st, committed, cpd, opts)
		if bp.infeasibleReason != "" {
			bsp.Event("core.batch.infeasible_construction", obs.String("reason", bp.infeasibleReason))
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			bsp.End(obs.String("status", "timeout"))
			opts.Flight.Record(flight.Event{Kind: flight.KindBatch,
				Batch: bi, N: len(movable), M: bp.lp.NumRows(), Status: "timeout"})
			return nil, false, nil // probe budget exhausted
		}
		asn, ok, outcome, err := solveBatch(ctx, bp, opts, stats, rng, deadline, cache, bi, bsp)
		if err != nil {
			bsp.End(obs.String("status", "error"))
			return nil, false, err
		}
		if !ok {
			// Attribute the failure to a constraint family for the flight
			// journal's infeasibility digest, re-solving with one family
			// relaxed at a time when the relaxation itself was infeasible.
			status, family := outcome, ""
			switch outcome {
			case "construction":
				status = "construction_infeasible"
				family = constructionFamily(bp.infeasibleReason)
			case "lp_infeasible":
				family = diagnoseInfeasible(ctx, bp)
			case "dive_failed":
				// The relaxation was feasible but no integral completion
				// exists (or was found): an assignment/integrality failure.
				family = flight.FamilyAssignment
			}
			opts.Flight.Record(flight.Event{Kind: flight.KindBatch,
				Batch: bi, N: len(movable), M: bp.lp.NumRows(), Status: status, Cause: family})
			if family != "" {
				opts.Flight.NoteInfeasible(family)
			}
			bsp.End(obs.String("status", "infeasible"), obs.Int("rows", bp.lp.NumRows()))
			return nil, false, nil
		}
		opts.Flight.Record(flight.Event{Kind: flight.KindBatch,
			Batch: bi, N: len(movable), M: bp.lp.NumRows(), Status: "solved"})
		bsp.End(obs.String("status", "solved"), obs.Int("rows", bp.lp.NumRows()))
		for op, pe := range asn {
			mCur[op] = pe
			committed[f.Index(pe)] += d.StressRate(op)
		}
	}
	if err := arch.ValidateMapping(d, mCur); err != nil {
		return nil, false, fmt.Errorf("core: batched solution illegal: %w", err)
	}
	return mCur, true, nil
}

// stressLowerBound implements Step 1: binary search for the smallest
// ST_target admitting a delay-unaware floorplan, between the original
// floorplan's mean (ST_low) and max (ST_up) accumulated stress. Each
// budget probe is traced as a "core.step1.probe" span under parent.
func stressLowerBound(ctx context.Context, d *arch.Design, m0 arch.Mapping, stress0 arch.StressMap,
	lo, hi float64, batchList [][]int, opts Options, rng *rand.Rand, stats *Stats, parent obs.Span) (float64, error) {

	// The LPT level is a fast sufficient certificate: any budget at or
	// above it is feasible without solving a MILP.
	greedyMax := arch.ComputeStress(d, GreedyLevel(d, nil)).Max()

	// Consecutive probes solve the same batch LPs with only the budget
	// changed; with Options.WarmHeuristics each batch warm-starts from the
	// previous probe's basis (see the option's caveats).
	cache := newWarmCache(len(batchList), opts.WarmHeuristics)

	probeCtr := opts.Trace.Registry().Counter("agingfp_st_probes_total")
	rep := obs.ReporterFrom(ctx)
	feasible := func(st float64) (bool, error) {
		stats.STProbes++
		probeCtr.Inc()
		psp := parent.Child("core.step1.probe", obs.Float("st_target", st))
		rep.Update(func(p *obs.Progress) {
			p.Phase = "step1"
			p.STTarget = st
			p.STProbes = stats.STProbes
			p.LPSolves = int64(stats.LPSolves)
			p.SimplexIters = int64(stats.SimplexIters)
		})
		if greedyMax <= st+1e-12 {
			psp.End(obs.Bool("feasible", true), obs.String("certificate", "greedy"), obs.Int("simplex_iters", 0))
			opts.Flight.Record(flight.Event{Kind: flight.KindStep1Probe,
				ST: st, Status: "feasible", Cause: "greedy"})
			return true, nil
		}
		itersBefore := stats.SimplexIters
		m, ok, err := solveAllBatches(ctx, d, m0, nil, nil, st, 0, stress0, batchList, opts, rng, stats, time.Time{}, cache, psp)
		psp.End(obs.Bool("feasible", err == nil && ok), obs.String("certificate", "milp"),
			obs.Int("simplex_iters", stats.SimplexIters-itersBefore))
		verdict := "infeasible"
		if err == nil && ok {
			verdict = "feasible"
		}
		opts.Flight.Record(flight.Event{Kind: flight.KindStep1Probe,
			ST: st, Status: verdict, Cause: "milp"})
		if err != nil || !ok {
			return false, err
		}
		_ = m
		return true, nil
	}

	steps := opts.BinarySearchSteps
	if steps <= 0 {
		steps = 7
	}
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
