package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/milp"
)

// atomicCountingCtx reports Canceled after Err has been polled fuse
// times, making mid-flow cancellation deterministic without timers. The
// counter is atomic because Remap shares the context with parallel
// scoring workers.
type atomicCountingCtx struct {
	context.Context
	polls atomic.Int64
	fuse  int64
}

func (c *atomicCountingCtx) Err() error {
	if c.polls.Add(1) > c.fuse {
		return context.Canceled
	}
	return nil
}

func (c *atomicCountingCtx) Done() <-chan struct{} { return c.Context.Done() }

func (c *atomicCountingCtx) Deadline() (time.Time, bool) { return c.Context.Deadline() }

func TestRemapCanceledBeforeStart(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := Remap(ctx, d, m0, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled Remap must still return the partial result")
	}
	if res.Status != milp.Canceled {
		t.Fatalf("Status = %v, want Canceled", res.Status)
	}
	// The partial result falls back to the baseline floorplan: callers
	// that ignore the error still hold a valid mapping.
	if err := arch.ValidateMapping(d, res.Mapping); err != nil {
		t.Fatalf("partial result mapping invalid: %v", err)
	}
	if res.Improved {
		t.Fatal("canceled run must not claim improvement")
	}
}

func TestRemapCanceledMidSearch(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(8), 4, 4)
	opts := DefaultOptions()

	// Reference run: how many context polls does the full flow make?
	ref := &atomicCountingCtx{Context: context.Background(), fuse: 1 << 60}
	refRes, err := Remap(ref, d, m0, opts)
	if err != nil {
		t.Fatalf("reference remap: %v", err)
	}
	total := ref.polls.Load()
	if total < 10 {
		t.Skipf("flow polled ctx only %d times; too coarse to cancel mid-search", total)
	}

	// Cancel halfway: the flow must stop promptly, return the context's
	// error, and hand back a partial-but-valid result.
	ctx := &atomicCountingCtx{Context: context.Background(), fuse: total / 2}
	res, err := Remap(ctx, d, m0, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Status != milp.Canceled {
		t.Fatalf("result %+v, want Status Canceled", res)
	}
	if err := arch.ValidateMapping(d, res.Mapping); err != nil {
		t.Fatalf("partial result mapping invalid: %v", err)
	}

	// A canceled run must not have corrupted any state a later solve
	// depends on: rerunning uncanceled reproduces the reference exactly.
	again, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("re-run after cancellation: %v", err)
	}
	if len(again.Mapping) != len(refRes.Mapping) {
		t.Fatalf("re-run mapping size %d vs %d", len(again.Mapping), len(refRes.Mapping))
	}
	for i := range again.Mapping {
		if again.Mapping[i] != refRes.Mapping[i] {
			t.Fatalf("re-run after cancellation diverged at op %d: %v vs %v",
				i, again.Mapping[i], refRes.Mapping[i])
		}
	}
}

func TestRemapBothCanceled(t *testing.T) {
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RemapBoth(ctx, d, m0, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"mode", func(o *Options) { o.Mode = Mode(9) }},
		{"path-threshold", func(o *Options) { o.PathThresholdFrac = 0 }},
		{"round-threshold", func(o *Options) { o.RoundThreshold = 0.5 }},
		{"max-paths", func(o *Options) { o.MaxPaths = -1 }},
		{"delta-frac", func(o *Options) { o.DeltaFrac = 1.5 }},
		{"binary-steps", func(o *Options) { o.BinarySearchSteps = -2 }},
		{"candidates", func(o *Options) { o.CandidatesPerOp = -1 }},
		{"max-nodes", func(o *Options) { o.MaxNodes = -1 }},
		{"time-limit", func(o *Options) { o.TimeLimit = -time.Second }},
		{"rotation-restarts", func(o *Options) { o.RotationRestarts = -1 }},
		{"crit-eps", func(o *Options) { o.CritEpsNs = -0.1 }},
		{"repair-rounds", func(o *Options) { o.PathRepairRounds = -1 }},
		{"cpd-budget", func(o *Options) { o.CPDBudgetNs = -1 }},
	}
	for _, tc := range cases {
		o := DefaultOptions()
		tc.mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, o)
		}
	}

	// Remap itself rejects invalid options before doing any work.
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)
	bad := DefaultOptions()
	bad.RoundThreshold = 2
	if _, err := Remap(context.Background(), d, m0, bad); err == nil {
		t.Fatal("Remap accepted invalid options")
	}
}
