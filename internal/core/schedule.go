package core

import (
	"context"
	"fmt"

	"agingfp/internal/arch"
	"agingfp/internal/nbti"
	"agingfp/internal/thermal"
)

// Wear rotation over time: the paper's related work ([Zhang et al.]
// module diversification, [Srinivasan et al.] periodic re-mapping)
// extends lifetime by cycling between several configurations so no PE is
// stressed continuously. This file composes that idea with the
// aging-aware re-mapper: generate several CPD-safe floorplans with
// different search seeds and alternate between them; each PE's effective
// stress becomes the time-weighted average over the schedule.

// WearSchedule is a set of floorplans time-multiplexed at coarse
// granularity (hours-to-days re-configuration, far above the thermal
// time constant).
type WearSchedule struct {
	// Mappings are the alternated floorplans.
	Mappings []arch.Mapping
	// Weights are the time fractions (default: uniform). They must sum
	// to ~1.
	Weights []float64
}

// EffectiveStress returns the schedule's time-averaged per-PE stress map.
func (ws *WearSchedule) EffectiveStress(d *arch.Design) (arch.StressMap, error) {
	if len(ws.Mappings) == 0 {
		return nil, fmt.Errorf("core: empty wear schedule")
	}
	weights := ws.Weights
	if weights == nil {
		weights = make([]float64, len(ws.Mappings))
		for i := range weights {
			weights[i] = 1 / float64(len(ws.Mappings))
		}
	}
	if len(weights) != len(ws.Mappings) {
		return nil, fmt.Errorf("core: %d weights for %d mappings", len(weights), len(ws.Mappings))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("core: negative schedule weight %g", w)
		}
		sum += w
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return nil, fmt.Errorf("core: schedule weights sum to %g, want 1", sum)
	}
	acc := arch.NewStressMap(d.Fabric)
	for i, m := range ws.Mappings {
		if err := arch.ValidateMapping(d, m); err != nil {
			return nil, fmt.Errorf("core: schedule mapping %d: %w", i, err)
		}
		s := arch.ComputeStress(d, m)
		for y := range acc {
			for x := range acc[y] {
				acc[y][x] += weights[i] * s[y][x]
			}
		}
	}
	return acc, nil
}

// Evaluate computes the MTTF of the schedule: the averaged stress map
// drives both the thermal solve and the NBTI model.
func (ws *WearSchedule) Evaluate(d *arch.Design, model nbti.Model, tcfg thermal.Config) (*MTTFReport, error) {
	stress, err := ws.EffectiveStress(d)
	if err != nil {
		return nil, err
	}
	power := thermal.PowerFromStress(stress, d.NumContexts, tcfg)
	temp, err := thermal.Solve(power, tcfg)
	if err != nil {
		return nil, err
	}
	hours, x, y, err := model.FabricMTTF(stress, temp, d.NumContexts)
	if err != nil {
		return nil, err
	}
	return &MTTFReport{
		Hours:      hours,
		LimitingPE: arch.Coord{X: x, Y: y},
		MaxStress:  stress.Max(),
		MaxTempK:   thermal.MaxK(temp),
		Temp:       temp,
		Stress:     stress,
	}, nil
}

// DiversifiedRemap produces up to k distinct CPD-safe aging-aware
// floorplans by re-running the re-mapper with different seeds, for use in
// a wear schedule. Duplicate floorplans are dropped; the result always
// contains at least one mapping (the best single remap).
func DiversifiedRemap(ctx context.Context, d *arch.Design, m0 arch.Mapping, opts Options, k int) (*WearSchedule, error) {
	if k < 1 {
		k = 1
	}
	seen := map[string]bool{}
	ws := &WearSchedule{}
	for i := 0; i < k; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)*7919
		r, err := Remap(ctx, d, m0, o)
		if err != nil {
			return nil, err
		}
		key := mappingKey(r.Mapping)
		if seen[key] {
			continue
		}
		seen[key] = true
		ws.Mappings = append(ws.Mappings, r.Mapping)
	}
	return ws, nil
}

func mappingKey(m arch.Mapping) string {
	b := make([]byte, 0, len(m)*4)
	for _, c := range m {
		b = append(b, byte(c.X), byte(c.X>>8), byte(c.Y), byte(c.Y>>8))
	}
	return string(b)
}
