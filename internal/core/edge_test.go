package core

import (
	"context"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

// TestRemapDisconnectedOps: a DFG with no edges (pure data-parallel ops)
// has no timing paths at all; the flow must still level stress.
func TestRemapDisconnectedOps(t *testing.T) {
	g := &dfg.Graph{}
	for i := 0; i < 12; i++ {
		g.AddOp(dfg.DMU, "mul")
	}
	d, err := hls.BuildDesign("par", g, arch.Fabric{W: 4, H: 4}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All ops land in context 0; stretch them over 3 contexts instead to
	// create stacking potential.
	ctx := make([]int, 12)
	for i := range ctx {
		ctx[i] = i % 3
	}
	d2 := arch.NewDesign("par3", d.Fabric, 3, g, ctx)
	m0, err := place.Place(d2, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Remap(context.Background(), d2, m0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.ValidateMapping(d2, r.Mapping); err != nil {
		t.Fatal(err)
	}
	// With 4 ops per context on 16 PEs, perfect leveling (one DMU per
	// PE) is reachable.
	want := arch.DMUDelayNs / d2.ClockPeriodNs
	if r.NewMaxStress > want+1e-9 {
		t.Fatalf("max stress %.3f, want perfect level %.3f", r.NewMaxStress, want)
	}
}

// TestRemapSingleOp: the degenerate one-op design is a no-op.
func TestRemapSingleOp(t *testing.T) {
	g := &dfg.Graph{}
	g.AddOp(dfg.ALU, "only")
	d := arch.NewDesign("one", arch.Fabric{W: 2, H: 2}, 1, g, []int{0})
	m0 := arch.Mapping{{X: 0, Y: 0}}
	r, err := Remap(context.Background(), d, m0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Improved {
		t.Fatal("nothing to improve on a single op")
	}
	if r.NewCPD != r.OrigCPD {
		t.Fatal("CPD changed")
	}
}

// TestRemapFullFabric: zero spare PEs per context — re-binding can only
// permute, and stacking relief across contexts is still possible.
func TestRemapFullFabric(t *testing.T) {
	g := &dfg.Graph{}
	for i := 0; i < 8; i++ {
		kind := dfg.ALU
		if i%4 == 0 {
			kind = dfg.DMU
		}
		g.AddOp(kind, "x")
	}
	ctx := []int{0, 0, 0, 0, 1, 1, 1, 1}
	d := arch.NewDesign("full", arch.Fabric{W: 2, H: 2}, 2, g, ctx)
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Remap(context.Background(), d, m0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.ValidateMapping(d, r.Mapping); err != nil {
		t.Fatal(err)
	}
	if r.NewCPD > r.OrigCPD+1e-9 {
		t.Fatal("CPD regressed")
	}
}

func TestEvaluateErrorPaths(t *testing.T) {
	g := &dfg.Graph{}
	g.AddOp(dfg.ALU, "a")
	d := arch.NewDesign("x", arch.Fabric{W: 2, H: 2}, 1, g, []int{0})
	m := arch.Mapping{{X: 0, Y: 0}}
	bad := nbti.Model{} // invalid
	if _, err := Evaluate(d, m, bad, thermal.DefaultConfig()); err == nil {
		t.Fatal("invalid NBTI model accepted")
	}
	badT := thermal.DefaultConfig()
	badT.RVertical = -1
	if _, err := Evaluate(d, m, nbti.DefaultModel(), badT); err == nil {
		t.Fatal("invalid thermal config accepted")
	}
}

// TestMTTFIncreaseIdentity: identical floorplans give exactly 1.0.
func TestMTTFIncreaseIdentity(t *testing.T) {
	g := dfg.FIR(4)
	d, err := hls.BuildDesign("f", g, arch.Fabric{W: 3, H: 3}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := MTTFIncrease(d, m0, m0, nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1.0 {
		t.Fatalf("identity ratio %g", ratio)
	}
}
