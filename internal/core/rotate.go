package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"agingfp/internal/arch"
	"agingfp/internal/flight"
	"agingfp/internal/obs"
)

// maxParallelism bounds the worker fan-out of CPU-bound scoring loops.
var maxParallelism = runtime.GOMAXPROCS(0)

// A path (as a set of grid points) has 8 unique orientations on a square
// fabric: the 4 rotations and their x-mirrors (§V.B.1, Fig. 4a). All 8
// are grid isometries, so intra-context Manhattan distances — and hence
// the frozen critical paths' own delays — are preserved exactly.
const numOrientations = 8

// orient applies orientation o (0..7: rotation o%4 quarter-turns
// clockwise, then x-mirror if o >= 4) to c on fabric f. Quarter-turn
// rotations require a square fabric; callers restrict o on non-square
// fabrics.
func orient(c arch.Coord, o int, f arch.Fabric) arch.Coord {
	x, y := c.X, c.Y
	switch o % 4 {
	case 1: // 90 degrees clockwise
		x, y = y, f.W-1-c.X
	case 2: // 180 degrees
		x, y = f.W-1-c.X, f.H-1-c.Y
	case 3: // 270 degrees clockwise
		x, y = f.H-1-c.Y, c.X
	}
	if o >= 4 {
		x = f.W - 1 - x
	}
	return arch.Coord{X: x, Y: y}
}

// allowedOrientations returns the orientation set valid for f: all 8 on
// square fabrics, the 4 that avoid quarter turns otherwise.
func allowedOrientations(f arch.Fabric) []int {
	if f.W == f.H {
		return []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	return []int{0, 2, 4, 6}
}

// orientationPool builds the multiset of orientations to distribute over
// numContexts contexts per the paper's rule: with C <= |orients| no
// orientation repeats; otherwise each orientation appears
// C div |orients| times and the remainder is spread so no orientation
// exceeds that count plus one.
func orientationPool(orients []int, numContexts int, rng *rand.Rand) []int {
	k := len(orients)
	pool := make([]int, 0, numContexts)
	base := numContexts / k
	for _, o := range orients {
		for i := 0; i < base; i++ {
			pool = append(pool, o)
		}
	}
	rem := numContexts - len(pool)
	perm := rng.Perm(k)
	for i := 0; i < rem; i++ {
		pool = append(pool, orients[perm[i]])
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool
}

// rotateFrozen chooses an orientation per context for the frozen
// critical-path ops and returns their new positions.
//
// The assignment is selected among RotationRestarts random pools (each
// satisfying the paper's distinctness rule) by minimizing
//
//	sum over PEs of (stacked frozen stress)^2  +  cross-arc growth penalty
//
// The quadratic term is the rotation step's purpose: it measures how much
// critical-path stress piles onto individual PEs across contexts (§V.B.1
// — a PE hosting critical ops in every context can never be relieved).
// The growth penalty keeps rotated paths from stretching their fixed
// registered arcs, which would eat (or bust) the monitored paths' wire
// budgets outright.
//
// sp is the caller's "core.rotate" span (the caller ends it); the
// selection outcome is reported as a "core.rotate.select" instant event.
//
// Cancellation: a canceled ctx makes the scoring workers stop early and
// the identity assignment (all ops at their original PEs) is returned;
// the caller notices ctx.Err() itself and discards the run.
func rotateFrozen(ctx context.Context, d *arch.Design, m arch.Mapping, frozen map[int]bool, opts Options, rng *rand.Rand, sp obs.Span) map[int]arch.Coord {
	out := make(map[int]arch.Coord, len(frozen))
	if opts.Mode == Freeze || ctx.Err() != nil {
		for op := range frozen {
			out[op] = m[op]
		}
		return out
	}

	orients := allowedOrientations(d.Fabric)
	// Frozen ops per context, in ascending op order: evalAssign
	// accumulates floating-point stress in this order, and map-order
	// iteration here would perturb the rounding — and hence near-tie
	// argmin picks — from run to run.
	frozenByCtx := make([][]int, d.NumContexts)
	for op := 0; op < d.NumOps(); op++ {
		if frozen[op] {
			c := d.Ctx[op]
			frozenByCtx[c] = append(frozenByCtx[c], op)
		}
	}
	// Cross arcs between frozen ops of different contexts.
	type arcT struct{ a, b int }
	var crossArcs []arcT
	for _, e := range d.Graph.Edges {
		if frozen[e.From] && frozen[e.To] && d.Ctx[e.From] != d.Ctx[e.To] {
			crossArcs = append(crossArcs, arcT{e.From, e.To})
		}
	}

	evalAssign := func(assign []int) float64 {
		// Dense per-PE accumulator, summed in PE-index order: a map here
		// would sum in iteration order and make the score differ in the
		// last ulp between otherwise identical calls.
		stack := make([]float64, d.Fabric.NumPEs())
		for c := 0; c < d.NumContexts; c++ {
			for _, op := range frozenByCtx[c] {
				stack[d.Fabric.Index(orient(m[op], assign[c], d.Fabric))] += d.StressRate(op)
			}
		}
		score := 0.0
		for _, s := range stack {
			score += s * s
		}
		// Cross arcs between frozen ops are fixed constants in the MILP:
		// stretching one beyond its original length eats (or busts) its
		// path's wire budget outright, so growth is penalized hard while
		// same-or-shorter lengths stay free.
		for _, a := range crossArcs {
			pa := orient(m[a.a], assign[d.Ctx[a.a]], d.Fabric)
			pb := orient(m[a.b], assign[d.Ctx[a.b]], d.Fabric)
			if growth := pa.Dist(pb) - m[a.a].Dist(m[a.b]); growth > 0 {
				score += 1.0 * float64(growth)
			}
		}
		return score
	}

	restarts := opts.RotationRestarts
	if restarts < 1 {
		restarts = 1
	}
	// Candidate pools are drawn serially (the rng sequence fixes them, so
	// results stay reproducible for a given seed); scoring — the expensive
	// part, O(frozen ops + cross arcs) per pool — fans out over a bounded
	// worker set. The argmin below runs serially in pool order with a
	// strict <, so ties resolve exactly as the sequential loop did.
	assigns := make([][]int, restarts)
	for r := range assigns {
		assigns[r] = orientationPool(orients, d.NumContexts, rng)
	}
	scores := make([]float64, restarts)
	workers := maxParallelism
	if workers > restarts {
		workers = restarts
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := range next {
				if ctx.Err() != nil {
					continue // drain the channel without scoring
				}
				scores[r] = evalAssign(assigns[r])
			}
		}()
	}
	for r := 0; r < restarts; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	if ctx.Err() != nil {
		// Partial scores are meaningless; hand back the identity
		// assignment and let the caller observe the cancellation.
		for op := range frozen {
			out[op] = m[op]
		}
		return out
	}

	// Journal the restart scores serially in index order (the workers
	// above stored them by index, so the journal stays deterministic).
	for r := 0; r < restarts; r++ {
		opts.Flight.Record(flight.Event{Kind: flight.KindRotateScore,
			Round: r, Obj: scores[r], N: len(crossArcs)})
	}

	best, bestScore := assigns[0], scores[0]
	bestR := 0
	for r := 1; r < restarts; r++ {
		if scores[r] < bestScore {
			best, bestScore = assigns[r], scores[r]
			bestR = r
		}
	}
	sp.Event("core.rotate.select",
		obs.Int("restarts", restarts), obs.Int("winner", bestR),
		obs.Float("score", bestScore), obs.Int("cross_arcs", len(crossArcs)))
	opts.Flight.Record(flight.Event{Kind: flight.KindRotate,
		Round: bestR, Obj: bestScore, N: len(crossArcs)})
	for c := 0; c < d.NumContexts; c++ {
		opts.Flight.Record(flight.Event{Kind: flight.KindRotateCtx, Ctx: c, Var: best[c]})
	}
	for op := range frozen {
		out[op] = orient(m[op], best[d.Ctx[op]], d.Fabric)
	}
	return out
}
