package core

import (
	"context"
	"math"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/nbti"
	"agingfp/internal/place"
	"agingfp/internal/thermal"
)

func scheduleDesign(t *testing.T) (*arch.Design, arch.Mapping) {
	t.Helper()
	d, err := hls.BuildDesign("ws", dfg.FIR(12), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestEffectiveStressIsWeightedAverage(t *testing.T) {
	d, m := scheduleDesign(t)
	// A second, shifted legal mapping: mirror every op in x per context.
	m2 := m.Clone()
	for op := range m2 {
		m2[op] = arch.Coord{X: d.Fabric.W - 1 - m2[op].X, Y: m2[op].Y}
	}
	if err := arch.ValidateMapping(d, m2); err != nil {
		t.Fatal(err)
	}
	ws := &WearSchedule{Mappings: []arch.Mapping{m, m2}, Weights: []float64{0.25, 0.75}}
	eff, err := ws.EffectiveStress(d)
	if err != nil {
		t.Fatal(err)
	}
	s1 := arch.ComputeStress(d, m)
	s2 := arch.ComputeStress(d, m2)
	for y := range eff {
		for x := range eff[y] {
			want := 0.25*s1[y][x] + 0.75*s2[y][x]
			if math.Abs(eff[y][x]-want) > 1e-12 {
				t.Fatalf("(%d,%d): %g, want %g", x, y, eff[y][x], want)
			}
		}
	}
	// Total stress is conserved by averaging.
	if math.Abs(eff.Total()-s1.Total()) > 1e-9 {
		t.Fatalf("total drifted: %g vs %g", eff.Total(), s1.Total())
	}
}

func TestWearScheduleReducesMaxStress(t *testing.T) {
	d, m := scheduleDesign(t)
	m2 := m.Clone()
	for op := range m2 {
		m2[op] = arch.Coord{X: d.Fabric.W - 1 - m2[op].X, Y: d.Fabric.H - 1 - m2[op].Y}
	}
	ws := &WearSchedule{Mappings: []arch.Mapping{m, m2}}
	eff, err := ws.EffectiveStress(d)
	if err != nil {
		t.Fatal(err)
	}
	s1 := arch.ComputeStress(d, m)
	// Corner-packed baseline + its mirrored twin: averaging must strictly
	// reduce the maximum (the hot corners do not overlap).
	if eff.Max() >= s1.Max()-1e-12 {
		t.Fatalf("rotation did not level: %g vs %g", eff.Max(), s1.Max())
	}
}

func TestWearScheduleValidation(t *testing.T) {
	d, m := scheduleDesign(t)
	if _, err := (&WearSchedule{}).EffectiveStress(d); err == nil {
		t.Fatal("empty schedule accepted")
	}
	bad := &WearSchedule{Mappings: []arch.Mapping{m}, Weights: []float64{0.5}}
	if _, err := bad.EffectiveStress(d); err == nil {
		t.Fatal("non-normalized weights accepted")
	}
	neg := &WearSchedule{Mappings: []arch.Mapping{m, m}, Weights: []float64{1.5, -0.5}}
	if _, err := neg.EffectiveStress(d); err == nil {
		t.Fatal("negative weight accepted")
	}
	short := &WearSchedule{Mappings: []arch.Mapping{m, m}, Weights: []float64{1}}
	if _, err := short.EffectiveStress(d); err == nil {
		t.Fatal("weight/mapping mismatch accepted")
	}
}

func TestWearScheduleEvaluate(t *testing.T) {
	d, m := scheduleDesign(t)
	single := &WearSchedule{Mappings: []arch.Mapping{m}}
	rep, err := single.Evaluate(d, nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Evaluate(d, m, nbti.DefaultModel(), thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Hours-direct.Hours)/direct.Hours > 1e-9 {
		t.Fatalf("single-mapping schedule MTTF %g != direct %g", rep.Hours, direct.Hours)
	}
}

func TestDiversifiedRemapExtendsLifetime(t *testing.T) {
	skipUnderRace(t)
	d, m := scheduleDesign(t)
	opts := DefaultOptions()
	opts.Mode = Freeze
	ws, err := DiversifiedRemap(context.Background(), d, m, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Mappings) < 1 {
		t.Fatal("no mappings")
	}
	model, tcfg := nbti.DefaultModel(), thermal.DefaultConfig()
	sched, err := ws.Evaluate(d, model, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Evaluate(d, ws.Mappings[0], model, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Averaging distinct CPD-safe floorplans never concentrates stress
	// above the single floorplan's level.
	if sched.MaxStress > single.MaxStress+1e-9 {
		t.Fatalf("schedule max stress %g above single %g", sched.MaxStress, single.MaxStress)
	}
	if sched.Hours < single.Hours*0.99 {
		t.Fatalf("schedule MTTF %g below single %g", sched.Hours, single.Hours)
	}
}
