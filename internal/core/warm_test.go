package core

import (
	"context"
	"testing"

	"agingfp/internal/dfg"
)

// TestWarmHeuristicsValid runs the full flow with basis reuse enabled in
// the LP-rounding heuristics. The produced floorplan may differ from the
// cold default (warm re-solves land on different optimal LP vertices),
// but every remap invariant — legality, CPD guarantee, stress
// conservation — must hold unchanged, and the warm-start counters must
// actually record reuse.
func TestWarmHeuristicsValid(t *testing.T) {
	g, w, h := dfg.FIR(16), 6, 6
	if raceDetectorEnabled {
		g, w, h = dfg.DCT8(), 5, 5 // keep warm-path coverage under -race, on a fast instance
	}
	d, m0 := buildSmall(t, g, w, h)
	opts := DefaultOptions()
	opts.Mode = Freeze
	opts.WarmHeuristics = true
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	checkRemapInvariants(t, d, m0, r)
	if r.Stats.WarmStarts+r.Stats.WarmStartRejects == 0 {
		t.Fatal("WarmHeuristics on but no warm-start attempts recorded")
	}
	t.Logf("LP solves %d, simplex iters %d, warm starts %d (rejected %d)",
		r.Stats.LPSolves, r.Stats.SimplexIters, r.Stats.WarmStarts, r.Stats.WarmStartRejects)
}

// TestColdDefaultRecordsNoWarmStarts: with WarmHeuristics off (the
// default) the heuristic layer must never offer a basis to the LP solver,
// so the warm counters stay zero.
func TestColdDefaultRecordsNoWarmStarts(t *testing.T) {
	d, m0 := buildSmall(t, dfg.DCT8(), 5, 5)
	r, err := Remap(context.Background(), d, m0, DefaultOptions())
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if r.Stats.WarmStarts != 0 || r.Stats.WarmStartRejects != 0 {
		t.Fatalf("cold default recorded warm starts: %d accepted, %d rejected",
			r.Stats.WarmStarts, r.Stats.WarmStartRejects)
	}
	if r.Stats.SimplexIters == 0 {
		t.Fatal("SimplexIters not recorded")
	}
}

// TestRemapBothConcurrentMatchesSequential: RemapBoth runs its Freeze and
// Rotate arms concurrently; each arm must produce exactly what a direct
// sequential Remap call with the same options produces.
func TestRemapBothConcurrentMatchesSequential(t *testing.T) {
	// This test must keep running under -race — it is the coverage for
	// the concurrent RemapBoth arms and the parallel rotation scoring —
	// so it shrinks to a sub-second instance there.
	g, w, h := dfg.FIR(16), 6, 6
	if raceDetectorEnabled {
		g, w, h = dfg.DCT8(), 5, 5
	}
	d, m0 := buildSmall(t, g, w, h)
	opts := DefaultOptions()

	freeze, rotate, err := RemapBoth(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("RemapBoth: %v", err)
	}

	fo := opts
	fo.Mode = Freeze
	seqF, err := Remap(context.Background(), d, m0, fo)
	if err != nil {
		t.Fatalf("Remap freeze: %v", err)
	}
	ro := opts
	ro.Mode = Rotate
	seqR, err := Remap(context.Background(), d, m0, ro)
	if err != nil {
		t.Fatalf("Remap rotate: %v", err)
	}
	if betterResult(seqF, seqR) {
		seqR = seqF
	}

	for op := range freeze.Mapping {
		if freeze.Mapping[op] != seqF.Mapping[op] {
			t.Fatalf("freeze arm diverged from sequential Remap at op %d: %v vs %v",
				op, freeze.Mapping[op], seqF.Mapping[op])
		}
	}
	for op := range rotate.Mapping {
		if rotate.Mapping[op] != seqR.Mapping[op] {
			t.Fatalf("rotate arm diverged from sequential Remap at op %d: %v vs %v",
				op, rotate.Mapping[op], seqR.Mapping[op])
		}
	}
	if rotate.FallbackToFreeze && rotate.NewMaxStress > freeze.NewMaxStress+1e-12 {
		t.Fatal("FallbackToFreeze set but rotate result is worse than freeze")
	}
}
