package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/flight"
	"agingfp/internal/obs"
)

// TestFlightRelaxCountMatchesStats pins the 1:1 pairing between probe
// events and Algorithm-1 outer iterations: the report's headline
// RelaxIterations must equal Stats.OuterIterations for the same solve,
// because probe() bumps the counter at entry and journals exactly one
// probe event on every exit path.
func TestFlightRelaxCountMatchesStats(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)

	rec := flight.NewRecorder(0)
	opts := DefaultOptions()
	opts.Mode = Freeze
	opts.Flight = rec

	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	rep := flight.BuildReport(rec.Snapshot())
	if got, want := rep.Summary.RelaxIterations, int64(r.Stats.OuterIterations); got != want {
		t.Fatalf("report RelaxIterations = %d, Stats.OuterIterations = %d", got, want)
	}
	if rep.Summary.RelaxIterations == 0 {
		t.Fatal("no probe events journaled")
	}
	if len(rep.Probes) != int(rep.Summary.RelaxIterations) {
		t.Fatalf("probe table has %d rows, summary says %d iterations",
			len(rep.Probes), rep.Summary.RelaxIterations)
	}
	if rep.Summary.FinalStatus != "feasible" {
		t.Fatalf("final probe status = %q, want feasible", rep.Summary.FinalStatus)
	}
}

// TestFlightReportDeterministic pins the byte-determinism contract: two
// identical solves (same design, same seed) must journal byte-identical
// report JSON — events carry no timestamps, so reports are diffable
// across runs.
func TestFlightReportDeterministic(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)

	run := func() []byte {
		rec := flight.NewRecorder(0)
		opts := DefaultOptions()
		opts.Mode = Rotate
		opts.Seed = 7
		opts.Flight = rec
		if _, err := Remap(context.Background(), d, m0, opts); err != nil {
			t.Fatalf("Remap: %v", err)
		}
		js, err := flight.BuildReport(rec.Snapshot()).JSON()
		if err != nil {
			t.Fatalf("report JSON: %v", err)
		}
		return js
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestFlightStressBudgetBlocker drives the batch solver at a stress
// budget pinned far below the Step-1 lower bound — every PE's knapsack
// is then unsatisfiable — and asserts the infeasibility digest names
// stress-budget as the blocking constraint family, with the batch event
// carrying the same attribution.
func TestFlightStressBudgetBlocker(t *testing.T) {
	skipUnderRace(t)
	d, m0 := buildSmall(t, dfg.FIR(16), 6, 6)

	rec := flight.NewRecorder(0)
	opts := DefaultOptions()
	opts.Mode = Freeze
	opts.Flight = rec
	stress0 := arch.ComputeStress(d, m0)

	// One batch over every context, no frozen ops, no path constraints:
	// the only constraint family that can fail at st -> 0 is the stress
	// knapsack.
	var all []int
	for c := 0; c < d.NumContexts; c++ {
		all = append(all, c)
	}
	var stats Stats
	rng := rand.New(rand.NewSource(1))
	_, ok, err := solveAllBatches(context.Background(), d, m0, nil, nil,
		1e-9, 0, stress0, [][]int{all}, opts, rng, &stats, time.Time{}, nil, obs.Span{})
	if err != nil {
		t.Fatalf("solveAllBatches: %v", err)
	}
	if ok {
		t.Fatal("batch solve succeeded at an impossible stress budget")
	}

	rep := flight.BuildReport(rec.Snapshot())
	if rep.Infeasibility == nil {
		t.Fatal("report has no infeasibility digest")
	}
	if rep.Infeasibility.Blocker != flight.FamilyStressBudget {
		t.Fatalf("digest blocker = %q, want %q (by_family: %v)",
			rep.Infeasibility.Blocker, flight.FamilyStressBudget, rep.Infeasibility.ByFamily)
	}
	var batchEvent *flight.Event
	for i, e := range rec.Snapshot().Events {
		if e.Kind == flight.KindBatch {
			batchEvent = &rec.Snapshot().Events[i]
		}
	}
	if batchEvent == nil {
		t.Fatal("no batch event journaled")
	}
	if batchEvent.Cause != flight.FamilyStressBudget {
		t.Fatalf("batch event blames %q, want %q", batchEvent.Cause, flight.FamilyStressBudget)
	}
}
