//go:build !race

package core

// raceDetectorEnabled reports whether the test binary was built with
// -race. The full remap flows run ~15x slower under the race scheduler,
// so the heaviest quality tests skip themselves there (they contain no
// concurrency; the -race run keeps the tests that actually fork
// goroutines, on shrunk instances).
const raceDetectorEnabled = false
