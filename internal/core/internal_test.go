package core

import (
	"context"
	"math/rand"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/timing"
)

func TestDedupIdx(t *testing.T) {
	idx, val := dedupIdx([]int{3, 1, 3, 2, 1}, []float64{1, 2, 4, 3, -2})
	if len(idx) != 3 {
		t.Fatalf("idx %v", idx)
	}
	want := map[int]float64{1: 0, 2: 3, 3: 5}
	for k, j := range idx {
		if val[k] != want[j] {
			t.Fatalf("var %d coefficient %g, want %g", j, val[k], want[j])
		}
	}
	// Sorted output.
	for k := 1; k < len(idx); k++ {
		if idx[k] <= idx[k-1] {
			t.Fatalf("not sorted: %v", idx)
		}
	}
}

func TestBatches(t *testing.T) {
	if got := batches(5, 2); len(got) != 3 || len(got[2]) != 1 {
		t.Fatalf("batches(5,2) = %v", got)
	}
	if got := batches(4, 0); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("batches(4,0) = %v", got)
	}
	if got := batches(3, 9); len(got) != 1 {
		t.Fatalf("batches(3,9) = %v", got)
	}
	// Coverage: every context exactly once.
	seen := map[int]bool{}
	for _, b := range batches(7, 3) {
		for _, c := range b {
			if seen[c] {
				t.Fatalf("context %d repeated", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != 7 {
		t.Fatalf("%d contexts covered, want 7", len(seen))
	}
}

func TestAutoBatchBounds(t *testing.T) {
	g := dfg.FIR(16)
	d, err := hls.BuildDesign("x", g, arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	per := autoBatch(d, 250)
	if per < 1 || per > d.NumContexts {
		t.Fatalf("autoBatch out of range: %d", per)
	}
	// A huge budget admits a single joint batch.
	if autoBatch(d, 1<<20) != d.NumContexts {
		t.Fatal("huge budget should yield a joint batch")
	}
	// A tiny budget degrades to per-context batches, never zero.
	if autoBatch(d, 1) != 1 {
		t.Fatal("tiny budget must clamp to 1")
	}
}

// TestRotateFrozenGeometry: in Rotate mode frozen ops stay on the fabric,
// never collide within a context, and preserve intra-context pairwise
// distances (grid isometry).
func TestRotateFrozenGeometry(t *testing.T) {
	d, err := hls.BuildDesign("fir", dfg.FIR(16), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := timing.Analyze(d, m0)
	crit := timing.CriticalOps(d, m0, res, 1e-6)
	if len(crit) == 0 {
		t.Skip("no critical ops on this workload")
	}
	opts := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	pos := rotateFrozen(context.Background(), d, m0, crit, opts, rng, obs.Span{})
	if len(pos) != len(crit) {
		t.Fatalf("%d rotated positions for %d critical ops", len(pos), len(crit))
	}
	byCtx := map[int]map[arch.Coord]bool{}
	for op, pe := range pos {
		if !d.Fabric.Contains(pe) {
			t.Fatalf("op %d rotated off fabric: %v", op, pe)
		}
		c := d.Ctx[op]
		if byCtx[c] == nil {
			byCtx[c] = map[arch.Coord]bool{}
		}
		if byCtx[c][pe] {
			t.Fatalf("collision at %v in context %d", pe, c)
		}
		byCtx[c][pe] = true
	}
	// Pairwise intra-context distances preserved.
	ops := make([]int, 0, len(pos))
	for op := range pos {
		ops = append(ops, op)
	}
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			a, b := ops[i], ops[j]
			if d.Ctx[a] != d.Ctx[b] {
				continue
			}
			if m0[a].Dist(m0[b]) != pos[a].Dist(pos[b]) {
				t.Fatalf("distance %d-%d changed: %d -> %d",
					a, b, m0[a].Dist(m0[b]), pos[a].Dist(pos[b]))
			}
		}
	}
}

// TestViolatedPathsDetectsRegression: stretch one op far away and the
// helper must flag the now-too-long path.
func TestViolatedPathsDetectsRegression(t *testing.T) {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	c := g.AddOp(dfg.DMU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	d := arch.NewDesign("x", arch.Fabric{W: 8, H: 8}, 2, g, []int{0, 1, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}
	res := timing.Analyze(d, m)
	budget := res.CPD

	// No violation at the original mapping.
	if v := violatedPaths(d, m, res, budget); len(v) != 0 {
		t.Fatalf("false positives: %d", len(v))
	}
	// Stretch c away: the b->c chain busts the budget.
	m2 := m.Clone()
	m2[2] = arch.Coord{X: 7, Y: 7}
	res2 := timing.Analyze(d, m2)
	v := violatedPaths(d, m2, res2, budget)
	if len(v) == 0 {
		t.Fatal("regression not detected")
	}
	for _, p := range v {
		if p.Delay <= budget {
			t.Fatalf("non-violating path returned: %g <= %g", p.Delay, budget)
		}
	}
}

func TestPathIdentDistinguishes(t *testing.T) {
	p1 := &timing.Path{Context: 0, Source: -1, Ops: []int{1, 2}}
	p2 := &timing.Path{Context: 0, Source: 3, Ops: []int{1, 2}}
	p3 := &timing.Path{Context: 1, Source: -1, Ops: []int{1, 2}}
	p4 := &timing.Path{Context: 0, Source: -1, Ops: []int{1, 2, 3}}
	ids := map[string]bool{}
	for _, p := range []*timing.Path{p1, p2, p3, p4} {
		id := pathIdent(p)
		if ids[id] {
			t.Fatalf("collision for %+v", p)
		}
		ids[id] = true
	}
}

func TestRemapRejectsBadOptions(t *testing.T) {
	d, err := hls.BuildDesign("x", dfg.FIR(4), arch.Fabric{W: 4, H: 4}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad1 := DefaultOptions()
	bad1.PathThresholdFrac = 0
	if _, err := Remap(context.Background(), d, m0, bad1); err == nil {
		t.Fatal("zero path threshold accepted")
	}
	bad2 := DefaultOptions()
	bad2.RoundThreshold = 0.3
	if _, err := Remap(context.Background(), d, m0, bad2); err == nil {
		t.Fatal("rounding threshold below 0.5 accepted")
	}
	short := m0[:1]
	if _, err := Remap(context.Background(), d, short, DefaultOptions()); err == nil {
		t.Fatal("short mapping accepted")
	}
}
