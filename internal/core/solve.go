package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/flight"
	"agingfp/internal/lp"
	"agingfp/internal/obs"
)

// warmCache holds one LP basis snapshot per context batch, reused across
// Step-1 budget probes and Step-2.3 ST_target probes: consecutive probes
// rebuild each batch's LP with the same shape and only the stress-budget
// data changed, exactly the case the LP layer's dual-simplex warm start
// handles.
//
// The cache always records snapshots (so a finished solve can export
// its final per-batch bases for a later delta re-solve), but only
// serves them back when the solve opted into warm heuristics: the
// relaxation vertex seeds the rounding dive's pin decisions, and a
// warm-started relaxation lands on a different (equally optimal)
// vertex than a cold one, so serving trades bit-identical floorplans
// for speed while recording alone is free of that effect. A nil cache
// disables both.
type warmCache struct {
	slots []*lp.Basis
	serve bool
}

func newWarmCache(n int, serve bool) *warmCache {
	return &warmCache{slots: make([]*lp.Basis, n), serve: serve}
}

func (c *warmCache) get(i int) *lp.Basis {
	if c == nil || !c.serve || i < 0 || i >= len(c.slots) {
		return nil
	}
	return c.slots[i]
}

func (c *warmCache) put(i int, b *lp.Basis) {
	if c == nil || b == nil || i < 0 || i >= len(c.slots) {
		return
	}
	c.slots[i] = b
}

// seed preloads slots from bases exported by a prior solve, returning
// how many were installed. Only a full-length import is accepted: a
// different batch count means the batching changed and slot indices no
// longer correspond.
func (c *warmCache) seed(bases []*lp.Basis) int {
	if c == nil || len(bases) != len(c.slots) {
		return 0
	}
	n := 0
	for i, b := range bases {
		if b != nil {
			c.slots[i] = b
			n++
		}
	}
	return n
}

// export returns a copy of the recorded per-batch snapshots.
func (c *warmCache) export() []*lp.Basis {
	if c == nil {
		return nil
	}
	return append([]*lp.Basis(nil), c.slots...)
}

// solveBatch runs the paper's two-step MILP scheme on one batch problem:
//
//	Step A: solve the LP relaxation (OP_ijk in [0,1]);
//	Step B/C: iterative LP rounding with op-level diving — bulk pre-map
//	        assignments whose LP value clears RoundThreshold (capacity
//	        rows guarantee at most one op can exceed 0.95 per PE-context
//	        slot, so pre-mapping never double-books a PE), pin the
//	        best-scored op otherwise, and backjump on infeasibility.
//
// Returns the per-op PE choice, or ok=false if infeasible at this
// budget, plus an outcome classification for the flight journal:
// "solved", "construction" (buildBatch proved infeasibility),
// "lp_infeasible" (the relaxation itself), "iterlimit" (relaxation
// budget exhausted), "timeout" (probe deadline), or "dive_failed"
// (relaxation feasible but no integral completion found). See
// DESIGN.md §4b.4 for how this implements the paper's LP-relax /
// round>0.95 / residual-ILP loop. The relaxation and each dive restart
// are traced as "core.relax" / "core.dive" spans under parent.
func solveBatch(ctx context.Context, bp *batchProblem, opts Options, stats *Stats, rng *rand.Rand, deadline time.Time, cache *warmCache, slot int, parent obs.Span) (map[int]arch.Coord, bool, string, error) {
	if bp.infeasibleReason != "" {
		return nil, false, "construction", nil
	}
	if len(bp.movable) == 0 {
		return map[int]arch.Coord{}, true, "solved", nil
	}

	// Step A: LP relaxation, warm-started from the previous probe's
	// optimal basis for this batch when one is cached.
	relOpts := lp.Options{WarmStart: cache.get(slot), Trace: opts.Trace}
	rsp := parent.Child("core.relax", obs.Int("vars", bp.lp.NumVars()), obs.Int("rows", bp.lp.NumRows()))
	rel, err := lp.Solve(ctx, bp.lp, relOpts)
	if err != nil {
		rsp.End(obs.String("status", "error"))
		return nil, false, "", fmt.Errorf("core: relaxation: %w", err)
	}
	stats.noteLP(opts.Trace, rel, relOpts.WarmStart != nil)
	rsp.End(obs.String("status", rel.Status.String()), obs.Int("iters", rel.Iters), obs.Bool("warm", rel.Warm))
	switch rel.Status {
	case lp.Infeasible:
		return nil, false, "lp_infeasible", nil
	case lp.Optimal:
		cache.put(slot, rel.Basis)
	case lp.IterLimit:
		// The relaxation ran out of iteration budget: report "no solution
		// at this budget" rather than a hard error, so Algorithm 1's
		// outer loop relaxes ST_target by Delta and retries instead of
		// aborting the whole flow (the same convention as a probe
		// timeout).
		return nil, false, "iterlimit", nil
	default:
		return nil, false, "", fmt.Errorf("core: relaxation ended %v", rel.Status)
	}

	// A few randomized restarts recover from unlucky pin orders; a
	// persistent dive failure is treated as infeasibility at this
	// budget, and the caller relaxes ST_target by Delta exactly as
	// Algorithm 1 does when "solution does not exist".
	restarts := 4
	for r := 0; r < restarts; r++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, false, "timeout", nil
		}
		var warm *lp.Basis
		if opts.WarmHeuristics {
			warm = rel.Basis
		}
		dsp := parent.Child("core.dive", obs.Int("restart", r), obs.Int("movable", len(bp.movable)))
		asn, ok, frac, err := roundingDive(ctx, bp, rel.X, warm, opts, stats, rng, r > 0, deadline, slot, r, dsp)
		if err != nil {
			return nil, false, "", err
		}
		if ok {
			return asn, true, "solved", nil
		}
		if frac < 0.5 {
			// The dive failed far from completion: the budget is most
			// likely genuinely infeasible, so restarts would only burn
			// LP solves.
			break
		}
	}
	return nil, false, "dive_failed", nil
}

// softFix records a tentative op pin for backjumping.
type softFix struct {
	op   int
	cand int
	// saved bounds of the op's variables before pinning.
	savedLo, savedHi []float64
}

// roundingDive pins ops one round at a time, re-solving the LP between
// rounds. A non-nil rootBasis opts the dive into warm-started re-solves:
// each round only pins variable bounds on a fixed row set, so every
// re-solve can reuse the last optimal basis (initially the relaxation's),
// with the LP layer falling back to a cold solve whenever a snapshot goes
// stale. A nil rootBasis keeps every solve cold — warm-started re-solves
// land on different (equally optimal) vertices, the pin heuristic reads
// the vertex, and callers default to reproducible cold floorplans (see
// Options.WarmHeuristics).
//
// The dive owns dsp (a "core.dive" span opened by the caller) and ends
// it with the outcome: ok, the pinned fraction reached, LP re-solve and
// backjump counts. batch and restart locate the dive in the flight
// journal (one "dive" event per call, one "premap" event per pin round).
func roundingDive(ctx context.Context, bp *batchProblem, rootX []float64, rootBasis *lp.Basis, opts Options, stats *Stats, rng *rand.Rand, perturb bool, deadline time.Time, batch, restart int, dsp obs.Span) (asnOut map[int]arch.Coord, okOut bool, fracOut float64, errOut error) {
	prob := bp.lp.CloneBounds()
	useWarm := rootBasis != nil
	warm := rootBasis
	decided := make(map[int]int, len(bp.movable)) // op -> candidate index
	var tentative []softFix
	x := rootX
	frac := func() float64 { return float64(len(decided)) / float64(len(bp.movable)) }

	lpSolves, backjumps := 0, 0
	bjCtr := opts.Trace.Registry().Counter("agingfp_dive_backjumps_total")
	defer func() {
		dsp.End(obs.Bool("ok", okOut), obs.Float("frac", fracOut),
			obs.Int("lp_solves", lpSolves), obs.Int("backjumps", backjumps))
		status := "failed"
		if okOut {
			status = "integral"
		}
		opts.Flight.Record(flight.Event{Kind: flight.KindDive,
			Batch: batch, Round: restart, Status: status, N: len(decided)})
	}()

	// Every pin is recorded so an infeasible LP can backjump through it —
	// including the bulk 0.95 pre-mappings, whose greediness is otherwise
	// unrecoverable.
	pin := func(op, cand int) {
		vars := bp.varOf[op]
		fx := softFix{op: op, cand: cand,
			savedLo: make([]float64, len(vars)),
			savedHi: make([]float64, len(vars))}
		for i, v := range vars {
			fx.savedLo[i], fx.savedHi[i] = prob.Bounds(v)
			if i == cand {
				prob.SetBounds(v, 1, 1)
			} else {
				prob.SetBounds(v, 0, 0)
			}
		}
		decided[op] = cand
		tentative = append(tentative, fx)
	}

	// Each outer round: (1) make the pinned LP feasible, backjumping as
	// needed; (2) pin at least one more op from the fresh LP solution.
	// Every round either pins or retracts, and retraction permanently
	// forbids a candidate, so the loop terminates; the budget below cuts
	// hopeless instances short.
	maxLP := 60 + 3*len(bp.movable)
	lpBudget := maxLP
	fresh := true // rootX is valid for the unpinned problem
	for {
		for !fresh {
			if lpBudget--; lpBudget < 0 {
				return nil, false, frac(), nil
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return nil, false, frac(), nil
			}
			wopts := lp.Options{WarmStart: warm, Trace: opts.Trace}
			sol, err := lp.Solve(ctx, prob, wopts)
			if err != nil {
				return nil, false, frac(), err
			}
			lpSolves++
			stats.noteLP(opts.Trace, sol, wopts.WarmStart != nil)
			if sol.Status == lp.Optimal {
				x = sol.X
				if useWarm {
					warm = sol.Basis
				}
				fresh = true
				break
			}
			if !backjump(bp, prob, &tentative, decided) {
				return nil, false, frac(), nil // infeasible at this budget
			}
			backjumps++
			bjCtr.Inc()
		}
		if len(decided) == len(bp.movable) {
			// All ops pinned under a feasible LP: done.
			asn, ok, err := extractDecided(bp, decided)
			return asn, ok, 1, err
		}

		// Pin round: bulk pre-mapping at the paper's threshold; when no
		// op qualifies, pin a quantum (1/8) of the undecided ops by
		// score (see orderBonus for the ordering rationale), with random
		// perturbation on restarts. Quantum pinning keeps the LP-solve
		// count O(log) instead of O(ops) on large batches; same-round
		// pins avoid sharing a PE so they cannot conflict trivially.
		progress := false
		bulkPins := 0
		type cand struct {
			op, cand, pe int
			score        float64
		}
		var scored []cand
		for _, op := range bp.movable {
			if _, done := decided[op]; done {
				continue
			}
			bestI, bestScore := -1, -1.0
			bulk := false
			for i, v := range bp.varOf[op] {
				lo, hi := prob.Bounds(v)
				if lo > hi || hi < 0.5 {
					continue // forbidden by an earlier backjump
				}
				val := x[v]
				if val >= opts.RoundThreshold {
					pin(op, i)
					progress = true
					bulk = true
					bulkPins++
					break
				}
				score := val + orderBonus*bp.stressOf[op]
				if perturb {
					score += rng.Float64() * 0.5
				}
				if score > bestScore {
					bestI, bestScore = i, score
				}
			}
			if !bulk && bestI >= 0 {
				scored = append(scored, cand{op: op, cand: bestI, pe: bp.candOf[op][bestI], score: bestScore})
			}
		}
		if !progress {
			if len(scored) == 0 {
				return nil, false, frac(), nil // every candidate of some op forbidden
			}
			sort.Slice(scored, func(a, b int) bool { return scored[a].score > scored[b].score })
			// Small batches pin one op per round (precision); large
			// batches pin a quantum to keep LP-solve counts sublinear.
			quota := 1
			if len(bp.movable) >= 40 {
				quota = 1 + len(scored)/8
			}
			usedPE := map[int]bool{}
			pinned := 0
			for _, c := range scored {
				if pinned >= quota {
					break
				}
				if usedPE[c.pe] {
					continue
				}
				usedPE[c.pe] = true
				pin(c.op, c.cand)
				pinned++
			}
		}
		opts.Flight.Record(flight.Event{Kind: flight.KindPremap,
			Batch: batch, Round: restart, N: bulkPins, M: len(bp.movable) - len(decided)})
		fresh = false
	}
}

// backjump retracts the most recent tentative pin, restoring its op's
// variable bounds and forbidding the failed candidate. Returns false when
// there is nothing to retract.
func backjump(bp *batchProblem, prob *lp.Problem, tentative *[]softFix, decided map[int]int) bool {
	n := len(*tentative)
	if n == 0 {
		return false
	}
	fx := (*tentative)[n-1]
	*tentative = (*tentative)[:n-1]
	vars := bp.varOf[fx.op]
	for i, v := range vars {
		prob.SetBounds(v, fx.savedLo[i], fx.savedHi[i])
	}
	// Forbid the candidate that led to infeasibility.
	prob.SetBounds(vars[fx.cand], 0, 0)
	delete(decided, fx.op)
	return true
}

func extractDecided(bp *batchProblem, decided map[int]int) (map[int]arch.Coord, bool, error) {
	out := make(map[int]arch.Coord, len(decided))
	for op, cand := range decided {
		out[op] = bp.fab.CoordOf(bp.candOf[op][cand])
	}
	return out, true, nil
}

// extractAssignment reads the chosen PE of each movable op from a MILP
// solution vector.
func extractAssignment(bp *batchProblem, x []float64) (map[int]arch.Coord, bool, error) {
	out := make(map[int]arch.Coord, len(bp.movable))
	for _, op := range bp.movable {
		chosen := -1
		for i, v := range bp.varOf[op] {
			if x[v] > 0.5 {
				if chosen >= 0 {
					return nil, false, fmt.Errorf("core: op %d assigned twice", op)
				}
				chosen = i
			}
		}
		if chosen < 0 {
			return nil, false, fmt.Errorf("core: op %d unassigned", op)
		}
		out[op] = bp.fab.CoordOf(bp.candOf[op][chosen])
	}
	return out, true, nil
}

// constructionFamily maps buildBatch's infeasibleReason strings onto the
// flight recorder's constraint families.
func constructionFamily(reason string) string {
	if reason == "committed stress alone exceeds ST_target" {
		return flight.FamilyStressBudget
	}
	// Both remaining construction bail-outs ("frozen path exceeds its
	// wire budget", "path budget exhausted by fixed arcs") are wire-budget
	// rows over their path-delay limit.
	return flight.FamilyPathDelay
}

// diagRelaxedRHS stands in for an unbounded right-hand side in the
// diagnosis re-solves: lp.validate rejects infinities, and any batch row's
// meaningful RHS is orders of magnitude below it.
const diagRelaxedRHS = 1e9

// diagnoseInfeasible attributes an infeasible batch relaxation to a
// constraint family by re-solving with families relaxed cumulatively in
// severity order: feasible with the stress budgets lifted means the
// stress budget was the blocker; feasible only with the wire budgets
// lifted too means path delay; otherwise the assignment/capacity
// structure itself admits no solution. The diagnosis solves run with the
// context's flight recorder shadowed so they never pollute the journal's
// LP-effort aggregates.
func diagnoseInfeasible(ctx context.Context, bp *batchProblem) string {
	dctx := flight.WithRecorder(ctx, nil)
	feasibleWithout := func(rowSets ...[]int) bool {
		relaxed := make(map[int]bool)
		for _, rows := range rowSets {
			for _, i := range rows {
				relaxed[i] = true
			}
		}
		q := lp.NewProblem()
		for j := 0; j < bp.lp.NumVars(); j++ {
			lb, ub := bp.lp.Bounds(j)
			q.AddVar(bp.lp.Obj(j), lb, ub)
		}
		for i, r := range bp.lp.Rows() {
			rhs := r.RHS
			if relaxed[i] {
				rhs = diagRelaxedRHS // stress/path rows are all <=
			}
			q.MustAddRow(r.Sense, rhs, r.Idx, r.Val)
		}
		sol, err := lp.Solve(dctx, q, lp.Options{})
		return err == nil && sol.Status == lp.Optimal
	}
	if len(bp.stressRows) > 0 && feasibleWithout(bp.stressRows) {
		return flight.FamilyStressBudget
	}
	if len(bp.pathRows) > 0 && feasibleWithout(bp.stressRows, bp.pathRows) {
		return flight.FamilyPathDelay
	}
	return flight.FamilyAssignment
}

// batches partitions contexts [0, C) into chunks of size per (0 or >= C
// means a single batch).
func batches(numContexts, per int) [][]int {
	if per <= 0 || per >= numContexts {
		all := make([]int, numContexts)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	var out [][]int
	for at := 0; at < numContexts; at += per {
		end := at + per
		if end > numContexts {
			end = numContexts
		}
		b := make([]int, 0, end-at)
		for c := at; c < end; c++ {
			b = append(b, c)
		}
		out = append(out, b)
	}
	return out
}

// autoBatch picks a contexts-per-batch keeping the expected simplex
// basis below roughly maxRows rows. Per context the formulation carries
// an assignment row per op, a capacity row per PE, and roughly 1.5
// distance/path rows per op; the stress rows are shared. Simplex cost
// grows with m^2 per iteration and ~m iterations, so halving m is nearly
// an 8x speedup — small batches beat joint solves on wall-clock.
func autoBatch(d *arch.Design, maxRows int) int {
	opsPerCtx := float64(d.NumOps()) / float64(d.NumContexts)
	perCtx := opsPerCtx*2.5 + float64(d.Fabric.NumPEs())
	fixedRows := float64(d.Fabric.NumPEs())
	per := int((float64(maxRows) - fixedRows) / math.Max(perCtx, 1))
	if per < 1 {
		per = 1
	}
	if per > d.NumContexts {
		per = d.NumContexts
	}
	return per
}

// orderBonus weights the stress-rate term in the dive's pin ordering.
// It is negative: low-stress operations sit on tightly-budgeted chained
// paths (their wire slack, not their stress, is the scarce resource), so
// they are pinned first while the fabric is open, and the heavy but
// positionally flexible DMU ops fill in afterwards. Determined empirically
// (see TestOrderingSweep); exposed as a variable for experimentation.
var orderBonus = -0.3
