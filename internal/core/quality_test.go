package core

import (
	"context"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/place"
)

// TestRemapQuality is the end-to-end quality regression for the dive's
// pin ordering and LP guidance: on the FIR workload the flow must push
// the stress budget down to (near) the delay-unaware lower bound. The
// per-PE optimum here is one op per PE, i.e. the single-DMU stress rate.
func TestRemapQuality(t *testing.T) {
	d, err := hls.BuildDesign("fir", dfg.FIR(16), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Mode = Freeze
	r, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Improved {
		t.Fatalf("no improvement: max stress stayed %.3f", r.NewMaxStress)
	}
	// The ideal level is the lone-DMU stress rate (0.628); allow a
	// little slack for search noise but demand most of the gain.
	ideal := arch.DMUDelayNs / arch.DefaultClockPeriodNs
	if r.NewMaxStress > ideal*1.15 {
		t.Fatalf("weak leveling: new max %.3f, ideal %.3f", r.NewMaxStress, ideal)
	}
}

// TestRemapBothRotateNeverWorse asserts the Table-I shape Rotate >=
// Freeze on a couple of workloads.
func TestRemapBothRotateNeverWorse(t *testing.T) {
	skipUnderRace(t)
	for _, mk := range []func() *dfg.Graph{func() *dfg.Graph { return dfg.FIR(16) }, dfg.DCT8} {
		d, err := hls.BuildDesign("x", mk(), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fr, ro, err := RemapBoth(context.Background(), d, m0, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ro.NewMaxStress > fr.NewMaxStress+1e-9 {
			t.Fatalf("%s: Rotate (%.3f) worse than Freeze (%.3f)", d.Name, ro.NewMaxStress, fr.NewMaxStress)
		}
	}
}
