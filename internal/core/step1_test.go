package core

import (
	"context"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/place"
)

// TestStep1GreedyVsMILP validates the default Step-1 substitution
// (DESIGN.md §4b.3): the LPT greedy bound must agree with the paper's
// delay-unaware binary-search MILP to within one binary-search
// resolution step on representative workloads.
func TestStep1GreedyVsMILP(t *testing.T) {
	skipUnderRace(t)
	for _, mk := range []struct {
		name string
		g    *dfg.Graph
	}{
		{"fir16", dfg.FIR(16)},
		{"dct8", dfg.DCT8()},
		{"iir4", dfg.IIR(4)},
	} {
		d, err := hls.BuildDesign(mk.name, mk.g, arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}

		run := func(milpStep1 bool) *Result {
			opts := DefaultOptions()
			opts.Mode = Freeze
			opts.Step1MILP = milpStep1
			r, err := Remap(context.Background(), d, m0, opts)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		greedy := run(false)
		milp := run(true)

		stress0 := arch.ComputeStress(d, m0)
		resolution := (stress0.Max() - stress0.Mean()) / 8 // ~2 bisection steps
		diff := greedy.STLowerBound - milp.STLowerBound
		if diff < 0 {
			diff = -diff
		}
		if diff > resolution {
			t.Errorf("%s: greedy LB %.4f vs MILP LB %.4f differ by more than %.4f",
				mk.name, greedy.STLowerBound, milp.STLowerBound, resolution)
		}
		// The binary search returns the smallest feasible budget only up
		// to its own resolution (range / 2^steps), so the MILP bound may
		// sit at most one resolution step above the greedy-achievable
		// point — never more.
		stepRes := (stress0.Max() - stress0.Mean()) / 128 * 4 // 7 steps, with slack
		if milp.STLowerBound > greedy.STLowerBound+stepRes {
			t.Errorf("%s: MILP LB %.4f more than one search step above greedy %.4f",
				mk.name, milp.STLowerBound, greedy.STLowerBound)
		}
	}
}
