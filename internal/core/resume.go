package core

import (
	"context"

	"agingfp/internal/arch"
	"agingfp/internal/lp"
)

// Prior packages the artifacts a finished Remap exported (see
// Result.FrozenOps / Result.Bases / Result.STTarget) for seeding a
// re-solve of a near-identical design — the serve layer's delta API.
//
// Every field is advisory: seeding can only skip work, never force a
// wrong answer. Frozen rotations are revalidated against the new
// design's critical ops, the ST bracket is re-probed (a miss falls
// back to the normal budget search), and basis snapshots go through
// the LP layer's warm-start validation, which rejects anything whose
// shape no longer fits.
type Prior struct {
	// Frozen is the prior solution's frozen critical-op positions,
	// keyed by op index in the NEW design's numbering (the caller
	// aligns numberings; ops that no longer exist are simply absent).
	Frozen map[int]arch.Coord
	// STTarget / STLowerBound bracket the prior solve's final budget.
	STTarget     float64
	STLowerBound float64
	// Bases are per-batch LP basis snapshots from the prior search.
	Bases []*lp.Basis
	// Mapping is the prior solve's floorplan, in the NEW design's op
	// numbering. The bracket resume validates it directly against the
	// new instance (structure, per-PE stress at the prior target, CPD
	// under the delay budget) — on an unchanged or gently-mutated
	// design this replaces the bracket's whole MILP probe with one
	// timing analysis. The probe pool's lazy path rows accumulate
	// across a solve, so re-running the MILP would not reliably
	// reproduce the prior's winning probe; validating its output does.
	Mapping arch.Mapping
}

// RemapFromPrior runs Remap seeded with a previous solve's artifacts.
//
// It opts into Options.WarmHeuristics — the point of a seeded re-solve
// is speed, and serving recorded bases to the relaxations is where
// most of the savings live — so the result may be a different (still
// budget- and CPD-valid) floorplan than a cold Remap would produce.
// Callers needing bit-reproducibility must solve cold.
//
// The returned Result.Resume reports which artifacts were actually
// used.
func RemapFromPrior(ctx context.Context, d *arch.Design, m0 arch.Mapping, opts Options, prior *Prior) (*Result, error) {
	opts.prior = prior
	if prior != nil {
		opts.WarmHeuristics = true
	}
	return Remap(ctx, d, m0, opts)
}

// priorFrozen decides whether the prior's frozen rotations still cover
// this design's critical ops, returning the reusable frozen map. Reuse
// requires every critical op to have a prior position that is on the
// fabric, with no two frozen ops of one context sharing a PE — the
// same invariants rotateFrozen guarantees. Ops the prior froze that
// are no longer critical are dropped (keeping them would only tighten
// the floor for no timing benefit).
func priorFrozen(d *arch.Design, crit map[int]bool, prior *Prior) (map[int]arch.Coord, bool) {
	if prior == nil || prior.Frozen == nil {
		return nil, false
	}
	out := make(map[int]arch.Coord, len(crit))
	used := make(map[[3]int]bool, len(crit))
	for op := range crit {
		pe, ok := prior.Frozen[op]
		if !ok || op >= d.NumOps() {
			return nil, false
		}
		if pe.X < 0 || pe.X >= d.Fabric.W || pe.Y < 0 || pe.Y >= d.Fabric.H {
			return nil, false
		}
		key := [3]int{d.Ctx[op], pe.X, pe.Y}
		if used[key] {
			return nil, false
		}
		used[key] = true
		out[op] = pe
	}
	return out, true
}
