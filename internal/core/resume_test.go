package core

import (
	"context"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/milp"
)

// solveSetup builds the placed FIR design the resume tests seed and
// re-solve. (bench.Synthesize is off-limits here: bench imports core,
// so using it from an internal core test would be an import cycle.)
func solveSetup(t *testing.T) (*arch.Design, arch.Mapping) {
	t.Helper()
	return buildSmall(t, dfg.FIR(8), 4, 4)
}

// TestRemapExportsArtifacts checks every cold solve now carries the
// delta-seeding artifact set.
func TestRemapExportsArtifacts(t *testing.T) {
	d, m0 := solveSetup(t)
	opts := DefaultOptions()
	res, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.Feasible && res.Status != milp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.FrozenOps == nil {
		t.Fatal("FrozenOps not exported")
	}
	if len(res.Bases) == 0 {
		t.Fatal("Bases not exported")
	}
	if res.Resume != nil {
		t.Fatal("cold solve must not report Resume info")
	}
}

// TestRemapFromPriorSameDesign re-solves the identical instance seeded
// with its own artifacts: the bracket must hit and the budget search
// collapse to at most two probes.
func TestRemapFromPriorSameDesign(t *testing.T) {
	d, m0 := solveSetup(t)
	opts := DefaultOptions()
	cold, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != milp.Feasible {
		t.Skipf("cold solve not feasible (%v); bracket resume untestable", cold.Status)
	}
	prior := &Prior{
		Frozen:       cold.FrozenOps,
		STTarget:     cold.STTarget,
		STLowerBound: cold.STLowerBound,
		Bases:        cold.Bases,
		Mapping:      cold.Mapping,
	}
	warm, err := RemapFromPrior(context.Background(), d, m0, opts, prior)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != milp.Feasible {
		t.Fatalf("seeded status %v", warm.Status)
	}
	if warm.Resume == nil {
		t.Fatal("seeded solve lost Resume info")
	}
	if !warm.Resume.BracketHit {
		t.Fatal("bracket did not hit on the identical instance")
	}
	if warm.Resume.BasesSeeded == 0 {
		t.Fatal("no bases seeded despite matching batch count")
	}
	if cw, cc := warm.Stats.OuterIterations, cold.Stats.OuterIterations; cw > cc {
		t.Fatalf("seeded solve used %d probes, cold used %d", cw, cc)
	}
	if err := arch.ValidateMapping(d, warm.Mapping); err != nil {
		t.Fatalf("seeded mapping invalid: %v", err)
	}
}

// TestRemapFromPriorMutatedDesign seeds a one-op-kind delta — the
// delta API's core scenario. The seeded solve must stay valid and
// spend fewer ST probes than a cold solve of the mutated design.
func TestRemapFromPriorMutatedDesign(t *testing.T) {
	d, m0 := solveSetup(t)
	opts := DefaultOptions()
	cold, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != milp.Feasible {
		t.Skipf("cold solve not feasible (%v)", cold.Status)
	}

	// Flip one op's kind; same graph, same schedule.
	d2, _ := solveSetup(t)
	d2.Graph.Ops[0].Kind = 1 - d2.Graph.Ops[0].Kind

	coldMut, err := Remap(context.Background(), d2, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	prior := &Prior{
		Frozen:       cold.FrozenOps,
		STTarget:     cold.STTarget,
		STLowerBound: cold.STLowerBound,
		Bases:        cold.Bases,
		Mapping:      cold.Mapping,
	}
	warm, err := RemapFromPrior(context.Background(), d2, m0, opts, prior)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != milp.Feasible {
		t.Fatalf("seeded status %v", warm.Status)
	}
	if err := arch.ValidateMapping(d2, warm.Mapping); err != nil {
		t.Fatalf("seeded mapping invalid: %v", err)
	}
	if coldMut.Status == milp.Feasible && warm.Stats.OuterIterations > coldMut.Stats.OuterIterations {
		t.Fatalf("seeded solve used %d probes, cold solve of the mutated design used %d",
			warm.Stats.OuterIterations, coldMut.Stats.OuterIterations)
	}
}

func TestPriorFrozenValidation(t *testing.T) {
	d, _ := solveSetup(t)
	crit := map[int]bool{0: true, 1: true}
	coord := arch.Coord{X: 0, Y: 0}

	if _, ok := priorFrozen(d, crit, nil); ok {
		t.Fatal("nil prior must not reuse")
	}
	if _, ok := priorFrozen(d, crit, &Prior{Frozen: map[int]arch.Coord{0: coord}}); ok {
		t.Fatal("missing critical op must not reuse")
	}
	if _, ok := priorFrozen(d, crit, &Prior{Frozen: map[int]arch.Coord{
		0: {X: -1, Y: 0}, 1: coord}}); ok {
		t.Fatal("off-fabric position must not reuse")
	}
	good := &Prior{Frozen: map[int]arch.Coord{0: {X: 0, Y: 0}, 1: {X: 1, Y: 0}}}
	fp, ok := priorFrozen(d, crit, good)
	if !ok || len(fp) != 2 {
		t.Fatalf("valid prior rejected (ok=%v len=%d)", ok, len(fp))
	}
	// Ops 0 and 1 share a context in B1's synthesis only if the chain
	// template put them there; force the collision case explicitly.
	if d.Ctx[0] == d.Ctx[1] {
		dup := &Prior{Frozen: map[int]arch.Coord{0: coord, 1: coord}}
		if _, ok := priorFrozen(d, crit, dup); ok {
			t.Fatal("same-context PE collision must not reuse")
		}
	}
}
