package core

import (
	"math/rand"
	"sort"

	"agingfp/internal/arch"
	"agingfp/internal/flight"
	"agingfp/internal/lp"
	"agingfp/internal/timing"
)

// candidateSets picks each movable op's candidate PEs: the op's original
// PE, its nearest PEs (cheap wires), the fabric's least-stressed PEs
// (spreading targets), and a random sample (connectivity of the implied
// bipartite graph), excluding PEs occupied by frozen ops of the same
// context. K <= 0 derives a default from the fabric size.
func candidateSets(d *arch.Design, m arch.Mapping, stress0 arch.StressMap,
	frozenPos map[int]arch.Coord, movable []int, K int, rng *rand.Rand) map[int][]int {

	f := d.Fabric
	n := f.NumPEs()
	// Default: the full fabric. Simplex cost scales with constraint
	// rows, not candidate columns, so full candidate sets are affordable
	// even at 16x16 — and they remove sampling noise from feasibility
	// (a sampled set can randomly miss the only legal spreading).
	if K <= 0 || K > n {
		K = n
	}

	// Frozen occupancy per context.
	frozenAt := make(map[[3]int]bool, len(frozenPos))
	for op, pe := range frozenPos {
		frozenAt[[3]int{d.Ctx[op], pe.X, pe.Y}] = true
	}

	// Global least-stressed PEs (from the original stress map).
	byStress := make([]int, n)
	for i := range byStress {
		byStress[i] = i
	}
	sort.Slice(byStress, func(a, b int) bool {
		ca, cb := f.CoordOf(byStress[a]), f.CoordOf(byStress[b])
		sa, sb := stress0.At(ca), stress0.At(cb)
		if sa != sb {
			return sa < sb
		}
		return byStress[a] < byStress[b]
	})

	out := make(map[int][]int, len(movable))
	for _, op := range movable {
		c := d.Ctx[op]
		ok := func(pe int) bool {
			co := f.CoordOf(pe)
			return !frozenAt[[3]int{c, co.X, co.Y}]
		}
		set := make(map[int]bool, K)
		add := func(pe int) {
			if len(set) < K && ok(pe) {
				set[pe] = true
			}
		}
		add(f.Index(m[op]))
		// Nearest PEs to the original location.
		near := make([]int, n)
		for i := range near {
			near[i] = i
		}
		orig := m[op]
		sort.Slice(near, func(a, b int) bool {
			da, db := f.CoordOf(near[a]).Dist(orig), f.CoordOf(near[b]).Dist(orig)
			if da != db {
				return da < db
			}
			return near[a] < near[b]
		})
		for i := 0; i < len(near) && len(set) < 1+K/3; i++ {
			add(near[i])
		}
		// Least-stressed PEs.
		for i := 0; i < n && len(set) < 1+2*K/3; i++ {
			add(byStress[i])
		}
		// Random fill.
		for guard := 0; len(set) < K && guard < 8*n; guard++ {
			add(rng.Intn(n))
		}
		cands := make([]int, 0, len(set))
		for pe := range set {
			cands = append(cands, pe)
		}
		sort.Ints(cands)
		out[op] = cands
	}
	return out
}

// batchProblem is the assignment MILP for one batch of contexts.
type batchProblem struct {
	lp       *lp.Problem
	fab      arch.Fabric
	ints     []int           // binary assignment variables
	movable  []int           // ops being re-bound in this batch
	candOf   map[int][]int   // op -> candidate PE linear indices
	varOf    map[int][]int   // op -> variable ids, parallel to candOf
	stressOf map[int]float64 // op -> stress rate (dive ordering heuristic)
	// stressRows and pathRows index the accumulated-stress and wire-budget
	// constraint rows, so an infeasible relaxation can be re-solved with
	// one family relaxed at a time to attribute the failure (flight
	// recorder's infeasibility digest).
	stressRows []int
	pathRows   []int
	// infeasibleReason is non-empty when construction itself proved the
	// batch infeasible (e.g. a frozen-only path over budget).
	infeasibleReason string
}

// addRow appends one constraint and labels its family, so the kernel
// profiler can attribute simplex pivots to the formulation rows that
// drive them.
func (bp *batchProblem) addRow(family string, sense lp.Sense, rhs float64, idx []int, val []float64) {
	row := bp.lp.NumRows()
	bp.lp.MustAddRow(sense, rhs, idx, val)
	bp.lp.SetRowFamily(row, family)
}

// buildBatch constructs formulation (3) for the ops of the given contexts:
//
//	assignment equalities      sum_k OP_ijk = 1
//	PE capacity                sum_j OP_ijk <= 1        (per context, PE)
//	accumulated stress         sum OP_ijk * ST(op) <= ST_target - committed
//	path wire-length budgets   sum wirelen <= (CPD - sum PEdelay)/unitWire
//
// mCur holds current positions (earlier batches already re-bound); ops
// outside the batch and frozen ops enter the path constraints as
// constants. committed[pe] is stress already pinned at each PE (frozen
// ops everywhere + ops of earlier batches).
func buildBatch(d *arch.Design, mCur arch.Mapping, inBatch map[int]bool,
	frozenPos map[int]arch.Coord, cands map[int][]int, paths []*timing.Path,
	stTarget float64, committed []float64, cpd float64, opts Options) *batchProblem {

	f := d.Fabric
	bp := &batchProblem{
		lp:       lp.NewProblem(),
		fab:      f,
		candOf:   cands,
		varOf:    make(map[int][]int),
		stressOf: make(map[int]float64),
	}

	// Movable ops: batch ops that are not frozen.
	for op := 0; op < d.NumOps(); op++ {
		if !inBatch[d.Ctx[op]] {
			continue
		}
		if _, fr := frozenPos[op]; fr {
			continue
		}
		bp.movable = append(bp.movable, op)
		bp.stressOf[op] = d.StressRate(op)
	}
	movableSet := make(map[int]bool, len(bp.movable))
	for _, op := range bp.movable {
		movableSet[op] = true
	}

	// Assignment variables and equalities.
	for _, op := range bp.movable {
		vars := make([]int, len(cands[op]))
		ones := make([]float64, len(cands[op]))
		for i := range cands[op] {
			vars[i] = bp.lp.AddVar(0, 0, 1)
			ones[i] = 1
			bp.ints = append(bp.ints, vars[i])
		}
		bp.varOf[op] = vars
		bp.addRow(flight.FamilyAssignment, lp.EQ, 1, vars, ones)
	}

	// Capacity: at most one op per PE per context (among movable ops;
	// frozen PEs were excluded from candidate sets). Slots are emitted in
	// sorted order — row order steers simplex pivoting, and map-order
	// iteration here would make the whole flow nondeterministic across
	// process runs.
	type slot struct{ ctx, pe int }
	capVars := make(map[slot][]int)
	var slots []slot
	for _, op := range bp.movable {
		for i, pe := range cands[op] {
			s := slot{d.Ctx[op], pe}
			if _, seen := capVars[s]; !seen {
				slots = append(slots, s)
			}
			capVars[s] = append(capVars[s], bp.varOf[op][i])
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].ctx != slots[b].ctx {
			return slots[a].ctx < slots[b].ctx
		}
		return slots[a].pe < slots[b].pe
	})
	for _, s := range slots {
		vars := capVars[s]
		if len(vars) < 2 {
			continue
		}
		ones := make([]float64, len(vars))
		for i := range ones {
			ones[i] = 1
		}
		bp.addRow(flight.FamilyCapacity, lp.LE, 1, vars, ones)
	}

	// Accumulated stress budget per PE.
	type stressTerm struct {
		vars []int
		val  []float64
	}
	stressRows := make([]stressTerm, f.NumPEs())
	for _, op := range bp.movable {
		sr := d.StressRate(op)
		for i, pe := range cands[op] {
			stressRows[pe].vars = append(stressRows[pe].vars, bp.varOf[op][i])
			stressRows[pe].val = append(stressRows[pe].val, sr)
		}
	}
	for pe, term := range stressRows {
		rhs := stTarget - committed[pe]
		if rhs < -1e-9 {
			// Frozen/earlier-batch stress alone busts the budget: no
			// assignment of this batch can repair it.
			bp.infeasibleReason = "committed stress alone exceeds ST_target"
			return bp
		}
		if len(term.vars) == 0 {
			continue
		}
		if rhs < 0 {
			rhs = 0
		}
		bp.stressRows = append(bp.stressRows, bp.lp.NumRows())
		bp.addRow(flight.FamilyStressBudget, lp.LE, rhs, term.vars, term.val)
	}

	// Path wire-length budgets. Positions of non-movable endpoints are
	// constants; movable endpoints expand into sum_k OP*coord terms.
	posOf := func(op int) (arch.Coord, bool) { // constant position, or movable
		if movableSet[op] {
			return arch.Coord{}, false
		}
		if pe, fr := frozenPos[op]; fr {
			return pe, true
		}
		return mCur[op], true
	}

	type arcKey struct{ a, b int }
	type arcVars struct{ dx, dy int }
	distOf := make(map[arcKey]arcVars)
	maxDist := float64(f.W - 1 + f.H - 1)
	// The wire term keeps the otherwise-null objective from leaving the
	// LP relaxation completely undirected: it concentrates each op's
	// fractional mass near its data neighbours, which is what makes the
	// 0.95 pre-mapping rule and the rounding dive effective. It never
	// affects feasibility.
	wireObj := 0.0
	if opts.WireObjective {
		wireObj = 0.02
	}

	// axisRow adds d >= expr(a) - expr(b) for one axis, where expr is the
	// (variable or constant) coordinate of the endpoint.
	axisRow := func(dvar int, aOp, bOp int, axis int) {
		build := func(sign float64, op int, idx *[]int, val *[]float64, rhs *float64) {
			if pos, fixed := posOf(op); fixed {
				cv := float64(pos.X)
				if axis == 1 {
					cv = float64(pos.Y)
				}
				*rhs += sign * cv
				return
			}
			for i, pe := range bp.candOf[op] {
				co := f.CoordOf(pe)
				cv := float64(co.X)
				if axis == 1 {
					cv = float64(co.Y)
				}
				if cv == 0 {
					continue
				}
				*idx = append(*idx, bp.varOf[op][i])
				*val = append(*val, -sign*cv) // moved to the LHS
			}
		}
		// d - coord(a) + coord(b) >= -0  =>  d >= coord(a) - coord(b)
		idx := []int{dvar}
		val := []float64{1}
		rhs := 0.0
		build(+1, aOp, &idx, &val, &rhs)
		build(-1, bOp, &idx, &val, &rhs)
		bp.addRow(flight.FamilyWireAxis, lp.GE, rhs, idx, val)
		// d + coord(a) - coord(b) >= 0  =>  d >= coord(b) - coord(a)
		idx = []int{dvar}
		val = []float64{1}
		rhs = 0.0
		build(-1, aOp, &idx, &val, &rhs)
		build(+1, bOp, &idx, &val, &rhs)
		bp.addRow(flight.FamilyWireAxis, lp.GE, rhs, idx, val)
	}

	for _, p := range paths {
		budget := (cpd - p.PEDelaySum) / d.UnitWireDelayNs
		constLen := 0.0
		var rowIdx []int
		var rowVal []float64
		touchesBatch := false
		for _, a := range p.Arcs() {
			if a.From < 0 {
				continue
			}
			pa, fa := posOf(a.From)
			pb, fb := posOf(a.To)
			if fa && fb {
				constLen += float64(pa.Dist(pb))
				continue
			}
			touchesBatch = true
			lo, hi := a.From, a.To
			if lo > hi {
				lo, hi = hi, lo
			}
			key := arcKey{lo, hi}
			av, ok := distOf[key]
			if !ok {
				av = arcVars{
					dx: bp.lp.AddVar(wireObj, 0, maxDist),
					dy: bp.lp.AddVar(wireObj, 0, maxDist),
				}
				distOf[key] = av
				axisRow(av.dx, lo, hi, 0)
				axisRow(av.dy, lo, hi, 1)
			}
			rowIdx = append(rowIdx, av.dx, av.dy)
			rowVal = append(rowVal, 1, 1)
		}
		if !touchesBatch {
			if constLen > budget+1e-9 {
				bp.infeasibleReason = "frozen path exceeds its wire budget"
				return bp
			}
			continue
		}
		rhs := budget - constLen
		if rhs < -1e-9 {
			bp.infeasibleReason = "path budget exhausted by fixed arcs"
			return bp
		}
		// Deduplicate arc variables repeated within one path row.
		di, dv := dedupIdx(rowIdx, rowVal)
		bp.pathRows = append(bp.pathRows, bp.lp.NumRows())
		bp.addRow(flight.FamilyPathDelay, lp.LE, rhs, di, dv)
	}

	return bp
}

// dedupIdx merges duplicate indices by summing their coefficients.
func dedupIdx(idx []int, val []float64) ([]int, []float64) {
	acc := make(map[int]float64, len(idx))
	for k, j := range idx {
		acc[j] += val[k]
	}
	outIdx := make([]int, 0, len(acc))
	for j := range acc {
		outIdx = append(outIdx, j)
	}
	sort.Ints(outIdx)
	outVal := make([]float64, len(outIdx))
	for k, j := range outIdx {
		outVal[k] = acc[j]
	}
	return outIdx, outVal
}
