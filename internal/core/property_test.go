package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/place"
	"agingfp/internal/timing"
)

// TestRemapPropertyRandomDesigns: on random small designs the full flow
// must always return a legal floorplan with CPD within the original and
// max stress within the reported target.
func TestRemapPropertyRandomDesigns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.LayeredSpec{
			Ops: 12 + rng.Intn(16), Depth: 2 + rng.Intn(4),
			DMUFrac: 0.3, MaxFanIn: 2, LocalityBias: 0.8,
		})
		d, err := hls.BuildDesign("prop", g, arch.Fabric{W: 5, H: 5}, hls.DefaultConfig())
		if err != nil {
			return true // generator produced an unschedulable graph; skip
		}
		m0, err := place.Place(d, place.DefaultConfig())
		if err != nil {
			return true
		}
		opts := DefaultOptions()
		opts.Seed = seed
		r, err := Remap(context.Background(), d, m0, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := arch.ValidateMapping(d, r.Mapping); err != nil {
			t.Logf("seed %d: illegal mapping: %v", seed, err)
			return false
		}
		res := timing.Analyze(d, r.Mapping)
		if res.CPD > r.OrigCPD+1e-9 {
			t.Logf("seed %d: CPD %g > %g", seed, res.CPD, r.OrigCPD)
			return false
		}
		s := arch.ComputeStress(d, r.Mapping)
		if s.Max() > r.STTarget+1e-9 {
			t.Logf("seed %d: stress %g above target %g", seed, s.Max(), r.STTarget)
			return false
		}
		if s.Max() != r.NewMaxStress {
			t.Logf("seed %d: reported max %g, actual %g", seed, r.NewMaxStress, s.Max())
			return false
		}
		// Total stress conservation.
		if d := s.Total() - arch.ComputeStress(d, m0).Total(); d > 1e-9 || d < -1e-9 {
			t.Logf("seed %d: stress not conserved", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRemapIdempotentOnLevelDesign: re-running the flow on an already
// leveled floorplan must not regress anything.
func TestRemapIdempotentOnLevelDesign(t *testing.T) {
	skipUnderRace(t)
	d, err := hls.BuildDesign("fir", dfg.FIR(16), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Mode = Freeze
	r1, err := Remap(context.Background(), d, m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Remap(context.Background(), d, r1.Mapping, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NewMaxStress > r1.NewMaxStress+1e-9 {
		t.Fatalf("second pass regressed stress: %.3f -> %.3f", r1.NewMaxStress, r2.NewMaxStress)
	}
	if r2.NewCPD > r1.NewCPD+1e-9 {
		t.Fatalf("second pass regressed CPD: %.3f -> %.3f", r1.NewCPD, r2.NewCPD)
	}
}
