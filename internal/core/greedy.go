package core

import (
	"sort"

	"agingfp/internal/arch"
)

// GreedyLevel is the longest-processing-time (LPT) stress leveler: ops
// sorted by decreasing stress rate are bound, one context at a time, to
// the currently least-stressed PE available in their context.
//
// It is delay-UNAWARE: it balances stress near-optimally but freely
// stretches wires, so its floorplans usually violate the original CPD.
// The re-mapper uses it in two roles:
//
//   - as a fast feasibility pre-check inside Step 1's binary search (if
//     LPT meets a stress budget, the MILP probe can be skipped), and
//   - as the comparison baseline of ablation E7, quantifying the CPD
//     damage a naive leveler causes — the paper's core argument for the
//     delay-aware MILP.
//
// frozen maps op -> fixed coordinate for ops that must not move (empty or
// nil for a fully free leveling).
func GreedyLevel(d *arch.Design, frozen map[int]arch.Coord) arch.Mapping {
	f := d.Fabric
	n := f.NumPEs()
	acc := make([]float64, n) // accumulated stress per PE
	m := make(arch.Mapping, d.NumOps())

	// Frozen ops commit their stress first.
	for op, pe := range frozen {
		m[op] = pe
		acc[f.Index(pe)] += d.StressRate(op)
	}

	for c := 0; c < d.NumContexts; c++ {
		used := make([]bool, n)
		var movable []int
		for _, op := range d.ContextOps(c) {
			if pe, ok := frozen[op]; ok {
				used[f.Index(pe)] = true
				continue
			}
			movable = append(movable, op)
		}
		// LPT order: heaviest stress first.
		sort.Slice(movable, func(i, j int) bool {
			si, sj := d.StressRate(movable[i]), d.StressRate(movable[j])
			if si != sj {
				return si > sj
			}
			return movable[i] < movable[j]
		})
		for _, op := range movable {
			best, bestAcc := -1, 0.0
			for pe := 0; pe < n; pe++ {
				if used[pe] {
					continue
				}
				if best == -1 || acc[pe] < bestAcc {
					best, bestAcc = pe, acc[pe]
				}
			}
			m[op] = f.CoordOf(best)
			used[best] = true
			acc[best] += d.StressRate(op)
		}
	}
	return m
}

// GreedyFeasible reports whether LPT leveling can meet the given
// accumulated-stress budget with the given frozen ops. Used as a cheap
// sufficient (not necessary) feasibility certificate in Step 1.
func GreedyFeasible(d *arch.Design, frozen map[int]arch.Coord, stBudget float64) bool {
	m := GreedyLevel(d, frozen)
	return arch.ComputeStress(d, m).Max() <= stBudget+1e-12
}
