package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
	"agingfp/internal/hls"
	"agingfp/internal/lp"
	"agingfp/internal/obs"
	"agingfp/internal/place"
	"agingfp/internal/timing"
)

// buildFreezeBatch constructs the full delay-aware batch problem for the
// whole design in Freeze mode.
func buildFreezeBatch(t *testing.T, d *arch.Design, m0 arch.Mapping, st float64) (*batchProblem, map[int]arch.Coord) {
	t.Helper()
	res := timing.Analyze(d, m0)
	crit := timing.CriticalOps(d, m0, res, 1e-6)
	frozenPos := make(map[int]arch.Coord, len(crit))
	for op := range crit {
		frozenPos[op] = m0[op]
	}
	paths := timing.EnumeratePaths(d, m0, res, timing.DefaultEnumerateOptions())

	inBatch := map[int]bool{}
	for c := 0; c < d.NumContexts; c++ {
		inBatch[c] = true
	}
	var movable []int
	for op := 0; op < d.NumOps(); op++ {
		if _, fr := frozenPos[op]; !fr {
			movable = append(movable, op)
		}
	}
	committed := make([]float64, d.Fabric.NumPEs())
	for op, pe := range frozenPos {
		committed[d.Fabric.Index(pe)] += d.StressRate(op)
	}
	stress0 := arch.ComputeStress(d, m0)
	rng := rand.New(rand.NewSource(5))
	cands := candidateSets(d, m0, stress0, frozenPos, movable, 0, rng)
	opts := DefaultOptions()
	opts.Mode = Freeze
	bp := buildBatch(d, m0, inBatch, frozenPos, cands, paths, st, committed, res.CPD, opts)
	return bp, frozenPos
}

// TestOriginalAssignmentSatisfiesFormulation: in Freeze mode with the
// budget at the original max stress, the original floorplan must be a
// feasible point of formulation (3). This pins down the formulation's
// correctness independent of any solver heuristics.
func TestOriginalAssignmentSatisfiesFormulation(t *testing.T) {
	d, err := hls.BuildDesign("fir", dfg.FIR(16), arch.Fabric{W: 6, H: 6}, hls.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stUp := arch.ComputeStress(d, m0).Max()
	bp, _ := buildFreezeBatch(t, d, m0, stUp+1e-9)
	if bp.infeasibleReason != "" {
		t.Fatalf("construction infeasible: %s", bp.infeasibleReason)
	}

	// Construct the original assignment as variable values: OP vars from
	// the original mapping, distance vars at their exact |coord diffs|
	// (recovered by minimizing each >= pair, i.e. set to satisfy rows).
	x := make([]float64, bp.lp.NumVars())
	for _, op := range bp.movable {
		found := false
		for i, pe := range bp.candOf[op] {
			if pe == d.Fabric.Index(m0[op]) {
				x[bp.varOf[op][i]] = 1
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("op %d: original PE %v not among its candidates", op, m0[op])
		}
	}
	// Distance variables: satisfy d >= |expr| rows with the smallest
	// possible value. Recover them by scanning rows: every GE row has
	// exactly one distance var with coefficient 1 plus OP terms; set the
	// var to the max over its rows of (rhs - OP terms).
	fixupDistanceVars(bp, x)

	// Check every row.
	if vio := firstViolatedRow(bp.lp, x); vio >= 0 {
		t.Fatalf("original assignment violates row %d of the formulation", vio)
	}

	// And the solver must find some solution at this budget.
	stats := &Stats{}
	asn, ok, _, err := solveBatch(context.Background(), bp, DefaultOptions(), stats, rand.New(rand.NewSource(9)), time.Time{}, nil, 0, obs.Span{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("solver reports infeasible although the original floorplan is feasible")
	}
	if len(asn) != len(bp.movable) {
		t.Fatalf("assignment covers %d of %d movable ops", len(asn), len(bp.movable))
	}
}

// fixupDistanceVars sets non-binary variables to the smallest values
// satisfying all their GE rows given the binary assignment in x.
func fixupDistanceVars(bp *batchProblem, x []float64) {
	isInt := map[int]bool{}
	for _, v := range bp.ints {
		isInt[v] = true
	}
	rows := bp.lp.Rows()
	for _, r := range rows {
		if r.Sense != lp.GE {
			continue
		}
		// Find the single continuous var in the row.
		dvar := -1
		rest := 0.0
		for k, j := range r.Idx {
			if !isInt[j] && r.Val[k] == 1 {
				dvar = j
				continue
			}
			rest += r.Val[k] * x[j]
		}
		if dvar < 0 {
			continue
		}
		need := r.RHS - rest
		if need > x[dvar] {
			x[dvar] = need
		}
	}
}

// firstViolatedRow returns the index of the first violated row, or -1.
func firstViolatedRow(p *lp.Problem, x []float64) int {
	for i, r := range p.Rows() {
		v := 0.0
		for k, j := range r.Idx {
			v += r.Val[k] * x[j]
		}
		switch r.Sense {
		case lp.LE:
			if v > r.RHS+1e-6 {
				return i
			}
		case lp.GE:
			if v < r.RHS-1e-6 {
				return i
			}
		case lp.EQ:
			if math.Abs(v-r.RHS) > 1e-6 {
				return i
			}
		}
	}
	return -1
}
