package hls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

func TestScheduleChainsALUs(t *testing.T) {
	// Four chained ALUs (0.87 each = 3.48) fit one 4.0 ns chaining
	// budget; a fifth must spill to the next cycle.
	g := &dfg.Graph{}
	prev := g.AddOp(dfg.ALU, "a0")
	for i := 1; i < 5; i++ {
		v := g.AddOp(dfg.ALU, "a")
		g.AddEdge(prev, v)
		prev = v
	}
	ctx, n, err := Schedule(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("latency %d, want 2", n)
	}
	for i := 0; i < 4; i++ {
		if ctx[i] != 0 {
			t.Fatalf("op %d in ctx %d, want 0", i, ctx[i])
		}
	}
	if ctx[4] != 1 {
		t.Fatalf("5th op in ctx %d, want 1", ctx[4])
	}
}

func TestScheduleDMUBreaksChain(t *testing.T) {
	// DMU (3.14) + ALU (0.87) = 4.01 exceeds the 4.0 budget: register.
	g := &dfg.Graph{}
	a := g.AddOp(dfg.DMU, "m")
	b := g.AddOp(dfg.ALU, "a")
	g.AddEdge(a, b)
	ctx, n, err := Schedule(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || ctx[0] != 0 || ctx[1] != 1 {
		t.Fatalf("ctx=%v n=%d, want mul/add split", ctx, n)
	}
}

func TestScheduleRespectsCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(10+rng.Intn(60), 2+rng.Intn(6)))
		ctx, n, err := Schedule(g, DefaultConfig())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if n < 1 {
			return false
		}
		for _, e := range g.Edges {
			if ctx[e.From] > ctx[e.To] {
				t.Logf("seed %d: causality violated on edge %v", seed, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleChainDelaysFit(t *testing.T) {
	// Within each context, every chained path's PE delay must fit the
	// chaining budget.
	rng := rand.New(rand.NewSource(17))
	g := dfg.MustNewLayered(rng, dfg.DefaultLayeredSpec(80, 8))
	cfg := DefaultConfig()
	ctx, n, err := Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := cfg.ClockPeriodNs * (1 - cfg.WireReserveFrac)
	// Longest PE-delay chain per context via DP.
	order, _ := g.TopoOrder()
	finish := make([]float64, g.NumOps())
	for _, v := range order {
		start := 0.0
		for _, p := range g.Preds(v) {
			if ctx[p] == ctx[v] && finish[p] > start {
				start = finish[p]
			}
		}
		finish[v] = start + arch.OpDelayNs(g.Ops[v].Kind)
		if finish[v] > budget+1e-9 {
			t.Fatalf("op %d chain delay %.3f exceeds budget %.3f", v, finish[v], budget)
		}
	}
	_ = n
}

func TestScheduleCapacitySpill(t *testing.T) {
	// 10 independent ops with capacity 4 must spread over 3 cycles.
	g := &dfg.Graph{}
	for i := 0; i < 10; i++ {
		g.AddOp(dfg.ALU, "x")
	}
	cfg := DefaultConfig()
	cfg.MaxOpsPerContext = 4
	ctx, n, err := Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("latency %d, want 3", n)
	}
	width := map[int]int{}
	for _, c := range ctx {
		width[c]++
		if width[c] > 4 {
			t.Fatalf("context %d over capacity", c)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	g := dfg.FIR(4)
	if _, _, err := Schedule(g, Config{ClockPeriodNs: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, _, err := Schedule(g, Config{ClockPeriodNs: 5, WireReserveFrac: 1.0}); err == nil {
		t.Fatal("full wire reserve accepted")
	}
	// Op slower than the whole budget.
	if _, _, err := Schedule(g, Config{ClockPeriodNs: 3.0, WireReserveFrac: 0.1}); err == nil {
		t.Fatal("un-schedulable DMU accepted")
	}
	cyc := &dfg.Graph{}
	a := cyc.AddOp(dfg.ALU, "a")
	b := cyc.AddOp(dfg.ALU, "b")
	cyc.AddEdge(a, b)
	cyc.Edges = append(cyc.Edges, dfg.Edge{From: b, To: a})
	if _, _, err := Schedule(cyc, DefaultConfig()); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestBuildDesignValidates(t *testing.T) {
	d, err := BuildDesign("fir8", dfg.FIR(8), arch.Fabric{W: 4, H: 4}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name != "fir8" || d.NumContexts < 2 {
		t.Fatalf("unexpected design: %s, %d contexts", d.Name, d.NumContexts)
	}
	// A tiny fabric forces capacity spilling into extra contexts.
	small, err := BuildDesign("big", dfg.FIR(32), arch.Fabric{W: 2, H: 2}, DefaultConfig())
	if err != nil {
		t.Fatalf("spilling failed: %v", err)
	}
	if small.NumContexts <= d.NumContexts {
		t.Fatalf("expected capacity spilling to stretch the schedule: %d contexts", small.NumContexts)
	}
	if small.MaxContextOps() > 4 {
		t.Fatalf("context wider than the 2x2 fabric: %d", small.MaxContextOps())
	}
}
