// Package hls provides the high-level-synthesis front end of the flow:
// scheduling a data-flow graph into the contexts (clock cycles) of a
// multi-context CGRRA, with operator chaining.
//
// It stands in for the scheduling stage of the commercial Musketeer flow
// used by the paper: the output — a context assignment per operation such
// that chained combinational delay fits in the clock period — is exactly
// the artifact the downstream placer and re-mapper consume.
package hls

import (
	"fmt"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

// Config tunes the scheduler.
type Config struct {
	// ClockPeriodNs is the context cycle time (default
	// arch.DefaultClockPeriodNs).
	ClockPeriodNs float64
	// WireReserveFrac is the fraction of the clock period reserved for
	// interconnect delay when deciding whether an op can chain in the
	// same cycle as its predecessor. The placer must then realize the
	// schedule with wires within this reserve. Default 0.20.
	WireReserveFrac float64
	// MaxOpsPerContext optionally bounds context width (fabric
	// capacity); 0 means unbounded. When a context fills up, ops spill
	// into later cycles.
	MaxOpsPerContext int
}

// DefaultConfig returns the standard 200 MHz configuration.
func DefaultConfig() Config {
	return Config{
		ClockPeriodNs:   arch.DefaultClockPeriodNs,
		WireReserveFrac: 0.20,
	}
}

// Schedule assigns every op of g a context using ASAP list scheduling
// with operator chaining: an op starts in the cycle where all its
// operands are available, chaining combinationally after same-cycle
// predecessors when the accumulated PE delay still fits in the clock
// period minus the wire reserve.
//
// It returns the per-op context assignment and the schedule latency
// (number of contexts).
func Schedule(g *dfg.Graph, cfg Config) (ctx []int, numContexts int, err error) {
	if cfg.ClockPeriodNs <= 0 {
		return nil, 0, fmt.Errorf("hls: clock period %g must be positive", cfg.ClockPeriodNs)
	}
	if cfg.WireReserveFrac < 0 || cfg.WireReserveFrac >= 1 {
		return nil, 0, fmt.Errorf("hls: wire reserve %g out of [0,1)", cfg.WireReserveFrac)
	}
	budget := cfg.ClockPeriodNs * (1 - cfg.WireReserveFrac)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	for _, op := range g.Ops {
		if d := arch.OpDelayNs(op.Kind); d > budget {
			return nil, 0, fmt.Errorf("hls: op %d (%v, %.2f ns) exceeds chaining budget %.2f ns",
				op.ID, op.Kind, d, budget)
		}
	}

	ctx = make([]int, g.NumOps())
	finish := make([]float64, g.NumOps()) // combinational finish time within its cycle
	width := map[int]int{}                // ops per context, for capacity spill

	for _, v := range order {
		d := arch.OpDelayNs(g.Ops[v].Kind)
		cycle := 0
		start := 0.0
		for _, p := range g.Preds(v) {
			pc, pf := ctx[p], finish[p]
			var c int
			var st float64
			if pf+d <= budget {
				c, st = pc, pf // can chain in the producer's cycle
			} else {
				c, st = pc+1, 0 // must register
			}
			if c > cycle {
				cycle, start = c, st
			} else if c == cycle && st > start {
				start = st
			}
		}
		if cfg.MaxOpsPerContext > 0 {
			for width[cycle] >= cfg.MaxOpsPerContext {
				cycle++
				start = 0
			}
		}
		ctx[v] = cycle
		finish[v] = start + d
		width[cycle]++
		if cycle+1 > numContexts {
			numContexts = cycle + 1
		}
	}
	return ctx, numContexts, nil
}

// BuildDesign schedules g and wraps it into an arch.Design on the given
// fabric, validating capacity.
func BuildDesign(name string, g *dfg.Graph, fabric arch.Fabric, cfg Config) (*arch.Design, error) {
	if cfg.MaxOpsPerContext == 0 {
		cfg.MaxOpsPerContext = fabric.NumPEs()
	}
	ctx, n, err := Schedule(g, cfg)
	if err != nil {
		return nil, err
	}
	d := arch.NewDesign(name, fabric, n, g, ctx)
	d.ClockPeriodNs = cfg.ClockPeriodNs
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("hls: scheduled design invalid: %w", err)
	}
	return d, nil
}
