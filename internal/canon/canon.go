// Package canon computes a canonical form for design documents so that
// structurally-equal submissions — the same DFG and context schedule
// under a different op/context numbering, different cosmetic names, or
// extra non-baseline mappings — map to the same cache key.
//
// The canonical form is a full renumbered document, not just a hash:
// the serve layer solves the canonical instance and translates the
// mapping back through Form.OpPerm, which is what makes semantic cache
// hits byte-identical to cold solves of any isomorphic submission.
//
// Soundness does not rest on the refinement being a complete
// isomorphism test. The semantic key is the hash of the entire
// canonical document, so two designs collide only if their canonical
// documents are equal — i.e. they really are the same instance. A
// Weisfeiler–Leman tie the refinement fails to break can at worst
// order automorphism-suspect ops differently for two isomorphic
// submissions, producing different canonical bytes and a missed cache
// hit, never a wrong one.
package canon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"agingfp/internal/arch"
)

// Form is the canonical renumbering of a design document.
type Form struct {
	// Doc is the canonical document: ops and contexts renumbered,
	// cosmetic names cleared, edges sorted, and only the semantically
	// meaningful "baseline" mapping retained.
	Doc *arch.Document
	// OpPerm maps original op index -> canonical op index.
	OpPerm []int
	// CtxPerm maps original context index -> canonical context index.
	CtxPerm []int
	// Hash is the hex SHA-256 of the canonical document's JSON — the
	// semantic identity of the instance (options excluded; the serve
	// layer mixes those in separately).
	Hash string
}

// BaselineMapping is the one mapping name with solve-time meaning: it
// is the starting floorplan the re-mapper improves on. All other
// mappings in a submitted document are ignored by the solver and are
// therefore excluded from semantic identity.
const BaselineMapping = "baseline"

// edge roles distinguish combinational chaining (producer and consumer
// share a context) from registered transfers (consumer runs in a later
// context); the two have different timing semantics, so the refinement
// must not confuse them.
const (
	roleChained    = 0
	roleRegistered = 1
)

// Canonicalize validates doc and computes its canonical form.
//
// The renumbering is deterministic and isomorphism-invariant up to WL
// ties: ops are colored by Weisfeiler–Leman refinement over op kinds,
// edge roles, context membership, and (when present) baseline
// coordinates; contexts are ordered by a signature-guided linear
// extension of the context-precedence DAG, which preserves edge
// causality (Ctx[From] <= Ctx[To]) and is semantically free because
// context indices are pure labels in the timing and stress models.
func Canonicalize(doc *arch.Document) (*Form, error) {
	d, mappings, err := arch.FromDocument(doc)
	if err != nil {
		return nil, fmt.Errorf("canon: %w", err)
	}
	n := d.NumOps()
	baseline := mappings[BaselineMapping]

	colors := refine(d, baseline)

	ctxPerm := orderContexts(d, colors)

	// Re-color with canonical context identity folded in, then order
	// ops by (canonical context, color, original index). The original
	// index only breaks ties between WL-equivalent ops; for isomorphic
	// submissions those ops produce identical canonical rows whenever
	// they are genuinely automorphic.
	final := make([]uint64, n)
	for i := 0; i < n; i++ {
		final[i] = mix(colors[i], uint64(ctxPerm[d.Ctx[i]]))
	}
	final = refineEdges(d, final, 2)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if ctxPerm[d.Ctx[oa]] != ctxPerm[d.Ctx[ob]] {
			return ctxPerm[d.Ctx[oa]] < ctxPerm[d.Ctx[ob]]
		}
		if final[oa] != final[ob] {
			return final[oa] < final[ob]
		}
		return oa < ob
	})
	opPerm := make([]int, n)
	for canonIdx, orig := range order {
		opPerm[orig] = canonIdx
	}

	canonDoc := Renumber(doc, d, baseline, opPerm, ctxPerm)

	payload, err := json.Marshal(canonDoc)
	if err != nil {
		return nil, fmt.Errorf("canon: marshal canonical doc: %w", err)
	}
	sum := sha256.Sum256(payload)
	return &Form{
		Doc:     canonDoc,
		OpPerm:  opPerm,
		CtxPerm: ctxPerm,
		Hash:    hex.EncodeToString(sum[:]),
	}, nil
}

// Renumber builds the canonical document for doc under the given
// permutations. d must be the design built from doc and baseline its
// baseline mapping (nil when absent). Cosmetic fields (design name, op
// names) are cleared and non-baseline mappings dropped: neither affects
// the solve, so neither may affect semantic identity.
func Renumber(doc *arch.Document, d *arch.Design, baseline arch.Mapping, opPerm, ctxPerm []int) *arch.Document {
	n := d.NumOps()
	out := &arch.Document{
		FabricW:         d.Fabric.W,
		FabricH:         d.Fabric.H,
		NumContexts:     d.NumContexts,
		ClockPeriodNs:   d.ClockPeriodNs,
		UnitWireDelayNs: d.UnitWireDelayNs,
		Ops:             make([]arch.DocOp, n),
	}
	for i := 0; i < n; i++ {
		out.Ops[opPerm[i]] = arch.DocOp{
			Kind: int(d.Graph.Ops[i].Kind),
			Ctx:  ctxPerm[d.Ctx[i]],
		}
	}
	edges := make([][2]int, 0, len(d.Graph.Edges))
	for _, e := range d.Graph.Edges {
		edges = append(edges, [2]int{opPerm[e.From], opPerm[e.To]})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	out.Edges = edges
	if baseline != nil {
		m := make([][2]int, n)
		for i := 0; i < n; i++ {
			m[opPerm[i]] = [2]int{baseline[i].X, baseline[i].Y}
		}
		out.Mappings = map[string][][2]int{BaselineMapping: m}
	}
	return out
}

// TranslateMapping converts a mapping over canonical op indices back to
// the caller's original numbering: out[i] = canonical[opPerm[i]].
func TranslateMapping(canonical []arch.Coord, opPerm []int) []arch.Coord {
	out := make([]arch.Coord, len(opPerm))
	for i, p := range opPerm {
		out[i] = canonical[p]
	}
	return out
}

// refine runs WL color refinement over the op set. The initial color
// is the op kind plus, when a baseline mapping is present, the op's
// starting coordinate (the baseline is part of the instance: two
// designs with different starting floorplans are different workloads,
// and the coordinate also breaks most WL ties outright). Rounds fold
// in edge-neighborhood structure and context membership until the
// color partition stops splitting.
func refine(d *arch.Design, baseline arch.Mapping) []uint64 {
	n := d.NumOps()
	colors := make([]uint64, n)
	for i := 0; i < n; i++ {
		c := mix(0x9e3779b97f4a7c15, uint64(d.Graph.Ops[i].Kind))
		if baseline != nil {
			c = mix(c, uint64(baseline[i].X)<<16|uint64(baseline[i].Y))
		}
		colors[i] = c
	}
	// Fabric shape and timing constants participate via a global salt:
	// instances on different fabrics must not share color histories.
	salt := fnv.New64a()
	binary.Write(salt, binary.LittleEndian, int64(d.Fabric.W))
	binary.Write(salt, binary.LittleEndian, int64(d.Fabric.H))
	binary.Write(salt, binary.LittleEndian, int64(d.NumContexts))
	binary.Write(salt, binary.LittleEndian, d.ClockPeriodNs)
	binary.Write(salt, binary.LittleEndian, d.UnitWireDelayNs)
	s := salt.Sum64()
	for i := range colors {
		colors[i] = mix(colors[i], s)
	}

	prev := countColors(colors)
	for round := 0; round < n+1; round++ {
		// Context signatures: the multiset of colors per context, so
		// context membership (capacity coupling) refines op colors even
		// across edge-disconnected components.
		ctxSig := make([]uint64, d.NumContexts)
		perCtx := make([][]uint64, d.NumContexts)
		for i := 0; i < n; i++ {
			perCtx[d.Ctx[i]] = append(perCtx[d.Ctx[i]], colors[i])
		}
		for c := range perCtx {
			ctxSig[c] = hashMultiset(0x517cc1b727220a95, perCtx[c])
		}
		next := make([]uint64, n)
		for i := 0; i < n; i++ {
			next[i] = mix(colors[i], ctxSig[d.Ctx[i]])
		}
		next = refineEdges(d, next, 1)
		colors = next
		if c := countColors(colors); c == prev || c == n {
			break
		} else {
			prev = c
		}
	}
	return colors
}

// refineEdges folds rounds of edge-neighborhood structure into colors:
// each op absorbs the sorted multisets of (role, neighbor color) over
// its in- and out-edges, with chained and registered edges kept
// distinct.
func refineEdges(d *arch.Design, colors []uint64, rounds int) []uint64 {
	n := len(colors)
	for r := 0; r < rounds; r++ {
		in := make([][]uint64, n)
		out := make([][]uint64, n)
		for _, e := range d.Graph.Edges {
			role := uint64(roleRegistered)
			if d.Ctx[e.From] == d.Ctx[e.To] {
				role = roleChained
			}
			out[e.From] = append(out[e.From], mix(role, colors[e.To]))
			in[e.To] = append(in[e.To], mix(role, colors[e.From]))
		}
		next := make([]uint64, n)
		for i := 0; i < n; i++ {
			h := mix(colors[i], 0x2545f4914f6cdd1d)
			h = mix(h, hashMultiset(0x6c62272e07bb0142, in[i]))
			h = mix(h, hashMultiset(0x27d4eb2f165667c5, out[i]))
			next[i] = h
		}
		colors = next
	}
	return colors
}

// orderContexts returns the canonical context permutation: a linear
// extension of the context-precedence DAG (any design edge crossing
// contexts forces producer-context before consumer-context, keeping
// Ctx[From] <= Ctx[To] valid after renumbering), with ready contexts
// chosen by signature so isomorphic submissions make identical picks.
func orderContexts(d *arch.Design, colors []uint64) []int {
	numCtx := d.NumContexts
	sig := make([]uint64, numCtx)
	perCtx := make([][]uint64, numCtx)
	for i := 0; i < d.NumOps(); i++ {
		perCtx[d.Ctx[i]] = append(perCtx[d.Ctx[i]], colors[i])
	}
	for c := 0; c < numCtx; c++ {
		sig[c] = hashMultiset(0x100000001b3, perCtx[c])
	}

	succ := make([]map[int]bool, numCtx)
	indeg := make([]int, numCtx)
	for i := range succ {
		succ[i] = make(map[int]bool)
	}
	for _, e := range d.Graph.Edges {
		a, b := d.Ctx[e.From], d.Ctx[e.To]
		if a != b && !succ[a][b] {
			succ[a][b] = true
			indeg[b]++
		}
	}
	perm := make([]int, numCtx)
	placed := 0
	ready := make([]int, 0, numCtx)
	for c := 0; c < numCtx; c++ {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			if sig[a] < sig[b] || (sig[a] == sig[b] && a < b) {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		perm[c] = placed
		placed++
		for s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	// The precedence relation is a sub-order of the original context
	// order, so it is always acyclic and every context gets placed.
	return perm
}

func countColors(colors []uint64) int {
	seen := make(map[uint64]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// hashMultiset hashes an order-insensitive collection by sorting a
// private copy first.
func hashMultiset(seed uint64, vals []uint64) uint64 {
	s := append([]uint64(nil), vals...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	h := seed
	for _, v := range s {
		h = mix(h, v)
	}
	return h
}

// mix combines two 64-bit values with an fnv-style avalanche. WL color
// collisions are harmless — they can only merge classes and cost cache
// hits, never correctness — so a fast non-cryptographic mix suffices.
func mix(a, b uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], a)
	binary.LittleEndian.PutUint64(buf[8:], b)
	h.Write(buf[:])
	return h.Sum64()
}
