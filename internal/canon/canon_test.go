package canon

import (
	"math/rand"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/bench"
	"agingfp/internal/place"
)

// clientRenumber simulates a messy resubmission of the same design:
// ops renumbered by opPerm, contexts by ctxPerm, a different design
// name, cosmetic op names preserved, and every mapping translated.
// Semantically it is the identical instance.
func clientRenumber(t *testing.T, doc *arch.Document, opPerm, ctxPerm []int) *arch.Document {
	t.Helper()
	out := &arch.Document{
		Name:            doc.Name + "-renumbered",
		FabricW:         doc.FabricW,
		FabricH:         doc.FabricH,
		NumContexts:     doc.NumContexts,
		ClockPeriodNs:   doc.ClockPeriodNs,
		UnitWireDelayNs: doc.UnitWireDelayNs,
		Ops:             make([]arch.DocOp, len(doc.Ops)),
	}
	for i, op := range doc.Ops {
		out.Ops[opPerm[i]] = arch.DocOp{Kind: op.Kind, Name: op.Name, Ctx: ctxPerm[op.Ctx]}
	}
	for _, e := range doc.Edges {
		out.Edges = append(out.Edges, [2]int{opPerm[e[0]], opPerm[e[1]]})
	}
	if doc.Mappings != nil {
		out.Mappings = make(map[string][][2]int)
		for name, m := range doc.Mappings {
			pm := make([][2]int, len(m))
			for i, c := range m {
				pm[opPerm[i]] = c
			}
			out.Mappings[name] = pm
		}
	}
	return out
}

// randomOpPerm returns a uniformly random permutation of n ops.
func randomOpPerm(rng *rand.Rand, n int) []int {
	perm := rng.Perm(n)
	return perm
}

// randomCtxPerm returns a random causality-preserving context
// permutation: a random linear extension of the context-precedence DAG
// induced by doc's cross-context edges.
func randomCtxPerm(rng *rand.Rand, doc *arch.Document) []int {
	n := doc.NumContexts
	indeg := make([]int, n)
	succ := make([]map[int]bool, n)
	for i := range succ {
		succ[i] = make(map[int]bool)
	}
	for _, e := range doc.Edges {
		a, b := doc.Ops[e[0]].Ctx, doc.Ops[e[1]].Ctx
		if a != b && !succ[a][b] {
			succ[a][b] = true
			indeg[b]++
		}
	}
	perm := make([]int, n)
	var ready []int
	for c := 0; c < n; c++ {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	placed := 0
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		c := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		perm[c] = placed
		placed++
		for s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return perm
}

// benchDocument synthesizes a Table-I benchmark design with a baseline
// placement, as serve would see it from a design submission.
func benchDocument(t *testing.T, name string) *arch.Document {
	t.Helper()
	spec, ok := bench.SpecByName(name)
	if !ok {
		t.Fatalf("unknown bench %s", name)
	}
	d, err := bench.Synthesize(spec)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	m0, err := place.Place(d, place.DefaultConfig())
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	return arch.ToDocument(d, map[string]arch.Mapping{BaselineMapping: m0})
}

// parallelDocument builds a design whose contexts are mutually
// independent (no cross-context edges), so every context permutation
// is causality-preserving — the hardest case for context ordering.
func parallelDocument() *arch.Document {
	doc := &arch.Document{
		Name:        "parallel",
		FabricW:     3,
		FabricH:     3,
		NumContexts: 3,
	}
	// ctx 0: DMU->ALU chain; ctx 1: two loose ALUs; ctx 2: ALU->ALU->ALU.
	add := func(kind, ctx int) int {
		doc.Ops = append(doc.Ops, arch.DocOp{Kind: kind, Ctx: ctx})
		return len(doc.Ops) - 1
	}
	a := add(1, 0)
	b := add(0, 0)
	doc.Edges = append(doc.Edges, [2]int{a, b})
	add(0, 1)
	add(0, 1)
	c := add(0, 2)
	d := add(0, 2)
	e := add(0, 2)
	doc.Edges = append(doc.Edges, [2]int{c, d}, [2]int{d, e})
	return doc
}

func TestIsomorphicRenumberingsHashEqual(t *testing.T) {
	docs := map[string]*arch.Document{
		"bench":    benchDocument(t, "B1"),
		"parallel": parallelDocument(),
	}
	for label, doc := range docs {
		base, err := Canonicalize(doc)
		if err != nil {
			t.Fatalf("%s: canonicalize: %v", label, err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 20; trial++ {
			opPerm := randomOpPerm(rng, len(doc.Ops))
			ctxPerm := randomCtxPerm(rng, doc)
			ren := clientRenumber(t, doc, opPerm, ctxPerm)
			got, err := Canonicalize(ren)
			if err != nil {
				t.Fatalf("%s trial %d: canonicalize renumbered: %v", label, trial, err)
			}
			if got.Hash != base.Hash {
				t.Fatalf("%s trial %d: isomorphic renumbering changed hash\n  base %s\n  got  %s",
					label, trial, base.Hash, got.Hash)
			}
		}
	}
}

func TestCosmeticChangesHashEqual(t *testing.T) {
	doc := benchDocument(t, "B1")
	base, err := Canonicalize(doc)
	if err != nil {
		t.Fatal(err)
	}

	renamed := clientRenumber(t, doc, identity(len(doc.Ops)), identity(doc.NumContexts))
	renamed.Name = "completely-different"
	for i := range renamed.Ops {
		renamed.Ops[i].Name = "op"
	}
	// An extra mapping the solver ignores must not change identity.
	renamed.Mappings["alt"] = renamed.Mappings[BaselineMapping]

	got, err := Canonicalize(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != base.Hash {
		t.Fatalf("cosmetic changes altered hash: %s vs %s", base.Hash, got.Hash)
	}
}

func TestNearMissesHashDiffer(t *testing.T) {
	doc := benchDocument(t, "B1")
	base, err := Canonicalize(doc)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(label string, f func(*arch.Document)) {
		t.Helper()
		m := clientRenumber(t, doc, identity(len(doc.Ops)), identity(doc.NumContexts))
		m.Name = doc.Name
		f(m)
		got, err := Canonicalize(m)
		if err != nil {
			t.Fatalf("%s: canonicalize: %v", label, err)
		}
		if got.Hash == base.Hash {
			t.Fatalf("%s: near-miss collided with base hash", label)
		}
	}

	mutate("flip-op-kind", func(m *arch.Document) {
		m.Ops[0].Kind = 1 - m.Ops[0].Kind
	})
	mutate("drop-edge", func(m *arch.Document) {
		m.Edges = m.Edges[1:]
	})
	mutate("add-edge", func(m *arch.Document) {
		// Link two previously unrelated same-context ops.
		for i := range m.Ops {
			for j := i + 1; j < len(m.Ops); j++ {
				if m.Ops[i].Ctx == m.Ops[j].Ctx && !hasEdge(m, i, j) && !hasEdge(m, j, i) {
					m.Edges = append(m.Edges, [2]int{i, j})
					return
				}
			}
		}
		panic("no free same-context pair")
	})
	mutate("wider-fabric", func(m *arch.Document) {
		m.FabricW++
		// Baseline still valid on the wider fabric.
	})
	mutate("shift-baseline", func(m *arch.Document) {
		bl := m.Mappings[BaselineMapping]
		// Move op 0 to a coordinate free within its context.
		used := map[[2]int]bool{}
		for i, c := range bl {
			if m.Ops[i].Ctx == m.Ops[0].Ctx {
				used[c] = true
			}
		}
		for x := 0; x < m.FabricW; x++ {
			for y := 0; y < m.FabricH; y++ {
				if !used[[2]int{x, y}] {
					bl[0] = [2]int{x, y}
					return
				}
			}
		}
		panic("fabric full")
	})
}

func TestTranslateMappingRoundTrip(t *testing.T) {
	doc := benchDocument(t, "B1")
	form, err := Canonicalize(doc)
	if err != nil {
		t.Fatal(err)
	}
	canonBase := form.Doc.Mappings[BaselineMapping]
	canonCoords := make([]arch.Coord, len(canonBase))
	for i, c := range canonBase {
		canonCoords[i] = arch.Coord{X: c[0], Y: c[1]}
	}
	back := TranslateMapping(canonCoords, form.OpPerm)
	for i, c := range doc.Mappings[BaselineMapping] {
		if back[i].X != c[0] || back[i].Y != c[1] {
			t.Fatalf("op %d: round trip %v != original %v", i, back[i], c)
		}
	}
}

func TestCanonicalFormIsAFixedPoint(t *testing.T) {
	doc := benchDocument(t, "B1")
	form, err := Canonicalize(doc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Canonicalize(form.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hash != form.Hash {
		t.Fatalf("canonical doc not a fixed point: %s vs %s", form.Hash, again.Hash)
	}
	for i, p := range again.OpPerm {
		if p != i {
			t.Fatalf("canonical doc re-permuted op %d -> %d", i, p)
		}
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func hasEdge(m *arch.Document, a, b int) bool {
	for _, e := range m.Edges {
		if e[0] == a && e[1] == b {
			return true
		}
	}
	return false
}
