// Package viz renders floorplans, stress maps and thermal maps as
// standalone SVG documents — the visual artifacts (Fig. 2(a)-style fabric
// diagrams) of the flow.
package viz

import (
	"fmt"
	"math"
	"strings"

	"agingfp/internal/arch"
)

const (
	cellPx = 44
	padPx  = 8
	gapPx  = 4
)

// heatColor maps a normalized value in [0,1] to a cold-to-hot fill.
func heatColor(v float64) string {
	if math.IsNaN(v) {
		v = 0
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Blend white (idle) -> amber -> red (hot).
	var r, g, b int
	if v < 0.5 {
		t := v / 0.5
		r = 255
		g = int(255 - 60*t)
		b = int(255 - 200*t)
	} else {
		t := (v - 0.5) / 0.5
		r = 255
		g = int(195 - 160*t)
		b = int(55 - 55*t)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// StressSVG renders a per-PE accumulated stress map: one cell per PE,
// color by stress (normalized to the map maximum), value printed in the
// cell.
func StressSVG(title string, s arch.StressMap) string {
	h := len(s)
	w := 0
	if h > 0 {
		w = len(s[0])
	}
	max := s.Max()
	var b strings.Builder
	width := padPx*2 + w*cellPx
	height := padPx*2 + h*cellPx + 24
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s (max %.3f)</text>`, padPx, escape(title), max)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := s[y][x]
			norm := 0.0
			if max > 0 {
				norm = v / max
			}
			// SVG y grows downward; draw row 0 at the bottom like the
			// ASCII renderers.
			px := padPx + x*cellPx
			py := 24 + padPx + (h-1-y)*cellPx
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#888"/>`,
				px, py, cellPx-gapPx, cellPx-gapPx, heatColor(norm))
			if v > 0 {
				fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%.2f</text>`,
					px+(cellPx-gapPx)/2, py+(cellPx-gapPx)/2+4, v)
			}
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// HeatSVG renders an arbitrary float grid (e.g. a temperature map),
// normalized between its own min and max.
func HeatSVG(title string, grid [][]float64) string {
	h := len(grid)
	w := 0
	if h > 0 {
		w = len(grid[0])
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	span := hi - lo
	var b strings.Builder
	width := padPx*2 + w*cellPx
	height := padPx*2 + h*cellPx + 24
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s (%.2f..%.2f)</text>`, padPx, escape(title), lo, hi)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			norm := 0.0
			if span > 0 {
				norm = (grid[y][x] - lo) / span
			}
			px := padPx + x*cellPx
			py := 24 + padPx + (h-1-y)*cellPx
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#888"/>`,
				px, py, cellPx-gapPx, cellPx-gapPx, heatColor(norm))
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" text-anchor="middle">%.1f</text>`,
				px+(cellPx-gapPx)/2, py+(cellPx-gapPx)/2+3, grid[y][x])
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// ContextSVG renders one context's floorplan: occupied PEs labelled with
// their op id, chained data edges drawn as arrows.
func ContextSVG(d *arch.Design, m arch.Mapping, ctx int) string {
	f := d.Fabric
	var b strings.Builder
	width := padPx*2 + f.W*cellPx
	height := padPx*2 + f.H*cellPx + 24
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s — context %d</text>`, padPx, escape(d.Name), ctx)
	center := func(c arch.Coord) (int, int) {
		return padPx + c.X*cellPx + (cellPx-gapPx)/2,
			24 + padPx + (f.H-1-c.Y)*cellPx + (cellPx-gapPx)/2
	}
	// Grid.
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			px := padPx + x*cellPx
			py := 24 + padPx + (f.H-1-y)*cellPx
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f8f8f8" stroke="#bbb"/>`,
				px, py, cellPx-gapPx, cellPx-gapPx)
		}
	}
	// Occupied cells.
	for _, op := range d.ContextOps(ctx) {
		c := m[op]
		px := padPx + c.X*cellPx
		py := 24 + padPx + (f.H-1-c.Y)*cellPx
		fill := "#cfe8ff" // ALU
		if arch.OpDelayNs(d.Graph.Ops[op].Kind) == arch.DMUDelayNs {
			fill = "#ffd9b0" // DMU
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#444"/>`,
			px, py, cellPx-gapPx, cellPx-gapPx, fill)
		cx, cy := center(c)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%d</text>`, cx, cy+3, op)
	}
	// Chained edges.
	for _, e := range d.IntraEdges(ctx) {
		x1, y1 := center(m[e.From])
		x2, y2 := center(m[e.To])
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#3366cc" stroke-width="1.5" opacity="0.7"/>`,
			x1, y1, x2, y2)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
