package viz

import (
	"fmt"
	"math"
	"strings"
)

// Chart primitives for server-rendered dashboards: inline SVG fragments
// with no scripts and no external assets, colored through CSS custom
// properties so one HTML page can restyle them (light/dark) without
// re-rendering. The fragments assume the embedding page defines:
//
//	--series-1        sparkline stroke (categorical slot 1)
//	--seq-1..--seq-7  sequential ramp, lightest ("near zero") first
//	--surface-2       empty-cell fill
//	--text-secondary  axis/label ink
//
// Values and labels ride along as <title> children, so every mark has a
// browser-native hover tooltip without JavaScript.

// SparklineSVG renders values as one thin polyline with a dot on the
// final point — the at-a-glance trend mark for stat tiles. The fragment
// is w×h pixels; an empty or all-equal series renders a flat midline.
func SparklineSVG(values []float64, w, h int) string {
	if w <= 0 {
		w = 160
	}
	if h <= 0 {
		h = 36
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	if len(values) > 0 {
		lo, hi := values[0], values[0]
		for _, v := range values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		span := hi - lo
		pad := 3.0
		xAt := func(i int) float64 {
			if len(values) == 1 {
				return float64(w) / 2
			}
			return pad + float64(i)*(float64(w)-2*pad)/float64(len(values)-1)
		}
		yAt := func(v float64) float64 {
			if span == 0 {
				return float64(h) / 2
			}
			return float64(h) - pad - (v-lo)*(float64(h)-2*pad)/span
		}
		pts := make([]string, len(values))
		for i, v := range values {
			pts[i] = fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`,
			strings.Join(pts, " "))
		last := values[len(values)-1]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="var(--series-1)"><title>latest: %s</title></circle>`,
			xAt(len(values)-1), yAt(last), trimFloat(last))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// seqSteps is the number of sequential ramp steps HeatmapSVG bins
// values into (matching the --seq-1..--seq-7 CSS custom properties).
const seqSteps = 7

// HeatmapSVG renders a labeled matrix as a sequential heatmap: one cell
// per (row, col), filled from the --seq-* ramp by value normalized to
// the matrix maximum (zero-valued cells recede to --surface-2). Each
// cell carries a native tooltip naming its coordinates and value.
// vals is indexed [row][col]; short rows render missing cells as empty.
func HeatmapSVG(rowLabels, colLabels []string, vals [][]float64) string {
	const (
		cw, ch   = 42, 22 // cell size
		gap      = 2      // surface gap between fills
		labelW   = 150    // row-label gutter
		labelH   = 16     // column-label row
		fontSize = 10
	)
	rows, cols := len(rowLabels), len(colLabels)
	width := labelW + cols*cw + 4
	height := labelH + rows*ch + 4

	max := 0.0
	for _, r := range vals {
		for _, v := range r {
			max = math.Max(max, v)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" font-family="inherit">`,
		width, height, width, height)
	for j, cl := range colLabels {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" text-anchor="middle" fill="var(--text-secondary)">%s</text>`,
			labelW+j*cw+cw/2, labelH-5, fontSize, escape(cl))
	}
	for i, rl := range rowLabels {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" text-anchor="end" fill="var(--text-secondary)">%s</text>`,
			labelW-6, labelH+i*ch+ch/2+4, fontSize, escape(rl))
		for j := range colLabels {
			v := 0.0
			if i < len(vals) && j < len(vals[i]) {
				v = vals[i][j]
			}
			fill := "var(--surface-2)"
			if v > 0 && max > 0 {
				step := int(math.Ceil(v / max * seqSteps))
				if step < 1 {
					step = 1
				}
				if step > seqSteps {
					step = seqSteps
				}
				fill = fmt.Sprintf("var(--seq-%d)", step)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="2" fill="%s"><title>%s × %s: %s</title></rect>`,
				labelW+j*cw, labelH+i*ch, cw-gap, ch-gap, fill,
				escape(rowLabels[i]), escape(colLabels[j]), trimFloat(v))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// BarsSVG renders labeled values as horizontal bars scaled to the
// largest value — the phase-breakdown mark for the kernel panels. unit
// is appended to the printed value (e.g. "ms"). Zero-valued rows render
// a recessed stub so the label set stays stable across refreshes.
func BarsSVG(labels []string, values []float64, unit string) string {
	const (
		labelW   = 90  // row-label gutter
		barMax   = 220 // full-scale bar length
		valueW   = 80  // printed-value gutter
		rh       = 20  // row height
		bh       = 12  // bar height
		fontSize = 10
	)
	rows := len(labels)
	width := labelW + barMax + valueW
	height := rows*rh + 4

	max := 0.0
	for _, v := range values {
		max = math.Max(max, v)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" font-family="inherit">`,
		width, height, width, height)
	for i, label := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		y := i * rh
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" text-anchor="end" fill="var(--text-secondary)">%s</text>`,
			labelW-6, y+rh/2+4, fontSize, escape(label))
		bw := 2.0
		fill := "var(--surface-2)"
		if v > 0 && max > 0 {
			bw = math.Max(2, v/max*barMax)
			fill = "var(--seq-6)"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" rx="2" fill="%s"><title>%s: %s%s</title></rect>`,
			labelW, y+(rh-bh)/2, bw, bh, fill, escape(label), trimFloat(v), unit)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="%d" fill="var(--text-secondary)">%s%s</text>`,
			float64(labelW)+bw+6, y+rh/2+4, fontSize, trimFloat(v), unit)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// trimFloat formats a value compactly: integers without decimals,
// everything else with one.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}
