package viz

import (
	"strings"
	"testing"

	"agingfp/internal/arch"
	"agingfp/internal/dfg"
)

func vizDesign() (*arch.Design, arch.Mapping) {
	g := &dfg.Graph{}
	a := g.AddOp(dfg.ALU, "a")
	b := g.AddOp(dfg.DMU, "b")
	c := g.AddOp(dfg.ALU, "c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	d := arch.NewDesign("viz", arch.Fabric{W: 3, H: 3}, 2, g, []int{0, 0, 1})
	m := arch.Mapping{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 2}}
	return d, m
}

func TestStressSVGWellFormed(t *testing.T) {
	d, m := vizDesign()
	svg := StressSVG("stress", arch.ComputeStress(d, m))
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an svg document")
	}
	if strings.Count(svg, "<rect") != 9 {
		t.Fatalf("%d rects, want 9 cells", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "stress") {
		t.Fatal("title missing")
	}
}

func TestHeatSVG(t *testing.T) {
	grid := [][]float64{{318, 320}, {325, 330}}
	svg := HeatSVG("temp", grid)
	if strings.Count(svg, "<rect") != 4 {
		t.Fatalf("%d rects", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "318.0") || !strings.Contains(svg, "330.0") {
		t.Fatal("cell values missing")
	}
}

func TestContextSVG(t *testing.T) {
	d, m := vizDesign()
	svg := ContextSVG(d, m, 0)
	// 9 grid cells + 2 occupied overlays.
	if got := strings.Count(svg, "<rect"); got != 11 {
		t.Fatalf("%d rects, want 11", got)
	}
	if strings.Count(svg, "<line") != 1 {
		t.Fatalf("%d chained edges, want 1", strings.Count(svg, "<line"))
	}
	// The DMU op must use the DMU fill.
	if !strings.Contains(svg, "#ffd9b0") {
		t.Fatal("DMU styling missing")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&c`) != "a&lt;b&gt;&amp;c" {
		t.Fatalf("escape broken: %q", escape(`a<b>&c`))
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		c := heatColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Fatalf("bad color %q for %g", c, v)
		}
	}
	if heatColor(0) != "#ffffff" {
		t.Fatalf("idle cell not white: %s", heatColor(0))
	}
}
