package viz

import (
	"strings"
	"testing"
)

func TestSparklineSVG(t *testing.T) {
	svg := SparklineSVG([]float64{1, 5, 3, 8, 2}, 200, 40)
	for _, want := range []string{
		`<svg`, `</svg>`,
		`<polyline`,
		`stroke="var(--series-1)"`, // color rides CSS custom properties
		`<title>latest: 2</title>`, // native tooltip on the end dot
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("sparkline missing %q:\n%s", want, svg)
		}
	}

	// Empty and single-point series must render valid (if minimal) SVG.
	if empty := SparklineSVG(nil, 100, 20); !strings.Contains(empty, "</svg>") || strings.Contains(empty, "polyline") {
		t.Errorf("empty sparkline: %s", empty)
	}
	if one := SparklineSVG([]float64{7}, 100, 20); !strings.Contains(one, "<circle") {
		t.Errorf("single-point sparkline has no mark: %s", one)
	}
	// All-equal values must not divide by a zero span.
	if flat := SparklineSVG([]float64{4, 4, 4}, 100, 20); !strings.Contains(flat, "<polyline") {
		t.Errorf("flat sparkline: %s", flat)
	}
}

func TestHeatmapSVG(t *testing.T) {
	svg := HeatmapSVG(
		[]string{"ops<=32,ctx<=4", "ops<=128,ctx<=16"},
		[]string{"12:00", "12:05", "12:10"},
		[][]float64{{0, 3, 7}, {1, 0}}, // short row: missing cell renders empty
	)
	if n := strings.Count(svg, "<rect"); n != 6 {
		t.Fatalf("%d cells, want rows x cols = 6", n)
	}
	// The maximum lands on the darkest ramp step, zeros recede to the
	// surface, and labels are escaped.
	for _, want := range []string{
		`fill="var(--seq-7)"`,
		`fill="var(--surface-2)"`,
		`ops&lt;=32,ctx&lt;=4`,
		`<title>ops&lt;=32,ctx&lt;=4 × 12:10: 7</title>`,
		`fill="var(--text-secondary)"`,
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("heatmap missing %q:\n%s", want, svg)
		}
	}
	// A mid value must not use the darkest step (binning, not binary).
	if !strings.Contains(svg, `var(--seq-3)`) {
		t.Errorf("value 3 of max 7 should bin to seq-3:\n%s", svg)
	}
}
