package nbti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHCICalibration(t *testing.T) {
	h := DefaultHCI()
	got := h.MTTFHours(0.5, 330)
	want := 12.0 * 365 * 24
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("HCI calibration %g, want %g", got, want)
	}
}

func TestEMCalibration(t *testing.T) {
	e := DefaultEM()
	got := e.MTTFHours(0.5, 330)
	want := 20.0 * 365 * 24
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("EM calibration %g, want %g", got, want)
	}
}

func TestTDDBCalibration(t *testing.T) {
	d := DefaultTDDB()
	got := d.MTTFHours(1.0, 330)
	want := 25.0 * 365 * 24
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("TDDB calibration %g, want %g", got, want)
	}
}

// Every mechanism must be monotone: more activity and more heat never
// extend life.
func TestMechanismMonotonicity(t *testing.T) {
	mechs := []Mechanism{
		NBTIMechanism{Model: DefaultModel()},
		DefaultHCI(),
		DefaultEM(),
		DefaultTDDB(),
		DefaultCombined(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sr := 0.05 + rng.Float64()*0.9
		temp := 310 + rng.Float64()*40
		dsr := rng.Float64() * (0.99 - sr)
		dt := rng.Float64() * 20
		for _, m := range mechs {
			base := m.MTTFHours(sr, temp)
			if m.MTTFHours(sr+dsr, temp) > base+1e-6 {
				t.Logf("%s: more activity extended life", m.Name())
				return false
			}
			if m.MTTFHours(sr, temp+dt) > base+1e-6 {
				t.Logf("%s: more heat extended life", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestIdlePELivesForeverUnderActivityMechanisms(t *testing.T) {
	for _, m := range []Mechanism{NBTIMechanism{Model: DefaultModel()}, DefaultHCI(), DefaultEM()} {
		if !math.IsInf(m.MTTFHours(0, 340), 1) {
			t.Errorf("%s: idle PE has finite MTTF", m.Name())
		}
	}
	// TDDB with DutyWeight 1 also spares idle PEs.
	if !math.IsInf(DefaultTDDB().MTTFHours(0, 340), 1) {
		t.Error("TDDB: idle PE has finite MTTF at full duty weighting")
	}
}

// Combined risk is never better than the weakest single mechanism and
// never worse than the sum-of-rates bound.
func TestCombinedBounds(t *testing.T) {
	c := DefaultCombined()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sr := 0.05 + rng.Float64()*0.9
		temp := 310 + rng.Float64()*40
		total := c.MTTFHours(sr, temp)
		minSingle := math.Inf(1)
		for _, m := range c.Mechs {
			if v := m.MTTFHours(sr, temp); v < minSingle {
				minSingle = v
			}
		}
		if total > minSingle+1e-6 {
			t.Logf("combined %g beats weakest %g", total, minSingle)
			return false
		}
		if total < minSingle/float64(len(c.Mechs))-1e-6 {
			t.Logf("combined %g below rate-sum bound", total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinedName(t *testing.T) {
	c := DefaultCombined()
	if c.Name() != "combined(NBTI+HCI+EM+TDDB)" {
		t.Fatalf("name %q", c.Name())
	}
	if (Combined{}).Name() != "combined()" {
		t.Fatal("empty combined name")
	}
	if !math.IsInf((Combined{}).MTTFHours(0.5, 330), 1) {
		t.Fatal("empty combined should never fail")
	}
}

func TestFabricMTTFUnder(t *testing.T) {
	stress := [][]float64{{0.4, 2.0}, {0.8, 0.1}}
	temp := [][]float64{{330, 330}, {330, 330}}
	h, x, y, err := FabricMTTFUnder(DefaultCombined(), stress, temp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x != 1 || y != 0 {
		t.Fatalf("limiting PE (%d,%d), want (1,0)", x, y)
	}
	// Combined lifetime is below the NBTI-only lifetime.
	m := DefaultModel()
	nb, _, _, _ := m.FabricMTTF(stress, temp, 4)
	if h >= nb {
		t.Fatalf("combined %g not below NBTI-only %g", h, nb)
	}
	if _, _, _, err := FabricMTTFUnder(nil, stress, temp, 4); err == nil {
		t.Fatal("nil mechanism accepted")
	}
	if _, _, _, err := FabricMTTFUnder(DefaultHCI(), stress, nil, 4); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, _, _, err := FabricMTTFUnder(DefaultHCI(), stress, temp, 0); err == nil {
		t.Fatal("zero contexts accepted")
	}
}

// Leveling stress still pays off under the combined model — the paper's
// optimization remains valid when all four mechanisms act at once.
func TestLevelingPaysOffCombined(t *testing.T) {
	c := DefaultCombined()
	before := c.MTTFHours(0.5, 334)
	after := c.MTTFHours(0.25, 331)
	if after/before < 1.5 {
		t.Fatalf("combined leveling payoff %g too small", after/before)
	}
}
