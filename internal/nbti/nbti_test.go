package nbti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultModelCalibration(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The calibration point: 50% duty at 330 K fails at 5 years.
	got := m.MTTFHours(0.5, 330)
	want := 5.0 * 365 * 24
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("calibration MTTF %g h, want %g h", got, want)
	}
	// At the failure time, the shift is exactly FailFrac.
	shift := m.VthShiftFrac(0.5, 330, got)
	if math.Abs(shift-m.FailFrac) > 1e-12 {
		t.Fatalf("shift at MTTF %g, want %g", shift, m.FailFrac)
	}
}

func TestMTTFScalesInverselyWithStress(t *testing.T) {
	m := DefaultModel()
	// t = const / SR: halving stress rate doubles MTTF exactly.
	a := m.MTTFHours(0.6, 340)
	b := m.MTTFHours(0.3, 340)
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("MTTF ratio %g, want 2", b/a)
	}
}

func TestMTTFDecreasesWithTemperature(t *testing.T) {
	m := DefaultModel()
	cold := m.MTTFHours(0.5, 320)
	hot := m.MTTFHours(0.5, 340)
	if hot >= cold {
		t.Fatalf("hotter PE lives longer: %g vs %g", hot, cold)
	}
	// The Arrhenius sensitivity is amplified by 1/n = 4: check the exact
	// closed form.
	k := BoltzmannEV
	wantRatio := math.Exp(m.EaEV / k * (1/320.0 - 1/340.0) / m.N)
	if math.Abs(cold/hot-wantRatio)/wantRatio > 1e-9 {
		t.Fatalf("temperature ratio %g, want %g", cold/hot, wantRatio)
	}
}

func TestUnstressedPELivesForever(t *testing.T) {
	m := DefaultModel()
	if !math.IsInf(m.MTTFHours(0, 340), 1) {
		t.Fatal("unstressed PE has finite MTTF")
	}
	if m.VthShiftFrac(0, 340, 1e6) != 0 {
		t.Fatal("unstressed PE accumulates shift")
	}
}

func TestVthShiftMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := DefaultModel()
		sr := 0.05 + rng.Float64()*0.9
		temp := 310 + rng.Float64()*40
		t1 := 100 + rng.Float64()*1e5
		t2 := t1 * (1 + rng.Float64())
		s1 := m.VthShiftFrac(sr, temp, t1)
		s2 := m.VthShiftFrac(sr, temp, t2)
		return s2 >= s1 && s1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftMTTFRoundTrip(t *testing.T) {
	// For any (sr, T): VthShiftFrac(sr, T, MTTFHours(sr, T)) == FailFrac.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := DefaultModel()
		sr := 0.05 + rng.Float64()*0.9
		temp := 310 + rng.Float64()*40
		mttf := m.MTTFHours(sr, temp)
		shift := m.VthShiftFrac(sr, temp, mttf)
		return math.Abs(shift-m.FailFrac) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFabricMTTFPicksWorstPE(t *testing.T) {
	m := DefaultModel()
	stress := [][]float64{{0.4, 2.0}, {0.8, 0.1}}
	temp := [][]float64{{330, 330}, {330, 330}}
	hours, x, y, err := m.FabricMTTF(stress, temp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x != 1 || y != 0 {
		t.Fatalf("limiting PE (%d,%d), want (1,0)", x, y)
	}
	want := m.MTTFHours(2.0/4, 330)
	if math.Abs(hours-want) > 1e-6 {
		t.Fatalf("MTTF %g, want %g", hours, want)
	}
}

func TestFabricMTTFTemperatureTieBreak(t *testing.T) {
	// Equal stress everywhere: the hottest PE fails first.
	m := DefaultModel()
	stress := [][]float64{{1, 1}, {1, 1}}
	temp := [][]float64{{330, 345}, {332, 331}}
	_, x, y, err := m.FabricMTTF(stress, temp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x != 1 || y != 0 {
		t.Fatalf("limiting PE (%d,%d), want hottest (1,0)", x, y)
	}
}

func TestFabricMTTFValidation(t *testing.T) {
	m := DefaultModel()
	if _, _, _, err := m.FabricMTTF(nil, nil, 1); err == nil {
		t.Fatal("empty maps accepted")
	}
	if _, _, _, err := m.FabricMTTF([][]float64{{1}}, [][]float64{{330}}, 0); err == nil {
		t.Fatal("zero contexts accepted")
	}
	if _, _, _, err := m.FabricMTTF([][]float64{{1, 2}}, [][]float64{{330}}, 1); err == nil {
		t.Fatal("ragged maps accepted")
	}
}

func TestTrajectoryMatchesPointwise(t *testing.T) {
	m := DefaultModel()
	hours := []float64{100, 1000, 10000}
	tr := m.Trajectory(0.5, 335, hours)
	for i, h := range hours {
		if tr[i] != m.VthShiftFrac(0.5, 335, h) {
			t.Fatalf("trajectory[%d] mismatch", i)
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []Model{
		{A: 0, N: 0.25, EaEV: 0.5, Vth0: 0.4, FailFrac: 0.1},
		{A: 1, N: 0, EaEV: 0.5, Vth0: 0.4, FailFrac: 0.1},
		{A: 1, N: 1.5, EaEV: 0.5, Vth0: 0.4, FailFrac: 0.1},
		{A: 1, N: 0.25, EaEV: -1, Vth0: 0.4, FailFrac: 0.1},
		{A: 1, N: 0.25, EaEV: 0.5, Vth0: 0.4, FailFrac: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

// TestStressLevelingPayoff demonstrates the paper's Fig. 2(b) mechanism
// end to end at the model level: halving the worst accumulated stress
// (and cooling the hotspot slightly) multiplies MTTF by more than 2.
func TestStressLevelingPayoff(t *testing.T) {
	m := DefaultModel()
	before := m.MTTFHours(4.0/8, 334) // stacked stress, warm hotspot
	after := m.MTTFHours(2.0/8, 331)  // leveled, slightly cooler
	ratio := after / before
	if ratio < 2 {
		t.Fatalf("leveling payoff %g, want > 2x", ratio)
	}
}
