package nbti

import (
	"errors"
	"fmt"
	"math"
)

// The paper (§I) names NBTI, HCI, EM and TDDB as the dominant reliability
// degradation mechanisms of runtime-reconfigurable fabrics, and evaluates
// NBTI because it usually dominates. This file models the other three so
// a fabric's lifetime can be assessed under combined wear — an extension
// beyond the paper's evaluation, using the standard device-reliability
// formulations (Black's equation for EM, power-law HCI, Arrhenius/E-model
// TDDB).

// Mechanism is a per-PE wear model: its MTTF given the PE's effective
// stress rate (duty/activity, 0..1) and steady-state temperature.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string
	// MTTFHours returns the mean time to failure of one PE; +Inf for an
	// idle PE where the mechanism needs activity.
	MTTFHours(sr, tempK float64) float64
}

// NBTIMechanism adapts Model to the Mechanism interface.
type NBTIMechanism struct{ Model Model }

// Name implements Mechanism.
func (m NBTIMechanism) Name() string { return "NBTI" }

// MTTFHours implements Mechanism.
func (m NBTIMechanism) MTTFHours(sr, tempK float64) float64 {
	return m.Model.MTTFHours(sr, tempK)
}

// HCI models hot-carrier injection: damage accumulates with switching
// activity (every context swap toggles the PE's datapath), with a
// power-law time exponent near 0.5 and a weak-to-negative temperature
// dependence approximated as Arrhenius with a small activation energy.
type HCI struct {
	// A is the technology prefactor (calibrated like the NBTI model's).
	A float64
	// N is the time exponent (typically ~0.5).
	N float64
	// EaEV is the effective activation energy (small, ~0.1 eV).
	EaEV float64
	// FailFrac is the degradation fraction at failure.
	FailFrac float64
}

// DefaultHCI returns an HCI calibration that fails a 50%-active PE at
// 330 K after roughly 12 years — HCI is secondary to NBTI at CGRRA
// operating points, matching the paper's choice to optimize for NBTI.
func DefaultHCI() HCI {
	h := HCI{N: 0.5, EaEV: 0.10, FailFrac: 0.10}
	const (
		refSR    = 0.5
		refTempK = 330.0
		refHours = 12 * 365 * 24
	)
	h.A = h.FailFrac / (math.Pow(refSR*refHours, h.N) * math.Exp(-h.EaEV/(BoltzmannEV*refTempK)))
	return h
}

// Name implements Mechanism.
func (h HCI) Name() string { return "HCI" }

// MTTFHours implements Mechanism.
func (h HCI) MTTFHours(sr, tempK float64) float64 {
	if sr <= 0 {
		return math.Inf(1)
	}
	arr := math.Exp(-h.EaEV / (BoltzmannEV * tempK))
	st := math.Pow(h.FailFrac/(h.A*arr), 1/h.N)
	return st / sr
}

// EM models electromigration in the PE's supply and signal wiring via
// Black's equation: MTTF = A * J^-n * exp(Ea/kT), with current density J
// proportional to the PE's activity.
type EM struct {
	// A is the prefactor (hours at J = 1, T -> inf scale).
	A float64
	// N is the current-density exponent (Black: 1..2).
	N float64
	// EaEV is the activation energy (~0.9 eV for Cu interconnect).
	EaEV float64
	// JPerActivity converts stress rate into relative current density.
	JPerActivity float64
}

// DefaultEM returns a Black's-equation calibration failing a 50%-active
// PE at 330 K after roughly 20 years.
func DefaultEM() EM {
	e := EM{N: 1.6, EaEV: 0.9, JPerActivity: 1.0}
	const (
		refSR    = 0.5
		refTempK = 330.0
		refHours = 20 * 365 * 24
	)
	j := e.JPerActivity * refSR
	e.A = refHours * math.Pow(j, e.N) / math.Exp(e.EaEV/(BoltzmannEV*refTempK))
	return e
}

// Name implements Mechanism.
func (e EM) Name() string { return "EM" }

// MTTFHours implements Mechanism.
func (e EM) MTTFHours(sr, tempK float64) float64 {
	if sr <= 0 {
		return math.Inf(1)
	}
	j := e.JPerActivity * sr
	return e.A * math.Pow(j, -e.N) * math.Exp(e.EaEV/(BoltzmannEV*tempK))
}

// TDDB models time-dependent dielectric breakdown with the E-model:
// lifetime falls exponentially with field (held constant here — supply is
// fixed) and follows Arrhenius in temperature. Activity enters only
// weakly (duty fraction of field stress).
type TDDB struct {
	// A is the prefactor (hours).
	A float64
	// EaEV is the activation energy (~0.7 eV).
	EaEV float64
	// DutyWeight blends activity into effective field time (0..1); 1
	// means the dielectric is stressed only while the PE computes.
	DutyWeight float64
}

// DefaultTDDB returns a calibration failing a fully-active PE at 330 K
// after roughly 25 years.
func DefaultTDDB() TDDB {
	t := TDDB{EaEV: 0.7, DutyWeight: 1.0}
	const (
		refTempK = 330.0
		refHours = 25 * 365 * 24
	)
	t.A = refHours / math.Exp(t.EaEV/(BoltzmannEV*refTempK))
	return t
}

// Name implements Mechanism.
func (t TDDB) Name() string { return "TDDB" }

// MTTFHours implements Mechanism.
func (t TDDB) MTTFHours(sr, tempK float64) float64 {
	duty := 1 - t.DutyWeight + t.DutyWeight*sr
	if duty <= 0 {
		return math.Inf(1)
	}
	return t.A * math.Exp(t.EaEV/(BoltzmannEV*tempK)) / duty
}

// Combined aggregates mechanisms as competing exponential risks: failure
// rates add, so 1/MTTF_total = sum over mechanisms of 1/MTTF_i. The
// combined MTTF is therefore never larger than the weakest mechanism's.
type Combined struct {
	Mechs []Mechanism
}

// DefaultCombined bundles all four mechanisms at their default
// calibrations.
func DefaultCombined() Combined {
	return Combined{Mechs: []Mechanism{
		NBTIMechanism{Model: DefaultModel()},
		DefaultHCI(),
		DefaultEM(),
		DefaultTDDB(),
	}}
}

// Name implements Mechanism.
func (c Combined) Name() string {
	if len(c.Mechs) == 0 {
		return "combined()"
	}
	name := "combined("
	for i, m := range c.Mechs {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}

// MTTFHours implements Mechanism.
func (c Combined) MTTFHours(sr, tempK float64) float64 {
	rate := 0.0
	for _, m := range c.Mechs {
		t := m.MTTFHours(sr, tempK)
		if t <= 0 {
			return 0
		}
		if !math.IsInf(t, 1) {
			rate += 1 / t
		}
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// FabricMTTFUnder evaluates a whole fabric under an arbitrary mechanism:
// the failing time of its first-failing PE (same contract as
// Model.FabricMTTF).
func FabricMTTFUnder(mech Mechanism, stress, temp [][]float64, numContexts int) (hours float64, x, y int, err error) {
	if mech == nil {
		return 0, 0, 0, errors.New("nbti: nil mechanism")
	}
	if len(stress) == 0 || len(stress) != len(temp) {
		return 0, 0, 0, errors.New("nbti: stress/temperature map size mismatch")
	}
	if numContexts < 1 {
		return 0, 0, 0, fmt.Errorf("nbti: numContexts = %d", numContexts)
	}
	best := math.Inf(1)
	bx, by := -1, -1
	for yy := range stress {
		if len(stress[yy]) != len(temp[yy]) {
			return 0, 0, 0, errors.New("nbti: ragged map")
		}
		for xx := range stress[yy] {
			sr := stress[yy][xx] / float64(numContexts)
			t := mech.MTTFHours(sr, temp[yy][xx])
			if t < best {
				best, bx, by = t, xx, yy
			}
		}
	}
	return best, bx, by, nil
}
