// Package nbti models Negative Bias Temperature Instability aging and the
// resulting Mean Time To Failure (MTTF) of a mapped CGRRA, following the
// formulation used by the paper (§III, eq. 1):
//
//	Vth(t) = A_NBTI * (ST)^n * exp(-Ea / (k*T)) * Vth0,   ST = SR * t
//
// where SR is the effective stress rate (duty cycle) of the transistor, T
// the local temperature, and the technology constants follow the common
// NBTI literature (reaction-diffusion time exponent n ~ 0.25, activation
// energy Ea ~ 0.49 eV). The fabric fails when the threshold-voltage shift
// of its worst PE reaches a fixed fraction of Vth0 (10% in the paper,
// after [Srinivasan et al.]).
//
// Because MTTF solves to t = [shift_fail / (A e^{-Ea/kT})]^{1/n} / SR,
// lowering the worst PE's accumulated stress raises MTTF linearly, and
// lowering its temperature raises MTTF through the 1/n-th (4th) power of
// the Arrhenius factor — which is why stress levelling pays off twice.
package nbti

import (
	"errors"
	"fmt"
	"math"
)

// BoltzmannEV is Boltzmann's constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// Model holds the NBTI technology parameters.
type Model struct {
	// A is the technology-dependent prefactor A_NBTI.
	A float64
	// N is the fabrication-dependent time exponent (typically 1/4 or 1/6).
	N float64
	// EaEV is the activation energy in eV.
	EaEV float64
	// Vth0 is the unaged threshold voltage (volts).
	Vth0 float64
	// FailFrac is the Vth shift fraction at which a PE is failed (0.10
	// in the paper).
	FailFrac float64
}

// DefaultModel returns the calibration used throughout the repo: n = 0.25,
// Ea = 0.49 eV, Vth0 = 0.4 V, failure at a 10% shift, and A chosen so a
// PE at 50% duty and 330 K fails after five years — O(years) lifetimes
// matching the MTTF magnitudes of the aging literature the paper builds
// on.
func DefaultModel() Model {
	m := Model{N: 0.25, EaEV: 0.49, Vth0: 0.4, FailFrac: 0.10}
	const (
		refSR    = 0.5
		refTempK = 330.0
		refHours = 5 * 365 * 24
	)
	// Solve FailFrac = A*(SR*t)^n*exp(-Ea/kT) for A at the reference.
	m.A = m.FailFrac / (math.Pow(refSR*refHours, m.N) * math.Exp(-m.EaEV/(BoltzmannEV*refTempK)))
	return m
}

// Validate reports whether the model parameters are physically sane.
func (m Model) Validate() error {
	if m.A <= 0 || m.N <= 0 || m.N >= 1 || m.EaEV <= 0 || m.Vth0 <= 0 ||
		m.FailFrac <= 0 || m.FailFrac >= 1 {
		return fmt.Errorf("nbti: invalid model %+v", m)
	}
	return nil
}

// VthShiftFrac returns the fractional threshold-voltage shift
// (Vth_shift / Vth0) after t hours at effective stress rate sr and
// temperature tempK.
func (m Model) VthShiftFrac(sr, tempK, tHours float64) float64 {
	if sr <= 0 || tHours <= 0 {
		return 0
	}
	return m.A * math.Pow(sr*tHours, m.N) * math.Exp(-m.EaEV/(BoltzmannEV*tempK))
}

// MTTFHours returns the failure time of a single PE with effective stress
// rate sr at temperature tempK. A PE that is never stressed (sr <= 0)
// returns +Inf.
func (m Model) MTTFHours(sr, tempK float64) float64 {
	if sr <= 0 {
		return math.Inf(1)
	}
	arr := math.Exp(-m.EaEV / (BoltzmannEV * tempK))
	st := math.Pow(m.FailFrac/(m.A*arr), 1/m.N)
	return st / sr
}

// FabricMTTF evaluates the MTTF of a whole fabric: the failing time of
// its first-failing PE. stress is the per-PE accumulated stress map
// (summed stress rates over contexts), temp the per-PE steady-state
// temperature map (kelvin), and numContexts normalizes accumulated stress
// into an effective duty cycle.
//
// It returns the MTTF in hours and the coordinates of the limiting PE.
func (m Model) FabricMTTF(stress, temp [][]float64, numContexts int) (hours float64, x, y int, err error) {
	if len(stress) == 0 || len(stress) != len(temp) {
		return 0, 0, 0, errors.New("nbti: stress/temperature map size mismatch")
	}
	if numContexts < 1 {
		return 0, 0, 0, fmt.Errorf("nbti: numContexts = %d", numContexts)
	}
	best := math.Inf(1)
	bx, by := -1, -1
	for yy := range stress {
		if len(stress[yy]) != len(temp[yy]) {
			return 0, 0, 0, errors.New("nbti: ragged map")
		}
		for xx := range stress[yy] {
			sr := stress[yy][xx] / float64(numContexts)
			t := m.MTTFHours(sr, temp[yy][xx])
			if t < best {
				best, bx, by = t, xx, yy
			}
		}
	}
	return best, bx, by, nil
}

// Trajectory samples the fractional Vth shift of a PE over time; used to
// regenerate the paper's Fig. 2(b) curves. It returns shift fractions at
// the given hour marks.
func (m Model) Trajectory(sr, tempK float64, hours []float64) []float64 {
	out := make([]float64, len(hours))
	for i, h := range hours {
		out[i] = m.VthShiftFrac(sr, tempK, h)
	}
	return out
}
