module agingfp

go 1.22
